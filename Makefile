GO ?= go

.PHONY: all check build vet test race cover bench experiments examples fuzz chaos clean

all: build vet test

# check is the pre-merge gate: compile, static analysis, tests, and the
# fault-injection matrix under the race detector.
check: build vet test chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One testing.B target per paper figure + ablations; logs the series.
# Also runs the hot-path micro-benchmarks (estimator worker pool, batch
# fan-out, wire codec); baselines live in results/bench-concurrency.txt.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=NONE .
	$(GO) test -bench=. -benchmem -run=NONE ./internal/estimator ./internal/core ./internal/wire

# Regenerate the paper's evaluation as tables (CSV copies in ./results).
experiments:
	$(GO) run ./cmd/experiments -all -o results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/airquality
	$(GO) run ./examples/marketplace
	$(GO) run ./examples/iotnetwork
	$(GO) run ./examples/analytics
	$(GO) run ./examples/streaming

fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/wire/
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/dataset/

# Fault-injection matrix (per-node loss × corruption × crash/recover
# churn) plus the end-to-end degraded-deployment scenario, all under the
# race detector. See DESIGN.md §7 for the failure model these exercise.
chaos:
	$(GO) test -race -run 'TestChaos' ./internal/iot/ .

clean:
	rm -rf results test_output.txt bench_output.txt
