GO ?= go

.PHONY: all build vet test race cover bench experiments examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One testing.B target per paper figure + ablations; logs the series.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=NONE .

# Regenerate the paper's evaluation as tables (CSV copies in ./results).
experiments:
	$(GO) run ./cmd/experiments -all -o results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/airquality
	$(GO) run ./examples/marketplace
	$(GO) run ./examples/iotnetwork
	$(GO) run ./examples/analytics
	$(GO) run ./examples/streaming

fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/wire/
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/dataset/

clean:
	rm -rf results test_output.txt bench_output.txt
