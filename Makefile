GO ?= go

# Pinned tool versions: `make tools` installs exactly these, so lint
# results are reproducible across machines and CI. privlint needs no
# pin — it lives in this module and versions with the tree.
STATICCHECK_VERSION ?= 2024.1.1
STATICCHECK ?= staticcheck

.PHONY: all check build vet lint privlint lint-report staticcheck tools test race cover bench bench-smoke bench-shard bench-trace load slo experiments examples fuzz chaos shard durability clean

all: build vet test

# check is the pre-merge gate: compile, static analysis (vet + the
# privlint invariant suite + staticcheck), tests, the fault-injection
# matrix and the crash-point durability matrix, both under the race
# detector.
check: build lint test chaos durability

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the full static-analysis gate. It FAILS (never skips) when
# a tool is missing: a lint gate that silently degrades is worse than
# none. Run `make tools` once to install the pinned versions.
lint: vet privlint staticcheck

# privlint is the repo's own go/analysis-style suite (internal/lint):
# twelve analyzers mechanizing the privacy, determinism, locking,
# lock-ordering, goroutine-discipline, atomicity, billing,
# error-wrapping, telemetry-taint and WAL-journaling invariants, with
# cross-package facts serialized between packages. See DESIGN.md §8 for
# the catalog and §13 for the lock-order DAG. Findings are suppressed
# only by `//lint:allow <analyzer> <reason>`; reasonless or unused
# directives are findings themselves.
privlint:
	$(GO) run ./cmd/privlint ./...

# lint-report regenerates the machine-readable lint report committed in
# results/, so analyzer output is diffable across commits. Fails (like
# privlint) if the tree has findings.
lint-report:
	@mkdir -p results
	$(GO) run ./cmd/privlint -json ./... > results/privlint.json

staticcheck:
	@command -v $(STATICCHECK) >/dev/null 2>&1 || { \
		echo "staticcheck not found: run 'make tools' (installs staticcheck@$(STATICCHECK_VERSION))" >&2; \
		exit 1; }
	$(STATICCHECK) ./...

# tools installs the pinned external lint tools into GOBIN. Needs
# network access; in air-gapped environments pre-bake the tools into
# the image instead.
tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

test:
	$(GO) test ./...

# race runs the full suite under the race detector, then re-runs the
# concurrency-heavy shard and market suites a second time: their bugs
# (scatter-gather joins, WAL group commit, receipt ordering) are
# interleaving-dependent, and a second pass shakes out schedules the
# first run missed.
race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 ./internal/shard/ ./internal/market/

cover:
	$(GO) test -cover ./...

# One testing.B target per paper figure + ablations; logs the series.
# Also runs the hot-path micro-benchmarks (estimator worker pool, flat
# columnar index, batch fan-out, wire codec) and records them in
# results/bench-index.txt; the pre-index baselines live in
# results/bench-concurrency.txt. The telemetry-overhead comparison
# (instrumented hot paths with and without a live registry) lands in
# results/bench-telemetry.txt plus a machine-readable
# results/bench-telemetry.json via cmd/benchjson.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=NONE .
	@mkdir -p results
	$(GO) test -bench=. -benchmem -run=NONE ./internal/estimator ./internal/core ./internal/wire | tee results/bench-index.txt
	$(GO) test -bench='Telemetry|AnswerBatch|EstimateFlatIndex|EstimateIndexBatch' -benchmem -run=NONE ./internal/core ./internal/estimator | tee results/bench-telemetry.txt
	$(GO) run ./cmd/benchjson -o results/bench-telemetry.json results/bench-telemetry.txt
	$(GO) test -bench='BenchmarkServer' -benchmem -run=NONE ./internal/market | tee results/bench-serving.txt

# bench-smoke compiles every benchmark and runs each for exactly one
# iteration — the CI guard that keeps the bench suite building and
# runnable without paying for stable timings.
bench-smoke:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=NONE ./internal/estimator ./internal/core ./internal/wire ./internal/market

# load is the serving-path gate: cmd/privload self-hosts a marketplace
# and drives the same open-loop workload through the serial baseline
# (legacy client, no coalescing) and the pipelined + coalesced path,
# recording before/after throughput and p50/p99/p999 latency in
# results/bench-load.{txt,json}. privload exits non-zero when a phase
# sheds or fails (nearly) everything, or when requests are still
# outstanding long after the phase ends — so a wedged or
# shed-everything serving path fails CI instead of hanging it. The
# transport micro-benchmarks (serial vs pipelined exchange, lazy vs
# eager deadline re-arm) land in results/bench-serving.txt via the
# bench target.
load:
	@mkdir -p results
	$(GO) run ./cmd/privload -rate 4000 -duration 2s -conns 8 \
		-o results/bench-load.json -txt results/bench-load.txt

# bench-trace records the distributed-tracing overhead comparison: the
# engine hot paths with telemetry alone vs telemetry plus 1-in-64 trace
# sampling. The tracing contract is ≤2% ns/op and +0 allocs/op at that
# rate; results land in results/bench-trace.{txt,json} via cmd/benchjson.
bench-trace:
	@mkdir -p results
	$(GO) test -bench='BenchmarkAnswerBatchSerialTelemetry|BenchmarkAnswerBatchSerialTraced|BenchmarkAnswerTelemetry$$|BenchmarkAnswerTraced' -benchmem -run=NONE ./internal/core | tee results/bench-trace.txt
	$(GO) run ./cmd/benchjson -o results/bench-trace.json results/bench-trace.txt

# slo is the burn-rate smoke gate: privload self-hosts a marketplace,
# declares a deliberately loose buy SLO (99% under 5s), drives a short
# load, and exits non-zero if the burn-rate gauges report the error
# budget burning — wiring the whole declare → observe → scrape → gate
# chain into CI without flaking on machine speed.
slo:
	$(GO) run ./cmd/privload -rate 1000 -duration 2s -conns 4 \
		-slo 0.99:5s -max-burn 1.0

# bench-shard records 1-vs-S shard throughput (scatter-gather batch
# release and collection rounds) in results/bench-shard.txt plus a
# machine-readable results/bench-shard.json via cmd/benchjson. Answers
# are bit-identical across the shard axis, so the series isolates
# routing overhead vs parallel win.
bench-shard:
	@mkdir -p results
	$(GO) test -bench='BenchmarkShard' -benchmem -run=NONE . | tee results/bench-shard.txt
	$(GO) run ./cmd/benchjson -o results/bench-shard.json results/bench-shard.txt

# Regenerate the paper's evaluation as tables (CSV copies in ./results).
experiments:
	$(GO) run ./cmd/experiments -all -o results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/airquality
	$(GO) run ./examples/marketplace
	$(GO) run ./examples/iotnetwork
	$(GO) run ./examples/analytics
	$(GO) run ./examples/streaming

fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/wire/
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/dataset/

# Fault-injection matrix (per-node loss × corruption × crash/recover
# churn) plus the end-to-end degraded-deployment scenario, all under the
# race detector. See DESIGN.md §7 for the failure model these exercise.
chaos:
	$(GO) test -race -run 'TestChaos' ./internal/iot/ .

# durability runs the crash-consistency gate under the race detector:
# the crash-point injection matrix (the marketplace killed at every WAL
# instant, including torn writes, then recovered and compared against
# the acked-operations oracle), the WAL/recovery edge-case suite
# (corrupt tails, snapshot+log replay, compaction), the torn-snapshot
# regression, and the accountant snapshot/restore unit tests. See
# DESIGN.md §12 for the durability model these prove.
durability:
	$(GO) test -race -run 'TestCrashPoint|TestWAL|TestRecover|TestReplay|TestDurable|TestEnableDurability|TestGroupCommit|TestCompaction|TestDecodeWAL|TestConcurrentSaveVsBuy|TestConcurrentDurableBuysRecover|TestWithheldSpendSurvivesRestart|TestDepositCreditAfterDurable|TestDepositRejectsNonFinite|TestRestoreRejects|TestRestoreRefuses|TestAccountant' ./internal/market/ ./internal/dp/

# shard runs the sharded scale-out gate under the race detector: the
# shard-count determinism suite (answers bit-identical to the
# single-broker engine for any S), the degraded-shard chaos scenario,
# and the shard/estimator unit suites the router stands on.
shard:
	$(GO) test -race -run 'TestShard|TestRing|TestCluster|TestScatter' . ./internal/shard/ ./internal/estimator/
	$(GO) test -race -run 'TestBatchFailure|TestInvalidQueryMatrix|TestCacheReturnsCopies' ./internal/core/

clean:
	rm -rf results test_output.txt bench_output.txt
