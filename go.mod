module privrange

go 1.22
