package privrange

import (
	"errors"
	"math"
	"testing"

	"privrange/internal/dataset"
	"privrange/internal/market"
)

func testSeries(t *testing.T, seed int64) *dataset.Series {
	t.Helper()
	s, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewSystem(nil, Options{}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := NewSystem([]float64{1, 2}, Options{Nodes: 3}); err == nil {
		t.Error("more nodes than values should fail")
	}
	if _, err := NewSystem([]float64{1, 2}, Options{Nodes: -1}); err == nil {
		t.Error("negative nodes should fail")
	}
	if _, err := NewSystem([]float64{1, 2}, Options{Nodes: 2, TotalBudget: -1}); err == nil {
		t.Error("negative budget should fail")
	}
}

func TestSystemCount(t *testing.T) {
	t.Parallel()
	series := testSeries(t, 1)
	sys, err := NewSystem(series.Values, Options{Nodes: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sys.N() != series.Len() || sys.Nodes() != 12 {
		t.Fatalf("system shape wrong: n=%d k=%d", sys.N(), sys.Nodes())
	}
	acc := Accuracy{Alpha: 0.05, Delta: 0.8}
	ans, err := sys.Count(40, 120, acc)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := series.RangeCount(40, 120)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ans.Value-float64(truth)) > 3*acc.Alpha*float64(series.Len()) {
		t.Errorf("answer %v wildly off truth %d", ans.Value, truth)
	}
	if ans.Clamped < 0 || ans.Clamped > float64(ans.N) {
		t.Errorf("Clamped %v out of range", ans.Clamped)
	}
	if ans.EpsilonPrime <= 0 || ans.EpsilonPrime > ans.Epsilon {
		t.Errorf("budgets inconsistent: %+v", ans)
	}
	if ans.AlphaPrime >= acc.Alpha || ans.DeltaPrime <= acc.Delta {
		t.Errorf("internal split not strictly tighter: %+v", ans)
	}
	if sys.SamplingRate() <= 0 {
		t.Error("count should have triggered collection")
	}
	if sys.SpentBudget() != ans.EpsilonPrime {
		t.Errorf("spent %v, want %v", sys.SpentBudget(), ans.EpsilonPrime)
	}
	cost := sys.Cost()
	if cost.SamplesShipped == 0 || cost.Messages == 0 {
		t.Errorf("cost not accounted: %+v", cost)
	}
}

func TestSystemBudgetCap(t *testing.T) {
	t.Parallel()
	series := testSeries(t, 2)
	sys, err := NewSystem(series.Values, Options{Nodes: 8, Seed: 3, TotalBudget: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Count(0, 100, Accuracy{Alpha: 0.1, Delta: 0.5}); err == nil {
		t.Error("exhausted budget should fail")
	}
}

func TestSystemInfeasibleAccuracy(t *testing.T) {
	t.Parallel()
	values := testSeries(t, 3).Values[:1000]
	sys, err := NewSystem(values, Options{Nodes: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Count(0, 100, Accuracy{Alpha: 0.01, Delta: 0.9})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSystemBadInputs(t *testing.T) {
	t.Parallel()
	sys, err := NewSystem(testSeries(t, 4).Values, Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Count(10, 5, Accuracy{Alpha: 0.1, Delta: 0.5}); err == nil {
		t.Error("l > u should fail")
	}
	if _, err := sys.Count(0, 1, Accuracy{Alpha: 2, Delta: 0.5}); err == nil {
		t.Error("bad accuracy should fail")
	}
	if err := (Accuracy{Alpha: 0.5, Delta: 0.5}).Validate(); err != nil {
		t.Errorf("valid accuracy rejected: %v", err)
	}
}

func TestSystemTreeTopology(t *testing.T) {
	t.Parallel()
	series := testSeries(t, 5)
	flat, err := NewSystem(series.Values, Options{Nodes: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NewSystem(series.Values, Options{Nodes: 32, Seed: 7, Tree: true})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy{Alpha: 0.1, Delta: 0.5}
	if _, err := flat.Count(0, 100, acc); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Count(0, 100, acc); err != nil {
		t.Fatal(err)
	}
	if tree.Cost().Bytes <= flat.Cost().Bytes {
		t.Errorf("tree routing should cost more bytes: %d vs %d", tree.Cost().Bytes, flat.Cost().Bytes)
	}
}

func TestMarketplaceEndToEnd(t *testing.T) {
	t.Parallel()
	mp, err := NewMarketplace(Tariff{Base: 1, C: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	series := testSeries(t, 6)
	if err := mp.AddDataset("ozone", series.Values, Options{Nodes: 10, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	acc := Accuracy{Alpha: 0.08, Delta: 0.6}
	quote, err := mp.Quote("ozone", acc)
	if err != nil {
		t.Fatal(err)
	}
	if quote.Price <= 0 || quote.Variance <= 0 {
		t.Fatalf("bad quote %+v", quote)
	}
	res, err := mp.Buy("alice", "ozone", 40, 100, acc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Price-quote.Price) > 1e-9 {
		t.Errorf("charged %v, quoted %v", res.Price, quote.Price)
	}
	if res.ReceiptID == 0 || res.EpsilonPrime <= 0 {
		t.Errorf("missing sale metadata: %+v", res)
	}
	if mp.Purchases() != 1 {
		t.Errorf("purchases = %d", mp.Purchases())
	}
	if math.Abs(mp.Revenue()-res.Price) > 1e-12 {
		t.Errorf("revenue = %v", mp.Revenue())
	}
	if math.Abs(mp.SpentBy("alice")-res.Price) > 1e-12 {
		t.Errorf("alice spend = %v", mp.SpentBy("alice"))
	}
}

func TestMarketplaceValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewMarketplace(Tariff{C: 0}); err == nil {
		t.Error("C=0 should fail")
	}
	if _, err := NewMarketplace(Tariff{Base: -1, C: 1}); err == nil {
		t.Error("negative base should fail")
	}
	mp, err := NewMarketplace(Tariff{C: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.AddDataset("x", nil, Options{}); err == nil {
		t.Error("empty dataset should fail")
	}
	if err := mp.AddDataset("x", []float64{1}, Options{Nodes: 5}); err == nil {
		t.Error("nodes > len should fail")
	}
	if _, err := mp.Quote("missing", Accuracy{Alpha: 0.1, Delta: 0.5}); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestMarketplaceServe(t *testing.T) {
	t.Parallel()
	mp, err := NewMarketplace(Tariff{Base: 0.5, C: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	series := testSeries(t, 8)
	if err := mp.AddDataset("ozone", series.Values, Options{Nodes: 8, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	srv, err := mp.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := market.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	resp, err := client.Buy(market.Request{
		Dataset: "ozone", Customer: "remote", L: 30, U: 90, Alpha: 0.1, Delta: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Receipt == nil {
		t.Fatal("remote buy missing receipt")
	}
	if mp.Purchases() != 1 {
		t.Error("remote sale should hit the ledger")
	}
}

func TestSystemDeterminism(t *testing.T) {
	t.Parallel()
	series := testSeries(t, 12)
	run := func() float64 {
		sys, err := NewSystem(series.Values, Options{Nodes: 8, Seed: 33})
		if err != nil {
			t.Fatal(err)
		}
		ans, err := sys.Count(20, 80, Accuracy{Alpha: 0.1, Delta: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return ans.Value
	}
	if run() != run() {
		t.Error("same options should reproduce answers exactly")
	}
}

func TestSystemHistogram(t *testing.T) {
	t.Parallel()
	series := testSeries(t, 20)
	sys, err := NewSystem(series.Values, Options{Nodes: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	bands := []float64{0, 50, 100, 150, 300}
	h, err := sys.Histogram(bands, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Counts) != 4 {
		t.Fatalf("counts = %v", h.Counts)
	}
	sum := 0.0
	for _, c := range h.Counts {
		if c < 0 {
			t.Errorf("normalized count %v negative", c)
		}
		sum += c
	}
	if math.Abs(sum-float64(sys.N())) > 1e-6 {
		t.Errorf("normalized total %v, want %d", sum, sys.N())
	}
	if h.EpsilonPrime <= 0 || sys.SpentBudget() != h.EpsilonPrime {
		t.Errorf("budget accounting wrong: eps'=%v spent=%v", h.EpsilonPrime, sys.SpentBudget())
	}
	if _, err := sys.Histogram([]float64{3, 1}, 1); err == nil {
		t.Error("bad boundaries should fail")
	}
}

func TestSystemQuantile(t *testing.T) {
	t.Parallel()
	series := testSeries(t, 22)
	sys, err := NewSystem(series.Values, Options{Nodes: 10, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Quantile(0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rank := 0
	for _, x := range series.Values {
		if x <= res.Value {
			rank++
		}
	}
	n := float64(series.Len())
	if math.Abs(float64(rank)-0.5*n) > 0.05*n {
		t.Errorf("median %v has rank %d, want ~%v", res.Value, rank, 0.5*n)
	}
	if res.EpsilonPrime <= 0 || sys.SpentBudget() != res.EpsilonPrime {
		t.Errorf("budget accounting wrong: %+v spent=%v", res, sys.SpentBudget())
	}
	if _, err := sys.Quantile(1.5, 1); err == nil {
		t.Error("q out of range should fail")
	}
}

func TestMarketplacePrepaidAndAudit(t *testing.T) {
	t.Parallel()
	mp, err := NewMarketplace(Tariff{Base: 1, C: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	series := testSeries(t, 30)
	if err := mp.AddDataset("ozone", series.Values, Options{Nodes: 8, Seed: 31}); err != nil {
		t.Fatal(err)
	}
	acc := Accuracy{Alpha: 0.1, Delta: 0.5}
	// Invoice mode: deposits rejected, audit clean.
	if err := mp.Deposit("alice", 10); err == nil {
		t.Error("deposit should fail before EnablePrepaid")
	}
	mp.EnablePrepaid()
	mp.EnablePrepaid() // idempotent
	quote, err := mp.Quote("ozone", acc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mp.Buy("alice", "ozone", 30, 90, acc); err == nil {
		t.Fatal("unfunded prepaid buy should fail")
	}
	if err := mp.Deposit("alice", quote.Price*3.2); err != nil {
		t.Fatal(err)
	}
	var privacy float64
	for i := 0; i < 3; i++ {
		res, err := mp.Buy("alice", "ozone", 30, 90, acc)
		if err != nil {
			t.Fatal(err)
		}
		privacy += res.EpsilonPrime
	}
	if bal := mp.Balance("alice"); math.Abs(bal-quote.Price*0.2) > 1e-9 {
		t.Errorf("balance = %v, want %v", bal, quote.Price*0.2)
	}
	if _, err := mp.Buy("alice", "ozone", 30, 90, acc); err == nil {
		t.Error("drained wallet should block")
	}
	// Alice repeated the same purchase 3x: the audit flags it.
	sus := mp.Audit()
	if len(sus) != 1 || sus[0].Customer != "alice" || sus[0].Purchases != 3 {
		t.Errorf("audit = %+v", sus)
	}
	if got := mp.PrivacySpent("ozone"); math.Abs(got-privacy) > 1e-12 {
		t.Errorf("PrivacySpent = %v, want %v", got, privacy)
	}
}

func TestSystemIngest(t *testing.T) {
	t.Parallel()
	series := testSeries(t, 40)
	head := series.Values[:10000]
	tail := series.Values[10000:]
	sys, err := NewSystem(head, Options{Nodes: 8, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy{Alpha: 0.08, Delta: 0.6}
	if _, err := sys.Count(40, 120, acc); err != nil {
		t.Fatal(err)
	}
	if err := sys.Ingest(nil); err != nil {
		t.Errorf("empty ingest: %v", err)
	}
	if err := sys.Ingest(tail); err != nil {
		t.Fatal(err)
	}
	if sys.N() != series.Len() {
		t.Fatalf("N = %d, want %d after ingest", sys.N(), series.Len())
	}
	ans, err := sys.Count(40, 120, acc)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := series.RangeCount(40, 120)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ans.Value-float64(truth)) > 3*acc.Alpha*float64(series.Len()) {
		t.Errorf("post-ingest answer %v wildly off truth %d", ans.Value, truth)
	}
}

func TestSystemCacheAnswers(t *testing.T) {
	t.Parallel()
	series := testSeries(t, 50)
	sys, err := NewSystem(series.Values, Options{Nodes: 8, Seed: 51, CacheAnswers: true})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy{Alpha: 0.1, Delta: 0.5}
	a, err := sys.Count(30, 90, acc)
	if err != nil {
		t.Fatal(err)
	}
	spent := sys.SpentBudget()
	b, err := sys.Count(30, 90, acc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value {
		t.Error("cached repeat should return the identical answer")
	}
	if sys.SpentBudget() != spent {
		t.Error("cached repeat must not spend budget")
	}
}

func TestSystemTopK(t *testing.T) {
	t.Parallel()
	series := testSeries(t, 60)
	sys, err := NewSystem(series.Values, Options{Nodes: 8, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	hitters, effective, err := sys.TopK(3, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hitters) != 3 || effective <= 0 {
		t.Fatalf("hitters=%+v eff=%v", hitters, effective)
	}
	if sys.SpentBudget() != effective {
		t.Errorf("spent %v, want %v", sys.SpentBudget(), effective)
	}
	for _, h := range hitters {
		truth, err := series.RangeCount(h.Value, h.Value)
		if err != nil {
			t.Fatal(err)
		}
		if truth == 0 {
			t.Errorf("hitter %v absent from data", h.Value)
		}
	}
	if _, _, err := sys.TopK(0, 1); err == nil {
		t.Error("k=0 should fail")
	}
}
