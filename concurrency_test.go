package privrange

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"privrange/internal/iot"
)

// TestSystemConcurrentMixedWorkload hammers one System with parallel
// Count, CountBatch, Histogram and Ingest callers. Run under -race (make
// race) it proves the broker's read-mostly locking: queries estimate
// against immutable snapshots while ingestion rounds rewrite the sample
// state underneath them.
func TestSystemConcurrentMixedWorkload(t *testing.T) {
	t.Parallel()
	series := testSeries(t, 9)
	sys, err := NewSystem(series.Values, Options{Nodes: 24, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy{Alpha: 0.1, Delta: 0.5}
	// Warm up: establish a sampling rate before the contention starts so
	// no goroutine needs the (writer) auto-collection path mid-flight.
	if _, err := sys.Count(0, 100, acc); err != nil {
		t.Fatal(err)
	}

	const (
		counters  = 4
		batchers  = 2
		histGoers = 2
		ingesters = 2
		iters     = 6
		perIngest = 12
	)
	var wg sync.WaitGroup
	errs := make(chan error, counters*iters+batchers*iters+histGoers*iters+ingesters*iters)

	for g := 0; g < counters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := sys.Count(float64(5*g), float64(5*g+120), acc); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < batchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ranges := []Range{{L: 0, U: 60}, {L: 30, U: 150}, {L: float64(10 * g), U: 200}, {L: 50, U: 90}}
			for i := 0; i < iters; i++ {
				if _, err := sys.CountBatch(ranges, acc); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < histGoers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bounds := []float64{0, 50, 100, 150, 200, 300}
			for i := 0; i < iters; i++ {
				if _, err := sys.Histogram(bounds, 0.5); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	ingested := 0
	var ingestedMu sync.Mutex
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				batch := make([]float64, perIngest)
				for j := range batch {
					batch[j] = float64(40 + (g+i+j)%80)
				}
				if err := sys.Ingest(batch); err != nil {
					errs <- err
					return
				}
				ingestedMu.Lock()
				ingested += len(batch)
				ingestedMu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every ingested record must be visible to subsequent queries.
	if want := series.Len() + ingested; sys.N() != want {
		t.Errorf("N = %d after concurrent ingest, want %d", sys.N(), want)
	}
	if sys.SamplingRate() <= 0 {
		t.Error("sampling rate lost under concurrency")
	}
}

// TestChaosConcurrentBestEffort drives a faulted deployment — per-node
// loss, corruption, and a crash/recover window — with parallel queries
// and ingest rounds under the best-effort degradation policy. Run under
// -race (make chaos) it proves the fault-tolerance layer composes with
// the concurrency model: partial collection rounds never corrupt shared
// state, and released answers always carry sane provenance.
func TestChaosConcurrentBestEffort(t *testing.T) {
	t.Parallel()
	series := testSeries(t, 17)
	sys, err := NewSystem(series.Values, Options{
		Nodes:      16,
		Seed:       17,
		BestEffort: true,
		Faults: map[int]iot.FaultProfile{
			1: {LossRate: 0.3, CorruptRate: 0.1},
			5: {LossRate: 0.25},
			9: {CrashWindows: []iot.CrashWindow{{From: 3, Until: 6}, {From: 9, Until: 12}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy{Alpha: 0.1, Delta: 0.5}
	// Warm up on the clean first round so the rate guarantee exists
	// before the crash windows open.
	if _, err := sys.Count(0, 100, acc); err != nil {
		t.Fatal(err)
	}

	const (
		counters  = 4
		ingesters = 2
		iters     = 8
	)
	var wg sync.WaitGroup
	errs := make(chan error, (counters+ingesters)*iters)
	for g := 0; g < counters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ans, err := sys.Count(float64(5*g), float64(5*g+120), acc)
				if err != nil {
					errs <- err
					return
				}
				if ans.Coverage <= 0 || ans.Coverage > 1 {
					errs <- fmt.Errorf("answer coverage %v outside (0, 1]", ans.Coverage)
					return
				}
				if ans.SamplingRate <= 0 {
					errs <- fmt.Errorf("answer rate %v not positive", ans.SamplingRate)
					return
				}
			}
		}(g)
	}
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				batch := make([]float64, 16)
				for j := range batch {
					batch[j] = float64(40 + (g+i+j)%80)
				}
				// Partial rounds are the point of this test: crashed or
				// lossy nodes may fail their refresh, which best-effort
				// deployments absorb — the stale guarantee keeps serving.
				if err := sys.Ingest(batch); err != nil && !errors.Is(err, iot.ErrPartialRound) {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if sys.SamplingRate() <= 0 {
		t.Error("sampling rate lost under chaos")
	}
	if cov := sys.Coverage(); cov <= 0 || cov > 1 {
		t.Errorf("coverage %v outside (0, 1]", cov)
	}
}
