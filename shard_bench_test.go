package privrange

import (
	"fmt"
	"testing"
)

// BenchmarkShardBatchThroughput compares released-batch throughput of
// the single-broker engine (S=1 spelled Shards:0) against sharded
// deployments: the scatter-gather router fans the same batch across
// per-shard columnar indexes. Answers are bit-identical across the
// axis, so this measures pure routing overhead vs parallel win.
// `make bench-shard` records the series in results/bench-shard.txt.
func BenchmarkShardBatchThroughput(b *testing.B) {
	values := make([]float64, 200_000)
	for i := range values {
		values[i] = float64((i * 7919) % 1000)
	}
	ranges := make([]Range, 64)
	for i := range ranges {
		lo := float64((i * 131) % 900)
		ranges[i] = Range{L: lo, U: lo + 80}
	}
	acc := Accuracy{Alpha: 0.05, Delta: 0.8}
	for _, shards := range []int{0, 2, 4, 8} {
		name := fmt.Sprintf("shards=%d", shards)
		if shards == 0 {
			name = "unsharded"
		}
		b.Run(name, func(b *testing.B) {
			sys, err := NewSystem(values, Options{Nodes: 512, Seed: 3, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			// Warm: establish the sampling rate and per-shard indexes once.
			if _, err := sys.CountBatch(ranges[:1], acc); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.CountBatch(ranges, acc); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(ranges)), "queries/op")
		})
	}
}

// BenchmarkShardCollectionRound measures one full scatter-gathered
// collection round (EnsureRate across every shard concurrently) against
// the single-broker loop.
func BenchmarkShardCollectionRound(b *testing.B) {
	values := make([]float64, 100_000)
	for i := range values {
		values[i] = float64((i * 31) % 1000)
	}
	for _, shards := range []int{0, 4} {
		name := fmt.Sprintf("shards=%d", shards)
		if shards == 0 {
			name = "unsharded"
		}
		b.Run(name, func(b *testing.B) {
			sys, err := NewSystem(values, Options{Nodes: 256, Seed: 7, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			// Warm: establish a sampling rate so each ingest round
			// re-collects at it.
			if _, err := sys.Count(100, 500, Accuracy{Alpha: 0.05, Delta: 0.8}); err != nil {
				b.Fatal(err)
			}
			batch := make([]float64, 256)
			for i := range batch {
				batch[i] = float64(i % 1000)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.Ingest(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
