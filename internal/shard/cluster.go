package shard

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"privrange/internal/index"
	"privrange/internal/iot"
	"privrange/internal/sampling"
	"privrange/internal/telemetry"
)

// View is one shard's immutable contribution to a composed Snapshot:
// the shard's reported sample sets (ascending global node id), the
// columnar index built over exactly those sets (nil when stale or
// absent), and each local node's row in the cluster-wide composed
// order. The engine's router scatters per-node estimate terms into a
// global table at Rows and reduces in row order, which is the global
// node order — the reduction the single-broker engine performs.
type View struct {
	Sets []*sampling.SampleSet
	Idx  *index.Index
	// Rows[j] is the position of local node j in the composed global
	// order (Snapshot.Sets). Rows of different views are disjoint.
	Rows []int
}

// Snapshot is one atomically consistent cross-shard view: the
// per-shard estimation views plus the composed state in the exact
// representation the single-broker Source contract uses. Slices are
// immutable — recomposition replaces them — so a Snapshot stays valid
// while collections proceed underneath it.
type Snapshot struct {
	Views []View
	// Sets is the composed per-node sample set list, ascending global
	// node id — element-for-element what a single-broker base station
	// would serve.
	Sets     []*sampling.SampleSet
	Rate     float64
	Nodes, N int
	Version  uint64
	Coverage float64
}

// Cluster partitions an IoT fleet across S broker shards by consistent
// hashing on node id. Each shard is a self-contained iot.Network —
// its own collection loop, base station, and columnar index — built
// with the shard's global node ids so per-node sampling streams match
// the single-broker network exactly. The cluster composes shard state
// into one Source-compatible view and scatter-gathers collection
// rounds across a bounded worker pool.
//
// Locking mirrors iot.Network: mutations (EnsureRate, IngestRound,
// SetDown) serialize behind the cluster writer lock and recompose the
// cached snapshot before releasing it; reads share the read lock and
// return the immutable composed state. Reaching into a member network
// directly (Shard) bypasses the cluster lock and its recomposition —
// the same footgun as iot.Network.Base.
type Cluster struct {
	mu   sync.RWMutex
	ring *Ring
	// nets[s] is shard s's network, nil when the ring assigned it no
	// nodes (possible for small fleets or unlucky hashes).
	nets []*iot.Network
	// owner[g] is the shard owning global node g; ids[s] lists shard
	// s's global node ids ascending (the shard network's join order).
	owner []int
	ids   [][]int
	k     int
	// snap is the composed snapshot, rebuilt after every mutation.
	snap Snapshot
	// clock counts cluster-level rounds for composed reports.
	clock uint64
}

// New builds a cluster of the given shard count over the node
// partitions: parts[g] is held by global node g, owned by the shard
// the ring assigns. The iot.Config seeds and fault profiles apply to
// every shard keyed by global node id, so a sharded deployment
// reproduces the single-broker network's node-level behavior exactly.
func New(parts [][]float64, shards int, cfg iot.Config) (*Cluster, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("shard: need at least one node partition")
	}
	if cfg.NodeIDs != nil {
		return nil, fmt.Errorf("shard: cluster assigns node ids itself; Config.NodeIDs must be nil")
	}
	ring, err := NewRing(shards, 0)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		ring:  ring,
		nets:  make([]*iot.Network, shards),
		owner: make([]int, len(parts)),
		ids:   make([][]int, shards),
		k:     len(parts),
	}
	shardParts := make([][][]float64, shards)
	for g := range parts {
		s := ring.Owner(g)
		c.owner[g] = s
		c.ids[s] = append(c.ids[s], g) // ascending: g iterates in order
		shardParts[s] = append(shardParts[s], parts[g])
	}
	for s := 0; s < shards; s++ {
		if len(shardParts[s]) == 0 {
			continue
		}
		shardCfg := cfg
		shardCfg.NodeIDs = c.ids[s]
		nw, err := iot.New(shardParts[s], shardCfg)
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", s, err)
		}
		c.nets[s] = nw
	}
	c.recomposeLocked()
	return c, nil
}

// NumShards returns S.
func (c *Cluster) NumShards() int { return c.ring.Shards() }

// Owner returns the shard owning the given global node id.
func (c *Cluster) Owner(nodeID int) (int, error) {
	if nodeID < 0 || nodeID >= c.k {
		return 0, fmt.Errorf("shard: no node %d", nodeID)
	}
	return c.owner[nodeID], nil
}

// Shard exposes shard s's network for tests and diagnostics.
//
// Footgun: mutating a member network directly bypasses the cluster
// lock and leaves the composed snapshot stale. Drive all mutations
// through the cluster.
func (c *Cluster) Shard(s int) *iot.Network { return c.nets[s] }

// recomposeLocked rebuilds the composed snapshot from per-shard state.
// Callers hold c.mu for writing. Every slice is freshly allocated so
// previously returned Snapshots stay immutable.
func (c *Cluster) recomposeLocked() {
	states := make([]iot.State, len(c.nets))
	for s, nw := range c.nets {
		if nw != nil {
			states[s] = nw.State()
		}
	}
	snap := Snapshot{Views: make([]View, len(states))}
	reported := 0
	for _, st := range states {
		reported += len(st.Sets)
	}
	snap.Sets = make([]*sampling.SampleSet, 0, reported)
	// K-way merge of the per-shard (id, set) lists by ascending global
	// id, assigning each view's rows as its sets land in the composed
	// order. Shard id lists are already ascending and disjoint.
	heads := make([]int, len(states))
	for s, st := range states {
		snap.Views[s] = View{Sets: st.Sets, Idx: st.Idx, Rows: make([]int, len(st.Sets))}
	}
	for len(snap.Sets) < reported {
		best, bestID := -1, 0
		for s, st := range states {
			if heads[s] >= len(st.IDs) {
				continue
			}
			if id := st.IDs[heads[s]]; best < 0 || id < bestID {
				best, bestID = s, id
			}
		}
		snap.Views[best].Rows[heads[best]] = len(snap.Sets)
		snap.Sets = append(snap.Sets, states[best].Sets[heads[best]])
		heads[best]++
	}
	// Scalars compose in the same units the single broker computes them:
	// the rate is the min over the same per-node rates, coverage the
	// same integer ratio, so both match bit-for-bit.
	rate, haveRate := 0.0, false
	live, total := 0, 0
	for s, st := range states {
		if c.nets[s] == nil {
			continue
		}
		if !haveRate || st.Rate < rate {
			rate, haveRate = st.Rate, true
		}
		snap.Nodes += st.Nodes
		snap.N += st.N
		snap.Version += st.Version
		live += st.LiveRecords
		total += st.TotalRecords
	}
	snap.Rate = rate
	if total == 0 {
		snap.Coverage = 1
	} else {
		snap.Coverage = float64(live) / float64(total)
	}
	c.snap = snap
}

// scatter runs fn(s) for every shard with a network, fanning out across
// a bounded worker pool (one goroutine per shard, shards are coarse
// units). It returns the first error by shard order so error selection
// is deterministic.
func (c *Cluster) scatter(fn func(s int) error) error {
	active := 0
	for _, nw := range c.nets {
		if nw != nil {
			active++
		}
	}
	errs := make([]error, len(c.nets))
	if active <= 1 {
		for s, nw := range c.nets {
			if nw != nil {
				errs[s] = fn(s)
			}
		}
	} else {
		var wg sync.WaitGroup
		for s, nw := range c.nets {
			if nw == nil {
				continue
			}
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				errs[s] = fn(s)
			}(s)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// EnsureRate drives one collection round toward a Bernoulli(p) sample
// on every shard concurrently and composes the per-shard reports into
// one cluster-wide CollectionReport with global node ids. Exactly like
// the single-broker round, the returned error wraps iot.ErrPartialRound
// when any attempted node failed and the report is valid either way.
func (c *Cluster) EnsureRate(p float64) (*iot.CollectionReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	reports := make([]*iot.CollectionReport, len(c.nets))
	err := c.scatter(func(s int) error {
		rep, err := c.nets[s].EnsureRate(p)
		reports[s] = rep
		if rep == nil {
			return err // hard failure (validation), not a partial round
		}
		return nil
	})
	c.recomposeLocked()
	if err != nil {
		return nil, err
	}
	rep := &iot.CollectionReport{
		Round:  c.clock,
		Target: p,
		Failed: make(map[int]error),
	}
	for _, sr := range reports {
		if sr == nil {
			continue
		}
		if sr.Effective > rep.Effective {
			rep.Effective = sr.Effective
		}
		rep.Refreshed = append(rep.Refreshed, sr.Refreshed...)
		rep.Satisfied = append(rep.Satisfied, sr.Satisfied...)
		rep.Skipped = append(rep.Skipped, sr.Skipped...)
		rep.CircuitOpen = append(rep.CircuitOpen, sr.CircuitOpen...)
		for id, ferr := range sr.Failed {
			rep.Failed[id] = ferr
		}
	}
	sort.Ints(rep.Refreshed)
	sort.Ints(rep.Satisfied)
	sort.Ints(rep.Skipped)
	sort.Ints(rep.CircuitOpen)
	rep.Achieved = c.snap.Rate
	rep.Coverage = c.snap.Coverage
	rep.Version = c.snap.Version
	return rep, rep.Err()
}

// IngestRound appends one round of readings across the whole fleet and
// refreshes every shard at its current rate: perNode[g] goes to global
// node g. Like the single-broker round, a partially failed refresh
// returns an error wrapping iot.ErrPartialRound while the surviving
// shards' state is still refreshed.
func (c *Cluster) IngestRound(perNode [][]float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(perNode) != c.k {
		return fmt.Errorf("shard: round has %d node batches, cluster has %d nodes", len(perNode), c.k)
	}
	c.clock++
	split := make([][][]float64, len(c.nets))
	for s, ids := range c.ids {
		if len(ids) == 0 {
			continue
		}
		batch := make([][]float64, len(ids))
		for j, g := range ids {
			batch[j] = perNode[g]
		}
		split[s] = batch
	}
	var partial error
	err := c.scatter(func(s int) error {
		if err := c.nets[s].IngestRound(split[s]); err != nil {
			if errors.Is(err, iot.ErrPartialRound) {
				partial = err // deterministic: scatter keeps first by shard order
				return nil
			}
			return err
		}
		return nil
	})
	c.recomposeLocked()
	if err != nil {
		return err
	}
	return partial
}

// SetDown changes a node's reachability on its owning shard (global
// node id) and recomposes coverage.
func (c *Cluster) SetDown(nodeID int, down bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, err := c.Owner(nodeID)
	if err != nil {
		return err
	}
	if err := c.nets[s].SetDown(nodeID, down); err != nil {
		return err
	}
	c.recomposeLocked()
	return nil
}

// SampleSets returns the composed per-node sample sets, ascending
// global node id — what a single-broker base station would serve.
func (c *Cluster) SampleSets() []*sampling.SampleSet {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.snap.Sets
}

// Rate returns the fleet-wide guaranteed sampling rate: the minimum
// over shards, which is the minimum over the same per-node rates the
// single broker takes.
func (c *Cluster) Rate() float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.snap.Rate
}

// NumNodes returns the fleet-wide k.
func (c *Cluster) NumNodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.snap.Nodes
}

// TotalN returns the fleet-wide |D|.
func (c *Cluster) TotalN() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.snap.N
}

// Coverage returns the fraction of records held by currently reachable
// nodes across all shards.
func (c *Cluster) Coverage() float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.snap.Coverage
}

// Snapshot implements the single-source view of the Source contract:
// the composed sample sets with no cluster-wide columnar index (each
// shard keeps its own; the engine's router consumes them through
// ShardSnapshot). The sets and scalars are bit-identical to what the
// equivalent single-broker network would report.
func (c *Cluster) Snapshot() (sets []*sampling.SampleSet, idx *index.Index, rate float64, nodes, n int, version uint64, coverage float64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.snap.Sets, nil, c.snap.Rate, c.snap.Nodes, c.snap.N, c.snap.Version, c.snap.Coverage
}

// ShardSnapshot returns the composed cross-shard snapshot, including
// the per-shard estimation views the engine's query router
// scatter-gathers over.
func (c *Cluster) ShardSnapshot() Snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.snap
}

// Cost returns the fleet-wide communication bill: the sum of every
// shard's cost report.
func (c *Cluster) Cost() iot.CostReport {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var total iot.CostReport
	for _, nw := range c.nets {
		if nw == nil {
			continue
		}
		cost := nw.Cost()
		total.Messages += cost.Messages
		total.Bytes += cost.Bytes
		total.SamplesShipped += cost.SamplesShipped
		total.PiggybackedReports += cost.PiggybackedReports
		total.Retransmissions += cost.Retransmissions
		total.CorruptedMessages += cost.CorruptedMessages
	}
	return total
}

// Instrument attaches per-shard collection metrics to every member
// network, labeling each series with shard="s" on top of the given
// static labels, so operators can see rounds, coverage, bytes and
// breaker transitions per shard. Only deployment aggregates cross into
// telemetry, exactly as for a single network.
func (c *Cluster) Instrument(r *telemetry.Registry, labels ...telemetry.Label) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for s, nw := range c.nets {
		if nw == nil {
			continue
		}
		shardLabels := append([]telemetry.Label{telemetry.L("shard", strconv.Itoa(s))}, labels...)
		nw.SetTelemetry(iot.NewMetrics(r, shardLabels...))
	}
}
