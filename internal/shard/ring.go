// Package shard partitions an IoT fleet across S broker shards, each
// owning its own collection loop, base station, and columnar sample
// index. A Cluster implements the broker engine's Source contract over
// the composed state and additionally exposes per-shard views so the
// engine's query router can scatter-gather estimation across shards.
//
// Determinism is the design bar: node-to-shard assignment is a pure
// function of (node id, shard count), every node keeps the per-id
// sampling stream it would have in a single-broker network (shards are
// built with global node ids — see iot.Config.NodeIDs), and the
// composed snapshot reproduces the single-broker scalars bit-for-bit
// (rate as the same float min, coverage from the same integer ratio).
// The engine's router then reduces per-node estimate terms in global
// node order, so released answers are bit-identical to the unsharded
// engine for any shard count and any GOMAXPROCS.
package shard

import (
	"fmt"
	"sort"
)

// defaultReplicas is the number of virtual points each shard projects
// onto the hash ring. More points smooth the node distribution across
// shards; 64 keeps the worst shard within a few percent of the mean for
// realistic fleet sizes.
const defaultReplicas = 64

// mix64 is the SplitMix64 finalizer — a strong, deterministic 64-bit
// mixing function. It is a hash, not an entropy source: shard
// assignment must be a pure function of the id so every process (and
// every shard count sweep in the determinism suite) agrees on
// ownership.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ringPoint is one virtual shard replica on the ring.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring assigns node ids to shards by consistent hashing: each shard
// projects replicas virtual points onto the 64-bit ring, a node id
// hashes to a point, and the node is owned by the first shard point at
// or clockwise of it. Adding or removing one shard therefore moves only
// ~1/S of the nodes — the property that makes later resharding cheap.
// A Ring is immutable after New and safe for concurrent use.
type Ring struct {
	shards int
	points []ringPoint
}

// NewRing builds a ring of the given shard count. Zero replicas selects
// defaultReplicas.
func NewRing(shards, replicas int) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d must be >= 1", shards)
	}
	if replicas < 0 {
		return nil, fmt.Errorf("shard: negative replica count %d", replicas)
	}
	if replicas == 0 {
		replicas = defaultReplicas
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*replicas)}
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			// Salt the shard and replica lanes separately so point sets of
			// different shards are uncorrelated.
			h := mix64(mix64(uint64(s)+1) ^ mix64(uint64(v)|0x5bd1e995<<32))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on shard index so the order (hence ownership) is
		// deterministic even on hash collisions.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the shard count S.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard owning the given node id.
func (r *Ring) Owner(nodeID int) int {
	h := mix64(uint64(nodeID))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise of the top of the ring
	}
	return r.points[i].shard
}
