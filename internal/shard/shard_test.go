package shard

import (
	"errors"
	"math"
	"testing"

	"privrange/internal/iot"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(0, 64); err == nil {
		t.Error("shard count 0: no error")
	}
	if _, err := NewRing(-1, 64); err == nil {
		t.Error("negative shard count: no error")
	}
	if _, err := NewRing(3, -1); err == nil {
		t.Error("negative replicas: no error")
	}
}

// TestRingDeterministic pins that ownership is a pure function of
// (node id, shard count): two independently built rings agree on every
// id.
func TestRingDeterministic(t *testing.T) {
	for _, s := range []int{1, 2, 3, 8, 17} {
		a, err := NewRing(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewRing(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < 2000; id++ {
			if a.Owner(id) != b.Owner(id) {
				t.Fatalf("S=%d id=%d: rebuilt ring disagrees", s, id)
			}
			if got := a.Owner(id); got < 0 || got >= s {
				t.Fatalf("S=%d id=%d: owner %d outside [0,%d)", s, id, got, s)
			}
		}
	}
}

// TestRingBalance checks the virtual replicas keep shard loads within a
// loose factor of the mean — consistent hashing is allowed to be
// uneven, but no shard should be starved or doubled-up wildly.
func TestRingBalance(t *testing.T) {
	const ids = 10000
	for _, s := range []int{2, 4, 8} {
		r, err := NewRing(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, s)
		for id := 0; id < ids; id++ {
			counts[r.Owner(id)]++
		}
		mean := float64(ids) / float64(s)
		for sh, c := range counts {
			if float64(c) < mean/3 || float64(c) > mean*3 {
				t.Errorf("S=%d shard %d owns %d of %d ids (mean %.0f)", s, sh, c, ids, mean)
			}
		}
	}
}

// TestRingStability pins the consistent-hashing property: growing the
// ring by one shard moves only a minority of ids.
func TestRingStability(t *testing.T) {
	const ids = 10000
	r4, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := NewRing(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for id := 0; id < ids; id++ {
		if r4.Owner(id) != r5.Owner(id) {
			moved++
		}
	}
	// Ideal is 1/5 of ids; allow twice that before calling it broken.
	if moved > 2*ids/5 {
		t.Errorf("growing 4->5 shards moved %d of %d ids", moved, ids)
	}
}

func testParts(k, perNode int) [][]float64 {
	parts := make([][]float64, k)
	for i := range parts {
		vals := make([]float64, perNode)
		for j := range vals {
			vals[j] = float64((i*perNode + j) % 100)
		}
		parts[i] = vals
	}
	return parts
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(nil, 2, iot.Config{}); err == nil {
		t.Error("no partitions: no error")
	}
	if _, err := New(testParts(4, 8), 0, iot.Config{}); err == nil {
		t.Error("shard count 0: no error")
	}
	if _, err := New(testParts(4, 8), 2, iot.Config{NodeIDs: []int{0, 1, 2, 3}}); err == nil {
		t.Error("explicit NodeIDs: no error")
	}
}

// TestClusterComposition pins that the composed snapshot reproduces the
// single-broker network bit-for-bit: same sets in the same order, same
// rate, same totals, same coverage — the invariant the engine's
// bit-identity guarantee stands on.
func TestClusterComposition(t *testing.T) {
	parts := testParts(12, 50)
	for _, s := range []int{1, 2, 3, 8} {
		single, err := iot.New(parts, iot.Config{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := New(parts, s, iot.Config{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := single.EnsureRate(0.4); err != nil {
			t.Fatal(err)
		}
		if _, err := cluster.EnsureRate(0.4); err != nil {
			t.Fatalf("S=%d: %v", s, err)
		}
		wantSets, _, wantRate, wantNodes, wantN, _, wantCov := single.Snapshot()
		gotSets, gotIdx, gotRate, gotNodes, gotN, _, gotCov := cluster.Snapshot()
		if gotIdx != nil {
			t.Errorf("S=%d: composed Snapshot carries a cluster-wide index", s)
		}
		if gotRate != wantRate || gotNodes != wantNodes || gotN != wantN || gotCov != wantCov {
			t.Errorf("S=%d: scalars (%v,%d,%d,%v) != single (%v,%d,%d,%v)",
				s, gotRate, gotNodes, gotN, gotCov, wantRate, wantNodes, wantN, wantCov)
		}
		if len(gotSets) != len(wantSets) {
			t.Fatalf("S=%d: %d sets != %d", s, len(gotSets), len(wantSets))
		}
		for i := range wantSets {
			if gotSets[i].N != wantSets[i].N || len(gotSets[i].Samples) != len(wantSets[i].Samples) {
				t.Fatalf("S=%d node %d: set shape differs", s, i)
			}
			for j := range wantSets[i].Samples {
				w, g := wantSets[i].Samples[j], gotSets[i].Samples[j]
				if w.Rank != g.Rank || math.Float64bits(w.Value) != math.Float64bits(g.Value) {
					t.Fatalf("S=%d node %d sample %d: %+v != %+v", s, i, j, g, w)
				}
			}
		}
		// Views must tile the composed rows exactly once.
		snap := cluster.ShardSnapshot()
		seen := make([]bool, len(snap.Sets))
		for _, v := range snap.Views {
			if len(v.Rows) != len(v.Sets) {
				t.Fatalf("S=%d: view with %d rows over %d sets", s, len(v.Rows), len(v.Sets))
			}
			for _, row := range v.Rows {
				if row < 0 || row >= len(seen) || seen[row] {
					t.Fatalf("S=%d: row %d missing or claimed twice", s, row)
				}
				seen[row] = true
			}
		}
		for row, ok := range seen {
			if !ok {
				t.Fatalf("S=%d: row %d unclaimed", s, row)
			}
		}
	}
}

// TestClusterIngestAndSetDown drives membership and ingestion through
// the cluster and checks the composed state tracks a single-broker
// network running the same script.
func TestClusterIngestAndSetDown(t *testing.T) {
	parts := testParts(10, 30)
	single, err := iot.New(parts, iot.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := New(parts, 3, iot.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.EnsureRate(0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.EnsureRate(0.5); err != nil {
		t.Fatal(err)
	}

	round := make([][]float64, 10)
	for i := range round {
		round[i] = []float64{float64(i), float64(i + 1)}
	}
	if err := single.IngestRound(round); err != nil {
		t.Fatal(err)
	}
	if err := cluster.IngestRound(round); err != nil {
		t.Fatal(err)
	}
	if got, want := cluster.TotalN(), single.TotalN(); got != want {
		t.Errorf("after ingest: N %d != %d", got, want)
	}
	if err := cluster.IngestRound(round[:3]); err == nil {
		t.Error("short round: no error")
	}

	if err := cluster.SetDown(7, true); err != nil {
		t.Fatal(err)
	}
	if err := single.SetDown(7, true); err != nil {
		t.Fatal(err)
	}
	if got, want := cluster.Coverage(), single.Coverage(); got != want {
		t.Errorf("down node: coverage %v != %v", got, want)
	}
	if cluster.Coverage() >= 1 {
		t.Errorf("down node: coverage %v not < 1", cluster.Coverage())
	}
	if err := cluster.SetDown(99, true); err == nil {
		t.Error("unknown node: no error")
	}
	if err := cluster.SetDown(7, false); err != nil {
		t.Fatal(err)
	}
	if cluster.Coverage() != 1 {
		t.Errorf("recovered: coverage %v != 1", cluster.Coverage())
	}
}

// TestClusterPartialRound checks a crashed node surfaces as the same
// partial-round error shape the single-broker network reports, with the
// failed node's global id in the composed report.
func TestClusterPartialRound(t *testing.T) {
	parts := testParts(8, 20)
	cfg := iot.Config{
		Seed: 3,
		Faults: map[int]iot.FaultProfile{
			5: {CrashWindows: []iot.CrashWindow{{From: 1, Until: 1 << 30}}},
		},
	}
	cluster, err := New(parts, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cluster.EnsureRate(0.5)
	if !errors.Is(err, iot.ErrPartialRound) {
		t.Fatalf("want ErrPartialRound, got %v", err)
	}
	if rep == nil {
		t.Fatal("nil report")
	}
	if _, ok := rep.Failed[5]; !ok {
		t.Errorf("failed map %v missing global id 5", rep.Failed)
	}
	if rep.Coverage >= 1 {
		t.Errorf("coverage %v not < 1 with a crashed node", rep.Coverage)
	}
}

// TestClusterCost checks the composed bill sums every shard's.
func TestClusterCost(t *testing.T) {
	parts := testParts(9, 25)
	cluster, err := New(parts, 3, iot.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.EnsureRate(0.5); err != nil {
		t.Fatal(err)
	}
	var want iot.CostReport
	for s := 0; s < cluster.NumShards(); s++ {
		nw := cluster.Shard(s)
		if nw == nil {
			continue
		}
		cost := nw.Cost()
		want.Messages += cost.Messages
		want.Bytes += cost.Bytes
		want.SamplesShipped += cost.SamplesShipped
	}
	got := cluster.Cost()
	if got.Messages != want.Messages || got.Bytes != want.Bytes || got.SamplesShipped != want.SamplesShipped {
		t.Errorf("composed cost %+v != summed %+v", got, want)
	}
	if got.Messages == 0 || got.Bytes == 0 {
		t.Errorf("composed cost %+v is empty after a collection round", got)
	}
}
