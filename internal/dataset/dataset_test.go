package dataset

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestGenerateDefaults(t *testing.T) {
	t.Parallel()
	table, err := Generate(GenerateConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != CityPulseRecords {
		t.Fatalf("Len = %d, want %d", table.Len(), CityPulseRecords)
	}
	if got := table.Records[0].Time; !got.Equal(CityPulseStart) {
		t.Errorf("first timestamp = %v, want %v", got, CityPulseStart)
	}
	last := table.Records[table.Len()-1].Time
	wantLast := CityPulseStart.Add(time.Duration(CityPulseRecords-1) * CityPulseStep)
	if !last.Equal(wantLast) {
		t.Errorf("last timestamp = %v, want %v", last, wantLast)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	t.Parallel()
	a, err := Generate(GenerateConfig{Seed: 42, Records: 500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenerateConfig{Seed: 42, Records: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed should generate identical tables")
	}
	c, err := Generate(GenerateConfig{Seed: 43, Records: 500})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should generate different tables")
	}
}

func TestGenerateRejectsNegativeRecords(t *testing.T) {
	t.Parallel()
	if _, err := Generate(GenerateConfig{Records: -1}); err == nil {
		t.Error("negative record count should fail")
	}
}

func TestGeneratedSeriesShape(t *testing.T) {
	t.Parallel()
	table, err := Generate(GenerateConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Pollutants() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			s, err := table.Series(p)
			if err != nil {
				t.Fatal(err)
			}
			sum, err := s.Summarize()
			if err != nil {
				t.Fatal(err)
			}
			m := models[p]
			if sum.Min < m.min || sum.Max > m.max {
				t.Errorf("values outside clamp: min=%v max=%v", sum.Min, sum.Max)
			}
			// The marginal should keep substantial mass near its base level.
			if math.Abs(sum.Median-m.base) > m.base {
				t.Errorf("median %v implausibly far from base %v", sum.Median, m.base)
			}
			if sum.StdDev <= 0 {
				t.Error("series should have positive spread")
			}
			// Integer-valued readings.
			for _, v := range s.Values[:100] {
				if v != math.Round(v) {
					t.Fatalf("non-integer reading %v", v)
				}
			}
		})
	}
}

func TestGeneratedSeriesAutocorrelated(t *testing.T) {
	t.Parallel()
	s, err := GenerateSeries(ParticulateMatter, GenerateConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Lag-1 autocorrelation should be strongly positive for AQ series.
	n := s.Len()
	var mean float64
	for _, v := range s.Values {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n-1; i++ {
		num += (s.Values[i] - mean) * (s.Values[i+1] - mean)
	}
	for _, v := range s.Values {
		den += (v - mean) * (v - mean)
	}
	if ac := num / den; ac < 0.5 {
		t.Errorf("lag-1 autocorrelation = %v, want strongly positive", ac)
	}
}

func TestRangeCount(t *testing.T) {
	t.Parallel()
	s := &Series{Pollutant: Ozone, Values: []float64{1, 2, 3, 4, 5, 5, 9}}
	cases := []struct {
		name string
		l, u float64
		want int
	}{
		{name: "all", l: 0, u: 10, want: 7},
		{name: "inclusive bounds", l: 2, u: 5, want: 5},
		{name: "point", l: 5, u: 5, want: 2},
		{name: "empty", l: 6, u: 8, want: 0},
		{name: "left open", l: -10, u: 2.5, want: 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got, err := s.RangeCount(tc.l, tc.u)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("RangeCount(%v, %v) = %d, want %d", tc.l, tc.u, got, tc.want)
			}
		})
	}
	if _, err := s.RangeCount(5, 1); err == nil {
		t.Error("l > u should fail")
	}
}

func TestTruncate(t *testing.T) {
	t.Parallel()
	s := &Series{Values: make([]float64, 1000)}
	half, err := s.Truncate(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if half.Len() != 500 {
		t.Errorf("Truncate(0.5).Len = %d, want 500", half.Len())
	}
	tiny, err := s.Truncate(0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Len() != 1 {
		t.Errorf("tiny truncation should keep one record, got %d", tiny.Len())
	}
	if _, err := s.Truncate(0); err == nil {
		t.Error("frac=0 should fail")
	}
	if _, err := s.Truncate(1.5); err == nil {
		t.Error("frac>1 should fail")
	}
}

func TestPartition(t *testing.T) {
	t.Parallel()
	s := &Series{Values: []float64{0, 1, 2, 3, 4, 5, 6}}
	parts, err := s.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("got %d parts", len(parts))
	}
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	if total != s.Len() {
		t.Errorf("partition sizes sum to %d, want %d", total, s.Len())
	}
	// Sizes differ by at most one.
	for _, part := range parts {
		if len(part) < s.Len()/3 || len(part) > s.Len()/3+1 {
			t.Errorf("unbalanced part size %d", len(part))
		}
	}
	// Contiguity: concatenation reproduces the series.
	var flat []float64
	for _, part := range parts {
		flat = append(flat, part...)
	}
	if !reflect.DeepEqual(flat, s.Values) {
		t.Error("contiguous partition should concatenate back to the series")
	}

	if _, err := s.Partition(0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := s.Partition(8); err == nil {
		t.Error("k>n should fail")
	}
}

func TestPartitionInterleaved(t *testing.T) {
	t.Parallel()
	s := &Series{Values: []float64{0, 1, 2, 3, 4}}
	parts, err := s.PartitionInterleaved(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parts[0], []float64{0, 2, 4}) || !reflect.DeepEqual(parts[1], []float64{1, 3}) {
		t.Errorf("unexpected interleaving: %v", parts)
	}
	if _, err := s.PartitionInterleaved(0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestPartitionPreservesRangeCounts(t *testing.T) {
	t.Parallel()
	s, err := GenerateSeries(Ozone, GenerateConfig{Seed: 3, Records: 2000})
	if err != nil {
		t.Fatal(err)
	}
	f := func(kRaw uint8, lRaw, span float64) bool {
		k := int(kRaw)%64 + 1
		l := math.Mod(math.Abs(lRaw), 200)
		u := l + math.Mod(math.Abs(span), 100)
		want, err := s.RangeCount(l, u)
		if err != nil {
			return false
		}
		parts, err := s.Partition(k)
		if err != nil {
			return false
		}
		got := 0
		for _, part := range parts {
			sub := &Series{Values: part}
			c, err := sub.RangeCount(l, u)
			if err != nil {
				return false
			}
			got += c
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	t.Parallel()
	table, err := Generate(GenerateConfig{Seed: 9, Records: 123})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := table.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != table.Len() {
		t.Fatalf("round-trip Len = %d, want %d", back.Len(), table.Len())
	}
	for i := range table.Records {
		if !back.Records[i].Time.Equal(table.Records[i].Time) {
			t.Fatalf("record %d time mismatch", i)
		}
		if back.Records[i].Values != table.Records[i].Values {
			t.Fatalf("record %d values mismatch: %v vs %v", i, back.Records[i].Values, table.Records[i].Values)
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		in   string
	}{
		{name: "empty", in: ""},
		{name: "bad header", in: "a,b,c,d,e,f\n"},
		{name: "bad pollutant", in: "timestamp,ozone,bogus,carbon_monoxide,sulfur_dioxide,nitrogen_dioxide\n"},
		{
			name: "bad timestamp",
			in: "timestamp,ozone,particulate_matter,carbon_monoxide,sulfur_dioxide,nitrogen_dioxide\n" +
				"not-a-time,1,2,3,4,5\n",
		},
		{
			name: "bad value",
			in: "timestamp,ozone,particulate_matter,carbon_monoxide,sulfur_dioxide,nitrogen_dioxide\n" +
				"2014-08-01 00:05:00,x,2,3,4,5\n",
		},
		{
			name: "short row",
			in: "timestamp,ozone,particulate_matter,carbon_monoxide,sulfur_dioxide,nitrogen_dioxide\n" +
				"2014-08-01 00:05:00,1,2\n",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if _, err := ReadCSV(bytes.NewReader([]byte(tc.in))); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestPollutantParsing(t *testing.T) {
	t.Parallel()
	for _, p := range Pollutants() {
		got, err := ParsePollutant(p.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Errorf("ParsePollutant(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if _, err := ParsePollutant("smog"); err == nil {
		t.Error("unknown name should fail")
	}
	if Pollutant(0).Valid() || Pollutant(6).Valid() {
		t.Error("out-of-range pollutants should be invalid")
	}
}

func TestRecordValue(t *testing.T) {
	t.Parallel()
	var r Record
	r.Values[Ozone-1] = 42
	v, err := r.Value(Ozone)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("Value = %v, want 42", v)
	}
	if _, err := r.Value(Pollutant(99)); err == nil {
		t.Error("invalid pollutant should fail")
	}
}

func TestSeriesErrors(t *testing.T) {
	t.Parallel()
	table := &Table{}
	if _, err := table.Series(Pollutant(0)); err == nil {
		t.Error("invalid pollutant should fail")
	}
	empty := &Series{}
	if _, err := empty.Summarize(); err == nil {
		t.Error("summarizing empty series should fail")
	}
}
