package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvTimeLayout is the timestamp format used by the CSV representation.
const csvTimeLayout = "2006-01-02 15:04:05"

// WriteCSV writes the table in CityPulse-style CSV: a header row followed
// by timestamp,ozone,particulate_matter,carbon_monoxide,sulfur_dioxide,
// nitrogen_dioxide rows.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, numPollutants+1)
	header = append(header, "timestamp")
	for _, p := range Pollutants() {
		header = append(header, p.String())
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	row := make([]string, numPollutants+1)
	for i, r := range t.Records {
		row[0] = r.Time.UTC().Format(csvTimeLayout)
		for j, v := range r.Values {
			row[j+1] = strconv.FormatFloat(v, 'f', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flush csv: %w", err)
	}
	return nil
}

// ReadCSV parses a table previously produced by WriteCSV (or a real
// CityPulse export with the same columns).
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = numPollutants + 1

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv header: %w", err)
	}
	if header[0] != "timestamp" {
		return nil, fmt.Errorf("dataset: first column is %q, want \"timestamp\"", header[0])
	}
	// Map each CSV column to its pollutant so column order is flexible.
	cols := make([]Pollutant, numPollutants)
	for i, name := range header[1:] {
		p, err := ParsePollutant(name)
		if err != nil {
			return nil, fmt.Errorf("dataset: csv column %d: %w", i+1, err)
		}
		cols[i] = p
	}

	table := &Table{}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv line %d: %w", line, err)
		}
		ts, err := time.Parse(csvTimeLayout, row[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: csv line %d timestamp: %w", line, err)
		}
		rec := Record{Time: ts.UTC()}
		for i, field := range row[1:] {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv line %d column %s: %w", line, cols[i], err)
			}
			rec.Values[cols[i]-1] = v
		}
		table.Records = append(table.Records, rec)
	}
	return table, nil
}
