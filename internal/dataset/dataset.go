// Package dataset provides the evaluation data substrate: a deterministic
// synthetic equivalent of the 2014 CityPulse Smart City pollution dataset
// used in the paper's experiments.
//
// The real dataset holds 17 568 records (one every 5 minutes from
// 2014-08-01 00:05 to 2014-10-01 00:00) with five air-quality indexes per
// record: ozone, particulate matter, carbon monoxide, sulfur dioxide and
// nitrogen dioxide. The CityPulse download service is long gone, so this
// package synthesizes series with the same cardinality, cadence, value
// ranges and qualitative structure (diurnal cycles, strong short-range
// autocorrelation, sensor noise, occasional pollution spikes). Range
// counting accuracy depends only on the empirical value distribution and
// the dataset size, so the substitution preserves every behaviour the
// paper evaluates; see DESIGN.md §2.
package dataset

import (
	"fmt"
	"math"
	"time"

	"privrange/internal/stats"
)

// Pollutant identifies one of the five air-quality indexes carried by each
// CityPulse record.
type Pollutant int

// The five CityPulse air-quality indexes.
const (
	Ozone Pollutant = iota + 1
	ParticulateMatter
	CarbonMonoxide
	SulfurDioxide
	NitrogenDioxide
	numPollutants = 5
)

// Pollutants lists all five indexes in canonical order.
func Pollutants() []Pollutant {
	return []Pollutant{Ozone, ParticulateMatter, CarbonMonoxide, SulfurDioxide, NitrogenDioxide}
}

// String returns the pollutant's CityPulse column name.
func (p Pollutant) String() string {
	switch p {
	case Ozone:
		return "ozone"
	case ParticulateMatter:
		return "particulate_matter"
	case CarbonMonoxide:
		return "carbon_monoxide"
	case SulfurDioxide:
		return "sulfur_dioxide"
	case NitrogenDioxide:
		return "nitrogen_dioxide"
	default:
		return fmt.Sprintf("pollutant(%d)", int(p))
	}
}

// Valid reports whether p names one of the five indexes.
func (p Pollutant) Valid() bool { return p >= Ozone && p <= NitrogenDioxide }

// ParsePollutant maps a CityPulse column name back to its Pollutant.
func ParsePollutant(name string) (Pollutant, error) {
	for _, p := range Pollutants() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("dataset: unknown pollutant %q", name)
}

// Record is one sensing event: a timestamp plus the five index values.
type Record struct {
	Time   time.Time
	Values [numPollutants]float64
}

// Value returns the record's reading for pollutant p.
func (r Record) Value(p Pollutant) (float64, error) {
	if !p.Valid() {
		return 0, fmt.Errorf("dataset: invalid pollutant %d", int(p))
	}
	return r.Values[p-1], nil
}

// Table is the full multi-pollutant dataset, the in-memory form of the
// CityPulse CSV.
type Table struct {
	Records []Record
}

// Len returns the number of records.
func (t *Table) Len() int { return len(t.Records) }

// Series extracts the scalar series for one pollutant. Range counting in
// the paper operates on exactly such a scalar multiset.
func (t *Table) Series(p Pollutant) (*Series, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("dataset: invalid pollutant %d", int(p))
	}
	values := make([]float64, len(t.Records))
	for i, r := range t.Records {
		values[i] = r.Values[p-1]
	}
	return &Series{Pollutant: p, Values: values}, nil
}

// Series is a single pollutant's scalar value stream — the dataset D that
// range counting queries run against.
type Series struct {
	Pollutant Pollutant
	Values    []float64
}

// Len returns |D|.
func (s *Series) Len() int { return len(s.Values) }

// RangeCount returns the exact range counting γ(l, u, D) =
// |{x ∈ D : l ≤ x ≤ u}| (Definition 2.1). It is the ground truth every
// estimator is measured against. It returns an error when l > u.
func (s *Series) RangeCount(l, u float64) (int, error) {
	if l > u {
		return 0, fmt.Errorf("dataset: range [%v, %v] has l > u", l, u)
	}
	count := 0
	for _, x := range s.Values {
		if l <= x && x <= u {
			count++
		}
	}
	return count, nil
}

// Truncate returns a prefix of the series containing frac of the records
// (at least one). It is used by the Fig 4 data-size sweep. frac must lie
// in (0, 1].
func (s *Series) Truncate(frac float64) (*Series, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("dataset: truncation fraction %v outside (0, 1]", frac)
	}
	n := int(math.Round(frac * float64(len(s.Values))))
	if n < 1 {
		n = 1
	}
	return &Series{Pollutant: s.Pollutant, Values: s.Values[:n]}, nil
}

// Summary reports distributional facts about the series, used in docs and
// to sanity-check the generator against the real dataset's published
// ranges.
type Summary struct {
	N                int
	Min, Max         float64
	Mean, StdDev     float64
	P25, Median, P75 float64
}

// Summarize computes a Summary. It returns an error for an empty series.
func (s *Series) Summarize() (Summary, error) {
	if len(s.Values) == 0 {
		return Summary{}, fmt.Errorf("dataset: empty series")
	}
	var w stats.Running
	for _, v := range s.Values {
		w.Add(v)
	}
	p25, err := stats.Quantile(s.Values, 0.25)
	if err != nil {
		return Summary{}, err
	}
	med, err := stats.Quantile(s.Values, 0.5)
	if err != nil {
		return Summary{}, err
	}
	p75, err := stats.Quantile(s.Values, 0.75)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		N:      len(s.Values),
		Min:    w.Min(),
		Max:    w.Max(),
		Mean:   w.Mean(),
		StdDev: w.StdDev(),
		P25:    p25,
		Median: med,
		P75:    p75,
	}, nil
}

// Partition splits the series into k per-node datasets D_1 … D_k of
// near-equal size. Contiguous blocks model sensors that each observe a
// stretch of the deployment; this matches the paper's model where node i
// holds an ordered local dataset D_i with local ranks. It returns an error
// when k is not in [1, len].
func (s *Series) Partition(k int) ([][]float64, error) {
	n := len(s.Values)
	if k < 1 || k > n {
		return nil, fmt.Errorf("dataset: cannot partition %d records across k=%d nodes", n, k)
	}
	parts := make([][]float64, k)
	base := n / k
	extra := n % k
	offset := 0
	for i := 0; i < k; i++ {
		size := base
		if i < extra {
			size++
		}
		parts[i] = s.Values[offset : offset+size]
		offset += size
	}
	return parts, nil
}

// PartitionInterleaved splits the series round-robin across k nodes, for
// deployments where co-located sensors interleave observations of the same
// phenomenon. It returns an error when k is not in [1, len].
func (s *Series) PartitionInterleaved(k int) ([][]float64, error) {
	n := len(s.Values)
	if k < 1 || k > n {
		return nil, fmt.Errorf("dataset: cannot partition %d records across k=%d nodes", n, k)
	}
	parts := make([][]float64, k)
	for i := range parts {
		parts[i] = make([]float64, 0, n/k+1)
	}
	for i, v := range s.Values {
		parts[i%k] = append(parts[i%k], v)
	}
	return parts, nil
}
