package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV drives the CSV parser with arbitrary text: it must never
// panic, and anything it accepts must round-trip through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	table, err := Generate(GenerateConfig{Seed: 1, Records: 5})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := table.WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("timestamp,ozone,particulate_matter,carbon_monoxide,sulfur_dioxide,nitrogen_dioxide\n")
	f.Add("garbage")
	f.Add("")

	f.Fuzz(func(t *testing.T, input string) {
		table, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := table.WriteCSV(&out); err != nil {
			t.Fatalf("accepted table failed to serialize: %v", err)
		}
		back, err := ReadCSV(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != table.Len() {
			t.Fatalf("round trip changed length: %d vs %d", back.Len(), table.Len())
		}
	})
}
