package dataset

import (
	"fmt"
	"math"
	"time"

	"privrange/internal/stats"
)

// CityPulseRecords is the record count of the real 2014 CityPulse
// pollution dataset (0:05am 8/1/2014 through 0:00am 10/1/2014 at 5-minute
// cadence).
const CityPulseRecords = 17568

// CityPulseStart is the timestamp of the first real record.
var CityPulseStart = time.Date(2014, time.August, 1, 0, 5, 0, 0, time.UTC)

// CityPulseStep is the sensing cadence of the real dataset.
const CityPulseStep = 5 * time.Minute

// pollutantModel captures the qualitative behaviour of one air-quality
// index: a base level, a diurnal swing, slow mean-reverting drift, sensor
// noise, and rare pollution spikes. Parameters are chosen so each index's
// marginal distribution matches the coarse shape of urban AQI series
// (bounded, right-skewed, mid-range mass).
type pollutantModel struct {
	base      float64 // long-run mean level
	diurnal   float64 // amplitude of the 24h cycle
	ar        float64 // AR(1) coefficient of the slow drift
	drift     float64 // innovation std-dev of the drift
	noise     float64 // white sensor noise std-dev
	spikeProb float64 // per-record probability of a pollution event
	spikeMean float64 // mean magnitude of an event (exponential)
	min, max  float64 // physical clamp (index scale)
	phase     float64 // diurnal phase offset in hours
}

// models mirrors how the five indexes differ in the real data: ozone peaks
// mid-afternoon, NO2 and CO peak with traffic, PM drifts slowly, SO2 is
// low with rare industrial spikes.
var models = map[Pollutant]pollutantModel{
	Ozone:             {base: 60, diurnal: 25, ar: 0.97, drift: 2.0, noise: 4, spikeProb: 0.002, spikeMean: 40, min: 0, max: 250, phase: 15},
	ParticulateMatter: {base: 55, diurnal: 10, ar: 0.995, drift: 1.2, noise: 5, spikeProb: 0.004, spikeMean: 60, min: 0, max: 300, phase: 8},
	CarbonMonoxide:    {base: 45, diurnal: 15, ar: 0.98, drift: 1.5, noise: 3, spikeProb: 0.003, spikeMean: 35, min: 0, max: 200, phase: 18},
	SulfurDioxide:     {base: 30, diurnal: 6, ar: 0.99, drift: 1.0, noise: 2.5, spikeProb: 0.006, spikeMean: 50, min: 0, max: 200, phase: 11},
	NitrogenDioxide:   {base: 50, diurnal: 18, ar: 0.975, drift: 1.8, noise: 3.5, spikeProb: 0.003, spikeMean: 45, min: 0, max: 250, phase: 19},
}

// GenerateConfig controls synthetic dataset generation.
type GenerateConfig struct {
	// Records is the number of records to generate. Zero means
	// CityPulseRecords.
	Records int
	// Seed makes generation deterministic. The same seed always yields the
	// same table.
	Seed int64
	// Start is the timestamp of the first record. Zero means
	// CityPulseStart.
	Start time.Time
	// Step is the sensing cadence. Zero means CityPulseStep.
	Step time.Duration
}

func (c *GenerateConfig) withDefaults() GenerateConfig {
	out := *c
	if out.Records == 0 {
		out.Records = CityPulseRecords
	}
	if out.Start.IsZero() {
		out.Start = CityPulseStart
	}
	if out.Step == 0 {
		out.Step = CityPulseStep
	}
	return out
}

// Generate synthesizes a CityPulse-equivalent table. It returns an error
// for a negative record count.
func Generate(cfg GenerateConfig) (*Table, error) {
	c := cfg.withDefaults()
	if c.Records < 0 {
		return nil, fmt.Errorf("dataset: negative record count %d", c.Records)
	}
	root := stats.NewRNG(c.Seed)
	table := &Table{Records: make([]Record, c.Records)}

	for i, p := range Pollutants() {
		m := models[p]
		rng := root.Child(int64(i + 1))
		drift := 0.0
		for j := 0; j < c.Records; j++ {
			ts := c.Start.Add(time.Duration(j) * c.Step)
			hour := float64(ts.Hour()) + float64(ts.Minute())/60
			diurnal := m.diurnal * math.Sin(2*math.Pi*(hour-m.phase)/24)
			drift = m.ar*drift + rng.NormFloat64()*m.drift
			v := m.base + diurnal + drift + rng.NormFloat64()*m.noise
			if rng.Bernoulli(m.spikeProb) {
				v += rng.Exponential(m.spikeMean)
			}
			if v < m.min {
				v = m.min
			}
			if v > m.max {
				v = m.max
			}
			// The CityPulse indexes are integer-valued readings.
			table.Records[j].Time = ts
			table.Records[j].Values[p-1] = math.Round(v)
		}
	}
	return table, nil
}

// GenerateSeries is a convenience wrapper that generates the table and
// extracts one pollutant's series.
func GenerateSeries(p Pollutant, cfg GenerateConfig) (*Series, error) {
	table, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	return table.Series(p)
}
