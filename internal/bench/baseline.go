package bench

import (
	"math"

	"privrange/internal/dp"
	"privrange/internal/dyadic"
	"privrange/internal/estimator"
	"privrange/internal/stats"
	"privrange/internal/wavelet"
)

// AblationBaseline compares the paper's sampling+Laplace pipeline against
// the dyadic hierarchical-decomposition baseline at the *same total
// effective privacy budget*, as the number of queries sold grows.
//
// The sampling pipeline spends budget per query: selling Q queries under
// total budget B leaves ε′ = B/Q effective per query, so its per-answer
// noise grows with Q. The dyadic tree spends B once and answers any
// number of queries with constant noise — but it requires the entire raw
// dataset at the broker (the communication column) and its noise carries
// the log³-domain factor. The crossover in Q is the economic heart of
// the comparison.
func AblationBaseline(c Config) (*Result, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	f, err := newFixture(c)
	if err != nil {
		return nil, err
	}
	const (
		totalBudget = 1.0
		p           = 0.3
		// Synopsis domain [0, 512) at 9 levels gives integer-width cells,
		// so integer-valued readings never straddle a cell boundary and
		// the snap-out fringe is empty — the comparison then measures
		// noise, not resolution error.
		levels   = 9
		domainHi = 512.0
	)
	root := stats.NewRNG(c.Seed + 6)
	sets, err := f.draw(p, root.Child(0))
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name: "ablation-baseline",
		Title: "mean |error| at fixed total budget: sampling-per-query vs dyadic-once " +
			"(B=1, p=0.3, 9-level tree)",
		XLabel: "queries_sold",
		Series: []string{"sampling_mae", "dyadic_mae", "dyadic_consistent_mae", "wavelet_mae", "sampling_comm_samples", "dyadic_comm_records"},
	}
	commSamples := 0
	for _, set := range sets {
		commSamples += len(set.Samples)
	}
	for _, q := range []int{1, 2, 5, 10, 20, 50, 100} {
		// Sampling pipeline: per-query effective budget B/Q; invert the
		// amplification to get the base mechanism budget at rate p.
		epsPrime := totalBudget / float64(q)
		baseEps, err := dp.RequiredEpsilonForAmplified(epsPrime, p)
		if err != nil {
			return nil, err
		}
		noise := dp.Laplace{Scale: (1 / p) / baseEps}
		rc := estimator.RankCounting{P: p}
		var sampErr stats.Running
		rng := root.Child(int64(q))
		for trial := 0; trial < c.Trials; trial++ {
			for i := 0; i < q; i++ {
				query := f.queries[i%len(f.queries)]
				est, err := rc.Estimate(sets, query)
				if err != nil {
					return nil, err
				}
				sampErr.Add(math.Abs(est + noise.Sample(rng) - f.truths[i%len(f.truths)]))
			}
		}

		// One-shot synopses at the full budget, same queries: the dyadic
		// tree, its constrained-inference variant, and the Haar wavelet.
		var dyErr, dyConsErr, wvErr stats.Running
		for trial := 0; trial < c.Trials; trial++ {
			tree, err := dyadic.Build(f.series.Values, 0, domainHi, levels, totalBudget, rng.Child(int64(trial)))
			if err != nil {
				return nil, err
			}
			cons := tree.Consistent()
			syn, err := wavelet.Build(f.series.Values, 0, domainHi, levels, totalBudget, rng.Child(int64(100000+trial)))
			if err != nil {
				return nil, err
			}
			for i := 0; i < q; i++ {
				query := f.queries[i%len(f.queries)]
				got, err := tree.Count(query.L, query.U)
				if err != nil {
					return nil, err
				}
				gotCons, err := cons.Count(query.L, query.U)
				if err != nil {
					return nil, err
				}
				gotWv, err := syn.Count(query.L, query.U)
				if err != nil {
					return nil, err
				}
				truth := f.truths[i%len(f.truths)]
				dyErr.Add(math.Abs(got - truth))
				dyConsErr.Add(math.Abs(gotCons - truth))
				wvErr.Add(math.Abs(gotWv - truth))
			}
		}
		if err := res.Add(float64(q), sampErr.Mean(), dyErr.Mean(), dyConsErr.Mean(), wvErr.Mean(),
			float64(commSamples), float64(f.n)); err != nil {
			return nil, err
		}
	}
	return res, nil
}
