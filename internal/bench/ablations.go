package bench

import (
	"fmt"
	"math"

	"privrange/internal/dataset"
	"privrange/internal/estimator"
	"privrange/internal/iot"
	"privrange/internal/optimize"
	"privrange/internal/pricing"
	"privrange/internal/stats"
	"privrange/internal/workload"
)

// AblationEstimators compares the empirical error standard deviation of
// RankCounting against BasicCounting as the queried range widens — the
// §III-A claim that RankCounting's variance is width-independent while
// BasicCounting's grows with the count.
func AblationEstimators(c Config) (*Result, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	f, err := newFixture(c)
	if err != nil {
		return nil, err
	}
	const p = 0.05
	rc := estimator.RankCounting{P: p}
	bc := estimator.BasicCounting{P: p}
	res := &Result{
		Name:   "ablation-estimators",
		Title:  "error std-dev vs range width: RankCounting vs BasicCounting (p=0.05)",
		XLabel: "width",
		Series: []string{"rank_sd", "basic_sd", "rank_bound_sd"},
	}
	root := stats.NewRNG(c.Seed + 2)
	trials := c.Trials * 20 // std-dev needs more draws than a mean
	for _, width := range []float64{10, 25, 50, 100, 200, 300} {
		q := estimator.Query{L: 0, U: width}
		truth, err := f.series.RangeCount(q.L, q.U)
		if err != nil {
			return nil, err
		}
		var rankErr, basicErr stats.Running
		for trial := 0; trial < trials; trial++ {
			sets, err := f.draw(p, root.Child(int64(trial)))
			if err != nil {
				return nil, err
			}
			re, err := rc.Estimate(sets, q)
			if err != nil {
				return nil, err
			}
			be, err := bc.Estimate(sets, q)
			if err != nil {
				return nil, err
			}
			rankErr.Add(re - float64(truth))
			basicErr.Add(be - float64(truth))
		}
		bound := rc.VarianceBound(f.k)
		if err := res.Add(width, rankErr.StdDev(), basicErr.StdDev(), math.Sqrt(bound)); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// AblationOptimizer maps the ε′ landscape over the internal α′ split for
// a fixed problem — showing the interior optimum the grid search finds.
func AblationOptimizer(c Config) (*Result, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	prob := optimize.Problem{
		Accuracy: estimator.Accuracy{Alpha: 0.1, Delta: 0.6},
		P:        0.3,
		K:        c.K,
		N:        c.Records,
	}
	best, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "ablation-optimizer",
		Title:  fmt.Sprintf("epsilon' landscape over alpha' (optimum alpha'=%.4f eps'=%.4f)", best.AlphaPrime, best.EpsilonPrime),
		XLabel: "alpha_prime",
		Series: []string{"epsilon", "epsilon_prime", "delta_prime"},
	}
	for _, ap := range ps(0.005, 0.0995, 30) {
		plan, err := prob.EpsilonForAlphaPrime(ap)
		if err != nil {
			continue // infeasible grid point: skip, the landscape has a feasible core
		}
		if err := res.Add(ap, plan.Epsilon, plan.EpsilonPrime, plan.DeltaPrime); err != nil {
			return nil, err
		}
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("bench: optimizer landscape empty")
	}
	return res, nil
}

// AblationArbitrage measures the adversary's best cost ratio (attack cost
// over direct price) across target accuracies for a safe and an unsafe
// tariff: ≥1 everywhere for the safe one, <1 for the unsafe one.
func AblationArbitrage(c Config) (*Result, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	model := pricing.ChebyshevModel{N: c.Records}
	adv := pricing.Adversary{Model: model, MaxCopies: 128}
	menu := pricing.DefaultMenu()
	safe := pricing.BaseFeePlusInverse{Base: 1, C: 1e9}
	unsafe := pricing.UnsafeSteep{C: 1e16}
	res := &Result{
		Name:   "ablation-arbitrage",
		Title:  "best attack cost ratio vs target alpha (delta=0.8): safe vs unsafe tariff",
		XLabel: "target_alpha",
		Series: []string{"safe_ratio", "unsafe_ratio"},
	}
	for _, alpha := range []float64{0.03, 0.05, 0.08, 0.1, 0.15, 0.2} {
		target := estimator.Accuracy{Alpha: alpha, Delta: 0.8}
		safeRep, err := adv.Attack(safe, target, menu)
		if err != nil {
			return nil, err
		}
		unsafeRep, err := adv.Attack(unsafe, target, menu)
		if err != nil {
			return nil, err
		}
		sr, ur := ratioOr(safeRep), ratioOr(unsafeRep)
		if err := res.Add(alpha, sr, ur); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func ratioOr(r pricing.AttackReport) float64 {
	if r.Best == nil {
		return 1 // no strategy found: direct purchase is the only option
	}
	return r.CostRatio
}

// AblationTopology compares communication bytes of flat vs tree routing
// as the node count grows, at a fixed target accuracy.
func AblationTopology(c Config) (*Result, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	series, err := dataset.GenerateSeries(c.Pollutant, dataset.GenerateConfig{Seed: c.Seed, Records: c.Records})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "ablation-topology",
		Title:  "communication bytes vs node count: flat vs tree (fanout 4), p=0.1",
		XLabel: "nodes",
		Series: []string{"flat_bytes", "tree_bytes", "samples"},
	}
	for _, k := range []int{4, 8, 16, 32, 64, 128} {
		parts, err := series.Partition(k)
		if err != nil {
			return nil, err
		}
		run := func(topo iot.Topology) (iot.CostReport, error) {
			nw, err := iot.New(parts, iot.Config{Seed: c.Seed, Topology: topo, FreeHeartbeatSamples: -1})
			if err != nil {
				return iot.CostReport{}, err
			}
			if _, err := nw.EnsureRate(0.1); err != nil {
				return iot.CostReport{}, err
			}
			return nw.Cost(), nil
		}
		flat, err := run(iot.Flat)
		if err != nil {
			return nil, err
		}
		tree, err := run(iot.Tree)
		if err != nil {
			return nil, err
		}
		if err := res.Add(float64(k), float64(flat.Bytes), float64(tree.Bytes), float64(flat.SamplesShipped)); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// AblationWorkloads reports the sampling estimator's max relative error
// across qualitatively different query workloads at a fixed rate,
// demonstrating width-independence in practice.
func AblationWorkloads(c Config) (*Result, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	f, err := newFixture(c)
	if err != nil {
		return nil, err
	}
	gens := []struct {
		name string
		gen  func() ([]estimator.Query, error)
	}{
		{name: "paper-grid", gen: func() ([]estimator.Query, error) { return workload.PaperGrid(), nil }},
		{name: "uniform", gen: func() ([]estimator.Query, error) {
			return workload.Uniform{Min: 0, Max: 300, Seed: c.Seed}.Queries(45)
		}},
		{name: "narrow", gen: func() ([]estimator.Query, error) {
			return workload.WidthStratified{Min: 0, Max: 300, Widths: []float64{5, 10}, Seed: c.Seed}.Queries(45)
		}},
		{name: "quantile", gen: func() ([]estimator.Query, error) {
			return workload.QuantileAnchored{Values: f.series.Values, Seed: c.Seed}.Queries(45)
		}},
	}
	res := &Result{
		Name:   "ablation-workloads",
		Title:  "max relative error by workload shape (p=0.2)",
		XLabel: "workload_idx",
		Series: []string{"max_rel_error"},
	}
	const p = 0.2
	root := stats.NewRNG(c.Seed + 3)
	for gi, g := range gens {
		queries, err := g.gen()
		if err != nil {
			return nil, err
		}
		// Keep populated queries only, mirroring the fixture's floor
		// (≥2% of n here: the narrow-width workload has no 10% bands).
		var kept []estimator.Query
		var truths []float64
		for _, q := range queries {
			truth, err := f.series.RangeCount(q.L, q.U)
			if err != nil {
				return nil, err
			}
			if float64(truth) >= 0.02*float64(f.n) {
				kept = append(kept, q)
				truths = append(truths, float64(truth))
			}
		}
		queries = kept
		if len(queries) == 0 {
			return nil, fmt.Errorf("bench: workload %q has no populated queries", g.name)
		}
		var acc stats.Running
		rc := estimator.RankCounting{P: p}
		for trial := 0; trial < c.Trials; trial++ {
			sets, err := f.draw(p, root.Child(int64(gi*1000+trial)))
			if err != nil {
				return nil, err
			}
			worst := 0.0
			for i, q := range queries {
				est, err := rc.Estimate(sets, q)
				if err != nil {
					return nil, err
				}
				if rel := stats.RelativeError(est, truths[i], 1); rel > worst {
					worst = rel
				}
			}
			acc.Add(worst)
		}
		if err := res.Add(float64(gi), acc.Mean()); err != nil {
			return nil, err
		}
	}
	// Rename rows via title note: workload order is paper-grid, uniform,
	// narrow, quantile.
	return res, nil
}
