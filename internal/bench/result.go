// Package bench contains the experiment harness that regenerates every
// figure in the paper's evaluation (Figs 2–6) plus the ablations
// DESIGN.md calls out. Each runner is deterministic given its config and
// returns a Result — the same series the paper plots — which callers
// print as a text table or CSV. cmd/experiments and the repository-root
// benchmarks are thin wrappers over this package.
package bench

import (
	"fmt"
	"strings"
)

// Result is one experiment's output: an x-column plus one or more named
// y-series.
type Result struct {
	// Name is the experiment id, e.g. "fig2".
	Name string
	// Title describes the experiment.
	Title string
	// XLabel names the x column.
	XLabel string
	// Series names the y columns.
	Series []string
	// Rows holds the data; each row's Y has len(Series) entries.
	Rows []Row
}

// Row is one x position with its y values.
type Row struct {
	X float64
	Y []float64
}

// Add appends a row, validating its width.
func (r *Result) Add(x float64, ys ...float64) error {
	if len(ys) != len(r.Series) {
		return fmt.Errorf("bench: row has %d values, result has %d series", len(ys), len(r.Series))
	}
	r.Rows = append(r.Rows, Row{X: x, Y: ys})
	return nil
}

// Table renders the result as an aligned text table.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", r.Name, r.Title)
	fmt.Fprintf(&b, "%-12s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %14s", s)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12.5g", row.X)
		for _, y := range row.Y {
			fmt.Fprintf(&b, " %14.6g", y)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the result as CSV with a header row.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString(r.XLabel)
	for _, s := range r.Series {
		b.WriteByte(',')
		b.WriteString(s)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%g", row.X)
		for _, y := range row.Y {
			fmt.Fprintf(&b, ",%g", y)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Column returns one named series as a slice.
func (r *Result) Column(name string) ([]float64, error) {
	idx := -1
	for i, s := range r.Series {
		if s == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("bench: result %s has no series %q", r.Name, name)
	}
	out := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.Y[idx]
	}
	return out, nil
}

// Xs returns the x column.
func (r *Result) Xs() []float64 {
	out := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.X
	}
	return out
}
