package bench

import (
	"math"

	"privrange/internal/histogram"
	"privrange/internal/quantile"
	"privrange/internal/stats"
)

// aqiBoundaries are the standard pollution bands the histogram
// experiments release.
var aqiBoundaries = []float64{0, 50, 100, 150, 200, 300}

// AblationHistogram quantifies the parallel-composition advantage: mean
// absolute per-band noise of one ε-DP histogram release versus answering
// each band as a separate sequential range query at ε/B, across total
// budgets.
func AblationHistogram(c Config) (*Result, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	f, err := newFixture(c)
	if err != nil {
		return nil, err
	}
	const p = 0.3
	root := stats.NewRNG(c.Seed + 4)
	sets, err := f.draw(p, root.Child(0))
	if err != nil {
		return nil, err
	}
	b := histogram.Builder{P: p}
	base, err := b.Estimate(sets, aqiBoundaries)
	if err != nil {
		return nil, err
	}
	numBands := float64(base.Buckets())
	res := &Result{
		Name:   "ablation-histogram",
		Title:  "per-band noise: parallel composition vs per-band sequential queries (p=0.3)",
		XLabel: "total_epsilon",
		Series: []string{"parallel_mae", "sequential_mae"},
	}
	trials := c.Trials * 20
	for _, eps := range []float64{0.1, 0.2, 0.5, 1, 2} {
		var par, seq stats.Running
		rng := root.Child(int64(eps * 1000))
		for trial := 0; trial < trials; trial++ {
			hp, err := b.Private(sets, aqiBoundaries, eps, rng)
			if err != nil {
				return nil, err
			}
			hs, err := b.Private(sets, aqiBoundaries, eps/numBands, rng)
			if err != nil {
				return nil, err
			}
			for i := range base.Counts {
				par.Add(math.Abs(hp.Counts[i] - base.Counts[i]))
				seq.Add(math.Abs(hs.Counts[i] - base.Counts[i]))
			}
		}
		if err := res.Add(eps, par.Mean(), seq.Mean()); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// AblationQuantile measures private-quantile rank error (as a fraction
// of n) across privacy budgets for the median and the tails.
func AblationQuantile(c Config) (*Result, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	f, err := newFixture(c)
	if err != nil {
		return nil, err
	}
	const p = 0.3
	root := stats.NewRNG(c.Seed + 5)
	sets, err := f.draw(p, root.Child(0))
	if err != nil {
		return nil, err
	}
	est := quantile.Estimator{P: p}
	qs := []float64{0.1, 0.5, 0.9}
	series := []string{"q10_rank_err", "q50_rank_err", "q90_rank_err"}
	res := &Result{
		Name:   "ablation-quantile",
		Title:  "private quantile rank error (fraction of n) vs epsilon (p=0.3)",
		XLabel: "epsilon",
		Series: series,
	}
	// Exact rank oracle over the underlying series.
	rankOf := func(v float64) float64 {
		count := 0
		for _, x := range f.series.Values {
			if x <= v {
				count++
			}
		}
		return float64(count)
	}
	n := float64(f.n)
	trials := c.Trials * 4
	for _, eps := range []float64{0.05, 0.1, 0.5, 1, 2} {
		row := make([]float64, len(qs))
		rng := root.Child(int64(eps * 1000))
		for qi, q := range qs {
			var acc stats.Running
			for trial := 0; trial < trials; trial++ {
				v, err := est.PrivateQuantile(sets, q, eps, rng)
				if err != nil {
					return nil, err
				}
				acc.Add(math.Abs(rankOf(v)-q*n) / n)
			}
			row[qi] = acc.Mean()
		}
		if err := res.Add(eps, row...); err != nil {
			return nil, err
		}
	}
	return res, nil
}
