package bench

import (
	"fmt"
	"sort"

	"privrange/internal/dataset"
	"privrange/internal/estimator"
	"privrange/internal/sampling"
	"privrange/internal/stats"
	"privrange/internal/workload"
)

// Config carries the knobs shared by all experiment runners.
type Config struct {
	// Seed makes the experiment deterministic. Zero is a valid seed.
	Seed int64
	// Trials is the number of independent sample draws each measured
	// point averages over. Zero selects 5.
	Trials int
	// K is the simulated node count. Zero selects 10.
	K int
	// Records is the dataset size. Zero selects the CityPulse size
	// (17 568).
	Records int
	// Pollutant selects the series for single-series experiments. Zero
	// selects ozone.
	Pollutant dataset.Pollutant
}

func (c Config) withDefaults() Config {
	if c.Trials == 0 {
		c.Trials = 5
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.Records == 0 {
		c.Records = dataset.CityPulseRecords
	}
	if c.Pollutant == 0 {
		c.Pollutant = dataset.Ozone
	}
	return c
}

func (c Config) validate() error {
	if c.Trials < 1 {
		return fmt.Errorf("bench: trials %d < 1", c.Trials)
	}
	if c.K < 1 {
		return fmt.Errorf("bench: k %d < 1", c.K)
	}
	if c.Records < c.K {
		return fmt.Errorf("bench: records %d < k %d", c.Records, c.K)
	}
	if !c.Pollutant.Valid() {
		return fmt.Errorf("bench: invalid pollutant %d", int(c.Pollutant))
	}
	return nil
}

// fixture is a prepared dataset: per-node sorted partitions plus ground
// truth for the paper-grid workload.
type fixture struct {
	series  *dataset.Series
	sorted  [][]float64 // per-node sorted values
	queries []estimator.Query
	truths  []float64
	n       int
	k       int
}

// newFixture generates the series, partitions it, and precomputes the
// exact counts for the fixed workload.
func newFixture(c Config) (*fixture, error) {
	series, err := dataset.GenerateSeries(c.Pollutant, dataset.GenerateConfig{Seed: c.Seed, Records: c.Records})
	if err != nil {
		return nil, err
	}
	return newFixtureFromSeries(series, c.K)
}

func newFixtureFromSeries(series *dataset.Series, k int) (*fixture, error) {
	parts, err := series.Partition(k)
	if err != nil {
		return nil, err
	}
	f := &fixture{
		series:  series,
		queries: workload.PaperGrid(),
		n:       series.Len(),
		k:       k,
	}
	f.sorted = make([][]float64, k)
	for i, part := range parts {
		cp := make([]float64, len(part))
		copy(cp, part)
		sort.Float64s(cp)
		f.sorted[i] = cp
	}
	// Keep only queries over populated bands (truth ≥ 10% of the data).
	// Relative error against a near-empty range is dominated by the
	// estimator's additive deviation and says nothing about accuracy.
	// The 10% floor is the support level at which the paper's own numbers
	// become mutually consistent: at p = 0.0173 the estimator deviates by
	// ~√(8k)/p ≈ 520 records, which against a ≥1 757-record truth is the
	// ~27% worst case Fig 2 reports, and the ε = 0.1 noise of Fig 5
	// lands under its ~8% line the same way.
	var queries []estimator.Query
	var truths []float64
	for _, q := range f.queries {
		truth, err := series.RangeCount(q.L, q.U)
		if err != nil {
			return nil, err
		}
		if float64(truth) >= 0.10*float64(f.n) {
			queries = append(queries, q)
			truths = append(truths, float64(truth))
		}
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("bench: no sufficiently populated queries for this series")
	}
	f.queries, f.truths = queries, truths
	return f, nil
}

// draw produces one independent set of per-node samples at rate p.
func (f *fixture) draw(p float64, rng *stats.RNG) ([]*sampling.SampleSet, error) {
	sets := make([]*sampling.SampleSet, f.k)
	for i := range sets {
		set, err := sampling.Draw(f.sorted[i], p, rng.Child(int64(i)))
		if err != nil {
			return nil, err
		}
		sets[i] = set
	}
	return sets, nil
}

// maxRelError runs the whole workload against one sample draw with an
// optional per-query perturbation and returns the maximum relative error.
// perturb may be nil for the noise-free sampling experiments.
func (f *fixture) maxRelError(sets []*sampling.SampleSet, p float64, perturb func(est float64) float64) (float64, error) {
	rc := estimator.RankCounting{P: p}
	worst := 0.0
	for i, q := range f.queries {
		est, err := rc.Estimate(sets, q)
		if err != nil {
			return 0, err
		}
		if perturb != nil {
			est = perturb(est)
		}
		if rel := stats.RelativeError(est, f.truths[i], 1); rel > worst {
			worst = rel
		}
	}
	return worst, nil
}

// meanMaxBudgetError averages, over trials independent draws, the maximum
// over the workload of |est − truth| / (α·n): how much of the (α, δ)
// error budget the estimator consumes. This is the Fig 3 metric — at the
// Theorem 3.3 sampling rate the estimator's deviation scales with αn
// itself, so truth-relative error is not the quantity that stabilizes.
func (f *fixture) meanMaxBudgetError(c Config, p, alpha float64) (float64, error) {
	root := stats.NewRNG(c.Seed + 1)
	budget := alpha * float64(f.n)
	rc := estimator.RankCounting{P: p}
	var acc stats.Running
	for trial := 0; trial < c.Trials; trial++ {
		sets, err := f.draw(p, root.Child(int64(trial)))
		if err != nil {
			return 0, err
		}
		worst := 0.0
		for i, q := range f.queries {
			est, err := rc.Estimate(sets, q)
			if err != nil {
				return 0, err
			}
			if rel := stats.AbsoluteError(est, f.truths[i]) / budget; rel > worst {
				worst = rel
			}
		}
		acc.Add(worst)
	}
	return acc.Mean(), nil
}

// meanMaxRelError averages maxRelError over trials independent draws.
func (f *fixture) meanMaxRelError(c Config, p float64, mkPerturb func(rng *stats.RNG) func(float64) float64) (float64, error) {
	root := stats.NewRNG(c.Seed + 1)
	var acc stats.Running
	for trial := 0; trial < c.Trials; trial++ {
		rng := root.Child(int64(trial))
		sets, err := f.draw(p, rng)
		if err != nil {
			return 0, err
		}
		var perturb func(float64) float64
		if mkPerturb != nil {
			perturb = mkPerturb(rng.Child(1 << 30))
		}
		worst, err := f.maxRelError(sets, p, perturb)
		if err != nil {
			return 0, err
		}
		acc.Add(worst)
	}
	return acc.Mean(), nil
}
