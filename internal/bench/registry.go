package bench

import (
	"fmt"
	"sort"
)

// Runner produces one experiment's Result.
type Runner func(Config) (*Result, error)

// registry maps experiment ids to their runners.
var registry = map[string]Runner{
	"fig2":                Fig2,
	"fig3":                Fig3,
	"fig4":                Fig4,
	"fig5":                Fig5,
	"fig6":                Fig6,
	"ablation-baseline":   AblationBaseline,
	"ablation-estimators": AblationEstimators,
	"ablation-histogram":  AblationHistogram,
	"ablation-quantile":   AblationQuantile,
	"ablation-optimizer":  AblationOptimizer,
	"ablation-arbitrage":  AblationArbitrage,
	"ablation-topology":   AblationTopology,
	"ablation-workloads":  AblationWorkloads,
}

// Experiments lists all registered experiment ids in sorted order.
func Experiments() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment.
func Run(name string, c Config) (*Result, error) {
	runner, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", name, Experiments())
	}
	return runner(c)
}
