package bench

import (
	"strconv"

	"privrange/internal/dataset"
	"privrange/internal/dp"
	"privrange/internal/estimator"
	"privrange/internal/stats"
)

// Fig2 — "Querying accuracy affected by sampling probability p": maximum
// relative error of the noise-free sampling estimator as p sweeps the
// paper's range [0.0173, 0.4048]. Expected shape: high, oscillating error
// below p≈0.12; ≤ a few percent once ≥5–15% of data is sampled; flat
// beyond.
func Fig2(c Config) (*Result, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	f, err := newFixture(c)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "fig2",
		Title:  "max relative error vs sampling probability (noise-free)",
		XLabel: "p",
		Series: []string{"max_rel_error"},
	}
	for _, p := range ps(0.0173, 0.4048, 24) {
		worst, err := f.meanMaxRelError(c, p, nil)
		if err != nil {
			return nil, err
		}
		if err := res.Add(p, worst); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Fig3 — "Querying accuracy affected by (α, δ)": α and δ co-vary from
// 0.08 to 0.8; for each pair the sampling rate is set by Theorem 3.3 and
// the estimator's worst-case deviation is measured *relative to the
// accuracy budget αn* (error-budget utilization). Expected shape, as in
// the paper: the curve oscillates for δ below ≈0.3 and settles into a
// stable, lower band beyond — at the Theorem 3.3 rate the deviation
// scales as αn·√(1−δ), so utilization falls and steadies as δ grows.
// (The paper's absolute 0.019 value is not consistent with its own
// Theorem 3.3 under a truth-relative metric; see EXPERIMENTS.md.)
func Fig3(c Config) (*Result, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	f, err := newFixture(c)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "fig3",
		Title:  "error-budget utilization vs accuracy parameters (p from Thm 3.3)",
		XLabel: "alpha=delta",
		Series: []string{"budget_utilization", "required_p"},
	}
	for _, v := range ps(0.08, 0.8, 19) {
		acc := estimator.Accuracy{Alpha: v, Delta: v}
		p, err := estimator.RequiredProbability(acc, f.k, f.n)
		if err != nil {
			return nil, err
		}
		worst, err := f.meanMaxBudgetError(c, p, v)
		if err != nil {
			return nil, err
		}
		if err := res.Add(v, worst, p); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Fig4 — "Sampling probability and data size relationship": with
// α = 0.055 and δ = 0.5 fixed, the Theorem 3.3 sampling rate is computed
// as the dataset grows from 10% to 100% of the CityPulse size. Expected
// shape: required p decays ~1/n — the bigger the data, the smaller the
// fraction that must travel.
func Fig4(c Config) (*Result, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	series, err := dataset.GenerateSeries(c.Pollutant, dataset.GenerateConfig{Seed: c.Seed, Records: c.Records})
	if err != nil {
		return nil, err
	}
	acc := estimator.Accuracy{Alpha: 0.055, Delta: 0.5}
	res := &Result{
		Name:   "fig4",
		Title:  "required sampling probability vs data size (alpha=0.055, delta=0.5)",
		XLabel: "data_fraction",
		Series: []string{"required_p", "expected_samples"},
	}
	for frac := 0.1; frac <= 1.0001; frac += 0.1 {
		sub, err := series.Truncate(frac)
		if err != nil {
			return nil, err
		}
		p, err := estimator.RequiredProbability(acc, c.K, sub.Len())
		if err != nil {
			return nil, err
		}
		if err := res.Add(frac, p, estimator.ExpectedSamples(sub.Len(), p)); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Fig5 — "Querying accuracy affected by ε with p = 0.4": the full private
// pipeline (sampling + Laplace with sensitivity 1/p) is run for each of
// the five pollutant series as ε sweeps [0.01, 8]. Expected shape: error
// falls as ε grows; at ε = 0.1 the relative error stays under ~8% for all
// five series.
func Fig5(c Config) (*Result, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	const p = 0.4
	pollutants := dataset.Pollutants()
	series := make([]string, len(pollutants))
	fixtures := make([]*fixture, len(pollutants))
	for i, pol := range pollutants {
		series[i] = pol.String()
		pc := c
		pc.Pollutant = pol
		f, err := newFixture(pc)
		if err != nil {
			return nil, err
		}
		fixtures[i] = f
	}
	res := &Result{
		Name:   "fig5",
		Title:  "max relative error vs privacy budget epsilon (p=0.4, all 5 indexes)",
		XLabel: "epsilon",
		Series: series,
	}
	for _, eps := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 4, 8} {
		row := make([]float64, len(fixtures))
		for i, f := range fixtures {
			worst, err := f.meanMaxRelError(c, p, laplacePerturb(p, eps))
			if err != nil {
				return nil, err
			}
			row[i] = worst
		}
		if err := res.Add(eps, row...); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Fig6 — "Querying accuracy affected by p under different ε": the private
// pipeline's error as the sampling rate sweeps [0.0173, 0.25] for several
// privacy budgets. Expected shape: accuracy poor below p≈0.15 and
// improving with p — the estimator sensitivity (and so the noise) scales
// as 1/p.
func Fig6(c Config) (*Result, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	f, err := newFixture(c)
	if err != nil {
		return nil, err
	}
	budgets := []float64{0.1, 0.5, 1, 2}
	names := make([]string, len(budgets))
	for i, eps := range budgets {
		names[i] = "eps=" + trimFloat(eps)
	}
	res := &Result{
		Name:   "fig6",
		Title:  "max relative error vs sampling probability under several epsilon",
		XLabel: "p",
		Series: names,
	}
	for _, p := range ps(0.0173, 0.25, 16) {
		row := make([]float64, len(budgets))
		for i, eps := range budgets {
			worst, err := f.meanMaxRelError(c, p, laplacePerturb(p, eps))
			if err != nil {
				return nil, err
			}
			row[i] = worst
		}
		if err := res.Add(p, row...); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// laplacePerturb builds the per-trial perturbation used by Figs 5 and 6:
// fresh Lap(Δγ̂/ε) noise per query with the paper's expected sensitivity
// Δγ̂ = 1/p.
func laplacePerturb(p, eps float64) func(rng *stats.RNG) func(float64) float64 {
	return func(rng *stats.RNG) func(float64) float64 {
		noise := dp.Laplace{Scale: (1 / p) / eps}
		return func(est float64) float64 {
			return est + noise.Sample(rng)
		}
	}
}

// ps returns count points evenly spaced over [lo, hi] inclusive.
func ps(lo, hi float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(count-1)
	}
	return out
}

// trimFloat formats a float compactly for series names.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
