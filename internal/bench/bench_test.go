package bench

import (
	"math"
	"strings"
	"testing"
)

// fastCfg runs at the full CityPulse size (the absolute error thresholds
// below depend on it) but with few trials to keep CI quick.
func fastCfg() Config {
	return Config{Seed: 1, Trials: 3, K: 10}
}

func TestResultTableAndCSV(t *testing.T) {
	t.Parallel()
	r := &Result{Name: "x", Title: "demo", XLabel: "p", Series: []string{"a", "b"}}
	if err := r.Add(0.5, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(0.6, 3); err == nil {
		t.Error("wrong row width should fail")
	}
	table := r.Table()
	if !strings.Contains(table, "demo") || !strings.Contains(table, "0.5") {
		t.Errorf("table missing content:\n%s", table)
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "p,a,b\n") || !strings.Contains(csv, "0.5,1,2") {
		t.Errorf("csv malformed:\n%s", csv)
	}
	col, err := r.Column("b")
	if err != nil || len(col) != 1 || col[0] != 2 {
		t.Errorf("Column = %v, %v", col, err)
	}
	if _, err := r.Column("zz"); err == nil {
		t.Error("unknown column should fail")
	}
	if xs := r.Xs(); len(xs) != 1 || xs[0] != 0.5 {
		t.Errorf("Xs = %v", xs)
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	bad := []Config{
		{Trials: -1, Records: 1000},
		{K: -2, Records: 1000},
		{K: 100, Records: 10},
		{Pollutant: 99, Records: 1000},
	}
	for i, c := range bad {
		if _, err := Fig2(c); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	t.Parallel()
	res, err := Fig2(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 24 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	errs, err := res.Column("max_rel_error")
	if err != nil {
		t.Fatal(err)
	}
	xs := res.Xs()
	// Error at the smallest p should exceed error at the largest p: the
	// headline monotone trend of Fig 2.
	if errs[0] <= errs[len(errs)-1] {
		t.Errorf("error should fall with p: first %v last %v", errs[0], errs[len(errs)-1])
	}
	// Beyond p≈0.15 the error should be small and stable (paper: ≤~3%
	// already above 5%; allow slack for the smaller test dataset).
	for i, p := range xs {
		if p >= 0.15 && errs[i] > 0.10 {
			t.Errorf("error %v at p=%v too large for the stable regime", errs[i], p)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	t.Parallel()
	res, err := Fig3(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	util, err := res.Column("budget_utilization")
	if err != nil {
		t.Fatal(err)
	}
	ps, err := res.Column("required_p")
	if err != nil {
		t.Fatal(err)
	}
	xs := res.Xs()
	var loMax, hiMax float64
	for i, v := range xs {
		if ps[i] <= 0 || ps[i] > 1 {
			t.Errorf("required p %v out of range at %v", ps[i], v)
		}
		// Utilization must never breach the contract wildly: the Thm 3.3
		// rate guarantees deviation ~αn·√(1−δ), comfortably under ~1.5
		// even at δ=0.08.
		if util[i] > 1.5 {
			t.Errorf("budget utilization %v at alpha=delta=%v breaches the contract", util[i], v)
		}
		if v < 0.3 && util[i] > loMax {
			loMax = util[i]
		}
		if v >= 0.3 && util[i] > hiMax {
			hiMax = util[i]
		}
	}
	// Paper shape: unstable/high below δ≈0.3, stable lower band above.
	if hiMax >= loMax {
		t.Errorf("utilization should settle for delta > 0.3: below=%v above=%v", loMax, hiMax)
	}
}

func TestFig4Shape(t *testing.T) {
	t.Parallel()
	res, err := Fig4(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	ps, err := res.Column("required_p")
	if err != nil {
		t.Fatal(err)
	}
	// Required sampling rate must strictly fall as data grows (~1/n).
	for i := 1; i < len(ps); i++ {
		if ps[i] >= ps[i-1] {
			t.Errorf("required p should decrease with data size: %v", ps)
			break
		}
	}
	// And the expected sample count stays flat (it is √(8k)·2/(α√(1−δ))).
	samples, err := res.Column("expected_samples")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(samples); i++ {
		if math.Abs(samples[i]-samples[0]) > 1.5 {
			t.Errorf("expected sample volume should be size-independent: %v", samples)
			break
		}
	}
}

func TestFig5Shape(t *testing.T) {
	t.Parallel()
	cfg := fastCfg()
	cfg.Trials = 2
	res, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("fig5 should have 5 pollutant series, got %d", len(res.Series))
	}
	xs := res.Xs()
	for _, name := range res.Series {
		errs, err := res.Column(name)
		if err != nil {
			t.Fatal(err)
		}
		// Error at eps=0.01 should dominate error at eps=8.
		if errs[0] <= errs[len(errs)-1] {
			t.Errorf("%s: error should fall with epsilon: %v", name, errs)
		}
		// Paper: at eps >= 0.1 relative error stays under ~8%.
		for i, eps := range xs {
			if eps >= 0.1 && errs[i] > 0.15 {
				t.Errorf("%s: error %v at eps=%v too large", name, errs[i], eps)
			}
		}
	}
}

func TestFig6Shape(t *testing.T) {
	t.Parallel()
	cfg := fastCfg()
	res, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("fig6 should have 4 epsilon series, got %d", len(res.Series))
	}
	for _, name := range res.Series {
		errs, err := res.Column(name)
		if err != nil {
			t.Fatal(err)
		}
		// Larger p ⇒ smaller sensitivity ⇒ less noise: last point better
		// than first.
		if errs[0] <= errs[len(errs)-1] {
			t.Errorf("%s: error should fall with p: first %v last %v", name, errs[0], errs[len(errs)-1])
		}
	}
	// At fixed p, a bigger budget must not hurt: compare series means.
	means := make([]float64, len(res.Series))
	for si, name := range res.Series {
		errs, _ := res.Column(name)
		sum := 0.0
		for _, e := range errs {
			sum += e
		}
		means[si] = sum / float64(len(errs))
	}
	for i := 1; i < len(means); i++ {
		if means[i] > means[i-1]*1.1 {
			t.Errorf("mean error should not grow with epsilon: %v", means)
		}
	}
}

func TestAblationEstimatorsShape(t *testing.T) {
	t.Parallel()
	cfg := fastCfg()
	cfg.Trials = 2
	res, err := AblationEstimators(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rank, err := res.Column("rank_sd")
	if err != nil {
		t.Fatal(err)
	}
	basic, err := res.Column("basic_sd")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := res.Column("rank_bound_sd")
	if err != nil {
		t.Fatal(err)
	}
	// On the widest range, Basic must be far worse than Rank; Rank must
	// respect its analytic bound.
	last := len(res.Rows) - 1
	if basic[last] < 3*rank[last] {
		t.Errorf("BasicCounting sd %v should dwarf RankCounting %v on wide ranges", basic[last], rank[last])
	}
	for i := range rank {
		if rank[i] > bound[i]*1.15 {
			t.Errorf("rank sd %v exceeds bound %v at row %d", rank[i], bound[i], i)
		}
	}
}

func TestAblationOptimizerShape(t *testing.T) {
	t.Parallel()
	res, err := AblationOptimizer(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	eps, err := res.Column("epsilon_prime")
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) < 5 {
		t.Fatalf("landscape too sparse: %d rows", len(eps))
	}
	// The landscape should have an interior minimum: the minimum should
	// not sit at either extreme of the feasible grid.
	minIdx := 0
	for i, v := range eps {
		if v < eps[minIdx] {
			minIdx = i
		}
	}
	if minIdx == 0 || minIdx == len(eps)-1 {
		t.Errorf("epsilon' minimum at grid edge (idx %d of %d): %v", minIdx, len(eps), eps)
	}
}

func TestAblationArbitrageShape(t *testing.T) {
	t.Parallel()
	res, err := AblationArbitrage(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	safe, err := res.Column("safe_ratio")
	if err != nil {
		t.Fatal(err)
	}
	unsafe, err := res.Column("unsafe_ratio")
	if err != nil {
		t.Fatal(err)
	}
	for i := range safe {
		if safe[i] < 1-1e-9 {
			t.Errorf("safe tariff beaten at row %d: ratio %v", i, safe[i])
		}
		if unsafe[i] >= 1 {
			t.Errorf("unsafe tariff should be beaten at row %d: ratio %v", i, unsafe[i])
		}
	}
}

func TestAblationTopologyShape(t *testing.T) {
	t.Parallel()
	res, err := AblationTopology(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	flat, err := res.Column("flat_bytes")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := res.Column("tree_bytes")
	if err != nil {
		t.Fatal(err)
	}
	for i := range flat {
		if tree[i] < flat[i] {
			t.Errorf("tree bytes %v below flat %v at row %d", tree[i], flat[i], i)
		}
	}
}

func TestAblationWorkloads(t *testing.T) {
	t.Parallel()
	cfg := fastCfg()
	cfg.Trials = 2
	res, err := AblationWorkloads(cfg)
	if err != nil {
		t.Fatal(err)
	}
	errs, err := res.Column("max_rel_error")
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 4 {
		t.Fatalf("want 4 workloads, got %d", len(errs))
	}
	for i, e := range errs {
		// The narrow workload's floor is 2% of n, so its worst case is
		// ~√(8k)/p / (0.02n) ≈ 0.13 plus max-statistics slack.
		if e > 0.5 {
			t.Errorf("workload %d error %v implausibly large at p=0.2", i, e)
		}
	}
}

func TestRegistry(t *testing.T) {
	t.Parallel()
	names := Experiments()
	if len(names) != 13 {
		t.Fatalf("registry has %d experiments", len(names))
	}
	if _, err := Run("fig4", fastCfg()); err != nil {
		t.Errorf("Run(fig4): %v", err)
	}
	if _, err := Run("nope", fastCfg()); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	cfg := fastCfg()
	a, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CSV() != b.CSV() {
		t.Error("same config should reproduce identical results")
	}
}

func TestAblationHistogramShape(t *testing.T) {
	t.Parallel()
	cfg := fastCfg()
	cfg.Trials = 2
	res, err := AblationHistogram(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := res.Column("parallel_mae")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := res.Column("sequential_mae")
	if err != nil {
		t.Fatal(err)
	}
	for i := range par {
		// 5 bands: sequential pays ~5x the noise scale.
		if seq[i] < 2*par[i] {
			t.Errorf("row %d: sequential %v should be far noisier than parallel %v", i, seq[i], par[i])
		}
	}
	// Noise shrinks as budget grows.
	if par[len(par)-1] >= par[0] {
		t.Errorf("parallel noise should fall with epsilon: %v", par)
	}
}

func TestAblationQuantileShape(t *testing.T) {
	t.Parallel()
	cfg := fastCfg()
	cfg.Trials = 2
	res, err := AblationQuantile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range res.Series {
		errs, err := res.Column(name)
		if err != nil {
			t.Fatal(err)
		}
		// Rank error should fall (weakly) as epsilon grows and be small
		// at generous budgets.
		if errs[len(errs)-1] > errs[0]+1e-9 {
			t.Errorf("%s: rank error should not grow with epsilon: %v", name, errs)
		}
		if errs[len(errs)-1] > 0.05 {
			t.Errorf("%s: rank error %v at eps=2 too large", name, errs[len(errs)-1])
		}
	}
}

func TestAblationBaselineCrossover(t *testing.T) {
	t.Parallel()
	cfg := fastCfg()
	res, err := AblationBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samp, err := res.Column("sampling_mae")
	if err != nil {
		t.Fatal(err)
	}
	dy, err := res.Column("dyadic_mae")
	if err != nil {
		t.Fatal(err)
	}
	// Few queries: the adaptive sampling pipeline wins. Many queries: the
	// one-shot dyadic release wins. That crossover is the point.
	if samp[0] >= dy[0] {
		t.Errorf("at Q=1 sampling (%v) should beat dyadic (%v)", samp[0], dy[0])
	}
	last := len(samp) - 1
	if samp[last] <= dy[last] {
		t.Errorf("at Q=100 dyadic (%v) should beat sampling (%v)", dy[last], samp[last])
	}
	// Sampling error must grow with Q (budget splits); dyadic must not.
	if samp[last] <= samp[0] {
		t.Errorf("sampling error should grow with Q: %v", samp)
	}
	// Communication: sampling ships far fewer values than the dyadic
	// baseline's full centralization.
	comm, err := res.Column("sampling_comm_samples")
	if err != nil {
		t.Fatal(err)
	}
	full, err := res.Column("dyadic_comm_records")
	if err != nil {
		t.Fatal(err)
	}
	if comm[0] >= full[0] {
		t.Errorf("sampling comm %v should be below full centralization %v", comm[0], full[0])
	}
}
