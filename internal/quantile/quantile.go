// Package quantile estimates quantiles of the distributed dataset from
// the very same rank-annotated samples the range-counting pipeline
// collects — no extra communication. This is the companion aggregate the
// paper builds on (its reference [6], "Approximate aggregation for
// tracking quantiles and range countings in wireless sensor networks"),
// implemented over this repository's sampling substrate.
//
// Core quantity: the global rank-below-or-equal R(v) = Σ_i |{x ∈ D_i :
// x ≤ v}|. Per node, the sampled predecessor-or-equal of v at rank ρ
// leaves a truncated-geometric gap to the true local rank, so
// ρ + (1/p − 1) is an unbiased local estimate (0 when no sample lies at
// or below v) — the same boundary algebra as the RankCounting estimator,
// one-sided. A monotone search over sampled values then inverts R̂ to
// answer quantile queries, and the exponential mechanism releases a
// differentially-private quantile over a value grid.
package quantile

import (
	"fmt"
	"sort"

	"privrange/internal/dp"
	"privrange/internal/sampling"
	"privrange/internal/stats"
)

// Estimator answers rank and quantile queries over per-node sample sets
// drawn at rate P.
type Estimator struct {
	// P is the Bernoulli sampling rate the sets were drawn with.
	P float64
}

func (e Estimator) validate(sets []*sampling.SampleSet) error {
	if e.P <= 0 || e.P > 1 {
		return fmt.Errorf("quantile: sampling probability %v outside (0, 1]", e.P)
	}
	if len(sets) == 0 {
		return fmt.Errorf("quantile: no sample sets")
	}
	for i, set := range sets {
		if set == nil {
			return fmt.Errorf("quantile: nil sample set for node %d", i)
		}
	}
	return nil
}

// RankLE estimates R(v) = |{x ∈ D : x ≤ v}|, unbiasedly.
func (e Estimator) RankLE(sets []*sampling.SampleSet, v float64) (float64, error) {
	if err := e.validate(sets); err != nil {
		return 0, err
	}
	total := 0.0
	for _, set := range sets {
		total += e.rankLENode(set, v)
	}
	return total, nil
}

func (e Estimator) rankLENode(set *sampling.SampleSet, v float64) float64 {
	// Largest sample with value ≤ v.
	idx := sort.Search(len(set.Samples), func(i int) bool {
		return set.Samples[i].Value > v
	})
	if idx == 0 {
		return 0
	}
	return float64(set.Samples[idx-1].Rank) + 1/e.P - 1
}

// RankLT estimates |{x ∈ D : x < v}|, the strict variant of RankLE;
// histogram building uses it to count half-open bands exactly.
func (e Estimator) RankLT(sets []*sampling.SampleSet, v float64) (float64, error) {
	if err := e.validate(sets); err != nil {
		return 0, err
	}
	total := 0.0
	for _, set := range sets {
		pred, ok := set.PredecessorStrict(v)
		if !ok {
			continue
		}
		total += float64(pred.Rank) + 1/e.P - 1
	}
	return total, nil
}

// totalN sums the per-node dataset sizes.
func totalN(sets []*sampling.SampleSet) int {
	n := 0
	for _, set := range sets {
		n += set.N
	}
	return n
}

// mergedValues returns the sorted distinct sampled values across nodes —
// the candidate set every quantile search walks.
func mergedValues(sets []*sampling.SampleSet) []float64 {
	var out []float64
	for _, set := range sets {
		for _, s := range set.Samples {
			out = append(out, s.Value)
		}
	}
	sort.Float64s(out)
	// Deduplicate in place.
	dst := 0
	for i, v := range out {
		if i == 0 || v != out[dst-1] {
			out[dst] = v
			dst++
		}
	}
	return out[:dst]
}

// Quantile estimates the q-quantile of D (0 < q < 1): the smallest
// sampled value whose estimated global rank reaches q·n. It returns an
// error when q is out of range or no samples exist.
func (e Estimator) Quantile(sets []*sampling.SampleSet, q float64) (float64, error) {
	if err := e.validate(sets); err != nil {
		return 0, err
	}
	if q <= 0 || q >= 1 {
		return 0, fmt.Errorf("quantile: q %v outside (0, 1)", q)
	}
	values := mergedValues(sets)
	if len(values) == 0 {
		return 0, fmt.Errorf("quantile: no samples collected")
	}
	target := q * float64(totalN(sets))
	// R̂ is monotone non-decreasing in v, so binary search applies.
	idx := sort.Search(len(values), func(i int) bool {
		r, err := e.RankLE(sets, values[i])
		return err == nil && r >= target
	})
	if idx == len(values) {
		idx = len(values) - 1
	}
	return values[idx], nil
}

// PrivateQuantile releases an ε-differentially-private q-quantile using
// the exponential mechanism over the sampled candidate values with
// utility u(v) = −|R̂(v) − q·n|. The utility's sensitivity under the
// sampled estimator is its expected per-record influence 1/p (the same
// expected-sensitivity convention the paper uses for its Laplace noise).
func (e Estimator) PrivateQuantile(sets []*sampling.SampleSet, q, epsilon float64, rng *stats.RNG) (float64, error) {
	if err := e.validate(sets); err != nil {
		return 0, err
	}
	if q <= 0 || q >= 1 {
		return 0, fmt.Errorf("quantile: q %v outside (0, 1)", q)
	}
	values := mergedValues(sets)
	if len(values) == 0 {
		return 0, fmt.Errorf("quantile: no samples collected")
	}
	target := q * float64(totalN(sets))
	utilities := make([]float64, len(values))
	for i, v := range values {
		r, err := e.RankLE(sets, v)
		if err != nil {
			return 0, err
		}
		diff := r - target
		if diff < 0 {
			diff = -diff
		}
		utilities[i] = -diff
	}
	mech, err := dp.NewExponentialMechanism(epsilon, 1/e.P)
	if err != nil {
		return 0, err
	}
	idx, err := mech.Select(utilities, rng)
	if err != nil {
		return 0, err
	}
	return values[idx], nil
}

// Summary reports a batch of common quantiles in one pass.
type Summary struct {
	Median   float64
	P25, P75 float64
	P05, P95 float64
}

// Summarize estimates the five standard summary quantiles.
func (e Estimator) Summarize(sets []*sampling.SampleSet) (Summary, error) {
	var s Summary
	targets := []struct {
		q   float64
		dst *float64
	}{
		{q: 0.05, dst: &s.P05},
		{q: 0.25, dst: &s.P25},
		{q: 0.5, dst: &s.Median},
		{q: 0.75, dst: &s.P75},
		{q: 0.95, dst: &s.P95},
	}
	for _, t := range targets {
		v, err := e.Quantile(sets, t.q)
		if err != nil {
			return Summary{}, err
		}
		*t.dst = v
	}
	return s, nil
}
