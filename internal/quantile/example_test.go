package quantile_test

import (
	"fmt"
	"log"
	"sort"

	"privrange/internal/dataset"
	"privrange/internal/quantile"
	"privrange/internal/sampling"
	"privrange/internal/stats"
)

// Example estimates quantiles — and releases a private median — from the
// very same rank-annotated samples the range-counting pipeline collects.
func Example() {
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 1, Records: 8000})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := series.Partition(8)
	if err != nil {
		log.Fatal(err)
	}
	const p = 0.3
	root := stats.NewRNG(2)
	sets := make([]*sampling.SampleSet, len(parts))
	for i, part := range parts {
		cp := make([]float64, len(part))
		copy(cp, part)
		sort.Float64s(cp)
		sets[i], err = sampling.Draw(cp, p, root.Child(int64(i)))
		if err != nil {
			log.Fatal(err)
		}
	}
	est := quantile.Estimator{P: p}
	median, err := est.Quantile(sets, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	private, err := est.PrivateQuantile(sets, 0.5, 1.0, stats.NewRNG(3))
	if err != nil {
		log.Fatal(err)
	}
	// Both land near the true median.
	sorted := make([]float64, len(series.Values))
	copy(sorted, series.Values)
	sort.Float64s(sorted)
	truth := sorted[len(sorted)/2]
	fmt.Println("estimate near truth:", median > truth-5 && median < truth+5)
	fmt.Println("private release near truth:", private > truth-10 && private < truth+10)
	// Output:
	// estimate near truth: true
	// private release near truth: true
}
