package quantile

import (
	"math"
	"sort"
	"testing"

	"privrange/internal/dataset"
	"privrange/internal/dp"
	"privrange/internal/sampling"
	"privrange/internal/stats"
)

// drawSets partitions a series and samples each node at rate p.
func drawSets(t *testing.T, series *dataset.Series, k int, p float64, seed int64) []*sampling.SampleSet {
	t.Helper()
	parts, err := series.Partition(k)
	if err != nil {
		t.Fatal(err)
	}
	root := stats.NewRNG(seed)
	sets := make([]*sampling.SampleSet, k)
	for i, part := range parts {
		cp := make([]float64, len(part))
		copy(cp, part)
		sort.Float64s(cp)
		set, err := sampling.Draw(cp, p, root.Child(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = set
	}
	return sets
}

// trueRankLE counts |{x <= v}| exactly.
func trueRankLE(series *dataset.Series, v float64) int {
	c := 0
	for _, x := range series.Values {
		if x <= v {
			c++
		}
	}
	return c
}

// trueQuantile returns the exact q-quantile (lower value convention).
func trueQuantile(series *dataset.Series, q float64) float64 {
	sorted := make([]float64, len(series.Values))
	copy(sorted, series.Values)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func TestEstimatorValidation(t *testing.T) {
	t.Parallel()
	e := Estimator{P: 0}
	if _, err := e.RankLE(nil, 1); err == nil {
		t.Error("p=0 should fail")
	}
	e = Estimator{P: 0.5}
	if _, err := e.RankLE(nil, 1); err == nil {
		t.Error("no sets should fail")
	}
	if _, err := e.RankLE([]*sampling.SampleSet{nil}, 1); err == nil {
		t.Error("nil set should fail")
	}
	sets := []*sampling.SampleSet{{N: 5}}
	if _, err := e.Quantile(sets, 0); err == nil {
		t.Error("q=0 should fail")
	}
	if _, err := e.Quantile(sets, 1); err == nil {
		t.Error("q=1 should fail")
	}
	if _, err := e.Quantile(sets, 0.5); err == nil {
		t.Error("empty samples should fail")
	}
	if _, err := e.PrivateQuantile(sets, 0.5, 1, stats.NewRNG(1)); err == nil {
		t.Error("private quantile over empty samples should fail")
	}
}

func TestRankLEExactAtFullSampling(t *testing.T) {
	t.Parallel()
	values := []float64{1, 2, 2, 5, 9}
	set, err := sampling.Draw(values, 1, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	e := Estimator{P: 1}
	cases := []struct {
		v    float64
		want float64
	}{
		{v: 0, want: 0},
		{v: 1, want: 1},
		{v: 2, want: 3},
		{v: 4, want: 3},
		{v: 9, want: 5},
		{v: 100, want: 5},
	}
	for _, tc := range cases {
		got, err := e.RankLE([]*sampling.SampleSet{set}, tc.v)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("RankLE(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestRankLEUnbiased(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 7, Records: 3000})
	if err != nil {
		t.Fatal(err)
	}
	sorted := make([]float64, len(series.Values))
	copy(sorted, series.Values)
	sort.Float64s(sorted)
	const (
		p      = 0.06
		trials = 4000
		probe  = 70.0
	)
	truth := float64(trueRankLE(series, probe))
	e := Estimator{P: p}
	root := stats.NewRNG(9)
	var errs stats.Running
	for trial := 0; trial < trials; trial++ {
		set, err := sampling.Draw(sorted, p, root.Child(int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.RankLE([]*sampling.SampleSet{set}, probe)
		if err != nil {
			t.Fatal(err)
		}
		errs.Add(got - truth)
	}
	if se := errs.StdErr(); math.Abs(errs.Mean()) > 4*se {
		t.Errorf("rank estimate biased: mean error %v (4 SE = %v)", errs.Mean(), 4*se)
	}
	// One-sided boundary: variance ≤ (1−p)/p² per node, comfortably
	// under the two-sided 8/p² bound.
	if bound := 8 / (p * p); errs.Variance() > bound {
		t.Errorf("variance %v above bound %v", errs.Variance(), bound)
	}
}

func TestQuantileAccuracy(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.ParticulateMatter, dataset.GenerateConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sets := drawSets(t, series, 10, 0.2, 11)
	e := Estimator{P: 0.2}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got, err := e.Quantile(sets, q)
		if err != nil {
			t.Fatal(err)
		}
		// Rank-space check. Values are integer-discretized, so a single
		// value owns a whole rank interval [rankLT+1, rankLE]; the target
		// rank must fall within 2% of n of that interval.
		rankLE := float64(trueRankLE(series, got))
		rankLT := float64(trueRankLE(series, got-0.5))
		target := q * float64(series.Len())
		tol := 0.02 * float64(series.Len())
		if target > rankLE+tol || target < rankLT-tol {
			t.Errorf("q=%v: returned value %v covers ranks (%v, %v], target %v", q, got, rankLT, rankLE, target)
		}
	}
}

func TestSummarizeOrdered(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.CarbonMonoxide, dataset.GenerateConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sets := drawSets(t, series, 8, 0.25, 13)
	s, err := Estimator{P: 0.25}.Summarize(sets)
	if err != nil {
		t.Fatal(err)
	}
	if !(s.P05 <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 && s.P75 <= s.P95) {
		t.Errorf("summary quantiles out of order: %+v", s)
	}
	if med := trueQuantile(series, 0.5); math.Abs(s.Median-med) > 10 {
		t.Errorf("median %v far from true %v", s.Median, med)
	}
}

func TestPrivateQuantileAccuracy(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.NitrogenDioxide, dataset.GenerateConfig{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	sets := drawSets(t, series, 10, 0.3, 19)
	e := Estimator{P: 0.3}
	rng := stats.NewRNG(21)
	const q = 0.5
	target := q * float64(series.Len())
	// With a healthy budget the exponential mechanism should stay near
	// the target rank in the vast majority of draws.
	misses := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		v, err := e.PrivateQuantile(sets, q, 1.0, rng)
		if err != nil {
			t.Fatal(err)
		}
		if gotRank := float64(trueRankLE(series, v)); math.Abs(gotRank-target) > 0.05*float64(series.Len()) {
			misses++
		}
	}
	if misses > trials/10 {
		t.Errorf("private median missed the ±5%% rank band %d/%d times", misses, trials)
	}
}

func TestPrivateQuantileBudgetMatters(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.SulfurDioxide, dataset.GenerateConfig{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	sets := drawSets(t, series, 10, 0.3, 25)
	e := Estimator{P: 0.3}
	spread := func(eps float64, seed int64) float64 {
		rng := stats.NewRNG(seed)
		var w stats.Running
		for i := 0; i < 60; i++ {
			v, err := e.PrivateQuantile(sets, 0.5, eps, rng)
			if err != nil {
				t.Fatal(err)
			}
			w.Add(float64(trueRankLE(series, v)))
		}
		return w.StdDev()
	}
	tight := spread(5, 1)
	loose := spread(0.01, 2)
	if loose <= tight {
		t.Errorf("smaller budget should spread the selection more: eps=5 sd=%v, eps=0.01 sd=%v", tight, loose)
	}
}

func TestExponentialMechanismDistribution(t *testing.T) {
	t.Parallel()
	// Direct check on dp.ExponentialMechanism: selection frequencies
	// should follow softmax(ε·u/2Δ).
	mech, err := dp.NewExponentialMechanism(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	utilities := []float64{0, -1, -3}
	rng := stats.NewRNG(31)
	counts := make([]int, len(utilities))
	const trials = 100000
	for i := 0; i < trials; i++ {
		idx, err := mech.Select(utilities, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	norm := 0.0
	want := make([]float64, len(utilities))
	for i, u := range utilities {
		want[i] = math.Exp(u)
		norm += want[i]
	}
	for i := range want {
		want[i] /= norm
		got := float64(counts[i]) / trials
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("candidate %d: frequency %v, want %v", i, got, want[i])
		}
	}
}

func TestExponentialMechanismValidation(t *testing.T) {
	t.Parallel()
	if _, err := dp.NewExponentialMechanism(0, 1); err == nil {
		t.Error("epsilon=0 should fail")
	}
	if _, err := dp.NewExponentialMechanism(1, 0); err == nil {
		t.Error("sensitivity=0 should fail")
	}
	mech, err := dp.NewExponentialMechanism(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	if _, err := mech.Select(nil, rng); err == nil {
		t.Error("empty candidates should fail")
	}
	if _, err := mech.Select([]float64{math.NaN()}, rng); err == nil {
		t.Error("NaN utility should fail")
	}
}
