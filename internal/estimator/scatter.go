package estimator

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"privrange/internal/index"
	"privrange/internal/sampling"
)

// This file holds the scatter forms of the batched estimators, built for
// sharded deployments. A shard cannot return per-query partial sums:
// float addition is not associative, so summing per-shard partials would
// break the engine's bit-identity guarantee the moment nodes of
// different shards interleave in global id order. Instead each shard
// scatters its raw per-node terms into the caller's global (rows × m)
// table at the nodes' global rows, and the caller reduces every query's
// column in row order — exactly the node-index-order reduction the
// single-broker batch path performs, so the final estimates match it
// bit-for-bit for any shard count.

// validateScatter checks the preconditions shared by both scatter forms.
// k is the local node count; dst must hold whole rows of stride m and
// every rows[j] must address one of them.
func validateScatter(k int, queries []Query, rows []int, dst []float64, p float64) error {
	if p <= 0 || p > 1 {
		return fmt.Errorf("estimator: sampling probability %v outside (0, 1]", p)
	}
	for i, q := range queries {
		if err := q.Validate(); err != nil {
			return fmt.Errorf("estimator: scatter query %d: %w", i, err)
		}
	}
	if len(rows) != k {
		return fmt.Errorf("estimator: scatter rows length %d != %d nodes", len(rows), k)
	}
	m := len(queries)
	if m == 0 {
		return fmt.Errorf("estimator: scatter with no queries")
	}
	if len(dst)%m != 0 {
		return fmt.Errorf("estimator: scatter dst length %d not a multiple of %d queries", len(dst), m)
	}
	totalRows := len(dst) / m
	for j, row := range rows {
		if row < 0 || row >= totalRows {
			return fmt.Errorf("estimator: scatter row %d for node %d outside dst's %d rows", row, j, totalRows)
		}
	}
	return nil
}

// EstimateIndexScatter evaluates every query against every node of the
// columnar index and writes the raw per-node term for (node j, query qi)
// into dst[rows[j]*m+qi], m = len(queries), with no reduction. Each term
// is bit-identical to the one EstimateIndexBatch would fold into its
// node-order sum, so a caller reducing dst rows in order reproduces the
// unsharded batch exactly. Distinct rows touch disjoint cells, so
// concurrent scatters into one dst are safe as long as their row sets
// are disjoint.
func (r RankCounting) EstimateIndexScatter(ix *index.Index, queries []Query, rows []int, dst []float64) error {
	if ix == nil {
		return fmt.Errorf("estimator: nil sample index")
	}
	if err := validateScatter(ix.Nodes(), queries, rows, dst, r.P); err != nil {
		return err
	}
	k, m := ix.Nodes(), len(queries)
	scatterTiles(k, m, m*flatEstimateWork(ix), func(n0, n1, q0, q1 int) {
		for j := n0; j < n1; j++ {
			values, ranks, n := ix.Node(j)
			row := dst[rows[j]*m : rows[j]*m+m]
			for qi := q0; qi < q1; qi++ {
				row[qi] = rankNodeFlat(values, ranks, n, queries[qi], r.P)
			}
		}
	})
	return nil
}

// EstimateScatter is EstimateIndexScatter over sample sets — the
// fallback a shard uses while its columnar index is stale or absent.
// Terms are bit-identical to the flat form (rankNodeFlat mirrors
// estimateNode exactly), so mixed fresh/stale shards still compose into
// the unsharded answer.
func (r RankCounting) EstimateScatter(sets []*sampling.SampleSet, queries []Query, rows []int, dst []float64) error {
	for i, set := range sets {
		if set == nil {
			return fmt.Errorf("estimator: nil sample set for node %d", i)
		}
	}
	if err := validateScatter(len(sets), queries, rows, dst, r.P); err != nil {
		return err
	}
	m := len(queries)
	scatterTiles(len(sets), m, m*setsEstimateWork(sets), func(n0, n1, q0, q1 int) {
		for j := n0; j < n1; j++ {
			row := dst[rows[j]*m : rows[j]*m+m]
			for qi := q0; qi < q1; qi++ {
				est, _ := r.estimateNode(sets[j], queries[qi])
				row[qi] = est
			}
		}
	})
	return nil
}

// scatterTiles runs fill over the (local node × query) grid in
// nodeTile × queryTile units, fanning out over the worker pool when the
// work merits it. Tiles write disjoint dst cells, so no locks; the grid
// depends only on (k, m), so scheduling cannot affect which cell holds
// which term.
func scatterTiles(k, m, work int, fill func(n0, n1, q0, q1 int)) {
	tilesN := (k + nodeTile - 1) / nodeTile
	tilesQ := (m + queryTile - 1) / queryTile
	units := tilesN * tilesQ
	workers := runtime.GOMAXPROCS(0)
	if workers > units {
		workers = units
	}
	runUnit := func(u int) {
		nt := u % tilesN
		qt := u / tilesN
		n0, n1 := nt*nodeTile, (nt+1)*nodeTile
		if n1 > k {
			n1 = k
		}
		q0, q1 := qt*queryTile, (qt+1)*queryTile
		if q1 > m {
			q1 = m
		}
		fill(n0, n1, q0, q1)
	}
	if workers < 2 || !engageParallel(k, work) {
		for u := 0; u < units; u++ {
			runUnit(u)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				u := int(next.Add(1)) - 1
				if u >= units {
					return
				}
				runUnit(u)
			}
		}()
	}
	wg.Wait()
}
