// Package estimator implements the paper's two range-counting estimators
// over rank-annotated samples (§III-A):
//
//   - BasicCounting: the naive Horvitz–Thompson estimate
//     |S ∩ [l,u]| / p, unbiased but with variance γ(l,u,D)(1−p)/p that
//     grows with the width of the queried range.
//   - RankCounting: the paper's contribution. It locates the sampled
//     strict predecessor of l and strict successor of u at each node and
//     converts their local ranks into an exact interior count, leaving
//     only two truncated-geometric boundary overshoots, each with mean
//     1/p. The estimate is unbiased with per-node variance ≤ 8/p²
//     (Theorem 3.1) and global variance ≤ 8k/p² (Theorem 3.2),
//     independent of the range width.
//
// Rank semantics follow internal/sampling: instance j of node i's sorted
// dataset has rank j, so duplicates are distinct instances and both
// estimators stay exactly unbiased on integer-valued sensor data.
package estimator

import (
	"fmt"
	"math"

	"privrange/internal/sampling"
)

// Query is a closed range-counting query [L, U] (Definition 2.1).
type Query struct {
	L, U float64
}

// Validate reports whether the query is well-formed.
func (q Query) Validate() error {
	if math.IsNaN(q.L) || math.IsNaN(q.U) {
		return fmt.Errorf("estimator: query bounds must not be NaN")
	}
	if q.L > q.U {
		return fmt.Errorf("estimator: query [%v, %v] has L > U", q.L, q.U)
	}
	return nil
}

// validateSets checks the shared preconditions of both estimators.
func validateSets(sets []*sampling.SampleSet, p float64, q Query) error {
	if err := q.Validate(); err != nil {
		return err
	}
	if p <= 0 || p > 1 {
		return fmt.Errorf("estimator: sampling probability %v outside (0, 1]", p)
	}
	for i, set := range sets {
		if set == nil {
			return fmt.Errorf("estimator: nil sample set for node %d", i)
		}
	}
	return nil
}

// BasicCounting is the baseline estimator γ_B(l,u,S) = |{x∈S : l≤x≤u}|/p.
type BasicCounting struct {
	// P is the Bernoulli sampling probability the sets were drawn with.
	P float64
}

// EstimateNode estimates γ(l, u, i) from node i's sample set.
func (b BasicCounting) EstimateNode(set *sampling.SampleSet, q Query) (float64, error) {
	if err := validateSets([]*sampling.SampleSet{set}, b.P, q); err != nil {
		return 0, err
	}
	return b.estimateNode(set, q)
}

// estimateNode is EstimateNode without the precondition checks, for the
// hot loop where Estimate has already validated the whole batch.
func (b BasicCounting) estimateNode(set *sampling.SampleSet, q Query) (float64, error) {
	c, err := set.CountInRange(q.L, q.U)
	if err != nil {
		return 0, err
	}
	return float64(c) / b.P, nil
}

// Estimate estimates the global count γ(l, u, D) as the sum of per-node
// estimates. When there are enough nodes and enough total search work
// to win, the per-node work fans out over a bounded worker pool (see
// sumNodes / engageParallel); the result is bit-identical to the
// sequential sum.
func (b BasicCounting) Estimate(sets []*sampling.SampleSet, q Query) (float64, error) {
	if err := validateSets(sets, b.P, q); err != nil {
		return 0, err
	}
	return sumNodes(len(sets), setsEstimateWork(sets), func(i int) (float64, error) {
		return b.estimateNode(sets[i], q)
	})
}

// VarianceBound returns the estimator's variance γ(1−p)/p for a query
// whose true count is gamma (§III-A). Note it scales with the count, i.e.
// with the range width.
func (b BasicCounting) VarianceBound(gamma float64) float64 {
	return gamma * (1 - b.P) / b.P
}

// RankCounting is the paper's estimator (§III-A).
type RankCounting struct {
	// P is the Bernoulli sampling probability the sets were drawn with.
	P float64
}

// EstimateNode computes γ̂(l, u, i) using the four-case rule:
//
//	γ(𝔭(l), 𝔰(u)) − 2/p   when both boundary samples exist,
//	γ(𝔭(l), lst) − 1/p    when only the predecessor exists,
//	γ(fst, 𝔰(u)) − 1/p    when only the successor exists,
//	γ(fst, lst) = n_i     when neither exists,
//
// where each γ(·,·) is an exact count reconstructed from local ranks:
// γ(a, b) = rank(b) − rank(a) + 1. The result may be negative; the
// estimator trades one-sided truncation away for exact unbiasedness.
func (r RankCounting) EstimateNode(set *sampling.SampleSet, q Query) (float64, error) {
	if err := validateSets([]*sampling.SampleSet{set}, r.P, q); err != nil {
		return 0, err
	}
	return r.estimateNode(set, q)
}

// estimateNode is EstimateNode without the precondition checks, for the
// hot loop where Estimate has already validated the whole batch.
func (r RankCounting) estimateNode(set *sampling.SampleSet, q Query) (float64, error) {
	pred, hasPred := set.PredecessorStrict(q.L)
	succ, hasSucc := set.SuccessorStrict(q.U)
	switch {
	case hasPred && hasSucc:
		return float64(succ.Rank-pred.Rank+1) - 2/r.P, nil
	case hasPred:
		// γ(𝔭(l), lst) spans ranks [pred.Rank, n_i].
		return float64(set.N-pred.Rank+1) - 1/r.P, nil
	case hasSucc:
		// γ(fst, 𝔰(u)) spans ranks [1, succ.Rank].
		return float64(succ.Rank) - 1/r.P, nil
	default:
		// γ(fst, lst) = n_i.
		return float64(set.N), nil
	}
}

// Estimate computes the global estimate γ̂(l, u, S) = Σ_i γ̂(l, u, i)
// (Equation 2). When there are enough nodes and enough total search
// work to win, the per-node work fans out over a bounded worker pool
// (see sumNodes / engageParallel); the result is bit-identical to the
// sequential sum.
func (r RankCounting) Estimate(sets []*sampling.SampleSet, q Query) (float64, error) {
	if err := validateSets(sets, r.P, q); err != nil {
		return 0, err
	}
	return sumNodes(len(sets), setsEstimateWork(sets), func(i int) (float64, error) {
		return r.estimateNode(sets[i], q)
	})
}

// NodeVarianceBound returns the per-node bound 8/p² (Theorem 3.1).
func (r RankCounting) NodeVarianceBound() float64 {
	return 8 / (r.P * r.P)
}

// VarianceBound returns the global bound 8k/p² for k nodes
// (Theorem 3.2).
func (r RankCounting) VarianceBound(k int) float64 {
	return 8 * float64(k) / (r.P * r.P)
}
