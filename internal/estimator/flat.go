package estimator

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"privrange/internal/index"
)

// This file holds the flat-index hot path: the same estimator math as
// estimator.go, but evaluated over the columnar sample index
// (internal/index) with hand-rolled binary searches and no per-query
// allocation. The SampleSet path stays as the node-side representation
// and the correctness oracle; the property tests in flat_test.go assert
// both paths agree bit-for-bit, which is possible because the flat
// kernels perform the exact same float operations in the exact same
// order (per-node terms summed in node-index order starting from 0).

// searchGE returns the smallest i with values[i] >= x (len(values) when
// none). Equivalent to sort.SearchFloat64s but inlineable and free of
// the closure call sort.Search pays per probe.
func searchGE(values []float64, x float64) int {
	lo, hi := 0, len(values)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if values[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchGT returns the smallest i with values[i] > x (len(values) when
// none).
func searchGT(values []float64, x float64) int {
	lo, hi := 0, len(values)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if values[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// rankNodeFlat is RankCounting.estimateNode over one node's columns:
// the four-case rule of §III-A evaluated from the flat arrays. The
// arithmetic mirrors estimateNode exactly so results are bit-identical.
func rankNodeFlat(values []float64, ranks []int32, n int, q Query, p float64) float64 {
	pi := searchGE(values, q.L) // pred = pi-1 when pi > 0
	si := searchGT(values, q.U) // succ = si when si < len
	hasPred := pi > 0
	hasSucc := si < len(values)
	switch {
	case hasPred && hasSucc:
		return float64(int(ranks[si])-int(ranks[pi-1])+1) - 2/p
	case hasPred:
		return float64(n-int(ranks[pi-1])+1) - 1/p
	case hasSucc:
		return float64(int(ranks[si])) - 1/p
	default:
		return float64(n)
	}
}

// basicNodeFlat is BasicCounting.estimateNode over one node's columns:
// |{samples in [l,u]}| / p.
func basicNodeFlat(values []float64, q Query, p float64) float64 {
	lo := searchGE(values, q.L)
	hi := searchGT(values, q.U)
	return float64(hi-lo) / p
}

// validateIndex checks the shared preconditions of the flat estimators.
func validateIndex(ix *index.Index, p float64, q Query) error {
	if ix == nil {
		return fmt.Errorf("estimator: nil sample index")
	}
	if err := q.Validate(); err != nil {
		return err
	}
	if p <= 0 || p > 1 {
		return fmt.Errorf("estimator: sampling probability %v outside (0, 1]", p)
	}
	return nil
}

// EstimateIndex computes the global RankCounting estimate over the
// columnar index — the broker's hot path. It allocates nothing on the
// sequential path and reuses pooled scratch on the parallel one; the
// result is bit-identical to Estimate over the equivalent sample sets.
func (r RankCounting) EstimateIndex(ix *index.Index, q Query) (float64, error) {
	if err := validateIndex(ix, r.P, q); err != nil {
		return 0, err
	}
	k := ix.Nodes()
	if !engageParallel(k, flatEstimateWork(ix)) {
		total := 0.0
		for i := 0; i < k; i++ {
			values, ranks, n := ix.Node(i)
			total += rankNodeFlat(values, ranks, n, q, r.P)
		}
		return total, nil
	}
	return sumIndexParallel(ix, func(values []float64, ranks []int32, n int) float64 {
		return rankNodeFlat(values, ranks, n, q, r.P)
	})
}

// EstimateIndex computes the global BasicCounting estimate over the
// columnar index. Bit-identical to Estimate over the equivalent sets.
func (b BasicCounting) EstimateIndex(ix *index.Index, q Query) (float64, error) {
	if err := validateIndex(ix, b.P, q); err != nil {
		return 0, err
	}
	k := ix.Nodes()
	if !engageParallel(k, flatEstimateWork(ix)) {
		total := 0.0
		for i := 0; i < k; i++ {
			values, _, _ := ix.Node(i)
			total += basicNodeFlat(values, q, b.P)
		}
		return total, nil
	}
	return sumIndexParallel(ix, func(values []float64, _ []int32, _ int) float64 {
		return basicNodeFlat(values, q, b.P)
	})
}

// sumIndexParallel fans per-node flat kernels over the worker pool with
// pooled scratch, reducing in node-index order so the sum is
// bit-identical to the sequential loop.
func sumIndexParallel(ix *index.Index, node func(values []float64, ranks []int32, n int) float64) (float64, error) {
	k := ix.Nodes()
	sp := getScratch(k)
	per := *sp
	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	chunk := (k + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > k {
			hi = k
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				values, ranks, n := ix.Node(i)
				per[i] = node(values, ranks, n)
			}
		}(lo, hi)
	}
	wg.Wait()
	total := 0.0
	for _, est := range per {
		total += est
	}
	putScratch(sp)
	return total, nil
}

// --- batched, tiled evaluation ---------------------------------------------

// Batch tiling parameters. The tile grid depends only on (k, m), never
// on GOMAXPROCS, so which worker computes which tile cannot affect the
// result: every per-node term lands in its own scratch cell and the
// final reduction always adds them in node-index order.
const (
	// nodeTile × queryTile binary-search evaluations form one work unit
	// (~a few µs) — coarse enough to amortize handoff, fine enough to
	// balance across workers. nodeTile keeps a node-chunk's value
	// columns hot in cache while the query chunk sweeps over them.
	nodeTile  = 64
	queryTile = 16
	// maxScratchFloats caps the k×m scratch block at 16 MiB; larger
	// batches are processed in deterministic query blocks.
	maxScratchFloats = 1 << 21
)

// scratchPool recycles the per-batch scratch blocks (and the parallel
// single-query per-node buffers) so steady-state batch evaluation
// allocates nothing proportional to k×m.
var scratchPool = sync.Pool{New: func() any { return new([]float64) }}

func getScratch(n int) *[]float64 {
	sp := scratchPool.Get().(*[]float64)
	if cap(*sp) < n {
		*sp = make([]float64, n)
	}
	*sp = (*sp)[:n]
	return sp
}

func putScratch(sp *[]float64) { scratchPool.Put(sp) }

// flatKernel selects which estimator a batch evaluates; a closed enum
// keeps the tile inner loops free of indirect calls through closures.
type flatKernel int

const (
	kernelRank flatKernel = iota
	kernelBasic
)

// EstimateIndexBatch evaluates every query against the index and writes
// the global estimates into out (len(out) must equal len(queries)).
// Work is tiled (node-chunk × query-chunk) across the worker pool with
// per-worker tiles writing disjoint cells of a pooled scratch block;
// out[i] is bit-identical to EstimateIndex(ix, queries[i]) — and hence
// to the SampleSet path — for any GOMAXPROCS and any scheduling.
func (r RankCounting) EstimateIndexBatch(ix *index.Index, queries []Query, out []float64) error {
	return estimateIndexBatch(ix, queries, out, kernelRank, r.P)
}

// EstimateIndexBatch is the BasicCounting form of the batched flat
// evaluation; see RankCounting.EstimateIndexBatch.
func (b BasicCounting) EstimateIndexBatch(ix *index.Index, queries []Query, out []float64) error {
	return estimateIndexBatch(ix, queries, out, kernelBasic, b.P)
}

func estimateIndexBatch(ix *index.Index, queries []Query, out []float64, kern flatKernel, p float64) error {
	if ix == nil {
		return fmt.Errorf("estimator: nil sample index")
	}
	if len(out) != len(queries) {
		return fmt.Errorf("estimator: batch out length %d != %d queries", len(out), len(queries))
	}
	if p <= 0 || p > 1 {
		return fmt.Errorf("estimator: sampling probability %v outside (0, 1]", p)
	}
	for i, q := range queries {
		if err := q.Validate(); err != nil {
			return fmt.Errorf("estimator: batch query %d: %w", i, err)
		}
	}
	k := ix.Nodes()
	if k == 0 {
		for i := range out {
			out[i] = 0
		}
		return nil
	}
	// Query blocking bounds scratch memory; the block size depends only
	// on k, so results stay deterministic.
	block := len(queries)
	if k*block > maxScratchFloats {
		block = maxScratchFloats / k
		if block < 1 {
			block = 1
		}
	}
	for q0 := 0; q0 < len(queries); q0 += block {
		q1 := q0 + block
		if q1 > len(queries) {
			q1 = len(queries)
		}
		batchBlock(ix, queries[q0:q1], out[q0:q1], kern, p)
	}
	return nil
}

// batchBlock evaluates one query block: tiles fill scratch[node*m+q],
// then a single pass reduces each query's per-node terms in node-index
// order.
func batchBlock(ix *index.Index, queries []Query, out []float64, kern flatKernel, p float64) {
	k := ix.Nodes()
	m := len(queries)
	sp := getScratch(k * m)
	scratch := *sp
	tilesN := (k + nodeTile - 1) / nodeTile
	tilesQ := (m + queryTile - 1) / queryTile
	units := tilesN * tilesQ
	workers := runtime.GOMAXPROCS(0)
	if workers > units {
		workers = units
	}
	// The pool only pays off when the block holds enough search work;
	// below the threshold (or on one P) the tiles run inline.
	if workers < 2 || !engageParallel(k, m*flatEstimateWork(ix)) {
		for u := 0; u < units; u++ {
			fillTile(ix, queries, scratch, u, tilesN, kern, p)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					u := int(next.Add(1)) - 1
					if u >= units {
						return
					}
					fillTile(ix, queries, scratch, u, tilesN, kern, p)
				}
			}()
		}
		wg.Wait()
	}
	for qi := range queries {
		total := 0.0
		for node := 0; node < k; node++ {
			total += scratch[node*m+qi]
		}
		out[qi] = total
	}
	putScratch(sp)
}

// fillTile evaluates one (node-chunk × query-chunk) tile into scratch.
// Tiles touch disjoint cells, so concurrent fills need no locks.
func fillTile(ix *index.Index, queries []Query, scratch []float64, unit, tilesN int, kern flatKernel, p float64) {
	m := len(queries)
	nt := unit % tilesN
	qt := unit / tilesN
	n0, n1 := nt*nodeTile, (nt+1)*nodeTile
	if n1 > ix.Nodes() {
		n1 = ix.Nodes()
	}
	q0, q1 := qt*queryTile, (qt+1)*queryTile
	if q1 > m {
		q1 = m
	}
	switch kern {
	case kernelRank:
		for node := n0; node < n1; node++ {
			values, ranks, n := ix.Node(node)
			row := scratch[node*m : node*m+m]
			for qi := q0; qi < q1; qi++ {
				row[qi] = rankNodeFlat(values, ranks, n, queries[qi], p)
			}
		}
	case kernelBasic:
		for node := n0; node < n1; node++ {
			values, _, _ := ix.Node(node)
			row := scratch[node*m : node*m+m]
			for qi := q0; qi < q1; qi++ {
				row[qi] = basicNodeFlat(values, queries[qi], p)
			}
		}
	}
}
