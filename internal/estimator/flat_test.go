package estimator

import (
	"math"
	"runtime"
	"sort"
	"testing"

	"privrange/internal/index"
	"privrange/internal/sampling"
	"privrange/internal/stats"
)

// randomSets draws k random node datasets (integer-valued, heavy
// duplicates) Bernoulli-sampled at rate p — the adversarial shape for
// rank semantics, since predecessor/successor strictness only matters
// under ties.
func randomSets(t testing.TB, rng *stats.RNG, k, maxN int, p float64) []*sampling.SampleSet {
	t.Helper()
	sets := make([]*sampling.SampleSet, k)
	for i := range sets {
		n := rng.Intn(maxN + 1)
		data := make([]float64, n)
		for j := range data {
			data[j] = float64(rng.Intn(40))
		}
		sort.Float64s(data)
		set, err := sampling.Draw(data, p, rng.Child(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = set
	}
	return sets
}

// randomQueries generates ranges that straddle, miss, cover and touch
// the sampled domain, including degenerate single-point queries.
func randomQueries(rng *stats.RNG, m int) []Query {
	qs := make([]Query, m)
	for i := range qs {
		switch rng.Intn(5) {
		case 0: // full cover
			qs[i] = Query{L: -10, U: 100}
		case 1: // empty, below the domain
			qs[i] = Query{L: -50, U: -40}
		case 2: // single point, likely on a duplicated value
			v := float64(rng.Intn(40))
			qs[i] = Query{L: v, U: v}
		case 3: // half-open into the domain
			qs[i] = Query{L: float64(rng.Intn(40)), U: 100}
		default:
			l := float64(rng.Intn(40)) - 0.5
			qs[i] = Query{L: l, U: l + float64(rng.Intn(30))}
		}
	}
	return qs
}

// TestFlatEstimatorsBitIdentical is the differential property test the
// acceptance criteria require: across random datasets, rates and query
// ranges, the flat-index estimators must return bit-identical results
// to the SampleSet-path estimators — the SampleSet path is the
// correctness oracle, so any divergence, even in the last ulp, is a
// flat-kernel bug.
func TestFlatEstimatorsBitIdentical(t *testing.T) {
	t.Parallel()
	rng := stats.NewRNG(1234)
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(40)
		p := 0.05 + 0.95*rng.Float64()
		sets := randomSets(t, rng, k, 300, p)
		ix, err := index.Build(sets)
		if err != nil {
			t.Fatal(err)
		}
		rc := RankCounting{P: p}
		bc := BasicCounting{P: p}
		queries := randomQueries(rng, 25)
		rankFlat := make([]float64, len(queries))
		basicFlat := make([]float64, len(queries))
		if err := rc.EstimateIndexBatch(ix, queries, rankFlat); err != nil {
			t.Fatal(err)
		}
		if err := bc.EstimateIndexBatch(ix, queries, basicFlat); err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			oracle, err := rc.Estimate(sets, q)
			if err != nil {
				t.Fatal(err)
			}
			single, err := rc.EstimateIndex(ix, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(single) != math.Float64bits(oracle) {
				t.Fatalf("trial %d query %v: RankCounting flat %v != oracle %v",
					trial, q, single, oracle)
			}
			if math.Float64bits(rankFlat[qi]) != math.Float64bits(oracle) {
				t.Fatalf("trial %d query %v: RankCounting batch %v != oracle %v",
					trial, q, rankFlat[qi], oracle)
			}
			boracle, err := bc.Estimate(sets, q)
			if err != nil {
				t.Fatal(err)
			}
			bsingle, err := bc.EstimateIndex(ix, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(bsingle) != math.Float64bits(boracle) {
				t.Fatalf("trial %d query %v: BasicCounting flat %v != oracle %v",
					trial, q, bsingle, boracle)
			}
			if math.Float64bits(basicFlat[qi]) != math.Float64bits(boracle) {
				t.Fatalf("trial %d query %v: BasicCounting batch %v != oracle %v",
					trial, q, basicFlat[qi], boracle)
			}
		}
	}
}

// TestSumIndexParallelBitIdentical forces the pooled parallel reduction
// (which the work gate would skip for test-sized inputs) and checks it
// still matches the sequential flat sum bit-for-bit.
func TestSumIndexParallelBitIdentical(t *testing.T) {
	t.Parallel()
	rng := stats.NewRNG(99)
	sets := randomSets(t, rng, 67, 200, 0.5)
	ix, err := index.Build(sets)
	if err != nil {
		t.Fatal(err)
	}
	rc := RankCounting{P: 0.5}
	for _, q := range randomQueries(rng, 10) {
		seq := 0.0
		for i := 0; i < ix.Nodes(); i++ {
			values, ranks, n := ix.Node(i)
			seq += rankNodeFlat(values, ranks, n, q, rc.P)
		}
		par, err := sumIndexParallel(ix, func(values []float64, ranks []int32, n int) float64 {
			return rankNodeFlat(values, ranks, n, q, rc.P)
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(par) != math.Float64bits(seq) {
			t.Fatalf("query %v: parallel %v != sequential %v", q, par, seq)
		}
	}
}

// TestEstimateIndexBatchDeterministicAcrossGOMAXPROCS sweeps worker
// counts over the tiled batch path (sized so the pool actually engages
// at >= 2 procs) and requires bit-identical outputs: the tile grid and
// the scratch reduction depend only on (k, m), never on scheduling.
// Run under -race this also proves the disjoint-tile writes are clean.
func TestEstimateIndexBatchDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := stats.NewRNG(4321)
	sets := randomSets(t, rng, 150, 400, 0.6)
	ix, err := index.Build(sets)
	if err != nil {
		t.Fatal(err)
	}
	queries := randomQueries(rng, 75)
	rc := RankCounting{P: 0.6}
	var baseline []float64
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 3, 4, 8} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 3; rep++ {
			out := make([]float64, len(queries))
			if err := rc.EstimateIndexBatch(ix, queries, out); err != nil {
				t.Fatal(err)
			}
			if baseline == nil {
				baseline = out
				continue
			}
			for i := range out {
				if math.Float64bits(out[i]) != math.Float64bits(baseline[i]) {
					t.Fatalf("procs=%d rep=%d query %d: %v != baseline %v",
						procs, rep, i, out[i], baseline[i])
				}
			}
		}
	}
}

// TestEstimateIndexBatchValidation covers the batch API's error paths.
func TestEstimateIndexBatchValidation(t *testing.T) {
	t.Parallel()
	rng := stats.NewRNG(5)
	sets := randomSets(t, rng, 3, 50, 0.5)
	ix, err := index.Build(sets)
	if err != nil {
		t.Fatal(err)
	}
	rc := RankCounting{P: 0.5}
	qs := []Query{{L: 0, U: 1}}
	if err := rc.EstimateIndexBatch(nil, qs, make([]float64, 1)); err == nil {
		t.Error("nil index should fail")
	}
	if err := rc.EstimateIndexBatch(ix, qs, make([]float64, 2)); err == nil {
		t.Error("out length mismatch should fail")
	}
	if err := (RankCounting{P: 0}).EstimateIndexBatch(ix, qs, make([]float64, 1)); err == nil {
		t.Error("invalid rate should fail")
	}
	if err := rc.EstimateIndexBatch(ix, []Query{{L: 2, U: 1}}, make([]float64, 1)); err == nil {
		t.Error("inverted query should fail")
	}
	if _, err := rc.EstimateIndex(nil, qs[0]); err == nil {
		t.Error("nil index should fail single-query path")
	}
	// An empty index answers zero for every query.
	empty, err := index.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	out := []float64{7}
	if err := rc.EstimateIndexBatch(empty, qs, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 {
		t.Errorf("empty index estimate = %v, want 0", out[0])
	}
}

// TestParallelEngagement pins the fix for the recorded
// parallel-slower-than-sequential regression: the bench-concurrency
// baseline shape (k=256 nodes, ~1.2k samples each — where the pool
// measurably lost to the sequential loop) must stay sequential, while
// deployments with real search volume still fan out.
func TestParallelEngagement(t *testing.T) {
	t.Parallel()
	// The exact shape of BenchmarkEstimateSequential/Parallel: 256 nodes,
	// 1_048_576 records at p=0.3 => ~1229 samples per node.
	regression := estimateWork(256, 256*1229)
	if engageParallel(256, regression) {
		t.Fatalf("k=256/%d-unit estimate must stay sequential (the recorded regression)", regression)
	}
	if regression >= parallelMinWork {
		t.Fatalf("work score %d for the regression shape crossed the %d threshold", regression, parallelMinWork)
	}
	// Small deployments never fan out regardless of work.
	if engageParallel(parallelMinSets-1, parallelMinWork*10) {
		t.Error("below parallelMinSets the pool must never engage")
	}
	// A deployment with two orders of magnitude more search work crosses
	// the threshold (the pool itself still requires >= 2 procs).
	big := estimateWork(4096, 4096*1200)
	if big < parallelMinWork {
		t.Fatalf("work score %d for a 4096-node deployment should cross the %d threshold", big, parallelMinWork)
	}
	if runtime.GOMAXPROCS(0) >= 2 && !engageParallel(4096, big) {
		t.Error("large deployments should still engage the pool")
	}
	// The score is monotone in both node count and sample volume.
	if estimateWork(64, 64*100) >= estimateWork(64, 64*100000) {
		t.Error("work score must grow with per-node sample size")
	}
	if estimateWork(64, 64*100) >= estimateWork(1024, 1024*100) {
		t.Error("work score must grow with node count")
	}
}
