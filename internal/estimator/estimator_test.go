package estimator

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"privrange/internal/dataset"
	"privrange/internal/sampling"
	"privrange/internal/stats"
)

// fixedSet builds a SampleSet directly for four-case unit tests.
func fixedSet(n int, samples ...sampling.Sample) *sampling.SampleSet {
	return &sampling.SampleSet{N: n, Samples: samples}
}

func TestQueryValidate(t *testing.T) {
	t.Parallel()
	if err := (Query{L: 1, U: 2}).Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := (Query{L: 2, U: 1}).Validate(); err == nil {
		t.Error("L > U should fail")
	}
	if err := (Query{L: math.NaN(), U: 1}).Validate(); err == nil {
		t.Error("NaN bound should fail")
	}
}

func TestRankCountingFourCases(t *testing.T) {
	t.Parallel()
	const p = 0.5
	rc := RankCounting{P: p}
	// Node dataset (conceptually): values 10..100 at ranks 1..10.
	cases := []struct {
		name string
		set  *sampling.SampleSet
		q    Query
		want float64
	}{
		{
			name: "both boundaries sampled",
			// pred of l=35 is (30, rank 3); succ of u=65 is (70, rank 7).
			// γ(pred, succ) = 7-3+1 = 5; estimate = 5 - 2/p = 1.
			set: fixedSet(10,
				sampling.Sample{Value: 30, Rank: 3},
				sampling.Sample{Value: 50, Rank: 5},
				sampling.Sample{Value: 70, Rank: 7},
			),
			q:    Query{L: 35, U: 65},
			want: 5 - 2/p,
		},
		{
			name: "predecessor only",
			// No sample above u=65: γ(pred, lst) = 10-3+1 = 8; minus 1/p.
			set: fixedSet(10,
				sampling.Sample{Value: 30, Rank: 3},
				sampling.Sample{Value: 50, Rank: 5},
			),
			q:    Query{L: 35, U: 65},
			want: 8 - 1/p,
		},
		{
			name: "successor only",
			// No sample below l=35: γ(fst, succ) = rank 7; minus 1/p.
			set: fixedSet(10,
				sampling.Sample{Value: 50, Rank: 5},
				sampling.Sample{Value: 70, Rank: 7},
			),
			q:    Query{L: 35, U: 65},
			want: 7 - 1/p,
		},
		{
			name: "neither boundary sampled",
			set: fixedSet(10,
				sampling.Sample{Value: 50, Rank: 5},
			),
			q:    Query{L: 35, U: 65},
			want: 10,
		},
		{
			name: "no samples at all",
			set:  fixedSet(10),
			q:    Query{L: 35, U: 65},
			want: 10,
		},
		{
			name: "empty node",
			set:  fixedSet(0),
			q:    Query{L: 35, U: 65},
			want: 0,
		},
		{
			name: "sample equal to l is inside range, not predecessor",
			// Value 35 == l must not count as the strict predecessor.
			set: fixedSet(10,
				sampling.Sample{Value: 35, Rank: 4},
				sampling.Sample{Value: 70, Rank: 7},
			),
			q:    Query{L: 35, U: 65},
			want: 7 - 1/p, // successor-only case
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got, err := rc.EstimateNode(tc.set, tc.q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("EstimateNode = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestEstimatorInputValidation(t *testing.T) {
	t.Parallel()
	set := fixedSet(5)
	if _, err := (RankCounting{P: 0}).EstimateNode(set, Query{L: 0, U: 1}); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := (RankCounting{P: 0.5}).EstimateNode(set, Query{L: 2, U: 1}); err == nil {
		t.Error("bad query should fail")
	}
	if _, err := (RankCounting{P: 0.5}).Estimate([]*sampling.SampleSet{nil}, Query{L: 0, U: 1}); err == nil {
		t.Error("nil set should fail")
	}
	if _, err := (BasicCounting{P: 1.5}).EstimateNode(set, Query{L: 0, U: 1}); err == nil {
		t.Error("p>1 should fail")
	}
	if _, err := (BasicCounting{P: 0.5}).Estimate([]*sampling.SampleSet{nil}, Query{L: 0, U: 1}); err == nil {
		t.Error("nil set should fail for basic")
	}
}

func TestBasicCountingExactAtFullSampling(t *testing.T) {
	t.Parallel()
	values := []float64{1, 2, 2, 3, 5, 8, 13}
	sort.Float64s(values)
	set, err := sampling.Draw(values, 1, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	bc := BasicCounting{P: 1}
	got, err := bc.EstimateNode(set, Query{L: 2, U: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("estimate = %v, want 5", got)
	}
}

func TestRankCountingExactAtFullSampling(t *testing.T) {
	t.Parallel()
	values := []float64{1, 2, 2, 3, 5, 8, 13}
	set, err := sampling.Draw(values, 1, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	rc := RankCounting{P: 1}
	cases := []struct {
		q    Query
		want float64
	}{
		{q: Query{L: 2, U: 8}, want: 5},
		{q: Query{L: 0, U: 100}, want: 7},
		{q: Query{L: 4, U: 4}, want: 0},
		{q: Query{L: 2, U: 2}, want: 2},
		{q: Query{L: 13, U: 20}, want: 1},
	}
	for _, tc := range cases {
		got, err := rc.EstimateNode(set, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("query %+v: estimate = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// TestRankCountingUnbiased is the statistical heart of Theorem 3.1/3.2:
// over many independent sample draws, the mean estimate must converge to
// the true count within a few standard errors, and the empirical variance
// must respect the 8k/p² bound.
func TestRankCountingUnbiased(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 21, Records: 4000})
	if err != nil {
		t.Fatal(err)
	}
	const (
		k      = 8
		p      = 0.08
		trials = 3000
	)
	q := Query{L: 45, U: 85}
	truth, err := series.RangeCount(q.L, q.U)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := series.Partition(k)
	if err != nil {
		t.Fatal(err)
	}
	sortedParts := make([][]float64, k)
	for i, part := range parts {
		cp := make([]float64, len(part))
		copy(cp, part)
		sort.Float64s(cp)
		sortedParts[i] = cp
	}
	rc := RankCounting{P: p}
	root := stats.NewRNG(77)
	var errs stats.Running
	for trial := 0; trial < trials; trial++ {
		rng := root.Child(int64(trial))
		sets := make([]*sampling.SampleSet, k)
		for i := range sets {
			set, err := sampling.Draw(sortedParts[i], p, rng.Child(int64(i)))
			if err != nil {
				t.Fatal(err)
			}
			sets[i] = set
		}
		est, err := rc.Estimate(sets, q)
		if err != nil {
			t.Fatal(err)
		}
		errs.Add(est - float64(truth))
	}
	// Unbiasedness: |mean error| within 4 standard errors of zero.
	if se := errs.StdErr(); math.Abs(errs.Mean()) > 4*se {
		t.Errorf("mean error %v exceeds 4 SE (%v): estimator looks biased", errs.Mean(), 4*se)
	}
	// Variance bound (Theorem 3.2): empirical variance ≤ 8k/p² with slack
	// for sampling noise.
	bound := rc.VarianceBound(k)
	if errs.Variance() > bound*1.1 {
		t.Errorf("empirical variance %v exceeds bound %v", errs.Variance(), bound)
	}
}

// TestRankCountingUnbiasedWithDuplicates stresses the strict-boundary tie
// handling: a heavily discretized dataset where boundary collisions are
// the norm must still yield an unbiased estimate.
func TestRankCountingUnbiasedWithDuplicates(t *testing.T) {
	t.Parallel()
	rng := stats.NewRNG(5)
	values := make([]float64, 2000)
	for i := range values {
		values[i] = float64(rng.Intn(10)) // only 10 distinct values
	}
	sort.Float64s(values)
	truth := 0
	q := Query{L: 3, U: 6}
	for _, v := range values {
		if v >= q.L && v <= q.U {
			truth++
		}
	}
	const (
		p      = 0.05
		trials = 4000
	)
	rc := RankCounting{P: p}
	root := stats.NewRNG(6)
	var errs stats.Running
	for trial := 0; trial < trials; trial++ {
		set, err := sampling.Draw(values, p, root.Child(int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		est, err := rc.EstimateNode(set, q)
		if err != nil {
			t.Fatal(err)
		}
		errs.Add(est - float64(truth))
	}
	if se := errs.StdErr(); math.Abs(errs.Mean()) > 4*se {
		t.Errorf("mean error %v exceeds 4 SE (%v) on duplicate-heavy data", errs.Mean(), 4*se)
	}
	if bound := rc.NodeVarianceBound(); errs.Variance() > bound*1.1 {
		t.Errorf("empirical variance %v exceeds per-node bound %v", errs.Variance(), bound)
	}
}

// TestBasicCountingUnbiased confirms the baseline is also unbiased (its
// weakness is variance, not bias).
func TestBasicCountingUnbiased(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.CarbonMonoxide, dataset.GenerateConfig{Seed: 31, Records: 3000})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{L: 30, U: 70}
	truth, err := series.RangeCount(q.L, q.U)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, len(series.Values))
	copy(values, series.Values)
	sort.Float64s(values)
	const (
		p      = 0.1
		trials = 2000
	)
	bc := BasicCounting{P: p}
	root := stats.NewRNG(8)
	var errs stats.Running
	for trial := 0; trial < trials; trial++ {
		set, err := sampling.Draw(values, p, root.Child(int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		est, err := bc.EstimateNode(set, q)
		if err != nil {
			t.Fatal(err)
		}
		errs.Add(est - float64(truth))
	}
	if se := errs.StdErr(); math.Abs(errs.Mean()) > 4*se {
		t.Errorf("mean error %v exceeds 4 SE (%v)", errs.Mean(), 4*se)
	}
	// Analytic variance γ(1−p)/p should match empirically (±15%).
	want := bc.VarianceBound(float64(truth))
	if got := errs.Variance(); math.Abs(got-want)/want > 0.15 {
		t.Errorf("empirical variance %v, analytic %v", got, want)
	}
}

// TestRankBeatsBasicOnWideRanges checks the paper's §III-A claim: for wide
// ranges, RankCounting's variance is far below BasicCounting's.
func TestRankBeatsBasicOnWideRanges(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.ParticulateMatter, dataset.GenerateConfig{Seed: 41, Records: 8000})
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, len(series.Values))
	copy(values, series.Values)
	sort.Float64s(values)
	q := Query{L: 0, U: 300} // the whole domain: worst case for Basic
	truth, err := series.RangeCount(q.L, q.U)
	if err != nil {
		t.Fatal(err)
	}
	const (
		p      = 0.05
		trials = 1500
	)
	rc := RankCounting{P: p}
	bc := BasicCounting{P: p}
	root := stats.NewRNG(13)
	var rankErrs, basicErrs stats.Running
	for trial := 0; trial < trials; trial++ {
		set, err := sampling.Draw(values, p, root.Child(int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		re, err := rc.EstimateNode(set, q)
		if err != nil {
			t.Fatal(err)
		}
		be, err := bc.EstimateNode(set, q)
		if err != nil {
			t.Fatal(err)
		}
		rankErrs.Add(re - float64(truth))
		basicErrs.Add(be - float64(truth))
	}
	if rankErrs.Variance()*10 > basicErrs.Variance() {
		t.Errorf("RankCounting variance %v should be far below BasicCounting %v on wide ranges",
			rankErrs.Variance(), basicErrs.Variance())
	}
}

// TestTheorem33Coverage verifies the end-to-end (α, δ) guarantee: sampling
// at RequiredProbability, the fraction of trials with |error| ≤ αn must be
// at least δ.
func TestTheorem33Coverage(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.NitrogenDioxide, dataset.GenerateConfig{Seed: 51, Records: 6000})
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	acc := Accuracy{Alpha: 0.05, Delta: 0.7}
	n := series.Len()
	p, err := RequiredProbability(acc, k, n)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 1 {
		t.Fatalf("required probability %v out of range", p)
	}
	parts, err := series.Partition(k)
	if err != nil {
		t.Fatal(err)
	}
	sortedParts := make([][]float64, k)
	for i, part := range parts {
		cp := make([]float64, len(part))
		copy(cp, part)
		sort.Float64s(cp)
		sortedParts[i] = cp
	}
	q := Query{L: 40, U: 90}
	truth, err := series.RangeCount(q.L, q.U)
	if err != nil {
		t.Fatal(err)
	}
	rc := RankCounting{P: p}
	root := stats.NewRNG(19)
	const trials = 800
	within := 0
	for trial := 0; trial < trials; trial++ {
		rng := root.Child(int64(trial))
		sets := make([]*sampling.SampleSet, k)
		for i := range sets {
			set, err := sampling.Draw(sortedParts[i], p, rng.Child(int64(i)))
			if err != nil {
				t.Fatal(err)
			}
			sets[i] = set
		}
		est, err := rc.Estimate(sets, q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est-float64(truth)) <= acc.Alpha*float64(n) {
			within++
		}
	}
	coverage := float64(within) / trials
	if coverage < acc.Delta {
		t.Errorf("coverage %v below guaranteed delta %v", coverage, acc.Delta)
	}
}

func TestAccuracyValidate(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		acc  Accuracy
		ok   bool
	}{
		{name: "valid", acc: Accuracy{Alpha: 0.1, Delta: 0.9}, ok: true},
		{name: "alpha zero", acc: Accuracy{Alpha: 0, Delta: 0.9}, ok: false},
		{name: "alpha one", acc: Accuracy{Alpha: 1, Delta: 0.9}, ok: false},
		{name: "delta zero", acc: Accuracy{Alpha: 0.1, Delta: 0}, ok: false},
		{name: "delta one", acc: Accuracy{Alpha: 0.1, Delta: 1}, ok: false},
	}
	for _, tc := range cases {
		if err := tc.acc.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestRequiredProbabilityFormula(t *testing.T) {
	t.Parallel()
	// p = √(2k)/(αn) · 2/√(1−δ) with k=8, n=10000, α=0.05, δ=0.5.
	p, err := RequiredProbability(Accuracy{Alpha: 0.05, Delta: 0.5}, 8, 10000)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(16) / (0.05 * 10000) * 2 / math.Sqrt(0.5)
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("p = %v, want %v", p, want)
	}
	// Tiny dataset: clamps at 1.
	p, err = RequiredProbability(Accuracy{Alpha: 0.05, Delta: 0.5}, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("p = %v, want clamp at 1", p)
	}
	if _, err := RequiredProbability(Accuracy{Alpha: 0.05, Delta: 0.5}, 0, 10); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := RequiredProbability(Accuracy{Alpha: 0.05, Delta: 0.5}, 1, 0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestAchievableDeltaInvertsRequiredProbability(t *testing.T) {
	t.Parallel()
	const (
		k = 12
		n = 20000
	)
	acc := Accuracy{Alpha: 0.06, Delta: 0.6}
	p, err := RequiredProbability(acc, k, n)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := AchievableDelta(p, acc.Alpha, k, n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(delta-acc.Delta) > 1e-9 {
		t.Errorf("AchievableDelta = %v, want %v", delta, acc.Delta)
	}
	if _, err := AchievableDelta(0, 0.1, k, n); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := AchievableDelta(0.5, 0, k, n); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, err := AchievableDelta(0.5, 0.1, 0, n); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := AchievableDelta(0.5, 0.1, k, 0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestAchievableDeltaInfeasible(t *testing.T) {
	t.Parallel()
	// Absurdly small p for the requested accuracy: δ′ must be ≤ 0,
	// signalling infeasibility rather than erroring.
	delta, err := AchievableDelta(0.001, 0.01, 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if delta > 0 {
		t.Errorf("delta = %v, want non-positive (infeasible)", delta)
	}
}

func TestExpectedSamples(t *testing.T) {
	t.Parallel()
	if got := ExpectedSamples(1000, 0.25); got != 250 {
		t.Errorf("ExpectedSamples = %v, want 250", got)
	}
}

// TestEstimateNodeAgainstBruteForce cross-checks the binary-search
// four-case implementation against an independent linear-scan oracle on
// random duplicate-heavy sample sets.
func TestEstimateNodeAgainstBruteForce(t *testing.T) {
	t.Parallel()
	oracle := func(set *sampling.SampleSet, q Query, p float64) float64 {
		var pred, succ *sampling.Sample
		for i := range set.Samples {
			s := set.Samples[i]
			if s.Value < q.L {
				cp := s
				pred = &cp
			}
			if s.Value > q.U && succ == nil {
				cp := s
				succ = &cp
			}
		}
		switch {
		case pred != nil && succ != nil:
			return float64(succ.Rank-pred.Rank+1) - 2/p
		case pred != nil:
			return float64(set.N-pred.Rank+1) - 1/p
		case succ != nil:
			return float64(succ.Rank) - 1/p
		default:
			return float64(set.N)
		}
	}
	f := func(raw []float64, lRaw, span, pRaw float64, seed int64) bool {
		if math.IsNaN(lRaw) || math.IsNaN(span) || math.IsInf(lRaw, 0) || math.IsInf(span, 0) {
			return true
		}
		values := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			values = append(values, math.Round(math.Mod(v, 15)))
		}
		sort.Float64s(values)
		p := 0.05 + math.Mod(math.Abs(pRaw), 0.9)
		set, err := sampling.Draw(values, p, stats.NewRNG(seed))
		if err != nil {
			return false
		}
		l := math.Round(math.Mod(lRaw, 20))
		u := l + math.Abs(math.Round(math.Mod(span, 10)))
		q := Query{L: l, U: u}
		rc := RankCounting{P: p}
		got, err := rc.EstimateNode(set, q)
		if err != nil {
			return false
		}
		want := oracle(set, q, p)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestGlobalEstimateIsSumOfNodes: Estimate must equal the sum of
// EstimateNode over the same sets.
func TestGlobalEstimateIsSumOfNodes(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.SulfurDioxide, dataset.GenerateConfig{Seed: 61, Records: 3000})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := series.Partition(7)
	if err != nil {
		t.Fatal(err)
	}
	const p = 0.2
	root := stats.NewRNG(63)
	sets := make([]*sampling.SampleSet, len(parts))
	for i, part := range parts {
		cp := make([]float64, len(part))
		copy(cp, part)
		sort.Float64s(cp)
		set, err := sampling.Draw(cp, p, root.Child(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = set
	}
	rc := RankCounting{P: p}
	q := Query{L: 20, U: 60}
	global, err := rc.Estimate(sets, q)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, set := range sets {
		est, err := rc.EstimateNode(set, q)
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	if math.Abs(global-sum) > 1e-9 {
		t.Errorf("Estimate %v != sum of nodes %v", global, sum)
	}
}
