package estimator

import (
	"sort"
	"testing"

	"privrange/internal/dataset"
	"privrange/internal/sampling"
	"privrange/internal/stats"
)

// benchSets prepares per-node sample sets once for the hot-path benches.
func benchSets(b *testing.B, k int, p float64) []*sampling.SampleSet {
	b.Helper()
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	parts, err := series.Partition(k)
	if err != nil {
		b.Fatal(err)
	}
	root := stats.NewRNG(2)
	sets := make([]*sampling.SampleSet, k)
	for i, part := range parts {
		cp := make([]float64, len(part))
		copy(cp, part)
		sort.Float64s(cp)
		set, err := sampling.Draw(cp, p, root.Child(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		sets[i] = set
	}
	return sets
}

// BenchmarkRankCountingEstimate measures one global estimate over the
// CityPulse-scale deployment (k=16, p=0.3) — the broker's inner loop.
func BenchmarkRankCountingEstimate(b *testing.B) {
	sets := benchSets(b, 16, 0.3)
	rc := RankCounting{P: 0.3}
	q := Query{L: 40, U: 120}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rc.Estimate(sets, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBasicCountingEstimate is the baseline estimator's cost on the
// same sets.
func BenchmarkBasicCountingEstimate(b *testing.B) {
	sets := benchSets(b, 16, 0.3)
	bc := BasicCounting{P: 0.3}
	q := Query{L: 40, U: 120}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bc.Estimate(sets, q); err != nil {
			b.Fatal(err)
		}
	}
}
