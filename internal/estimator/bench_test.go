package estimator

import (
	"sort"
	"testing"

	"privrange/internal/dataset"
	"privrange/internal/index"
	"privrange/internal/sampling"
	"privrange/internal/stats"
)

// benchSets prepares per-node sample sets once for the hot-path benches.
// records == 0 selects the default CityPulse-scale series.
func benchSets(b *testing.B, k, records int, p float64) []*sampling.SampleSet {
	b.Helper()
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 1, Records: records})
	if err != nil {
		b.Fatal(err)
	}
	parts, err := series.Partition(k)
	if err != nil {
		b.Fatal(err)
	}
	root := stats.NewRNG(2)
	sets := make([]*sampling.SampleSet, k)
	for i, part := range parts {
		cp := make([]float64, len(part))
		copy(cp, part)
		sort.Float64s(cp)
		set, err := sampling.Draw(cp, p, root.Child(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		sets[i] = set
	}
	return sets
}

// BenchmarkRankCountingEstimate measures one global estimate over the
// CityPulse-scale deployment (k=16, p=0.3) — the broker's inner loop.
func BenchmarkRankCountingEstimate(b *testing.B) {
	sets := benchSets(b, 16, 0, 0.3)
	rc := RankCounting{P: 0.3}
	q := Query{L: 40, U: 120}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rc.Estimate(sets, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBasicCountingEstimate is the baseline estimator's cost on the
// same sets.
func BenchmarkBasicCountingEstimate(b *testing.B) {
	sets := benchSets(b, 16, 0, 0.3)
	bc := BasicCounting{P: 0.3}
	q := Query{L: 40, U: 120}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bc.Estimate(sets, q); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSink keeps the compiler from eliding the estimate loop.
var benchSink float64

// BenchmarkEstimateSequential is the single-threaded per-node loop over
// a 256-node deployment — the baseline the parallel path must beat.
func BenchmarkEstimateSequential(b *testing.B) {
	sets := benchSets(b, 256, 1_048_576, 0.3)
	rc := RankCounting{P: 0.3}
	q := Query{L: 40, U: 120}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		total := 0.0
		for _, set := range sets {
			est, err := rc.estimateNode(set, q)
			if err != nil {
				b.Fatal(err)
			}
			total += est
		}
		benchSink = total
	}
}

// BenchmarkEstimateParallel is the same 256-node estimate through
// Estimate's auto-gated path. This shape carries too little search work
// to amortize the pool (see TestParallelEngagement), so the work gate
// keeps it sequential and it should track BenchmarkEstimateSequential
// instead of losing to it — the recorded pre-gate regression. The
// released value is bit-identical whether or not the pool engages.
func BenchmarkEstimateParallel(b *testing.B) {
	sets := benchSets(b, 256, 1_048_576, 0.3)
	rc := RankCounting{P: 0.3}
	q := Query{L: 40, U: 120}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		est, err := rc.Estimate(sets, q)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = est
	}
}

// benchIndex builds the columnar index over the 256-node benchmark sets.
func benchIndex(b *testing.B, sets []*sampling.SampleSet) *index.Index {
	b.Helper()
	ix, err := index.Build(sets)
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

// BenchmarkEstimateFlatIndex is the k=256 acceptance benchmark: the same
// estimate as BenchmarkEstimateSequential/Parallel, answered from the
// columnar index. This must beat the SampleSet path on ns/op and run
// with zero allocations per query.
func BenchmarkEstimateFlatIndex(b *testing.B) {
	sets := benchSets(b, 256, 1_048_576, 0.3)
	ix := benchIndex(b, sets)
	rc := RankCounting{P: 0.3}
	q := Query{L: 40, U: 120}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		est, err := rc.EstimateIndex(ix, q)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = est
	}
}

// BenchmarkEstimateIndexBatch measures the tiled batch kernel answering
// 64 queries per call over the same 256-node index — the amortized
// per-query cost the broker's AnswerBatch pays.
func BenchmarkEstimateIndexBatch(b *testing.B) {
	sets := benchSets(b, 256, 1_048_576, 0.3)
	ix := benchIndex(b, sets)
	rc := RankCounting{P: 0.3}
	queries := make([]Query, 64)
	for i := range queries {
		queries[i] = Query{L: float64(2 * i), U: float64(2*i + 120)}
	}
	out := make([]float64, len(queries))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := rc.EstimateIndexBatch(ix, queries, out); err != nil {
			b.Fatal(err)
		}
	}
	benchSink = out[0]
}

// BenchmarkIndexBuild prices the per-collection-round rebuild the
// network pays so that every query reads the index for free.
func BenchmarkIndexBuild(b *testing.B) {
	sets := benchSets(b, 256, 1_048_576, 0.3)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := index.Build(sets); err != nil {
			b.Fatal(err)
		}
	}
}
