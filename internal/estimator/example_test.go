package estimator_test

import (
	"fmt"
	"log"
	"sort"

	"privrange/internal/estimator"
	"privrange/internal/sampling"
	"privrange/internal/stats"
)

// Example shows the RankCounting estimator on a single node: samples are
// drawn with their local ranks, and the boundary ranks reconstruct the
// interior count.
func Example() {
	// Node data: 1000 sorted readings 0..999.
	data := make([]float64, 1000)
	for i := range data {
		data[i] = float64(i)
	}
	sort.Float64s(data)

	const p = 0.2
	set, err := sampling.Draw(data, p, stats.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}

	rc := estimator.RankCounting{P: p}
	est, err := rc.EstimateNode(set, estimator.Query{L: 250, U: 749})
	if err != nil {
		log.Fatal(err)
	}
	// Truth is 500; the estimate deviates by two truncated-geometric
	// boundary gaps with standard deviation ≤ √8/p ≈ 14.
	fmt.Println("within 5 sigma of 500:", est > 500-5*14.2 && est < 500+5*14.2)
	bound := rc.NodeVarianceBound()
	fmt.Println("variance bound ~200:", bound > 199.9 && bound < 200.1)
	// Output:
	// within 5 sigma of 500: true
	// variance bound ~200: true
}

// ExampleRequiredProbability computes the Theorem 3.3 sampling rate for
// the CityPulse-scale deployment and its expected traffic.
func ExampleRequiredProbability() {
	acc := estimator.Accuracy{Alpha: 0.055, Delta: 0.5}
	p, err := estimator.RequiredProbability(acc, 10, 17568)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rate: %.4f\n", p)
	fmt.Printf("expected samples: %.0f of 17568\n", estimator.ExpectedSamples(17568, p))
	// Output:
	// rate: 0.0131
	// expected samples: 230 of 17568
}
