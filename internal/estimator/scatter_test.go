package estimator

import (
	"math"
	"runtime"
	"testing"

	"privrange/internal/index"
	"privrange/internal/stats"
)

// TestScatterTermsBitIdentical is the scatter path's differential
// property test: for random sets and queries, the per-node terms both
// scatter forms write must be bit-identical to the terms the batch
// kernel folds into its node-order sum — reducing the scatter table in
// row order must reproduce EstimateIndexBatch exactly.
func TestScatterTermsBitIdentical(t *testing.T) {
	rng := stats.NewRNG(71)
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(70)
		m := 1 + rng.Intn(25)
		p := 0.05 + 0.9*rng.Float64()
		sets := randomSets(t, rng, k, 200, p)
		queries := randomQueries(rng, m)
		ix, err := index.Build(sets)
		if err != nil {
			t.Fatal(err)
		}
		rc := RankCounting{P: p}

		want := make([]float64, m)
		if err := rc.EstimateIndexBatch(ix, queries, want); err != nil {
			t.Fatal(err)
		}

		// Identity rows: row j = node j, so reducing rows in order is the
		// batch kernel's node-order reduction.
		rows := make([]int, k)
		for j := range rows {
			rows[j] = j
		}
		for _, name := range []string{"index", "sets"} {
			dst := make([]float64, k*m)
			if name == "index" {
				err = rc.EstimateIndexScatter(ix, queries, rows, dst)
			} else {
				err = rc.EstimateScatter(sets, queries, rows, dst)
			}
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			for qi := 0; qi < m; qi++ {
				total := 0.0
				for row := 0; row < k; row++ {
					total += dst[row*m+qi]
				}
				if math.Float64bits(total) != math.Float64bits(want[qi]) {
					t.Fatalf("trial %d %s query %d: reduced %v != batch %v", trial, name, qi, total, want[qi])
				}
			}
		}
	}
}

// TestScatterDisjointRows pins the property sharding relies on: two
// scatters into one dst with disjoint, interleaved row sets compose to
// the same table as one scatter over the union — each term lands in its
// own row regardless of which call wrote it.
func TestScatterDisjointRows(t *testing.T) {
	rng := stats.NewRNG(72)
	k, m := 40, 9
	p := 0.3
	sets := randomSets(t, rng, k, 150, p)
	queries := randomQueries(rng, m)
	rc := RankCounting{P: p}

	rows := make([]int, k)
	for j := range rows {
		rows[j] = j
	}
	want := make([]float64, k*m)
	if err := rc.EstimateScatter(sets, queries, rows, want); err != nil {
		t.Fatal(err)
	}

	// Split nodes into evens and odds — maximally interleaved rows.
	var evenSets, oddSets = sets[:0:0], sets[:0:0]
	var evenRows, oddRows []int
	for j, set := range sets {
		if j%2 == 0 {
			evenSets = append(evenSets, set)
			evenRows = append(evenRows, j)
		} else {
			oddSets = append(oddSets, set)
			oddRows = append(oddRows, j)
		}
	}
	got := make([]float64, k*m)
	if err := rc.EstimateScatter(evenSets, queries, evenRows, got); err != nil {
		t.Fatal(err)
	}
	if err := rc.EstimateScatter(oddSets, queries, oddRows, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("cell %d: split scatter %v != whole scatter %v", i, got[i], want[i])
		}
	}
}

// TestScatterGOMAXPROCSInvariant pins that the tiled parallel fill
// cannot affect which term lands where: a deployment big enough to
// engage the pool scatters identically on one P and many.
func TestScatterGOMAXPROCSInvariant(t *testing.T) {
	rng := stats.NewRNG(73)
	k, m := 128, 40
	p := 0.5
	sets := randomSets(t, rng, k, 3000, p)
	queries := randomQueries(rng, m)
	ix, err := index.Build(sets)
	if err != nil {
		t.Fatal(err)
	}
	rc := RankCounting{P: p}
	rows := make([]int, k)
	for j := range rows {
		rows[j] = j
	}
	run := func(procs int) []float64 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		dst := make([]float64, k*m)
		if err := rc.EstimateIndexScatter(ix, queries, rows, dst); err != nil {
			t.Fatal(err)
		}
		return dst
	}
	serial := run(1)
	parallel := run(runtime.NumCPU())
	for i := range serial {
		if math.Float64bits(serial[i]) != math.Float64bits(parallel[i]) {
			t.Fatalf("cell %d: serial %v != parallel %v", i, serial[i], parallel[i])
		}
	}
}

// TestScatterValidation pins the precondition checks of both forms.
func TestScatterValidation(t *testing.T) {
	rng := stats.NewRNG(74)
	sets := randomSets(t, rng, 4, 50, 0.5)
	ix, err := index.Build(sets)
	if err != nil {
		t.Fatal(err)
	}
	rc := RankCounting{P: 0.5}
	queries := []Query{{L: 0, U: 10}}
	good := []int{0, 1, 2, 3}
	dst := make([]float64, 4)
	cases := []struct {
		name string
		call func() error
	}{
		{"nil index", func() error { return rc.EstimateIndexScatter(nil, queries, good, dst) }},
		{"index bad p", func() error { return RankCounting{P: 2}.EstimateIndexScatter(ix, queries, good, dst) }},
		{"bad p", func() error { return RankCounting{P: 0}.EstimateScatter(sets, queries, good, dst) }},
		{"invalid query", func() error {
			return rc.EstimateScatter(sets, []Query{{L: 5, U: 1}}, good, dst)
		}},
		{"rows length", func() error { return rc.EstimateScatter(sets, queries, []int{0, 1}, dst) }},
		{"row out of range", func() error {
			return rc.EstimateScatter(sets, queries, []int{0, 1, 2, 9}, dst)
		}},
		{"negative row", func() error {
			return rc.EstimateScatter(sets, queries, []int{0, 1, 2, -1}, dst)
		}},
		{"ragged dst", func() error {
			return rc.EstimateScatter(sets, queries, good, make([]float64, 3))
		}},
		{"no queries", func() error { return rc.EstimateScatter(sets, nil, good, nil) }},
	}
	for _, tc := range cases {
		if err := tc.call(); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}
