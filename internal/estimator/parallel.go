package estimator

import (
	"runtime"
	"sync"
)

// parallelMinSets is the node count below which the estimators keep the
// plain sequential loop: for micro-deployments the per-node work (a few
// binary searches) is far cheaper than spawning a worker pool.
const parallelMinSets = 32

// sumNodes evaluates node(i) for every i in [0, k) and returns the sum
// taken in index order. At or above parallelMinSets (and with more than
// one P available) the evaluations fan out over a bounded worker pool —
// one contiguous chunk per GOMAXPROCS worker. The reduction always adds
// per-node terms in index order, so the result is bit-identical to the
// sequential loop regardless of worker count or scheduling.
func sumNodes(k int, node func(int) (float64, error)) (float64, error) {
	workers := runtime.GOMAXPROCS(0)
	if k < parallelMinSets || workers < 2 {
		total := 0.0
		for i := 0; i < k; i++ {
			est, err := node(i)
			if err != nil {
				return 0, err
			}
			total += est
		}
		return total, nil
	}
	if workers > k {
		workers = k
	}
	per := make([]float64, k)
	chunk := (k + workers - 1) / workers
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > k {
			hi = k
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				est, err := node(i)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				per[i] = est
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	total := 0.0
	for _, est := range per {
		total += est
	}
	return total, nil
}
