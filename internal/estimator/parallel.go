package estimator

import (
	"math/bits"
	"runtime"
	"sync"

	"privrange/internal/index"
	"privrange/internal/sampling"
)

// parallelMinSets is the node count below which the estimators always
// keep the plain sequential loop: for micro-deployments the per-node
// work (a few binary searches) is far cheaper than spawning a worker
// pool.
const parallelMinSets = 32

// parallelMinWork is the estimated sequential cost, in search-step
// units (see estimateWork), below which the pool is a net loss and the
// estimators stay sequential even past parallelMinSets. The recorded
// baseline (results/bench-concurrency.txt) showed the old node-count
// gate engaging the pool on k=256 nodes of ~1.2k samples — ~12µs of
// sequential work — and losing to its own spawn/join overhead; that
// shape scores ~10k units here and stays sequential. The pool engages
// around ~64k units (hundreds of µs of search work), where fan-out
// overhead is amortized many times over. TestParallelEngagement pins
// both sides of the threshold.
const parallelMinWork = 1 << 16

// perNodeOverheadSteps models the fixed per-node cost (call, bounds,
// case dispatch) in the same units as one binary-search probe.
const perNodeOverheadSteps = 8

// estimateWork scores the sequential cost of one global estimate over k
// nodes holding samples total sample instances: two binary searches of
// ~log2(avg samples) probes per node plus fixed per-node overhead. The
// unit is one search probe (~a few ns); the score only gates the
// parallel/sequential decision, so it needs to be cheap and monotone,
// not exact.
func estimateWork(k, samples int) int {
	if k <= 0 {
		return 0
	}
	avg := samples / k
	return k * (2*bits.Len(uint(avg)) + perNodeOverheadSteps)
}

// setsEstimateWork scores one estimate over SampleSet slices.
func setsEstimateWork(sets []*sampling.SampleSet) int {
	samples := 0
	for _, set := range sets {
		samples += len(set.Samples)
	}
	return estimateWork(len(sets), samples)
}

// flatEstimateWork scores one estimate over the columnar index.
func flatEstimateWork(ix *index.Index) int {
	return estimateWork(ix.Nodes(), ix.Samples())
}

// engageParallel is the single gate deciding whether estimation work
// fans out over the worker pool: enough nodes to split, enough total
// work to amortize the spawn/join overhead, and more than one P to run
// on. Parallelism must only engage when it wins — the recorded
// regression was the old gate ignoring per-node sample size.
func engageParallel(k, work int) bool {
	return k >= parallelMinSets && work >= parallelMinWork && runtime.GOMAXPROCS(0) >= 2
}

// sumNodes evaluates node(i) for every i in [0, k) and returns the sum
// taken in index order. When engageParallel says the work merits it,
// the evaluations fan out over a bounded worker pool — one contiguous
// chunk per GOMAXPROCS worker. The reduction always adds per-node terms
// in index order, so the result is bit-identical to the sequential loop
// regardless of worker count or scheduling.
func sumNodes(k, work int, node func(int) (float64, error)) (float64, error) {
	if !engageParallel(k, work) {
		total := 0.0
		for i := 0; i < k; i++ {
			est, err := node(i)
			if err != nil {
				return 0, err
			}
			total += est
		}
		return total, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	per := make([]float64, k)
	chunk := (k + workers - 1) / workers
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > k {
			hi = k
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				est, err := node(i)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				per[i] = est
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	total := 0.0
	for _, est := range per {
		total += est
	}
	return total, nil
}
