package estimator

import (
	"fmt"
	"math"
)

// Accuracy is an (α, δ) accuracy specification (Definition 2.2): the
// estimate must fall within ±α·|D| of the truth with probability at least
// δ.
type Accuracy struct {
	Alpha float64
	Delta float64
}

// Validate reports whether the specification is well-formed. The paper
// restricts both parameters to [0, 1]; the degenerate endpoints (α=0
// demands exactness, δ=1 demands certainty) are rejected for the open
// ranges the theorems require.
func (a Accuracy) Validate() error {
	if !(a.Alpha > 0 && a.Alpha < 1) {
		return fmt.Errorf("estimator: alpha %v outside (0, 1)", a.Alpha)
	}
	if !(a.Delta > 0 && a.Delta < 1) {
		return fmt.Errorf("estimator: delta %v outside (0, 1)", a.Delta)
	}
	return nil
}

// RequiredProbability returns the sampling probability Theorem 3.3
// prescribes so RankCounting meets (α, δ):
//
//	p ≥ √(2k)/(αn) · 2/√(1−δ)
//
// The result is clamped to 1 (sampling everything always suffices). It
// returns an error for invalid accuracy, k < 1 or n < 1.
func RequiredProbability(acc Accuracy, k, n int) (float64, error) {
	if err := acc.Validate(); err != nil {
		return 0, err
	}
	if k < 1 {
		return 0, fmt.Errorf("estimator: node count %d < 1", k)
	}
	if n < 1 {
		return 0, fmt.Errorf("estimator: dataset size %d < 1", n)
	}
	p := math.Sqrt(2*float64(k)) / (acc.Alpha * float64(n)) * 2 / math.Sqrt(1-acc.Delta)
	if p > 1 {
		p = 1
	}
	return p, nil
}

// AchievableDelta inverts Theorem 3.3: for samples already collected at
// probability p, it returns the largest confidence δ′ such that the
// existing sample answers (α′, δ′)-range counting. From Chebyshev:
//
//	δ′ = 1 − (8k/p²)/(α′n)²
//
// The result can be negative when p is too small for the requested α′ at
// all — callers must treat a non-positive δ′ as infeasible. It returns an
// error for p ∉ (0, 1], α′ ∉ (0, 1), k < 1 or n < 1.
func AchievableDelta(p, alphaPrime float64, k, n int) (float64, error) {
	if p <= 0 || p > 1 {
		return 0, fmt.Errorf("estimator: sampling probability %v outside (0, 1]", p)
	}
	if !(alphaPrime > 0 && alphaPrime < 1) {
		return 0, fmt.Errorf("estimator: alpha' %v outside (0, 1)", alphaPrime)
	}
	if k < 1 {
		return 0, fmt.Errorf("estimator: node count %d < 1", k)
	}
	if n < 1 {
		return 0, fmt.Errorf("estimator: dataset size %d < 1", n)
	}
	varBound := 8 * float64(k) / (p * p)
	t := alphaPrime * float64(n)
	return 1 - varBound/(t*t), nil
}

// ExpectedSamples returns the expected communication volume |D|·p of a
// Bernoulli sample, the quantity the paper's cost argument is about.
func ExpectedSamples(n int, p float64) float64 {
	return float64(n) * p
}
