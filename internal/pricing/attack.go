package pricing

import (
	"fmt"
	"math"

	"privrange/internal/estimator"
)

// Strategy is one candidate arbitrage plan: buy Copies identical answers
// at the cheaper accuracy Item, then average them.
type Strategy struct {
	// Item is the per-purchase accuracy (worse than the target: larger α
	// or smaller δ).
	Item estimator.Accuracy
	// ItemVariance is V(Item).
	ItemVariance float64
	// Copies is m, the number of purchases averaged.
	Copies int
	// TotalCost is m·π(Item).
	TotalCost float64
	// AchievedVariance is ItemVariance/m, the variance after averaging.
	AchievedVariance float64
}

// AttackReport summarizes an adversary's search for arbitrage against one
// target accuracy.
type AttackReport struct {
	// Target is the accuracy the adversary actually wants.
	Target estimator.Accuracy
	// TargetVariance and DirectCost describe the honest purchase.
	TargetVariance float64
	DirectCost     float64
	// Best is the cheapest strategy found that achieves at most the
	// target variance. Nil when no candidate strategy qualifies.
	Best *Strategy
	// CostRatio is Best.TotalCost / DirectCost (0 when Best is nil).
	// A ratio < 1 means the attack wins: the tariff admits arbitrage.
	CostRatio float64
}

// Arbitrage reports whether the adversary found a strictly cheaper way to
// reach the target variance. A hair of tolerance keeps the neutral tariff
// ψ(V)=c/V — where every strategy ties exactly — classified as safe.
func (r AttackReport) Arbitrage() bool {
	return r.Best != nil && r.CostRatio < 1-1e-9
}

// Adversary searches menu items and copy counts for an averaging attack
// (Example 4.1).
type Adversary struct {
	// Model maps accuracies to variances.
	Model VarianceModel
	// MaxCopies bounds the search over m. Zero selects 64.
	MaxCopies int
}

// Attack evaluates the tariff f against the target accuracy, trying every
// menu item (each must be weakly worse than the target in both
// coordinates, per Definition 2.3) with every copy count up to MaxCopies,
// and returns the best strategy found.
func (a Adversary) Attack(f Function, target estimator.Accuracy, menu []estimator.Accuracy) (AttackReport, error) {
	if a.Model == nil {
		return AttackReport{}, fmt.Errorf("pricing: adversary needs a variance model")
	}
	if err := target.Validate(); err != nil {
		return AttackReport{}, err
	}
	maxCopies := a.MaxCopies
	if maxCopies == 0 {
		maxCopies = 64
	}
	targetVar, err := a.Model.Variance(target)
	if err != nil {
		return AttackReport{}, err
	}
	directCost, err := f.Price(targetVar)
	if err != nil {
		return AttackReport{}, err
	}
	report := AttackReport{
		Target:         target,
		TargetVariance: targetVar,
		DirectCost:     directCost,
	}
	for _, item := range menu {
		if err := item.Validate(); err != nil {
			return AttackReport{}, err
		}
		// Definition 2.3's attack buys strictly worse items: α_i > α,
		// δ_i < δ.
		if item.Alpha <= target.Alpha || item.Delta >= target.Delta {
			continue
		}
		itemVar, err := a.Model.Variance(item)
		if err != nil {
			return AttackReport{}, err
		}
		itemCost, err := f.Price(itemVar)
		if err != nil {
			return AttackReport{}, err
		}
		for m := 1; m <= maxCopies; m++ {
			achieved := itemVar / float64(m)
			if achieved > targetVar {
				continue // not accurate enough yet; try more copies
			}
			total := float64(m) * itemCost
			if report.Best == nil || total < report.Best.TotalCost {
				report.Best = &Strategy{
					Item:             item,
					ItemVariance:     itemVar,
					Copies:           m,
					TotalCost:        total,
					AchievedVariance: achieved,
				}
			}
			break // more copies only cost more at the same item
		}
	}
	if report.Best != nil {
		report.CostRatio = report.Best.TotalCost / directCost
	}
	return report, nil
}

// AttackWeighted evaluates the strongest averaging strategy: instead of
// the plain mean of Definition 2.3, the adversary combines purchases by
// inverse-variance weighting, so n copies of an item with variance v
// yield variance v/n and mixing items only helps. The cost-minimal plan
// under weighting is a corner of the underlying linear program — buy
// ⌈v_i/V⌉ copies of the single item minimizing price·variance — so the
// same product condition V·ψ(V) non-decreasing defends against it; this
// search exists to demonstrate that empirically.
func (a Adversary) AttackWeighted(f Function, target estimator.Accuracy, menu []estimator.Accuracy) (AttackReport, error) {
	if a.Model == nil {
		return AttackReport{}, fmt.Errorf("pricing: adversary needs a variance model")
	}
	if err := target.Validate(); err != nil {
		return AttackReport{}, err
	}
	maxCopies := a.MaxCopies
	if maxCopies == 0 {
		maxCopies = 64
	}
	targetVar, err := a.Model.Variance(target)
	if err != nil {
		return AttackReport{}, err
	}
	directCost, err := f.Price(targetVar)
	if err != nil {
		return AttackReport{}, err
	}
	report := AttackReport{
		Target:         target,
		TargetVariance: targetVar,
		DirectCost:     directCost,
	}
	for _, item := range menu {
		if err := item.Validate(); err != nil {
			return AttackReport{}, err
		}
		if item.Alpha <= target.Alpha || item.Delta >= target.Delta {
			continue
		}
		itemVar, err := a.Model.Variance(item)
		if err != nil {
			return AttackReport{}, err
		}
		itemCost, err := f.Price(itemVar)
		if err != nil {
			return AttackReport{}, err
		}
		// Inverse-variance combination of m copies achieves itemVar/m.
		m := int(math.Ceil(itemVar / targetVar))
		if m < 1 {
			m = 1
		}
		if m > maxCopies {
			continue
		}
		total := float64(m) * itemCost
		if report.Best == nil || total < report.Best.TotalCost {
			report.Best = &Strategy{
				Item:             item,
				ItemVariance:     itemVar,
				Copies:           m,
				TotalCost:        total,
				AchievedVariance: itemVar / float64(m),
			}
		}
	}
	if report.Best != nil {
		report.CostRatio = report.Best.TotalCost / directCost
	}
	return report, nil
}

// DefaultMenu builds a grid of purchasable accuracies around (and
// including points worse than) the target, the menu a realistic broker
// would publish.
func DefaultMenu() []estimator.Accuracy {
	alphas := []float64{0.05, 0.08, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8}
	deltas := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	menu := make([]estimator.Accuracy, 0, len(alphas)*len(deltas))
	for _, a := range alphas {
		for _, d := range deltas {
			menu = append(menu, estimator.Accuracy{Alpha: a, Delta: d})
		}
	}
	return menu
}
