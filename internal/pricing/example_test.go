package pricing_test

import (
	"fmt"
	"log"

	"privrange/internal/estimator"
	"privrange/internal/pricing"
)

// Example prices two accuracy levels under the audited tariff and shows
// the averaging adversary failing against it.
func Example() {
	model := pricing.ChebyshevModel{N: 17568}
	tariff := pricing.BaseFeePlusInverse{Base: 2, C: 1e9}

	// Better accuracy -> smaller variance -> higher price.
	cheapVar, err := model.Variance(estimator.Accuracy{Alpha: 0.2, Delta: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	dearVar, err := model.Variance(estimator.Accuracy{Alpha: 0.05, Delta: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	cheap, err := tariff.Price(cheapVar)
	if err != nil {
		log.Fatal(err)
	}
	dear, err := tariff.Price(dearVar)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accuracy costs more:", dear > cheap)

	// The tariff passes the Theorem 4.2 audit...
	fmt.Println("audit passes:", pricing.Check(tariff, 1e-3, 1e12, 2000) == nil)

	// ...so the Example 4.1 adversary cannot profit.
	adv := pricing.Adversary{Model: model}
	report, err := adv.Attack(tariff, estimator.Accuracy{Alpha: 0.05, Delta: 0.9}, pricing.DefaultMenu())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("arbitrage found:", report.Arbitrage())
	// Output:
	// accuracy costs more: true
	// audit passes: true
	// arbitrage found: false
}
