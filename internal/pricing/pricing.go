// Package pricing implements the paper's arbitrage-avoiding pricing
// mechanism (§IV) for traded (α, δ)-range-counting answers.
//
// The attack (Example 4.1): instead of paying π(α, δ) for one low-variance
// answer, a consumer buys m cheaper answers with variances V₁…V_m and
// averages them, obtaining variance (1/m²)ΣV_i — possibly below V(α, δ) at
// a total price below π(α, δ).
//
// Characterization (Theorem 4.2, stated here in the variance domain): a
// pricing function avoids arbitrage if and only if
//
//  1. price depends on (α, δ) only through the answer variance:
//     π(α, δ) = ψ(V(α, δ))  (Lemma 4.1);
//  2. ψ is non-increasing (worse answers never cost more); and
//  3. the product V·ψ(V) is non-decreasing in V — ψ may not decay faster
//     than c/V.
//
// Sufficiency of (3) for the averaging attack with V_i ≥ V: each
// purchased item satisfies ψ(V_i) ≥ ψ(V)·V/V_i, so the attack cost is
// Σψ(V_i) ≥ ψ(V)·V·Σ(1/V_i) ≥ ψ(V)·V·m²/ΣV_i ≥ ψ(V) by AM–HM and
// ΣV_i ≤ m²V. Necessity: wherever the product strictly decreases over
// [V, mV], buying m answers at variance mV undercuts ψ(V).
//
// Transcription note: the published statement of Theorem 4.2 carries the
// relative-difference inequalities with ambiguous orientation (its
// conditions 2 and 3, read literally, contradict the paper's own
// Example 4.1 and its sufficiency proof, which both require price to grow
// at least as fast as 1/V as variance shrinks). This package implements
// the orientation consistent with the attack model and the proofs; the
// canonical family below contains ψ(V) = c/V, the boundary case the paper
// builds its construction around.
package pricing

import (
	"errors"
	"fmt"
	"math"

	"privrange/internal/estimator"
)

// VarianceModel maps an accuracy specification to the variance of the
// answer the broker sells at that specification (Lemma 4.1 requires price
// to factor through this quantity).
type VarianceModel interface {
	// Variance returns V(α, δ) > 0.
	Variance(acc estimator.Accuracy) (float64, error)
}

// ChebyshevModel derives V(α, δ) from the accuracy contract itself: an
// (α, δ) guarantee corresponds via Chebyshev's inequality to a variance of
//
//	V(α, δ) = (α·n)² · (1 − δ).
//
// It is increasing in α and decreasing in δ, the monotonicity §IV assumes.
type ChebyshevModel struct {
	// N is the dataset size |D| the answers are computed over.
	N int
}

var _ VarianceModel = ChebyshevModel{}

// Variance implements VarianceModel.
func (m ChebyshevModel) Variance(acc estimator.Accuracy) (float64, error) {
	if err := acc.Validate(); err != nil {
		return 0, err
	}
	if m.N < 1 {
		return 0, fmt.Errorf("pricing: dataset size %d < 1", m.N)
	}
	t := acc.Alpha * float64(m.N)
	return t * t * (1 - acc.Delta), nil
}

// Function prices an answer by its variance: π = ψ(V).
type Function interface {
	// Price returns ψ(V) for variance v > 0.
	Price(v float64) (float64, error)
	// Name identifies the function in receipts and experiment output.
	Name() string
}

func checkVariance(v float64) error {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("pricing: variance %v must be positive and finite", v)
	}
	return nil
}

// InverseVariance is the arbitrage-neutral boundary ψ(V) = C/V: averaging
// m purchases costs exactly the direct price.
type InverseVariance struct {
	// C scales the tariff; it is the constant product price·variance.
	C float64
}

var _ Function = InverseVariance{}

// Price implements Function.
func (f InverseVariance) Price(v float64) (float64, error) {
	if err := checkVariance(v); err != nil {
		return 0, err
	}
	if f.C <= 0 {
		return 0, fmt.Errorf("pricing: tariff constant %v must be positive", f.C)
	}
	return f.C / v, nil
}

// Name implements Function.
func (f InverseVariance) Name() string { return "inverse-variance" }

// BaseFeePlusInverse is ψ(V) = Base + C/V: a per-query base fee on top of
// the neutral tariff. The product V·ψ(V) = Base·V + C strictly increases,
// so every multi-purchase strategy strictly overpays — the paper's
// recommended construction region.
type BaseFeePlusInverse struct {
	Base float64
	C    float64
}

var _ Function = BaseFeePlusInverse{}

// Price implements Function.
func (f BaseFeePlusInverse) Price(v float64) (float64, error) {
	if err := checkVariance(v); err != nil {
		return 0, err
	}
	if f.Base < 0 || f.C <= 0 {
		return 0, fmt.Errorf("pricing: invalid tariff base=%v c=%v", f.Base, f.C)
	}
	return f.Base + f.C/v, nil
}

// Name implements Function.
func (f BaseFeePlusInverse) Name() string { return "base-fee-plus-inverse" }

// SqrtBlend is ψ(V) = C/V + D/√V. Product = C + D·√V, non-decreasing, so
// it is arbitrage-avoiding; it decays toward the neutral tariff for small
// variances and charges a premium for mid-range accuracy.
type SqrtBlend struct {
	C float64
	D float64
}

var _ Function = SqrtBlend{}

// Price implements Function.
func (f SqrtBlend) Price(v float64) (float64, error) {
	if err := checkVariance(v); err != nil {
		return 0, err
	}
	if f.C <= 0 || f.D < 0 {
		return 0, fmt.Errorf("pricing: invalid tariff c=%v d=%v", f.C, f.D)
	}
	return f.C/v + f.D/math.Sqrt(v), nil
}

// Name implements Function.
func (f SqrtBlend) Name() string { return "sqrt-blend" }

// UnsafeSteep is ψ(V) = C/V², a deliberately broken tariff whose price
// falls faster than 1/V. It exists so tests, examples and the arbitrage
// experiments can demonstrate a working attack; never deploy it.
type UnsafeSteep struct {
	C float64
}

var _ Function = UnsafeSteep{}

// Price implements Function.
func (f UnsafeSteep) Price(v float64) (float64, error) {
	if err := checkVariance(v); err != nil {
		return 0, err
	}
	if f.C <= 0 {
		return 0, fmt.Errorf("pricing: tariff constant %v must be positive", f.C)
	}
	return f.C / (v * v), nil
}

// Name implements Function.
func (f UnsafeSteep) Name() string { return "unsafe-steep" }

// ErrArbitrage reports that a pricing function admits an arbitrage
// strategy.
var ErrArbitrage = errors.New("pricing: arbitrage opportunity")

// Check numerically verifies the two variance-domain conditions of
// Theorem 4.2 for ψ over the variance interval [vMin, vMax] using a
// geometric grid of the given size: ψ non-increasing and V·ψ(V)
// non-decreasing. It returns a wrapped ErrArbitrage naming the first
// violated condition. Condition 1 (price factors through variance) holds
// by construction for any Function.
func Check(f Function, vMin, vMax float64, gridSize int) error {
	if err := checkVariance(vMin); err != nil {
		return err
	}
	if err := checkVariance(vMax); err != nil {
		return err
	}
	if vMin >= vMax {
		return fmt.Errorf("pricing: empty variance interval [%v, %v]", vMin, vMax)
	}
	if gridSize < 2 {
		return fmt.Errorf("pricing: grid size %d < 2", gridSize)
	}
	ratio := math.Pow(vMax/vMin, 1/float64(gridSize-1))
	const tol = 1e-9
	prevV := vMin
	prevP, err := f.Price(vMin)
	if err != nil {
		return err
	}
	for i := 1; i < gridSize; i++ {
		v := vMin * math.Pow(ratio, float64(i))
		price, err := f.Price(v)
		if err != nil {
			return err
		}
		if price > prevP*(1+tol) {
			return fmt.Errorf("%w: %s price increases with variance at V=%v (%v -> %v)",
				ErrArbitrage, f.Name(), v, prevP, price)
		}
		if v*price < prevV*prevP*(1-tol) {
			return fmt.Errorf("%w: %s product V·ψ(V) decreases at V=%v (%v -> %v): price decays faster than 1/V",
				ErrArbitrage, f.Name(), v, prevV*prevP, v*price)
		}
		prevV, prevP = v, price
	}
	return nil
}
