package pricing

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"privrange/internal/estimator"
)

func TestChebyshevModel(t *testing.T) {
	t.Parallel()
	m := ChebyshevModel{N: 1000}
	v, err := m.Variance(estimator.Accuracy{Alpha: 0.1, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0 * 100 * 0.5 // (0.1·1000)²·(1−0.5)
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("Variance = %v, want %v", v, want)
	}
	if _, err := m.Variance(estimator.Accuracy{Alpha: 0, Delta: 0.5}); err == nil {
		t.Error("invalid accuracy should fail")
	}
	if _, err := (ChebyshevModel{N: 0}).Variance(estimator.Accuracy{Alpha: 0.1, Delta: 0.5}); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestChebyshevModelMonotone(t *testing.T) {
	t.Parallel()
	m := ChebyshevModel{N: 17568}
	f := func(aRaw, dRaw, daRaw, ddRaw float64) bool {
		a := 0.05 + math.Mod(math.Abs(aRaw), 0.4)
		d := 0.1 + math.Mod(math.Abs(dRaw), 0.7)
		da := math.Mod(math.Abs(daRaw), 0.3)
		dd := math.Mod(math.Abs(ddRaw), 0.15)
		v0, err := m.Variance(estimator.Accuracy{Alpha: a, Delta: d})
		if err != nil {
			return false
		}
		vA, err := m.Variance(estimator.Accuracy{Alpha: a + da, Delta: d})
		if err != nil {
			return false
		}
		vD, err := m.Variance(estimator.Accuracy{Alpha: a, Delta: d + dd})
		if err != nil {
			return false
		}
		return vA >= v0 && vD <= v0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPriceFunctions(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		f    Function
		v    float64
		want float64
	}{
		{name: "inverse", f: InverseVariance{C: 100}, v: 4, want: 25},
		{name: "base fee", f: BaseFeePlusInverse{Base: 2, C: 100}, v: 4, want: 27},
		{name: "sqrt blend", f: SqrtBlend{C: 100, D: 10}, v: 4, want: 30},
		{name: "unsafe", f: UnsafeSteep{C: 100}, v: 4, want: 6.25},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got, err := tc.f.Price(tc.v)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Price(%v) = %v, want %v", tc.v, got, tc.want)
			}
			if tc.f.Name() == "" {
				t.Error("empty Name")
			}
		})
	}
}

func TestPriceFunctionValidation(t *testing.T) {
	t.Parallel()
	fns := []Function{
		InverseVariance{C: 1},
		BaseFeePlusInverse{Base: 1, C: 1},
		SqrtBlend{C: 1, D: 1},
		UnsafeSteep{C: 1},
	}
	for _, f := range fns {
		for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
			if _, err := f.Price(bad); err == nil {
				t.Errorf("%s.Price(%v) should fail", f.Name(), bad)
			}
		}
	}
	if _, err := (InverseVariance{C: 0}).Price(1); err == nil {
		t.Error("zero tariff constant should fail")
	}
	if _, err := (BaseFeePlusInverse{Base: -1, C: 1}).Price(1); err == nil {
		t.Error("negative base should fail")
	}
	if _, err := (SqrtBlend{C: 1, D: -1}).Price(1); err == nil {
		t.Error("negative blend should fail")
	}
	if _, err := (UnsafeSteep{C: -1}).Price(1); err == nil {
		t.Error("negative constant should fail")
	}
}

func TestCheckAcceptsSafeTariffs(t *testing.T) {
	t.Parallel()
	safe := []Function{
		InverseVariance{C: 50},
		BaseFeePlusInverse{Base: 1, C: 50},
		SqrtBlend{C: 50, D: 3},
	}
	for _, f := range safe {
		if err := Check(f, 1, 1e8, 2000); err != nil {
			t.Errorf("%s should pass Check: %v", f.Name(), err)
		}
	}
}

func TestCheckRejectsUnsafeTariff(t *testing.T) {
	t.Parallel()
	err := Check(UnsafeSteep{C: 50}, 1, 1e8, 2000)
	if !errors.Is(err, ErrArbitrage) {
		t.Errorf("unsafe tariff should fail Check with ErrArbitrage, got %v", err)
	}
}

type increasingTariff struct{}

func (increasingTariff) Price(v float64) (float64, error) { return v, nil }
func (increasingTariff) Name() string                     { return "increasing" }

func TestCheckRejectsIncreasingPrice(t *testing.T) {
	t.Parallel()
	if err := Check(increasingTariff{}, 1, 100, 50); !errors.Is(err, ErrArbitrage) {
		t.Errorf("price increasing in variance should fail, got %v", err)
	}
}

func TestCheckValidation(t *testing.T) {
	t.Parallel()
	f := InverseVariance{C: 1}
	if err := Check(f, 0, 10, 10); err == nil {
		t.Error("vMin=0 should fail")
	}
	if err := Check(f, 10, 1, 10); err == nil {
		t.Error("vMin>=vMax should fail")
	}
	if err := Check(f, 1, 10, 1); err == nil {
		t.Error("grid<2 should fail")
	}
}

func TestAdversaryFindsArbitrageOnUnsafeTariff(t *testing.T) {
	t.Parallel()
	adv := Adversary{Model: ChebyshevModel{N: 17568}}
	target := estimator.Accuracy{Alpha: 0.05, Delta: 0.8}
	report, err := adv.Attack(UnsafeSteep{C: 1e9}, target, DefaultMenu())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Arbitrage() {
		t.Fatalf("unsafe tariff should be attackable; report %+v", report)
	}
	if report.Best == nil || report.Best.Copies < 2 {
		t.Errorf("attack should average multiple copies, got %+v", report.Best)
	}
	if report.Best.AchievedVariance > report.TargetVariance {
		t.Error("winning strategy must meet the target variance")
	}
}

func TestAdversaryFailsAgainstSafeTariffs(t *testing.T) {
	t.Parallel()
	adv := Adversary{Model: ChebyshevModel{N: 17568}}
	targets := []estimator.Accuracy{
		{Alpha: 0.05, Delta: 0.8},
		{Alpha: 0.1, Delta: 0.6},
		{Alpha: 0.2, Delta: 0.9},
	}
	safe := []Function{
		InverseVariance{C: 1e9},
		BaseFeePlusInverse{Base: 5, C: 1e9},
		SqrtBlend{C: 1e9, D: 100},
	}
	for _, f := range safe {
		for _, target := range targets {
			report, err := adv.Attack(f, target, DefaultMenu())
			if err != nil {
				t.Fatal(err)
			}
			if report.Arbitrage() {
				t.Errorf("%s admits arbitrage at %+v: ratio %v with %+v",
					f.Name(), target, report.CostRatio, report.Best)
			}
		}
	}
}

func TestAdversaryNeutralTariffTiesExactly(t *testing.T) {
	t.Parallel()
	adv := Adversary{Model: ChebyshevModel{N: 17568}}
	target := estimator.Accuracy{Alpha: 0.05, Delta: 0.8}
	report, err := adv.Attack(InverseVariance{C: 1e9}, target, DefaultMenu())
	if err != nil {
		t.Fatal(err)
	}
	// For ψ = c/V every exact-variance strategy costs exactly the direct
	// price; with a discrete menu the best ratio is ≥ 1.
	if report.Best != nil && report.CostRatio < 1-1e-9 {
		t.Errorf("neutral tariff should never be beaten, ratio %v", report.CostRatio)
	}
}

func TestAdversaryValidation(t *testing.T) {
	t.Parallel()
	if _, err := (Adversary{}).Attack(InverseVariance{C: 1}, estimator.Accuracy{Alpha: 0.1, Delta: 0.5}, nil); err == nil {
		t.Error("missing model should fail")
	}
	adv := Adversary{Model: ChebyshevModel{N: 100}}
	if _, err := adv.Attack(InverseVariance{C: 1}, estimator.Accuracy{Alpha: 0, Delta: 0.5}, nil); err == nil {
		t.Error("bad target should fail")
	}
	if _, err := adv.Attack(InverseVariance{C: 1}, estimator.Accuracy{Alpha: 0.1, Delta: 0.5},
		[]estimator.Accuracy{{Alpha: 2, Delta: 0.5}}); err == nil {
		t.Error("bad menu item should fail")
	}
}

func TestAdversaryIgnoresNonWorseItems(t *testing.T) {
	t.Parallel()
	adv := Adversary{Model: ChebyshevModel{N: 1000}}
	target := estimator.Accuracy{Alpha: 0.2, Delta: 0.5}
	// Menu contains only items at least as good as the target; the attack
	// model (Definition 2.3) forbids buying them.
	menu := []estimator.Accuracy{
		{Alpha: 0.1, Delta: 0.6},
		{Alpha: 0.2, Delta: 0.5},
		{Alpha: 0.1, Delta: 0.5},
		{Alpha: 0.3, Delta: 0.5}, // worse alpha but equal delta: excluded too
	}
	report, err := adv.Attack(UnsafeSteep{C: 1e6}, target, menu)
	if err != nil {
		t.Fatal(err)
	}
	if report.Best != nil {
		t.Errorf("no strictly-worse items available, but found strategy %+v", report.Best)
	}
}

// TestProductConditionIsTight: a tariff that satisfies the product
// condition can never be beaten by any averaging strategy over any menu —
// a randomized cross-check of the sufficiency proof.
func TestProductConditionIsTight(t *testing.T) {
	t.Parallel()
	model := ChebyshevModel{N: 17568}
	adv := Adversary{Model: model, MaxCopies: 128}
	menu := DefaultMenu()
	f := func(baseRaw, cRaw, aRaw, dRaw float64) bool {
		base := math.Mod(math.Abs(baseRaw), 10)
		c := 1 + math.Mod(math.Abs(cRaw), 1e10)
		tariff := BaseFeePlusInverse{Base: base, C: c}
		target := estimator.Accuracy{
			Alpha: 0.03 + math.Mod(math.Abs(aRaw), 0.3),
			Delta: 0.3 + math.Mod(math.Abs(dRaw), 0.65),
		}
		report, err := adv.Attack(tariff, target, menu)
		if err != nil {
			return false
		}
		return !report.Arbitrage()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestDefaultMenuWellFormed(t *testing.T) {
	t.Parallel()
	menu := DefaultMenu()
	if len(menu) < 50 {
		t.Fatalf("menu too small: %d", len(menu))
	}
	for _, item := range menu {
		if err := item.Validate(); err != nil {
			t.Errorf("menu item %+v invalid: %v", item, err)
		}
	}
}

func TestWeightedAttackStillFailsAgainstSafeTariffs(t *testing.T) {
	t.Parallel()
	adv := Adversary{Model: ChebyshevModel{N: 17568}, MaxCopies: 256}
	menu := DefaultMenu()
	safe := []Function{
		InverseVariance{C: 1e9},
		BaseFeePlusInverse{Base: 3, C: 1e9},
		SqrtBlend{C: 1e9, D: 50},
	}
	targets := []estimator.Accuracy{
		{Alpha: 0.05, Delta: 0.8},
		{Alpha: 0.1, Delta: 0.6},
	}
	for _, f := range safe {
		for _, target := range targets {
			report, err := adv.AttackWeighted(f, target, menu)
			if err != nil {
				t.Fatal(err)
			}
			if report.Arbitrage() {
				t.Errorf("%s beaten by weighted averaging at %+v: ratio %v",
					f.Name(), target, report.CostRatio)
			}
		}
	}
}

func TestWeightedAttackDominatesPlainOnUnsafeTariff(t *testing.T) {
	t.Parallel()
	adv := Adversary{Model: ChebyshevModel{N: 17568}, MaxCopies: 256}
	menu := DefaultMenu()
	target := estimator.Accuracy{Alpha: 0.05, Delta: 0.8}
	tariff := UnsafeSteep{C: 1e16}
	plain, err := adv.Attack(tariff, target, menu)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := adv.AttackWeighted(tariff, target, menu)
	if err != nil {
		t.Fatal(err)
	}
	if !weighted.Arbitrage() {
		t.Fatal("weighted attack should beat the unsafe tariff")
	}
	// Inverse-variance weighting is at least as strong as plain
	// averaging: cost ratio no worse.
	if plain.Best != nil && weighted.CostRatio > plain.CostRatio+1e-9 {
		t.Errorf("weighted ratio %v should not exceed plain %v", weighted.CostRatio, plain.CostRatio)
	}
	// And the achieved variance must actually meet the target.
	if weighted.Best.AchievedVariance > weighted.TargetVariance {
		t.Errorf("strategy variance %v misses target %v",
			weighted.Best.AchievedVariance, weighted.TargetVariance)
	}
}

func TestAttackWeightedValidation(t *testing.T) {
	t.Parallel()
	if _, err := (Adversary{}).AttackWeighted(InverseVariance{C: 1}, estimator.Accuracy{Alpha: 0.1, Delta: 0.5}, nil); err == nil {
		t.Error("missing model should fail")
	}
	adv := Adversary{Model: ChebyshevModel{N: 100}}
	if _, err := adv.AttackWeighted(InverseVariance{C: 1}, estimator.Accuracy{Alpha: 0, Delta: 0.5}, nil); err == nil {
		t.Error("bad target should fail")
	}
}
