package core

import (
	"fmt"

	"privrange/internal/dp"
	"privrange/internal/estimator"
	"privrange/internal/optimize"
	"privrange/internal/telemetry"
)

// BatchOutcome is one query's result from AnswerBatchSerial: exactly one
// of Answer or Err is set, mirroring what a serial Answer call for that
// query would have returned.
type BatchOutcome struct {
	Answer *Answer
	Err    error
}

// AnswerBatchSerial serves many range queries at one shared accuracy
// level with release semantics bit-identical to calling Answer(q[i])
// serially in order: one noise draw from the engine RNG and one
// accountant charge per released query, outcomes independent per query
// (an exhausted budget fails the remaining queries exactly where the
// serial loop would), and the answer cache — when enabled — consulted
// and populated in query order, so an in-batch duplicate hits the store
// of its predecessor just as it would across serial calls.
//
// It exists for the market's buy-coalescing path, which must fold
// concurrent single-query sales into one estimation pass while keeping
// released values, ε accounting and per-customer bookkeeping
// indistinguishable from the serial oracle. AnswerBatch keeps the
// original batch contract (one keyed draw for the whole batch,
// all-or-nothing budget) for callers that want batch semantics.
//
// The throughput win is shared with AnswerBatch: estimation for every
// non-cached query runs through the tiled flat-index kernel in one
// call, so per-query cost collapses to a pair of binary searches per
// node plus the (cheap) per-query release step.
func (e *Engine) AnswerBatchSerial(queries []estimator.Query, acc estimator.Accuracy) ([]BatchOutcome, error) {
	return e.AnswerBatchSerialCtx(queries, acc, telemetry.SpanContext{})
}

// AnswerBatchSerialCtx is AnswerBatchSerial under a distributed-trace
// context: when sc is sampled (the market's batch-sale span), the
// batch's phases — and, on a sharded source, every shard's scatter —
// emit as spans parented on sc. Tracing never changes an answer.
func (e *Engine) AnswerBatchSerialCtx(queries []estimator.Query, acc estimator.Accuracy, sc telemetry.SpanContext) ([]BatchOutcome, error) {
	m := e.tele.Load()
	var tr telemetry.Trace
	m.beginCtx(&tr, "core.answer_batch_serial", sc)
	out, outcome, indexed, released, err := e.answerBatchSerial(queries, acc, m, &tr)
	m.finishBatch(&tr, outcome, indexed, released)
	return out, err
}

// answerBatchSerial is the pipeline behind AnswerBatchSerial. The
// returned error covers only whole-call misuse (an empty batch);
// everything else lands in per-query outcomes so callers can settle
// each underlying sale independently.
func (e *Engine) answerBatchSerial(queries []estimator.Query, acc estimator.Accuracy, m *Metrics, tr *telemetry.Trace) (out []BatchOutcome, outcome string, indexed bool, released int, err error) {
	if len(queries) == 0 {
		return nil, outcomeInvalid, false, 0, fmt.Errorf("core: empty batch")
	}
	out = make([]BatchOutcome, len(queries))
	// valid[i] marks queries that passed validation; invalid ones fail
	// with the bare validation error a serial Answer would return.
	valid := make([]bool, len(queries))
	anyValid := false
	for i, q := range queries {
		if verr := q.Validate(); verr != nil {
			out[i].Err = verr
			continue
		}
		valid[i] = true
		anyValid = true
	}
	if !anyValid {
		return out, outcomeInvalid, false, 0, nil
	}
	snap := e.readSnapshot()
	tr.Mark("sample_lookup")
	// Upfront cache probe: a query already answered under this exact
	// dataset state needs no plan, no estimate and no draw — the serial
	// path would have returned the cached copy before ever planning.
	// Each occurrence gets its own defensive copy, exactly like serial
	// lookups. Hit/miss metrics for misses are deferred to the release
	// loop, where an in-batch duplicate may still hit a predecessor's
	// store; upfront hits are counted here (their one and only lookup).
	cached := make([]*Answer, len(queries))
	needEstimate := false
	for i := range queries {
		if !valid[i] {
			continue
		}
		if e.cache != nil {
			if hit, ok := e.cache.lookup(queries[i], acc, snap); ok {
				cached[i] = hit
				m.noteCacheLookup(true)
				continue
			}
		}
		needEstimate = true
	}
	var (
		plan optimize.Plan
		mech dp.Mechanism
		raws []float64
	)
	if needEstimate {
		p, planSnap, perr := e.planFor(acc, snap)
		tr.Mark("optimize")
		if perr != nil {
			// The plan depends only on (α, δ) and the deployment state,
			// so a planning failure is what every serial call would
			// have hit. Cached hits survive — their serial calls never
			// reached the planner.
			for i := range queries {
				if valid[i] && cached[i] == nil {
					out[i].Err = perr
				}
			}
			return out, outcomeError, false, 0, nil
		}
		if snapChanged(snap, planSnap) {
			// Auto-collection moved the dataset state: every cache
			// entry probed above is now stale, exactly as a serial
			// loop's later lookups would find after the first query
			// triggered collection. Re-estimate everything.
			for i := range cached {
				cached[i] = nil
			}
		}
		snap = planSnap
		plan = p
		indexed = snap.idx != nil
		mech, err = dp.NewMechanism(p.Epsilon, p.Sensitivity)
		if err != nil {
			for i := range queries {
				if valid[i] && cached[i] == nil {
					out[i].Err = err
				}
			}
			return out, outcomeError, indexed, 0, nil
		}
		// Estimate every valid non-cached query in one kernel pass.
		// Estimation is pure — no budget, no RNG — so estimating an
		// in-batch duplicate that later hits the cache wastes only
		// cycles, never correctness.
		var batch []estimator.Query
		slot := make([]int, 0, len(queries))
		for i := range queries {
			if valid[i] && cached[i] == nil {
				batch = append(batch, queries[i])
				slot = append(slot, i)
			}
		}
		raws = make([]float64, len(queries))
		dst := make([]float64, len(batch))
		snap.spans = m.spanGroup(tr)
		if eerr := rankEstimateBatch(snap, batch, dst); eerr != nil {
			for _, i := range slot {
				out[i].Err = eerr
			}
			return out, outcomeError, indexed, 0, nil
		}
		for bi, i := range slot {
			raws[i] = dst[bi]
		}
		tr.Mark("estimate")
	}
	// Release phase: one critical section for the whole batch, walking
	// queries in order. Per query this performs exactly the serial
	// sequence — cache lookup, Spend(ε′), one Perturb draw, cache store
	// — so for a fixed seed the values, the accountant's float
	// accumulation and the noise stream position are bit-identical to
	// the serial loop. Holding releaseMu once (instead of once per
	// query) additionally makes the batch atomic against other
	// releases, which is what lets the market linearize a coalesced
	// sale against its serial oracle.
	e.releaseMu.Lock()
	for i := range queries {
		if !valid[i] {
			continue
		}
		if cached[i] != nil {
			out[i].Answer = cached[i]
			continue
		}
		if e.cache != nil {
			if hit, ok := e.cache.lookup(queries[i], acc, snap); ok {
				// An earlier query in this batch released and stored
				// the same (range, accuracy): serve the copy for free,
				// as the serial loop would.
				m.noteCacheLookup(true)
				out[i].Answer = hit
				continue
			}
			m.noteCacheLookup(false)
		}
		if e.accountant != nil {
			if serr := e.accountant.Spend(plan.EpsilonPrime); serr != nil {
				out[i].Err = serr
				continue
			}
		}
		ans := &Answer{
			Query:             queries[i],
			Accuracy:          acc,
			Value:             mech.Perturb(raws[i], e.rng),
			Plan:              plan,
			Rate:              snap.rate,
			Nodes:             snap.nodes,
			N:                 snap.n,
			Coverage:          snap.coverage,
			CollectionVersion: snap.version,
		}
		e.cache.store(ans, snap)
		out[i].Answer = ans
		released++
	}
	e.releaseMu.Unlock()
	tr.Mark("perturb")
	switch {
	case released == 0 && !needEstimate:
		return out, outcomeCacheHit, indexed, released, nil
	case released == 0:
		// Estimation ran but nothing was released (budget exhausted or
		// every query invalid before the spend).
		return out, outcomeError, indexed, released, nil
	case snap.coverage < 1:
		return out, outcomeDegraded, indexed, released, nil
	default:
		return out, outcomeOK, indexed, released, nil
	}
}

// snapChanged reports whether auto-collection replaced the dataset
// state between two snapshot captures (identity of the released
// provenance fields, the same validity key the answer cache uses).
func snapChanged(a, b snapshot) bool {
	return a.n != b.n || a.rate != b.rate || a.version != b.version || a.coverage != b.coverage
}
