package core

import (
	"sync"

	"privrange/internal/estimator"
)

// answerKey identifies a repeatable request.
type answerKey struct {
	l, u, alpha, delta float64
}

// answerCache remembers released answers. Re-serving a value that has
// already been published is free under differential privacy
// (post-processing), so a caching broker charges no additional budget
// for repeat requests — and structurally defeats the averaging attack:
// buying the same answer m times returns m identical values whose mean
// has the variance of a single purchase.
//
// Entries are valid only for the dataset state they were released
// against. Validity is keyed on (|D|, rate, sample-state version,
// coverage): the version moves whenever the base station accepts a
// report that rewrites any node's stored sample, which catches state
// changes invisible to (|D|, rate) alone — e.g. a node that went down,
// sensed while partitioned, and re-reported a redrawn sample on
// recovery at the same rate. Coverage moves when a node goes down or
// recovers even when no sample was rewritten — an answer released at
// full coverage must not be re-served as if it described the degraded
// deployment (or vice versa), because its provenance fields would lie.
// Any movement invalidates the whole cache, because a fresh answer
// would be computed from (or labeled with) different state.
type answerCache struct {
	mu       sync.Mutex
	entries  map[answerKey]*Answer
	n        int
	rate     float64
	version  uint64
	coverage float64
}

func newAnswerCache() *answerCache {
	return &answerCache{entries: make(map[answerKey]*Answer)}
}

// matchesLocked reports whether the cache's recorded dataset state is
// the snapshot's.
func (c *answerCache) matchesLocked(snap snapshot) bool {
	return c.n == snap.n && c.rate == snap.rate &&
		c.version == snap.version && c.coverage == snap.coverage
}

// lookup returns the cached answer for the request if the dataset state
// still matches.
func (c *answerCache) lookup(q estimator.Query, acc estimator.Accuracy, snap snapshot) (*Answer, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.matchesLocked(snap) {
		return nil, false
	}
	ans, ok := c.entries[answerKey{l: q.L, u: q.U, alpha: acc.Alpha, delta: acc.Delta}]
	if !ok {
		return nil, false
	}
	// Hand the caller its own copy: the stored answer is the cache's
	// record of what was released, and a caller mutating the returned
	// struct must not rewrite history for later hits.
	cp := *ans
	return &cp, true
}

// store records a released answer, resetting the cache when the dataset
// state moved since the last store.
func (c *answerCache) store(ans *Answer, snap snapshot) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.matchesLocked(snap) {
		c.entries = make(map[answerKey]*Answer)
		c.n = snap.n
		c.rate = snap.rate
		c.version = snap.version
		c.coverage = snap.coverage
	}
	key := answerKey{l: ans.Query.L, u: ans.Query.U, alpha: ans.Accuracy.Alpha, delta: ans.Accuracy.Delta}
	// Store a private copy for the same reason lookup returns one: the
	// caller keeps the pointer it was handed and may mutate it.
	cp := *ans
	c.entries[key] = &cp
}
