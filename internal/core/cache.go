package core

import (
	"privrange/internal/estimator"
)

// answerKey identifies a repeatable request.
type answerKey struct {
	l, u, alpha, delta float64
}

// answerCache remembers released answers. Re-serving a value that has
// already been published is free under differential privacy
// (post-processing), so a caching broker charges no additional budget
// for repeat requests — and structurally defeats the averaging attack:
// buying the same answer m times returns m identical values whose mean
// has the variance of a single purchase.
//
// Entries are valid only for the dataset state they were released
// against; any change to |D| (streaming ingestion) or to the sampling
// rate invalidates the whole cache, because a fresh answer would be
// computed from different samples.
type answerCache struct {
	entries map[answerKey]*Answer
	n       int
	rate    float64
}

func newAnswerCache() *answerCache {
	return &answerCache{entries: make(map[answerKey]*Answer)}
}

// lookup returns the cached answer for the request if the dataset state
// still matches.
func (c *answerCache) lookup(q estimator.Query, acc estimator.Accuracy, n int, rate float64) (*Answer, bool) {
	if c == nil {
		return nil, false
	}
	if n != c.n || rate != c.rate {
		return nil, false
	}
	ans, ok := c.entries[answerKey{l: q.L, u: q.U, alpha: acc.Alpha, delta: acc.Delta}]
	return ans, ok
}

// store records a released answer, resetting the cache when the dataset
// state moved since the last store.
func (c *answerCache) store(ans *Answer, n int, rate float64) {
	if c == nil {
		return
	}
	if n != c.n || rate != c.rate {
		c.entries = make(map[answerKey]*Answer)
		c.n = n
		c.rate = rate
	}
	key := answerKey{l: ans.Query.L, u: ans.Query.U, alpha: ans.Accuracy.Alpha, delta: ans.Accuracy.Delta}
	c.entries[key] = ans
}
