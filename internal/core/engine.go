// Package core implements the paper's primary contribution end to end:
// the broker-side engine that turns a customer's (α, δ)-range-counting
// request into an ε′-differentially-private answer with the smallest
// feasible ε′.
//
// The pipeline per query (§III):
//
//  1. Check feasibility of (α, δ) against the sampling rate the base
//     station currently holds; optionally drive the IoT network to
//     collect more samples (the paper's re-collection path).
//  2. Solve optimization problem (3) for the internal split (α′, δ′) and
//     the minimal Laplace budget ε; privacy amplification by sampling
//     turns that into the effective guarantee ε′ = ln(1 + p(e^ε − 1)).
//  3. Compute the (α′, δ′) RankCounting estimate from the per-node
//     sample sets.
//  4. Release estimate + Lap(Δγ̂/ε), which is an ε′-DP (α, δ)-range
//     counting, and charge the cumulative privacy accountant.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"privrange/internal/dp"
	"privrange/internal/estimator"
	"privrange/internal/index"
	"privrange/internal/iot"
	"privrange/internal/optimize"
	"privrange/internal/sampling"
	"privrange/internal/stats"
	"privrange/internal/telemetry"
)

// Source is the engine's view of a sampled IoT deployment.
// iot.Network implements it.
type Source interface {
	// EnsureRate drives collection until the base station holds a
	// Bernoulli(p) sample from every reachable node, returning a report
	// of what the round achieved. The error is non-nil exactly when some
	// attempted node failed (it wraps iot.ErrPartialRound); the report is
	// valid either way and describes the partial progress made.
	EnsureRate(p float64) (*iot.CollectionReport, error)
	// SampleSets returns the per-node sample sets, ordered by node id.
	SampleSets() []*sampling.SampleSet
	// Rate returns the sampling rate currently guaranteed.
	Rate() float64
	// NumNodes returns k.
	NumNodes() int
	// TotalN returns |D|.
	TotalN() int
	// Snapshot returns one atomically consistent view of (sample sets,
	// columnar index, rate, node count, record count, sample-state
	// version, coverage). The returned sets and index must be immutable
	// — later collections must replace them, not mutate them — and
	// version must increase whenever any node's stored sample is
	// rewritten, even at unchanged n and rate. idx may be nil when the
	// source holds no index built from exactly the current sample state;
	// the engine then estimates over the sets directly. Coverage is the
	// fraction of records held by currently reachable nodes; it moves
	// when nodes go down or recover even if nothing else changed.
	Snapshot() (sets []*sampling.SampleSet, idx *index.Index, rate float64, nodes, n int, version uint64, coverage float64)
}

// ErrUnachievable reports that the requested accuracy cannot be met even
// after sampling every record — no noise margin remains.
var ErrUnachievable = errors.New("core: accuracy unachievable even at full sampling")

// DegradationPolicy selects how the engine reacts when a collection
// round completes only partially (some nodes failed after exhausting
// their retries).
type DegradationPolicy int

const (
	// Strict fails the query on any partial collection round: every
	// attempted node must be reached before an answer is released. This
	// is the default and matches the engine's historical behavior.
	Strict DegradationPolicy = iota
	// BestEffort tolerates partial rounds: the engine re-solves
	// optimization problem (3) at whatever rate the degraded network
	// actually guarantees and answers if that is feasible. The released
	// Answer carries Coverage and CollectionVersion provenance so the
	// consumer can see exactly what they paid for.
	BestEffort
)

// WithDegradationPolicy selects strict or best-effort answering over
// partially-failed collection rounds. The default is Strict.
func WithDegradationPolicy(p DegradationPolicy) Option {
	return func(e *Engine) { e.policy = p }
}

// Engine is the broker-side private query engine. It is safe for
// concurrent use and built read-mostly: query paths (Answer,
// AnswerBatch, Plan, EstimateOnly, cache hits) take a read lock just
// long enough to capture an immutable snapshot of the source's
// (sample sets, rate, |D|) and then estimate lock-free — independent
// queries proceed in parallel. Sample collection (the auto-collect path
// raising the rate) is the only writer. Release-side mutable state — the
// noise RNG, the accountant charge and the answer cache update — sits
// behind a separate short mutex, so for a fixed seed and call sequence
// answers remain bit-for-bit reproducible.
type Engine struct {
	// mu orders queries against collection: readers snapshot the source,
	// the plan→EnsureRate path is the only writer.
	mu  sync.RWMutex
	src Source
	// releaseMu guards the noise RNG and the accountant/cache updates
	// that accompany every release.
	releaseMu  sync.Mutex
	rng        *stats.RNG
	accountant *dp.Accountant
	auto       bool
	margin     float64
	policy     DegradationPolicy
	cache      *answerCache
	// tele holds the optional query-engine metrics. It is an atomic
	// pointer so telemetry can be attached after construction (the ops
	// endpoint is opt-in and may be enabled late) without racing the
	// lock-free query paths; nil means record nothing.
	tele atomic.Pointer[Metrics]
}

// SetTelemetry attaches engine metrics (nil detaches). Safe to call
// concurrently with queries.
func (e *Engine) SetTelemetry(m *Metrics) { e.tele.Store(m) }

// WithTelemetry attaches engine metrics at construction.
func WithTelemetry(m *Metrics) Option {
	return func(e *Engine) { e.tele.Store(m) }
}

// Option configures an Engine.
type Option func(*Engine)

// WithSeed fixes the noise RNG seed for reproducible experiments. The
// default seed is 1.
func WithSeed(seed int64) Option {
	return func(e *Engine) { e.rng = stats.NewRNG(seed) }
}

// WithAccountant attaches a shared privacy-budget accountant; every
// answered query spends its effective ε′ there.
func WithAccountant(a *dp.Accountant) Option {
	return func(e *Engine) { e.accountant = a }
}

// Accountant returns the engine's privacy accountant (nil when none is
// attached). The market's durability layer uses it to snapshot and
// restore Σε′ across broker restarts; it is set once at construction,
// so reading it here is race-free.
func (e *Engine) Accountant() *dp.Accountant { return e.accountant }

// WithAutoCollect controls whether the engine may command the network to
// raise its sampling rate when a request is infeasible at the current
// rate. Enabled by default.
func WithAutoCollect(enabled bool) Option {
	return func(e *Engine) { e.auto = enabled }
}

// WithAnswerCache enables released-answer caching: a repeated request
// (same range, same accuracy, unchanged dataset state) is served the
// previously released value at zero additional privacy cost —
// re-publishing a published value is free post-processing under
// differential privacy. Side effect on the market: buying the same
// answer m times yields m identical copies, so averaging them gains
// nothing; the caching broker is structurally immune to the Example 4.1
// attack. Disabled by default (the paper's broker draws fresh noise per
// sale).
func WithAnswerCache(enabled bool) Option {
	return func(e *Engine) {
		if enabled {
			e.cache = newAnswerCache()
		} else {
			e.cache = nil
		}
	}
}

// WithCollectionMargin sets the factor by which auto-collection oversamples
// relative to the Theorem 3.3 feasibility threshold, leaving headroom for
// the noise phase. The default is 2; values below are rejected at New.
func WithCollectionMargin(m float64) Option {
	return func(e *Engine) { e.margin = m }
}

// New builds an engine over a sampled source.
func New(src Source, opts ...Option) (*Engine, error) {
	if src == nil {
		return nil, fmt.Errorf("core: nil source")
	}
	e := &Engine{
		src:    src,
		rng:    stats.NewRNG(1),
		auto:   true,
		margin: 2,
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.margin < 1 {
		return nil, fmt.Errorf("core: collection margin %v must be >= 1", e.margin)
	}
	if e.policy != Strict && e.policy != BestEffort {
		return nil, fmt.Errorf("core: unknown degradation policy %d", e.policy)
	}
	return e, nil
}

// Answer is a released private range-counting result plus its full
// provenance (everything a customer is allowed to see).
type Answer struct {
	// Query and Accuracy echo the request.
	Query    estimator.Query
	Accuracy estimator.Accuracy
	// Value is the released ε′-DP estimate. It can be negative or exceed
	// n — unbiasedness forbids truncation; use Clamped for display.
	Value float64
	// Plan is the optimizer's solution: (α′, δ′, ε, ε′) and the noise
	// scale actually used.
	Plan optimize.Plan
	// Rate is the sampling rate the answer was computed at.
	Rate float64
	// Nodes and N describe the deployment (public metadata).
	Nodes, N int
	// Coverage is the fraction of records held by nodes that were
	// reachable when the answer's snapshot was taken: 1 means every
	// node's samples were refreshable, lower values mean the answer
	// leaned on stale samples from down or failed nodes (best-effort
	// degradation provenance).
	Coverage float64
	// CollectionVersion is the source's sample-state version the answer
	// was computed against; consumers can compare it across purchases to
	// tell whether the underlying samples moved.
	CollectionVersion uint64
}

// Clamped returns the answer value truncated to the physically possible
// range [0, N]. Clamping is safe post-processing under DP but breaks
// unbiasedness, so it is opt-in.
func (a *Answer) Clamped() float64 {
	return math.Max(0, math.Min(float64(a.N), a.Value))
}

// Answer serves one (α, δ)-range-counting request (Definition 2.2).
func (e *Engine) Answer(q estimator.Query, acc estimator.Accuracy) (*Answer, error) {
	return e.AnswerCtx(q, acc, telemetry.SpanContext{})
}

// AnswerCtx is Answer under a distributed-trace context: when sc is
// sampled, the query's phases emit as spans parented on sc (the
// market's handler span). Tracing never changes the answer — the RNG
// stream, accountant charges and cache behaviour are identical with
// any context, including the zero one.
func (e *Engine) AnswerCtx(q estimator.Query, acc estimator.Accuracy, sc telemetry.SpanContext) (*Answer, error) {
	m := e.tele.Load()
	var tr telemetry.Trace
	m.beginCtx(&tr, "core.answer", sc)
	ans, outcome, err := e.answer(q, acc, m, &tr)
	m.finishQuery(&tr, outcome)
	return ans, err
}

// answer is the pipeline behind Answer. The trace is a stack-held
// value owned by the wrapper; Mark and the metrics helpers are inert
// nil/un-begun no-ops, so the uninstrumented path pays only branches.
func (e *Engine) answer(q estimator.Query, acc estimator.Accuracy, m *Metrics, tr *telemetry.Trace) (*Answer, string, error) {
	if err := q.Validate(); err != nil {
		return nil, outcomeInvalid, err
	}
	snap := e.readSnapshot()
	tr.Mark("sample_lookup")
	if e.cache != nil {
		cached, ok := e.cache.lookup(q, acc, snap)
		m.noteCacheLookup(ok)
		if ok {
			return cached, outcomeCacheHit, nil
		}
	}
	plan, snap, err := e.planFor(acc, snap)
	tr.Mark("optimize")
	if err != nil {
		return nil, outcomeError, err
	}
	snap.spans = m.spanGroup(tr)
	raw, err := rankEstimate(snap, q)
	tr.Mark("estimate")
	if err != nil {
		return nil, outcomeError, err
	}
	mech, err := dp.NewMechanism(plan.Epsilon, plan.Sensitivity)
	if err != nil {
		return nil, outcomeError, err
	}
	e.releaseMu.Lock()
	defer e.releaseMu.Unlock()
	if e.accountant != nil {
		if err := e.accountant.Spend(plan.EpsilonPrime); err != nil {
			return nil, outcomeError, err
		}
	}
	ans := &Answer{
		Query:             q,
		Accuracy:          acc,
		Value:             mech.Perturb(raw, e.rng),
		Plan:              plan,
		Rate:              snap.rate,
		Nodes:             snap.nodes,
		N:                 snap.n,
		Coverage:          snap.coverage,
		CollectionVersion: snap.version,
	}
	e.cache.store(ans, snap)
	tr.Mark("perturb")
	if snap.coverage < 1 {
		return ans, outcomeDegraded, nil
	}
	return ans, outcomeOK, nil
}

// EstimateOnly returns the broker-internal (α′, δ′) sampling estimate
// without noise. It never leaves the broker: experiments use it to
// separate sampling error from perturbation error (Figs 2–4). It does not
// spend privacy budget because nothing is released.
func (e *Engine) EstimateOnly(q estimator.Query) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	snap := e.readSnapshot()
	if snap.rate <= 0 {
		return 0, fmt.Errorf("core: no samples collected yet")
	}
	return rankEstimate(snap, q)
}

// solveAt solves optimization problem (3) against a snapshot. Pure: it
// touches no engine state, so read-path callers need no lock.
func solveAt(acc estimator.Accuracy, snap snapshot) (optimize.Plan, error) {
	prob := optimize.Problem{
		Accuracy: acc,
		P:        snap.rate,
		K:        snap.nodes,
		N:        snap.n,
	}
	if prob.P <= 0 {
		return optimize.Plan{}, optimize.ErrInfeasible
	}
	return prob.SolveRefined()
}

// planFor solves problem (3) for the request, optionally raising the
// sampling rate until it becomes feasible. It returns the plan together
// with the snapshot it was solved against: the feasible fast path reuses
// the caller's snapshot read-locked, while the re-collection path takes
// the writer lock, re-checks (another writer may have collected while we
// waited), oversamples past the feasibility threshold and doubles until
// feasible or saturated at p = 1.
func (e *Engine) planFor(acc estimator.Accuracy, snap snapshot) (optimize.Plan, snapshot, error) {
	if err := acc.Validate(); err != nil {
		return optimize.Plan{}, snap, err
	}
	plan, err := solveAt(acc, snap)
	if err == nil {
		return plan, snap, nil
	}
	if !errors.Is(err, optimize.ErrInfeasible) || !e.auto {
		return optimize.Plan{}, snap, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	snap = e.snapshotLocked()
	if plan, err = solveAt(acc, snap); err == nil {
		return plan, snap, nil
	}
	if !errors.Is(err, optimize.ErrInfeasible) {
		return optimize.Plan{}, snap, err
	}
	need, rerr := estimator.RequiredProbability(acc, snap.nodes, snap.n)
	if rerr != nil {
		return optimize.Plan{}, snap, rerr
	}
	target := math.Min(1, need*e.margin)
	if target <= snap.rate {
		target = math.Min(1, snap.rate*2)
	}
	for {
		if _, err := e.src.EnsureRate(target); err != nil && !e.tolerable(err) {
			return optimize.Plan{}, snap, err
		}
		snap = e.snapshotLocked()
		plan, err := solveAt(acc, snap)
		if err == nil {
			return plan, snap, nil
		}
		if !errors.Is(err, optimize.ErrInfeasible) {
			return optimize.Plan{}, snap, err
		}
		if target >= 1 {
			return optimize.Plan{}, snap, fmt.Errorf("%w: %w", ErrUnachievable, err)
		}
		target = math.Min(1, target*2)
	}
}

// tolerable reports whether a collection error may be absorbed instead
// of failing the query: only partial rounds under the best-effort
// policy qualify — the engine then re-solves at whatever rate the
// degraded network actually achieved. Transport-independent errors
// (validation, unknown failures) always propagate.
func (e *Engine) tolerable(err error) bool {
	return e.policy == BestEffort && errors.Is(err, iot.ErrPartialRound)
}

// Plan exposes the optimizer outcome for a hypothetical request without
// answering it (used for quoting prices before purchase). It never
// changes the sampling rate and spends no budget.
func (e *Engine) Plan(acc estimator.Accuracy) (optimize.Plan, error) {
	if err := acc.Validate(); err != nil {
		return optimize.Plan{}, err
	}
	return solveAt(acc, e.readSnapshot())
}
