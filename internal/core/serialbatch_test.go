package core

import (
	"math"
	"strings"
	"testing"

	"privrange/internal/dp"
	"privrange/internal/estimator"
)

// serialOracle answers the same queries one at a time on a fresh engine
// built over an identically-seeded network, returning the per-query
// outcomes a serial loop produces. The accountant is returned so spends
// can be compared bit-for-bit.
func serialOracle(t *testing.T, k int, netSeed, engSeed int64, budget float64, cache bool, queries []estimator.Query, acc estimator.Accuracy) ([]BatchOutcome, *dp.Accountant) {
	t.Helper()
	nw, _ := buildNetwork(t, k, 0, netSeed)
	acct, err := dp.NewAccountant(budget)
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{WithSeed(engSeed), WithAccountant(acct)}
	if cache {
		opts = append(opts, WithAnswerCache(true))
	}
	eng, err := New(nw, opts...)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]BatchOutcome, len(queries))
	for i, q := range queries {
		out[i].Answer, out[i].Err = eng.Answer(q, acc)
	}
	return out, acct
}

// assertOutcomesEqual demands bit-for-bit equality between the batch
// outcomes and the serial oracle: same success/failure split, identical
// released values (==, not within-tolerance), identical plans and
// provenance, and matching error text.
func assertOutcomesEqual(t *testing.T, got, want []BatchOutcome) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("outcome count %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if (g.Err == nil) != (w.Err == nil) {
			t.Fatalf("query %d: err %v, oracle err %v", i, g.Err, w.Err)
		}
		if g.Err != nil {
			if g.Err.Error() != w.Err.Error() {
				t.Errorf("query %d: err %q, oracle %q", i, g.Err, w.Err)
			}
			continue
		}
		if g.Answer.Value != w.Answer.Value {
			t.Errorf("query %d: value %v, oracle %v (must be bit-identical)", i, g.Answer.Value, w.Answer.Value)
		}
		if g.Answer.Plan != w.Answer.Plan {
			t.Errorf("query %d: plan %+v, oracle %+v", i, g.Answer.Plan, w.Answer.Plan)
		}
		if g.Answer.Rate != w.Answer.Rate || g.Answer.N != w.Answer.N ||
			g.Answer.Coverage != w.Answer.Coverage ||
			g.Answer.CollectionVersion != w.Answer.CollectionVersion {
			t.Errorf("query %d: provenance mismatch: %+v vs %+v", i, g.Answer, w.Answer)
		}
	}
}

func TestAnswerBatchSerialMatchesSerialOracle(t *testing.T) {
	t.Parallel()
	const (
		k       = 8
		netSeed = 81
		engSeed = 11
	)
	acc := estimator.Accuracy{Alpha: 0.08, Delta: 0.6}
	queries := []estimator.Query{
		{L: 0, U: 50}, {L: 50, U: 100}, {L: 100, U: 300}, {L: 20, U: 180}, {L: 0, U: 500},
	}

	nw, _ := buildNetwork(t, k, 0, netSeed)
	acct, err := dp.NewAccountant(0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithSeed(engSeed), WithAccountant(acct))
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.AnswerBatchSerial(queries, acc)
	if err != nil {
		t.Fatal(err)
	}
	want, oracleAcct := serialOracle(t, k, netSeed, engSeed, 0, false, queries, acc)
	assertOutcomesEqual(t, got, want)
	if acct.Spent() != oracleAcct.Spent() {
		t.Errorf("spent %v, oracle %v (accountant accumulation must be bit-identical)", acct.Spent(), oracleAcct.Spent())
	}
	// One charge per released query, no more and no fewer.
	wantSpend := got[0].Answer.Plan.EpsilonPrime * float64(len(queries))
	if math.Abs(acct.Spent()-wantSpend) > 1e-12 {
		t.Errorf("spent %v, want m·ε′ = %v", acct.Spent(), wantSpend)
	}
	// Noise is per-query: a later call over the same ranges continues
	// the stream, never replays it.
	again, err := eng.AnswerBatchSerial(queries[:2], acc)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Answer.Value == got[0].Answer.Value {
		t.Error("re-answering must draw fresh noise, not replay the stream")
	}
}

func TestAnswerBatchSerialBudgetExhaustionMidBatch(t *testing.T) {
	t.Parallel()
	const (
		k       = 4
		netSeed = 7
		engSeed = 23
	)
	acc := estimator.Accuracy{Alpha: 0.08, Delta: 0.6}
	queries := []estimator.Query{
		{L: 0, U: 50}, {L: 50, U: 100}, {L: 100, U: 300}, {L: 20, U: 180},
	}
	// Size the cap so roughly half the batch fits: probe ε′ uncapped,
	// then cap at 2.5 charges — queries 0 and 1 succeed, 2 and 3 hit
	// the exhausted accountant exactly where the serial loop would.
	probe, _ := serialOracle(t, k, netSeed, engSeed, 0, false, queries[:1], acc)
	budget := probe[0].Answer.Plan.EpsilonPrime * 2.5

	nw, _ := buildNetwork(t, k, 0, netSeed)
	acct, err := dp.NewAccountant(budget)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithSeed(engSeed), WithAccountant(acct))
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.AnswerBatchSerial(queries, acc)
	if err != nil {
		t.Fatal(err)
	}
	want, oracleAcct := serialOracle(t, k, netSeed, engSeed, budget, false, queries, acc)
	assertOutcomesEqual(t, got, want)
	if acct.Spent() != oracleAcct.Spent() {
		t.Errorf("spent %v, oracle %v", acct.Spent(), oracleAcct.Spent())
	}
	if got[0].Err != nil || got[1].Err != nil {
		t.Fatalf("first two queries should fit the budget: %v, %v", got[0].Err, got[1].Err)
	}
	for i := 2; i < 4; i++ {
		if got[i].Err == nil || !strings.Contains(got[i].Err.Error(), "budget exhausted") {
			t.Errorf("query %d: want budget exhaustion, got %v", i, got[i].Err)
		}
	}
}

func TestAnswerBatchSerialCacheDuplicates(t *testing.T) {
	t.Parallel()
	const (
		k       = 4
		netSeed = 31
		engSeed = 5
	)
	acc := estimator.Accuracy{Alpha: 0.08, Delta: 0.6}
	// Query 2 duplicates query 0 in-batch; the serial loop's second
	// occurrence hits the cache entry its first occurrence stored.
	queries := []estimator.Query{
		{L: 0, U: 50}, {L: 50, U: 100}, {L: 0, U: 50}, {L: 0, U: 50},
	}
	nw, _ := buildNetwork(t, k, 0, netSeed)
	acct, err := dp.NewAccountant(0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithSeed(engSeed), WithAccountant(acct), WithAnswerCache(true))
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.AnswerBatchSerial(queries, acc)
	if err != nil {
		t.Fatal(err)
	}
	want, oracleAcct := serialOracle(t, k, netSeed, engSeed, 0, true, queries, acc)
	assertOutcomesEqual(t, got, want)
	if got[2].Answer.Value != got[0].Answer.Value || got[3].Answer.Value != got[0].Answer.Value {
		t.Error("in-batch duplicates must serve the first occurrence's released value")
	}
	if got[2].Answer == got[0].Answer {
		t.Error("cache hits must be defensive copies, not shared pointers")
	}
	if acct.Spent() != oracleAcct.Spent() {
		t.Errorf("spent %v, oracle %v", acct.Spent(), oracleAcct.Spent())
	}
	// Two distinct ranges → exactly two charges; duplicates are free.
	wantSpend := got[0].Answer.Plan.EpsilonPrime * 2
	if math.Abs(acct.Spent()-wantSpend) > 1e-12 {
		t.Errorf("spent %v, want 2·ε′ = %v (duplicates must not re-spend)", acct.Spent(), wantSpend)
	}

	// A whole-batch replay is all cache hits: zero additional spend,
	// values identical to the first release.
	before := acct.Spent()
	replay, err := eng.AnswerBatchSerial(queries, acc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range replay {
		if replay[i].Err != nil {
			t.Fatalf("replay query %d: %v", i, replay[i].Err)
		}
		if replay[i].Answer.Value != got[i].Answer.Value {
			t.Errorf("replay query %d: %v, want cached %v", i, replay[i].Answer.Value, got[i].Answer.Value)
		}
	}
	if acct.Spent() != before {
		t.Error("replaying a fully-cached batch must spend nothing")
	}
}

func TestAnswerBatchSerialInvalidAndEmpty(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 4, 0, 13)
	eng, err := New(nw, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	acc := estimator.Accuracy{Alpha: 0.08, Delta: 0.6}

	if _, err := eng.AnswerBatchSerial(nil, acc); err == nil {
		t.Error("empty batch must error")
	}

	queries := []estimator.Query{
		{L: 0, U: 50}, {L: 100, U: 10}, {L: math.NaN(), U: 1}, {L: 50, U: 100},
	}
	got, err := eng.AnswerBatchSerial(queries, acc)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Err == nil || !strings.Contains(got[1].Err.Error(), "L > U") {
		t.Errorf("query 1: want validation error, got %v", got[1].Err)
	}
	if got[2].Err == nil || !strings.Contains(got[2].Err.Error(), "NaN") {
		t.Errorf("query 2: want NaN validation error, got %v", got[2].Err)
	}
	if got[0].Err != nil || got[3].Err != nil {
		t.Errorf("valid queries must still release: %v, %v", got[0].Err, got[3].Err)
	}
	if got[0].Answer == nil || got[3].Answer == nil {
		t.Fatal("valid queries returned no answer")
	}

	// An all-invalid batch releases nothing and charges nothing.
	bad, err := eng.AnswerBatchSerial([]estimator.Query{{L: 9, U: 1}}, acc)
	if err != nil {
		t.Fatal(err)
	}
	if bad[0].Err == nil {
		t.Error("invalid-only batch must fail the query")
	}
}
