package core

import (
	"math"
	"runtime"
	"testing"

	"privrange/internal/dp"
	"privrange/internal/estimator"
)

func TestAnswerBatch(t *testing.T) {
	t.Parallel()
	nw, series := buildNetwork(t, 8, 0, 81)
	acct, err := dp.NewAccountant(0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithSeed(11), WithAccountant(acct))
	if err != nil {
		t.Fatal(err)
	}
	acc := estimator.Accuracy{Alpha: 0.08, Delta: 0.6}
	queries := []estimator.Query{
		{L: 0, U: 50}, {L: 50, U: 100}, {L: 100, U: 300}, {L: 20, U: 180},
	}
	answers, err := eng.AnswerBatch(queries, acc)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(queries) {
		t.Fatalf("got %d answers", len(answers))
	}
	n := float64(series.Len())
	for i, ans := range answers {
		truth, err := series.RangeCount(queries[i].L, queries[i].U)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ans.Value-float64(truth)) > 3*acc.Alpha*n {
			t.Errorf("query %d: %v wildly off truth %d", i, ans.Value, truth)
		}
		if ans.Plan != answers[0].Plan {
			t.Errorf("query %d should share the batch plan", i)
		}
	}
	// Budget: exactly m times the shared per-answer epsilon'.
	want := answers[0].Plan.EpsilonPrime * float64(len(queries))
	if got := acct.Spent(); math.Abs(got-want) > 1e-12 {
		t.Errorf("spent %v, want %v", got, want)
	}
	// Noise is independent per query: identical queries differ.
	dup, err := eng.AnswerBatch([]estimator.Query{{L: 0, U: 50}, {L: 0, U: 50}}, acc)
	if err != nil {
		t.Fatal(err)
	}
	if dup[0].Value == dup[1].Value {
		t.Error("batch answers must carry independent noise")
	}
}

func TestAnswerBatchValidation(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 4, 6000, 83)
	eng, err := New(nw)
	if err != nil {
		t.Fatal(err)
	}
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	if _, err := eng.AnswerBatch(nil, acc); err == nil {
		t.Error("empty batch should fail")
	}
	if _, err := eng.AnswerBatch([]estimator.Query{{L: 5, U: 1}}, acc); err == nil {
		t.Error("bad query should fail")
	}
}

func TestAnswerBatchAllOrNothingBudget(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 4, 8000, 85)
	// Learn the per-answer cost first with an uncapped engine.
	probe, err := New(nw, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	one, err := probe.Answer(estimator.Query{L: 0, U: 100}, acc)
	if err != nil {
		t.Fatal(err)
	}
	// Cap affords two answers, request three: the whole batch must fail
	// and spend nothing further.
	acct, err := dp.NewAccountant(one.Plan.EpsilonPrime * 2.5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithSeed(2), WithAccountant(acct))
	if err != nil {
		t.Fatal(err)
	}
	queries := []estimator.Query{{L: 0, U: 50}, {L: 50, U: 100}, {L: 100, U: 300}}
	if _, err := eng.AnswerBatch(queries, acc); err == nil {
		t.Fatal("over-budget batch should fail")
	}
	if acct.Spent() != 0 {
		t.Errorf("failed batch must not spend, spent %v", acct.Spent())
	}
	// A two-query batch fits.
	if _, err := eng.AnswerBatch(queries[:2], acc); err != nil {
		t.Errorf("affordable batch should pass: %v", err)
	}
}

func TestAnswerBatchDeterministicAcrossGOMAXPROCS(t *testing.T) {
	// Not parallel: mutates GOMAXPROCS for the whole process.
	queries := []estimator.Query{
		{L: 0, U: 40}, {L: 10, U: 90}, {L: 20, U: 140}, {L: 30, U: 190},
		{L: 40, U: 240}, {L: 50, U: 290}, {L: 60, U: 340}, {L: 0, U: 340},
	}
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	run := func(procs int) []float64 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		nw, _ := buildNetwork(t, 8, 8000, 97)
		eng, err := New(nw, WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		answers, err := eng.AnswerBatch(queries, acc)
		if err != nil {
			t.Fatal(err)
		}
		values := make([]float64, len(answers))
		for i, ans := range answers {
			values[i] = ans.Value
		}
		return values
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("query %d: GOMAXPROCS=1 gives %v, GOMAXPROCS=8 gives %v — batch must be bit-identical",
				i, serial[i], parallel[i])
		}
	}
}
