package core

import (
	"testing"

	"privrange/internal/dp"
	"privrange/internal/estimator"
)

func TestAnswerCacheHitIsFreeAndIdentical(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 6, 8000, 71)
	acct, err := dp.NewAccountant(0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithSeed(3), WithAccountant(acct), WithAnswerCache(true))
	if err != nil {
		t.Fatal(err)
	}
	q := estimator.Query{L: 30, U: 90}
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	first, err := eng.Answer(q, acc)
	if err != nil {
		t.Fatal(err)
	}
	spent := acct.Spent()
	for i := 0; i < 5; i++ {
		again, err := eng.Answer(q, acc)
		if err != nil {
			t.Fatal(err)
		}
		if again.Value != first.Value {
			t.Fatalf("cached answer differs: %v vs %v", again.Value, first.Value)
		}
	}
	if acct.Spent() != spent {
		t.Errorf("cache hits must not spend budget: %v -> %v", spent, acct.Spent())
	}
	// A different request is a fresh release.
	other, err := eng.Answer(estimator.Query{L: 30, U: 91}, acc)
	if err != nil {
		t.Fatal(err)
	}
	if other.Value == first.Value {
		t.Error("different query should not hit the cache")
	}
	if acct.Spent() <= spent {
		t.Error("fresh release must spend budget")
	}
}

func TestAnswerCacheInvalidatedByIngest(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 4, 6000, 73)
	eng, err := New(nw, WithSeed(5), WithAnswerCache(true))
	if err != nil {
		t.Fatal(err)
	}
	q := estimator.Query{L: 30, U: 90}
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	first, err := eng.Answer(q, acc)
	if err != nil {
		t.Fatal(err)
	}
	// New data arrives; the cached answer describes a stale dataset.
	if err := nw.Ingest(0, []float64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.EnsureRate(nw.Rate()); err != nil {
		t.Fatal(err)
	}
	again, err := eng.Answer(q, acc)
	if err != nil {
		t.Fatal(err)
	}
	if again.Value == first.Value {
		t.Error("ingest should invalidate the cache")
	}
	if again.N == first.N {
		t.Error("fresh answer should see the new dataset size")
	}
}

func TestAnswerCacheDisabledByDefault(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 4, 6000, 75)
	eng, err := New(nw, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	q := estimator.Query{L: 30, U: 90}
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	a, err := eng.Answer(q, acc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Answer(q, acc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value == b.Value {
		t.Error("without caching, repeat answers draw fresh noise")
	}
}

// TestCacheDefeatsAveraging: with caching on, m repeat purchases return
// identical values, so their mean carries the full single-answer
// deviation — the averaging attack gains nothing.
func TestCacheDefeatsAveraging(t *testing.T) {
	t.Parallel()
	nw, series := buildNetwork(t, 6, 8000, 77)
	eng, err := New(nw, WithSeed(9), WithAnswerCache(true))
	if err != nil {
		t.Fatal(err)
	}
	q := estimator.Query{L: 30, U: 90}
	acc := estimator.Accuracy{Alpha: 0.2, Delta: 0.3} // cheap, noisy item
	truth, err := series.RangeCount(q.L, q.U)
	if err != nil {
		t.Fatal(err)
	}
	const copies = 20
	sum := 0.0
	var firstVal float64
	for i := 0; i < copies; i++ {
		ans, err := eng.Answer(q, acc)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstVal = ans.Value
		}
		sum += ans.Value
	}
	mean := sum / copies
	// Floating-point summation slack only; the values are identical.
	if diff := mean - firstVal; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("averaging cached copies should change nothing: mean %v vs single %v", mean, firstVal)
	}
	_ = truth // the deviation of mean equals the single-answer deviation by construction
}

func TestCacheInvalidatedByRecoveryAtSameRate(t *testing.T) {
	t.Parallel()
	// Regression for stale cache hits: a node that partitions, senses new
	// data while down, and then recovers is re-collected at the SAME n and
	// rate the cache already recorded — only the sample-state version
	// reveals that the answer's underlying samples no longer exist.
	nw, _ := buildNetwork(t, 4, 6000, 73)
	acct, err := dp.NewAccountant(0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithSeed(5), WithAccountant(acct), WithAnswerCache(true))
	if err != nil {
		t.Fatal(err)
	}
	q := estimator.Query{L: 20, U: 120}
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	if _, err := eng.Answer(q, acc); err != nil {
		t.Fatal(err)
	}
	rate := nw.Rate()
	if err := nw.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	if err := nw.Ingest(0, []float64{40, 50, 60}); err != nil {
		t.Fatal(err)
	}
	// Answered and cached against node 0's stale pre-partition sample.
	if _, err := eng.Answer(q, acc); err != nil {
		t.Fatal(err)
	}
	spent := acct.Spent()
	if err := nw.SetDown(0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.EnsureRate(rate); err != nil {
		t.Fatal(err)
	}
	// Guard the scenario: the recovery refresh changed neither n nor rate.
	if got := nw.Rate(); got != rate {
		t.Fatalf("recovery moved the rate %v -> %v; scenario broken", rate, got)
	}
	after, err := eng.Answer(q, acc)
	if err != nil {
		t.Fatal(err)
	}
	if acct.Spent() == spent {
		t.Error("answer over recovered sample state was served from the cache for free")
	}
	if after == nil {
		t.Fatal("nil answer")
	}
}
