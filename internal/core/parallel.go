package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelMinBatch is the work-item count below which forEach stays on
// the calling goroutine — a two-query batch is cheaper answered inline
// than through a pool.
const parallelMinBatch = 4

// forEach runs fn(i) for every i in [0, n) and returns the first error.
// Above parallelMinBatch (and with more than one P available) the items
// fan out across at most GOMAXPROCS workers; items are handed out by
// atomic counter so uneven per-item cost still balances. fn must be safe
// to call concurrently and must not assume any ordering.
func forEach(n int, fn func(int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if n < parallelMinBatch || workers < 2 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
