package core

import (
	"fmt"

	"privrange/internal/dp"
	"privrange/internal/histogram"
	"privrange/internal/quantile"
	"privrange/internal/topk"
)

// defaultAggregateRate is the sampling rate auto-collection targets for
// the fixed-ε aggregate releases (histogram, quantile) when no samples
// exist yet. The (α, δ) range-counting path chooses its own rate from
// Theorem 3.3; these aggregates take ε directly, so the engine picks a
// rate that keeps the 1/p sensitivity small.
const defaultAggregateRate = 0.2

// collectedSnapshot returns a snapshot with a usable sample, collecting
// at the default aggregate rate (as the writer) when none exists yet.
func (e *Engine) collectedSnapshot() (snapshot, error) {
	snap := e.readSnapshot()
	if snap.rate > 0 {
		return snap, nil
	}
	if !e.auto {
		return snapshot{}, fmt.Errorf("core: no samples collected yet (auto-collect disabled)")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if snap = e.snapshotLocked(); snap.rate > 0 {
		return snap, nil
	}
	if _, err := e.src.EnsureRate(defaultAggregateRate); err != nil && !e.tolerable(err) {
		return snapshot{}, err
	}
	if snap = e.snapshotLocked(); snap.rate <= 0 {
		return snapshot{}, fmt.Errorf("core: collection failed to establish a sampling rate")
	}
	return snap, nil
}

// Histogram releases an ε-DP band histogram over the given boundaries
// (see internal/histogram: disjoint bands compose in parallel, so the
// whole histogram costs one ε). The effective amplified budget
// ln(1+p(e^ε−1)) is charged to the accountant and returned.
func (e *Engine) Histogram(boundaries []float64, epsilon float64) (*histogram.Histogram, float64, error) {
	snap, err := e.collectedSnapshot()
	if err != nil {
		return nil, 0, err
	}
	b := histogram.Builder{P: snap.rate}
	effective, err := b.EffectiveEpsilon(epsilon)
	if err != nil {
		return nil, 0, err
	}
	e.releaseMu.Lock()
	defer e.releaseMu.Unlock()
	// Compute first, charge second: a failed computation must not burn
	// budget, and an uncharged result is simply not returned.
	h, err := b.Private(snap.sets, boundaries, epsilon, e.rng)
	if err != nil {
		return nil, 0, err
	}
	if e.accountant != nil {
		if err := e.accountant.Spend(effective); err != nil {
			return nil, 0, err
		}
	}
	return h, effective, nil
}

// TopK releases the k most frequent readings under ε-DP (peeling
// exponential mechanism plus noisy counts; see internal/topk). The
// effective amplified budget is charged and returned.
func (e *Engine) TopK(k int, epsilon float64) ([]topk.Hitter, float64, error) {
	snap, err := e.collectedSnapshot()
	if err != nil {
		return nil, 0, err
	}
	effective, err := dp.AmplifyBySampling(epsilon, snap.rate)
	if err != nil {
		return nil, 0, err
	}
	est := topk.Estimator{P: snap.rate}
	e.releaseMu.Lock()
	defer e.releaseMu.Unlock()
	hitters, err := est.PrivateTop(snap.sets, k, epsilon, e.rng)
	if err != nil {
		return nil, 0, err
	}
	if e.accountant != nil {
		if err := e.accountant.Spend(effective); err != nil {
			return nil, 0, err
		}
	}
	return hitters, effective, nil
}

// Quantile releases an ε-DP q-quantile via the exponential mechanism
// over the collected samples. The effective amplified budget is charged
// and returned alongside the value.
func (e *Engine) Quantile(q, epsilon float64) (float64, float64, error) {
	snap, err := e.collectedSnapshot()
	if err != nil {
		return 0, 0, err
	}
	effective, err := dp.AmplifyBySampling(epsilon, snap.rate)
	if err != nil {
		return 0, 0, err
	}
	est := quantile.Estimator{P: snap.rate}
	e.releaseMu.Lock()
	defer e.releaseMu.Unlock()
	v, err := est.PrivateQuantile(snap.sets, q, epsilon, e.rng)
	if err != nil {
		return 0, 0, err
	}
	if e.accountant != nil {
		if err := e.accountant.Spend(effective); err != nil {
			return 0, 0, err
		}
	}
	return v, effective, nil
}
