package core

import (
	"fmt"

	"privrange/internal/dp"
	"privrange/internal/histogram"
	"privrange/internal/quantile"
	"privrange/internal/topk"
)

// defaultAggregateRate is the sampling rate auto-collection targets for
// the fixed-ε aggregate releases (histogram, quantile) when no samples
// exist yet. The (α, δ) range-counting path chooses its own rate from
// Theorem 3.3; these aggregates take ε directly, so the engine picks a
// rate that keeps the 1/p sensitivity small.
const defaultAggregateRate = 0.2

// ensureSamples makes sure the base station holds a usable sample,
// collecting at the default aggregate rate when permitted.
func (e *Engine) ensureSamples() (float64, error) {
	rate := e.src.Rate()
	if rate > 0 {
		return rate, nil
	}
	if !e.auto {
		return 0, fmt.Errorf("core: no samples collected yet (auto-collect disabled)")
	}
	if err := e.src.EnsureRate(defaultAggregateRate); err != nil {
		return 0, err
	}
	return e.src.Rate(), nil
}

// Histogram releases an ε-DP band histogram over the given boundaries
// (see internal/histogram: disjoint bands compose in parallel, so the
// whole histogram costs one ε). The effective amplified budget
// ln(1+p(e^ε−1)) is charged to the accountant and returned.
func (e *Engine) Histogram(boundaries []float64, epsilon float64) (*histogram.Histogram, float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rate, err := e.ensureSamples()
	if err != nil {
		return nil, 0, err
	}
	b := histogram.Builder{P: rate}
	effective, err := b.EffectiveEpsilon(epsilon)
	if err != nil {
		return nil, 0, err
	}
	// Compute first, charge second: a failed computation must not burn
	// budget, and an uncharged result is simply not returned.
	h, err := b.Private(e.src.SampleSets(), boundaries, epsilon, e.rng)
	if err != nil {
		return nil, 0, err
	}
	if e.accountant != nil {
		if err := e.accountant.Spend(effective); err != nil {
			return nil, 0, err
		}
	}
	return h, effective, nil
}

// TopK releases the k most frequent readings under ε-DP (peeling
// exponential mechanism plus noisy counts; see internal/topk). The
// effective amplified budget is charged and returned.
func (e *Engine) TopK(k int, epsilon float64) ([]topk.Hitter, float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rate, err := e.ensureSamples()
	if err != nil {
		return nil, 0, err
	}
	effective, err := dp.AmplifyBySampling(epsilon, rate)
	if err != nil {
		return nil, 0, err
	}
	est := topk.Estimator{P: rate}
	hitters, err := est.PrivateTop(e.src.SampleSets(), k, epsilon, e.rng)
	if err != nil {
		return nil, 0, err
	}
	if e.accountant != nil {
		if err := e.accountant.Spend(effective); err != nil {
			return nil, 0, err
		}
	}
	return hitters, effective, nil
}

// Quantile releases an ε-DP q-quantile via the exponential mechanism
// over the collected samples. The effective amplified budget is charged
// and returned alongside the value.
func (e *Engine) Quantile(q, epsilon float64) (float64, float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rate, err := e.ensureSamples()
	if err != nil {
		return 0, 0, err
	}
	effective, err := dp.AmplifyBySampling(epsilon, rate)
	if err != nil {
		return 0, 0, err
	}
	est := quantile.Estimator{P: rate}
	v, err := est.PrivateQuantile(e.src.SampleSets(), q, epsilon, e.rng)
	if err != nil {
		return 0, 0, err
	}
	if e.accountant != nil {
		if err := e.accountant.Spend(effective); err != nil {
			return 0, 0, err
		}
	}
	return v, effective, nil
}
