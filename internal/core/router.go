package core

import (
	"fmt"
	"sync"

	"privrange/internal/estimator"
	"privrange/internal/shard"
	"privrange/internal/telemetry"
)

// ShardedSource is a Source that is actually a fleet of broker shards.
// The engine detects it at snapshot time and routes estimation through
// the scatter-gather path below instead of the single-index kernels;
// everything else — planning, budget accounting, noise, caching — is
// identical, so a sharded deployment still pays exactly one noise draw
// and one accountant charge per released answer.
type ShardedSource interface {
	Source
	// ShardSnapshot returns one atomically consistent cross-shard view:
	// the composed sample sets plus the per-shard estimation views.
	ShardSnapshot() shard.Snapshot
}

// routerMaxScratchFloats caps the rows×m scatter table at 16 MiB, the
// same ceiling the single-index batch kernel applies to its k×m block;
// larger batches are processed in deterministic query blocks.
const routerMaxScratchFloats = 1 << 21

// routerScratchPool recycles scatter tables so steady-state sharded
// batches allocate nothing proportional to rows×m.
var routerScratchPool = sync.Pool{New: func() any { return new([]float64) }}

// rankEstimateSharded fills out[i] with the un-noised RankCounting
// estimate for queries[i] by scatter-gathering across the snapshot's
// shard views: every shard writes its raw per-node terms into a shared
// (rows × m) table at its nodes' global rows, then each query's column
// is reduced in row order. Row order is global node-id order — the
// exact reduction order of the unsharded kernels — so the results are
// bit-identical to a single-broker engine over the same fleet, for any
// shard count and any GOMAXPROCS.
func rankEstimateSharded(snap snapshot, queries []estimator.Query, out []float64) error {
	if len(out) != len(queries) {
		return fmt.Errorf("core: sharded batch out length %d != %d queries", len(out), len(queries))
	}
	rows := len(snap.sets)
	if rows == 0 {
		for i := range out {
			out[i] = 0
		}
		return nil
	}
	rc := estimator.RankCounting{P: snap.rate}
	// Query blocking bounds scratch memory; the block size depends only
	// on the fleet size, never on scheduling, so results stay
	// deterministic.
	block := len(queries)
	if rows*block > routerMaxScratchFloats {
		block = routerMaxScratchFloats / rows
		if block < 1 {
			block = 1
		}
	}
	sp := routerScratchPool.Get().(*[]float64)
	defer routerScratchPool.Put(sp)
	for q0 := 0; q0 < len(queries); q0 += block {
		q1 := q0 + block
		if q1 > len(queries) {
			q1 = len(queries)
		}
		if err := scatterBlock(snap.views, rc, queries[q0:q1], rows, sp, out[q0:q1], snap.spans); err != nil {
			return err
		}
	}
	return nil
}

// scatterBlock evaluates one query block: every shard view scatters its
// per-node terms into the rows×m table concurrently (views own disjoint
// rows, so no locks), then a single pass reduces each query's column in
// row order. spans, when non-nil, records one span per shard (the clock
// reads live inside the telemetry package; a nil group costs two nil
// checks per shard and never perturbs determinism — span emission
// observes the scatter, it does not order it).
func scatterBlock(views []shard.View, rc estimator.RankCounting, queries []estimator.Query, rows int, sp *[]float64, out []float64, spans *telemetry.SpanGroup) error {
	m := len(queries)
	if cap(*sp) < rows*m {
		*sp = make([]float64, rows*m)
	}
	scratch := (*sp)[:rows*m]
	errs := make([]error, len(views))
	active := 0
	for _, v := range views {
		if len(v.Sets) > 0 {
			active++
		}
	}
	scatterView := func(s int) {
		start := spans.StartShard()
		v := views[s]
		if v.Idx != nil {
			errs[s] = rc.EstimateIndexScatter(v.Idx, queries, v.Rows, scratch)
		} else {
			errs[s] = rc.EstimateScatter(v.Sets, queries, v.Rows, scratch)
		}
		spans.EndShard(s, start)
	}
	if active <= 1 {
		for s, v := range views {
			if len(v.Sets) > 0 {
				scatterView(s)
			}
		}
	} else {
		// One goroutine per shard: shards are coarse units (each fans its
		// own tiles out when the work merits it), and S is small.
		var wg sync.WaitGroup
		for s, v := range views {
			if len(v.Sets) == 0 {
				continue
			}
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				scatterView(s)
			}(s)
		}
		wg.Wait()
	}
	// First error by shard order, so error selection is deterministic.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for qi := range queries {
		total := 0.0
		for row := 0; row < rows; row++ {
			total += scratch[row*m+qi]
		}
		out[qi] = total
	}
	return nil
}
