package core

import (
	"math"
	"testing"

	"privrange/internal/estimator"
	"privrange/internal/index"
	"privrange/internal/iot"
	"privrange/internal/sampling"
	"privrange/internal/wire"
)

// noIndexSource strips the columnar index from a network's snapshots,
// forcing the engine onto the SampleSet fallback path — the correctness
// oracle the flat hot path must match bit-for-bit.
type noIndexSource struct{ *iot.Network }

func (s *noIndexSource) Snapshot() (sets []*sampling.SampleSet, idx *index.Index, rate float64, nodes, n int, version uint64, coverage float64) {
	sets, _, rate, nodes, n, version, coverage = s.Network.Snapshot()
	return sets, nil, rate, nodes, n, version, coverage
}

// TestAnswersBitIdenticalWithAndWithoutIndex proves the engine releases
// the exact same values whether estimation runs over the columnar index
// or over the raw sample sets: identical seeds, identical deployments,
// one engine denied the index.
func TestAnswersBitIdenticalWithAndWithoutIndex(t *testing.T) {
	t.Parallel()
	build := func(strip bool) *Engine {
		nw, _ := buildNetwork(t, 48, 40000, 7)
		src := Source(nw)
		if strip {
			src = &noIndexSource{Network: nw}
		}
		eng, err := New(src, WithSeed(41))
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	flat, oracle := build(false), build(true)
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	queries := make([]estimator.Query, 40)
	for i := range queries {
		queries[i] = estimator.Query{L: float64(3 * i), U: float64(3*i + 50)}
	}
	fb, err := flat.AnswerBatch(queries, acc)
	if err != nil {
		t.Fatal(err)
	}
	// The flat engine must actually have an index to make this test
	// meaningful: the warm-up collection inside AnswerBatch builds it.
	if snap := flat.readSnapshot(); snap.idx == nil {
		t.Fatal("flat engine snapshot carries no index after collection")
	} else if snap.idx.Nodes() != snap.nodes {
		t.Fatalf("index covers %d nodes, snapshot has %d", snap.idx.Nodes(), snap.nodes)
	}
	ob, err := oracle.AnswerBatch(queries, acc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if math.Float64bits(fb[i].Value) != math.Float64bits(ob[i].Value) {
			t.Fatalf("batch query %d: flat %v != oracle %v", i, fb[i].Value, ob[i].Value)
		}
	}
	for _, q := range queries[:8] {
		fa, err := flat.Answer(q, acc)
		if err != nil {
			t.Fatal(err)
		}
		oa, err := oracle.Answer(q, acc)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(fa.Value) != math.Float64bits(oa.Value) {
			t.Fatalf("query %v: flat %v != oracle %v", q, fa.Value, oa.Value)
		}
		fe, err := flat.EstimateOnly(q)
		if err != nil {
			t.Fatal(err)
		}
		oe, err := oracle.EstimateOnly(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(fe) != math.Float64bits(oe) {
			t.Fatalf("EstimateOnly %v: flat %v != oracle %v", q, fe, oe)
		}
	}
}

// TestIndexInvalidatedByDirectBaseMutation pins the staleness guard:
// sample state rewritten behind the network's index rebuild (the Base()
// footgun) must yield an index-less snapshot, not a stale index.
func TestIndexInvalidatedByDirectBaseMutation(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 4, 2000, 13)
	eng, err := New(nw, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Answer(estimator.Query{L: 0, U: 50}, estimator.Accuracy{Alpha: 0.1, Delta: 0.5}); err != nil {
		t.Fatal(err)
	}
	if snap := eng.readSnapshot(); snap.idx == nil {
		t.Fatal("expected a fresh index after collection")
	}
	// Rewrite node 0's stored sample directly: the version moves, the
	// index must drop out of snapshots until the next collection round.
	sets := nw.SampleSets()
	rep := &wire.SampleReport{NodeID: 0, N: sets[0].N, Replace: true, Samples: sets[0].Samples}
	if err := nw.Base().HandleReport(rep); err != nil {
		t.Fatal(err)
	}
	if snap := eng.readSnapshot(); snap.idx != nil {
		t.Error("stale index served after direct base-station mutation")
	}
	// The next collection round rebuilds it.
	if _, err := nw.EnsureRate(nw.Rate()); err != nil {
		t.Fatal(err)
	}
	if snap := eng.readSnapshot(); snap.idx == nil {
		t.Error("index not rebuilt by the next collection round")
	}
}
