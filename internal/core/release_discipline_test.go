package core

import (
	"math"
	"strings"
	"testing"

	"privrange/internal/dp"
	"privrange/internal/estimator"
	"privrange/internal/index"
	"privrange/internal/iot"
	"privrange/internal/sampling"
)

// faultySource wraps a real network but lets a test sabotage the next
// snapshot: when failNext is set, the served sample-set slice carries a
// nil entry, which makes estimation (not planning) fail after the plan
// has already been solved — exactly the window where the old batch path
// had charged the budget and burned a noise key before knowing the
// batch could not be released.
type faultySource struct {
	*iot.Network
	failNext bool
}

func (f *faultySource) Snapshot() (sets []*sampling.SampleSet, idx *index.Index, rate float64, nodes, n int, version uint64, coverage float64) {
	sets, idx, rate, nodes, n, version, coverage = f.Network.Snapshot()
	if f.failNext {
		f.failNext = false
		broken := make([]*sampling.SampleSet, len(sets))
		copy(broken, sets)
		broken[len(broken)/2] = nil
		// No index: force the per-set estimation path so the nil set is hit.
		return broken, nil, rate, nodes, n, version, coverage
	}
	return sets, idx, rate, nodes, n, version, coverage
}

// TestBatchFailureSpendsNothing is the regression test for the batch
// release-path bug: a batch whose estimation fails must spend zero
// budget and leave the noise stream unadvanced, so the next released
// answers are bit-identical to those of an engine that never saw the
// failure.
func TestBatchFailureSpendsNothing(t *testing.T) {
	t.Parallel()
	queries := []estimator.Query{{L: 40, U: 120}, {L: 0, U: 60}, {L: 90, U: 91}}
	acc := estimator.Accuracy{Alpha: 0.05, Delta: 0.7}

	build := func(seed int64) (*Engine, *faultySource, *dp.Accountant) {
		nw, _ := buildNetwork(t, 10, 4000, seed)
		src := &faultySource{Network: nw}
		accountant, err := dp.NewAccountant(0)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(src, WithSeed(99), WithAccountant(accountant))
		if err != nil {
			t.Fatal(err)
		}
		return eng, src, accountant
	}

	// Oracle: same deployment and seed, no injected failure.
	oracle, _, oracleAcc := build(3)
	oracleOut, err := oracle.AnswerBatch(queries, acc)
	if err != nil {
		t.Fatal(err)
	}

	eng, src, accountant := build(3)
	// Warm the rate so the failing call reaches estimation with the same
	// collection state the oracle's first batch established.
	if _, err := eng.AnswerBatch(queries, acc); err != nil {
		t.Fatal(err)
	}
	spentBefore := accountant.Spent()
	queriesBefore := accountant.Queries()

	src.failNext = true
	if _, err := eng.AnswerBatch(queries, acc); err == nil {
		t.Fatal("sabotaged batch did not fail")
	}
	if got := accountant.Spent(); got != spentBefore {
		t.Errorf("failed batch moved spent budget: %v -> %v", spentBefore, got)
	}
	if got := accountant.Queries(); got != queriesBefore {
		t.Errorf("failed batch moved release count: %d -> %d", queriesBefore, got)
	}

	// The noise stream must be unadvanced: the second successful batch
	// must release exactly what the oracle's second batch releases.
	oracleOut2, err := oracle.AnswerBatch(queries, acc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.AnswerBatch(queries, acc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Float64bits(got[i].Value) != math.Float64bits(oracleOut2[i].Value) {
			t.Errorf("query %d: post-failure value %v != oracle %v (noise stream advanced on failure)",
				i, got[i].Value, oracleOut2[i].Value)
		}
	}
	if accountant.Spent() != oracleAcc.Spent() {
		t.Errorf("spent budget %v != oracle %v", accountant.Spent(), oracleAcc.Spent())
	}
	_ = oracleOut
}

// TestInvalidQueryMatrix pins that all three entry points reject
// malformed queries up front — before any planning, collection, budget
// or RNG movement.
func TestInvalidQueryMatrix(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 6, 2000, 8)
	accountant, err := dp.NewAccountant(0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithSeed(5), WithAccountant(accountant))
	if err != nil {
		t.Fatal(err)
	}
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.7}
	nan := math.NaN()
	bad := []struct {
		name string
		q    estimator.Query
	}{
		{"NaN lower", estimator.Query{L: nan, U: 10}},
		{"NaN upper", estimator.Query{L: 0, U: nan}},
		{"both NaN", estimator.Query{L: nan, U: nan}},
		{"inverted", estimator.Query{L: 10, U: 0}},
	}
	entry := []struct {
		name string
		call func(q estimator.Query) error
	}{
		{"Answer", func(q estimator.Query) error {
			_, err := eng.Answer(q, acc)
			return err
		}},
		{"AnswerBatch", func(q estimator.Query) error {
			_, err := eng.AnswerBatch([]estimator.Query{{L: 0, U: 1}, q}, acc)
			return err
		}},
		{"EstimateOnly", func(q estimator.Query) error {
			_, err := eng.EstimateOnly(q)
			return err
		}},
	}
	for _, e := range entry {
		for _, b := range bad {
			err := e.call(b.q)
			if err == nil {
				t.Errorf("%s/%s: accepted invalid query", e.name, b.name)
				continue
			}
			// The rejection must be the validation error, not a downstream
			// failure (e.g. "no samples collected yet" from a path that
			// only stumbled over the bad query later, or not at all).
			if !strings.Contains(err.Error(), "NaN") && !strings.Contains(err.Error(), "L > U") {
				t.Errorf("%s/%s: rejected with %v, want a query-validation error", e.name, b.name, err)
			}
		}
	}
	if got := accountant.Spent(); got != 0 {
		t.Errorf("invalid queries spent budget: %v", got)
	}
	if got := accountant.Queries(); got != 0 {
		t.Errorf("invalid queries released answers: %d", got)
	}
}

// TestCacheReturnsCopies pins that the answer cache is mutation-proof:
// a caller scribbling on a returned answer must not corrupt what later
// identical requests are served.
func TestCacheReturnsCopies(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 6, 2000, 4)
	eng, err := New(nw, WithSeed(11), WithAnswerCache(true))
	if err != nil {
		t.Fatal(err)
	}
	q := estimator.Query{L: 40, U: 120}
	acc := estimator.Accuracy{Alpha: 0.05, Delta: 0.7}
	first, err := eng.Answer(q, acc)
	if err != nil {
		t.Fatal(err)
	}
	want := first.Value
	first.Value = -1e18 // caller mutates the answer it was handed
	first.Plan.EpsilonPrime = 0

	second, err := eng.Answer(q, acc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(second.Value) != math.Float64bits(want) {
		t.Fatalf("cache hit served mutated value %v, want %v", second.Value, want)
	}
	if second.Plan.EpsilonPrime == 0 {
		t.Fatal("cache hit served mutated plan")
	}
	// Mutating the hit must not corrupt the next hit either.
	second.Value = 12345
	third, err := eng.Answer(q, acc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(third.Value) != math.Float64bits(want) {
		t.Fatalf("second cache hit served %v, want %v", third.Value, want)
	}
}
