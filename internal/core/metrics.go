package core

import (
	"privrange/internal/telemetry"
)

// Trace outcome tags released by the engine. All are compile-time
// constants: the telemetrytaint analyzer forbids data-derived strings
// in telemetry positions.
const (
	outcomeOK       = "ok"
	outcomeDegraded = "degraded"
	outcomeCacheHit = "cache_hit"
	outcomeInvalid  = "invalid"
	outcomeError    = "error"
)

// Metrics is the engine's telemetry: per-query latency and outcome
// counters, cache effectiveness, the batch estimation path taken, and
// a ring of recent query traces. Everything recorded is released or
// deployment-level state (latencies, outcome tags, coverage-derived
// flags) — never raw estimates, sample values or query ranges. A nil
// *Metrics records nothing, so instrumented paths need no conditionals.
type Metrics struct {
	queriesOK       *telemetry.Counter
	queriesDegraded *telemetry.Counter
	queriesCached   *telemetry.Counter
	queriesInvalid  *telemetry.Counter
	queriesError    *telemetry.Counter

	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter

	batchesIndex      *telemetry.Counter
	batchesSequential *telemetry.Counter
	batchQueries      *telemetry.Counter

	latency      *telemetry.Histogram
	batchLatency *telemetry.Histogram

	tracer *telemetry.Tracer
	// spans is the registry's distributed span buffer: engine traces
	// begun under a sampled context emit their phases there.
	spans *telemetry.SpanBuf
}

// NewMetrics registers the engine's metric catalog on r, tagging every
// series with the given static labels (typically the dataset name).
func NewMetrics(r *telemetry.Registry, labels ...telemetry.Label) *Metrics {
	outcome := func(tag string) []telemetry.Label {
		return append([]telemetry.Label{telemetry.L("outcome", tag)}, labels...)
	}
	const qHelp = "queries answered, by outcome"
	return &Metrics{
		queriesOK:       r.Counter("privrange_core_queries_total", qHelp, outcome(outcomeOK)...),
		queriesDegraded: r.Counter("privrange_core_queries_total", qHelp, outcome(outcomeDegraded)...),
		queriesCached:   r.Counter("privrange_core_queries_total", qHelp, outcome(outcomeCacheHit)...),
		queriesInvalid:  r.Counter("privrange_core_queries_total", qHelp, outcome(outcomeInvalid)...),
		queriesError:    r.Counter("privrange_core_queries_total", qHelp, outcome(outcomeError)...),

		cacheHits:   r.Counter("privrange_core_cache_hits_total", "answers served from the released-answer cache", labels...),
		cacheMisses: r.Counter("privrange_core_cache_misses_total", "cache lookups that fell through to the pipeline", labels...),

		batchesIndex:      r.Counter("privrange_core_batches_total", "batches answered, by estimation path", append([]telemetry.Label{telemetry.L("path", "index_tiled")}, labels...)...),
		batchesSequential: r.Counter("privrange_core_batches_total", "batches answered, by estimation path", append([]telemetry.Label{telemetry.L("path", "sampleset")}, labels...)...),
		batchQueries:      r.Counter("privrange_core_batch_queries_total", "queries answered through AnswerBatch", labels...),

		latency:      r.Histogram("privrange_core_query_seconds", "end-to-end Answer latency", telemetry.LatencyBuckets, labels...),
		batchLatency: r.Histogram("privrange_core_batch_seconds", "end-to-end AnswerBatch latency", telemetry.LatencyBuckets, labels...),

		tracer: r.Tracer(),
		spans:  r.Spans(),
	}
}

// begin starts a query trace when metrics are attached. When they are
// not, the trace stays inert and every later Mark/End no-ops, so the
// uninstrumented hot path costs two branches.
func (m *Metrics) begin(tr *telemetry.Trace, op string) {
	if m == nil {
		return
	}
	tr.Begin(op)
}

// beginCtx starts a query trace joined to the caller's distributed
// trace context (the market's handler span); unsampled contexts
// degrade to a plain begin.
func (m *Metrics) beginCtx(tr *telemetry.Trace, op string, parent telemetry.SpanContext) {
	if m == nil {
		return
	}
	tr.BeginCtx(op, parent, m.spans)
}

// spanGroup returns the per-shard scatter span group for a sampled
// trace, nil otherwise — and a nil group is inert, so the scatter path
// passes it along unconditionally.
func (m *Metrics) spanGroup(tr *telemetry.Trace) *telemetry.SpanGroup {
	if m == nil {
		return nil
	}
	return m.spans.NewSpanGroup("core.shard_scatter", "", tr.SpanCtx())
}

// noteCacheLookup records one answer-cache probe.
func (m *Metrics) noteCacheLookup(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.cacheHits.Inc()
	} else {
		m.cacheMisses.Inc()
	}
}

// finishQuery closes one Answer trace: tags the outcome, observes the
// latency, bumps the outcome counter and records the trace.
func (m *Metrics) finishQuery(tr *telemetry.Trace, outcome string) {
	if m == nil {
		return
	}
	tr.End(outcome)
	m.latency.Observe(tr.Total.Seconds())
	m.counterFor(outcome).Inc()
	m.tracer.Record(tr)
}

// finishBatch closes one AnswerBatch trace. indexed reports which
// estimation path served the batch; n is the batch size (zero when the
// batch failed before estimating).
func (m *Metrics) finishBatch(tr *telemetry.Trace, outcome string, indexed bool, n int) {
	if m == nil {
		return
	}
	tr.End(outcome)
	m.batchLatency.Observe(tr.Total.Seconds())
	if outcome == outcomeOK || outcome == outcomeDegraded {
		if indexed {
			m.batchesIndex.Inc()
		} else {
			m.batchesSequential.Inc()
		}
		m.batchQueries.Add(uint64(n))
	}
	m.counterFor(outcome).Inc()
	m.tracer.Record(tr)
}

func (m *Metrics) counterFor(outcome string) *telemetry.Counter {
	switch outcome {
	case outcomeOK:
		return m.queriesOK
	case outcomeDegraded:
		return m.queriesDegraded
	case outcomeCacheHit:
		return m.queriesCached
	case outcomeInvalid:
		return m.queriesInvalid
	default:
		return m.queriesError
	}
}
