package core

import (
	"fmt"

	"privrange/internal/dp"
	"privrange/internal/estimator"
	"privrange/internal/stats"
	"privrange/internal/telemetry"
)

// AnswerBatch serves many range queries at one shared accuracy level.
// The optimization problem depends only on (α, δ) and the deployment
// state, so the plan is solved once and reused; each released answer
// still carries fresh independent noise and spends its own ε′ (m
// releases compose sequentially — the total m·ε′ is charged up front,
// all-or-nothing). The answer cache is bypassed: batch semantics promise
// independent noise per query.
//
// Estimation runs through the snapshot's columnar index when one is
// available: the whole batch is evaluated by the tiled flat-index
// kernel (node-chunk × query-chunk work units over the worker pool,
// pooled scratch, index-order reduction), so per-query cost is a pair
// of branch-light binary searches per node and the batch allocates a
// small constant amount regardless of deployment size. Without an index
// the per-query SampleSet path fans out instead — same values either
// way.
//
// One draw from the engine's seeded RNG keys the batch; query i
// perturbs with the independent stream (batchKey, i) (one scratch RNG
// reseeded per query — bit-identical to allocating per-query streams),
// so the noise is fresh per batch yet the released values are
// bit-identical for a fixed seed and call sequence regardless of
// GOMAXPROCS or scheduling.
func (e *Engine) AnswerBatch(queries []estimator.Query, acc estimator.Accuracy) ([]*Answer, error) {
	m := e.tele.Load()
	var tr telemetry.Trace
	m.begin(&tr, "core.answer_batch")
	out, outcome, indexed, err := e.answerBatch(queries, acc, &tr)
	m.finishBatch(&tr, outcome, indexed, len(out))
	return out, err
}

// answerBatch is the pipeline behind AnswerBatch; the wrapper owns the
// stack-held trace and closes it with the reported outcome and
// estimation path.
func (e *Engine) answerBatch(queries []estimator.Query, acc estimator.Accuracy, tr *telemetry.Trace) (out []*Answer, outcome string, indexed bool, err error) {
	if len(queries) == 0 {
		return nil, outcomeInvalid, false, fmt.Errorf("core: empty batch")
	}
	for i, q := range queries {
		if err := q.Validate(); err != nil {
			return nil, outcomeInvalid, false, fmt.Errorf("core: batch query %d: %w", i, err)
		}
	}
	snap := e.readSnapshot()
	tr.Mark("sample_lookup")
	plan, snap, err := e.planFor(acc, snap)
	tr.Mark("optimize")
	if err != nil {
		return nil, outcomeError, false, err
	}
	indexed = snap.idx != nil
	mech, err := dp.NewMechanism(plan.Epsilon, plan.Sensitivity)
	if err != nil {
		return nil, outcomeError, indexed, err
	}
	// Estimate first, commit second: the batch must not spend budget or
	// advance the noise stream until it can no longer fail. Charging
	// before estimation would burn m·ε′ (and a noise key) on a batch the
	// caller never received — and shift every later answer's noise.
	raws := make([]float64, len(queries))
	if err := rankEstimateBatch(snap, queries, raws); err != nil {
		return nil, outcomeError, indexed, err
	}
	tr.Mark("estimate")
	e.releaseMu.Lock()
	if e.accountant != nil {
		if err := e.accountant.Spend(plan.EpsilonPrime * float64(len(queries))); err != nil {
			e.releaseMu.Unlock()
			return nil, outcomeError, indexed, err
		}
	}
	batchKey := e.rng.Int63()
	e.releaseMu.Unlock()
	// Perturbation is cheap relative to estimation, so it stays on the
	// calling goroutine: one backing array for all answers, one scratch
	// RNG reseeded to stream (batchKey, i) per query.
	answers := make([]Answer, len(queries))
	out = make([]*Answer, len(queries))
	noise := stats.NewStream(batchKey, 0)
	for i := range queries {
		noise.Reseed(batchKey, int64(i))
		answers[i] = Answer{
			Query:             queries[i],
			Accuracy:          acc,
			Value:             mech.Perturb(raws[i], noise),
			Plan:              plan,
			Rate:              snap.rate,
			Nodes:             snap.nodes,
			N:                 snap.n,
			Coverage:          snap.coverage,
			CollectionVersion: snap.version,
		}
		out[i] = &answers[i]
	}
	tr.Mark("perturb")
	if snap.coverage < 1 {
		return out, outcomeDegraded, indexed, nil
	}
	return out, outcomeOK, indexed, nil
}
