package core

import (
	"fmt"

	"privrange/internal/dp"
	"privrange/internal/estimator"
)

// AnswerBatch serves many range queries at one shared accuracy level.
// The optimization problem depends only on (α, δ) and the deployment
// state, so the plan is solved once and reused; each released answer
// still carries fresh independent noise and spends its own ε′ (m
// releases compose sequentially — the total m·ε′ is charged up front,
// all-or-nothing). The answer cache is bypassed: batch semantics promise
// independent noise per query.
func (e *Engine) AnswerBatch(queries []estimator.Query, acc estimator.Accuracy) ([]*Answer, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	for i, q := range queries {
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("core: batch query %d: %w", i, err)
		}
	}
	plan, err := e.plan(acc)
	if err != nil {
		return nil, err
	}
	mech, err := dp.NewMechanism(plan.Epsilon, plan.Sensitivity)
	if err != nil {
		return nil, err
	}
	if e.accountant != nil {
		if err := e.accountant.Spend(plan.EpsilonPrime * float64(len(queries))); err != nil {
			return nil, err
		}
	}
	rate := e.src.Rate()
	rc := estimator.RankCounting{P: rate}
	sets := e.src.SampleSets()
	out := make([]*Answer, len(queries))
	for i, q := range queries {
		raw, err := rc.Estimate(sets, q)
		if err != nil {
			return nil, err
		}
		out[i] = &Answer{
			Query:    q,
			Accuracy: acc,
			Value:    mech.Perturb(raw, e.rng),
			Plan:     plan,
			Rate:     rate,
			Nodes:    e.src.NumNodes(),
			N:        e.src.TotalN(),
		}
	}
	return out, nil
}
