package core

import (
	"fmt"

	"privrange/internal/dp"
	"privrange/internal/estimator"
	"privrange/internal/stats"
)

// AnswerBatch serves many range queries at one shared accuracy level.
// The optimization problem depends only on (α, δ) and the deployment
// state, so the plan is solved once and reused; each released answer
// still carries fresh independent noise and spends its own ε′ (m
// releases compose sequentially — the total m·ε′ is charged up front,
// all-or-nothing). The answer cache is bypassed: batch semantics promise
// independent noise per query.
//
// Per-query estimation and perturbation fan out across a bounded worker
// pool. One draw from the engine's seeded RNG keys the batch; query i
// perturbs with the independent split stream (batchKey, i), so the noise
// is fresh per batch yet the released values are bit-identical for a
// fixed seed and call sequence regardless of GOMAXPROCS or scheduling.
func (e *Engine) AnswerBatch(queries []estimator.Query, acc estimator.Accuracy) ([]*Answer, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	for i, q := range queries {
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("core: batch query %d: %w", i, err)
		}
	}
	plan, snap, err := e.planFor(acc, e.readSnapshot())
	if err != nil {
		return nil, err
	}
	mech, err := dp.NewMechanism(plan.Epsilon, plan.Sensitivity)
	if err != nil {
		return nil, err
	}
	e.releaseMu.Lock()
	if e.accountant != nil {
		if err := e.accountant.Spend(plan.EpsilonPrime * float64(len(queries))); err != nil {
			e.releaseMu.Unlock()
			return nil, err
		}
	}
	batchKey := e.rng.Int63()
	e.releaseMu.Unlock()
	rc := estimator.RankCounting{P: snap.rate}
	out := make([]*Answer, len(queries))
	if err := forEach(len(queries), func(i int) error {
		raw, err := rc.Estimate(snap.sets, queries[i])
		if err != nil {
			return err
		}
		out[i] = &Answer{
			Query:             queries[i],
			Accuracy:          acc,
			Value:             mech.Perturb(raw, stats.NewStream(batchKey, int64(i))),
			Plan:              plan,
			Rate:              snap.rate,
			Nodes:             snap.nodes,
			N:                 snap.n,
			Coverage:          snap.coverage,
			CollectionVersion: snap.version,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
