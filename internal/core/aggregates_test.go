package core

import (
	"math"
	"testing"

	"privrange/internal/dp"
	"privrange/internal/estimator"
)

var aqiBands = []float64{0, 50, 100, 150, 300}

func TestEngineHistogram(t *testing.T) {
	t.Parallel()
	nw, series := buildNetwork(t, 8, 0, 51)
	acct, err := dp.NewAccountant(0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithSeed(3), WithAccountant(acct))
	if err != nil {
		t.Fatal(err)
	}
	h, effective, err := eng.Histogram(aqiBands, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 4 {
		t.Fatalf("buckets = %d", h.Buckets())
	}
	if effective <= 0 || effective >= 1 {
		t.Errorf("effective epsilon %v should be amplified into (0, 1)", effective)
	}
	if got := acct.Spent(); math.Abs(got-effective) > 1e-12 {
		t.Errorf("accountant spent %v, want %v", got, effective)
	}
	// Histogram total should be near |D| (noise is small at eps=1).
	if math.Abs(h.Total()-float64(series.Len())) > 0.05*float64(series.Len()) {
		t.Errorf("total %v far from n=%d", h.Total(), series.Len())
	}
	if nw.Rate() != defaultAggregateRate {
		t.Errorf("auto-collection should use the default aggregate rate, got %v", nw.Rate())
	}
}

func TestEngineHistogramFailuresDoNotSpend(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 4, 4000, 53)
	acct, err := dp.NewAccountant(0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithAccountant(acct))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Histogram([]float64{5, 1}, 1.0); err == nil {
		t.Fatal("unsorted boundaries should fail")
	}
	if _, _, err := eng.Histogram(aqiBands, 0); err == nil {
		t.Fatal("epsilon=0 should fail")
	}
	if _, _, err := eng.Histogram(aqiBands, -1); err == nil {
		t.Fatal("negative epsilon should fail")
	}
	if acct.Spent() != 0 {
		t.Errorf("failed releases must not spend budget, spent %v", acct.Spent())
	}
}

func TestEngineQuantile(t *testing.T) {
	t.Parallel()
	nw, series := buildNetwork(t, 8, 0, 55)
	acct, err := dp.NewAccountant(0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithSeed(7), WithAccountant(acct))
	if err != nil {
		t.Fatal(err)
	}
	v, effective, err := eng.Quantile(0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if effective <= 0 {
		t.Errorf("effective epsilon %v", effective)
	}
	if got := acct.Spent(); math.Abs(got-effective) > 1e-12 {
		t.Errorf("accountant spent %v, want %v", got, effective)
	}
	// The released value's true rank must be within 5% of n of the
	// median.
	rank := 0
	for _, x := range series.Values {
		if x <= v {
			rank++
		}
	}
	n := float64(series.Len())
	if math.Abs(float64(rank)-0.5*n) > 0.05*n {
		t.Errorf("released median %v has rank %d, want ~%v", v, rank, 0.5*n)
	}
}

func TestEngineQuantileValidation(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 4, 4000, 57)
	acct, err := dp.NewAccountant(0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithAccountant(acct))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Quantile(0, 1); err == nil {
		t.Error("q=0 should fail")
	}
	if _, _, err := eng.Quantile(0.5, -1); err == nil {
		t.Error("negative epsilon should fail")
	}
	if acct.Spent() != 0 {
		t.Errorf("failed releases must not spend budget, spent %v", acct.Spent())
	}
}

func TestAggregatesWithoutAutoCollect(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 4, 4000, 59)
	eng, err := New(nw, WithAutoCollect(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Histogram(aqiBands, 1); err == nil {
		t.Error("histogram without samples and auto-collect should fail")
	}
	if _, _, err := eng.Quantile(0.5, 1); err == nil {
		t.Error("quantile without samples and auto-collect should fail")
	}
	// After manual collection both work.
	if _, err := nw.EnsureRate(0.3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Histogram(aqiBands, 1); err != nil {
		t.Errorf("histogram after manual collection: %v", err)
	}
	if _, _, err := eng.Quantile(0.5, 1); err != nil {
		t.Errorf("quantile after manual collection: %v", err)
	}
}

func TestAggregatesShareBudgetWithCounts(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 4, 8000, 61)
	acct, err := dp.NewAccountant(0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithAccountant(acct), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Answer(estimator.Query{L: 20, U: 80}, estimator.Accuracy{Alpha: 0.1, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	_, histEps, err := eng.Histogram(aqiBands, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, quantEps, err := eng.Quantile(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := ans.Plan.EpsilonPrime + histEps + quantEps
	if got := acct.Spent(); math.Abs(got-want) > 1e-12 {
		t.Errorf("spent %v, want sum of all releases %v", got, want)
	}
}

func TestEngineTopK(t *testing.T) {
	t.Parallel()
	nw, series := buildNetwork(t, 6, 0, 95)
	acct, err := dp.NewAccountant(0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithSeed(13), WithAccountant(acct))
	if err != nil {
		t.Fatal(err)
	}
	hitters, effective, err := eng.TopK(5, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hitters) != 5 {
		t.Fatalf("hitters = %+v", hitters)
	}
	if effective <= 0 || acct.Spent() != effective {
		t.Errorf("budget accounting wrong: eff=%v spent=%v", effective, acct.Spent())
	}
	// Each reported value should actually be a frequent reading: its true
	// frequency within 6 sigma of the reported (noisy) count.
	for _, h := range hitters {
		truth, err := series.RangeCount(h.Value, h.Value)
		if err != nil {
			t.Fatal(err)
		}
		if truth == 0 {
			t.Errorf("reported hitter %v does not exist in the data", h.Value)
		}
	}
	if _, _, err := eng.TopK(0, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := eng.TopK(3, -1); err == nil {
		t.Error("negative epsilon should fail")
	}
}
