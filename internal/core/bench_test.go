package core

import (
	"testing"

	"privrange/internal/estimator"
	"privrange/internal/telemetry"
)

// BenchmarkAnswerBatchParallel measures the broker's batch hot path —
// one shared plan, per-query estimation and noise fanned out across the
// worker pool — over a 64-node deployment answering 64 queries per
// batch. Compare against BenchmarkAnswerBatchSequentialQueries (the same
// work answered one Answer call at a time) for the concurrency win.
func BenchmarkAnswerBatchParallel(b *testing.B) {
	nw, _ := buildNetwork(b, 64, 262144, 3)
	eng, err := New(nw, WithSeed(3))
	if err != nil {
		b.Fatal(err)
	}
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	queries := make([]estimator.Query, 64)
	for i := range queries {
		queries[i] = estimator.Query{L: float64(2 * i), U: float64(2*i + 120)}
	}
	// Warm up: collect once so the loop measures answering, not sampling.
	if _, err := eng.AnswerBatch(queries[:1], acc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.AnswerBatch(queries, acc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnswerBatchSequentialQueries answers the same 64 queries as
// individual Answer calls — the pre-batching, fully serialized baseline.
func BenchmarkAnswerBatchSequentialQueries(b *testing.B) {
	nw, _ := buildNetwork(b, 64, 262144, 3)
	eng, err := New(nw, WithSeed(3))
	if err != nil {
		b.Fatal(err)
	}
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	queries := make([]estimator.Query, 64)
	for i := range queries {
		queries[i] = estimator.Query{L: float64(2 * i), U: float64(2*i + 120)}
	}
	if _, err := eng.Answer(queries[0], acc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := eng.Answer(q, acc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAnswerBatchParallelTelemetry is BenchmarkAnswerBatchParallel
// with a live metrics registry attached — the number to compare against
// the plain benchmark when judging instrumentation cost. The telemetry
// contract is ≤3% ns/op overhead and +0 allocs/op: traces live on the
// stack, the tracer ring copies by value, and every counter and
// histogram update is a lock-free atomic.
func BenchmarkAnswerBatchParallelTelemetry(b *testing.B) {
	nw, _ := buildNetwork(b, 64, 262144, 3)
	eng, err := New(nw, WithSeed(3))
	if err != nil {
		b.Fatal(err)
	}
	eng.SetTelemetry(NewMetrics(telemetry.NewRegistry()))
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	queries := make([]estimator.Query, 64)
	for i := range queries {
		queries[i] = estimator.Query{L: float64(2 * i), U: float64(2*i + 120)}
	}
	if _, err := eng.AnswerBatch(queries[:1], acc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.AnswerBatch(queries, acc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnswerBatchSerialTelemetry is the coalesced serving path's
// engine call (one shared plan, queries answered in order on one
// goroutine) with a live registry and tracing off — the baseline the
// traced benchmark below is compared against.
func BenchmarkAnswerBatchSerialTelemetry(b *testing.B) {
	benchAnswerBatchSerial(b, 0)
}

// BenchmarkAnswerBatchSerialTraced is the same path with distributed
// tracing sampled 1-in-64 — the production sampling rate. The tracing
// contract is ≤2% ns/op over the telemetry baseline and +0 allocs/op:
// unsampled calls cost one atomic counter increment and a handful of
// nil checks, and sampled spans go to the lock-free ring without
// allocating.
func BenchmarkAnswerBatchSerialTraced(b *testing.B) {
	benchAnswerBatchSerial(b, 64)
}

func benchAnswerBatchSerial(b *testing.B, sampleN int) {
	nw, _ := buildNetwork(b, 64, 262144, 3)
	eng, err := New(nw, WithSeed(3))
	if err != nil {
		b.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	eng.SetTelemetry(NewMetrics(reg))
	spans := reg.Spans()
	sampler := telemetry.NewSampler(sampleN)
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	queries := make([]estimator.Query, 64)
	for i := range queries {
		queries[i] = estimator.Query{L: float64(2 * i), U: float64(2*i + 120)}
	}
	if _, err := eng.AnswerBatchSerial(queries[:1], acc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sc telemetry.SpanContext
		if sampler.Sample() {
			sc = spans.NewRoot()
		}
		if _, err := eng.AnswerBatchSerialCtx(queries, acc, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnswerTraced is BenchmarkAnswerTelemetry with 1-in-64
// distributed tracing — the single-buy hot path under production
// sampling.
func BenchmarkAnswerTraced(b *testing.B) {
	nw, _ := buildNetwork(b, 64, 262144, 3)
	eng, err := New(nw, WithSeed(3))
	if err != nil {
		b.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	eng.SetTelemetry(NewMetrics(reg))
	spans := reg.Spans()
	sampler := telemetry.NewSampler(64)
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	q := estimator.Query{L: 10, U: 130}
	if _, err := eng.Answer(q, acc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sc telemetry.SpanContext
		if sampler.Sample() {
			sc = spans.NewRoot()
		}
		if _, err := eng.AnswerCtx(q, acc, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnswerTelemetry measures the single-query path with metrics
// live: one full trace (sample_lookup, optimize, estimate, perturb),
// latency histogram observation and outcome counter per op.
func BenchmarkAnswerTelemetry(b *testing.B) {
	nw, _ := buildNetwork(b, 64, 262144, 3)
	eng, err := New(nw, WithSeed(3))
	if err != nil {
		b.Fatal(err)
	}
	eng.SetTelemetry(NewMetrics(telemetry.NewRegistry()))
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	q := estimator.Query{L: 10, U: 130}
	if _, err := eng.Answer(q, acc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Answer(q, acc); err != nil {
			b.Fatal(err)
		}
	}
}
