package core

import (
	"testing"

	"privrange/internal/estimator"
	"privrange/internal/telemetry"
)

// BenchmarkAnswerBatchParallel measures the broker's batch hot path —
// one shared plan, per-query estimation and noise fanned out across the
// worker pool — over a 64-node deployment answering 64 queries per
// batch. Compare against BenchmarkAnswerBatchSequentialQueries (the same
// work answered one Answer call at a time) for the concurrency win.
func BenchmarkAnswerBatchParallel(b *testing.B) {
	nw, _ := buildNetwork(b, 64, 262144, 3)
	eng, err := New(nw, WithSeed(3))
	if err != nil {
		b.Fatal(err)
	}
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	queries := make([]estimator.Query, 64)
	for i := range queries {
		queries[i] = estimator.Query{L: float64(2 * i), U: float64(2*i + 120)}
	}
	// Warm up: collect once so the loop measures answering, not sampling.
	if _, err := eng.AnswerBatch(queries[:1], acc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.AnswerBatch(queries, acc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnswerBatchSequentialQueries answers the same 64 queries as
// individual Answer calls — the pre-batching, fully serialized baseline.
func BenchmarkAnswerBatchSequentialQueries(b *testing.B) {
	nw, _ := buildNetwork(b, 64, 262144, 3)
	eng, err := New(nw, WithSeed(3))
	if err != nil {
		b.Fatal(err)
	}
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	queries := make([]estimator.Query, 64)
	for i := range queries {
		queries[i] = estimator.Query{L: float64(2 * i), U: float64(2*i + 120)}
	}
	if _, err := eng.Answer(queries[0], acc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := eng.Answer(q, acc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAnswerBatchParallelTelemetry is BenchmarkAnswerBatchParallel
// with a live metrics registry attached — the number to compare against
// the plain benchmark when judging instrumentation cost. The telemetry
// contract is ≤3% ns/op overhead and +0 allocs/op: traces live on the
// stack, the tracer ring copies by value, and every counter and
// histogram update is a lock-free atomic.
func BenchmarkAnswerBatchParallelTelemetry(b *testing.B) {
	nw, _ := buildNetwork(b, 64, 262144, 3)
	eng, err := New(nw, WithSeed(3))
	if err != nil {
		b.Fatal(err)
	}
	eng.SetTelemetry(NewMetrics(telemetry.NewRegistry()))
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	queries := make([]estimator.Query, 64)
	for i := range queries {
		queries[i] = estimator.Query{L: float64(2 * i), U: float64(2*i + 120)}
	}
	if _, err := eng.AnswerBatch(queries[:1], acc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.AnswerBatch(queries, acc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnswerTelemetry measures the single-query path with metrics
// live: one full trace (sample_lookup, optimize, estimate, perturb),
// latency histogram observation and outcome counter per op.
func BenchmarkAnswerTelemetry(b *testing.B) {
	nw, _ := buildNetwork(b, 64, 262144, 3)
	eng, err := New(nw, WithSeed(3))
	if err != nil {
		b.Fatal(err)
	}
	eng.SetTelemetry(NewMetrics(telemetry.NewRegistry()))
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	q := estimator.Query{L: 10, U: 130}
	if _, err := eng.Answer(q, acc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Answer(q, acc); err != nil {
			b.Fatal(err)
		}
	}
}
