package core

import (
	"errors"
	"math"
	"sync"
	"testing"

	"privrange/internal/dataset"
	"privrange/internal/dp"
	"privrange/internal/estimator"
	"privrange/internal/iot"
)

func buildNetwork(t testing.TB, k, records int, seed int64) (*iot.Network, *dataset.Series) {
	t.Helper()
	series, err := dataset.GenerateSeries(dataset.ParticulateMatter, dataset.GenerateConfig{Seed: seed, Records: records})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := series.Partition(k)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := iot.New(parts, iot.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return nw, series
}

func TestNewValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(nil); err == nil {
		t.Error("nil source should fail")
	}
	nw, _ := buildNetwork(t, 2, 100, 1)
	if _, err := New(nw, WithCollectionMargin(0.5)); err == nil {
		t.Error("margin < 1 should fail")
	}
}

func TestAnswerEndToEnd(t *testing.T) {
	t.Parallel()
	nw, series := buildNetwork(t, 10, dataset.CityPulseRecords, 2)
	eng, err := New(nw, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	q := estimator.Query{L: 40, U: 120}
	acc := estimator.Accuracy{Alpha: 0.05, Delta: 0.7}
	ans, err := eng.Answer(q, acc)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := series.RangeCount(q.L, q.U)
	if err != nil {
		t.Fatal(err)
	}
	n := series.Len()
	// The contract: |value − truth| ≤ αn with probability ≥ δ. A single
	// draw at 3x the bound failing would be a major bug.
	if math.Abs(ans.Value-float64(truth)) > 3*acc.Alpha*float64(n) {
		t.Errorf("answer %v wildly off truth %d (bound %v)", ans.Value, truth, acc.Alpha*float64(n))
	}
	if ans.Rate <= 0 || ans.Rate > 1 {
		t.Errorf("rate %v out of range", ans.Rate)
	}
	if ans.Nodes != 10 || ans.N != n {
		t.Errorf("metadata wrong: %+v", ans)
	}
	if ans.Plan.EpsilonPrime <= 0 || ans.Plan.EpsilonPrime > ans.Plan.Epsilon {
		t.Errorf("plan budgets inconsistent: %+v", ans.Plan)
	}
	if c := ans.Clamped(); c < 0 || c > float64(n) {
		t.Errorf("Clamped = %v outside [0, %d]", c, n)
	}
}

func TestAnswerAccuracyContractStatistically(t *testing.T) {
	t.Parallel()
	nw, series := buildNetwork(t, 8, 12000, 3)
	acc := estimator.Accuracy{Alpha: 0.08, Delta: 0.6}
	q := estimator.Query{L: 30, U: 100}
	truth, err := series.RangeCount(q.L, q.U)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(series.Len())
	// Collect once, then answer many times with fresh noise; each answer
	// must satisfy the (α, δ) contract, so the hit rate must be ≥ δ.
	eng, err := New(nw, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	const trials = 400
	hits := 0
	for i := 0; i < trials; i++ {
		ans, err := eng.Answer(q, acc)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ans.Value-float64(truth)) <= acc.Alpha*n {
			hits++
		}
	}
	rate := float64(hits) / trials
	// Note: the sampling phase is fixed across trials here, so coverage
	// is conditional on one good sample; the engine oversamples (margin
	// 2), making the conditional rate comfortably above δ.
	if rate < acc.Delta {
		t.Errorf("coverage %v below delta %v", rate, acc.Delta)
	}
}

func TestAutoCollectRaisesRate(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 6, 10000, 5)
	eng, err := New(nw, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Rate() != 0 {
		t.Fatal("network should start uncollected")
	}
	if _, err := eng.Answer(estimator.Query{L: 0, U: 50}, estimator.Accuracy{Alpha: 0.1, Delta: 0.5}); err != nil {
		t.Fatal(err)
	}
	if nw.Rate() <= 0 {
		t.Error("auto-collection should have raised the rate")
	}
}

func TestAutoCollectDisabled(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 6, 10000, 7)
	eng, err := New(nw, WithAutoCollect(false))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Answer(estimator.Query{L: 0, U: 50}, estimator.Accuracy{Alpha: 0.1, Delta: 0.5})
	if err == nil {
		t.Fatal("answer without samples and without auto-collect should fail")
	}
	if nw.Rate() != 0 {
		t.Error("rate must not change when auto-collect is off")
	}
}

func TestUnachievableAccuracy(t *testing.T) {
	t.Parallel()
	// 64 nodes over only 1000 records: α=0.01 needs |error| ≤ 10 records,
	// hopeless once noise is added.
	nw, _ := buildNetwork(t, 64, 1000, 9)
	eng, err := New(nw)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Answer(estimator.Query{L: 0, U: 50}, estimator.Accuracy{Alpha: 0.01, Delta: 0.9})
	if !errors.Is(err, ErrUnachievable) {
		t.Fatalf("err = %v, want ErrUnachievable", err)
	}
}

func TestAccountantCharged(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 4, 8000, 11)
	acct, err := dp.NewAccountant(0) // uncapped
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithAccountant(acct), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	ans, err := eng.Answer(estimator.Query{L: 20, U: 80}, acc)
	if err != nil {
		t.Fatal(err)
	}
	if got := acct.Spent(); math.Abs(got-ans.Plan.EpsilonPrime) > 1e-12 {
		t.Errorf("accountant spent %v, want %v", got, ans.Plan.EpsilonPrime)
	}
	if acct.Queries() != 1 {
		t.Errorf("queries = %d, want 1", acct.Queries())
	}
}

func TestAccountantCapBlocksAnswer(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 4, 8000, 13)
	acct, err := dp.NewAccountant(1e-9) // essentially no budget
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithAccountant(acct))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Answer(estimator.Query{L: 20, U: 80}, estimator.Accuracy{Alpha: 0.1, Delta: 0.5}); err == nil {
		t.Error("exhausted budget should block the answer")
	}
}

func TestEstimateOnly(t *testing.T) {
	t.Parallel()
	nw, series := buildNetwork(t, 8, 10000, 15)
	if _, err := nw.EnsureRate(0.3); err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw)
	if err != nil {
		t.Fatal(err)
	}
	q := estimator.Query{L: 40, U: 100}
	truth, err := series.RangeCount(q.L, q.U)
	if err != nil {
		t.Fatal(err)
	}
	est, err := eng.EstimateOnly(q)
	if err != nil {
		t.Fatal(err)
	}
	sigma := math.Sqrt(estimator.RankCounting{P: 0.3}.VarianceBound(8))
	if math.Abs(est-float64(truth)) > 6*sigma {
		t.Errorf("estimate %v too far from %d", est, truth)
	}
}

func TestEstimateOnlyWithoutSamples(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 2, 100, 17)
	eng, err := New(nw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.EstimateOnly(estimator.Query{L: 0, U: 1}); err == nil {
		t.Error("estimate before any collection should fail")
	}
}

func TestPlanQuoteDoesNotCollectOrSpend(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 4, 8000, 19)
	acct, err := dp.NewAccountant(0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, WithAccountant(acct))
	if err != nil {
		t.Fatal(err)
	}
	// No samples yet: quoting must fail without collecting.
	if _, err := eng.Plan(estimator.Accuracy{Alpha: 0.1, Delta: 0.5}); err == nil {
		t.Error("plan quote without samples should fail")
	}
	if nw.Rate() != 0 {
		t.Error("quote must not trigger collection")
	}
	if _, err := nw.EnsureRate(0.5); err != nil {
		t.Fatal(err)
	}
	plan, err := eng.Plan(estimator.Accuracy{Alpha: 0.1, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if plan.EpsilonPrime <= 0 {
		t.Errorf("quoted plan invalid: %+v", plan)
	}
	if acct.Spent() != 0 {
		t.Error("quote must not spend budget")
	}
}

func TestAnswerRejectsBadInputs(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 4, 8000, 21)
	eng, err := New(nw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Answer(estimator.Query{L: 5, U: 1}, estimator.Accuracy{Alpha: 0.1, Delta: 0.5}); err == nil {
		t.Error("bad query should fail")
	}
	if _, err := eng.Answer(estimator.Query{L: 0, U: 1}, estimator.Accuracy{Alpha: 0, Delta: 0.5}); err == nil {
		t.Error("bad accuracy should fail")
	}
}

func TestDeterministicAnswers(t *testing.T) {
	t.Parallel()
	build := func() float64 {
		nw, _ := buildNetwork(t, 4, 4000, 23)
		eng, err := New(nw, WithSeed(99))
		if err != nil {
			t.Fatal(err)
		}
		ans, err := eng.Answer(estimator.Query{L: 10, U: 90}, estimator.Accuracy{Alpha: 0.1, Delta: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return ans.Value
	}
	if build() != build() {
		t.Error("same seeds end-to-end should reproduce the same answer")
	}
}

// seqSource wraps a Network but records EnsureRate calls, proving the
// engine escalates rates monotonically.
type seqSource struct {
	*iot.Network
	rates []float64
}

func (s *seqSource) EnsureRate(p float64) (*iot.CollectionReport, error) {
	s.rates = append(s.rates, p)
	return s.Network.EnsureRate(p)
}

func TestAutoCollectEscalatesMonotonically(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 6, 4000, 25)
	src := &seqSource{Network: nw}
	eng, err := New(src, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Answer(estimator.Query{L: 0, U: 100}, estimator.Accuracy{Alpha: 0.06, Delta: 0.6}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(src.rates); i++ {
		if src.rates[i] <= src.rates[i-1] {
			t.Errorf("rates not escalating: %v", src.rates)
		}
	}
}

var _ Source = (*iot.Network)(nil)

func TestCollectionMarginControlsOversampling(t *testing.T) {
	t.Parallel()
	acc := estimator.Accuracy{Alpha: 0.08, Delta: 0.6}
	rateWithMargin := func(margin float64) float64 {
		nw, _ := buildNetwork(t, 6, 12000, 91)
		eng, err := New(nw, WithSeed(1), WithCollectionMargin(margin))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Answer(estimator.Query{L: 0, U: 100}, acc); err != nil {
			t.Fatal(err)
		}
		return nw.Rate()
	}
	low := rateWithMargin(1.5)
	high := rateWithMargin(4)
	if high <= low {
		t.Errorf("larger margin should collect at a higher rate: %v vs %v", low, high)
	}
}

func TestEngineConcurrentAnswers(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 6, 10000, 93)
	eng, err := New(nw, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				q := estimator.Query{L: float64(10 * g), U: float64(10*g + 100)}
				if _, err := eng.Answer(q, acc); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
