package core

import (
	"privrange/internal/estimator"
	"privrange/internal/index"
	"privrange/internal/sampling"
	"privrange/internal/shard"
	"privrange/internal/telemetry"
)

// snapshot is one immutable, atomically consistent view of the source —
// everything a query needs once planning is done. Estimation runs
// lock-free against it: collections replace the underlying sample sets
// (and the columnar index) rather than mutating them, so a snapshot
// taken before a collection stays valid afterwards (it just describes
// the older state).
type snapshot struct {
	sets []*sampling.SampleSet
	// idx is the columnar sample index built over sets at collection
	// time, shared immutably through the snapshot. It is nil when the
	// source has no fresh index (nothing collected yet, or the sample
	// state was mutated behind the source's back); estimation then falls
	// back to the SampleSet path, which is slower but always correct —
	// both paths are property-tested bit-identical.
	idx  *index.Index
	rate float64
	// nodes is k and n is |D| at capture time.
	nodes, n int
	// version is the source's monotonic sample-state version: it moves
	// whenever any node's stored sample is rewritten, even at unchanged
	// (n, rate) — e.g. a recovered node re-reporting a redrawn sample.
	version uint64
	// coverage is the fraction of records held by reachable nodes at
	// capture time — the degradation provenance released with answers.
	coverage float64
	// views holds the per-shard estimation views when the source is a
	// ShardedSource; estimation then scatter-gathers across them (see
	// router.go) instead of running the single-index kernels. Nil for
	// single-broker sources.
	views []shard.View
	// spans, when non-nil, is the sampled request's per-shard span group:
	// the scatter path emits one span per shard under it. Nil (the
	// default, and always for unsampled requests) is inert. It is set by
	// the engine wrappers just before estimation and never captured —
	// snapshot identity (the cache key fields above) ignores it.
	spans *telemetry.SpanGroup
}

// snapshotLocked captures the source state. Callers must hold e.mu in
// either mode (read for queries, write during collection).
func (e *Engine) snapshotLocked() snapshot {
	var s snapshot
	if ss, ok := e.src.(ShardedSource); ok {
		cs := ss.ShardSnapshot()
		s.sets, s.rate, s.nodes, s.n = cs.Sets, cs.Rate, cs.Nodes, cs.N
		s.version, s.coverage = cs.Version, cs.Coverage
		s.views = cs.Views
		return s
	}
	s.sets, s.idx, s.rate, s.nodes, s.n, s.version, s.coverage = e.src.Snapshot()
	return s
}

// readSnapshot captures the source state under the engine's read lock.
func (e *Engine) readSnapshot() snapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.snapshotLocked()
}

// rankEstimate computes the un-noised RankCounting estimate for one
// query against a snapshot, preferring the flat columnar index (zero
// allocations, branch-light binary searches) and falling back to the
// SampleSet oracle path when no index was captured. The two paths
// return bit-identical values, so callers cannot observe which one ran.
func rankEstimate(snap snapshot, q estimator.Query) (float64, error) {
	if snap.views != nil {
		var out [1]float64
		if err := rankEstimateSharded(snap, []estimator.Query{q}, out[:]); err != nil {
			return 0, err
		}
		return out[0], nil
	}
	rc := estimator.RankCounting{P: snap.rate}
	if snap.idx != nil {
		return rc.EstimateIndex(snap.idx, q)
	}
	return rc.Estimate(snap.sets, q)
}

// rankEstimateBatch fills raws[i] with the un-noised estimate for
// queries[i], using the tiled flat-index batch kernel when the snapshot
// carries an index and the per-query fallback otherwise.
func rankEstimateBatch(snap snapshot, queries []estimator.Query, raws []float64) error {
	if snap.views != nil {
		return rankEstimateSharded(snap, queries, raws)
	}
	rc := estimator.RankCounting{P: snap.rate}
	if snap.idx != nil {
		return rc.EstimateIndexBatch(snap.idx, queries, raws)
	}
	return forEach(len(queries), func(i int) error {
		raw, err := rc.Estimate(snap.sets, queries[i])
		if err != nil {
			return err
		}
		raws[i] = raw
		return nil
	})
}
