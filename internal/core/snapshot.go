package core

import "privrange/internal/sampling"

// snapshot is one immutable, atomically consistent view of the source —
// everything a query needs once planning is done. Estimation runs
// lock-free against it: collections replace the underlying sample sets
// rather than mutating them, so a snapshot taken before a collection
// stays valid afterwards (it just describes the older state).
type snapshot struct {
	sets []*sampling.SampleSet
	rate float64
	// nodes is k and n is |D| at capture time.
	nodes, n int
	// version is the source's monotonic sample-state version: it moves
	// whenever any node's stored sample is rewritten, even at unchanged
	// (n, rate) — e.g. a recovered node re-reporting a redrawn sample.
	version uint64
	// coverage is the fraction of records held by reachable nodes at
	// capture time — the degradation provenance released with answers.
	coverage float64
}

// snapshotLocked captures the source state. Callers must hold e.mu in
// either mode (read for queries, write during collection).
func (e *Engine) snapshotLocked() snapshot {
	var s snapshot
	s.sets, s.rate, s.nodes, s.n, s.version, s.coverage = e.src.Snapshot()
	return s
}

// readSnapshot captures the source state under the engine's read lock.
func (e *Engine) readSnapshot() snapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.snapshotLocked()
}
