package core

import (
	"errors"
	"testing"

	"privrange/internal/dataset"
	"privrange/internal/estimator"
	"privrange/internal/iot"
)

// degradedNetwork builds a deployment where the next auto-collection is
// forced (a fresh node joined, so the network-wide rate guarantee is 0)
// and will be partial (node 2 sits in a long crash window): the exact
// state where strict and best-effort policies diverge.
func degradedNetwork(t *testing.T, seed int64) *iot.Network {
	t.Helper()
	series, err := dataset.GenerateSeries(dataset.ParticulateMatter, dataset.GenerateConfig{Seed: seed, Records: 8000})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := series.Partition(6)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := iot.New(parts, iot.Config{Seed: seed, Faults: map[int]iot.FaultProfile{
		2: {CrashWindows: []iot.CrashWindow{{From: 2, Until: 1 << 40}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 (pre-crash): everyone collected at 0.6, so node 2's stale
	// sample will keep guaranteeing that rate throughout its outage.
	if _, err := nw.EnsureRate(0.6); err != nil {
		t.Fatal(err)
	}
	// Node 2 senses new data, so the next collection round must attempt
	// it (dirty) — and fail, because by then it sits in its crash window.
	if err := nw.Ingest(2, []float64{80, 90}); err != nil {
		t.Fatal(err)
	}
	// A node joins; until it is collected the network-wide guarantee is 0,
	// so the next query must drive a collection round — which will fail on
	// the crashed node 2.
	if _, err := nw.AddNode([]float64{30, 40, 50, 60, 70}); err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestStrictPolicyFailsOnPartialCollection(t *testing.T) {
	t.Parallel()
	nw := degradedNetwork(t, 101)
	eng, err := New(nw, WithSeed(1)) // Strict is the default
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Answer(estimator.Query{L: 20, U: 120}, estimator.Accuracy{Alpha: 0.1, Delta: 0.5})
	if !errors.Is(err, iot.ErrPartialRound) {
		t.Fatalf("strict engine should surface the partial round, got %v", err)
	}
}

func TestBestEffortAnswersAtDegradedState(t *testing.T) {
	t.Parallel()
	nw := degradedNetwork(t, 101)
	eng, err := New(nw, WithSeed(1), WithDegradationPolicy(BestEffort))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Answer(estimator.Query{L: 20, U: 120}, estimator.Accuracy{Alpha: 0.1, Delta: 0.5})
	if err != nil {
		t.Fatalf("best-effort engine should answer over the degraded deployment: %v", err)
	}
	// The answer's provenance must match the network's actual state: the
	// crashed node pins the guarantee to its stale 0.6 sample, coverage
	// reflects the unreachable records, and the version identifies the
	// sample state the estimate was computed from.
	if ans.Rate != nw.Rate() {
		t.Errorf("answer rate %v, network rate %v", ans.Rate, nw.Rate())
	}
	if ans.Rate != 0.6 {
		t.Errorf("degraded guarantee should be the stale 0.6, got %v", ans.Rate)
	}
	if ans.Coverage != nw.Coverage() {
		t.Errorf("answer coverage %v, network coverage %v", ans.Coverage, nw.Coverage())
	}
	if ans.Coverage >= 1 {
		t.Errorf("coverage should disclose the crashed node, got %v", ans.Coverage)
	}
	if ans.CollectionVersion != nw.StateVersion() {
		t.Errorf("answer version %d, network version %d", ans.CollectionVersion, nw.StateVersion())
	}
}

func TestBestEffortStillFailsOnNonPartialErrors(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 4, 4000, 103)
	eng, err := New(nw, WithDegradationPolicy(BestEffort))
	if err != nil {
		t.Fatal(err)
	}
	// Validation failures are not degradation; they propagate unchanged.
	if _, err := eng.Answer(estimator.Query{L: 5, U: 1}, estimator.Accuracy{Alpha: 0.1, Delta: 0.5}); err == nil {
		t.Error("malformed query must fail under any policy")
	}
	if _, err := eng.Answer(estimator.Query{L: 0, U: 1}, estimator.Accuracy{Alpha: 2, Delta: 0.5}); err == nil {
		t.Error("malformed accuracy must fail under any policy")
	}
}

func TestDegradationPolicyValidation(t *testing.T) {
	t.Parallel()
	nw, _ := buildNetwork(t, 2, 100, 105)
	if _, err := New(nw, WithDegradationPolicy(DegradationPolicy(7))); err == nil {
		t.Error("unknown policy should be rejected at New")
	}
}

func TestCacheInvalidatedByCoverageChange(t *testing.T) {
	t.Parallel()
	// A node going down changes no sample, no rate and no version — only
	// coverage. A cached answer released at full coverage must not be
	// re-served as if it described the degraded deployment.
	nw, _ := buildNetwork(t, 4, 6000, 107)
	eng, err := New(nw, WithSeed(9), WithAnswerCache(true))
	if err != nil {
		t.Fatal(err)
	}
	q := estimator.Query{L: 30, U: 90}
	acc := estimator.Accuracy{Alpha: 0.1, Delta: 0.5}
	first, err := eng.Answer(q, acc)
	if err != nil {
		t.Fatal(err)
	}
	if first.Coverage != 1 {
		t.Fatalf("baseline coverage %v, want 1", first.Coverage)
	}
	if err := nw.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	degraded, err := eng.Answer(q, acc)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Value == first.Value {
		t.Error("coverage change should invalidate the cache (same value re-served)")
	}
	if degraded.Coverage >= 1 {
		t.Errorf("fresh answer should carry the degraded coverage, got %v", degraded.Coverage)
	}
	// Recovery restores full coverage but rewrites node 0's sample, so the
	// version moves too — either way, no stale hit.
	if err := nw.SetDown(0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.EnsureRate(nw.Rate()); err != nil {
		t.Fatal(err)
	}
	recovered, err := eng.Answer(q, acc)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Value == degraded.Value {
		t.Error("recovery should invalidate the degraded-era cache entry")
	}
	if recovered.Coverage != 1 {
		t.Errorf("post-recovery coverage %v, want 1", recovered.Coverage)
	}
}
