package sampling

import (
	"math"
	"testing"
)

func TestNodeStoreBasic(t *testing.T) {
	t.Parallel()
	ns := NewNodeStore(1, 42)
	if ns.Len() != 0 || ns.SampleCount() != 0 || ns.Rate() != 0 {
		t.Fatal("new store should be empty")
	}
	ns.AddAll([]float64{5, 1, 3, 3, 9})
	if ns.Len() != 5 {
		t.Errorf("Len = %d, want 5", ns.Len())
	}
	if c, err := ns.CountRange(2, 5); err != nil || c != 3 {
		t.Errorf("CountRange = %d, %v; want 3", c, err)
	}
	set, err := ns.SampleAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Samples) != 5 {
		t.Errorf("p=1 sample should include everything, got %d", len(set.Samples))
	}
	if err := set.Validate(); err != nil {
		t.Errorf("sample invalid: %v", err)
	}
	if ns.Rate() != 1 {
		t.Errorf("Rate = %v, want 1", ns.Rate())
	}
}

func TestNodeStoreRejectsBadRate(t *testing.T) {
	t.Parallel()
	ns := NewNodeStore(1, 1)
	ns.Add(1)
	if _, err := ns.SampleAt(-0.5); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := ns.SampleAt(1.5); err == nil {
		t.Error("rate > 1 should fail")
	}
}

func TestNodeStoreTopUpPreservesExistingSamples(t *testing.T) {
	t.Parallel()
	ns := NewNodeStore(3, 7)
	for i := 0; i < 10000; i++ {
		ns.Add(float64(i))
	}
	low, err := ns.SampleAt(0.1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := ns.SampleAt(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(high.Samples) <= len(low.Samples) {
		t.Fatalf("top-up did not grow sample: %d -> %d", len(low.Samples), len(high.Samples))
	}
	// Every sample from the low draw must survive the top-up (the node
	// already shipped them; discarding would waste communication).
	inHigh := make(map[int]bool, len(high.Samples))
	for _, s := range high.Samples {
		inHigh[s.Rank] = true
	}
	for _, s := range low.Samples {
		if !inHigh[s.Rank] {
			t.Fatalf("sample rank %d lost during top-up", s.Rank)
		}
	}
	// Final rate should be ~0.4.
	rate := float64(len(high.Samples)) / float64(ns.Len())
	if math.Abs(rate-0.4) > 0.03 {
		t.Errorf("post-top-up empirical rate = %v, want ~0.4", rate)
	}
}

func TestNodeStoreInsertInvalidatesSample(t *testing.T) {
	t.Parallel()
	ns := NewNodeStore(4, 9)
	for i := 0; i < 100; i++ {
		ns.Add(float64(i))
	}
	if _, err := ns.SampleAt(0.5); err != nil {
		t.Fatal(err)
	}
	ns.Add(1000)
	set, err := ns.SampleAt(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if set.N != 101 {
		t.Errorf("sample after insert should see new size, got N=%d", set.N)
	}
	if err := set.Validate(); err != nil {
		t.Errorf("sample invalid after refresh: %v", err)
	}
}

func TestNodeStoreLowerRateRedraws(t *testing.T) {
	t.Parallel()
	ns := NewNodeStore(5, 11)
	for i := 0; i < 5000; i++ {
		ns.Add(float64(i))
	}
	if _, err := ns.SampleAt(0.5); err != nil {
		t.Fatal(err)
	}
	set, err := ns.SampleAt(0.1)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(len(set.Samples)) / 5000
	if math.Abs(rate-0.1) > 0.02 {
		t.Errorf("redraw at lower rate = %v, want ~0.1", rate)
	}
}

func TestNodeStoreSameRateIsStable(t *testing.T) {
	t.Parallel()
	ns := NewNodeStore(6, 13)
	for i := 0; i < 1000; i++ {
		ns.Add(float64(i))
	}
	a, err := ns.SampleAt(0.3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ns.SampleAt(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("re-requesting the same rate should not redraw")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("re-requesting the same rate should return the same sample")
		}
	}
}

// TestSampleCountTracksDrawsAndTopUps pins the O(1) running counter:
// SampleCount must equal len(currentSet().Samples) across full draws,
// top-ups and data invalidation, without ever rescanning taken.
func TestSampleCountTracksDrawsAndTopUps(t *testing.T) {
	t.Parallel()
	ns := NewNodeStore(2, 11)
	data := make([]float64, 500)
	for i := range data {
		data[i] = float64(i % 37)
	}
	ns.AddAll(data)
	check := func(stage string) {
		set, err := ns.SampleAt(ns.Rate())
		if err != nil {
			t.Fatal(err)
		}
		if ns.SampleCount() != len(set.Samples) {
			t.Fatalf("%s: SampleCount = %d, set has %d", stage, ns.SampleCount(), len(set.Samples))
		}
	}
	if _, err := ns.SampleAt(0.2); err != nil {
		t.Fatal(err)
	}
	check("after full draw")
	if _, err := ns.SampleAt(0.5); err != nil {
		t.Fatal(err)
	}
	check("after top-up")
	if _, err := ns.SampleAt(0.9); err != nil {
		t.Fatal(err)
	}
	check("after second top-up")
	// Lowering the rate redraws from scratch.
	if _, err := ns.SampleAt(0.1); err != nil {
		t.Fatal(err)
	}
	check("after redraw at lower rate")
	// New data invalidates the sample; the next draw recounts.
	ns.Add(999)
	if _, err := ns.SampleAt(0.1); err != nil {
		t.Fatal(err)
	}
	check("after invalidating insert")
	if _, err := ns.SampleAt(1); err != nil {
		t.Fatal(err)
	}
	if ns.SampleCount() != ns.Len() {
		t.Fatalf("p=1: SampleCount = %d, want %d", ns.SampleCount(), ns.Len())
	}
}

// TestCachedSortedSeesNewData guards the sorted-snapshot cache: a draw
// after an insert must sample the new value's world, not the cached one.
func TestCachedSortedSeesNewData(t *testing.T) {
	t.Parallel()
	ns := NewNodeStore(4, 23)
	ns.AddAll([]float64{1, 2, 3})
	if _, err := ns.SampleAt(1); err != nil {
		t.Fatal(err)
	}
	ns.Add(0.5) // shifts every rank
	set, err := ns.SampleAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Samples) != 4 || set.N != 4 {
		t.Fatalf("post-insert draw has %d samples over N=%d, want 4/4", len(set.Samples), set.N)
	}
	if set.Samples[0].Value != 0.5 || set.Samples[0].Rank != 1 {
		t.Fatalf("first sample = (%v,%d), want the inserted (0.5,1)", set.Samples[0].Value, set.Samples[0].Rank)
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
}
