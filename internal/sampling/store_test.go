package sampling

import (
	"math"
	"testing"
)

func TestNodeStoreBasic(t *testing.T) {
	t.Parallel()
	ns := NewNodeStore(1, 42)
	if ns.Len() != 0 || ns.SampleCount() != 0 || ns.Rate() != 0 {
		t.Fatal("new store should be empty")
	}
	ns.AddAll([]float64{5, 1, 3, 3, 9})
	if ns.Len() != 5 {
		t.Errorf("Len = %d, want 5", ns.Len())
	}
	if c, err := ns.CountRange(2, 5); err != nil || c != 3 {
		t.Errorf("CountRange = %d, %v; want 3", c, err)
	}
	set, err := ns.SampleAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Samples) != 5 {
		t.Errorf("p=1 sample should include everything, got %d", len(set.Samples))
	}
	if err := set.Validate(); err != nil {
		t.Errorf("sample invalid: %v", err)
	}
	if ns.Rate() != 1 {
		t.Errorf("Rate = %v, want 1", ns.Rate())
	}
}

func TestNodeStoreRejectsBadRate(t *testing.T) {
	t.Parallel()
	ns := NewNodeStore(1, 1)
	ns.Add(1)
	if _, err := ns.SampleAt(-0.5); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := ns.SampleAt(1.5); err == nil {
		t.Error("rate > 1 should fail")
	}
}

func TestNodeStoreTopUpPreservesExistingSamples(t *testing.T) {
	t.Parallel()
	ns := NewNodeStore(3, 7)
	for i := 0; i < 10000; i++ {
		ns.Add(float64(i))
	}
	low, err := ns.SampleAt(0.1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := ns.SampleAt(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(high.Samples) <= len(low.Samples) {
		t.Fatalf("top-up did not grow sample: %d -> %d", len(low.Samples), len(high.Samples))
	}
	// Every sample from the low draw must survive the top-up (the node
	// already shipped them; discarding would waste communication).
	inHigh := make(map[int]bool, len(high.Samples))
	for _, s := range high.Samples {
		inHigh[s.Rank] = true
	}
	for _, s := range low.Samples {
		if !inHigh[s.Rank] {
			t.Fatalf("sample rank %d lost during top-up", s.Rank)
		}
	}
	// Final rate should be ~0.4.
	rate := float64(len(high.Samples)) / float64(ns.Len())
	if math.Abs(rate-0.4) > 0.03 {
		t.Errorf("post-top-up empirical rate = %v, want ~0.4", rate)
	}
}

func TestNodeStoreInsertInvalidatesSample(t *testing.T) {
	t.Parallel()
	ns := NewNodeStore(4, 9)
	for i := 0; i < 100; i++ {
		ns.Add(float64(i))
	}
	if _, err := ns.SampleAt(0.5); err != nil {
		t.Fatal(err)
	}
	ns.Add(1000)
	set, err := ns.SampleAt(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if set.N != 101 {
		t.Errorf("sample after insert should see new size, got N=%d", set.N)
	}
	if err := set.Validate(); err != nil {
		t.Errorf("sample invalid after refresh: %v", err)
	}
}

func TestNodeStoreLowerRateRedraws(t *testing.T) {
	t.Parallel()
	ns := NewNodeStore(5, 11)
	for i := 0; i < 5000; i++ {
		ns.Add(float64(i))
	}
	if _, err := ns.SampleAt(0.5); err != nil {
		t.Fatal(err)
	}
	set, err := ns.SampleAt(0.1)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(len(set.Samples)) / 5000
	if math.Abs(rate-0.1) > 0.02 {
		t.Errorf("redraw at lower rate = %v, want ~0.1", rate)
	}
}

func TestNodeStoreSameRateIsStable(t *testing.T) {
	t.Parallel()
	ns := NewNodeStore(6, 13)
	for i := 0; i < 1000; i++ {
		ns.Add(float64(i))
	}
	a, err := ns.SampleAt(0.3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ns.SampleAt(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("re-requesting the same rate should not redraw")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("re-requesting the same rate should return the same sample")
		}
	}
}
