package sampling

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"privrange/internal/stats"
)

func mustDraw(t *testing.T, sorted []float64, p float64, seed int64) *SampleSet {
	t.Helper()
	set, err := Draw(sorted, p, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestDrawValidatesInput(t *testing.T) {
	t.Parallel()
	rng := stats.NewRNG(1)
	if _, err := Draw([]float64{3, 1}, 0.5, rng); err == nil {
		t.Error("unsorted input should fail")
	}
	if _, err := Draw([]float64{1, 2}, -0.1, rng); err == nil {
		t.Error("p < 0 should fail")
	}
	if _, err := Draw([]float64{1, 2}, 1.1, rng); err == nil {
		t.Error("p > 1 should fail")
	}
}

func TestDrawExtremes(t *testing.T) {
	t.Parallel()
	sorted := []float64{1, 2, 3, 4, 5}
	all := mustDraw(t, sorted, 1, 1)
	if len(all.Samples) != 5 {
		t.Errorf("p=1 should take everything, got %d", len(all.Samples))
	}
	for j, s := range all.Samples {
		if s.Rank != j+1 || s.Value != sorted[j] {
			t.Errorf("sample %d = %+v", j, s)
		}
	}
	none := mustDraw(t, sorted, 0, 1)
	if len(none.Samples) != 0 {
		t.Errorf("p=0 should take nothing, got %d", len(none.Samples))
	}
	if none.N != 5 {
		t.Errorf("N should still report dataset size, got %d", none.N)
	}
}

func TestDrawRate(t *testing.T) {
	t.Parallel()
	sorted := make([]float64, 50000)
	for i := range sorted {
		sorted[i] = float64(i)
	}
	set := mustDraw(t, sorted, 0.3, 42)
	rate := float64(len(set.Samples)) / float64(len(sorted))
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("empirical rate = %v, want ~0.3", rate)
	}
	if err := set.Validate(); err != nil {
		t.Errorf("drawn set invalid: %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		set  SampleSet
	}{
		{name: "rank not increasing", set: SampleSet{N: 5, Samples: []Sample{{Value: 1, Rank: 2}, {Value: 2, Rank: 2}}}},
		{name: "rank zero", set: SampleSet{N: 5, Samples: []Sample{{Value: 1, Rank: 0}}}},
		{name: "rank beyond n", set: SampleSet{N: 2, Samples: []Sample{{Value: 1, Rank: 3}}}},
		{name: "values decrease", set: SampleSet{N: 5, Samples: []Sample{{Value: 5, Rank: 1}, {Value: 4, Rank: 2}}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if err := tc.set.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
	good := SampleSet{N: 5, Samples: []Sample{{Value: 1, Rank: 1}, {Value: 1, Rank: 3}, {Value: 7, Rank: 5}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
}

func TestPredecessorSuccessorStrict(t *testing.T) {
	t.Parallel()
	// Values 10,20,20,30,40 at ranks 1..5, all sampled.
	set := SampleSet{N: 5, Samples: []Sample{
		{Value: 10, Rank: 1}, {Value: 20, Rank: 2}, {Value: 20, Rank: 3},
		{Value: 30, Rank: 4}, {Value: 40, Rank: 5},
	}}
	cases := []struct {
		name     string
		l, u     float64
		wantPRnk int // 0 means !ok
		wantSRnk int
	}{
		{name: "interior", l: 20, u: 30, wantPRnk: 1, wantSRnk: 5},
		{name: "strict pred skips equal", l: 20, u: 20, wantPRnk: 1, wantSRnk: 4},
		{name: "before all", l: 5, u: 8, wantPRnk: 0, wantSRnk: 1},
		{name: "after all", l: 45, u: 50, wantPRnk: 5, wantSRnk: 0},
		{name: "covers all", l: 10, u: 40, wantPRnk: 0, wantSRnk: 0},
		{name: "between duplicates", l: 25, u: 25, wantPRnk: 3, wantSRnk: 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			p, pok := set.PredecessorStrict(tc.l)
			if tc.wantPRnk == 0 {
				if pok {
					t.Errorf("predecessor = %+v, want none", p)
				}
			} else if !pok || p.Rank != tc.wantPRnk {
				t.Errorf("predecessor = %+v ok=%v, want rank %d", p, pok, tc.wantPRnk)
			}
			s, sok := set.SuccessorStrict(tc.u)
			if tc.wantSRnk == 0 {
				if sok {
					t.Errorf("successor = %+v, want none", s)
				}
			} else if !sok || s.Rank != tc.wantSRnk {
				t.Errorf("successor = %+v ok=%v, want rank %d", s, sok, tc.wantSRnk)
			}
		})
	}
}

func TestCountInRange(t *testing.T) {
	t.Parallel()
	set := SampleSet{N: 6, Samples: []Sample{
		{Value: 1, Rank: 1}, {Value: 3, Rank: 2}, {Value: 3, Rank: 3}, {Value: 8, Rank: 6},
	}}
	if c, err := set.CountInRange(2, 5); err != nil || c != 2 {
		t.Errorf("CountInRange(2,5) = %d, %v; want 2", c, err)
	}
	if c, err := set.CountInRange(0, 10); err != nil || c != 4 {
		t.Errorf("CountInRange(0,10) = %d, %v; want 4", c, err)
	}
	if c, err := set.CountInRange(4, 7); err != nil || c != 0 {
		t.Errorf("CountInRange(4,7) = %d, %v; want 0", c, err)
	}
	if _, err := set.CountInRange(5, 2); err == nil {
		t.Error("l > u should fail")
	}
}

func TestPredecessorSuccessorAgainstOracle(t *testing.T) {
	t.Parallel()
	f := func(raw []float64, lRaw, span float64) bool {
		if math.IsNaN(lRaw) || math.IsInf(lRaw, 0) || math.IsNaN(span) || math.IsInf(span, 0) {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			xs = append(xs, math.Round(math.Mod(v, 20)))
		}
		sort.Float64s(xs)
		set, err := Draw(xs, 0.5, stats.NewRNG(9))
		if err != nil {
			return false
		}
		l := math.Round(math.Mod(lRaw, 25))
		u := l + math.Abs(math.Round(math.Mod(span, 10)))

		// Oracle: scan all samples.
		var wantP, wantS *Sample
		for i := range set.Samples {
			s := set.Samples[i]
			if s.Value < l {
				cp := s
				wantP = &cp
			}
			if s.Value > u && wantS == nil {
				cp := s
				wantS = &cp
			}
		}
		gotP, pok := set.PredecessorStrict(l)
		if (wantP != nil) != pok {
			return false
		}
		if pok && gotP != *wantP {
			return false
		}
		gotS, sok := set.SuccessorStrict(u)
		if (wantS != nil) != sok {
			return false
		}
		if sok && gotS != *wantS {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
