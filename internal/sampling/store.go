package sampling

import (
	"fmt"

	"privrange/internal/stats"
)

// NodeStore is the node-side data store: an order-statistic tree holding
// the node's full local dataset D_i, plus the bookkeeping needed to grow
// an existing Bernoulli sample to a higher rate without discarding the
// samples already shipped (the paper's "collect more samples" path).
//
// Top-up rule: a sample drawn at rate p0 is upgraded to rate p1 > p0 by
// including each previously unsampled instance independently with
// probability (p1−p0)/(1−p0); inclusion probabilities compose to exactly
// p1 and remain independent across instances. The top-up is only valid
// while the underlying data is unchanged — any insert invalidates it and
// forces a fresh draw.
type NodeStore struct {
	tree  *OSTree
	rng   *stats.RNG
	id    int
	rate  float64
	taken []bool // parallel to the sorted snapshot backing the last draw
	dirty bool   // data changed since the last draw
	gen   int    // incremented on every full (non-top-up) draw
	// sorted caches tree.Sorted() for the snapshot backing the last
	// draw; valid exactly while !dirty, so top-ups and repeat SampleAt
	// calls at an unchanged rate reuse it instead of re-walking (and
	// re-allocating) the whole tree per draw.
	sorted []float64
	// count is the running number of taken instances in the current
	// sample, maintained incrementally by fullDraw and topUp so
	// SampleCount never has to scan taken.
	count int
}

// NewNodeStore returns an empty store for node id. Sampling and tree
// shape are deterministic given seed.
func NewNodeStore(id int, seed int64) *NodeStore {
	root := stats.NewRNG(seed)
	return &NodeStore{
		tree:  NewOSTree(root.Int63()),
		rng:   root.Child(int64(id)),
		id:    id,
		dirty: true,
	}
}

// ID returns the node identifier.
func (n *NodeStore) ID() int { return n.id }

// Len returns n_i, the size of the local dataset.
func (n *NodeStore) Len() int { return n.tree.Len() }

// Rate returns the Bernoulli rate of the most recent draw (0 before any
// draw).
func (n *NodeStore) Rate() float64 { return n.rate }

// Add inserts one reading into the local dataset. It invalidates any
// outstanding sample, since ranks shift.
func (n *NodeStore) Add(v float64) {
	n.tree.Insert(v)
	n.dirty = true
}

// AddAll inserts a batch of readings.
func (n *NodeStore) AddAll(vs []float64) {
	for _, v := range vs {
		n.Add(v)
	}
}

// CountRange returns the exact local range count γ(l, u, i) — ground
// truth for tests and experiment error measurement.
func (n *NodeStore) CountRange(l, u float64) (int, error) {
	return n.tree.CountRange(l, u)
}

// SampleAt returns a rank-annotated Bernoulli sample of the current local
// dataset at rate p. When the data is unchanged and p is at least the
// previous rate, the previous sample is topped up in place (the instances
// already shipped stay in the set); otherwise a fresh draw happens. The
// returned set is a copy safe to retain.
func (n *NodeStore) SampleAt(p float64) (*SampleSet, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("sampling: probability %v outside [0, 1]", p)
	}
	switch {
	case n.dirty || p < n.rate || n.taken == nil:
		n.fullDraw(p)
	case p > n.rate:
		n.topUp(p)
	}
	n.rate = p
	return n.currentSet(), nil
}

func (n *NodeStore) fullDraw(p float64) {
	n.sorted = n.tree.Sorted()
	n.taken = make([]bool, len(n.sorted))
	n.count = 0
	for j := range n.taken {
		if n.rng.Bernoulli(p) {
			n.taken[j] = true
			n.count++
		}
	}
	n.dirty = false
	n.gen++
}

// Generation identifies the current full draw: it increments whenever the
// store redraws from scratch (data changed, or the rate dropped) and is
// stable across top-ups. Consumers use it to decide whether previously
// shipped samples are still part of the current sample.
func (n *NodeStore) Generation() int { return n.gen }

func (n *NodeStore) topUp(p float64) {
	// Pr[include | not yet included] = (p − rate) / (1 − rate).
	q := (p - n.rate) / (1 - n.rate)
	for j, already := range n.taken {
		if !already && n.rng.Bernoulli(q) {
			n.taken[j] = true
			n.count++
		}
	}
}

// currentSet materializes the sample from the cached sorted snapshot —
// valid because every path that dirties the data forces fullDraw (which
// refreshes the cache) before reaching here.
func (n *NodeStore) currentSet() *SampleSet {
	set := &SampleSet{
		N:       len(n.sorted),
		Samples: make([]Sample, 0, n.count),
	}
	for j, took := range n.taken {
		if took {
			set.Samples = append(set.Samples, Sample{Value: n.sorted[j], Rank: j + 1})
		}
	}
	return set
}

// SampleCount returns how many instances the current sample holds (0
// before any draw). O(1): the count is maintained across draws and
// top-ups rather than recounted.
func (n *NodeStore) SampleCount() int { return n.count }
