// Package sampling implements the node-side sampling substrate of the
// paper: an order-statistic tree over each node's local data (so local
// ranks r(x, i) cost O(log n) even while data keeps arriving), Bernoulli
// rank-annotated sampling, and sample stores that support the paper's
// accuracy-driven sample top-up ("if the existing samples are unable to
// satisfy the query accuracy requirement, more samples should be drawn").
//
// Rank semantics: node i keeps its local dataset D_i in sorted order;
// the j-th instance in that order has rank j (1-based). Duplicate values
// are distinct instances with consecutive ranks, so every rank computation
// below is exact even on integer-valued sensor data — this is what keeps
// the RankCounting estimator exactly unbiased (see internal/estimator).
package sampling

import (
	"fmt"

	"privrange/internal/stats"
)

// OSTree is an order-statistic treap: a randomized balanced BST augmented
// with subtree sizes. It stores a multiset of float64 values and answers
// rank queries in O(log n) expected time. The zero value is NOT ready to
// use; construct with NewOSTree so node priorities are deterministic.
type OSTree struct {
	root *osNode
	rng  *stats.RNG
	size int
}

type osNode struct {
	value    float64
	priority int64
	count    int // multiplicity of value at this node
	size     int // total instances in this subtree (incl. multiplicity)
	left     *osNode
	right    *osNode
}

// NewOSTree returns an empty tree whose internal priorities are drawn from
// a deterministic stream seeded with seed, so tree shape (and therefore
// iteration cost) is reproducible.
func NewOSTree(seed int64) *OSTree {
	return &OSTree{rng: stats.NewRNG(seed)}
}

// Len returns the number of stored instances (counting duplicates).
func (t *OSTree) Len() int { return t.size }

func nodeSize(n *osNode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *osNode) update() {
	n.size = n.count + nodeSize(n.left) + nodeSize(n.right)
}

// Insert adds one instance of v to the multiset.
func (t *OSTree) Insert(v float64) {
	t.root = t.insert(t.root, v)
	t.size++
}

func (t *OSTree) insert(n *osNode, v float64) *osNode {
	if n == nil {
		return &osNode{value: v, priority: t.rng.Int63(), count: 1, size: 1}
	}
	switch {
	case v == n.value:
		n.count++
		n.size++
	case v < n.value:
		n.left = t.insert(n.left, v)
		if n.left.priority > n.priority {
			n = rotateRight(n)
		} else {
			n.update()
		}
	default:
		n.right = t.insert(n.right, v)
		if n.right.priority > n.priority {
			n = rotateLeft(n)
		} else {
			n.update()
		}
	}
	return n
}

func rotateRight(n *osNode) *osNode {
	l := n.left
	n.left = l.right
	l.right = n
	n.update()
	l.update()
	return l
}

func rotateLeft(n *osNode) *osNode {
	r := n.right
	n.right = r.left
	r.left = n
	n.update()
	r.update()
	return r
}

// RankLT returns the number of instances with value strictly less than v.
func (t *OSTree) RankLT(v float64) int {
	n := t.root
	rank := 0
	for n != nil {
		switch {
		case v <= n.value:
			if v == n.value {
				return rank + nodeSize(n.left)
			}
			n = n.left
		default:
			rank += nodeSize(n.left) + n.count
			n = n.right
		}
	}
	return rank
}

// RankLE returns the number of instances with value less than or equal to
// v.
func (t *OSTree) RankLE(v float64) int {
	n := t.root
	rank := 0
	for n != nil {
		if v < n.value {
			n = n.left
		} else {
			rank += nodeSize(n.left)
			if v == n.value {
				return rank + n.count
			}
			rank += n.count
			n = n.right
		}
	}
	return rank
}

// CountRange returns |{x : l ≤ x ≤ u}|, the node-local exact range count.
// It returns an error when l > u.
func (t *OSTree) CountRange(l, u float64) (int, error) {
	if l > u {
		return 0, fmt.Errorf("sampling: range [%v, %v] has l > u", l, u)
	}
	return t.RankLE(u) - t.RankLT(l), nil
}

// Select returns the value of the instance with 1-based rank r.
// It returns an error when r is outside [1, Len()].
func (t *OSTree) Select(r int) (float64, error) {
	if r < 1 || r > t.size {
		return 0, fmt.Errorf("sampling: rank %d outside [1, %d]", r, t.size)
	}
	n := t.root
	for n != nil {
		leftSize := nodeSize(n.left)
		switch {
		case r <= leftSize:
			n = n.left
		case r <= leftSize+n.count:
			return n.value, nil
		default:
			r -= leftSize + n.count
			n = n.right
		}
	}
	// Unreachable when size bookkeeping is correct.
	return 0, fmt.Errorf("sampling: select fell off tree (corrupt size)")
}

// Sorted returns all instances in non-decreasing order. The result is a
// fresh slice of length Len().
func (t *OSTree) Sorted() []float64 {
	out := make([]float64, 0, t.size)
	var walk func(n *osNode)
	walk = func(n *osNode) {
		if n == nil {
			return
		}
		walk(n.left)
		for i := 0; i < n.count; i++ {
			out = append(out, n.value)
		}
		walk(n.right)
	}
	walk(t.root)
	return out
}

// Min returns the smallest stored value. ok is false when the tree is
// empty.
func (t *OSTree) Min() (v float64, ok bool) {
	n := t.root
	if n == nil {
		return 0, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.value, true
}

// Max returns the largest stored value. ok is false when the tree is
// empty.
func (t *OSTree) Max() (v float64, ok bool) {
	n := t.root
	if n == nil {
		return 0, false
	}
	for n.right != nil {
		n = n.right
	}
	return n.value, true
}

// Height returns the height of the treap (0 for empty). Exposed for tests
// asserting the randomized balancing works.
func (t *OSTree) Height() int {
	var h func(n *osNode) int
	h = func(n *osNode) int {
		if n == nil {
			return 0
		}
		l, r := h(n.left), h(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.root)
}
