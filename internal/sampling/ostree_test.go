package sampling

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"privrange/internal/stats"
)

// oracle is a sort-based reference implementation of the order-statistic
// queries.
type oracle struct {
	sorted []float64
}

func newOracle(xs []float64) *oracle {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &oracle{sorted: s}
}

func (o *oracle) rankLT(v float64) int {
	return sort.SearchFloat64s(o.sorted, v)
}

func (o *oracle) rankLE(v float64) int {
	return sort.Search(len(o.sorted), func(i int) bool { return o.sorted[i] > v })
}

func TestOSTreeBasic(t *testing.T) {
	t.Parallel()
	tree := NewOSTree(1)
	if tree.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	if _, ok := tree.Min(); ok {
		t.Error("Min on empty tree should report !ok")
	}
	if _, ok := tree.Max(); ok {
		t.Error("Max on empty tree should report !ok")
	}
	for _, v := range []float64{5, 3, 8, 3, 1, 9, 5, 5} {
		tree.Insert(v)
	}
	if tree.Len() != 8 {
		t.Errorf("Len = %d, want 8", tree.Len())
	}
	if min, _ := tree.Min(); min != 1 {
		t.Errorf("Min = %v, want 1", min)
	}
	if max, _ := tree.Max(); max != 9 {
		t.Errorf("Max = %v, want 9", max)
	}
	wantSorted := []float64{1, 3, 3, 5, 5, 5, 8, 9}
	got := tree.Sorted()
	for i, v := range wantSorted {
		if got[i] != v {
			t.Fatalf("Sorted = %v, want %v", got, wantSorted)
		}
	}
	if r := tree.RankLT(5); r != 3 {
		t.Errorf("RankLT(5) = %d, want 3", r)
	}
	if r := tree.RankLE(5); r != 6 {
		t.Errorf("RankLE(5) = %d, want 6", r)
	}
	if c, err := tree.CountRange(3, 5); err != nil || c != 5 {
		t.Errorf("CountRange(3,5) = %d, %v; want 5", c, err)
	}
	if _, err := tree.CountRange(5, 3); err == nil {
		t.Error("CountRange with l > u should fail")
	}
}

func TestOSTreeSelect(t *testing.T) {
	t.Parallel()
	tree := NewOSTree(2)
	values := []float64{7, 1, 4, 4, 9, 2}
	for _, v := range values {
		tree.Insert(v)
	}
	want := []float64{1, 2, 4, 4, 7, 9}
	for r := 1; r <= len(want); r++ {
		got, err := tree.Select(r)
		if err != nil {
			t.Fatalf("Select(%d): %v", r, err)
		}
		if got != want[r-1] {
			t.Errorf("Select(%d) = %v, want %v", r, got, want[r-1])
		}
	}
	if _, err := tree.Select(0); err == nil {
		t.Error("Select(0) should fail")
	}
	if _, err := tree.Select(7); err == nil {
		t.Error("Select(len+1) should fail")
	}
}

func TestOSTreeMatchesOracle(t *testing.T) {
	t.Parallel()
	f := func(raw []float64, probes []float64) bool {
		// Discretize to force duplicates; drop non-finite inputs.
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			xs = append(xs, math.Round(math.Mod(v, 50)))
		}
		tree := NewOSTree(7)
		for _, v := range xs {
			tree.Insert(v)
		}
		ref := newOracle(xs)
		if tree.Len() != len(xs) {
			return false
		}
		for _, pRaw := range probes {
			if math.IsNaN(pRaw) || math.IsInf(pRaw, 0) {
				continue
			}
			p := math.Round(math.Mod(pRaw, 60))
			if tree.RankLT(p) != ref.rankLT(p) {
				return false
			}
			if tree.RankLE(p) != ref.rankLE(p) {
				return false
			}
		}
		// Select is the inverse of rank.
		for r := 1; r <= len(xs); r++ {
			v, err := tree.Select(r)
			if err != nil {
				return false
			}
			if tree.RankLT(v) >= r || tree.RankLE(v) < r {
				return false
			}
			if v != ref.sorted[r-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOSTreeBalanced(t *testing.T) {
	t.Parallel()
	tree := NewOSTree(3)
	const n = 1 << 14
	// Adversarial sorted insertion order: a plain BST would degenerate to
	// height n.
	for i := 0; i < n; i++ {
		tree.Insert(float64(i))
	}
	// Expected treap height is O(log n); allow generous slack.
	if h := tree.Height(); h > 4*15 {
		t.Errorf("height %d too large for treap of %d sorted inserts", h, n)
	}
}

func TestOSTreeDeterministicShape(t *testing.T) {
	t.Parallel()
	build := func() int {
		tree := NewOSTree(11)
		for i := 0; i < 1000; i++ {
			tree.Insert(float64(i % 97))
		}
		return tree.Height()
	}
	if build() != build() {
		t.Error("same seed should yield identical tree shape")
	}
}

func BenchmarkOSTreeInsert(b *testing.B) {
	tree := NewOSTree(1)
	rng := stats.NewRNG(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tree.Insert(rng.Float64() * 1000)
	}
}

func BenchmarkOSTreeRank(b *testing.B) {
	tree := NewOSTree(1)
	rng := stats.NewRNG(2)
	for i := 0; i < 100000; i++ {
		tree.Insert(rng.Float64() * 1000)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tree.RankLE(float64(i % 1000))
	}
}
