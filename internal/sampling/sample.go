package sampling

import (
	"fmt"
	"sort"

	"privrange/internal/stats"
)

// Sample is one sampled instance shipped from a node to the base station:
// the value together with its local rank (1-based position in the node's
// sorted dataset D_i). The rank is what lets the broker's RankCounting
// estimator turn two sampled boundary instances into an exact interior
// count.
type Sample struct {
	Value float64
	Rank  int
}

// SampleSet is the rank-sorted collection of samples from one node, plus
// the node's dataset size n_i — everything the broker knows about node i.
type SampleSet struct {
	// Samples are sorted by rank (equivalently by value with ties in rank
	// order).
	Samples []Sample
	// N is n_i, the node's total dataset size. Nodes report it alongside
	// samples (a single integer, negligible cost).
	N int
}

// Validate checks structural invariants: ranks strictly increasing within
// [1, N] and values non-decreasing in rank order.
func (s *SampleSet) Validate() error {
	prevRank := 0
	prevValue := 0.0
	for i, smp := range s.Samples {
		if smp.Rank <= prevRank {
			return fmt.Errorf("sampling: sample %d rank %d not increasing (prev %d)", i, smp.Rank, prevRank)
		}
		if smp.Rank > s.N {
			return fmt.Errorf("sampling: sample %d rank %d exceeds dataset size %d", i, smp.Rank, s.N)
		}
		if i > 0 && smp.Value < prevValue {
			return fmt.Errorf("sampling: sample %d value %v decreases (prev %v)", i, smp.Value, prevValue)
		}
		prevRank = smp.Rank
		prevValue = smp.Value
	}
	return nil
}

// PredecessorStrict returns the sampled instance with the largest rank
// whose value is strictly less than l. ok is false when no sample lies
// below l — the paper's ω̄_p case.
//
// Strictness is what keeps RankCounting exactly unbiased on datasets with
// duplicate values: an instance equal to l belongs to the query range
// [l, u] itself, not to the overshoot region, so it must not be treated
// as a boundary predecessor.
func (s *SampleSet) PredecessorStrict(l float64) (Sample, bool) {
	// Samples are sorted by value; find the first index with value >= l.
	idx := sort.Search(len(s.Samples), func(i int) bool {
		return s.Samples[i].Value >= l
	})
	if idx == 0 {
		return Sample{}, false
	}
	return s.Samples[idx-1], true
}

// SuccessorStrict returns the sampled instance with the smallest rank
// whose value is strictly greater than u. ok is false when no sample lies
// above u — the paper's ω̄_s case.
func (s *SampleSet) SuccessorStrict(u float64) (Sample, bool) {
	idx := sort.Search(len(s.Samples), func(i int) bool {
		return s.Samples[i].Value > u
	})
	if idx == len(s.Samples) {
		return Sample{}, false
	}
	return s.Samples[idx], true
}

// CountInRange returns the number of *samples* with value in [l, u]. This
// is the numerator of the naive BasicCounting estimator. It returns an
// error when l > u.
func (s *SampleSet) CountInRange(l, u float64) (int, error) {
	if l > u {
		return 0, fmt.Errorf("sampling: range [%v, %v] has l > u", l, u)
	}
	lo := sort.Search(len(s.Samples), func(i int) bool {
		return s.Samples[i].Value >= l
	})
	hi := sort.Search(len(s.Samples), func(i int) bool {
		return s.Samples[i].Value > u
	})
	return hi - lo, nil
}

// Draw Bernoulli-samples the sorted node dataset: instance j (1-based rank
// in sorted order) is included independently with probability p. sorted
// must be in non-decreasing order; Draw returns an error otherwise, or
// when p is outside [0, 1].
func Draw(sorted []float64, p float64, rng *stats.RNG) (*SampleSet, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("sampling: probability %v outside [0, 1]", p)
	}
	if !sort.Float64sAreSorted(sorted) {
		return nil, fmt.Errorf("sampling: Draw requires sorted input")
	}
	set := &SampleSet{N: len(sorted)}
	for j, v := range sorted {
		if rng.Bernoulli(p) {
			set.Samples = append(set.Samples, Sample{Value: v, Rank: j + 1})
		}
	}
	return set, nil
}
