package telemetry

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the distributed-tracing half of the telemetry package:
// a compact wire-propagable SpanContext, a deterministic counting
// Sampler, and a lock-free SpanBuf ring that collects SpanRecords from
// every stage of a request (client send, server handler, coalesced
// batch, engine phases, per-shard scatter, WAL fsync).
//
// Determinism contract: nothing here draws randomness. Trace and span
// ids come from atomic counters (the trace-id counter is seeded from
// the process start time purely for cross-process distinctness), and
// sampling is a modular counter — so tracing can be reasoned about,
// replayed, and — critically — never perturbs the engine's keyed noise
// stream. All wall-clock reads live inside this package, which the
// detorder analyzer excludes from release-path hazard propagation:
// release code calls these helpers, never time.Now.
//
// Privacy contract: span names must be constants and span attributes
// carry only post-noise values, aggregate counts, durations and
// constant tags — never raw samples, un-noised estimates or raw node
// ids. The telemetrytaint analyzer enforces this for Annot/Annotate.

// DefaultSpanCapacity is the default span ring size (must be a power
// of two).
const DefaultSpanCapacity = 4096

// MaxSpanAttrs bounds the attributes one span record can carry.
const MaxSpanAttrs = 6

// SpanContext identifies one position in a distributed trace: which
// trace, which span, and whether the trace is sampled. The zero value
// is "not part of any trace".
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
	Sampled bool
}

// Valid reports whether the context belongs to a real trace.
func (c SpanContext) Valid() bool { return c.TraceID != 0 && c.SpanID != 0 }

// String renders the context in the market protocol's wire form:
// 16 hex digits of trace id, 16 of span id, and a 2-digit flags octet
// (bit 0 = sampled), dash-separated. The zero context renders "".
func (c SpanContext) String() string {
	if !c.Valid() {
		return ""
	}
	buf := make([]byte, 0, 36)
	buf = appendHex16(buf, c.TraceID)
	buf = append(buf, '-')
	buf = appendHex16(buf, c.SpanID)
	buf = append(buf, '-')
	if c.Sampled {
		buf = append(buf, '0', '1')
	} else {
		buf = append(buf, '0', '0')
	}
	return string(buf)
}

func appendHex16(dst []byte, v uint64) []byte {
	const digits = "0123456789abcdef"
	var tmp [16]byte
	for i := 15; i >= 0; i-- {
		tmp[i] = digits[v&0xf]
		v >>= 4
	}
	return append(dst, tmp[:]...)
}

// ParseSpanContext parses the String form. Unknown flag bits are
// ignored (forward compatibility); malformed input yields (zero,
// false) so a junk trace field degrades to "untraced", never an error.
func ParseSpanContext(s string) (SpanContext, bool) {
	if len(s) != 36 || s[16] != '-' || s[33] != '-' {
		return SpanContext{}, false
	}
	tid, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil {
		return SpanContext{}, false
	}
	sid, err := strconv.ParseUint(s[17:33], 16, 64)
	if err != nil {
		return SpanContext{}, false
	}
	flags, err := strconv.ParseUint(s[34:], 16, 8)
	if err != nil {
		return SpanContext{}, false
	}
	c := SpanContext{TraceID: tid, SpanID: sid, Sampled: flags&1 != 0}
	if !c.Valid() {
		return SpanContext{}, false
	}
	return c, true
}

// Sampler makes head-based sampling decisions with a modular atomic
// counter: every n-th Sample() call returns true. Deterministic (no
// randomness, no clock), allocation-free, nil-safe (never samples).
type Sampler struct {
	n   uint64
	ctr atomic.Uint64
}

// NewSampler returns a 1-in-n sampler. n <= 0 disables sampling
// (Sample always false); n == 1 samples everything.
func NewSampler(n int) *Sampler {
	if n <= 0 {
		return &Sampler{}
	}
	return &Sampler{n: uint64(n)}
}

// Sample reports whether this request should be traced.
func (s *Sampler) Sample() bool {
	if s == nil || s.n == 0 {
		return false
	}
	return s.ctr.Add(1)%s.n == 0
}

// Rate returns the configured n of 1-in-n (0 = disabled).
func (s *Sampler) Rate() int {
	if s == nil {
		return 0
	}
	return int(s.n)
}

// SpanRecord is one completed span. Records are plain values: Emit
// copies them into the ring, snapshots copy them out.
type SpanRecord struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	// Name must be a constant (telemetrytaint).
	Name string
	// Start is UnixNano; Dur is nanoseconds.
	Start int64
	Dur   int64
	// Attrs[:NAttrs] are constant-key annotations. Values must stay on
	// the clean side of the privacy boundary (telemetrytaint checks
	// Annot call sites).
	Attrs  [MaxSpanAttrs]Label
	NAttrs int
	// Links are other spans causally related but not parents — a
	// coalesced batch span links every folded sale's handler span.
	// Emit takes ownership of the slice.
	Links []SpanContext
}

// Annot appends one attribute; extras beyond MaxSpanAttrs are dropped.
func (r *SpanRecord) Annot(key, value string) {
	if r == nil || r.NAttrs >= MaxSpanAttrs {
		return
	}
	r.Attrs[r.NAttrs] = Label{Key: key, Value: value}
	r.NAttrs++
}

// Attr returns the value of the named attribute ("" when absent).
func (r *SpanRecord) Attr(key string) string {
	for i := 0; i < r.NAttrs; i++ {
		if r.Attrs[i].Key == key {
			return r.Attrs[i].Value
		}
	}
	return ""
}

// Slot states for the span ring.
const (
	slotEmpty uint32 = iota
	slotBusy         // one writer or one reader owns the record
	slotFull
)

type spanSlot struct {
	state atomic.Uint32
	rec   SpanRecord
}

// SpanBuf is a lock-free ring of completed spans. Writers reserve a
// slot with one atomic add and take per-slot ownership with one CAS —
// there is no global lock on the emit path, so per-shard scatter
// goroutines and concurrent connection handlers never serialize on
// tracing. A writer spins only when a snapshot reader holds its exact
// slot mid-copy (rare and bounded). The ring overwrites oldest spans;
// Emitted counts everything ever recorded so tests can detect loss.
type SpanBuf struct {
	ids    atomic.Uint64 // span-id allocator
	traces atomic.Uint64 // trace-id allocator (seeded at construction)
	cursor atomic.Uint64 // ring write cursor
	total  atomic.Uint64 // spans ever emitted
	mask   uint64
	slots  []spanSlot
	attr   *Attribution // optional per-stage latency aggregation
}

// NewSpanBuf returns a span ring holding the last capacity spans
// (rounded up to a power of two, minimum 16).
func NewSpanBuf(capacity int) *SpanBuf {
	size := 16
	for size < capacity {
		size <<= 1
	}
	b := &SpanBuf{mask: uint64(size - 1), slots: make([]spanSlot, size)}
	// Seed trace ids from the clock once, at construction, so traces
	// from different processes are distinguishable in a shared store.
	// This is the only clock read that influences ids, and ids never
	// influence released answers.
	b.traces.Store(uint64(time.Now().UnixNano()) << 12)
	return b
}

// NextSpanID allocates a fresh span id. Nil-safe (returns 0).
func (b *SpanBuf) NextSpanID() uint64 {
	if b == nil {
		return 0
	}
	return b.ids.Add(1)
}

// NewRoot allocates a fresh sampled root context — the client side of
// a trace: the span id is the client's own span. Nil-safe (returns
// the zero context).
func (b *SpanBuf) NewRoot() SpanContext {
	if b == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: b.traces.Add(1), SpanID: b.ids.Add(1), Sampled: true}
}

// NewTrace allocates a fresh sampled trace with no parent span — a
// server-originated trace root (the first operation span becomes the
// tree root). Not serializable (String requires a span id); use
// NewRoot for contexts that cross the wire. Nil-safe.
func (b *SpanBuf) NewTrace() SpanContext {
	if b == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: b.traces.Add(1), Sampled: true}
}

// Emit records one completed span. Takes ownership of rec.Links.
// Nil-safe; spans without a trace id are dropped.
func (b *SpanBuf) Emit(rec *SpanRecord) {
	if b == nil || rec == nil || rec.TraceID == 0 {
		return
	}
	if rec.SpanID == 0 {
		rec.SpanID = b.ids.Add(1)
	}
	i := b.cursor.Add(1)
	s := &b.slots[i&b.mask]
	for {
		st := s.state.Load()
		if st != slotBusy && s.state.CompareAndSwap(st, slotBusy) {
			break
		}
	}
	s.rec = *rec
	s.state.Store(slotFull)
	b.total.Add(1)
	b.attr.observeSpan(rec)
}

// Emitted returns how many spans were ever emitted (including those
// already overwritten).
func (b *SpanBuf) Emitted() uint64 {
	if b == nil {
		return 0
	}
	return b.total.Load()
}

// Capacity returns the ring size.
func (b *SpanBuf) Capacity() int {
	if b == nil {
		return 0
	}
	return len(b.slots)
}

// SnapshotSpans copies out every retained span, ordered oldest-first
// by ring position. Links are deep-copied, so the result is safe to
// hold and marshal.
func (b *SpanBuf) SnapshotSpans() []SpanRecord {
	if b == nil {
		return nil
	}
	out := make([]SpanRecord, 0, len(b.slots))
	cur := b.cursor.Load()
	for off := uint64(0); off < uint64(len(b.slots)); off++ {
		s := &b.slots[(cur+1+off)&b.mask]
		if !s.state.CompareAndSwap(slotFull, slotBusy) {
			continue // empty, or a writer owns it right now
		}
		rec := s.rec
		rec.Links = append([]SpanContext(nil), s.rec.Links...)
		s.state.Store(slotFull)
		out = append(out, rec)
	}
	return out
}

// EmitTrace converts a completed stack Trace into distributed spans:
// one span for the operation (parented on the trace's wire context)
// and one child span per recorded phase, with phase start times
// reconstructed from the cumulative phase durations. No-op unless the
// trace was begun with a sampled context (BeginCtx).
func (b *SpanBuf) EmitTrace(t *Trace) {
	if b == nil || t == nil || !t.on || t.self == 0 {
		return
	}
	root := SpanRecord{
		TraceID:  t.Ctx.TraceID,
		SpanID:   t.self,
		ParentID: t.Ctx.SpanID,
		Name:     t.Op,
		Start:    t.Start.UnixNano(),
		Dur:      t.Total.Nanoseconds(),
		Attrs:    t.Attrs,
		NAttrs:   t.NAttrs,
		Links:    t.Links,
	}
	if t.Outcome != "" {
		root.Annot("outcome", t.Outcome)
	}
	b.Emit(&root)
	off := root.Start
	for i := 0; i < t.NumSpans; i++ {
		sp := SpanRecord{
			TraceID:  t.Ctx.TraceID,
			ParentID: t.self,
			Name:     t.Op + "." + t.Spans[i].Name,
			Start:    off,
			Dur:      t.Spans[i].Duration.Nanoseconds(),
		}
		if ds := root.Attr("dataset"); ds != "" {
			sp.Annot("dataset", ds)
		}
		b.Emit(&sp)
		off += t.Spans[i].Duration.Nanoseconds()
	}
}

// StartStamp returns a wall-clock stamp for a span about to be timed
// under sc, or 0 when sc is unsampled — so callers outside this
// package never read the clock themselves (detorder) and unsampled
// requests skip the read entirely.
func StartStamp(sc SpanContext) int64 {
	if !sc.Sampled || sc.TraceID == 0 {
		return 0
	}
	return time.Now().UnixNano()
}

// EmitSince emits a span named name under sc covering start→now.
// No-op when start is 0 (the unsampled StartStamp result). Nil-safe.
func (b *SpanBuf) EmitSince(name string, sc SpanContext, start int64) {
	if b == nil || start == 0 || !sc.Sampled || sc.TraceID == 0 {
		return
	}
	b.Emit(&SpanRecord{
		TraceID:  sc.TraceID,
		ParentID: sc.SpanID,
		Name:     name,
		Start:    start,
		Dur:      time.Now().UnixNano() - start,
	})
}

// EmitRootSince is EmitSince for the span identified by sc itself —
// the trace originator's own root span (parent 0), e.g. a client's
// send→receive span around a wire request it stamped with NewRoot.
func (b *SpanBuf) EmitRootSince(name string, sc SpanContext, start int64) {
	if b == nil || start == 0 || !sc.Sampled || !sc.Valid() {
		return
	}
	b.Emit(&SpanRecord{
		TraceID: sc.TraceID,
		SpanID:  sc.SpanID,
		Name:    name,
		Start:   start,
		Dur:     time.Now().UnixNano() - start,
	})
}

// SpanGroup stamps sibling spans — one per shard of a scatter — under
// a common parent without any clock reads in the caller: StartShard
// and EndShard read the clock here, inside the detorder-excluded
// telemetry package, so the scatter path itself stays clean. A nil
// group is inert, so unsampled requests cost two nil checks.
type SpanGroup struct {
	buf     *SpanBuf
	parent  SpanContext
	name    string
	dataset string
}

// NewSpanGroup returns a group emitting name spans under parent, or
// nil when the parent is unsampled (so callers pass the group along
// unconditionally).
func (b *SpanBuf) NewSpanGroup(name, dataset string, parent SpanContext) *SpanGroup {
	if b == nil || !parent.Sampled || !parent.Valid() {
		return nil
	}
	return &SpanGroup{buf: b, parent: parent, name: name, dataset: dataset}
}

// StartShard returns an opaque start stamp (0 on a nil group).
func (g *SpanGroup) StartShard() int64 {
	if g == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// EndShard emits one shard span covering start→now. Safe to call from
// per-shard goroutines concurrently: Emit is lock-free.
func (g *SpanGroup) EndShard(shard int, start int64) {
	if g == nil || start == 0 {
		return
	}
	rec := SpanRecord{
		TraceID:  g.parent.TraceID,
		ParentID: g.parent.SpanID,
		Name:     g.name,
		Start:    start,
		Dur:      time.Now().UnixNano() - start,
	}
	rec.Annot("shard", itoa(shard))
	if g.dataset != "" {
		rec.Annot("dataset", g.dataset)
	}
	g.buf.Emit(&rec)
}

// itoa is an allocation-free strconv.Itoa for small non-negative ints
// (shard indexes); larger values fall back to strconv.
func itoa(n int) string {
	if n >= 0 && n < len(smallInts) {
		return smallInts[n]
	}
	return strconv.Itoa(n)
}

var smallInts = func() [128]string {
	var a [128]string
	for i := range a {
		a[i] = strconv.Itoa(i)
	}
	return a
}()

// Attribution aggregates per-stage self-time from the sampled span
// stream into exact-bucket histograms keyed by (stage, dataset,
// shard), so the ops snapshot can answer "p99 is fsync-bound on shard
// 3" without storing every span. Quantiles from a 1-in-n head-sampled
// stream are unbiased; counts are sampled counts.
type Attribution struct {
	reg *Registry
	mu  sync.RWMutex
	hs  map[stageKey]*Histogram
}

type stageKey struct {
	stage, dataset, shard string
}

// StageSecondsMetric is the metric family attribution observes into.
const StageSecondsMetric = "privrange_stage_seconds"

func newAttribution(reg *Registry) *Attribution {
	return &Attribution{reg: reg, hs: make(map[stageKey]*Histogram)}
}

// observeSpan feeds one emitted span into the stage histograms. The
// fast path (series already registered) is a shared-lock map hit with
// a struct key: no allocation.
func (a *Attribution) observeSpan(rec *SpanRecord) {
	if a == nil || rec.Dur < 0 {
		return
	}
	key := stageKey{stage: rec.Name, dataset: rec.Attr("dataset"), shard: rec.Attr("shard")}
	a.mu.RLock()
	h, ok := a.hs[key]
	a.mu.RUnlock()
	if !ok {
		h = a.reg.Histogram(StageSecondsMetric,
			"per-stage self-time from the sampled span stream", LatencyBuckets,
			L("stage", key.stage), L("dataset", key.dataset), L("shard", key.shard))
		a.mu.Lock()
		if prev, dup := a.hs[key]; dup {
			h = prev
		} else {
			a.hs[key] = h
		}
		a.mu.Unlock()
	}
	h.Observe(float64(rec.Dur) / 1e9)
}
