package telemetry

import (
	"sync"
	"time"
)

// SLO support: declared latency/availability objectives with
// multi-window burn-rate gauges, per the classic error-budget model.
// An objective says "at least Target of requests must be good over
// time"; a request is good when it succeeded and (for latency
// objectives) finished under Threshold. The burn rate over a window is
//
//	burn = badFraction / (1 - Target)
//
// so burn 1.0 means "consuming error budget exactly as fast as the
// objective allows", and a page-worthy fast burn shows up as, say,
// burn ≥ 14 on the short window. Each window is a ring of 60 coarse
// buckets rotated by wall time; gauges are refreshed lazily on scrape
// (the Registry's scrape hooks), so steady-state request cost is one
// short mutex hold.

// Objective declares one SLO.
type Objective struct {
	// Name labels the slo gauge series, e.g. "buy_latency".
	Name string
	// Target is the required good fraction, e.g. 0.99.
	Target float64
	// Threshold is the latency bound defining "good" (0 = availability
	// objective: any ok request is good).
	Threshold time.Duration
	// Windows are the burn-rate evaluation windows (default 5m and 1h).
	Windows []time.Duration
}

// DefaultSLOWindows are the burn windows used when an Objective leaves
// Windows nil: a fast window for paging and a slow one for trend.
var DefaultSLOWindows = []time.Duration{5 * time.Minute, time.Hour}

// sloWindowBuckets is the ring resolution per window.
const sloWindowBuckets = 60

// BurnRateMetric is the gauge family SLO burn rates are exported as,
// labeled {slo, window}.
const BurnRateMetric = "privrange_slo_burn_rate"

type sloBucket struct {
	epoch int64 // bucket index in gran units; stale buckets are zeroed lazily
	good  uint64
	total uint64
}

type sloWindow struct {
	width   time.Duration
	gran    int64 // bucket width, ns
	buckets [sloWindowBuckets]sloBucket
	burn    *Gauge
}

// SLO tracks one objective. Obtain from Registry.SLO; methods are
// safe for concurrent use and nil-safe.
type SLO struct {
	name        string
	target      float64
	thresholdNS int64
	mu          sync.Mutex
	windows     []*sloWindow
	good        *Counter
	total       *Counter
}

// SLO registers (or retrieves) the named objective, its lifetime
// good/total counters, and one burn-rate gauge per window, and hooks
// gauge refresh into scrapes. Nil-safe (returns a nil, inert SLO).
func (r *Registry) SLO(o Objective) *SLO {
	if r == nil {
		return nil
	}
	windows := o.Windows
	if len(windows) == 0 {
		windows = DefaultSLOWindows
	}
	s := &SLO{
		name:        o.Name,
		target:      o.Target,
		thresholdNS: o.Threshold.Nanoseconds(),
		good: r.Counter("privrange_slo_good_total", "requests meeting the objective",
			L("slo", o.Name)),
		total: r.Counter("privrange_slo_requests_total", "requests evaluated against the objective",
			L("slo", o.Name)),
	}
	for _, w := range windows {
		if w <= 0 {
			continue
		}
		gran := w.Nanoseconds() / sloWindowBuckets
		if gran < 1 {
			gran = 1
		}
		s.windows = append(s.windows, &sloWindow{
			width: w,
			gran:  gran,
			burn: r.Gauge(BurnRateMetric, "error-budget burn rate (1.0 = exactly on budget)",
				L("slo", o.Name), L("window", w.String())),
		})
	}
	r.onScrape(func() { s.Refresh() })
	return s
}

// Observe records one request outcome against the objective.
func (s *SLO) Observe(d time.Duration, ok bool) {
	if s == nil {
		return
	}
	goodReq := ok && (s.thresholdNS == 0 || d.Nanoseconds() <= s.thresholdNS)
	s.total.Inc()
	if goodReq {
		s.good.Inc()
	}
	now := time.Now().UnixNano()
	s.mu.Lock()
	for _, w := range s.windows {
		b := w.bucketAt(now)
		b.total++
		if goodReq {
			b.good++
		}
	}
	s.mu.Unlock()
}

// bucketAt returns the live bucket for time now, zeroing it first if
// it still holds counts from a previous rotation. Callers hold s.mu.
func (w *sloWindow) bucketAt(now int64) *sloBucket {
	e := now / w.gran
	b := &w.buckets[int(e%sloWindowBuckets)]
	if b.epoch != e {
		b.epoch, b.good, b.total = e, 0, 0
	}
	return b
}

// Refresh recomputes every window's burn-rate gauge from the buckets
// still inside the window. Called from registry scrape hooks; safe to
// call directly (tests).
func (s *SLO) Refresh() {
	if s == nil {
		return
	}
	now := time.Now().UnixNano()
	s.mu.Lock()
	for _, w := range s.windows {
		minEpoch := now/w.gran - sloWindowBuckets + 1
		var good, total uint64
		for i := range w.buckets {
			b := &w.buckets[i]
			if b.epoch >= minEpoch {
				good += b.good
				total += b.total
			}
		}
		w.burn.Set(burnRate(good, total, s.target))
	}
	s.mu.Unlock()
}

// burnRate maps a window's good/total counts to an error-budget burn
// rate. No traffic means no burn; a target of 1.0 has no budget, so
// any bad request is infinite burn — we saturate at a large finite
// value to keep the exposition JSON-friendly.
func burnRate(good, total uint64, target float64) float64 {
	if total == 0 {
		return 0
	}
	bad := float64(total-good) / float64(total)
	budget := 1 - target
	if budget <= 0 {
		if bad == 0 {
			return 0
		}
		return 1e9
	}
	rate := bad / budget
	if rate > 1e9 {
		rate = 1e9
	}
	return rate
}
