package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): families sorted by name, one
// HELP/TYPE header per family, histogram buckets cumulative with an
// explicit +Inf bucket plus _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.runScrapeHooks()
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	histograms := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		histograms = append(histograms, h)
	}
	r.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool {
		return counters[i].name+counters[i].lbls < counters[j].name+counters[j].lbls
	})
	sort.Slice(gauges, func(i, j int) bool {
		return gauges[i].name+gauges[i].lbls < gauges[j].name+gauges[j].lbls
	})
	sort.Slice(histograms, func(i, j int) bool {
		return histograms[i].name+histograms[i].lbls < histograms[j].name+histograms[j].lbls
	})

	lastFamily := ""
	for _, c := range counters {
		if err := writeHeader(w, &lastFamily, c.name, c.help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", c.name, c.lbls, c.Value()); err != nil {
			return err
		}
	}
	lastFamily = ""
	for _, g := range gauges {
		if err := writeHeader(w, &lastFamily, g.name, g.help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", g.name, g.lbls, formatFloat(g.Value())); err != nil {
			return err
		}
	}
	lastFamily = ""
	for _, h := range histograms {
		if err := writeHeader(w, &lastFamily, h.name, h.help, "histogram"); err != nil {
			return err
		}
		if err := writeHistogram(w, h); err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, lastFamily *string, name, help, typ string) error {
	if name == *lastFamily {
		return nil
	}
	*lastFamily = name
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

func writeHistogram(w io.Writer, h *Histogram) error {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			h.name, withLabel(h.lbls, "le", formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, withLabel(h.lbls, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", h.name, h.lbls, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", h.name, h.lbls, h.count.Load())
	return err
}

// withLabel merges one extra label pair into an already-rendered label
// suffix (which may be empty).
func withLabel(suffix, key, value string) string {
	pair := key + `="` + escapeLabelValue(value) + `"`
	if suffix == "" {
		return "{" + pair + "}"
	}
	return suffix[:len(suffix)-1] + "," + pair + "}"
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot is the JSON form of everything the registry holds: metric
// values, the retained traces and the retained events. It is a copy —
// safe to hold, marshal and diff.
type Snapshot struct {
	Time       time.Time           `json:"time"`
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
	Traces     []TraceSnapshot     `json:"traces,omitempty"`
	Events     []Event             `json:"events,omitempty"`
}

// CounterSnapshot is one counter's point-in-time value.
type CounterSnapshot struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  uint64 `json:"value"`
}

// GaugeSnapshot is one gauge's point-in-time value.
type GaugeSnapshot struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// HistogramSnapshot is one histogram's point-in-time state; Buckets[i]
// counts observations ≤ Bounds[i] (non-cumulative, one overflow bucket
// appended).
type HistogramSnapshot struct {
	Name    string    `json:"name"`
	Labels  string    `json:"labels,omitempty"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
}

// TraceSnapshot is one trace in wire form.
type TraceSnapshot struct {
	ID      uint64         `json:"id"`
	Op      string         `json:"op"`
	Outcome string         `json:"outcome"`
	Start   time.Time      `json:"start"`
	TotalNS int64          `json:"total_ns"`
	Spans   []SpanSnapshot `json:"spans"`
}

// SpanSnapshot is one phase in wire form.
type SpanSnapshot struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
}

// SpanWire is one distributed span in /traces wire form. Ids are hex
// strings (64-bit ids survive JSON number precision limits that way).
type SpanWire struct {
	TraceID string            `json:"trace_id"`
	SpanID  string            `json:"span_id"`
	Parent  string            `json:"parent_id,omitempty"`
	Name    string            `json:"name"`
	Start   int64             `json:"start_unix_ns"`
	DurNS   int64             `json:"duration_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Links   []string          `json:"links,omitempty"`
}

// TraceWire is the /traces payload: every retained span plus loss
// accounting, grouped nowhere — consumers (cmd/privquery trace) group
// by trace id.
type TraceWire struct {
	Time     time.Time  `json:"time"`
	Emitted  uint64     `json:"spans_emitted"`
	Retained int        `json:"spans_retained"`
	Spans    []SpanWire `json:"spans"`
}

func hex16(v uint64) string {
	if v == 0 {
		return ""
	}
	return string(appendHex16(nil, v))
}

// TraceSpans copies the distributed span ring into wire form.
func (r *Registry) TraceSpans() TraceWire {
	tw := TraceWire{Time: time.Now()}
	if r == nil {
		return tw
	}
	recs := r.spans.SnapshotSpans()
	tw.Emitted = r.spans.Emitted()
	tw.Retained = len(recs)
	tw.Spans = make([]SpanWire, 0, len(recs))
	for i := range recs {
		rec := &recs[i]
		sw := SpanWire{
			TraceID: hex16(rec.TraceID),
			SpanID:  hex16(rec.SpanID),
			Parent:  hex16(rec.ParentID),
			Name:    rec.Name,
			Start:   rec.Start,
			DurNS:   rec.Dur,
		}
		if rec.NAttrs > 0 {
			sw.Attrs = make(map[string]string, rec.NAttrs)
			for j := 0; j < rec.NAttrs; j++ {
				sw.Attrs[rec.Attrs[j].Key] = rec.Attrs[j].Value
			}
		}
		for _, l := range rec.Links {
			sw.Links = append(sw.Links, l.String())
		}
		tw.Spans = append(tw.Spans, sw)
	}
	sort.Slice(tw.Spans, func(i, j int) bool {
		if tw.Spans[i].TraceID != tw.Spans[j].TraceID {
			return tw.Spans[i].TraceID < tw.Spans[j].TraceID
		}
		return tw.Spans[i].Start < tw.Spans[j].Start
	})
	return tw
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Time: time.Now()}
	if r == nil {
		return snap
	}
	r.runScrapeHooks()
	r.mu.Lock()
	for _, c := range r.counters {
		snap.Counters = append(snap.Counters, CounterSnapshot{Name: c.name, Labels: c.lbls, Value: c.Value()})
	}
	for _, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: g.name, Labels: g.lbls, Value: g.Value()})
	}
	for _, h := range r.histograms {
		hs := HistogramSnapshot{
			Name:   h.name,
			Labels: h.lbls,
			Bounds: append([]float64(nil), h.bounds...),
			Count:  h.count.Load(),
			Sum:    h.Sum(),
		}
		hs.Buckets = make([]uint64, len(h.buckets))
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	r.mu.Unlock()

	sort.Slice(snap.Counters, func(i, j int) bool {
		return snap.Counters[i].Name+snap.Counters[i].Labels < snap.Counters[j].Name+snap.Counters[j].Labels
	})
	sort.Slice(snap.Gauges, func(i, j int) bool {
		return snap.Gauges[i].Name+snap.Gauges[i].Labels < snap.Gauges[j].Name+snap.Gauges[j].Labels
	})
	sort.Slice(snap.Histograms, func(i, j int) bool {
		return snap.Histograms[i].Name+snap.Histograms[i].Labels < snap.Histograms[j].Name+snap.Histograms[j].Labels
	})

	for _, tr := range r.tracer.Recent(r.tracer.Capacity()) {
		ts := TraceSnapshot{
			ID:      tr.ID,
			Op:      tr.Op,
			Outcome: tr.Outcome,
			Start:   tr.Start,
			TotalNS: tr.Total.Nanoseconds(),
		}
		for i := 0; i < tr.NumSpans; i++ {
			ts.Spans = append(ts.Spans, SpanSnapshot{Name: tr.Spans[i].Name, DurationNS: tr.Spans[i].Duration.Nanoseconds()})
		}
		snap.Traces = append(snap.Traces, ts)
	}
	snap.Events = r.events.Events()
	return snap
}
