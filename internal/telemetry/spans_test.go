package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanContextStringRoundTrip(t *testing.T) {
	cases := []SpanContext{
		{TraceID: 1, SpanID: 2, Sampled: true},
		{TraceID: 0xdeadbeefcafef00d, SpanID: 0x0123456789abcdef, Sampled: false},
		{TraceID: ^uint64(0), SpanID: 1, Sampled: true},
	}
	for _, c := range cases {
		s := c.String()
		if len(s) != 36 {
			t.Fatalf("String(%+v) = %q: want 36 chars", c, s)
		}
		got, ok := ParseSpanContext(s)
		if !ok || got != c {
			t.Fatalf("roundtrip %+v via %q: got %+v ok=%v", c, s, got, ok)
		}
	}
	if s := (SpanContext{}).String(); s != "" {
		t.Fatalf("zero context String() = %q: want empty", s)
	}
}

func TestParseSpanContextMalformed(t *testing.T) {
	valid := SpanContext{TraceID: 7, SpanID: 9, Sampled: true}.String()
	bad := []string{
		"",
		"short",
		valid[:34],
		valid + "0",
		strings.Replace(valid, "-", "x", 1),
		strings.Repeat("g", 36),
		// zero ids are structurally valid hex but not a real trace
		SpanContext{TraceID: 1, SpanID: 1, Sampled: true}.String()[:17] + "0000000000000000-01",
	}
	for _, s := range bad {
		if got, ok := ParseSpanContext(s); ok {
			t.Fatalf("ParseSpanContext(%q) = %+v, ok: want rejection", s, got)
		} else if got != (SpanContext{}) {
			t.Fatalf("ParseSpanContext(%q) rejected but returned %+v: want zero", s, got)
		}
	}
	// Unknown flag bits are tolerated, only bit 0 is read.
	if got, ok := ParseSpanContext(valid[:34] + "ff"); !ok || !got.Sampled {
		t.Fatalf("flag ff: got %+v ok=%v, want sampled", got, ok)
	}
}

func TestSamplerModular(t *testing.T) {
	s := NewSampler(4)
	hits := 0
	for i := 0; i < 400; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-4 sampler: %d hits in 400, want 100", hits)
	}
	always := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !always.Sample() {
			t.Fatal("1-in-1 sampler returned false")
		}
	}
	for _, off := range []*Sampler{NewSampler(0), NewSampler(-3), nil} {
		if off.Sample() {
			t.Fatal("disabled sampler returned true")
		}
	}
	if NewSampler(64).Rate() != 64 {
		t.Fatal("Rate mismatch")
	}
}

func TestSpanBufEmitAndSnapshot(t *testing.T) {
	b := NewSpanBuf(16)
	root := b.NewRoot()
	if !root.Valid() || !root.Sampled {
		t.Fatalf("NewRoot() = %+v: want valid sampled", root)
	}
	rec := SpanRecord{TraceID: root.TraceID, SpanID: root.SpanID, Name: "client.request", Start: 100, Dur: 50}
	rec.Annot("dataset", "air")
	b.Emit(&rec)
	b.Emit(&SpanRecord{TraceID: root.TraceID, ParentID: root.SpanID, Name: "market.buy", Start: 110, Dur: 30})
	// Untraced spans are dropped.
	b.Emit(&SpanRecord{Name: "orphan"})
	if got := b.Emitted(); got != 2 {
		t.Fatalf("Emitted() = %d, want 2", got)
	}
	recs := b.SnapshotSpans()
	if len(recs) != 2 {
		t.Fatalf("snapshot holds %d spans, want 2", len(recs))
	}
	byName := make(map[string]SpanRecord)
	for _, r := range recs {
		byName[r.Name] = r
	}
	cl := byName["client.request"]
	if cl.SpanID != root.SpanID || cl.Attr("dataset") != "air" {
		t.Fatalf("client span wrong: %+v", cl)
	}
	if buy := byName["market.buy"]; buy.ParentID != root.SpanID || buy.SpanID == 0 {
		t.Fatalf("buy span parentage wrong: %+v (want parent %d, auto span id)", buy, root.SpanID)
	}
}

func TestSpanBufOverwritesOldest(t *testing.T) {
	b := NewSpanBuf(16)
	for i := 0; i < 100; i++ {
		b.Emit(&SpanRecord{TraceID: 1, Name: "s", Start: int64(i)})
	}
	if got := b.Emitted(); got != 100 {
		t.Fatalf("Emitted() = %d, want 100", got)
	}
	recs := b.SnapshotSpans()
	if len(recs) != b.Capacity() {
		t.Fatalf("snapshot holds %d, want capacity %d", len(recs), b.Capacity())
	}
	for _, r := range recs {
		if r.Start < 100-int64(b.Capacity()) {
			t.Fatalf("span start %d survived: ring did not overwrite oldest", r.Start)
		}
	}
}

// TestSpanBufConcurrentEmit drives emitters and snapshotters together;
// under -race this is the lock-freedom proof, and afterwards no span
// may be lost or cross-wired (every record intact and attributable).
func TestSpanBufConcurrentEmit(t *testing.T) {
	b := NewSpanBuf(64)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := SpanRecord{TraceID: uint64(w + 1), Name: "core.shard_scatter", Start: int64(i), Dur: 1}
				rec.Annot("shard", itoa(w))
				b.Emit(&rec)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, r := range b.SnapshotSpans() {
				if r.TraceID == 0 || r.TraceID > workers || r.Name != "core.shard_scatter" {
					panic("snapshot read a torn or cross-wired span")
				}
				if r.Attr("shard") != itoa(int(r.TraceID-1)) {
					panic("span attrs cross-wired between emitters")
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := b.Emitted(); got != workers*per {
		t.Fatalf("Emitted() = %d, want %d (lost spans)", got, workers*per)
	}
}

func TestEmitTraceBuildsSpanTree(t *testing.T) {
	b := NewSpanBuf(64)
	parent := b.NewRoot()

	var tr Trace
	tr.BeginCtx("market.buy", parent, b)
	if !tr.Sampled() {
		t.Fatal("BeginCtx with sampled parent: trace not sampled")
	}
	tr.Annotate("dataset", "ozone")
	linked := SpanContext{TraceID: parent.TraceID, SpanID: 999, Sampled: true}
	tr.Link(linked)
	tr.Mark("answer")
	tr.Mark("journal")
	tr.End("ok")
	NewTracer(4).Record(&tr)

	recs := b.SnapshotSpans()
	var root *SpanRecord
	children := make(map[string]SpanRecord)
	for i := range recs {
		if recs[i].Name == "market.buy" {
			root = &recs[i]
		} else {
			children[recs[i].Name] = recs[i]
		}
	}
	if root == nil {
		t.Fatalf("no operation span among %d records", len(recs))
	}
	if root.TraceID != parent.TraceID || root.ParentID != parent.SpanID {
		t.Fatalf("op span not parented on wire context: %+v (parent %+v)", root, parent)
	}
	if root.Attr("dataset") != "ozone" || root.Attr("outcome") != "ok" {
		t.Fatalf("op span attrs wrong: %+v", root.Attrs[:root.NAttrs])
	}
	if len(root.Links) != 1 || root.Links[0] != linked {
		t.Fatalf("op span links wrong: %+v", root.Links)
	}
	if len(children) != 2 {
		t.Fatalf("want 2 phase children, got %v", children)
	}
	ans, jr := children["market.buy.answer"], children["market.buy.journal"]
	if ans.ParentID != root.SpanID || jr.ParentID != root.SpanID {
		t.Fatalf("phase spans not parented on op span %d: %+v / %+v", root.SpanID, ans, jr)
	}
	if ans.Attr("dataset") != "ozone" {
		t.Fatalf("dataset attr not propagated to phase span: %+v", ans)
	}
	if jr.Start != ans.Start+ans.Dur {
		t.Fatalf("phase starts not cumulative: answer %d+%d, journal %d", ans.Start, ans.Dur, jr.Start)
	}
}

func TestBeginCtxUnsampledDegrades(t *testing.T) {
	b := NewSpanBuf(16)
	var tr Trace
	tr.BeginCtx("market.buy", SpanContext{}, b)
	tr.Mark("answer")
	tr.End("ok")
	if tr.Sampled() || tr.SpanCtx() != (SpanContext{}) {
		t.Fatal("unsampled BeginCtx produced a sampled trace")
	}
	NewTracer(4).Record(&tr)
	if b.Emitted() != 0 {
		t.Fatal("unsampled trace emitted distributed spans")
	}
}

func TestStartStampAndEmitSince(t *testing.T) {
	b := NewSpanBuf(16)
	if StartStamp(SpanContext{}) != 0 {
		t.Fatal("StartStamp of unsampled context must be 0")
	}
	parent := b.NewRoot()
	start := StartStamp(parent)
	if start == 0 {
		t.Fatal("StartStamp of sampled context must be nonzero")
	}
	b.EmitSince("wal.fsync", parent, start)
	b.EmitSince("wal.fsync", SpanContext{}, 0) // no-op
	b.EmitRootSince("client.request", parent, start)
	recs := b.SnapshotSpans()
	if len(recs) != 2 {
		t.Fatalf("want 2 spans, got %d", len(recs))
	}
	for _, r := range recs {
		switch r.Name {
		case "wal.fsync":
			if r.ParentID != parent.SpanID || r.SpanID == parent.SpanID {
				t.Fatalf("EmitSince span wrong: %+v", r)
			}
		case "client.request":
			if r.SpanID != parent.SpanID || r.ParentID != 0 {
				t.Fatalf("EmitRootSince span wrong: %+v", r)
			}
		default:
			t.Fatalf("unexpected span %q", r.Name)
		}
		if r.Dur < 0 {
			t.Fatalf("negative duration: %+v", r)
		}
	}
}

func TestSpanGroupShards(t *testing.T) {
	b := NewSpanBuf(16)
	if g := b.NewSpanGroup("core.shard_scatter", "air", SpanContext{}); g != nil {
		t.Fatal("unsampled parent must yield a nil group")
	}
	var nilGroup *SpanGroup
	if nilGroup.StartShard() != 0 {
		t.Fatal("nil group StartShard must be 0")
	}
	nilGroup.EndShard(0, 0) // must not panic

	parent := b.NewRoot()
	g := b.NewSpanGroup("core.shard_scatter", "air", parent)
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			start := g.StartShard()
			g.EndShard(s, start)
		}(s)
	}
	wg.Wait()
	recs := b.SnapshotSpans()
	if len(recs) != 4 {
		t.Fatalf("want 4 shard spans, got %d", len(recs))
	}
	seen := make(map[string]bool)
	for _, r := range recs {
		if r.ParentID != parent.SpanID || r.Name != "core.shard_scatter" || r.Attr("dataset") != "air" {
			t.Fatalf("shard span wrong: %+v", r)
		}
		seen[r.Attr("shard")] = true
	}
	for s := 0; s < 4; s++ {
		if !seen[itoa(s)] {
			t.Fatalf("shard %d span missing (have %v)", s, seen)
		}
	}
}

func TestAttributionFeedsStageHistograms(t *testing.T) {
	r := NewRegistry()
	b := r.Spans()
	parent := b.NewRoot()
	g := b.NewSpanGroup("core.shard_scatter", "air", parent)
	g.EndShard(3, g.StartShard())
	b.EmitSince("wal.fsync", parent, StartStamp(parent))

	snap := r.Snapshot()
	found := make(map[string]bool)
	for _, h := range snap.Histograms {
		if h.Name == StageSecondsMetric && h.Count > 0 {
			found[h.Labels] = true
		}
	}
	wantShard := `{dataset="air",shard="3",stage="core.shard_scatter"}`
	wantFsync := `{dataset="",shard="",stage="wal.fsync"}`
	if !found[wantShard] || !found[wantFsync] {
		t.Fatalf("stage histograms missing: have %v, want %q and %q", found, wantShard, wantFsync)
	}
}

func TestSLOBurnMath(t *testing.T) {
	r := NewRegistry()
	s := r.SLO(Objective{Name: "buy", Target: 0.9, Threshold: time.Second})
	// 8 good, 1 slow (bad), 1 failed (bad): bad fraction 0.2 against a
	// 0.1 budget = burn 2.0.
	for i := 0; i < 8; i++ {
		s.Observe(time.Millisecond, true)
	}
	s.Observe(2*time.Second, true)
	s.Observe(time.Millisecond, false)
	s.Refresh()

	snap := r.Snapshot()
	var burns []float64
	for _, g := range snap.Gauges {
		if g.Name == BurnRateMetric {
			burns = append(burns, g.Value)
		}
	}
	if len(burns) != len(DefaultSLOWindows) {
		t.Fatalf("want %d burn gauges, got %d", len(DefaultSLOWindows), len(burns))
	}
	for _, burn := range burns {
		if burn < 1.99 || burn > 2.01 {
			t.Fatalf("burn rate = %v, want 2.0", burn)
		}
	}
	var good, total uint64
	for _, c := range snap.Counters {
		switch c.Name {
		case "privrange_slo_good_total":
			good = c.Value
		case "privrange_slo_requests_total":
			total = c.Value
		}
	}
	if good != 8 || total != 10 {
		t.Fatalf("lifetime counters good=%d total=%d, want 8/10", good, total)
	}
}

func TestSLOZeroTrafficAndSaturation(t *testing.T) {
	if burn := burnRate(0, 0, 0.99); burn != 0 {
		t.Fatalf("no traffic must be zero burn, got %v", burn)
	}
	if burn := burnRate(0, 1, 1.0); burn != 1e9 {
		t.Fatalf("zero budget with a bad request must saturate at 1e9, got %v", burn)
	}
	if burn := burnRate(1, 1, 1.0); burn != 0 {
		t.Fatalf("zero budget all-good must be zero burn, got %v", burn)
	}
	var nilSLO *SLO
	nilSLO.Observe(time.Second, true) // nil-safe
	nilSLO.Refresh()
}

func TestRegistrySamplerWiring(t *testing.T) {
	r := NewRegistry()
	if r.Sampler().Sample() {
		t.Fatal("sampling before SetTraceSampling")
	}
	r.SetTraceSampling(1)
	if !r.Sampler().Sample() {
		t.Fatal("1-in-1 sampling not in effect")
	}
	r.SetTraceSampling(0)
	if r.Sampler().Sample() {
		t.Fatal("sampling still on after disable")
	}
}
