package telemetry

import (
	"sync"
	"time"
)

// MaxSpans bounds the phases one trace can carry. The query pipeline
// has five named phases (sample-lookup, optimize, estimate, perturb,
// price); the headroom absorbs future stages without reallocating —
// a Trace is a fixed-size value so hot paths can keep it on the stack.
const MaxSpans = 8

// DefaultTraceCapacity is the default tracer ring size.
const DefaultTraceCapacity = 256

// Span is one timed phase inside a trace. Name must be a constant (the
// telemetrytaint analyzer forbids data-derived strings here).
type Span struct {
	Name     string
	Duration time.Duration
}

// Trace is one query's record: an operation name, an ordered list of
// phase spans, a total duration and an outcome tag. It is designed to
// live on the caller's stack: Begin/Mark/End mutate it in place with no
// allocation, and Record copies it into the tracer's ring. All methods
// are nil-safe and inert before Begin, so instrumented code paths need
// no conditionals around tracing calls.
type Trace struct {
	// ID is assigned by Tracer.Record (0 until recorded).
	ID uint64
	// Op names the operation, e.g. "core.answer".
	Op string
	// Outcome tags how the operation ended, e.g. "ok", "error",
	// "cache_hit", "degraded".
	Outcome string
	// Start is when Begin was called; Total is Start→End.
	Start time.Time
	Total time.Duration
	// Spans[:NumSpans] are the recorded phases in order.
	Spans    [MaxSpans]Span
	NumSpans int

	// Ctx is the distributed parent context (zero when the operation is
	// untraced); Attrs[:NAttrs] are constant-key span annotations copied
	// onto the emitted operation span. Links are causally related spans
	// that are not parents (a batch sale links every folded sale).
	Ctx    SpanContext
	Attrs  [MaxSpanAttrs]Label
	NAttrs int
	Links  []SpanContext

	on   bool
	last time.Time
	// self is the operation's own span id (0 when unsampled); buf is
	// where Record emits the distributed spans.
	self uint64
	buf  *SpanBuf
}

// Begin starts the trace clock.
func (t *Trace) Begin(op string) {
	if t == nil {
		return
	}
	t.Op = op
	t.Start = time.Now()
	t.last = t.Start
	t.on = true
}

// Mark closes the current phase: it records a span named name covering
// the time since the previous Mark (or Begin) and restarts the phase
// clock. Extra marks beyond MaxSpans fold into the last span's
// duration so the total stays honest.
func (t *Trace) Mark(name string) {
	if t == nil || !t.on {
		return
	}
	now := time.Now()
	d := now.Sub(t.last)
	t.last = now
	if t.NumSpans < MaxSpans {
		t.Spans[t.NumSpans] = Span{Name: name, Duration: d}
		t.NumSpans++
		return
	}
	t.Spans[MaxSpans-1].Duration += d
}

// End stops the clock and tags the outcome.
func (t *Trace) End(outcome string) {
	if t == nil || !t.on {
		return
	}
	t.Outcome = outcome
	t.Total = time.Since(t.Start)
}

// Active reports whether Begin has been called.
func (t *Trace) Active() bool { return t != nil && t.on }

// BeginCtx is Begin for a distributed trace: when parent is sampled
// and buf is non-nil, the trace joins parent's trace, allocates its
// own span id, and Record will emit the operation and its phases as
// spans into buf. Otherwise it degrades to a plain Begin.
func (t *Trace) BeginCtx(op string, parent SpanContext, buf *SpanBuf) {
	if t == nil {
		return
	}
	t.Begin(op)
	if parent.Sampled && parent.TraceID != 0 && buf != nil {
		t.Ctx = parent
		t.buf = buf
		t.self = buf.NextSpanID()
	}
}

// SpanCtx returns the context identifying this trace's own span — the
// parent context for downstream stages. Zero (unsampled) when the
// trace is not part of a sampled distributed trace.
func (t *Trace) SpanCtx() SpanContext {
	if t == nil || t.self == 0 {
		return SpanContext{}
	}
	return SpanContext{TraceID: t.Ctx.TraceID, SpanID: t.self, Sampled: true}
}

// Sampled reports whether Record will emit distributed spans.
func (t *Trace) Sampled() bool { return t != nil && t.self != 0 }

// Link records a causal (non-parent) relation to another span; the
// emitted operation span carries it. Unsampled links are dropped.
func (t *Trace) Link(sc SpanContext) {
	if t == nil || !sc.Sampled || !sc.Valid() {
		return
	}
	t.Links = append(t.Links, sc)
}

// Annotate attaches one constant-key attribute to the operation span.
// Values must stay on the clean side of the privacy boundary — the
// telemetrytaint analyzer checks both arguments. Nil-safe; extras
// beyond MaxSpanAttrs are dropped.
func (t *Trace) Annotate(key, value string) {
	if t == nil || t.NAttrs >= MaxSpanAttrs {
		return
	}
	t.Attrs[t.NAttrs] = Label{Key: key, Value: value}
	t.NAttrs++
}

// Tracer keeps the most recent traces in a fixed ring. Record copies
// the caller's stack-held Trace under a short mutex — no allocation,
// no retained pointers.
type Tracer struct {
	mu   sync.Mutex
	ring []Trace
	next uint64 // total traces ever recorded
}

// NewTracer returns a tracer retaining the last capacity traces
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Trace, capacity)}
}

// Record copies tr into the ring and assigns its ID. Nil-safe on both
// sides; traces that never Began are dropped. A trace begun with a
// sampled context (BeginCtx) additionally emits its operation and
// phase spans into the distributed span buffer, outside the ring lock.
func (t *Tracer) Record(tr *Trace) {
	if tr != nil {
		tr.buf.EmitTrace(tr)
	}
	if t == nil || tr == nil || !tr.on {
		return
	}
	t.mu.Lock()
	t.next++
	tr.ID = t.next
	t.ring[int((t.next-1)%uint64(len(t.ring)))] = *tr
	t.mu.Unlock()
}

// Capacity returns how many traces the ring retains.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Total returns how many traces were ever recorded (including those
// already evicted from the ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Recent returns up to n retained traces, oldest first. It copies, so
// the result is safe to hold.
func (t *Tracer) Recent(n int) []Trace {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	have := t.next
	if have > uint64(len(t.ring)) {
		have = uint64(len(t.ring))
	}
	if uint64(n) > have {
		n = int(have)
	}
	out := make([]Trace, 0, n)
	for i := t.next - uint64(n); i < t.next; i++ {
		out = append(out, t.ring[int(i%uint64(len(t.ring)))])
	}
	return out
}
