// Package telemetry is the broker's observability layer: a
// zero-dependency, concurrency-safe metrics registry (counters, gauges
// and fixed-bucket histograms with atomic hot paths), lightweight
// per-query trace spans, an operational event log, and an opt-in ops
// HTTP endpoint exposing everything as Prometheus text, a JSON
// snapshot, and net/http/pprof.
//
// Privacy contract: telemetry lives strictly OUTSIDE the privacy
// boundary. Only post-noise released values, aggregate counts, byte
// volumes, durations and state labels may ever be recorded here —
// never raw per-node samples and never un-noised estimates. The
// telemetrytaint analyzer in internal/lint mechanizes that rule: any
// value tainted by the privacyboundary taint set flowing into a
// telemetry call is a lint error. See DESIGN.md §10.
//
// Performance contract: recording is allocation-free. All metric
// construction (names, labels, buckets) happens at registration time;
// the hot path is a handful of atomic operations, so instrumented
// query paths stay +0 allocs/op.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one static metric dimension, fixed at registration time.
// Labels are part of a metric's identity: registering the same name
// with different labels yields distinct time series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing event count. The zero value is
// unusable; obtain counters from a Registry. All methods are safe for
// concurrent use and nil-safe, so uninstrumented call sites cost one
// predictable branch.
type Counter struct {
	v    atomic.Uint64
	name string // family name
	lbls string // rendered {k="v",...} suffix, may be empty
	help string
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value (stored as atomic bits).
// Methods are safe for concurrent use and nil-safe.
type Gauge struct {
	bits atomic.Uint64
	name string
	lbls string
	help string
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta via a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: bucket bounds are chosen at
// registration and never change, so Observe is a short linear scan plus
// two atomic adds. Methods are safe for concurrent use and nil-safe.
type Histogram struct {
	name    string
	lbls    string
	help    string
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds, the Prometheus convention for
// latency histograms.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns how many samples were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// LatencyBuckets is the default bucket ladder for query-latency
// histograms, in seconds: 1µs up to 10s, roughly ×2.5 per step. The
// sub-10µs rungs exist because server-side phase self-times (cache
// lookups, WAL appends, per-shard scatters) are routinely
// sub-millisecond: with a 10µs floor they all collapsed into the first
// bucket and per-stage attribution could not rank them.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds a process's metrics plus its tracer and event log.
// Metric registration (Counter/Gauge/Histogram) takes a lock and may
// allocate; it belongs in setup code. The returned handles record with
// atomic operations only.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	tracer     *Tracer
	events     *EventLog
	spans      *SpanBuf
	sampler    *Sampler
	hooks      []func()
}

// NewRegistry returns an empty registry with a tracer ring of
// DefaultTraceCapacity, an event log of DefaultEventCapacity, and a
// span ring of DefaultSpanCapacity (sampling disabled until
// SetTraceSampling).
func NewRegistry() *Registry {
	r := &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		tracer:     NewTracer(DefaultTraceCapacity),
		events:     NewEventLog(DefaultEventCapacity),
		spans:      NewSpanBuf(DefaultSpanCapacity),
	}
	r.spans.attr = newAttribution(r)
	return r
}

// Spans returns the registry's distributed span ring. Nil-safe.
func (r *Registry) Spans() *SpanBuf {
	if r == nil {
		return nil
	}
	return r.spans
}

// SetTraceSampling configures server-originated head sampling: a
// request arriving without a trace context starts a new sampled trace
// 1 in n times (n <= 0 disables; n == 1 traces everything). Requests
// that already carry a sampled context are always traced, so a fleet
// can sample at the edge only.
func (r *Registry) SetTraceSampling(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sampler = NewSampler(n)
	r.mu.Unlock()
}

// Sampler returns the server-origin sampler (nil until
// SetTraceSampling, and a nil sampler never samples).
func (r *Registry) Sampler() *Sampler {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sampler
}

// onScrape registers fn to run at the start of every exposition
// (WritePrometheus, Snapshot) — used for lazily-computed gauges such
// as SLO burn rates.
func (r *Registry) onScrape(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// runScrapeHooks invokes the registered scrape hooks outside the
// registry lock (hooks set gauges, which are atomic).
func (r *Registry) runScrapeHooks() {
	if r == nil {
		return
	}
	r.mu.Lock()
	hooks := make([]func(), len(r.hooks))
	copy(hooks, r.hooks)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// Tracer returns the registry's shared trace ring. Nil-safe: a nil
// registry returns a nil tracer, whose Record is a no-op.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Events returns the registry's shared event log. Nil-safe like Tracer.
func (r *Registry) Events() *EventLog {
	if r == nil {
		return nil
	}
	return r.events
}

// key renders the unique identity of one (name, labels) series and the
// label suffix used in exposition. Labels are sorted by key so identity
// does not depend on registration order.
func seriesKey(name string, labels []Label) (id, suffix string) {
	if len(labels) == 0 {
		return name, ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	suffix = b.String()
	return name + suffix, suffix
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// Counter registers (or retrieves) the counter with the given name and
// static labels. Registering the same series twice returns the same
// handle; a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	id, suffix := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[id]; ok {
		return c
	}
	c := &Counter{name: name, lbls: suffix, help: help}
	r.counters[id] = c
	return c
}

// Gauge registers (or retrieves) the gauge with the given name and
// static labels. Nil-safe like Counter.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	id, suffix := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[id]; ok {
		return g
	}
	g := &Gauge{name: name, lbls: suffix, help: help}
	r.gauges[id] = g
	return g
}

// Histogram registers (or retrieves) a fixed-bucket histogram. bounds
// must be ascending upper bounds (a +Inf overflow bucket is implicit);
// nil bounds selects LatencyBuckets. Nil-safe like Counter.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending at %d", name, i))
		}
	}
	id, suffix := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[id]; ok {
		return h
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	h := &Histogram{
		name:    name,
		lbls:    suffix,
		help:    help,
		bounds:  own,
		buckets: make([]atomic.Uint64, len(own)+1),
	}
	r.histograms[id] = h
	return h
}
