package telemetry

import (
	"sync"
	"time"
)

// DefaultEventCapacity is the default event-log ring size.
const DefaultEventCapacity = 512

// Event is one operational state transition — e.g. a circuit breaker
// opening on a node, or a connection being dropped. Type and Detail
// must be constants or aggregate-derived strings; the telemetrytaint
// analyzer forbids data-derived values here.
type Event struct {
	// Seq is the event's 1-based global sequence number, assigned by
	// Append; consumers use it to pin ordering across scrapes.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Type names the transition, e.g. "breaker_open".
	Type string `json:"type"`
	// Node is the subject node id, or -1 when not node-scoped.
	Node int `json:"node"`
	// Round is the network round clock at the transition (0 when not
	// round-scoped).
	Round uint64 `json:"round"`
	// Detail carries an optional constant annotation.
	Detail string `json:"detail,omitempty"`
}

// EventLog retains the most recent events in a fixed ring. Append is
// cheap (short mutex, no allocation) and nil-safe.
type EventLog struct {
	mu   sync.Mutex
	ring []Event
	next uint64
}

// NewEventLog returns a log retaining the last capacity events
// (minimum 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{ring: make([]Event, capacity)}
}

// Append records one event, stamping its sequence number and time.
func (l *EventLog) Append(typ string, node int, round uint64, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.next++
	l.ring[int((l.next-1)%uint64(len(l.ring)))] = Event{
		Seq:    l.next,
		Time:   time.Now(),
		Type:   typ,
		Node:   node,
		Round:  round,
		Detail: detail,
	}
	l.mu.Unlock()
}

// Total returns how many events were ever appended.
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	have := l.next
	if have > uint64(len(l.ring)) {
		have = uint64(len(l.ring))
	}
	out := make([]Event, 0, have)
	for i := l.next - have; i < l.next; i++ {
		out = append(out, l.ring[int(i%uint64(len(l.ring)))])
	}
	return out
}
