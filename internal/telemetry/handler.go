package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Handler returns the ops endpoint for a registry:
//
//	GET /metrics        Prometheus text exposition
//	GET /snapshot       JSON snapshot (metrics + traces + events)
//	GET /traces         JSON distributed spans (the span ring)
//	GET /debug/pprof/*  net/http/pprof profiles
//	GET /               plain-text index of the routes above
//
// The endpoint is strictly read-only and carries only post-noise and
// aggregate values (see the package privacy contract); it still binds
// to loopback by default in the daemons because pprof exposes heap
// contents, which may include customer identifiers and query ranges.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.TraceSpans())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "privrange ops endpoint")
		fmt.Fprintln(w, "  /metrics       Prometheus text exposition")
		fmt.Fprintln(w, "  /snapshot      JSON metrics + traces + events")
		fmt.Fprintln(w, "  /traces        JSON distributed spans")
		fmt.Fprintln(w, "  /debug/pprof/  runtime profiles")
	})
	return mux
}

// OpsServer is a running ops HTTP endpoint.
type OpsServer struct {
	ln  net.Listener
	srv *http.Server
	wg  sync.WaitGroup
}

// Serve starts the ops endpoint on addr (use "127.0.0.1:0" for an
// ephemeral port) and serves Handler(r) in the background until Close.
func Serve(addr string, r *Registry) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           Handler(r),
		ReadHeaderTimeout: 10 * time.Second,
	}
	s := &OpsServer{ln: ln, srv: srv}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the endpoint's bound address.
func (s *OpsServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down and joins the accept loop, so no
// goroutine outlives the server handle.
func (s *OpsServer) Close() error {
	err := s.srv.Close()
	s.wg.Wait()
	return err
}
