package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestOpsEndpointRoutes(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_total", "a demo counter").Add(3)
	r.Histogram("demo_seconds", "a demo histogram", []float64{1}).Observe(0.2)
	r.Events().Append("breaker_open", 1, 2, "")

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{"# TYPE demo_total counter", "demo_total 3", `demo_seconds_bucket{le="+Inf"} 1`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get("/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot status %d", code)
	}
	for _, want := range []string{`"demo_total"`, `"breaker_open"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/snapshot missing %q:\n%s", want, body)
		}
	}

	code, body = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d", code)
	}

	code, body = get("/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index status %d body %q", code, body)
	}

	if code, _ = get("/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}
