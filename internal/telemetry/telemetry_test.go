package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("x_total", "help"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	// Every handle and container must be inert when nil so call sites
	// need no conditionals.
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Trace
	var tt *Tracer
	var el *EventLog
	var reg *Registry
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	tr.Begin("x")
	tr.Mark("y")
	tr.End("ok")
	tt.Record(tr)
	el.Append("t", 0, 0, "")
	if reg.Counter("a", "") != nil || reg.Gauge("a", "") != nil || reg.Histogram("a", "", nil) != nil {
		t.Fatalf("nil registry must hand out nil metrics")
	}
	if err := reg.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry exposition: %v", err)
	}
	_ = reg.Snapshot()
	if reg.Tracer() != nil || reg.Events() != nil {
		t.Fatalf("nil registry must hand out nil tracer/events")
	}
}

func TestLabelsDistinguishSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("req_total", "h", L("op", "buy"))
	b := r.Counter("req_total", "h", L("op", "quote"))
	if a == b {
		t.Fatalf("different labels must be different series")
	}
	a.Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `req_total{op="buy"} 1`) {
		t.Fatalf("missing labelled sample:\n%s", out)
	}
	if !strings.Contains(out, `req_total{op="quote"} 0`) {
		t.Fatalf("missing zero-valued series:\n%s", out)
	}
	// One family header for the two series.
	if strings.Count(out, "# TYPE req_total counter") != 1 {
		t.Fatalf("family header must appear exactly once:\n%s", out)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for non-ascending bounds")
		}
	}()
	r.Histogram("bad", "h", []float64{1, 1})
}

func TestTraceSpans(t *testing.T) {
	var tr Trace
	tr.Begin("core.answer")
	tr.Mark("optimize")
	tr.Mark("estimate")
	tr.End("ok")
	if !tr.Active() || tr.NumSpans != 2 {
		t.Fatalf("spans = %d, want 2", tr.NumSpans)
	}
	if tr.Spans[0].Name != "optimize" || tr.Spans[1].Name != "estimate" {
		t.Fatalf("span names = %v", tr.Spans[:2])
	}
	if tr.Total < tr.Spans[0].Duration {
		t.Fatalf("total %v below first span %v", tr.Total, tr.Spans[0].Duration)
	}

	// Overflowing MaxSpans folds into the last span instead of dropping
	// time on the floor.
	var long Trace
	long.Begin("x")
	for i := 0; i < MaxSpans+3; i++ {
		long.Mark("phase")
	}
	long.End("ok")
	if long.NumSpans != MaxSpans {
		t.Fatalf("NumSpans = %d, want %d", long.NumSpans, MaxSpans)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tt := NewTracer(2)
	for i := 0; i < 3; i++ {
		var tr Trace
		tr.Begin("op")
		tr.End("ok")
		tt.Record(&tr)
	}
	if tt.Total() != 3 {
		t.Fatalf("total = %d, want 3", tt.Total())
	}
	recent := tt.Recent(10)
	if len(recent) != 2 {
		t.Fatalf("recent = %d traces, want 2", len(recent))
	}
	if recent[0].ID != 2 || recent[1].ID != 3 {
		t.Fatalf("ids = %d,%d want 2,3 (oldest first)", recent[0].ID, recent[1].ID)
	}
	// A trace that never Began must be dropped.
	var dead Trace
	tt.Record(&dead)
	if tt.Total() != 3 {
		t.Fatalf("inactive trace was recorded")
	}
}

func TestEventLogOrdering(t *testing.T) {
	l := NewEventLog(2)
	l.Append("a", 1, 10, "")
	l.Append("b", 2, 11, "")
	l.Append("c", 3, 12, "x")
	if l.Total() != 3 {
		t.Fatalf("total = %d, want 3", l.Total())
	}
	evs := l.Events()
	if len(evs) != 2 || evs[0].Type != "b" || evs[1].Type != "c" {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Seq != 2 || evs[1].Seq != 3 {
		t.Fatalf("seqs = %d,%d want 2,3", evs[0].Seq, evs[1].Seq)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h", L("k", "v")).Add(7)
	r.Gauge("g", "h").Set(3.5)
	r.Histogram("h_seconds", "h", []float64{1}).Observe(0.5)
	var tr Trace
	tr.Begin("op")
	tr.Mark("phase")
	tr.End("ok")
	r.Tracer().Record(&tr)
	r.Events().Append("breaker_open", 4, 9, "")

	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 7 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 3.5 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	if len(snap.Traces) != 1 || snap.Traces[0].Op != "op" || len(snap.Traces[0].Spans) != 1 {
		t.Fatalf("traces = %+v", snap.Traces)
	}
	if len(snap.Events) != 1 || snap.Events[0].Type != "breaker_open" {
		t.Fatalf("events = %+v", snap.Events)
	}
}

// TestConcurrentRecording drives every primitive from many goroutines;
// meaningful under -race.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h_seconds", "h", []float64{0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) * 0.7)
				var tr Trace
				tr.Begin("op")
				tr.Mark("phase")
				tr.End("ok")
				r.Tracer().Record(&tr)
				r.Events().Append("e", w, uint64(i), "")
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if r.Tracer().Total() != 8000 || r.Events().Total() != 8000 {
		t.Fatalf("tracer/events totals = %d/%d, want 8000", r.Tracer().Total(), r.Events().Total())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", L("q", `a"b\c`)).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{q="a\"b\\c"} 1`) {
		t.Fatalf("bad escaping:\n%s", sb.String())
	}
}
