package optimize

import (
	"errors"
	"math"
)

// SolveRefined runs the grid search and then polishes the winner with a
// golden-section search over α′ in the bracket spanned by the winning
// grid point's neighbours. ε′(α′) is continuous and — empirically across
// the feasible interval — unimodal (it diverges at both ends: α′ → α
// leaves no noise slack, α′ → α′_min leaves no confidence slack), so the
// bracket refinement converges to the interior optimum far past grid
// resolution. The returned plan is always feasible and never worse than
// the plain grid solution.
func (p *Problem) SolveRefined() (Plan, error) {
	best, err := p.Solve()
	if err != nil {
		return Plan{}, err
	}
	lo := p.minAlphaPrime()
	hi := p.Accuracy.Alpha
	grid := float64(p.grid())
	step := (hi - lo) / grid

	// Bracket one grid step to each side of the winner, clipped to the
	// open feasible interval.
	a := math.Max(lo+1e-12, best.AlphaPrime-step)
	b := math.Min(hi-1e-12, best.AlphaPrime+step)
	if a >= b {
		return best, nil
	}

	value := func(alphaPrime float64) (Plan, bool) {
		plan, err := p.EpsilonForAlphaPrime(alphaPrime)
		if err != nil {
			return Plan{}, false
		}
		return plan, true
	}

	const (
		invPhi = 0.6180339887498949 // (√5 − 1) / 2
		iters  = 60
	)
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	pc, okc := value(c)
	pd, okd := value(d)
	for i := 0; i < iters && b-a > 1e-14; i++ {
		// Infeasible probes (possible at the extreme ends of the bracket)
		// rank as +Inf.
		fc, fd := math.Inf(1), math.Inf(1)
		if okc {
			fc = pc.EpsilonPrime
		}
		if okd {
			fd = pd.EpsilonPrime
		}
		if fc < fd {
			b, d, pd, okd = d, c, pc, okc
			c = b - (b-a)*invPhi
			pc, okc = value(c)
		} else {
			a, c, pc, okc = c, d, pd, okd
			d = a + (b-a)*invPhi
			pd, okd = value(d)
		}
	}
	for _, cand := range []struct {
		plan Plan
		ok   bool
	}{{pc, okc}, {pd, okd}} {
		if cand.ok && cand.plan.EpsilonPrime < best.EpsilonPrime {
			best = cand.plan
		}
	}
	return best, nil
}

// IsInfeasible reports whether err (from Solve or SolveRefined) means the
// accuracy requirement cannot be met at the current sampling rate.
func IsInfeasible(err error) bool {
	return errors.Is(err, ErrInfeasible)
}
