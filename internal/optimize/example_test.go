package optimize_test

import (
	"fmt"
	"log"

	"privrange/internal/estimator"
	"privrange/internal/optimize"
)

// Example walks one instance of the paper's optimization problem (3):
// given samples at rate p and a customer accuracy (α, δ), find the
// noise plan with the smallest effective budget ε′.
func Example() {
	prob := optimize.Problem{
		Accuracy: estimator.Accuracy{Alpha: 0.1, Delta: 0.6},
		P:        0.2,
		K:        10,
		N:        17568,
	}
	plan, err := prob.SolveRefined()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("internal split strictly tighter:",
		plan.AlphaPrime < prob.Accuracy.Alpha && plan.DeltaPrime > prob.Accuracy.Delta)
	fmt.Println("amplification helps:", plan.EpsilonPrime < plan.Epsilon)
	fmt.Println("plan verifies:", prob.Verify(plan, 1e-9) == nil)
	// Output:
	// internal split strictly tighter: true
	// amplification helps: true
	// plan verifies: true
}

// ExampleProblem_Solve_infeasible shows the diagnosis when the broker's
// samples cannot support the requested accuracy.
func ExampleProblem_Solve_infeasible() {
	prob := optimize.Problem{
		Accuracy: estimator.Accuracy{Alpha: 0.1, Delta: 0.6},
		P:        0.001, // far too few samples
		K:        10,
		N:        17568,
	}
	_, err := prob.Solve()
	fmt.Println("infeasible:", optimize.IsInfeasible(err))
	// Output:
	// infeasible: true
}
