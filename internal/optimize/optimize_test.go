package optimize

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"privrange/internal/dp"
	"privrange/internal/estimator"
)

func validProblem() Problem {
	return Problem{
		Accuracy: estimator.Accuracy{Alpha: 0.1, Delta: 0.6},
		P:        0.2,
		K:        10,
		N:        17568,
	}
}

func TestSolveProducesFeasiblePlan(t *testing.T) {
	t.Parallel()
	p := validProblem()
	plan, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(plan, 1e-9); err != nil {
		t.Errorf("solver emitted invalid plan: %v", err)
	}
	if plan.AlphaPrime >= p.Accuracy.Alpha {
		t.Errorf("alpha' %v should be strictly below alpha %v", plan.AlphaPrime, p.Accuracy.Alpha)
	}
	if plan.DeltaPrime <= p.Accuracy.Delta {
		t.Errorf("delta' %v should exceed delta %v", plan.DeltaPrime, p.Accuracy.Delta)
	}
	if plan.EpsilonPrime <= 0 || plan.EpsilonPrime > plan.Epsilon {
		t.Errorf("amplified budget %v should be in (0, epsilon=%v]", plan.EpsilonPrime, plan.Epsilon)
	}
	if plan.NoiseScale != plan.Sensitivity/plan.Epsilon {
		t.Errorf("noise scale %v inconsistent", plan.NoiseScale)
	}
}

func TestSolveIsGridOptimal(t *testing.T) {
	t.Parallel()
	p := validProblem()
	plan, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// No grid point can beat the returned plan.
	lo := p.minAlphaPrime()
	hi := p.Accuracy.Alpha
	grid := p.grid()
	for i := 1; i < grid; i++ {
		alphaPrime := lo + (hi-lo)*float64(i)/float64(grid)
		candidate, err := p.EpsilonForAlphaPrime(alphaPrime)
		if err != nil {
			continue
		}
		if candidate.EpsilonPrime < plan.EpsilonPrime-1e-15 {
			t.Fatalf("grid point alpha'=%v has eps'=%v better than solver's %v",
				alphaPrime, candidate.EpsilonPrime, plan.EpsilonPrime)
		}
	}
}

func TestSolveInfeasibleAtLowSampling(t *testing.T) {
	t.Parallel()
	p := validProblem()
	p.P = 0.001 // far below the Theorem 3.3 requirement for alpha=0.1
	_, err := p.Solve()
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveFeasibilityBoundaryMatchesTheorem33(t *testing.T) {
	t.Parallel()
	p := validProblem()
	need, err := estimator.RequiredProbability(p.Accuracy, p.K, p.N)
	if err != nil {
		t.Fatal(err)
	}
	p.P = need * 1.2
	if _, err := p.Solve(); err != nil {
		t.Errorf("slightly above the Thm 3.3 rate should be feasible: %v", err)
	}
	p.P = need * 0.99
	if _, err := p.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("below the Thm 3.3 rate should be infeasible, got %v", err)
	}
}

func TestEpsilonForAlphaPrimeClosedForm(t *testing.T) {
	t.Parallel()
	p := validProblem()
	alphaPrime := 0.05
	plan, err := p.EpsilonForAlphaPrime(alphaPrime)
	if err != nil {
		t.Fatal(err)
	}
	deltaPrime, err := estimator.AchievableDelta(p.P, alphaPrime, p.K, p.N)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 / p.P) / ((p.Accuracy.Alpha - alphaPrime) * float64(p.N)) *
		math.Log(deltaPrime/(deltaPrime-p.Accuracy.Delta))
	if math.Abs(plan.Epsilon-want) > 1e-12 {
		t.Errorf("epsilon = %v, want closed form %v", plan.Epsilon, want)
	}
}

func TestEpsilonForAlphaPrimeRejectsOutOfRange(t *testing.T) {
	t.Parallel()
	p := validProblem()
	for _, bad := range []float64{0, -0.1, p.Accuracy.Alpha, 0.5} {
		if _, err := p.EpsilonForAlphaPrime(bad); err == nil {
			t.Errorf("alpha'=%v should fail", bad)
		}
	}
}

func TestProblemValidation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name   string
		mutate func(*Problem)
	}{
		{name: "bad alpha", mutate: func(p *Problem) { p.Accuracy.Alpha = 0 }},
		{name: "bad delta", mutate: func(p *Problem) { p.Accuracy.Delta = 1 }},
		{name: "p zero", mutate: func(p *Problem) { p.P = 0 }},
		{name: "p above one", mutate: func(p *Problem) { p.P = 1.01 }},
		{name: "k zero", mutate: func(p *Problem) { p.K = 0 }},
		{name: "n zero", mutate: func(p *Problem) { p.N = 0 }},
		{name: "negative sensitivity", mutate: func(p *Problem) { p.Sensitivity = -1 }},
		{name: "negative grid", mutate: func(p *Problem) { p.GridPoints = -1 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			p := validProblem()
			tc.mutate(&p)
			if _, err := p.Solve(); err == nil {
				t.Error("Solve should reject invalid problem")
			}
		})
	}
}

func TestCustomSensitivity(t *testing.T) {
	t.Parallel()
	p := validProblem()
	p.Sensitivity = 3
	plan, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Sensitivity != 3 {
		t.Errorf("plan sensitivity = %v, want 3", plan.Sensitivity)
	}
	// Higher sensitivity should force a (weakly) larger epsilon than the
	// default 1/p = 5... here 3 < 5 so epsilon should shrink instead.
	def := validProblem()
	defPlan, err := def.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Epsilon >= defPlan.Epsilon {
		t.Errorf("sensitivity 3 < 1/p = 5 should need less budget: %v vs %v", plan.Epsilon, defPlan.Epsilon)
	}
}

// TestSolverAlwaysFeasibleProperty: for random feasible problems, Solve's
// plan always verifies, and the composite guarantee δ′·τ ≥ δ holds.
func TestSolverAlwaysFeasibleProperty(t *testing.T) {
	t.Parallel()
	f := func(alphaRaw, deltaRaw, pRaw float64, kRaw uint8) bool {
		alpha := 0.02 + math.Mod(math.Abs(alphaRaw), 0.5)
		delta := 0.05 + math.Mod(math.Abs(deltaRaw), 0.85)
		k := int(kRaw)%40 + 1
		n := 17568
		prob := Problem{
			Accuracy:   estimator.Accuracy{Alpha: alpha, Delta: delta},
			K:          k,
			N:          n,
			GridPoints: 300,
		}
		need, err := estimator.RequiredProbability(prob.Accuracy, k, n)
		if err != nil {
			return false
		}
		// Choose p comfortably above the feasibility threshold (and ≤ 1).
		p := need * (1.05 + math.Mod(math.Abs(pRaw), 3))
		if p > 1 {
			p = 1
		}
		prob.P = p
		plan, err := prob.Solve()
		if errors.Is(err, ErrInfeasible) {
			// Possible when need*1.05 rounds above 1 and p=1 still short —
			// only when alpha*n is tiny; accept.
			return need >= 0.95
		}
		if err != nil {
			return false
		}
		if prob.Verify(plan, 1e-6) != nil {
			return false
		}
		return plan.DeltaPrime*plan.Tau >= delta-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestMoreSamplesNeverHurtPrivacy: raising the sampling rate enlarges the
// feasible region, so the optimal effective budget ε′ should not increase.
func TestMoreSamplesNeverHurtPrivacy(t *testing.T) {
	t.Parallel()
	base := validProblem()
	prev := math.Inf(1)
	for _, p := range []float64{0.1, 0.2, 0.4, 0.8, 1.0} {
		prob := base
		prob.P = p
		plan, err := prob.Solve()
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		// Allow a hair of grid slack.
		if plan.EpsilonPrime > prev*1.02 {
			t.Errorf("eps' grew from %v to %v when p rose to %v", prev, plan.EpsilonPrime, p)
		}
		prev = plan.EpsilonPrime
	}
}

func TestAmplificationConsistency(t *testing.T) {
	t.Parallel()
	p := validProblem()
	plan, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want, err := dp.AmplifyBySampling(plan.Epsilon, p.P)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.EpsilonPrime-want) > 1e-12 {
		t.Errorf("EpsilonPrime = %v, want %v", plan.EpsilonPrime, want)
	}
}

func TestSolveRefinedNeverWorseThanGrid(t *testing.T) {
	t.Parallel()
	f := func(alphaRaw, deltaRaw, pScaleRaw float64, kRaw uint8) bool {
		alpha := 0.03 + math.Mod(math.Abs(alphaRaw), 0.4)
		delta := 0.1 + math.Mod(math.Abs(deltaRaw), 0.8)
		k := int(kRaw)%30 + 1
		prob := Problem{
			Accuracy:   estimator.Accuracy{Alpha: alpha, Delta: delta},
			K:          k,
			N:          17568,
			GridPoints: 200,
		}
		need, err := estimator.RequiredProbability(prob.Accuracy, k, prob.N)
		if err != nil {
			return false
		}
		p := math.Min(1, need*(1.1+math.Mod(math.Abs(pScaleRaw), 3)))
		prob.P = p
		gridPlan, gridErr := prob.Solve()
		refined, refErr := prob.SolveRefined()
		if gridErr != nil {
			return IsInfeasible(gridErr) == IsInfeasible(refErr)
		}
		if refErr != nil {
			return false
		}
		if refined.EpsilonPrime > gridPlan.EpsilonPrime+1e-15 {
			return false
		}
		return prob.Verify(refined, 1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSolveRefinedImprovesCoarseGrid(t *testing.T) {
	t.Parallel()
	prob := validProblem()
	prob.GridPoints = 20 // deliberately coarse
	gridPlan, err := prob.Solve()
	if err != nil {
		t.Fatal(err)
	}
	refined, err := prob.SolveRefined()
	if err != nil {
		t.Fatal(err)
	}
	if refined.EpsilonPrime > gridPlan.EpsilonPrime {
		t.Errorf("refined %v should not exceed grid %v", refined.EpsilonPrime, gridPlan.EpsilonPrime)
	}
	// Against a fine grid, the coarse+refined result should be close to
	// optimal.
	fine := validProblem()
	fine.GridPoints = 20000
	finePlan, err := fine.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if refined.EpsilonPrime > finePlan.EpsilonPrime*1.001 {
		t.Errorf("coarse+refined %v should approach fine-grid optimum %v",
			refined.EpsilonPrime, finePlan.EpsilonPrime)
	}
}

func TestSolveRefinedInfeasible(t *testing.T) {
	t.Parallel()
	prob := validProblem()
	prob.P = 0.001
	if _, err := prob.SolveRefined(); !IsInfeasible(err) {
		t.Errorf("err = %v, want infeasible", err)
	}
}

// TestVerifyRejectsCorruptedPlans mutation-tests the guardrail: each
// field of a valid plan is corrupted in turn and Verify must catch it.
func TestVerifyRejectsCorruptedPlans(t *testing.T) {
	t.Parallel()
	prob := validProblem()
	plan, err := prob.Solve()
	if err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		name   string
		mutate func(*Plan)
	}{
		{name: "alpha' above alpha", mutate: func(p *Plan) { p.AlphaPrime = prob.Accuracy.Alpha * 1.5 }},
		{name: "alpha' zero", mutate: func(p *Plan) { p.AlphaPrime = 0 }},
		{name: "delta' below delta", mutate: func(p *Plan) { p.DeltaPrime = prob.Accuracy.Delta / 2 }},
		{name: "epsilon zero", mutate: func(p *Plan) { p.Epsilon = 0 }},
		{name: "noise too large", mutate: func(p *Plan) { p.NoiseScale *= 100 }},
		{name: "epsilon' inconsistent", mutate: func(p *Plan) { p.EpsilonPrime *= 2 }},
		{
			name: "alpha' too small for sampling rate",
			mutate: func(p *Plan) {
				p.AlphaPrime = prob.minAlphaPrime() / 4
				// Keep delta' as-is: the sampling constraint must trip.
			},
		},
	}
	for _, m := range mutations {
		m := m
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			corrupt := plan
			m.mutate(&corrupt)
			if err := prob.Verify(corrupt, 1e-9); err == nil {
				t.Error("Verify accepted a corrupted plan")
			}
		})
	}
	// The untouched plan still verifies (mutations copied by value).
	if err := prob.Verify(plan, 1e-9); err != nil {
		t.Errorf("original plan rejected: %v", err)
	}
}
