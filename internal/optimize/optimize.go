// Package optimize solves the paper's optimization problem (3): given a
// customer's (α, δ) accuracy requirement and samples already collected at
// Bernoulli rate p, find the noise-adding plan with the *strongest*
// differential privacy — the smallest effective budget
// ε′ = ln(1 + p(e^ε − 1)) — such that the sampled-then-perturbed answer
// still satisfies (α, δ)-range counting.
//
// The broker splits the error budget between the two phases: the sampling
// phase delivers an (α′, δ′)-accurate estimate (α′ ≤ α, δ′ ≥ δ, with δ′
// determined by the existing sampling rate via Chebyshev), and the Laplace
// phase may consume the remaining slack (α−α′)n as long as
// Pr[|Lap| ≤ (α−α′)n] ≥ δ/δ′. For a fixed α′ the minimal base budget has
// the closed form
//
//	ε(α′) = Δγ̂ / ((α−α′)·n) · ln(δ′/(δ′−δ))
//
// with Δγ̂ = 1/p, the expected sensitivity of the RankCounting estimate.
// A grid search over α′ then minimizes ε (and, monotonically, ε′).
package optimize

import (
	"errors"
	"fmt"
	"math"

	"privrange/internal/dp"
	"privrange/internal/estimator"
)

// ErrInfeasible reports that no (α′, δ′, ε) triple can meet the requested
// accuracy with the samples at hand; the broker must collect more samples
// first.
var ErrInfeasible = errors.New("optimize: accuracy requirement infeasible at current sampling rate")

// Problem describes one instance of optimization problem (3).
type Problem struct {
	// Accuracy is the customer-requested (α, δ).
	Accuracy estimator.Accuracy
	// P is the Bernoulli sampling rate of the samples the broker holds.
	P float64
	// K is the number of IoT nodes.
	K int
	// N is the global dataset size |D|.
	N int
	// Sensitivity overrides the estimator sensitivity Δγ̂ used for noise
	// calibration. Zero selects the paper's default, the expected
	// sensitivity 1/p.
	Sensitivity float64
	// GridPoints is the resolution of the α′ search grid. Zero selects
	// 2000 points, fine enough that the discretization error in ε′ is
	// far below experimental noise.
	GridPoints int
}

// Plan is a feasible solution to problem (3): the internal accuracy split
// plus the calibrated noise.
type Plan struct {
	// AlphaPrime and DeltaPrime are the sampling phase's accuracy.
	AlphaPrime, DeltaPrime float64
	// Epsilon is the base Laplace budget ε.
	Epsilon float64
	// EpsilonPrime is the effective budget after privacy amplification by
	// sampling, ε′ = ln(1 + p(e^ε − 1)) — the quantity minimized.
	EpsilonPrime float64
	// Sensitivity is the Δγ̂ used to calibrate noise.
	Sensitivity float64
	// NoiseScale is the Laplace scale Δγ̂/ε actually added to the
	// estimate.
	NoiseScale float64
	// Tau is Pr[|Lap| ≤ (α−α′)n], the noise phase's share of the
	// confidence budget; the composite guarantee is DeltaPrime·Tau ≥ δ.
	Tau float64
}

func (p *Problem) validate() error {
	if err := p.Accuracy.Validate(); err != nil {
		return err
	}
	if p.P <= 0 || p.P > 1 {
		return fmt.Errorf("optimize: sampling probability %v outside (0, 1]", p.P)
	}
	if p.K < 1 {
		return fmt.Errorf("optimize: node count %d < 1", p.K)
	}
	if p.N < 1 {
		return fmt.Errorf("optimize: dataset size %d < 1", p.N)
	}
	if p.Sensitivity < 0 {
		return fmt.Errorf("optimize: negative sensitivity %v", p.Sensitivity)
	}
	if p.GridPoints < 0 {
		return fmt.Errorf("optimize: negative grid size %d", p.GridPoints)
	}
	return nil
}

func (p *Problem) sensitivity() float64 {
	if p.Sensitivity > 0 {
		return p.Sensitivity
	}
	return 1 / p.P
}

func (p *Problem) grid() int {
	if p.GridPoints > 0 {
		return p.GridPoints
	}
	return 2000
}

// minAlphaPrime returns the smallest α′ at which the existing samples
// still deliver δ′ > δ: from δ′(α′) = 1 − 8k/(p²α′²n²) solved at δ′ = δ,
//
//	α′_min = √(8k/(1−δ)) / (p·n).
func (p *Problem) minAlphaPrime() float64 {
	return math.Sqrt(8*float64(p.K)/(1-p.Accuracy.Delta)) / (p.P * float64(p.N))
}

// EpsilonForAlphaPrime computes the minimal base budget for a fixed α′:
// the closed form the paper derives from the Laplace tail. It returns
// ErrInfeasible when α′ leaves no room for either phase.
func (p *Problem) EpsilonForAlphaPrime(alphaPrime float64) (Plan, error) {
	if err := p.validate(); err != nil {
		return Plan{}, err
	}
	alpha, delta := p.Accuracy.Alpha, p.Accuracy.Delta
	if alphaPrime <= 0 || alphaPrime >= alpha {
		return Plan{}, fmt.Errorf("%w: alpha' %v not in (0, %v)", ErrInfeasible, alphaPrime, alpha)
	}
	deltaPrime, err := estimator.AchievableDelta(p.P, alphaPrime, p.K, p.N)
	if err != nil {
		return Plan{}, err
	}
	if deltaPrime <= delta {
		return Plan{}, fmt.Errorf("%w: delta' %v does not exceed required delta %v at alpha'=%v",
			ErrInfeasible, deltaPrime, delta, alphaPrime)
	}
	sens := p.sensitivity()
	slack := (alpha - alphaPrime) * float64(p.N)
	eps := sens / slack * math.Log(deltaPrime/(deltaPrime-delta))
	epsPrime, err := dp.AmplifyBySampling(eps, p.P)
	if err != nil {
		return Plan{}, err
	}
	noise := dp.Laplace{Scale: sens / eps}
	return Plan{
		AlphaPrime:   alphaPrime,
		DeltaPrime:   deltaPrime,
		Epsilon:      eps,
		EpsilonPrime: epsPrime,
		Sensitivity:  sens,
		NoiseScale:   sens / eps,
		Tau:          noise.AbsCDF(slack),
	}, nil
}

// Solve runs the grid search over α′ and returns the plan with the
// smallest effective budget ε′. It returns ErrInfeasible (wrapped with the
// minimum workable sampling rate) when even α′ → α cannot reach δ.
func (p *Problem) Solve() (Plan, error) {
	if err := p.validate(); err != nil {
		return Plan{}, err
	}
	lo := p.minAlphaPrime()
	hi := p.Accuracy.Alpha
	if lo >= hi {
		// Even a pure-sampling answer misses δ: the paper's broker would
		// collect more samples. Report the rate that would open the
		// search space.
		need, rerr := estimator.RequiredProbability(p.Accuracy, p.K, p.N)
		if rerr != nil {
			return Plan{}, rerr
		}
		return Plan{}, fmt.Errorf("%w: sampling rate %.5f too low, need at least ~%.5f", ErrInfeasible, p.P, need)
	}
	grid := p.grid()
	var (
		best  Plan
		found bool
	)
	for i := 1; i < grid; i++ {
		alphaPrime := lo + (hi-lo)*float64(i)/float64(grid)
		plan, err := p.EpsilonForAlphaPrime(alphaPrime)
		if err != nil {
			if errors.Is(err, ErrInfeasible) {
				continue
			}
			return Plan{}, err
		}
		if !found || plan.EpsilonPrime < best.EpsilonPrime {
			best = plan
			found = true
		}
	}
	if !found {
		return Plan{}, fmt.Errorf("%w: empty feasible grid in (%v, %v)", ErrInfeasible, lo, hi)
	}
	return best, nil
}

// Verify checks that the plan satisfies every constraint of problem (3)
// for this problem instance; experiments and property tests call it to
// guarantee the solver never emits an invalid plan. tol absorbs grid and
// floating-point slack.
func (p *Problem) Verify(plan Plan, tol float64) error {
	if err := p.validate(); err != nil {
		return err
	}
	alpha, delta := p.Accuracy.Alpha, p.Accuracy.Delta
	if plan.AlphaPrime <= 0 || plan.AlphaPrime > alpha+tol {
		return fmt.Errorf("optimize: plan alpha' %v violates 0 < alpha' <= alpha=%v", plan.AlphaPrime, alpha)
	}
	if plan.DeltaPrime < delta-tol {
		return fmt.Errorf("optimize: plan delta' %v below delta=%v", plan.DeltaPrime, delta)
	}
	// Sampling constraint: p >= √(2k)/(α′n) · 2/√(1−δ′).
	needP := math.Sqrt(2*float64(p.K)) / (plan.AlphaPrime * float64(p.N)) * 2 / math.Sqrt(1-plan.DeltaPrime)
	if p.P < needP-tol {
		return fmt.Errorf("optimize: sampling rate %v below required %v for (alpha', delta')", p.P, needP)
	}
	if plan.Epsilon <= 0 {
		return fmt.Errorf("optimize: non-positive epsilon %v", plan.Epsilon)
	}
	// Noise constraint: Pr[|Lap| ≤ (α−α′)n] ≥ δ/δ′.
	noise := dp.Laplace{Scale: plan.NoiseScale}
	tau := noise.AbsCDF((alpha - plan.AlphaPrime) * float64(p.N))
	if tau < delta/plan.DeltaPrime-tol {
		return fmt.Errorf("optimize: noise tail %v below delta/delta' = %v", tau, delta/plan.DeltaPrime)
	}
	// Amplification bookkeeping: ε′ = ln(1 + p(e^ε − 1)).
	wantPrime, err := dp.AmplifyBySampling(plan.Epsilon, p.P)
	if err != nil {
		return err
	}
	if math.Abs(wantPrime-plan.EpsilonPrime) > tol {
		return fmt.Errorf("optimize: epsilon' %v inconsistent with amplification %v", plan.EpsilonPrime, wantPrime)
	}
	return nil
}
