// Package wavelet implements the Haar-wavelet mechanism for
// differentially-private range counting (in the spirit of Privelet,
// Xiao, Wang & Gehrke, ICDE 2010) — the second classical baseline next
// to the dyadic tree (internal/dyadic).
//
// The leaf histogram over 2^m cells is Haar-transformed; each
// coefficient receives Laplace noise calibrated to its depth-dependent
// sensitivity, and the noisy coefficients are synthesized back into leaf
// counts. One record touches exactly one coefficient per level, each
// with sensitivity 1/s_d (s_d = subtree leaf count at depth d), so
// weighting coordinate d by s_d gives total weighted sensitivity m+1 and
// per-coefficient noise Lap((m+1)/(ε·s_d)) for ε-DP overall.
//
// Like the dyadic tree it pays ε once for unlimited queries; unlike the
// dyadic tree the reconstruction spreads every coefficient's noise over
// its whole subtree, which cancels inside contiguous ranges — the
// per-query variance constant is ~4× smaller at equal depth.
package wavelet

import (
	"fmt"
	"math"

	"privrange/internal/dp"
	"privrange/internal/stats"
)

// Synopsis is a noisy Haar synopsis of a value distribution over
// [Lo, Hi): after Build, range sums are answered from the synthesized
// prefix sums with no further privacy cost.
type Synopsis struct {
	lo, hi float64
	levels int
	eps    float64
	// prefix[i] is the noisy count of leaves [0, i); len = leaves+1.
	prefix []float64
}

// MaxLevels bounds the domain resolution.
const MaxLevels = 20

// Build constructs the synopsis with total privacy budget epsilon.
// Records outside [lo, hi) clip to the edge cells.
func Build(values []float64, lo, hi float64, levels int, epsilon float64, rng *stats.RNG) (*Synopsis, error) {
	if !(lo < hi) {
		return nil, fmt.Errorf("wavelet: empty domain [%v, %v)", lo, hi)
	}
	if levels < 1 || levels > MaxLevels {
		return nil, fmt.Errorf("wavelet: levels %d outside [1, %d]", levels, MaxLevels)
	}
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return nil, fmt.Errorf("wavelet: epsilon %v must be positive and finite", epsilon)
	}
	if rng == nil {
		return nil, fmt.Errorf("wavelet: nil rng")
	}
	leaves := 1 << levels
	width := (hi - lo) / float64(leaves)

	// Exact leaf histogram.
	leaf := make([]float64, leaves)
	for _, v := range values {
		idx := int((v - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= leaves {
			idx = leaves - 1
		}
		leaf[idx]++
	}

	// Haar analysis: avg[] per node (heap layout, node 1 = root) and the
	// difference coefficients c[i] = (avg(left) − avg(right))/2.
	avg := make([]float64, 2*leaves)
	for i := 0; i < leaves; i++ {
		avg[leaves+i] = leaf[i]
	}
	for i := leaves - 1; i >= 1; i-- {
		avg[i] = (avg[2*i] + avg[2*i+1]) / 2
	}
	coef := make([]float64, leaves) // coef[i] for internal node i ∈ [1, leaves)
	for i := 1; i < leaves; i++ {
		coef[i] = (avg[2*i] - avg[2*i+1]) / 2
	}
	c0 := avg[1] // overall average

	// Noise: weighted Laplace mechanism. Node i at depth d has subtree
	// leaf count s = leaves >> d and coefficient sensitivity 1/s; total
	// weighted sensitivity across the m+1 affected coordinates is m+1.
	budgetShare := float64(levels + 1)
	c0Noise, err := dp.NewLaplace(budgetShare / (epsilon * float64(leaves)))
	if err != nil {
		return nil, err
	}
	c0 += c0Noise.Sample(rng)
	for i := 1; i < leaves; i++ {
		depth := bitLen(i) - 1 // node 1 is depth 0
		s := float64(leaves >> depth)
		noise, err := dp.NewLaplace(budgetShare / (epsilon * s))
		if err != nil {
			return nil, err
		}
		coef[i] += noise.Sample(rng)
	}

	// Synthesis: rebuild noisy leaf values, then prefix sums.
	avg[1] = c0
	for i := 1; i < leaves; i++ {
		avg[2*i] = avg[i] + coef[i]
		avg[2*i+1] = avg[i] - coef[i]
	}
	s := &Synopsis{
		lo:     lo,
		hi:     hi,
		levels: levels,
		eps:    epsilon,
		prefix: make([]float64, leaves+1),
	}
	for i := 0; i < leaves; i++ {
		s.prefix[i+1] = s.prefix[i] + avg[leaves+i]
	}
	return s, nil
}

// bitLen returns the position of the highest set bit (1-based).
func bitLen(x int) int {
	n := 0
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}

// Epsilon returns the total privacy budget the release consumed.
func (s *Synopsis) Epsilon() float64 { return s.eps }

// Leaves returns the domain resolution.
func (s *Synopsis) Leaves() int { return 1 << s.levels }

// LeafWidth returns the value width of one cell.
func (s *Synopsis) LeafWidth() float64 {
	return (s.hi - s.lo) / float64(s.Leaves())
}

// Count answers the range query [l, u], snapped outward to cell
// boundaries. Repeated queries are free and deterministic (noise is
// baked in at build time).
func (s *Synopsis) Count(l, u float64) (float64, error) {
	if l > u {
		return 0, fmt.Errorf("wavelet: range [%v, %v] has l > u", l, u)
	}
	leaves := s.Leaves()
	width := s.LeafWidth()
	loLeaf := int(math.Floor((l - s.lo) / width))
	hiLeaf := int(math.Floor((u - s.lo) / width))
	if hiLeaf < 0 || loLeaf >= leaves {
		return 0, nil
	}
	if loLeaf < 0 {
		loLeaf = 0
	}
	if hiLeaf >= leaves {
		hiLeaf = leaves - 1
	}
	return s.prefix[hiLeaf+1] - s.prefix[loLeaf], nil
}

// QueryVarianceBound returns an upper bound on the noise variance of a
// contiguous range count: interior coefficients cancel, so only ~2
// partially-overlapped nodes per depth contribute, each at most
// (s/2)·Lap((m+1)/(ε·s)) — i.e. (m+1)²/(2ε²) variance per node.
func (s *Synopsis) QueryVarianceBound() float64 {
	m := float64(s.levels + 1)
	perNode := m * m / (2 * s.eps * s.eps) * 2 // 2b² with b=(m+1)/(2ε)·... conservative
	return 2 * m * perNode
}
