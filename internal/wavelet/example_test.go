package wavelet_test

import (
	"fmt"
	"log"

	"privrange/internal/stats"
	"privrange/internal/wavelet"
)

// Example builds a one-ε Haar synopsis and answers range counts from the
// single release.
func Example() {
	values := make([]float64, 0, 4096)
	rng := stats.NewRNG(1)
	for i := 0; i < 4096; i++ {
		values = append(values, float64(rng.Intn(256)))
	}
	syn, err := wavelet.Build(values, 0, 256, 8, 1.0, stats.NewRNG(2))
	if err != nil {
		log.Fatal(err)
	}
	exact := 0.0
	for _, v := range values {
		if v >= 64 && v <= 127 {
			exact++
		}
	}
	got, err := syn.Count(64, 127)
	if err != nil {
		log.Fatal(err)
	}
	diff := got - exact
	fmt.Println("within noise bound:", diff*diff < 9*syn.QueryVarianceBound())
	fmt.Println("budget:", syn.Epsilon())
	// Output:
	// within noise bound: true
	// budget: 1
}
