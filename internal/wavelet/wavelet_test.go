package wavelet

import (
	"math"
	"testing"
	"testing/quick"

	"privrange/internal/dataset"
	"privrange/internal/stats"
)

func TestBuildValidation(t *testing.T) {
	t.Parallel()
	rng := stats.NewRNG(1)
	cases := []struct {
		name   string
		lo, hi float64
		levels int
		eps    float64
		nilRNG bool
	}{
		{name: "empty domain", lo: 3, hi: 3, levels: 4, eps: 1},
		{name: "zero levels", lo: 0, hi: 8, levels: 0, eps: 1},
		{name: "too deep", lo: 0, hi: 8, levels: MaxLevels + 1, eps: 1},
		{name: "zero eps", lo: 0, hi: 8, levels: 3, eps: 0},
		{name: "inf eps", lo: 0, hi: 8, levels: 3, eps: math.Inf(1)},
		{name: "nil rng", lo: 0, hi: 8, levels: 3, eps: 1, nilRNG: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			r := rng
			if tc.nilRNG {
				r = nil
			}
			if _, err := Build([]float64{1}, tc.lo, tc.hi, tc.levels, tc.eps, r); err == nil {
				t.Error("want error")
			}
		})
	}
}

// TestTransformInvertible: with negligible noise, the analysis+synthesis
// pipeline must reproduce exact counts — the Haar transform is a
// bijection.
func TestTransformInvertible(t *testing.T) {
	t.Parallel()
	f := func(raw []uint8, loLeaf, span uint8) bool {
		values := make([]float64, len(raw))
		for i, b := range raw {
			values[i] = float64(b % 64)
		}
		s, err := Build(values, 0, 64, 6, 1e9, stats.NewRNG(1))
		if err != nil {
			return false
		}
		l := float64(loLeaf % 64)
		u := l + float64(span%32)
		got, err := s.Count(l, u+0.999)
		if err != nil {
			return false
		}
		exact := 0.0
		for _, v := range values {
			if v >= l && v <= u+0.999 {
				exact++
			}
		}
		return math.Abs(got-exact) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCountEdgeCases(t *testing.T) {
	t.Parallel()
	s, err := Build([]float64{-5, 3, 200}, 0, 8, 3, 1e9, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	// Clipped records are retained at the edges.
	total, err := s.Count(0, 7.999)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-3) > 0.01 {
		t.Errorf("total = %v, want 3", total)
	}
	if got, err := s.Count(50, 60); err != nil || got != 0 {
		t.Errorf("out of domain = %v, %v", got, err)
	}
	if _, err := s.Count(5, 1); err == nil {
		t.Error("inverted range should fail")
	}
	if s.Leaves() != 8 || s.LeafWidth() != 1 || s.Epsilon() != 1e9 {
		t.Errorf("metadata wrong: %d %v %v", s.Leaves(), s.LeafWidth(), s.Epsilon())
	}
}

func TestNoiseUnbiasedAndBounded(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 3, Records: 8000})
	if err != nil {
		t.Fatal(err)
	}
	const (
		eps    = 1.0
		levels = 8
		trials = 400
	)
	truth, err := series.RangeCount(64, 127.999)
	if err != nil {
		t.Fatal(err)
	}
	root := stats.NewRNG(5)
	var errs stats.Running
	var bound float64
	for trial := 0; trial < trials; trial++ {
		s, err := Build(series.Values, 0, 256, levels, eps, root.Child(int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		bound = s.QueryVarianceBound()
		got, err := s.Count(64, 127.999)
		if err != nil {
			t.Fatal(err)
		}
		errs.Add(got - float64(truth))
	}
	if se := errs.StdErr(); math.Abs(errs.Mean()) > 4*se {
		t.Errorf("wavelet count biased: mean error %v (4 SE %v)", errs.Mean(), 4*se)
	}
	if errs.Variance() > bound {
		t.Errorf("empirical variance %v above bound %v", errs.Variance(), bound)
	}
}

func TestRepeatQueriesDeterministic(t *testing.T) {
	t.Parallel()
	s, err := Build([]float64{1, 2, 3}, 0, 8, 3, 0.5, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Count(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Count(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("queries must be deterministic after build")
	}
}

// TestClosedEndpointOnBoundary mirrors the dyadic regression: u exactly
// on a cell boundary must include the records at u.
func TestClosedEndpointOnBoundary(t *testing.T) {
	t.Parallel()
	values := make([]float64, 0, 300)
	for i := 0; i < 300; i++ {
		values = append(values, 4)
	}
	values = append(values, 1, 2, 3)
	s, err := Build(values, 0, 8, 3, 1e9, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Count(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got < 302 {
		t.Errorf("Count(0,4) = %v, must include the 300 records at value 4", got)
	}
}
