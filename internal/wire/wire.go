// Package wire defines the compact binary message format spoken between
// IoT nodes and the base station, plus exact size accounting. The paper's
// communication-cost claims are counted in samples shipped; this codec
// turns them into concrete bytes so the iot simulator can report both.
//
// Framing: every message starts with a one-byte type tag followed by a
// type-specific body. Integers use unsigned varints (most ranks and sizes
// are small); sample values use raw IEEE-754 float64 (sensor readings have
// no exploitable integer structure in general). Messages are
// self-delimiting, so streams of messages need no extra framing.
package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"privrange/internal/sampling"
)

// Message type tags.
const (
	TagSampleReport byte = 0x01
	TagHeartbeat    byte = 0x02
	TagResample     byte = 0x03
	TagAck          byte = 0x04
	TagTraceContext byte = 0x05
)

// maxSamplesPerMessage bounds decode-side allocation against corrupt or
// hostile length prefixes.
const maxSamplesPerMessage = 1 << 24

// Message is any node/base-station message.
type Message interface {
	// Tag returns the message's wire type tag.
	Tag() byte
	// encodeBody appends the body (everything after the tag) to w.
	encodeBody(w *bytes.Buffer)
	// decodeBody parses the body from r.
	decodeBody(r *bytes.Reader) error
}

// SampleReport carries a batch of rank-annotated samples from a node,
// together with the node's current dataset size (needed by the estimator
// and virtually free to include).
type SampleReport struct {
	NodeID int
	N      int
	// Replace indicates the receiver must discard the node's previously
	// stored samples: the node redrew from scratch (its data changed)
	// rather than topping an existing sample up. When false the samples
	// are incremental and merge with what the base station already holds.
	Replace bool
	Samples []sampling.Sample
}

// Tag implements Message.
func (*SampleReport) Tag() byte { return TagSampleReport }

// Heartbeat is a node's periodic liveness message. The paper observes
// that up to a handful of samples can ride along in an ordinary heartbeat
// for free; Piggyback carries them.
type Heartbeat struct {
	NodeID    int
	N         int
	Piggyback []sampling.Sample
}

// Tag implements Message.
func (*Heartbeat) Tag() byte { return TagHeartbeat }

// Resample commands a node to raise its sampling rate to Rate and ship
// the new samples — the paper's "collect more samples" control path.
type Resample struct {
	NodeID int
	// Rate is the requested Bernoulli sampling probability.
	Rate float64
}

// Tag implements Message.
func (*Resample) Tag() byte { return TagResample }

// Ack acknowledges a command.
type Ack struct {
	NodeID int
}

// Tag implements Message.
func (*Ack) Tag() byte { return TagAck }

// TraceContext carries a distributed-trace context alongside a command
// on the node protocol, so a sampled collection round triggered by a
// traced sale can be followed down to the nodes. The body is fixed
// width (8+8+1 bytes, little-endian ids + a flags octet, bit 0 =
// sampled) — constant cost, and a peer that predates the tag rejects
// it cleanly at Decode (unknown tag) instead of desyncing the stream,
// so senders must only emit it to peers that advertise understanding.
// Carrying only ids and a flag, it can never leak sample values.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
	Sampled bool
}

// Tag implements Message.
func (*TraceContext) Tag() byte { return TagTraceContext }

// encodeBufs and decodeReaders recycle the codec's scratch objects
// across messages: the ingest path encodes and decodes one message per
// node per round, and a fresh bytes.Buffer per Encode re-pays its
// growth allocations every time. Pooling changes neither the wire
// format nor the byte accounting — Encode still returns an exact-length
// private slice, and the pooled objects never escape this package.
var (
	encodeBufs    = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	decodeReaders = sync.Pool{New: func() any { return new(bytes.Reader) }}
)

// Encode serializes a message to its wire form. The returned slice is
// freshly allocated and owned by the caller.
func Encode(m Message) ([]byte, error) {
	if m == nil {
		return nil, fmt.Errorf("wire: nil message")
	}
	buf := encodeBufs.Get().(*bytes.Buffer)
	buf.Reset()
	buf.WriteByte(m.Tag())
	m.encodeBody(buf)
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	encodeBufs.Put(buf)
	return out, nil
}

// Decode parses one message from data and returns it along with the
// number of bytes consumed.
func Decode(data []byte) (Message, int, error) {
	if len(data) == 0 {
		return nil, 0, fmt.Errorf("wire: empty input")
	}
	r := decodeReaders.Get().(*bytes.Reader)
	r.Reset(data)
	defer func() {
		// Drop the reference to the caller's data before pooling so the
		// pool never pins a payload alive.
		r.Reset(nil)
		decodeReaders.Put(r)
	}()
	tag, _ := r.ReadByte()
	var m Message
	switch tag {
	case TagSampleReport:
		m = &SampleReport{}
	case TagHeartbeat:
		m = &Heartbeat{}
	case TagResample:
		m = &Resample{}
	case TagAck:
		m = &Ack{}
	case TagTraceContext:
		m = &TraceContext{}
	default:
		return nil, 0, fmt.Errorf("wire: unknown message tag 0x%02x", tag)
	}
	if err := m.decodeBody(r); err != nil {
		return nil, 0, fmt.Errorf("wire: decode tag 0x%02x: %w", tag, err)
	}
	consumed := len(data) - r.Len()
	return m, consumed, nil
}

// EncodedSize returns the exact wire size of the message in bytes.
func EncodedSize(m Message) (int, error) {
	b, err := Encode(m)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// --- body codecs -----------------------------------------------------------

func putUvarint(w *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.Write(tmp[:n])
}

func putFloat(w *bytes.Buffer, f float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
	w.Write(tmp[:])
}

func readUvarint(r *bytes.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

func readFloat(r *bytes.Reader) (float64, error) {
	var tmp [8]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(tmp[:])), nil
}

func encodeSamples(w *bytes.Buffer, samples []sampling.Sample) {
	putUvarint(w, uint64(len(samples)))
	// Ranks are strictly increasing; delta-encode them so long reports
	// stay compact.
	prev := uint64(0)
	for _, s := range samples {
		putFloat(w, s.Value)
		rank := uint64(s.Rank)
		putUvarint(w, rank-prev)
		prev = rank
	}
}

func decodeSamples(r *bytes.Reader) ([]sampling.Sample, error) {
	count, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if count > maxSamplesPerMessage {
		return nil, fmt.Errorf("sample count %d exceeds limit", count)
	}
	if count == 0 {
		return nil, nil
	}
	samples := make([]sampling.Sample, 0, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		v, err := readFloat(r)
		if err != nil {
			return nil, err
		}
		delta, err := readUvarint(r)
		if err != nil {
			return nil, err
		}
		if delta == 0 {
			return nil, fmt.Errorf("sample %d: zero rank delta (ranks must increase)", i)
		}
		prev += delta
		if prev > math.MaxInt32 {
			return nil, fmt.Errorf("sample %d: rank %d implausibly large", i, prev)
		}
		samples = append(samples, sampling.Sample{Value: v, Rank: int(prev)})
	}
	return samples, nil
}

func (m *SampleReport) encodeBody(w *bytes.Buffer) {
	putUvarint(w, uint64(m.NodeID))
	putUvarint(w, uint64(m.N))
	if m.Replace {
		w.WriteByte(1)
	} else {
		w.WriteByte(0)
	}
	encodeSamples(w, m.Samples)
}

func (m *SampleReport) decodeBody(r *bytes.Reader) error {
	id, err := readUvarint(r)
	if err != nil {
		return err
	}
	n, err := readUvarint(r)
	if err != nil {
		return err
	}
	flag, err := r.ReadByte()
	if err != nil {
		return err
	}
	if flag > 1 {
		return fmt.Errorf("invalid replace flag 0x%02x", flag)
	}
	samples, err := decodeSamples(r)
	if err != nil {
		return err
	}
	m.NodeID, m.N, m.Replace, m.Samples = int(id), int(n), flag == 1, samples
	return nil
}

func (m *Heartbeat) encodeBody(w *bytes.Buffer) {
	putUvarint(w, uint64(m.NodeID))
	putUvarint(w, uint64(m.N))
	encodeSamples(w, m.Piggyback)
}

func (m *Heartbeat) decodeBody(r *bytes.Reader) error {
	id, err := readUvarint(r)
	if err != nil {
		return err
	}
	n, err := readUvarint(r)
	if err != nil {
		return err
	}
	samples, err := decodeSamples(r)
	if err != nil {
		return err
	}
	m.NodeID, m.N, m.Piggyback = int(id), int(n), samples
	return nil
}

func (m *Resample) encodeBody(w *bytes.Buffer) {
	putUvarint(w, uint64(m.NodeID))
	putFloat(w, m.Rate)
}

func (m *Resample) decodeBody(r *bytes.Reader) error {
	id, err := readUvarint(r)
	if err != nil {
		return err
	}
	rate, err := readFloat(r)
	if err != nil {
		return err
	}
	if rate < 0 || rate > 1 || math.IsNaN(rate) {
		return fmt.Errorf("resample rate %v outside [0, 1]", rate)
	}
	m.NodeID, m.Rate = int(id), rate
	return nil
}

func (m *Ack) encodeBody(w *bytes.Buffer) {
	putUvarint(w, uint64(m.NodeID))
}

func (m *Ack) decodeBody(r *bytes.Reader) error {
	id, err := readUvarint(r)
	if err != nil {
		return err
	}
	m.NodeID = int(id)
	return nil
}

func (m *TraceContext) encodeBody(w *bytes.Buffer) {
	var tmp [17]byte
	binary.LittleEndian.PutUint64(tmp[0:8], m.TraceID)
	binary.LittleEndian.PutUint64(tmp[8:16], m.SpanID)
	if m.Sampled {
		tmp[16] = 1
	}
	w.Write(tmp[:])
}

func (m *TraceContext) decodeBody(r *bytes.Reader) error {
	var tmp [17]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return err
	}
	// Unknown flag bits are tolerated (forward compatibility); only bit
	// 0 is defined today.
	m.TraceID = binary.LittleEndian.Uint64(tmp[0:8])
	m.SpanID = binary.LittleEndian.Uint64(tmp[8:16])
	m.Sampled = tmp[16]&1 == 1
	return nil
}

// Interface compliance.
var (
	_ Message = (*SampleReport)(nil)
	_ Message = (*Heartbeat)(nil)
	_ Message = (*Resample)(nil)
	_ Message = (*Ack)(nil)
	_ Message = (*TraceContext)(nil)
)
