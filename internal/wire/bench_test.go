package wire

import (
	"testing"

	"privrange/internal/sampling"
)

func benchReport(n int) *SampleReport {
	report := &SampleReport{NodeID: 3, N: n * 10}
	for i := 0; i < n; i++ {
		report.Samples = append(report.Samples, sampling.Sample{
			Value: float64(i % 256),
			Rank:  i*7 + 1,
		})
	}
	return report
}

// BenchmarkEncodeReport measures serializing a 1 000-sample report — the
// dominant message on the wire.
func BenchmarkEncodeReport(b *testing.B) {
	report := benchReport(1000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(report); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeReport measures the matching parse.
func BenchmarkDecodeReport(b *testing.B) {
	data, err := Encode(benchReport(1000))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
