package wire

import (
	"bytes"
	"testing"

	"privrange/internal/sampling"
)

// FuzzDecode drives the codec with arbitrary inputs: it must never
// panic, must bound its memory (hostile length prefixes), and anything
// it accepts must re-encode to a decodable message.
func FuzzDecode(f *testing.F) {
	// Seed corpus: one valid encoding of each message type plus known
	// tricky prefixes.
	seeds := []Message{
		&SampleReport{NodeID: 3, N: 100, Samples: []sampling.Sample{{Value: 1.5, Rank: 2}, {Value: 9, Rank: 77}}},
		&SampleReport{NodeID: 0, N: 0},
		&Heartbeat{NodeID: 1, N: 10, Piggyback: []sampling.Sample{{Value: 4, Rank: 4}}},
		&Resample{NodeID: 2, Rate: 0.5},
		&Ack{NodeID: 9},
	}
	for _, m := range seeds {
		data, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{TagSampleReport, 0xff, 0xff, 0xff})
	f.Add([]byte{0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, consumed, err := Decode(data)
		if err != nil {
			return
		}
		if m == nil || consumed <= 0 || consumed > len(data) {
			t.Fatalf("accepting decode returned m=%v consumed=%d len=%d", m, consumed, len(data))
		}
		// Round-trip stability: re-encoding an accepted message must
		// produce bytes that decode to the same message.
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("re-encode of accepted message failed: %v", err)
		}
		back, reConsumed, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if reConsumed != len(re) {
			t.Fatalf("re-decode consumed %d of %d", reConsumed, len(re))
		}
		re2, err := Encode(back)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("encoding not canonical: % x vs % x", re, re2)
		}
	})
}
