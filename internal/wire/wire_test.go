package wire

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"privrange/internal/sampling"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	back, consumed, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(data) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(data))
	}
	return back
}

func TestRoundTripAllTypes(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		m    Message
	}{
		{
			name: "sample report",
			m: &SampleReport{NodeID: 7, N: 1000, Samples: []sampling.Sample{
				{Value: 12.5, Rank: 3}, {Value: 77, Rank: 40}, {Value: 77, Rank: 41},
			}},
		},
		{name: "empty sample report", m: &SampleReport{NodeID: 1, N: 50}},
		{
			name: "replace report",
			m: &SampleReport{NodeID: 7, N: 80, Replace: true, Samples: []sampling.Sample{
				{Value: 4, Rank: 2},
			}},
		},
		{
			name: "heartbeat with piggyback",
			m: &Heartbeat{NodeID: 3, N: 200, Piggyback: []sampling.Sample{
				{Value: -1.5, Rank: 10},
			}},
		},
		{name: "bare heartbeat", m: &Heartbeat{NodeID: 3, N: 200}},
		{name: "resample", m: &Resample{NodeID: 9, Rate: 0.375}},
		{name: "ack", m: &Ack{NodeID: 4}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			back := roundTrip(t, tc.m)
			if !reflect.DeepEqual(tc.m, back) {
				t.Errorf("round trip mismatch:\n in: %#v\nout: %#v", tc.m, back)
			}
		})
	}
}

func TestEncodedSizeMatchesEncoding(t *testing.T) {
	t.Parallel()
	m := &SampleReport{NodeID: 2, N: 500, Samples: []sampling.Sample{
		{Value: 1, Rank: 1}, {Value: 2, Rank: 100}, {Value: 3, Rank: 10000},
	}}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	size, err := EncodedSize(m)
	if err != nil {
		t.Fatal(err)
	}
	if size != len(data) {
		t.Errorf("EncodedSize = %d, len = %d", size, len(data))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		data []byte
	}{
		{name: "empty", data: nil},
		{name: "unknown tag", data: []byte{0xff, 0x01}},
		{name: "truncated report", data: []byte{TagSampleReport, 0x01}},
		{name: "truncated heartbeat", data: []byte{TagHeartbeat}},
		{name: "truncated resample", data: []byte{TagResample, 0x01, 0x00}},
		{name: "truncated ack", data: []byte{TagAck}},
		// Sample count huge but no bytes follow.
		{name: "hostile count", data: []byte{TagSampleReport, 0x01, 0x01, 0xff, 0xff, 0xff, 0xff, 0x7f}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if _, _, err := Decode(tc.data); err == nil {
				t.Error("want decode error")
			}
		})
	}
}

func TestDecodeRejectsNonIncreasingRanks(t *testing.T) {
	t.Parallel()
	// Hand-build a report whose second rank delta is zero.
	m := &SampleReport{NodeID: 1, N: 10, Samples: []sampling.Sample{{Value: 1, Rank: 2}}}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Append one more sample with delta 0: 8 value bytes + varint 0.
	data[len(data)-9-1] = 2 // bump count to 2 (count byte precedes first sample: tag,id,n,count)
	data = append(data, make([]byte, 8)...)
	data = append(data, 0x00)
	if _, _, err := Decode(data); err == nil {
		t.Error("zero rank delta should fail")
	}
}

func TestResampleRateValidation(t *testing.T) {
	t.Parallel()
	bad := &Resample{NodeID: 1, Rate: 1.5}
	data, err := Encode(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(data); err == nil {
		t.Error("rate > 1 should fail on decode")
	}
}

func TestEncodeNil(t *testing.T) {
	t.Parallel()
	if _, err := Encode(nil); err == nil {
		t.Error("nil message should fail")
	}
}

func TestSampleReportRoundTripProperty(t *testing.T) {
	t.Parallel()
	f := func(id uint16, n uint16, values []float64) bool {
		report := &SampleReport{NodeID: int(id), N: int(n)}
		rank := 0
		for _, v := range values {
			if math.IsNaN(v) {
				continue // NaN != NaN breaks DeepEqual; values are sensor readings, never NaN
			}
			rank += 1 + int(math.Abs(math.Mod(v, 7)))
			report.Samples = append(report.Samples, sampling.Sample{Value: v, Rank: rank})
		}
		data, err := Encode(report)
		if err != nil {
			return false
		}
		back, consumed, err := Decode(data)
		if err != nil {
			return false
		}
		return consumed == len(data) && reflect.DeepEqual(report, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStreamOfMessages(t *testing.T) {
	t.Parallel()
	msgs := []Message{
		&Heartbeat{NodeID: 1, N: 10},
		&SampleReport{NodeID: 1, N: 10, Samples: []sampling.Sample{{Value: 5, Rank: 2}}},
		&Ack{NodeID: 1},
	}
	var stream []byte
	for _, m := range msgs {
		data, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, data...)
	}
	// Messages are self-delimiting: decode them back-to-back.
	var got []Message
	for len(stream) > 0 {
		m, consumed, err := Decode(stream)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m)
		stream = stream[consumed:]
	}
	if !reflect.DeepEqual(msgs, got) {
		t.Errorf("stream mismatch:\n in: %#v\nout: %#v", msgs, got)
	}
}

func TestDeltaEncodingIsCompact(t *testing.T) {
	t.Parallel()
	// 1000 consecutive ranks: deltas are all 1, so the report should cost
	// ~9 bytes per sample (8 value + 1 delta), not 8+varint(rank).
	report := &SampleReport{NodeID: 1, N: 100000}
	for i := 0; i < 1000; i++ {
		report.Samples = append(report.Samples, sampling.Sample{Value: float64(i), Rank: 90000 + i})
	}
	size, err := EncodedSize(report)
	if err != nil {
		t.Fatal(err)
	}
	// First delta is large (~3 bytes); the rest are 1 byte each.
	if size > 1000*9+32 {
		t.Errorf("encoded size %d larger than expected for delta encoding", size)
	}
}

// TestDecodeNeverPanicsOnGarbage feeds random byte soup to Decode; the
// codec must fail cleanly (error) or parse, never panic, and a reported
// consumed length must stay within the input.
func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	t.Parallel()
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		m, consumed, err := Decode(data)
		if err != nil {
			return true
		}
		return m != nil && consumed > 0 && consumed <= len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanicsOnTruncatedValid truncates valid encodings at
// every length; all prefixes must decode cleanly or error, never panic.
func TestDecodeNeverPanicsOnTruncatedValid(t *testing.T) {
	t.Parallel()
	msgs := []Message{
		&SampleReport{NodeID: 3, N: 1000, Samples: []sampling.Sample{
			{Value: 1.5, Rank: 2}, {Value: 7, Rank: 88}, {Value: 9.25, Rank: 901},
		}},
		&Heartbeat{NodeID: 9, N: 44, Piggyback: []sampling.Sample{{Value: 3, Rank: 4}}},
		&Resample{NodeID: 2, Rate: 0.75},
		&Ack{NodeID: 1},
	}
	for _, m := range msgs {
		data, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(data); cut++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on %T truncated at %d: %v", m, cut, r)
					}
				}()
				_, _, _ = Decode(data[:cut])
			}()
		}
	}
}

// TestPooledCodecConcurrentRoundTrips hammers Encode/Decode from many
// goroutines to prove the sync.Pool reuse never bleeds state between
// messages: every round-tripped report must come back exactly as sent,
// and encoded bytes must be private copies unaffected by later encodes.
func TestPooledCodecConcurrentRoundTrips(t *testing.T) {
	t.Parallel()
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				samples := make([]sampling.Sample, w+1)
				for j := range samples {
					samples[j] = sampling.Sample{Value: float64(w*1000 + i + j), Rank: 3*j + i%3 + 1}
				}
				msg := &SampleReport{NodeID: w, N: 10000 + i, Replace: i%2 == 0, Samples: samples}
				data, err := Encode(msg)
				if err != nil {
					errs <- err
					return
				}
				snapshot := append([]byte(nil), data...)
				// Interleave another encode before decoding: a pooled
				// buffer that leaked into data would be clobbered here.
				if _, err := Encode(&Ack{NodeID: w}); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(data, snapshot) {
					errs <- fmt.Errorf("worker %d iter %d: encoded bytes mutated by a later Encode", w, i)
					return
				}
				decoded, n, err := Decode(data)
				if err != nil {
					errs <- err
					return
				}
				if n != len(data) {
					errs <- fmt.Errorf("worker %d iter %d: consumed %d of %d", w, i, n, len(data))
					return
				}
				got, ok := decoded.(*SampleReport)
				if !ok || got.NodeID != msg.NodeID || got.N != msg.N || got.Replace != msg.Replace ||
					len(got.Samples) != len(msg.Samples) {
					errs <- fmt.Errorf("worker %d iter %d: round trip mismatch: %+v", w, i, decoded)
					return
				}
				for j := range got.Samples {
					if got.Samples[j] != msg.Samples[j] {
						errs <- fmt.Errorf("worker %d iter %d sample %d: %+v != %+v",
							w, i, j, got.Samples[j], msg.Samples[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
