package dp

import (
	"fmt"
	"sync"
)

// Accountant tracks cumulative privacy loss under sequential composition:
// answering queries with budgets ε₁, ε₂, … on the same data consumes
// ε₁+ε₂+… in total. A broker that keeps selling answers about the same
// dataset uses the accountant to know (and bound) its total exposure.
// Accountant is safe for concurrent use; its zero value has no cap.
type Accountant struct {
	mu    sync.Mutex
	spent float64
	cap   float64 // 0 means unlimited
	n     int
}

// NewAccountant returns an accountant that refuses to exceed the given
// total budget. A zero cap means unlimited. It returns an error for a
// negative cap.
func NewAccountant(totalBudget float64) (*Accountant, error) {
	if totalBudget < 0 {
		return nil, fmt.Errorf("dp: negative total budget %v", totalBudget)
	}
	return &Accountant{cap: totalBudget}, nil
}

// Spend records a query that consumed epsilon. It returns an error (and
// records nothing) if epsilon is negative or the cap would be exceeded.
func (a *Accountant) Spend(epsilon float64) error {
	if epsilon < 0 {
		return fmt.Errorf("dp: cannot spend negative epsilon %v", epsilon)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cap > 0 && a.spent+epsilon > a.cap {
		return fmt.Errorf("dp: budget exhausted: spent %.4f + %.4f exceeds cap %.4f", a.spent, epsilon, a.cap)
	}
	a.spent += epsilon
	a.n++
	return nil
}

// Spent returns the cumulative privacy loss so far.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Remaining returns the budget left before the cap, or +Inf semantics via
// ok=false when uncapped.
func (a *Accountant) Remaining() (rem float64, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cap == 0 {
		return 0, false
	}
	return a.cap - a.spent, true
}

// Queries returns how many spends were recorded.
func (a *Accountant) Queries() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}
