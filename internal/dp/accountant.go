package dp

import (
	"fmt"
	"math"
	"sync"

	"privrange/internal/telemetry"
)

// Accountant tracks cumulative privacy loss under sequential composition:
// answering queries with budgets ε₁, ε₂, … on the same data consumes
// ε₁+ε₂+… in total. A broker that keeps selling answers about the same
// dataset uses the accountant to know (and bound) its total exposure.
// Accountant is safe for concurrent use; its zero value has no cap.
type Accountant struct {
	mu    sync.Mutex
	spent float64
	cap   float64 // 0 means unlimited
	n     int

	// Telemetry handles (all optional, nil-safe): per-query privacy
	// loss is an operational signal, not just a proof artifact — ops
	// watch ε-spend the way they watch memory. Only the aggregate spend
	// crosses into telemetry, never anything query-derived.
	mSpent     *telemetry.Gauge
	mRemaining *telemetry.Gauge
	mReleases  *telemetry.Counter
}

// NewAccountant returns an accountant that refuses to exceed the given
// total budget. A zero cap means unlimited. It returns an error for a
// negative cap.
func NewAccountant(totalBudget float64) (*Accountant, error) {
	if totalBudget < 0 {
		return nil, fmt.Errorf("dp: negative total budget %v", totalBudget)
	}
	return &Accountant{cap: totalBudget}, nil
}

// Instrument attaches telemetry to the accountant: a gauge tracking
// cumulative ε spent, a gauge tracking the remaining budget (left unset
// while uncapped), and a counter of recorded releases. Any handle may
// be nil. The gauges are primed immediately so a scrape between
// Instrument and the first Spend sees the true state.
func (a *Accountant) Instrument(spent, remaining *telemetry.Gauge, releases *telemetry.Counter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mSpent = spent
	a.mRemaining = remaining
	a.mReleases = releases
	a.publishLocked()
}

// publishLocked pushes the current state to the attached gauges.
// Callers hold a.mu.
func (a *Accountant) publishLocked() {
	a.mSpent.Set(a.spent)
	if a.cap > 0 {
		a.mRemaining.Set(a.cap - a.spent)
	}
}

// Spend records a query that consumed epsilon. It returns an error (and
// records nothing) if epsilon is negative or the cap would be exceeded.
func (a *Accountant) Spend(epsilon float64) error {
	if epsilon < 0 {
		return fmt.Errorf("dp: cannot spend negative epsilon %v", epsilon)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cap > 0 && a.spent+epsilon > a.cap {
		return fmt.Errorf("dp: budget exhausted: spent %.4f + %.4f exceeds cap %.4f", a.spent, epsilon, a.cap)
	}
	a.spent += epsilon
	a.n++
	a.mReleases.Inc()
	a.publishLocked()
	return nil
}

// Spent returns the cumulative privacy loss so far.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Remaining returns the budget left before the cap, or +Inf semantics via
// ok=false when uncapped.
func (a *Accountant) Remaining() (rem float64, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cap == 0 {
		return 0, false
	}
	return a.cap - a.spent, true
}

// Queries returns how many spends were recorded.
func (a *Accountant) Queries() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// State is an accountant's durable bookkeeping: the cumulative ε
// released and the number of recorded spends. The market layer
// journals and snapshots it so privacy exposure survives a broker
// restart — a crash must never reset Σε′ to zero.
type State struct {
	Spent   float64 `json:"spent"`
	Queries int     `json:"queries"`
}

// Snapshot returns the accountant's current durable state.
func (a *Accountant) Snapshot() State {
	a.mu.Lock()
	defer a.mu.Unlock()
	return State{Spent: a.spent, Queries: a.n}
}

// Restore loads a previously snapshotted state into a pristine
// accountant. It refuses non-finite or negative values, a state over
// the accountant's cap, and — critically — an accountant that has
// already recorded spends: restoring over live bookkeeping would
// erase released ε. The cap itself is construction-time configuration
// and is not part of the state.
func (a *Accountant) Restore(s State) error {
	if math.IsNaN(s.Spent) || math.IsInf(s.Spent, 0) || s.Spent < 0 {
		return fmt.Errorf("dp: restore: spent %v is not a valid budget", s.Spent)
	}
	if s.Queries < 0 {
		return fmt.Errorf("dp: restore: negative query count %d", s.Queries)
	}
	if s.Queries == 0 && s.Spent != 0 {
		return fmt.Errorf("dp: restore: spent %v with zero recorded queries", s.Spent)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spent != 0 || a.n != 0 {
		return fmt.Errorf("dp: restore into an accountant that already recorded %d spends (Σε′=%.4f); restore must precede service", a.n, a.spent)
	}
	if a.cap > 0 && s.Spent > a.cap {
		return fmt.Errorf("dp: restore: spent %.4f exceeds cap %.4f", s.Spent, a.cap)
	}
	a.spent = s.Spent
	a.n = s.Queries
	a.publishLocked()
	return nil
}
