package dp

import (
	"fmt"
	"math"
)

// SequentialComposition returns the exact privacy cost of answering k
// queries at ε each under basic composition: k·ε (pure ε-DP, no δ).
func SequentialComposition(epsilon float64, k int) (float64, error) {
	if epsilon < 0 {
		return 0, fmt.Errorf("dp: negative epsilon %v", epsilon)
	}
	if k < 0 {
		return 0, fmt.Errorf("dp: negative composition count %d", k)
	}
	return float64(k) * epsilon, nil
}

// AdvancedComposition returns the total (ε_total, δ_slack)-DP guarantee
// of k-fold composition of ε-DP mechanisms under the strong composition
// theorem (Dwork, Rothblum & Vadhan 2010):
//
//	ε_total = √(2k·ln(1/δ_slack))·ε + k·ε·(e^ε − 1)
//
// For many small-ε queries this grows as √k instead of k, at the price
// of a failure probability δ_slack. A broker selling hundreds of answers
// about the same dataset uses this to report a much tighter cumulative
// guarantee than the accountant's linear sum.
func AdvancedComposition(epsilon, deltaSlack float64, k int) (float64, error) {
	if epsilon < 0 {
		return 0, fmt.Errorf("dp: negative epsilon %v", epsilon)
	}
	if deltaSlack <= 0 || deltaSlack >= 1 {
		return 0, fmt.Errorf("dp: delta slack %v outside (0, 1)", deltaSlack)
	}
	if k < 0 {
		return 0, fmt.Errorf("dp: negative composition count %d", k)
	}
	if k == 0 || epsilon == 0 {
		return 0, nil
	}
	kf := float64(k)
	return math.Sqrt(2*kf*math.Log(1/deltaSlack))*epsilon + kf*epsilon*math.Expm1(epsilon), nil
}

// BestComposition returns the smaller of the sequential and advanced
// bounds — advanced composition is only an improvement once k is large
// relative to ln(1/δ); below that the basic bound wins.
func BestComposition(epsilon, deltaSlack float64, k int) (float64, error) {
	seq, err := SequentialComposition(epsilon, k)
	if err != nil {
		return 0, err
	}
	adv, err := AdvancedComposition(epsilon, deltaSlack, k)
	if err != nil {
		return 0, err
	}
	return math.Min(seq, adv), nil
}
