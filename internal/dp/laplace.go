// Package dp implements the differential-privacy substrate the paper's
// broker relies on: the Laplace mechanism (Dwork et al. 2006), the Laplace
// distribution's CDF/quantile algebra the optimizer needs, privacy
// amplification by sampling (Kasiviswanathan et al. 2011, the paper's
// Lemma 3.4), and a sequential-composition budget accountant.
package dp

import (
	"fmt"
	"math"

	"privrange/internal/stats"
)

// Laplace describes a zero-centered Laplace distribution with scale b:
// density (1/2b)·exp(−|x|/b).
type Laplace struct {
	Scale float64
}

// NewLaplace returns the distribution with the given scale. It returns an
// error for a non-positive scale.
func NewLaplace(scale float64) (Laplace, error) {
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return Laplace{}, fmt.Errorf("dp: laplace scale %v must be positive and finite", scale)
	}
	return Laplace{Scale: scale}, nil
}

// Sample draws one variate using rng.
func (l Laplace) Sample(rng *stats.RNG) float64 {
	return rng.Laplace(l.Scale)
}

// CDF returns Pr[X ≤ x].
func (l Laplace) CDF(x float64) float64 {
	if x < 0 {
		return 0.5 * math.Exp(x/l.Scale)
	}
	return 1 - 0.5*math.Exp(-x/l.Scale)
}

// AbsCDF returns Pr[|X| ≤ t] = 1 − exp(−t/b) for t ≥ 0 (0 for t < 0).
// This is the quantity the paper's optimization constrains:
// Pr[|Lap(ε)| ≤ (α−α′)n] ≤ δ/δ′.
func (l Laplace) AbsCDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	return 1 - math.Exp(-t/l.Scale)
}

// AbsQuantile returns the t such that Pr[|X| ≤ t] = q, i.e.
// t = −b·ln(1−q). It returns an error for q outside [0, 1).
func (l Laplace) AbsQuantile(q float64) (float64, error) {
	if q < 0 || q >= 1 {
		return 0, fmt.Errorf("dp: quantile %v outside [0, 1)", q)
	}
	return -l.Scale * math.Log(1-q), nil
}

// Variance returns 2b².
func (l Laplace) Variance() float64 { return 2 * l.Scale * l.Scale }

// Mechanism is the Laplace mechanism for a numeric query with L1
// sensitivity Δ and privacy budget ε: it releases value + Lap(Δ/ε).
type Mechanism struct {
	// Epsilon is the privacy budget ε > 0.
	Epsilon float64
	// Sensitivity is the query's L1 sensitivity Δ > 0. The paper uses the
	// expected sensitivity E[Δγ̂] = 1/p of the RankCounting estimator.
	Sensitivity float64
}

// NewMechanism validates the parameters. It returns an error for
// non-positive ε or Δ.
func NewMechanism(epsilon, sensitivity float64) (Mechanism, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return Mechanism{}, fmt.Errorf("dp: epsilon %v must be positive and finite", epsilon)
	}
	if sensitivity <= 0 || math.IsNaN(sensitivity) || math.IsInf(sensitivity, 0) {
		return Mechanism{}, fmt.Errorf("dp: sensitivity %v must be positive and finite", sensitivity)
	}
	return Mechanism{Epsilon: epsilon, Sensitivity: sensitivity}, nil
}

// Noise returns the mechanism's noise distribution Lap(Δ/ε).
func (m Mechanism) Noise() Laplace {
	return Laplace{Scale: m.Sensitivity / m.Epsilon}
}

// Perturb releases a single ε-differentially-private value.
func (m Mechanism) Perturb(value float64, rng *stats.RNG) float64 {
	return value + m.Noise().Sample(rng)
}

// AmplifyBySampling applies the paper's Lemma 3.4 (privacy amplification
// by sampling): running an ε-DP mechanism on a Bernoulli(p) sample of the
// data is ε′-DP with ε′ = ln(1 − p + p·e^ε). It returns an error when p
// is outside [0, 1] or ε is negative.
func AmplifyBySampling(epsilon, p float64) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("dp: sampling probability %v outside [0, 1]", p)
	}
	if epsilon < 0 {
		return 0, fmt.Errorf("dp: negative epsilon %v", epsilon)
	}
	// math.Expm1/Log1p keep precision for small ε and small p, where the
	// naive formula cancels badly.
	return math.Log1p(p * math.Expm1(epsilon)), nil
}

// RequiredEpsilonForAmplified inverts Lemma 3.4: given a target effective
// budget ε′ and sampling rate p, it returns the base-mechanism ε with
// ln(1−p+p·e^ε) = ε′, i.e. ε = ln(1 + (e^{ε′}−1)/p). It returns an error
// when p ∉ (0, 1] or ε′ < 0.
func RequiredEpsilonForAmplified(epsilonPrime, p float64) (float64, error) {
	if p <= 0 || p > 1 {
		return 0, fmt.Errorf("dp: sampling probability %v outside (0, 1]", p)
	}
	if epsilonPrime < 0 {
		return 0, fmt.Errorf("dp: negative epsilon' %v", epsilonPrime)
	}
	return math.Log1p(math.Expm1(epsilonPrime) / p), nil
}
