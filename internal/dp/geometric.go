package dp

import (
	"fmt"
	"math"

	"privrange/internal/stats"
)

// Geometric is the two-sided geometric distribution (discrete Laplace):
// Pr[X = x] ∝ exp(−|x|/b) over the integers. Adding it to an integer
// count with b = Δ/ε yields ε-DP releases that are themselves integers —
// the natural mechanism for counting queries, and the discrete analogue
// of the paper's Laplace mechanism.
type Geometric struct {
	// Scale is b > 0; the continuous-Laplace analogue of the same name.
	Scale float64
}

// NewGeometric validates the scale.
func NewGeometric(scale float64) (Geometric, error) {
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return Geometric{}, fmt.Errorf("dp: geometric scale %v must be positive and finite", scale)
	}
	return Geometric{Scale: scale}, nil
}

// alpha returns the distribution parameter α = exp(−1/b) ∈ (0, 1).
func (g Geometric) alpha() float64 { return math.Exp(-1 / g.Scale) }

// Sample draws one two-sided geometric variate: the difference of two
// one-sided geometric variates with success probability 1−α, which has
// exactly the discrete-Laplace law.
func (g Geometric) Sample(rng *stats.RNG) int64 {
	a := g.alpha()
	return g.oneSided(rng, a) - g.oneSided(rng, a)
}

// oneSided draws G ≥ 0 with Pr[G = k] = (1−α)·α^k by inversion.
func (g Geometric) oneSided(rng *stats.RNG, a float64) int64 {
	u := rng.Float64()
	if u == 0 {
		return 0
	}
	// k = floor(ln(u)/ln(α)).
	return int64(math.Floor(math.Log(u) / math.Log(a)))
}

// Variance returns 2α/(1−α)², the discrete-Laplace variance.
func (g Geometric) Variance() float64 {
	a := g.alpha()
	return 2 * a / ((1 - a) * (1 - a))
}

// AbsCDF returns Pr[|X| ≤ t] for integer threshold t ≥ 0:
// 1 − 2·α^{t+1}/(1+α).
func (g Geometric) AbsCDF(t int64) float64 {
	if t < 0 {
		return 0
	}
	a := g.alpha()
	return 1 - 2*math.Pow(a, float64(t+1))/(1+a)
}

// DiscreteMechanism releases integer counts under ε-DP via geometric
// noise, the discrete analogue of Mechanism.
type DiscreteMechanism struct {
	Epsilon     float64
	Sensitivity float64
}

// NewDiscreteMechanism validates the parameters.
func NewDiscreteMechanism(epsilon, sensitivity float64) (DiscreteMechanism, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return DiscreteMechanism{}, fmt.Errorf("dp: epsilon %v must be positive and finite", epsilon)
	}
	if sensitivity <= 0 || math.IsNaN(sensitivity) || math.IsInf(sensitivity, 0) {
		return DiscreteMechanism{}, fmt.Errorf("dp: sensitivity %v must be positive and finite", sensitivity)
	}
	return DiscreteMechanism{Epsilon: epsilon, Sensitivity: sensitivity}, nil
}

// Noise returns the mechanism's noise distribution.
func (m DiscreteMechanism) Noise() Geometric {
	return Geometric{Scale: m.Sensitivity / m.Epsilon}
}

// Perturb releases one ε-DP integer count.
func (m DiscreteMechanism) Perturb(count int64, rng *stats.RNG) int64 {
	return count + m.Noise().Sample(rng)
}
