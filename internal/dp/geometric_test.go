package dp

import (
	"math"
	"testing"

	"privrange/internal/stats"
)

func TestNewGeometricValidation(t *testing.T) {
	t.Parallel()
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewGeometric(bad); err == nil {
			t.Errorf("NewGeometric(%v) should fail", bad)
		}
	}
	if _, err := NewGeometric(3); err != nil {
		t.Errorf("NewGeometric(3): %v", err)
	}
}

func TestGeometricMoments(t *testing.T) {
	t.Parallel()
	g, err := NewGeometric(2.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(13)
	var w stats.Running
	for i := 0; i < 300000; i++ {
		w.Add(float64(g.Sample(rng)))
	}
	if math.Abs(w.Mean()) > 0.05 {
		t.Errorf("mean = %v, want ~0", w.Mean())
	}
	want := g.Variance()
	if math.Abs(w.Variance()-want)/want > 0.05 {
		t.Errorf("variance = %v, want ~%v", w.Variance(), want)
	}
}

func TestGeometricAbsCDFMatchesEmpirical(t *testing.T) {
	t.Parallel()
	g, err := NewGeometric(1.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(17)
	const n = 200000
	thresholds := []int64{0, 1, 2, 5, 10}
	counts := make([]int, len(thresholds))
	for i := 0; i < n; i++ {
		x := g.Sample(rng)
		if x < 0 {
			x = -x
		}
		for j, th := range thresholds {
			if x <= th {
				counts[j]++
			}
		}
	}
	for j, th := range thresholds {
		got := float64(counts[j]) / n
		want := g.AbsCDF(th)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Pr[|X| <= %d] = %v, want %v", th, got, want)
		}
	}
	if g.AbsCDF(-1) != 0 {
		t.Error("AbsCDF(-1) should be 0")
	}
}

func TestGeometricApproachesLaplaceForLargeScale(t *testing.T) {
	t.Parallel()
	// For large b the discrete and continuous variances converge:
	// 2α/(1−α)² → 2b² as b → ∞.
	g := Geometric{Scale: 50}
	l := Laplace{Scale: 50}
	if rel := math.Abs(g.Variance()-l.Variance()) / l.Variance(); rel > 0.01 {
		t.Errorf("discrete variance %v vs continuous %v (rel %v)", g.Variance(), l.Variance(), rel)
	}
}

// TestDiscreteMechanismIndistinguishability checks the exact ε-DP ratio
// bound on neighbouring integer counts. The geometric mechanism's output
// probabilities are exactly proportional to α^{|x−count|}, so the ratio
// bound is exp(ε·|Δcount|/Δ) = e^ε here.
func TestDiscreteMechanismIndistinguishability(t *testing.T) {
	t.Parallel()
	const (
		eps    = 0.4
		trials = 400000
	)
	m, err := NewDiscreteMechanism(eps, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(23)
	histA := map[int64]int{}
	histB := map[int64]int{}
	for i := 0; i < trials; i++ {
		histA[m.Perturb(50, rng)]++
		histB[m.Perturb(51, rng)]++
	}
	bound := math.Exp(eps)
	for v, ca := range histA {
		cb := histB[v]
		if ca < 3000 || cb < 3000 {
			continue
		}
		ratio := float64(ca) / float64(cb)
		if ratio > bound*1.1 || 1/ratio > bound*1.1 {
			t.Errorf("output %d: ratio %v exceeds e^eps %v", v, ratio, bound)
		}
	}
}

func TestDiscreteMechanismValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewDiscreteMechanism(0, 1); err == nil {
		t.Error("epsilon=0 should fail")
	}
	if _, err := NewDiscreteMechanism(1, -1); err == nil {
		t.Error("negative sensitivity should fail")
	}
	m, err := NewDiscreteMechanism(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Noise().Scale; got != 4 {
		t.Errorf("noise scale = %v, want 4", got)
	}
}

func TestDiscreteOutputsAreIntegers(t *testing.T) {
	t.Parallel()
	m, err := NewDiscreteMechanism(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(29)
	for i := 0; i < 100; i++ {
		_ = m.Perturb(int64(i), rng) // compile-time int64: nothing to assert beyond type
	}
}
