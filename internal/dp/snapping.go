package dp

import (
	"fmt"
	"math"

	"privrange/internal/stats"
)

// SnappedMechanism is a hardened Laplace release following the structure
// of Mironov's snapping mechanism (CCS 2012): the input is clamped to
// [−Bound, Bound] before noising, the noisy value is snapped to a fixed
// grid Λ, and the result is clamped again. Clamping bounds the
// exploitable output range and snapping collapses the fine-grained
// floating-point artifacts of textbook Laplace sampling that Mironov's
// attack reads individual bits from.
//
// Scope note: this implementation provides the structural mitigations
// (clamp–noise–snap–clamp with Λ ≥ the noise scale's ulp granularity);
// it does not reproduce Mironov's exact-rounding analysis of the
// logarithm, so it should be treated as defense-in-depth hardening
// rather than a formally verified (ε, 0) guarantee on IEEE-754 doubles.
type SnappedMechanism struct {
	// Epsilon and Sensitivity calibrate the underlying Laplace noise.
	Epsilon     float64
	Sensitivity float64
	// Bound clamps inputs and outputs to [−Bound, Bound]; for counting
	// queries use the dataset size.
	Bound float64
	// Lambda is the snapping grid. Zero selects the smallest power of two
	// at least as large as the noise scale's 2⁻⁴⁰ fraction — fine enough
	// to be irrelevant for utility, coarse enough to absorb the mantissa
	// artifacts.
	Lambda float64
}

// NewSnappedMechanism validates parameters and fills the default grid.
func NewSnappedMechanism(epsilon, sensitivity, bound float64) (SnappedMechanism, error) {
	if _, err := NewMechanism(epsilon, sensitivity); err != nil {
		return SnappedMechanism{}, err
	}
	if bound <= 0 || math.IsNaN(bound) || math.IsInf(bound, 0) {
		return SnappedMechanism{}, fmt.Errorf("dp: snapping bound %v must be positive and finite", bound)
	}
	m := SnappedMechanism{Epsilon: epsilon, Sensitivity: sensitivity, Bound: bound}
	m.Lambda = defaultLambda(sensitivity / epsilon)
	return m, nil
}

// defaultLambda returns the smallest power of two ≥ scale·2⁻⁴⁰.
func defaultLambda(scale float64) float64 {
	return math.Ldexp(1, int(math.Ceil(math.Log2(scale)))-40)
}

// Perturb releases one hardened value.
func (m SnappedMechanism) Perturb(value float64, rng *stats.RNG) float64 {
	clamped := clamp(value, m.Bound)
	noisy := clamped + rng.Laplace(m.Sensitivity/m.Epsilon)
	snapped := math.Round(noisy/m.Lambda) * m.Lambda
	return clamp(snapped, m.Bound)
}

func clamp(v, bound float64) float64 {
	if v > bound {
		return bound
	}
	if v < -bound {
		return -bound
	}
	return v
}
