package dp

import (
	"fmt"
	"math"

	"privrange/internal/stats"
)

// ExponentialMechanism selects one of a set of candidates with
// probability proportional to exp(ε·u/(2Δu)), where u is each
// candidate's utility score and Δu the utility's sensitivity — the
// standard ε-DP selection mechanism (McSherry & Talwar 2007). The
// quantile release in internal/quantile uses it with
// u(v) = −|rank(v) − target|.
type ExponentialMechanism struct {
	// Epsilon is the privacy budget ε > 0.
	Epsilon float64
	// Sensitivity is Δu > 0, the max change of any candidate's utility
	// between neighbouring datasets.
	Sensitivity float64
}

// NewExponentialMechanism validates the parameters.
func NewExponentialMechanism(epsilon, sensitivity float64) (ExponentialMechanism, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return ExponentialMechanism{}, fmt.Errorf("dp: epsilon %v must be positive and finite", epsilon)
	}
	if sensitivity <= 0 || math.IsNaN(sensitivity) || math.IsInf(sensitivity, 0) {
		return ExponentialMechanism{}, fmt.Errorf("dp: sensitivity %v must be positive and finite", sensitivity)
	}
	return ExponentialMechanism{Epsilon: epsilon, Sensitivity: sensitivity}, nil
}

// Select returns the index of the chosen candidate. It uses the
// Gumbel-max formulation — argmax over scaled utilities plus i.i.d.
// Gumbel noise — which is exactly equivalent to softmax sampling but
// immune to overflow for large ε·u. It returns an error for an empty or
// non-finite utility list.
func (m ExponentialMechanism) Select(utilities []float64, rng *stats.RNG) (int, error) {
	if len(utilities) == 0 {
		return 0, fmt.Errorf("dp: no candidates")
	}
	scale := m.Epsilon / (2 * m.Sensitivity)
	best := -1
	bestScore := math.Inf(-1)
	for i, u := range utilities {
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return 0, fmt.Errorf("dp: utility %d is %v", i, u)
		}
		gumbel := -math.Log(-math.Log(uniformOpen(rng)))
		if score := u*scale + gumbel; score > bestScore {
			bestScore = score
			best = i
		}
	}
	return best, nil
}

// uniformOpen returns a uniform draw in the open interval (0, 1),
// avoiding the log(0) singularities of the Gumbel transform.
func uniformOpen(rng *stats.RNG) float64 {
	for {
		if u := rng.Float64(); u > 0 {
			return u
		}
	}
}
