package dp

import (
	"math"
	"testing"

	"privrange/internal/stats"
)

func TestNewExponentialMechanismValidation(t *testing.T) {
	t.Parallel()
	for _, bad := range []struct{ eps, sens float64 }{
		{0, 1}, {-1, 1}, {math.NaN(), 1}, {math.Inf(1), 1},
		{1, 0}, {1, -1}, {1, math.NaN()},
	} {
		if _, err := NewExponentialMechanism(bad.eps, bad.sens); err == nil {
			t.Errorf("NewExponentialMechanism(%v, %v) should fail", bad.eps, bad.sens)
		}
	}
	if _, err := NewExponentialMechanism(1, 2); err != nil {
		t.Errorf("valid mechanism rejected: %v", err)
	}
}

func TestExponentialSelectValidation(t *testing.T) {
	t.Parallel()
	m, err := NewExponentialMechanism(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	if _, err := m.Select(nil, rng); err == nil {
		t.Error("empty utilities should fail")
	}
	if _, err := m.Select([]float64{1, math.NaN()}, rng); err == nil {
		t.Error("NaN utility should fail")
	}
	if _, err := m.Select([]float64{1, math.Inf(1)}, rng); err == nil {
		t.Error("infinite utility should fail")
	}
}

func TestExponentialSelectPrefersHighUtility(t *testing.T) {
	t.Parallel()
	m, err := NewExponentialMechanism(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	utilities := []float64{10, 0, 0, 0}
	wins := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		idx, err := m.Select(utilities, rng)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 0 {
			wins++
		}
	}
	// Softmax weight of candidate 0 is e^20/(e^20+3): essentially always.
	if wins < trials*99/100 {
		t.Errorf("dominant candidate selected only %d/%d times", wins, trials)
	}
}

func TestExponentialSelectUniformAtZeroUtilityGap(t *testing.T) {
	t.Parallel()
	m, err := NewExponentialMechanism(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	counts := make([]int, 4)
	const trials = 40000
	for i := 0; i < trials; i++ {
		idx, err := m.Select([]float64{7, 7, 7, 7}, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-0.25) > 0.02 {
			t.Errorf("candidate %d frequency %v, want ~0.25", i, got)
		}
	}
}

func TestExponentialSelectHugeUtilitiesNoOverflow(t *testing.T) {
	t.Parallel()
	// The Gumbel-max formulation must survive utilities that would
	// overflow a naive softmax.
	m, err := NewExponentialMechanism(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(7)
	idx, err := m.Select([]float64{1e15, 1e15 - 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 && idx != 1 {
		t.Errorf("idx = %d", idx)
	}
}
