package dp

import (
	"math"
	"testing"

	"privrange/internal/stats"
)

func TestNewSnappedMechanismValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewSnappedMechanism(0, 1, 100); err == nil {
		t.Error("epsilon=0 should fail")
	}
	if _, err := NewSnappedMechanism(1, 0, 100); err == nil {
		t.Error("sensitivity=0 should fail")
	}
	if _, err := NewSnappedMechanism(1, 1, 0); err == nil {
		t.Error("bound=0 should fail")
	}
	if _, err := NewSnappedMechanism(1, 1, math.Inf(1)); err == nil {
		t.Error("infinite bound should fail")
	}
	m, err := NewSnappedMechanism(0.5, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Lambda <= 0 {
		t.Errorf("default lambda %v", m.Lambda)
	}
}

func TestSnappedOutputsOnGridAndBounded(t *testing.T) {
	t.Parallel()
	m, err := NewSnappedMechanism(1, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	for i := 0; i < 10000; i++ {
		out := m.Perturb(450, rng)
		if out > 500 || out < -500 {
			t.Fatalf("output %v escapes the bound", out)
		}
		// On the grid (or exactly at the clamp boundary).
		if out != 500 && out != -500 {
			q := out / m.Lambda
			if math.Abs(q-math.Round(q)) > 1e-6 {
				t.Fatalf("output %v not on the %v grid", out, m.Lambda)
			}
		}
	}
}

func TestSnappedPreservesUtility(t *testing.T) {
	t.Parallel()
	// The snap grid is ~2^-40 of the noise scale: the hardened release
	// must be statistically indistinguishable in mean/variance from the
	// plain mechanism.
	m, err := NewSnappedMechanism(0.5, 1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	var w stats.Running
	for i := 0; i < 100000; i++ {
		w.Add(m.Perturb(1234, rng))
	}
	if math.Abs(w.Mean()-1234) > 0.1 {
		t.Errorf("mean = %v, want ~1234", w.Mean())
	}
	wantVar := Laplace{Scale: 2}.Variance()
	if math.Abs(w.Variance()-wantVar)/wantVar > 0.05 {
		t.Errorf("variance = %v, want ~%v", w.Variance(), wantVar)
	}
}

func TestSnappedClampsHostileInput(t *testing.T) {
	t.Parallel()
	m, err := NewSnappedMechanism(1, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(7)
	// Inputs far outside the bound cannot push outputs past it.
	for _, hostile := range []float64{1e18, -1e18, math.MaxFloat64} {
		out := m.Perturb(hostile, rng)
		if out > 100 || out < -100 {
			t.Errorf("hostile input %v leaked through: %v", hostile, out)
		}
	}
}
