package dp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSequentialComposition(t *testing.T) {
	t.Parallel()
	got, err := SequentialComposition(0.1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5) > 1e-12 {
		t.Errorf("SequentialComposition = %v, want 5", got)
	}
	if _, err := SequentialComposition(-1, 3); err == nil {
		t.Error("negative epsilon should fail")
	}
	if _, err := SequentialComposition(1, -3); err == nil {
		t.Error("negative k should fail")
	}
}

func TestAdvancedCompositionFormula(t *testing.T) {
	t.Parallel()
	const (
		eps   = 0.1
		delta = 1e-6
		k     = 100
	)
	got, err := AdvancedComposition(eps, delta, k)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2*100*math.Log(1e6))*0.1 + 100*0.1*(math.Exp(0.1)-1)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("AdvancedComposition = %v, want %v", got, want)
	}
}

func TestAdvancedCompositionValidation(t *testing.T) {
	t.Parallel()
	if _, err := AdvancedComposition(-1, 1e-6, 10); err == nil {
		t.Error("negative epsilon should fail")
	}
	if _, err := AdvancedComposition(1, 0, 10); err == nil {
		t.Error("delta=0 should fail")
	}
	if _, err := AdvancedComposition(1, 1, 10); err == nil {
		t.Error("delta=1 should fail")
	}
	if _, err := AdvancedComposition(1, 1e-6, -1); err == nil {
		t.Error("negative k should fail")
	}
	got, err := AdvancedComposition(1, 1e-6, 0)
	if err != nil || got != 0 {
		t.Errorf("k=0 should compose to 0, got %v, %v", got, err)
	}
}

func TestAdvancedBeatsSequentialForManySmallQueries(t *testing.T) {
	t.Parallel()
	// 1000 queries at ε=0.01: advanced should be far below 10.
	seq, err := SequentialComposition(0.01, 1000)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := AdvancedComposition(0.01, 1e-6, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if adv >= seq {
		t.Errorf("advanced %v should beat sequential %v at k=1000", adv, seq)
	}
	if adv > seq/2 {
		t.Errorf("advanced %v should be well below half of sequential %v", adv, seq)
	}
}

func TestBestCompositionPicksMinimum(t *testing.T) {
	t.Parallel()
	f := func(epsRaw float64, kRaw uint16) bool {
		eps := math.Mod(math.Abs(epsRaw), 2)
		k := int(kRaw)%2000 + 1
		seq, err := SequentialComposition(eps, k)
		if err != nil {
			return false
		}
		adv, err := AdvancedComposition(eps, 1e-9, k)
		if err != nil {
			return false
		}
		best, err := BestComposition(eps, 1e-9, k)
		if err != nil {
			return false
		}
		return best == math.Min(seq, adv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// For a single large-ε query the basic bound must win.
	best, err := BestComposition(2, 1e-6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best != 2 {
		t.Errorf("single query should cost exactly its epsilon, got %v", best)
	}
}
