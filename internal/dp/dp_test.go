package dp

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"privrange/internal/stats"
)

func TestNewLaplaceValidation(t *testing.T) {
	t.Parallel()
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewLaplace(bad); err == nil {
			t.Errorf("NewLaplace(%v) should fail", bad)
		}
	}
	if _, err := NewLaplace(2); err != nil {
		t.Errorf("NewLaplace(2): %v", err)
	}
}

func TestLaplaceCDF(t *testing.T) {
	t.Parallel()
	l := Laplace{Scale: 2}
	cases := []struct {
		x    float64
		want float64
	}{
		{x: 0, want: 0.5},
		{x: math.Inf(1), want: 1},
		{x: math.Inf(-1), want: 0},
		{x: 2, want: 1 - 0.5*math.Exp(-1)},
		{x: -2, want: 0.5 * math.Exp(-1)},
	}
	for _, tc := range cases {
		if got := l.CDF(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestLaplaceAbsCDFQuantileInverse(t *testing.T) {
	t.Parallel()
	f := func(scaleRaw, qRaw float64) bool {
		scale := 0.1 + math.Abs(math.Mod(scaleRaw, 100))
		q := math.Mod(math.Abs(qRaw), 0.999)
		l := Laplace{Scale: scale}
		tq, err := l.AbsQuantile(q)
		if err != nil {
			return false
		}
		back := l.AbsCDF(tq)
		return math.Abs(back-q) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLaplaceAbsQuantileValidation(t *testing.T) {
	t.Parallel()
	l := Laplace{Scale: 1}
	if _, err := l.AbsQuantile(1); err == nil {
		t.Error("q=1 should fail (infinite quantile)")
	}
	if _, err := l.AbsQuantile(-0.1); err == nil {
		t.Error("q<0 should fail")
	}
}

func TestMechanismValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewMechanism(0, 1); err == nil {
		t.Error("epsilon=0 should fail")
	}
	if _, err := NewMechanism(1, 0); err == nil {
		t.Error("sensitivity=0 should fail")
	}
	if _, err := NewMechanism(math.NaN(), 1); err == nil {
		t.Error("NaN epsilon should fail")
	}
	m, err := NewMechanism(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Noise().Scale; got != 4 {
		t.Errorf("noise scale = %v, want 4", got)
	}
}

func TestMechanismNoiseMagnitude(t *testing.T) {
	t.Parallel()
	m, err := NewMechanism(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	var w stats.Running
	for i := 0; i < 100000; i++ {
		w.Add(m.Perturb(100, rng))
	}
	if math.Abs(w.Mean()-100) > 0.05 {
		t.Errorf("perturbed mean = %v, want ~100", w.Mean())
	}
	if math.Abs(w.Variance()-m.Noise().Variance())/m.Noise().Variance() > 0.05 {
		t.Errorf("perturbed variance = %v, want ~%v", w.Variance(), m.Noise().Variance())
	}
}

// TestMechanismIndistinguishability empirically checks the ε-DP guarantee
// on two neighbouring counts: the densities of the two output
// distributions must stay within a factor e^ε across a grid of buckets.
func TestMechanismIndistinguishability(t *testing.T) {
	t.Parallel()
	const (
		eps    = 0.5
		trials = 400000
		bucket = 1.0
	)
	m, err := NewMechanism(eps, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(17)
	histA := map[int]int{}
	histB := map[int]int{}
	for i := 0; i < trials; i++ {
		histA[int(math.Floor(m.Perturb(100, rng)/bucket))]++
		histB[int(math.Floor(m.Perturb(101, rng)/bucket))]++
	}
	bound := math.Exp(eps)
	for b, ca := range histA {
		cb := histB[b]
		// Only compare well-populated buckets; tails are sampling noise.
		if ca < 2000 || cb < 2000 {
			continue
		}
		ratio := float64(ca) / float64(cb)
		// Allow 15% statistical slack over the analytic bound.
		if ratio > bound*1.15 || 1/ratio > bound*1.15 {
			t.Errorf("bucket %d: ratio %v exceeds e^eps = %v", b, ratio, bound)
		}
	}
}

func TestAmplifyBySampling(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		eps  float64
		p    float64
		want float64
	}{
		{name: "p=1 is identity", eps: 2, p: 1, want: 2},
		{name: "p=0 is perfect privacy", eps: 5, p: 0, want: 0},
		{name: "paper formula", eps: 1, p: 0.5, want: math.Log(1 - 0.5 + 0.5*math.E)},
		{name: "eps=0 stays 0", eps: 0, p: 0.3, want: 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got, err := AmplifyBySampling(tc.eps, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("AmplifyBySampling(%v, %v) = %v, want %v", tc.eps, tc.p, got, tc.want)
			}
		})
	}
	if _, err := AmplifyBySampling(1, -0.1); err == nil {
		t.Error("p<0 should fail")
	}
	if _, err := AmplifyBySampling(-1, 0.5); err == nil {
		t.Error("negative eps should fail")
	}
}

func TestAmplificationAlwaysHelps(t *testing.T) {
	t.Parallel()
	f := func(epsRaw, pRaw float64) bool {
		eps := math.Abs(math.Mod(epsRaw, 10))
		p := math.Mod(math.Abs(pRaw), 1)
		got, err := AmplifyBySampling(eps, p)
		if err != nil {
			return false
		}
		// ε′ ≤ ε always, with equality only at p=1 or ε=0;
		// and ε′ ≤ p·(e^ε −1) (the standard upper bound).
		return got <= eps+1e-12 && got <= p*math.Expm1(eps)+1e-12 && got >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestRequiredEpsilonInvertsAmplification(t *testing.T) {
	t.Parallel()
	f := func(epsPrimeRaw, pRaw float64) bool {
		epsPrime := math.Abs(math.Mod(epsPrimeRaw, 5))
		p := 0.01 + math.Mod(math.Abs(pRaw), 0.99)
		eps, err := RequiredEpsilonForAmplified(epsPrime, p)
		if err != nil {
			return false
		}
		back, err := AmplifyBySampling(eps, p)
		if err != nil {
			return false
		}
		return math.Abs(back-epsPrime) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	if _, err := RequiredEpsilonForAmplified(1, 0); err == nil {
		t.Error("p=0 should fail")
	}
}

func TestAccountant(t *testing.T) {
	t.Parallel()
	a, err := NewAccountant(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(0.4); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(0.4); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(0.4); err == nil {
		t.Error("overspend should fail")
	}
	if got := a.Spent(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Spent = %v, want 0.8", got)
	}
	if rem, ok := a.Remaining(); !ok || math.Abs(rem-0.2) > 1e-12 {
		t.Errorf("Remaining = %v, %v; want 0.2, true", rem, ok)
	}
	if a.Queries() != 2 {
		t.Errorf("Queries = %d, want 2", a.Queries())
	}
	if err := a.Spend(-1); err == nil {
		t.Error("negative spend should fail")
	}
}

func TestAccountantUncapped(t *testing.T) {
	t.Parallel()
	var a Accountant
	for i := 0; i < 100; i++ {
		if err := a.Spend(10); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := a.Remaining(); ok {
		t.Error("uncapped accountant should report no remaining bound")
	}
	if _, err := NewAccountant(-1); err == nil {
		t.Error("negative cap should fail")
	}
}

func TestAccountantConcurrent(t *testing.T) {
	t.Parallel()
	a, err := NewAccountant(1000)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = a.Spend(1)
			}
		}()
	}
	wg.Wait()
	if got := a.Spent(); got != 800 {
		t.Errorf("Spent = %v, want 800", got)
	}
}

func TestAccountantSnapshotRestore(t *testing.T) {
	t.Parallel()
	a, err := NewAccountant(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(0.3); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(0.5); err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot()
	if snap.Queries != 2 || snap.Spent != a.Spent() {
		t.Fatalf("snapshot %+v does not match accountant (spent %v, 2 queries)", snap, a.Spent())
	}
	// Restore into a pristine twin: bit-identical running sum, and the
	// cap keeps binding from where the snapshot left off.
	b, err := NewAccountant(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if b.Spent() != snap.Spent || b.Queries() != snap.Queries {
		t.Fatalf("restored (%v, %d), want (%v, %d)", b.Spent(), b.Queries(), snap.Spent, snap.Queries)
	}
	if err := b.Spend(1.5); err == nil {
		t.Error("restored spend must count against the cap")
	}
	if err := b.Spend(0.5); err != nil {
		t.Errorf("in-budget spend after restore failed: %v", err)
	}
}

func TestAccountantRestoreValidation(t *testing.T) {
	t.Parallel()
	fresh := func() *Accountant {
		a, err := NewAccountant(1.0)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	bad := []State{
		{Spent: math.NaN(), Queries: 1},
		{Spent: math.Inf(1), Queries: 1},
		{Spent: -0.1, Queries: 1},
		{Spent: 0.1, Queries: -1},
		{Spent: 0.1, Queries: 0}, // spend with no recorded queries
		{Spent: 1.5, Queries: 3}, // over the cap
	}
	for _, s := range bad {
		if err := fresh().Restore(s); err == nil {
			t.Errorf("Restore accepted corrupt state %+v", s)
		}
	}
	// Restoring over live bookkeeping would erase released epsilon.
	a := fresh()
	if err := a.Spend(0.2); err != nil {
		t.Fatal(err)
	}
	if err := a.Restore(State{Spent: 0.1, Queries: 1}); err == nil {
		t.Error("Restore into a non-pristine accountant must fail")
	}
	// An uncapped accountant accepts any finite state.
	var u Accountant
	if err := u.Restore(State{Spent: 123.5, Queries: 9}); err != nil {
		t.Errorf("uncapped restore failed: %v", err)
	}
}
