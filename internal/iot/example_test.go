package iot_test

import (
	"fmt"
	"log"

	"privrange/internal/dataset"
	"privrange/internal/iot"
)

// Example drives the sampling protocol: initial collection, a top-up
// that ships only the new samples, and the communication bill.
func Example() {
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 1, Records: 8000})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := series.Partition(8)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := iot.New(parts, iot.Config{Seed: 2, FreeHeartbeatSamples: -1})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := nw.EnsureRate(0.1); err != nil {
		log.Fatal(err)
	}
	after10 := nw.Cost().SamplesShipped
	if _, err := nw.EnsureRate(0.3); err != nil {
		log.Fatal(err)
	}
	after30 := nw.Cost().SamplesShipped
	fmt.Println("rate:", nw.Rate())
	// The top-up ships only the difference: total ≈ 0.3·n, not 0.4·n.
	fmt.Println("no reshipping:", float64(after30) < 0.35*float64(nw.TotalN()))
	fmt.Println("second round shipped more:", after30 > after10)
	fmt.Println("messages billed:", nw.Cost().Messages > 0 && nw.Cost().Bytes > 0)
	// Output:
	// rate: 0.3
	// no reshipping: true
	// second round shipped more: true
	// messages billed: true
}
