package iot

import (
	"privrange/internal/telemetry"
)

// Breaker event types recorded in the telemetry event log. The breaker
// lifecycle for one node is open → half_open → (close | open again):
// tripping exiles the node, the backoff expiring half-opens it for one
// probationary attempt, and a success while on probation (or while
// tripped-and-counting) closes it.
const (
	EventBreakerOpen     = "breaker_open"
	EventBreakerHalfOpen = "breaker_half_open"
	EventBreakerClose    = "breaker_close"
)

// Metrics is the collection layer's telemetry: round progress, coverage
// and rate gauges, the communication bill mirrored as counters, and the
// breaker transition log. Everything recorded here is deployment
// aggregate state — node ids, byte counts, round clocks — never sampled
// values. A nil *Metrics (and any nil handle inside) records nothing.
type Metrics struct {
	collectionRounds *telemetry.Counter
	heartbeatRounds  *telemetry.Counter
	nodesRefreshed   *telemetry.Counter
	nodesFailed      *telemetry.Counter
	heartbeatsMissed *telemetry.Counter

	messages        *telemetry.Counter
	messagesLost    *telemetry.Counter
	bytes           *telemetry.Counter
	retransmissions *telemetry.Counter
	corrupted       *telemetry.Counter
	samplesShipped  *telemetry.Counter

	coverage  *telemetry.Gauge
	rate      *telemetry.Gauge
	nodesDown *telemetry.Gauge

	breakerOpens     *telemetry.Counter
	breakerHalfOpens *telemetry.Counter
	breakerCloses    *telemetry.Counter

	events *telemetry.EventLog
}

// NewMetrics registers the collection layer's metric catalog on r,
// tagging every series with the given static labels (typically the
// dataset name). The registry's shared event log receives breaker
// transitions.
func NewMetrics(r *telemetry.Registry, labels ...telemetry.Label) *Metrics {
	return &Metrics{
		collectionRounds: r.Counter("privrange_iot_collection_rounds_total", "collection rounds driven (EnsureRate/IngestRound)", labels...),
		heartbeatRounds:  r.Counter("privrange_iot_heartbeat_rounds_total", "liveness heartbeat rounds driven", labels...),
		nodesRefreshed:   r.Counter("privrange_iot_nodes_refreshed_total", "per-round node sample refreshes that succeeded", labels...),
		nodesFailed:      r.Counter("privrange_iot_nodes_failed_total", "per-round node collection attempts that failed", labels...),
		heartbeatsMissed: r.Counter("privrange_iot_heartbeats_missed_total", "heartbeats lost, corrupted past retries, or crash-swallowed", labels...),

		messages:        r.Counter("privrange_iot_messages_total", "protocol messages delivered end to end", labels...),
		messagesLost:    r.Counter("privrange_iot_messages_lost_total", "messages given up on after exhausting retries", labels...),
		bytes:           r.Counter("privrange_iot_bytes_total", "hop-weighted bytes billed on the wire", labels...),
		retransmissions: r.Counter("privrange_iot_retransmissions_total", "extra attempts caused by loss or detected corruption", labels...),
		corrupted:       r.Counter("privrange_iot_corrupted_messages_total", "attempts rejected by the wire decode path", labels...),
		samplesShipped:  r.Counter("privrange_iot_samples_shipped_total", "rank-annotated samples transferred end to end", labels...),

		coverage:  r.Gauge("privrange_iot_coverage", "fraction of records held by currently reachable nodes", labels...),
		rate:      r.Gauge("privrange_iot_sampling_rate", "network-wide guaranteed Bernoulli sampling rate", labels...),
		nodesDown: r.Gauge("privrange_iot_nodes_down", "nodes currently unreachable (manual, breaker or crash)", labels...),

		breakerOpens:     r.Counter("privrange_iot_breaker_transitions_total", "circuit breaker state transitions", append([]telemetry.Label{telemetry.L("state", "open")}, labels...)...),
		breakerHalfOpens: r.Counter("privrange_iot_breaker_transitions_total", "circuit breaker state transitions", append([]telemetry.Label{telemetry.L("state", "half_open")}, labels...)...),
		breakerCloses:    r.Counter("privrange_iot_breaker_transitions_total", "circuit breaker state transitions", append([]telemetry.Label{telemetry.L("state", "close")}, labels...)...),

		events: r.Events(),
	}
}

// Events exposes the event log breaker transitions are appended to
// (nil when the metrics are detached).
func (m *Metrics) Events() *telemetry.EventLog {
	if m == nil {
		return nil
	}
	return m.events
}

// noteCollection records one collection round's outcome. Callers hold
// the network writer lock; only aggregate report fields cross into
// telemetry.
func (m *Metrics) noteCollection(rep *CollectionReport, down int) {
	if m == nil {
		return
	}
	m.collectionRounds.Inc()
	m.nodesRefreshed.Add(uint64(len(rep.Refreshed)))
	m.nodesFailed.Add(uint64(len(rep.Failed)))
	m.coverage.Set(rep.Coverage)
	m.rate.Set(rep.Achieved)
	m.nodesDown.Set(float64(down))
}

// noteHeartbeat records one heartbeat round's outcome.
func (m *Metrics) noteHeartbeat(rep *HeartbeatReport, coverage float64, down int) {
	if m == nil {
		return
	}
	m.heartbeatRounds.Inc()
	m.heartbeatsMissed.Add(uint64(len(rep.Missed)))
	m.coverage.Set(coverage)
	m.nodesDown.Set(float64(down))
}

// noteDelivery records one end-to-end delivered message carrying
// samples rank-annotated samples.
func (m *Metrics) noteDelivery(samples int) {
	if m == nil {
		return
	}
	m.messages.Inc()
	if samples > 0 {
		m.samplesShipped.Add(uint64(samples))
	}
}

// noteAttempts bills attempts' bytes and retransmissions to telemetry,
// mirroring the CostReport defer in transmit.
func (m *Metrics) noteAttempts(bytes int64, retransmissions int) {
	if m == nil {
		return
	}
	if bytes > 0 {
		m.bytes.Add(uint64(bytes))
	}
	if retransmissions > 0 {
		m.retransmissions.Add(uint64(retransmissions))
	}
}

// noteCorruption records one attempt rejected by the wire decode path.
func (m *Metrics) noteCorruption() {
	if m == nil {
		return
	}
	m.corrupted.Inc()
}

// noteGiveUp records one message abandoned after exhausting retries.
func (m *Metrics) noteGiveUp() {
	if m == nil {
		return
	}
	m.messagesLost.Inc()
}

// noteBreaker records one breaker transition as both a labelled counter
// increment and an ordered event-log entry.
func (m *Metrics) noteBreaker(state string, node int, round uint64) {
	if m == nil {
		return
	}
	switch state {
	case EventBreakerOpen:
		m.breakerOpens.Inc()
	case EventBreakerHalfOpen:
		m.breakerHalfOpens.Inc()
	case EventBreakerClose:
		m.breakerCloses.Inc()
	}
	m.events.Append(state, node, round, "")
}
