package iot

import (
	"fmt"
	"math"
	"sync"

	"privrange/internal/index"
	"privrange/internal/sampling"
	"privrange/internal/stats"
	"privrange/internal/wire"
)

// Topology selects how node traffic reaches the base station.
type Topology int

const (
	// Flat is the paper's primary model: every node talks to the base
	// station directly (one hop).
	Flat Topology = iota
	// Tree arranges nodes in a balanced aggregation tree; each message is
	// relayed hop by hop toward the base station and its bytes are paid
	// once per hop. The paper notes flat-model algorithms "can be easily
	// extended to a general tree model" — this is that extension.
	Tree
)

// DefaultFreeHeartbeatSamples mirrors the paper's observation that ~16
// samples per node fit in an ordinary heartbeat message, incurring no
// additional communication cost.
const DefaultFreeHeartbeatSamples = 16

// Config parameterizes a simulated network.
type Config struct {
	// Seed drives all node-side randomness deterministically.
	Seed int64
	// Topology selects Flat (default) or Tree routing.
	Topology Topology
	// TreeFanout is the branching factor of the Tree topology. Zero
	// selects 4. Ignored for Flat.
	TreeFanout int
	// FreeHeartbeatSamples is the per-report sample count that piggybacks
	// on heartbeats for free. Negative disables the discount; zero
	// selects DefaultFreeHeartbeatSamples.
	FreeHeartbeatSamples int
	// LossRate is the probability that one transmission attempt is
	// dropped (per end-to-end message, applied per attempt). Lost
	// messages are retransmitted up to MaxRetries times; every attempt
	// is billed. Zero models a lossless link.
	LossRate float64
	// MaxRetries bounds retransmission attempts per message. Zero
	// selects 5; negative is invalid.
	MaxRetries int
	// Faults assigns per-node fault profiles (keyed by node id) so chaos
	// tests can script realistic failure scenarios — per-node loss,
	// byte corruption, scheduled crash/recover windows — instead of one
	// global Bernoulli loss rate. Nodes without an entry follow LossRate.
	Faults map[int]FaultProfile
	// NodeIDs assigns an explicit id to each initial partition:
	// parts[i] is held by node NodeIDs[i]. Ids must be distinct and
	// non-negative but need not be contiguous — a sharded deployment
	// builds each shard's network with the shard's *global* node ids so
	// every node keeps the exact per-id sampling stream it would have in
	// a single-broker network (seeds derive from the id). Nil selects the
	// historical 0..k-1 numbering.
	NodeIDs []int
	// FailureThreshold enables the collection circuit breaker: a node
	// failing this many consecutive rounds is auto-marked down (no more
	// bytes are wasted on it) and reinstated with exponential backoff.
	// Zero disables the breaker; negative is invalid.
	FailureThreshold int
	// BreakerBackoff is the breaker's base reinstatement delay in rounds;
	// each consecutive re-trip doubles it (capped). Zero selects 2;
	// negative is invalid. Ignored while FailureThreshold is 0.
	BreakerBackoff int
}

// CostReport is the running communication bill.
type CostReport struct {
	// Messages counts end-to-end protocol messages (not per-hop copies).
	Messages int
	// Bytes is the total on-the-wire volume, counted once per hop
	// traversed.
	Bytes int64
	// SamplesShipped counts rank-annotated samples transferred
	// end-to-end.
	SamplesShipped int
	// PiggybackedReports counts reports small enough to ride heartbeats
	// for free.
	PiggybackedReports int
	// Retransmissions counts extra attempts caused by simulated packet
	// loss or detected corruption. Their bytes are included in Bytes.
	Retransmissions int
	// CorruptedMessages counts attempts that arrived with flipped or
	// trailing bytes and were rejected by the wire decode path. Their
	// bytes crossed the wire and are included in Bytes.
	CorruptedMessages int
}

// Network wires k nodes to a base station under a topology and accounts
// for every byte exchanged. It is safe for concurrent use: collection,
// ingestion and membership changes serialize behind a writer lock, while
// read paths (rates, counts, sample sets, snapshots) share a read lock.
// Stored sample sets are immutable once published — collection replaces
// them — so a snapshot taken before a collection remains valid after it.
type Network struct {
	mu    sync.RWMutex
	cfg   Config
	nodes []*Node
	// idIndex maps a node id to its position in nodes. Ids are 0..k-1 by
	// default but arbitrary when Config.NodeIDs assigned explicit
	// (global) ids.
	idIndex map[int]int
	base    *BaseStation
	cost    CostReport
	// nodeRate tracks the Bernoulli rate each node's base-station sample
	// was collected at; the network-wide guaranteed rate is the minimum.
	nodeRate map[int]float64
	rng      *stats.RNG // drives simulated packet loss
	// dirty marks nodes that ingested new readings since their last
	// acknowledged report; EnsureRate must revisit them even when the
	// target rate is already met.
	dirty map[int]bool
	// down marks unreachable nodes: EnsureRate skips them (their stale
	// samples at the base station keep serving queries) and revisits
	// them on recovery. Entries come from SetDown or from the failure
	// circuit breaker (see breaker).
	down map[int]bool
	// breaker tracks per-node consecutive-failure state for the
	// collection circuit breaker (enabled by Config.FailureThreshold).
	breaker map[int]*breakerState
	// clock counts network rounds (EnsureRate, IngestRound,
	// HeartbeatRound); crash windows and breaker backoffs are scheduled
	// against it.
	clock uint64
	// metrics mirrors the cost report, round outcomes and breaker
	// transitions into telemetry. Nil (recording nothing) until
	// SetTelemetry attaches it.
	metrics *Metrics
}

// SetTelemetry attaches collection-layer metrics to the network. Pass
// nil to detach. Safe to call while rounds are running.
func (nw *Network) SetTelemetry(m *Metrics) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.metrics = m
}

// downCountLocked counts nodes the base station cannot refresh right
// now (manual downs, breaker exiles, scheduled crashes). Callers hold
// nw.mu (read or write).
func (nw *Network) downCountLocked() int {
	down := 0
	for _, node := range nw.nodes {
		if nw.unreachableLocked(node.ID()) {
			down++
		}
	}
	return down
}

// New builds a network whose node i holds parts[i]. It returns an error
// for an empty partition list or invalid config.
func New(parts [][]float64, cfg Config) (*Network, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("iot: need at least one node partition")
	}
	if cfg.Topology != Flat && cfg.Topology != Tree {
		return nil, fmt.Errorf("iot: unknown topology %d", cfg.Topology)
	}
	if cfg.TreeFanout < 0 {
		return nil, fmt.Errorf("iot: negative tree fanout %d", cfg.TreeFanout)
	}
	if cfg.TreeFanout == 0 {
		cfg.TreeFanout = 4
	}
	if cfg.FreeHeartbeatSamples == 0 {
		cfg.FreeHeartbeatSamples = DefaultFreeHeartbeatSamples
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		return nil, fmt.Errorf("iot: loss rate %v outside [0, 1)", cfg.LossRate)
	}
	if cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("iot: negative max retries %d", cfg.MaxRetries)
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 5
	}
	if cfg.FailureThreshold < 0 {
		return nil, fmt.Errorf("iot: negative failure threshold %d", cfg.FailureThreshold)
	}
	if cfg.BreakerBackoff < 0 {
		return nil, fmt.Errorf("iot: negative breaker backoff %d", cfg.BreakerBackoff)
	}
	if cfg.BreakerBackoff == 0 {
		cfg.BreakerBackoff = 2
	}
	for id, prof := range cfg.Faults {
		if id < 0 {
			return nil, fmt.Errorf("iot: fault profile for negative node id %d", id)
		}
		if err := prof.validate(id); err != nil {
			return nil, err
		}
	}
	if cfg.NodeIDs != nil && len(cfg.NodeIDs) != len(parts) {
		return nil, fmt.Errorf("iot: %d node ids for %d partitions", len(cfg.NodeIDs), len(parts))
	}
	nw := &Network{
		cfg:      cfg,
		base:     NewBaseStation(),
		rng:      stats.NewRNG(cfg.Seed ^ 0x10c5),
		idIndex:  make(map[int]int),
		dirty:    make(map[int]bool),
		down:     make(map[int]bool),
		breaker:  make(map[int]*breakerState),
		nodeRate: make(map[int]float64),
	}
	for i, part := range parts {
		id := i
		if cfg.NodeIDs != nil {
			id = cfg.NodeIDs[i]
		}
		if id < 0 {
			return nil, fmt.Errorf("iot: negative node id %d", id)
		}
		if _, dup := nw.idIndex[id]; dup {
			return nil, fmt.Errorf("iot: duplicate node id %d", id)
		}
		// The seed derives from the id, not the slice position, so a node
		// samples the same stream whether it lives in a single-broker
		// network or inside a shard that carries its global id.
		node := NewNode(id, cfg.Seed+int64(id)*7919)
		node.Load(part)
		nw.idIndex[id] = len(nw.nodes)
		nw.nodes = append(nw.nodes, node)
	}
	return nw, nil
}

// NumNodes returns k.
func (nw *Network) NumNodes() int {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return len(nw.nodes)
}

// TotalN returns |D| = Σ n_i.
func (nw *Network) TotalN() int {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.totalN()
}

func (nw *Network) totalN() int {
	total := 0
	for _, n := range nw.nodes {
		total += n.Len()
	}
	return total
}

// Rate returns the sampling rate the base station's *entire* state
// guarantees: the minimum rate any node's stored sample was collected at
// (0 before the first full collection). With nodes down and skipped, the
// guarantee degrades to the stale nodes' rate rather than silently
// overstating accuracy.
func (nw *Network) Rate() float64 {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.rate()
}

func (nw *Network) rate() float64 {
	if len(nw.nodeRate) < len(nw.nodes) {
		return 0
	}
	min := math.Inf(1)
	for _, r := range nw.nodeRate {
		if r < min {
			min = r
		}
	}
	return min
}

// maxRate returns the highest rate any node has been collected at — the
// target that recovering or dirty nodes must be caught up to.
func (nw *Network) maxRate() float64 {
	max := 0.0
	for _, r := range nw.nodeRate {
		if r > max {
			max = r
		}
	}
	return max
}

// hops returns how many links a message between node id and the base
// station traverses under the configured topology.
func (nw *Network) hops(id int) int {
	if nw.cfg.Topology == Flat {
		return 1
	}
	// Balanced tree: node 0..fanout-1 are children of the base station;
	// node i's parent is i/fanout - 1 (for i >= fanout).
	f := nw.cfg.TreeFanout
	hops := 1
	for i := id; i >= f; i = i/f - 1 {
		hops++
	}
	return hops
}

// transmit codecs a message end to end and bills it: hop-weighted bytes
// plus message and sample counters. Reports small enough to piggyback on
// heartbeats are free of byte cost, matching the paper's argument.
//
// Each attempt may drop (the node's loss rate) or arrive corrupted (its
// fault profile's corrupt rate); detected corruption — a wire decode
// error or trailing bytes — counts in CorruptedMessages and is retried
// like a loss, since the bytes crossed the wire but nothing usable
// arrived. A node inside a scheduled crash window swallows every
// attempt. Bytes are billed for every attempt made (delivered, dropped
// or corrupted), while Messages, SamplesShipped and PiggybackedReports
// count only what actually arrives end to end.
func (nw *Network) transmit(id int, m wire.Message) (wire.Message, error) {
	data, err := wire.Encode(m)
	if err != nil {
		return nil, err
	}
	rep, isReport := m.(*wire.SampleReport)
	free := isReport && nw.cfg.FreeHeartbeatSamples > 0 && len(rep.Samples) <= nw.cfg.FreeHeartbeatSamples
	prof := nw.cfg.Faults[id]
	loss := nw.cfg.LossRate
	if prof.LossRate > 0 {
		loss = prof.LossRate
	}
	maxAttempts := nw.cfg.MaxRetries + 1
	attempts := 0
	// Billing is registered before the first attempt so that no exit
	// path — delivery, retry exhaustion, corruption, crash window, or
	// any early return added later — can skip it: every attempt crossed
	// the link and costs bytes, including the give-up and corruption
	// cases where nothing usable arrived. The privlint billing analyzer
	// enforces this ordering.
	defer func() {
		if !free {
			billed := int64(len(data)) * int64(nw.hops(id)) * int64(attempts)
			nw.cost.Bytes += billed
			nw.metrics.noteAttempts(billed, attempts-1)
		} else {
			nw.metrics.noteAttempts(0, attempts-1)
		}
		nw.cost.Retransmissions += attempts - 1
	}()
	var delivered wire.Message
	var lastErr error
	if nw.crashedLocked(id) {
		// The node is off: every attempt crosses the link and dies there.
		attempts = maxAttempts
		lastErr = fmt.Errorf("iot: node %d crashed (scheduled fault window, round %d)", id, nw.clock)
	} else {
		for attempts < maxAttempts {
			attempts++
			if loss > 0 && nw.rng.Bernoulli(loss) {
				lastErr = fmt.Errorf("iot: message to/from node %d lost after %d attempts", id, attempts)
				continue
			}
			payload := data
			if prof.CorruptRate > 0 && nw.rng.Bernoulli(prof.CorruptRate) {
				payload = corruptPayload(data, nw.cost.CorruptedMessages)
			}
			decoded, consumed, derr := wire.Decode(payload)
			if derr != nil {
				nw.cost.CorruptedMessages++
				nw.metrics.noteCorruption()
				lastErr = fmt.Errorf("iot: transport corruption to/from node %d: %w", id, derr)
				continue
			}
			if consumed != len(payload) {
				nw.cost.CorruptedMessages++
				nw.metrics.noteCorruption()
				lastErr = fmt.Errorf("iot: trailing bytes after decode (%d of %d) to/from node %d", consumed, len(payload), id)
				continue
			}
			delivered = decoded
			break
		}
	}
	if delivered == nil {
		nw.metrics.noteGiveUp()
		return nil, lastErr
	}
	nw.cost.Messages++
	samples := 0
	if isReport {
		samples = len(rep.Samples)
		nw.cost.SamplesShipped += samples
		if free {
			nw.cost.PiggybackedReports++
		}
	}
	nw.metrics.noteDelivery(samples)
	return delivered, nil
}

// EnsureRate drives one collection round toward a Bernoulli(p) sample
// from every node: it multicasts Resample commands and folds the
// resulting reports in. Raising the rate tops existing samples up (only
// the new samples travel); lowering it is a no-op — the richer sample
// already satisfies any weaker requirement.
//
// The round attempts every reachable node and accumulates per-node
// failures instead of aborting on the first: one node exhausting its
// retries no longer prevents the rest of the deployment from being
// refreshed. The returned CollectionReport describes the partial
// progress (refreshed / satisfied / skipped / failed nodes, achieved
// guaranteed rate, coverage); the returned error is nil for a complete
// round and wraps ErrPartialRound when any attempted node failed, so
// strict callers keep their error and degradation-aware callers read
// the report.
func (nw *Network) EnsureRate(p float64) (*CollectionReport, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.collect(p)
}

func (nw *Network) collect(p float64) (*CollectionReport, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("iot: rate %v outside [0, 1]", p)
	}
	nw.clock++
	nw.reinstateLocked()
	effective := math.Max(p, nw.maxRate())
	rep := &CollectionReport{
		Round:     nw.clock,
		Target:    p,
		Effective: effective,
		Failed:    make(map[int]error),
	}
	for _, node := range nw.nodes {
		id := node.ID()
		if nw.down[id] {
			// Unreachable: stale samples keep serving.
			rep.Skipped = append(rep.Skipped, id)
			if st := nw.breaker[id]; st != nil && st.open {
				rep.CircuitOpen = append(rep.CircuitOpen, id)
			}
			continue
		}
		if nw.nodeRate[id] >= effective && !nw.dirty[id] {
			rep.Satisfied = append(rep.Satisfied, id) // already caught up
			continue
		}
		if err := nw.collectNode(node, effective); err != nil {
			rep.Failed[id] = err
			nw.noteFailureLocked(id)
			continue
		}
		nw.noteSuccessLocked(id)
		rep.Refreshed = append(rep.Refreshed, id)
	}
	// Rebuild the columnar index once per round (still under the writer
	// lock) so every subsequent query reads it for free. A failed build
	// only means degraded speed, never a wrong answer — Snapshot then
	// reports no index and the broker estimates over the SampleSets —
	// so it must not fail the round or mask its partial-round error.
	_ = nw.base.RebuildIndex()
	rep.Achieved = nw.rate()
	rep.Coverage = nw.coverageLocked()
	rep.Version = nw.base.Version()
	nw.metrics.noteCollection(rep, nw.downCountLocked())
	return rep, rep.Err()
}

// collectNode runs the resample→report→ack exchange with one node. On
// any transport failure the node's shipment bookkeeping is untouched (no
// ack), so the next round simply re-ships — nothing is silently dropped.
func (nw *Network) collectNode(node *Node, rate float64) error {
	id := node.ID()
	cmd := &wire.Resample{NodeID: id, Rate: rate}
	decodedCmd, err := nw.transmit(id, cmd)
	if err != nil {
		return err
	}
	report, err := node.HandleResample(decodedCmd.(*wire.Resample))
	if err != nil {
		return err
	}
	decodedRep, err := nw.transmit(id, report)
	if err != nil {
		return err
	}
	if err := nw.base.HandleReport(decodedRep.(*wire.SampleReport)); err != nil {
		return err
	}
	node.AckReport()
	delete(nw.dirty, id)
	nw.nodeRate[id] = rate
	return nil
}

// AddNode joins a new sensor node carrying the given initial readings
// (dynamic membership). The node is collected on the next EnsureRate at
// whatever rate the deployment runs; until then the network-wide rate
// guarantee reports 0 because the base station lacks its sample.
func (nw *Network) AddNode(values []float64) (int, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("iot: a joining node needs initial readings")
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	// Next id past the highest assigned, so explicit (sparse) numberings
	// and the historical 0..k-1 both extend without collisions.
	id := 0
	for _, node := range nw.nodes {
		if node.ID() >= id {
			id = node.ID() + 1
		}
	}
	node := NewNode(id, nw.cfg.Seed+int64(id)*7919)
	node.Load(values)
	nw.idIndex[id] = len(nw.nodes)
	nw.nodes = append(nw.nodes, node)
	nw.dirty[id] = true
	return id, nil
}

// SetDown changes a node's reachability. Taking a node down makes
// EnsureRate skip it — queries keep being served from its last reported
// (possibly stale) samples, the standard availability/freshness trade.
// Bringing it back marks it dirty so the next collection round refreshes
// it, catching up on anything it sensed while partitioned.
func (nw *Network) SetDown(nodeID int, down bool) error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if _, ok := nw.idIndex[nodeID]; !ok {
		return fmt.Errorf("iot: no node %d", nodeID)
	}
	if nw.down[nodeID] == down {
		if !down {
			// Already up; still clear any breaker history so an operator
			// reinstatement starts the node with a clean slate.
			delete(nw.breaker, nodeID)
		}
		return nil
	}
	if down {
		nw.down[nodeID] = true
		return nil
	}
	delete(nw.down, nodeID)
	delete(nw.breaker, nodeID)
	nw.dirty[nodeID] = true
	return nil
}

// LiveNodes returns the number of reachable nodes: not manually down,
// not breaker-exiled, not inside a scheduled crash window.
func (nw *Network) LiveNodes() int {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	live := 0
	for _, node := range nw.nodes {
		if !nw.unreachableLocked(node.ID()) {
			live++
		}
	}
	return live
}

// Coverage returns the fraction of records held by reachable nodes —
// the freshness guarantee the base station can currently offer.
func (nw *Network) Coverage() float64 {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.coverageLocked()
}

func (nw *Network) coverageLocked() float64 {
	live, total := nw.liveRecordsLocked()
	if total == 0 {
		return 1
	}
	return float64(live) / float64(total)
}

// Ingest appends new readings at a node (continuous data collection).
// The node's existing sample becomes stale; the next EnsureRate — at any
// rate — refreshes it, and queries in between still see a consistent
// (pre-ingest) snapshot at the base station.
func (nw *Network) Ingest(nodeID int, values []float64) error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.ingest(nodeID, values)
}

func (nw *Network) ingest(nodeID int, values []float64) error {
	pos, ok := nw.idIndex[nodeID]
	if !ok {
		return fmt.Errorf("iot: no node %d", nodeID)
	}
	if len(values) == 0 {
		return nil
	}
	nw.nodes[pos].Load(values)
	nw.dirty[nodeID] = true
	return nil
}

// IngestRound appends one round of readings across all nodes and
// refreshes the base station's samples at the current rate — the
// long-term continuous-collection loop the paper's related work targets.
// perNode[i] goes to node i; len(perNode) must equal NumNodes. Like
// EnsureRate, the refresh attempts every reachable node: a failed node
// leaves its pre-round sample serving and the error wraps
// ErrPartialRound while the rest of the deployment is still refreshed.
func (nw *Network) IngestRound(perNode [][]float64) error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if len(perNode) != len(nw.nodes) {
		return fmt.Errorf("iot: round has %d node batches, network has %d nodes", len(perNode), len(nw.nodes))
	}
	// perNode is positional: batch i goes to the i-th node regardless of
	// its (possibly global) id.
	for i, values := range perNode {
		if err := nw.ingest(nw.nodes[i].ID(), values); err != nil {
			return err
		}
	}
	_, err := nw.collect(nw.rate())
	return err
}

// HeartbeatRound delivers one liveness heartbeat from every reachable
// node, billing ordinary baseline traffic. One node's lost heartbeat no
// longer aborts the round: the remaining nodes still check in, and the
// report says who missed — missed heartbeats feed the failure circuit
// breaker, so silent nodes are detected and exiled between collections.
func (nw *Network) HeartbeatRound() (*HeartbeatReport, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.clock++
	nw.reinstateLocked()
	rep := &HeartbeatReport{Round: nw.clock, Missed: make(map[int]error)}
	for _, node := range nw.nodes {
		id := node.ID()
		if nw.down[id] {
			rep.Skipped = append(rep.Skipped, id)
			continue
		}
		decoded, err := nw.transmit(id, node.Heartbeat())
		if err != nil {
			rep.Missed[id] = err
			nw.noteFailureLocked(id)
			continue
		}
		if err := nw.base.HandleHeartbeat(decoded.(*wire.Heartbeat)); err != nil {
			rep.Missed[id] = err
			nw.noteFailureLocked(id)
			continue
		}
		nw.noteSuccessLocked(id)
		rep.Delivered = append(rep.Delivered, id)
	}
	// Heartbeat piggybacks can rewrite stored samples; refresh the
	// columnar index before queries resume (best-effort, like collect).
	_ = nw.base.RebuildIndex()
	nw.metrics.noteHeartbeat(rep, nw.coverageLocked(), nw.downCountLocked())
	return rep, rep.Err()
}

// SampleSets returns the base station's per-node sample sets, ordered by
// node id. The returned sets are immutable: later collections replace
// them rather than mutating them in place.
func (nw *Network) SampleSets() []*sampling.SampleSet {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.base.SampleSets()
}

// Snapshot returns one atomically consistent view of the queryable
// state: the per-node sample sets, the columnar sample index built over
// them (nil when no fresh index exists — e.g. before the first
// collection or after a direct Base() mutation — in which case the
// broker falls back to the SampleSet path), the guaranteed sampling
// rate, node and record counts, the monotonic sample-state version, and
// the reachable-record coverage. The broker estimates against a
// snapshot lock-free — the sets and index are immutable, the version
// lets answer caches detect sample-state changes invisible to
// (n, rate) alone, and the coverage discloses how much of the data a
// degraded deployment can still refresh (provenance for best-effort
// answers).
func (nw *Network) Snapshot() (sets []*sampling.SampleSet, idx *index.Index, rate float64, nodes, n int, version uint64, coverage float64) {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	idx, _ = nw.base.Index()
	return nw.base.SampleSets(), idx, nw.rate(), len(nw.nodes), nw.totalN(), nw.base.Version(), nw.coverageLocked()
}

// State is one atomically consistent view of a network for composition
// by a sharded cluster: the reported node ids (ascending) with their
// sample sets and columnar index, plus the scalar state in the exact
// units a cluster needs to reproduce the single-broker values
// bit-for-bit (live/total record counts instead of a pre-divided
// coverage, so the composed ratio is computed once from integers).
type State struct {
	// IDs are the node ids with stored samples, ascending; Sets is
	// parallel to IDs. Nodes that never reported do not appear.
	IDs  []int
	Sets []*sampling.SampleSet
	// Idx is the columnar index over Sets (nil when stale or absent).
	Idx *index.Index
	// Rate, Nodes, N and Version mirror Snapshot.
	Rate    float64
	Nodes   int
	N       int
	Version uint64
	// LiveRecords / TotalRecords are the integer coverage numerator and
	// denominator: records held by reachable nodes vs all records.
	LiveRecords, TotalRecords int
}

// State captures the network's composable view under the read lock.
func (nw *Network) State() State {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	idx, _ := nw.base.Index()
	live, total := nw.liveRecordsLocked()
	return State{
		IDs:          nw.base.NodeIDs(),
		Sets:         nw.base.SampleSets(),
		Idx:          idx,
		Rate:         nw.rate(),
		Nodes:        len(nw.nodes),
		N:            nw.totalN(),
		Version:      nw.base.Version(),
		LiveRecords:  live,
		TotalRecords: total,
	}
}

// liveRecordsLocked returns the integer coverage counts: records held
// by reachable nodes and records held overall. Callers hold nw.mu.
func (nw *Network) liveRecordsLocked() (live, total int) {
	for _, node := range nw.nodes {
		total += node.Len()
		if !nw.unreachableLocked(node.ID()) {
			live += node.Len()
		}
	}
	return live, total
}

// NodeIDs returns the ids of all member nodes in join order.
func (nw *Network) NodeIDs() []int {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	ids := make([]int, len(nw.nodes))
	for i, node := range nw.nodes {
		ids[i] = node.ID()
	}
	return ids
}

// StateVersion returns the base station's monotonic sample-state
// version (see BaseStation.Version).
func (nw *Network) StateVersion() uint64 {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.base.Version()
}

// Cost returns the communication bill so far.
func (nw *Network) Cost() CostReport {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.cost
}

// Base exposes the base station for integration with the broker layer.
//
// Footgun: the base station itself is NOT locked — Network serializes
// access to it internally, but a *BaseStation obtained here bypasses
// that lock entirely. Calling any of its methods while another goroutine
// drives the network (EnsureRate, IngestRound, HeartbeatRound, Ingest)
// is a data race. Prefer Snapshot, which returns an immutable view under
// the network's lock; touch Base concurrently only with external
// synchronization. See DESIGN.md §7.
func (nw *Network) Base() *BaseStation { return nw.base }

// Clock returns the network round counter: how many collection,
// ingestion or heartbeat rounds have run. Crash windows and breaker
// backoffs are scheduled against it.
func (nw *Network) Clock() uint64 {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.clock
}

// ExactCount returns the true global range count by asking every node —
// the expensive path the paper's sampling avoids; used as experiment
// ground truth (and not billed).
func (nw *Network) ExactCount(l, u float64) (int, error) {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	total := 0
	for _, node := range nw.nodes {
		c, err := node.CountRange(l, u)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}
