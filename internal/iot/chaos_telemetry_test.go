package iot

import (
	"errors"
	"testing"

	"privrange/internal/telemetry"
)

// TestChaosBreakerEventOrdering replays the scripted breaker lifecycle
// (trip → exile → half-open re-trip → doubled backoff → half-open →
// recovery) with telemetry attached and pins the transition event log:
// the exact type sequence, strictly increasing Seq numbers, and the
// node/round attribution operators would correlate during an incident.
func TestChaosBreakerEventOrdering(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 2, 600, 61)
	nw, err := New(parts, Config{
		Seed:             63,
		FailureThreshold: 2,
		BreakerBackoff:   2,
		Faults:           map[int]FaultProfile{1: {CrashWindows: []CrashWindow{{From: 1, Until: 6}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	nw.SetTelemetry(m)

	// Drive the same rounds as TestCircuitBreakerTripsAndReinstates: the
	// crashed node fails rounds 1-2 (trip), is exiled round 3, half-opens
	// and re-trips round 4, sits out the doubled backoff rounds 5-7, and
	// recovers round 8.
	for r := uint64(1); r <= 8; r++ {
		if _, err := nw.EnsureRate(0.3); err != nil && !errors.Is(err, ErrPartialRound) {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	if nw.BreakerOpen(1) {
		t.Fatal("scenario should end with the breaker closed")
	}

	events := m.Events().Events()
	var breaker []telemetry.Event
	for _, ev := range events {
		switch ev.Type {
		case EventBreakerOpen, EventBreakerHalfOpen, EventBreakerClose:
			breaker = append(breaker, ev)
		}
	}

	want := []struct {
		typ   string
		round uint64
	}{
		{EventBreakerOpen, 2},     // threshold 2 hit: exile with backoff 2
		{EventBreakerHalfOpen, 4}, // backoff expired: probation retry
		{EventBreakerOpen, 4},     // retry fails: immediate re-trip
		{EventBreakerHalfOpen, 8}, // doubled backoff (4 rounds) expired
		{EventBreakerClose, 8},    // crash window over: success clears it
	}
	if len(breaker) != len(want) {
		t.Fatalf("breaker events = %d, want %d: %+v", len(breaker), len(want), breaker)
	}
	for i, ev := range breaker {
		if ev.Type != want[i].typ || ev.Round != want[i].round {
			t.Errorf("event %d = %s@round %d, want %s@round %d", i, ev.Type, ev.Round, want[i].typ, want[i].round)
		}
		if ev.Node != 1 {
			t.Errorf("event %d attributed to node %d, want 1", i, ev.Node)
		}
		if i > 0 && ev.Seq <= breaker[i-1].Seq {
			t.Errorf("event %d Seq %d not after %d: ordering must survive scrapes", i, ev.Seq, breaker[i-1].Seq)
		}
	}

	// The labelled transition counters must agree with the event log.
	if got := m.breakerOpens.Value(); got != 2 {
		t.Errorf("open transitions = %d, want 2", got)
	}
	if got := m.breakerHalfOpens.Value(); got != 2 {
		t.Errorf("half-open transitions = %d, want 2", got)
	}
	if got := m.breakerCloses.Value(); got != 1 {
		t.Errorf("close transitions = %d, want 1", got)
	}
}
