package iot

import (
	"fmt"
	"sort"

	"privrange/internal/index"
	"privrange/internal/sampling"
	"privrange/internal/wire"
)

// BaseStation aggregates sample reports from all nodes and exposes the
// merged per-node sample sets the broker's estimator consumes, plus the
// columnar sample index the broker's flat hot path queries.
type BaseStation struct {
	sets map[int]*sampling.SampleSet
	seen map[int]bool
	// version counts accepted reports: every write to any node's stored
	// sample bumps it. Consumers (the broker's answer cache) use it to
	// detect that sample state moved even when |D| and the rate did not —
	// e.g. a recovered node re-reporting a redrawn sample.
	version uint64
	// idx is the columnar index over sets, built by RebuildIndex at
	// version idxVersion. It is immutable once built; any accepted
	// report makes it stale (idxVersion falls behind version) until the
	// next rebuild, so a stale index is never served.
	idx        *index.Index
	idxVersion uint64
}

// NewBaseStation returns an empty base station.
func NewBaseStation() *BaseStation {
	return &BaseStation{
		sets: make(map[int]*sampling.SampleSet),
		seen: make(map[int]bool),
	}
}

// HandleReport folds one sample report into the per-node state: Replace
// reports overwrite, incremental reports merge by rank.
func (b *BaseStation) HandleReport(rep *wire.SampleReport) error {
	if rep == nil {
		return fmt.Errorf("iot: nil sample report")
	}
	b.seen[rep.NodeID] = true
	existing, ok := b.sets[rep.NodeID]
	if rep.Replace || !ok {
		cp := make([]sampling.Sample, len(rep.Samples))
		copy(cp, rep.Samples)
		set := &sampling.SampleSet{N: rep.N, Samples: cp}
		if err := set.Validate(); err != nil {
			return fmt.Errorf("iot: node %d replace report: %w", rep.NodeID, err)
		}
		b.sets[rep.NodeID] = set
		b.version++
		return nil
	}
	if existing.N != rep.N {
		return fmt.Errorf("iot: node %d incremental report with n=%d over stored n=%d (node must replace)",
			rep.NodeID, rep.N, existing.N)
	}
	merged := mergeByRank(existing.Samples, rep.Samples)
	set := &sampling.SampleSet{N: rep.N, Samples: merged}
	if err := set.Validate(); err != nil {
		return fmt.Errorf("iot: node %d merged report: %w", rep.NodeID, err)
	}
	b.sets[rep.NodeID] = set
	b.version++
	return nil
}

// Version returns the monotonic sample-state version: how many reports
// have been accepted. Any change to the stored samples changes it.
func (b *BaseStation) Version() uint64 { return b.version }

// RebuildIndex (re)builds the columnar sample index when it is stale —
// i.e. when any report was accepted since the last build. The network
// calls it once at the end of every collection/heartbeat round, so the
// per-round build cost is paid once and every query amortizes it. A
// build failure (only possible on sizes/ranks outside the index's int32
// columns) leaves the index unset; queries then fall back to the
// SampleSet path, trading speed for correctness, and the error is
// returned for the caller to surface.
func (b *BaseStation) RebuildIndex() error {
	if b.idx != nil && b.idxVersion == b.version {
		return nil
	}
	ix, err := index.Build(b.SampleSets())
	if err != nil {
		b.idx = nil
		return fmt.Errorf("iot: rebuilding sample index: %w", err)
	}
	b.idx = ix
	b.idxVersion = b.version
	return nil
}

// Index returns the columnar sample index and whether it is fresh —
// built from exactly the current sample state. Callers must treat a
// stale or missing index (ok == false) as absent and use the SampleSet
// path: serving a stale index would answer queries against samples the
// version says are gone.
func (b *BaseStation) Index() (*index.Index, bool) {
	if b.idx == nil || b.idxVersion != b.version {
		return nil, false
	}
	return b.idx, true
}

// mergeByRank merges two rank-sorted sample slices, rejecting nothing:
// duplicates cannot occur because nodes never reship a rank within a
// generation, and Validate catches it if they do.
func mergeByRank(a, ext []sampling.Sample) []sampling.Sample {
	out := make([]sampling.Sample, 0, len(a)+len(ext))
	i, j := 0, 0
	for i < len(a) && j < len(ext) {
		if a[i].Rank <= ext[j].Rank {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, ext[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, ext[j:]...)
	return out
}

// HandleHeartbeat records node liveness (and dataset size updates).
func (b *BaseStation) HandleHeartbeat(hb *wire.Heartbeat) error {
	if hb == nil {
		return fmt.Errorf("iot: nil heartbeat")
	}
	b.seen[hb.NodeID] = true
	if len(hb.Piggyback) > 0 {
		return b.HandleReport(&wire.SampleReport{NodeID: hb.NodeID, N: hb.N, Samples: hb.Piggyback})
	}
	return nil
}

// SampleSets returns the stored sets ordered by node id. The slice is
// freshly allocated; the sets are shared (callers must not mutate them).
func (b *BaseStation) SampleSets() []*sampling.SampleSet {
	ids := make([]int, 0, len(b.sets))
	for id := range b.sets {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*sampling.SampleSet, 0, len(ids))
	for _, id := range ids {
		out = append(out, b.sets[id])
	}
	return out
}

// NodeIDs returns the ids of all nodes with stored samples, ascending —
// parallel to SampleSets, so a sharded cluster can place each set at
// its global position.
func (b *BaseStation) NodeIDs() []int {
	ids := make([]int, 0, len(b.sets))
	for id := range b.sets {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// TotalN returns Σ n_i over all reporting nodes — the |D| the accuracy
// guarantees are relative to.
func (b *BaseStation) TotalN() int {
	total := 0
	for _, set := range b.sets {
		total += set.N
	}
	return total
}

// Nodes returns how many distinct nodes have reported.
func (b *BaseStation) Nodes() int { return len(b.sets) }

// SampleCount returns the total number of stored samples across nodes.
func (b *BaseStation) SampleCount() int {
	total := 0
	for _, set := range b.sets {
		total += len(set.Samples)
	}
	return total
}
