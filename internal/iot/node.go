// Package iot simulates the paper's IoT data-collection substrate: k
// sensor nodes holding local datasets, a base station aggregating
// rank-annotated samples, flat and tree communication topologies, and
// exact communication-cost accounting in messages, bytes and samples.
//
// Every message physically round-trips through the internal/wire codec,
// so the byte counts the cost report shows are the true on-the-wire sizes
// and the integration continuously exercises the codec.
package iot

import (
	"fmt"

	"privrange/internal/sampling"
	"privrange/internal/wire"
)

// Node is one simulated sensor node: a local data store plus the protocol
// state needed to ship samples incrementally.
type Node struct {
	id    int
	store *sampling.NodeStore
	// shippedGen is the store generation of the last *acknowledged*
	// report; when the store redrew since, the next report must replace
	// rather than merge.
	shippedGen int
	// shippedRanks tracks which sample ranks of the current generation
	// the base station has confirmed receiving.
	shippedRanks map[int]bool
	// pending is the last built-but-unacknowledged report. Shipment
	// bookkeeping only advances on AckReport, so a report lost in
	// transit is simply rebuilt by the next HandleResample — nothing is
	// silently dropped.
	pending *wire.SampleReport
}

// NewNode returns an empty node with deterministic sampling behaviour.
func NewNode(id int, seed int64) *Node {
	return &Node{
		id:           id,
		store:        sampling.NewNodeStore(id, seed),
		shippedGen:   -1,
		shippedRanks: make(map[int]bool),
	}
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// Len returns n_i, the local dataset size.
func (n *Node) Len() int { return n.store.Len() }

// Load appends readings to the node's local dataset.
func (n *Node) Load(values []float64) {
	n.store.AddAll(values)
}

// Observe appends a single reading (streaming ingestion).
func (n *Node) Observe(v float64) {
	n.store.Add(v)
}

// CountRange returns the exact local range count — ground truth for
// experiments, never transmitted in the protocol.
func (n *Node) CountRange(l, u float64) (int, error) {
	return n.store.CountRange(l, u)
}

// HandleResample executes a base-station resample command: it (re)draws
// or tops up the local sample at the requested rate and returns the
// report containing exactly the samples the base station does not yet
// hold. A full redraw (changed data or lowered rate) yields a Replace
// report.
func (n *Node) HandleResample(cmd *wire.Resample) (*wire.SampleReport, error) {
	if cmd == nil {
		return nil, fmt.Errorf("iot: nil resample command")
	}
	if cmd.NodeID != n.id {
		return nil, fmt.Errorf("iot: resample for node %d delivered to node %d", cmd.NodeID, n.id)
	}
	set, err := n.store.SampleAt(cmd.Rate)
	if err != nil {
		return nil, fmt.Errorf("iot: node %d resample: %w", n.id, err)
	}
	report := &wire.SampleReport{NodeID: n.id, N: set.N}
	if n.store.Generation() != n.shippedGen {
		// Fresh draw: everything ships, prior base-station state is void.
		report.Replace = true
		report.Samples = set.Samples
	} else {
		// Top-up: ship only samples the base station has not confirmed.
		for _, s := range set.Samples {
			if !n.shippedRanks[s.Rank] {
				report.Samples = append(report.Samples, s)
			}
		}
	}
	n.pending = report
	return report, nil
}

// AckReport confirms that the base station received the report returned
// by the last HandleResample; only then does the node stop reshipping
// those samples. Acking with no pending report is a no-op.
func (n *Node) AckReport() {
	rep := n.pending
	if rep == nil {
		return
	}
	n.pending = nil
	if rep.Replace {
		n.shippedGen = n.store.Generation()
		n.shippedRanks = make(map[int]bool, len(rep.Samples))
	}
	for _, s := range rep.Samples {
		n.shippedRanks[s.Rank] = true
	}
}

// Heartbeat produces the node's periodic liveness message.
func (n *Node) Heartbeat() *wire.Heartbeat {
	return &wire.Heartbeat{NodeID: n.id, N: n.store.Len()}
}
