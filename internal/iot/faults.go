package iot

import (
	"errors"
	"fmt"
)

// ErrPartialRound reports that a collection or heartbeat round completed
// but could not reach every node it attempted: some nodes failed after
// exhausting their retries. The round's report carries per-node detail;
// the surviving nodes' state was still refreshed. Use errors.Is.
var ErrPartialRound = errors.New("iot: round completed partially")

// CrashWindow schedules a node outage in network-round time: the node is
// unreachable (every transmission attempt fails) while
// From <= round < Until. The round clock starts at 1 and advances by one
// on every EnsureRate, IngestRound or HeartbeatRound call, so chaos
// tests can script crash/recover sequences deterministically.
type CrashWindow struct {
	From, Until uint64
}

// FaultProfile describes one node's failure behaviour for fault
// injection. The zero value injects nothing beyond the global
// Config.LossRate.
type FaultProfile struct {
	// LossRate, when positive, overrides Config.LossRate for this node:
	// the probability that one transmission attempt is dropped. A value
	// of 1 models a hard fault — the node is permanently unreachable.
	LossRate float64
	// CorruptRate is the probability that a delivered attempt arrives
	// with flipped or trailing bytes. Corruption is detected through the
	// real wire-decode path (unknown tag / framing errors), billed like
	// any other attempt, counted in CostReport.CorruptedMessages, and
	// retried up to the retry bound.
	CorruptRate float64
	// CrashWindows schedules outages in round time (see CrashWindow).
	CrashWindows []CrashWindow
}

// validate checks one profile's parameters.
func (p FaultProfile) validate(id int) error {
	if p.LossRate < 0 || p.LossRate > 1 {
		return fmt.Errorf("iot: node %d fault loss rate %v outside [0, 1]", id, p.LossRate)
	}
	if p.CorruptRate < 0 || p.CorruptRate > 1 {
		return fmt.Errorf("iot: node %d corrupt rate %v outside [0, 1]", id, p.CorruptRate)
	}
	for _, w := range p.CrashWindows {
		if w.Until <= w.From {
			return fmt.Errorf("iot: node %d crash window [%d, %d) is empty", id, w.From, w.Until)
		}
	}
	return nil
}

// crashedAt reports whether the profile schedules an outage at the given
// round.
func (p FaultProfile) crashedAt(round uint64) bool {
	for _, w := range p.CrashWindows {
		if round >= w.From && round < w.Until {
			return true
		}
	}
	return false
}

// breakerState is the per-node circuit breaker: a node failing
// FailureThreshold consecutive rounds is auto-marked down (no bytes are
// wasted on it) and reinstated with exponential backoff — each re-trip
// without an intervening success doubles the wait.
type breakerState struct {
	// fails counts consecutive failed rounds since the last success.
	fails int
	// trips counts consecutive trips without a success; it sets the
	// backoff exponent.
	trips int
	// open marks the breaker tripped; the node sits in the down set.
	open bool
	// reopenRound is the round at which the node is retried (half-open).
	reopenRound uint64
}

// maxBreakerBackoff caps the exponential backoff in rounds so a flapping
// node is never exiled forever.
const maxBreakerBackoff = 1024

// backoffRounds returns the reinstatement delay after the trips-th trip.
func backoffRounds(base int, trips int) uint64 {
	b := uint64(base)
	for i := 1; i < trips; i++ {
		b <<= 1
		if b >= maxBreakerBackoff {
			return maxBreakerBackoff
		}
	}
	if b > maxBreakerBackoff {
		return maxBreakerBackoff
	}
	return b
}

// noteFailureLocked records one failed round for the breaker, tripping
// it at the configured threshold. Callers hold nw.mu.
func (nw *Network) noteFailureLocked(id int) {
	if nw.cfg.FailureThreshold <= 0 {
		return
	}
	st := nw.breaker[id]
	if st == nil {
		st = &breakerState{}
		nw.breaker[id] = st
	}
	st.fails++
	if st.fails < nw.cfg.FailureThreshold {
		return
	}
	st.fails = 0
	st.open = true
	st.trips++
	st.reopenRound = nw.clock + backoffRounds(nw.cfg.BreakerBackoff, st.trips)
	nw.down[id] = true
	nw.metrics.noteBreaker(EventBreakerOpen, id, nw.clock)
}

// noteSuccessLocked clears the breaker after a successful exchange. A
// node that had tripped (and was on probation) closes its breaker for
// good; the transition is logged so operators can correlate recovery
// with the open that preceded it.
func (nw *Network) noteSuccessLocked(id int) {
	if st := nw.breaker[id]; st != nil && st.trips > 0 {
		nw.metrics.noteBreaker(EventBreakerClose, id, nw.clock)
	}
	delete(nw.breaker, id)
}

// reinstateLocked half-opens breakers whose backoff expired: the node
// rejoins the reachable set, marked dirty so the round retries it. One
// more failure re-trips immediately with a doubled backoff.
func (nw *Network) reinstateLocked() {
	for id, st := range nw.breaker {
		if !st.open || nw.clock < st.reopenRound {
			continue
		}
		st.open = false
		// Half-open: the very next failure must re-trip.
		st.fails = nw.cfg.FailureThreshold - 1
		delete(nw.down, id)
		nw.dirty[id] = true
		nw.metrics.noteBreaker(EventBreakerHalfOpen, id, nw.clock)
	}
}

// BreakerOpen reports whether the node is currently exiled by the
// circuit breaker (as opposed to manually SetDown).
func (nw *Network) BreakerOpen(id int) bool {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	st := nw.breaker[id]
	return st != nil && st.open
}

// crashedLocked reports whether the node's fault profile schedules an
// outage at the current round. Callers hold nw.mu.
func (nw *Network) crashedLocked(id int) bool {
	prof, ok := nw.cfg.Faults[id]
	return ok && prof.crashedAt(nw.clock)
}

// unreachableLocked is the union of manual downs, breaker exiles and
// scheduled crashes — the nodes whose data the base station cannot
// refresh right now.
func (nw *Network) unreachableLocked(id int) bool {
	return nw.down[id] || nw.crashedLocked(id)
}

// corruptPayload returns a corrupted copy of an encoded message.
// Alternating by sequence number it either flips the type tag's high bit
// (driving wire.Decode's unknown-tag error) or appends a stray byte
// (driving the trailing-bytes framing check), so both detection paths
// stay exercised.
func corruptPayload(data []byte, seq int) []byte {
	c := make([]byte, len(data), len(data)+1)
	copy(c, data)
	if seq%2 == 0 {
		c[0] ^= 0x80
	} else {
		c = append(c, 0x00)
	}
	return c
}
