package iot

import (
	"math"
	"testing"

	"privrange/internal/dataset"
	"privrange/internal/estimator"
	"privrange/internal/sampling"
	"privrange/internal/wire"
)

func buildParts(t *testing.T, k, records int, seed int64) ([][]float64, *dataset.Series) {
	t.Helper()
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: seed, Records: records})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := series.Partition(k)
	if err != nil {
		t.Fatal(err)
	}
	return parts, series
}

func TestNewValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(nil, Config{}); err == nil {
		t.Error("empty partitions should fail")
	}
	if _, err := New([][]float64{{1}}, Config{Topology: Topology(9)}); err == nil {
		t.Error("unknown topology should fail")
	}
	if _, err := New([][]float64{{1}}, Config{TreeFanout: -1}); err == nil {
		t.Error("negative fanout should fail")
	}
}

func TestEnsureRateCollectsSamples(t *testing.T) {
	t.Parallel()
	parts, series := buildParts(t, 8, 4000, 1)
	nw, err := New(parts, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumNodes() != 8 || nw.TotalN() != series.Len() {
		t.Fatalf("network shape wrong: k=%d n=%d", nw.NumNodes(), nw.TotalN())
	}
	const p = 0.2
	if _, err := nw.EnsureRate(p); err != nil {
		t.Fatal(err)
	}
	sets := nw.SampleSets()
	if len(sets) != 8 {
		t.Fatalf("got %d sample sets", len(sets))
	}
	total := 0
	for _, set := range sets {
		if err := set.Validate(); err != nil {
			t.Fatalf("invalid set at base station: %v", err)
		}
		total += len(set.Samples)
	}
	rate := float64(total) / float64(series.Len())
	if math.Abs(rate-p) > 0.03 {
		t.Errorf("collected rate %v, want ~%v", rate, p)
	}
	if nw.Base().TotalN() != series.Len() {
		t.Errorf("base station TotalN = %d, want %d", nw.Base().TotalN(), series.Len())
	}
}

func TestEstimatorOverNetworkSamples(t *testing.T) {
	t.Parallel()
	parts, series := buildParts(t, 10, 8000, 3)
	nw, err := New(parts, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const p = 0.3
	if _, err := nw.EnsureRate(p); err != nil {
		t.Fatal(err)
	}
	q := estimator.Query{L: 40, U: 90}
	truth, err := series.RangeCount(q.L, q.U)
	if err != nil {
		t.Fatal(err)
	}
	netTruth, err := nw.ExactCount(q.L, q.U)
	if err != nil {
		t.Fatal(err)
	}
	if netTruth != truth {
		t.Fatalf("network ground truth %d != series truth %d", netTruth, truth)
	}
	rc := estimator.RankCounting{P: p}
	est, err := rc.Estimate(nw.SampleSets(), q)
	if err != nil {
		t.Fatal(err)
	}
	// 6-sigma bound from Theorem 3.2's variance.
	sigma := math.Sqrt(rc.VarianceBound(nw.NumNodes()))
	if math.Abs(est-float64(truth)) > 6*sigma {
		t.Errorf("estimate %v too far from truth %d (6σ = %v)", est, truth, 6*sigma)
	}
}

func TestTopUpShipsOnlyNewSamples(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 4, 4000, 9)
	nw, err := New(parts, Config{Seed: 11, FreeHeartbeatSamples: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.EnsureRate(0.1); err != nil {
		t.Fatal(err)
	}
	afterFirst := nw.Cost().SamplesShipped
	if _, err := nw.EnsureRate(0.3); err != nil {
		t.Fatal(err)
	}
	afterSecond := nw.Cost().SamplesShipped
	// Total shipped across both rounds should be ~0.3·n, not 0.1n + 0.3n:
	// the top-up must not reship.
	n := float64(nw.TotalN())
	if rate := float64(afterSecond) / n; math.Abs(rate-0.3) > 0.03 {
		t.Errorf("total shipped rate %v, want ~0.3 (no reshipping)", rate)
	}
	if afterSecond <= afterFirst {
		t.Error("second round should ship additional samples")
	}
	// Base station must hold the union.
	held := 0
	for _, set := range nw.SampleSets() {
		held += len(set.Samples)
	}
	if held != afterSecond {
		t.Errorf("base station holds %d samples, shipped %d", held, afterSecond)
	}
}

func TestLoweringRateIsFree(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 4, 2000, 13)
	nw, err := New(parts, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.EnsureRate(0.4); err != nil {
		t.Fatal(err)
	}
	before := nw.Cost()
	if _, err := nw.EnsureRate(0.1); err != nil {
		t.Fatal(err)
	}
	if nw.Cost() != before {
		t.Error("lowering the rate should not transmit anything")
	}
	if nw.Rate() != 0.4 {
		t.Errorf("rate should remain 0.4, got %v", nw.Rate())
	}
}

func TestEnsureRateValidation(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 2, 100, 15)
	nw, err := New(parts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.EnsureRate(-0.1); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := nw.EnsureRate(1.1); err == nil {
		t.Error("rate > 1 should fail")
	}
}

func TestTreeTopologyCostsMoreBytes(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 32, 16000, 17)
	flat, err := New(parts, Config{Seed: 19, Topology: Flat, FreeHeartbeatSamples: -1})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(parts, Config{Seed: 19, Topology: Tree, TreeFanout: 2, FreeHeartbeatSamples: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flat.EnsureRate(0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.EnsureRate(0.2); err != nil {
		t.Fatal(err)
	}
	if flat.Cost().SamplesShipped != tree.Cost().SamplesShipped {
		t.Errorf("topology should not change which samples ship: %d vs %d",
			flat.Cost().SamplesShipped, tree.Cost().SamplesShipped)
	}
	if tree.Cost().Bytes <= flat.Cost().Bytes {
		t.Errorf("deep tree (fanout 2, 32 nodes) should cost more bytes: tree=%d flat=%d",
			tree.Cost().Bytes, flat.Cost().Bytes)
	}
}

func TestTreeHops(t *testing.T) {
	t.Parallel()
	nw := &Network{cfg: Config{Topology: Tree, TreeFanout: 2}}
	cases := []struct {
		id   int
		want int
	}{
		{id: 0, want: 1},
		{id: 1, want: 1},
		{id: 2, want: 2},  // parent = 2/2-1 = 0
		{id: 5, want: 2},  // parent = 5/2-1 = 1
		{id: 6, want: 3},  // parent = 2, grandparent = 0
		{id: 13, want: 3}, // 13 -> 5 -> 1 -> base
		{id: 14, want: 4}, // 14 -> 6 -> 2 -> 0 -> base
	}
	for _, tc := range cases {
		if got := nw.hops(tc.id); got != tc.want {
			t.Errorf("hops(%d) = %d, want %d", tc.id, got, tc.want)
		}
	}
	flat := &Network{cfg: Config{Topology: Flat}}
	if got := flat.hops(99); got != 1 {
		t.Errorf("flat hops = %d, want 1", got)
	}
}

func TestPiggybackDiscount(t *testing.T) {
	t.Parallel()
	// Tiny per-node samples (≤16) should be free under the default
	// config, per the paper's heartbeat argument.
	parts, _ := buildParts(t, 4, 400, 21)
	nw, err := New(parts, Config{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.EnsureRate(0.05); err != nil { // ~5 samples per node
		t.Fatal(err)
	}
	cost := nw.Cost()
	if cost.PiggybackedReports == 0 {
		t.Error("small reports should piggyback")
	}
	// Only the resample commands should have cost bytes.
	cmdSize, err := wire.EncodedSize(&wire.Resample{NodeID: 3, Rate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	maxExpected := int64(4 * (cmdSize + 2)) // command bytes only, small slack for id width
	if cost.Bytes > maxExpected {
		t.Errorf("bytes = %d, want only command traffic (≤ %d)", cost.Bytes, maxExpected)
	}
}

func TestHeartbeatRound(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 3, 300, 25)
	nw, err := New(parts, Config{Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.HeartbeatRound(); err != nil {
		t.Fatal(err)
	}
	cost := nw.Cost()
	if cost.Messages != 3 {
		t.Errorf("messages = %d, want 3", cost.Messages)
	}
	if cost.Bytes == 0 {
		t.Error("heartbeats should bill baseline bytes")
	}
	if cost.SamplesShipped != 0 {
		t.Error("bare heartbeats carry no samples")
	}
}

func TestNodeStreamingObserveInvalidatesAndReplaces(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 2, 500, 29)
	nw, err := New(parts, Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.EnsureRate(0.2); err != nil {
		t.Fatal(err)
	}
	// New readings arrive at node 0.
	nw.nodes[0].Observe(500)
	nw.nodes[0].Observe(501)
	// Force re-collection at a higher rate; node 0 must replace, node 1
	// may top up — either way base-station state stays consistent.
	if _, err := nw.EnsureRate(0.5); err != nil {
		t.Fatal(err)
	}
	sets := nw.SampleSets()
	if sets[0].N != nw.nodes[0].Len() {
		t.Errorf("node 0 set N = %d, want %d", sets[0].N, nw.nodes[0].Len())
	}
	for i, set := range sets {
		if err := set.Validate(); err != nil {
			t.Errorf("set %d invalid after streaming insert: %v", i, err)
		}
	}
}

func TestNodeHandleResampleValidation(t *testing.T) {
	t.Parallel()
	node := NewNode(1, 1)
	node.Load([]float64{1, 2, 3})
	if _, err := node.HandleResample(nil); err == nil {
		t.Error("nil command should fail")
	}
	if _, err := node.HandleResample(&wire.Resample{NodeID: 2, Rate: 0.5}); err == nil {
		t.Error("misrouted command should fail")
	}
}

func TestBaseStationValidation(t *testing.T) {
	t.Parallel()
	base := NewBaseStation()
	if err := base.HandleReport(nil); err == nil {
		t.Error("nil report should fail")
	}
	if err := base.HandleHeartbeat(nil); err == nil {
		t.Error("nil heartbeat should fail")
	}
	// Incremental report for an unknown node is treated as initial state.
	rep := &wire.SampleReport{NodeID: 5, N: 10}
	if err := base.HandleReport(rep); err != nil {
		t.Fatal(err)
	}
	// Incremental with mismatched N must fail.
	bad := &wire.SampleReport{NodeID: 5, N: 11}
	if err := base.HandleReport(bad); err == nil {
		t.Error("incremental report with changed N should fail")
	}
	if base.Nodes() != 1 {
		t.Errorf("Nodes = %d, want 1", base.Nodes())
	}
}

func TestHeartbeatWithPiggybackMerges(t *testing.T) {
	t.Parallel()
	base := NewBaseStation()
	hb := &wire.Heartbeat{NodeID: 2, N: 100, Piggyback: []sampling.Sample{
		{Value: 7, Rank: 3}, {Value: 9, Rank: 50},
	}}
	if err := base.HandleHeartbeat(hb); err != nil {
		t.Fatal(err)
	}
	sets := base.SampleSets()
	if len(sets) != 1 || len(sets[0].Samples) != 2 || sets[0].N != 100 {
		t.Fatalf("piggyback not folded in: %+v", sets)
	}
}

func TestLossValidation(t *testing.T) {
	t.Parallel()
	if _, err := New([][]float64{{1}}, Config{LossRate: -0.1}); err == nil {
		t.Error("negative loss rate should fail")
	}
	if _, err := New([][]float64{{1}}, Config{LossRate: 1}); err == nil {
		t.Error("loss rate 1 should fail")
	}
	if _, err := New([][]float64{{1}}, Config{MaxRetries: -1}); err == nil {
		t.Error("negative retries should fail")
	}
}

func TestLossyLinkRetransmitsAndConverges(t *testing.T) {
	t.Parallel()
	parts, series := buildParts(t, 6, 3000, 31)
	nw, err := New(parts, Config{Seed: 33, LossRate: 0.3, MaxRetries: 50, FreeHeartbeatSamples: -1})
	if err != nil {
		t.Fatal(err)
	}
	// With 50 retries at 30% loss, collection succeeds with overwhelming
	// probability; retry EnsureRate defensively anyway (the protocol is
	// idempotent: already-shipped samples are not reshipped).
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		if _, lastErr = nw.EnsureRate(0.2); lastErr == nil {
			break
		}
	}
	if lastErr != nil {
		t.Fatalf("collection never converged: %v", lastErr)
	}
	cost := nw.Cost()
	if cost.Retransmissions == 0 {
		t.Error("30% loss should cause retransmissions")
	}
	// State must be complete and consistent.
	sets := nw.SampleSets()
	if len(sets) != 6 {
		t.Fatalf("only %d of 6 nodes reported", len(sets))
	}
	total := 0
	for _, set := range sets {
		if err := set.Validate(); err != nil {
			t.Fatalf("invalid set after lossy collection: %v", err)
		}
		total += len(set.Samples)
	}
	rate := float64(total) / float64(series.Len())
	if math.Abs(rate-0.2) > 0.04 {
		t.Errorf("collected rate %v, want ~0.2", rate)
	}
	// Lossy run must cost strictly more bytes than a lossless twin.
	clean, err := New(parts, Config{Seed: 33, FreeHeartbeatSamples: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clean.EnsureRate(0.2); err != nil {
		t.Fatal(err)
	}
	if cost.Bytes <= clean.Cost().Bytes {
		t.Errorf("lossy bytes %d should exceed lossless %d", cost.Bytes, clean.Cost().Bytes)
	}
}

func TestTotalLossGivesUp(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 2, 200, 35)
	nw, err := New(parts, Config{Seed: 37, LossRate: 0.95, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With 95% loss and one retry, failure is near-certain across the
	// whole protocol; assert the error path is exercised at least once
	// over several attempts.
	failed := false
	for attempt := 0; attempt < 10 && !failed; attempt++ {
		if _, err := nw.EnsureRate(0.5); err != nil {
			failed = true
		}
	}
	if !failed {
		t.Error("expected at least one give-up under 95% loss")
	}
}

func TestReportLossNeverDropsSamples(t *testing.T) {
	t.Parallel()
	// Regression: a report lost in transit must be reshipped by the next
	// round — shipment bookkeeping only advances on acknowledgement. With
	// MaxRetries=1 and heavy loss, individual EnsureRate calls fail often;
	// retrying until success must still deliver the full target rate.
	parts, series := buildParts(t, 5, 2000, 41)
	nw, err := New(parts, Config{Seed: 43, LossRate: 0.5, MaxRetries: 1, FreeHeartbeatSamples: -1})
	if err != nil {
		t.Fatal(err)
	}
	succeeded := false
	for attempt := 0; attempt < 500; attempt++ {
		if _, err := nw.EnsureRate(0.3); err == nil {
			succeeded = true
			break
		}
	}
	if !succeeded {
		t.Fatal("collection never succeeded under loss")
	}
	held := 0
	for _, set := range nw.SampleSets() {
		if err := set.Validate(); err != nil {
			t.Fatalf("corrupt set after lossy retries: %v", err)
		}
		held += len(set.Samples)
	}
	rate := float64(held) / float64(series.Len())
	if math.Abs(rate-0.3) > 0.04 {
		t.Errorf("held rate %v, want ~0.3: samples were lost or duplicated", rate)
	}
}

func TestIngestMarksAndRefreshes(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 3, 600, 45)
	nw, err := New(parts, Config{Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.EnsureRate(0.4); err != nil {
		t.Fatal(err)
	}
	if err := nw.Ingest(9, []float64{1}); err == nil {
		t.Error("unknown node should fail")
	}
	if err := nw.Ingest(0, nil); err != nil {
		t.Errorf("empty ingest should be a no-op: %v", err)
	}
	before := nw.Base().TotalN()
	if err := nw.Ingest(1, []float64{100, 101, 102}); err != nil {
		t.Fatal(err)
	}
	// Base station still serves the pre-ingest snapshot.
	if nw.Base().TotalN() != before {
		t.Error("base station should be refreshed lazily")
	}
	// Re-collection at the *same* rate must pick the new data up.
	if _, err := nw.EnsureRate(0.4); err != nil {
		t.Fatal(err)
	}
	if got := nw.Base().TotalN(); got != before+3 {
		t.Errorf("post-refresh TotalN = %d, want %d", got, before+3)
	}
	for _, set := range nw.SampleSets() {
		if err := set.Validate(); err != nil {
			t.Fatalf("invalid set after ingest refresh: %v", err)
		}
	}
}

func TestIngestRoundContinuousMonitoring(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 49, Records: 12000})
	if err != nil {
		t.Fatal(err)
	}
	const (
		k         = 6
		initial   = 3000
		roundSize = 900 // 150 per node per round
		rounds    = 10
		p         = 0.3
	)
	// Start with the first `initial` readings spread across nodes.
	head := &dataset.Series{Values: series.Values[:initial]}
	parts, err := head.Partition(k)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(parts, Config{Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.EnsureRate(p); err != nil {
		t.Fatal(err)
	}
	offset := initial
	q := estimator.Query{L: 40, U: 90}
	for round := 0; round < rounds; round++ {
		batch := series.Values[offset : offset+roundSize]
		perNode := make([][]float64, k)
		for i := range perNode {
			perNode[i] = batch[i*roundSize/k : (i+1)*roundSize/k]
		}
		if err := nw.IngestRound(perNode); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		offset += roundSize

		// The estimate must keep tracking the *growing* ground truth.
		truth, err := nw.ExactCount(q.L, q.U)
		if err != nil {
			t.Fatal(err)
		}
		rc := estimator.RankCounting{P: nw.Rate()}
		est, err := rc.Estimate(nw.SampleSets(), q)
		if err != nil {
			t.Fatal(err)
		}
		sigma := math.Sqrt(rc.VarianceBound(k))
		if math.Abs(est-float64(truth)) > 6*sigma {
			t.Fatalf("round %d: estimate %v vs truth %d exceeds 6σ=%v", round, est, truth, 6*sigma)
		}
	}
	if got, want := nw.TotalN(), initial+rounds*roundSize; got != want {
		t.Errorf("TotalN = %d, want %d", got, want)
	}
	if err := nw.IngestRound(make([][]float64, k+1)); err == nil {
		t.Error("wrong round width should fail")
	}
}

func TestSetDownValidation(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 2, 200, 53)
	nw, err := New(parts, Config{Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetDown(5, true); err == nil {
		t.Error("unknown node should fail")
	}
	if err := nw.SetDown(-1, true); err == nil {
		t.Error("negative node should fail")
	}
	if err := nw.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetDown(0, true); err != nil {
		t.Errorf("idempotent down should succeed: %v", err)
	}
	if nw.LiveNodes() != 1 {
		t.Errorf("LiveNodes = %d, want 1", nw.LiveNodes())
	}
	if c := nw.Coverage(); math.Abs(c-0.5) > 0.01 {
		t.Errorf("Coverage = %v, want ~0.5", c)
	}
}

func TestDownNodeServesStaleSamplesAndRecovers(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 4, 4000, 57)
	nw, err := New(parts, Config{Seed: 59})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.EnsureRate(0.3); err != nil {
		t.Fatal(err)
	}
	// Node 2 partitions away, then keeps sensing.
	if err := nw.SetDown(2, true); err != nil {
		t.Fatal(err)
	}
	fresh := []float64{500, 501, 502, 503, 504}
	if err := nw.Ingest(2, fresh); err != nil {
		t.Fatal(err)
	}
	staleN := nw.SampleSets()[2].N
	// Re-collection skips the down node: its set stays stale, no error.
	if _, err := nw.EnsureRate(0.5); err != nil {
		t.Fatal(err)
	}
	if got := nw.SampleSets()[2].N; got != staleN {
		t.Errorf("down node's set should stay stale: N %d -> %d", staleN, got)
	}
	// The other nodes did reach the higher rate.
	liveSamples := len(nw.SampleSets()[0].Samples)
	if rate := float64(liveSamples) / float64(len(parts[0])); math.Abs(rate-0.5) > 0.06 {
		t.Errorf("live node rate %v, want ~0.5", rate)
	}
	// Recovery: the node comes back and the next round catches it up.
	if err := nw.SetDown(2, false); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.EnsureRate(0.5); err != nil {
		t.Fatal(err)
	}
	set := nw.SampleSets()[2]
	if set.N != len(parts[2])+len(fresh) {
		t.Errorf("recovered node set N = %d, want %d", set.N, len(parts[2])+len(fresh))
	}
	if err := set.Validate(); err != nil {
		t.Errorf("recovered set invalid: %v", err)
	}
	if nw.Coverage() != 1 {
		t.Errorf("Coverage = %v after recovery", nw.Coverage())
	}
}

func TestAllNodesDownStillAnswersFromStaleState(t *testing.T) {
	t.Parallel()
	parts, series := buildParts(t, 3, 3000, 61)
	nw, err := New(parts, Config{Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.EnsureRate(0.4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := nw.SetDown(i, true); err != nil {
			t.Fatal(err)
		}
	}
	// EnsureRate with everything down is a no-op, not an error...
	if _, err := nw.EnsureRate(0.8); err != nil {
		t.Fatalf("collection with all nodes down should degrade, not fail: %v", err)
	}
	// ...and the stale samples still answer queries.
	rc := estimator.RankCounting{P: 0.4}
	truth, err := series.RangeCount(40, 90)
	if err != nil {
		t.Fatal(err)
	}
	est, err := rc.Estimate(nw.SampleSets(), estimator.Query{L: 40, U: 90})
	if err != nil {
		t.Fatal(err)
	}
	sigma := math.Sqrt(rc.VarianceBound(3))
	if math.Abs(est-float64(truth)) > 6*sigma {
		t.Errorf("stale answer %v too far from truth %d", est, truth)
	}
	if nw.Coverage() != 0 {
		t.Errorf("Coverage = %v, want 0", nw.Coverage())
	}
}

func TestAddNodeJoinsDeployment(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 3, 3000, 65)
	nw, err := New(parts, Config{Seed: 67})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.EnsureRate(0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddNode(nil); err == nil {
		t.Error("joining without data should fail")
	}
	newData := make([]float64, 800)
	for i := range newData {
		newData[i] = float64(50 + i%40)
	}
	id, err := nw.AddNode(newData)
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 || nw.NumNodes() != 4 {
		t.Fatalf("id=%d nodes=%d", id, nw.NumNodes())
	}
	// Until collected, the network cannot claim any rate guarantee.
	if nw.Rate() != 0 {
		t.Errorf("rate should be 0 with an uncollected member, got %v", nw.Rate())
	}
	if _, err := nw.EnsureRate(0.3); err != nil {
		t.Fatal(err)
	}
	if math.Abs(nw.Rate()-0.3) > 1e-12 {
		t.Errorf("rate = %v after catch-up, want 0.3", nw.Rate())
	}
	sets := nw.SampleSets()
	if len(sets) != 4 {
		t.Fatalf("sets = %d", len(sets))
	}
	if sets[3].N != len(newData) {
		t.Errorf("new node set N = %d, want %d", sets[3].N, len(newData))
	}
	// Estimates over the grown deployment track the grown truth.
	truth, err := nw.ExactCount(50, 90)
	if err != nil {
		t.Fatal(err)
	}
	rc := estimator.RankCounting{P: nw.Rate()}
	est, err := rc.Estimate(sets, estimator.Query{L: 50, U: 90})
	if err != nil {
		t.Fatal(err)
	}
	sigma := math.Sqrt(rc.VarianceBound(4))
	if math.Abs(est-float64(truth)) > 6*sigma {
		t.Errorf("estimate %v vs truth %d beyond 6σ", est, truth)
	}
}

func TestTransmitGiveUpBillsEveryAttempt(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 1, 50, 53)
	// LossRate so close to 1 that every attempt drops: transmit must give
	// up after 1 + MaxRetries attempts.
	nw, err := New(parts, Config{Seed: 59, LossRate: 0.999999, MaxRetries: 2, FreeHeartbeatSamples: -1})
	if err != nil {
		t.Fatal(err)
	}
	rep := &wire.SampleReport{NodeID: 0, N: 3, Replace: true, Samples: []sampling.Sample{
		{Value: 1, Rank: 1}, {Value: 2, Rank: 2},
	}}
	data, err := wire.Encode(rep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.transmit(0, rep); err == nil {
		t.Fatal("expected give-up under total loss")
	}
	cost := nw.Cost()
	// All 3 attempts (1 + MaxRetries) crossed the link and cost bytes...
	if want := int64(len(data)) * 3; cost.Bytes != want {
		t.Errorf("bytes = %d, want %d (every attempt billed)", cost.Bytes, want)
	}
	if cost.Retransmissions != 2 {
		t.Errorf("retransmissions = %d, want 2", cost.Retransmissions)
	}
	// ...but nothing arrived end to end: no message, no shipped samples.
	if cost.Messages != 0 {
		t.Errorf("messages = %d, want 0 for an undelivered message", cost.Messages)
	}
	if cost.SamplesShipped != 0 {
		t.Errorf("samples shipped = %d, want 0 for an undelivered report", cost.SamplesShipped)
	}
	if cost.PiggybackedReports != 0 {
		t.Errorf("piggybacked = %d, want 0", cost.PiggybackedReports)
	}
	// A lossless twin delivers the same message and bills it exactly once.
	clean, err := New(parts, Config{Seed: 59, FreeHeartbeatSamples: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clean.transmit(0, rep); err != nil {
		t.Fatal(err)
	}
	got := clean.Cost()
	if got.Bytes != int64(len(data)) || got.Messages != 1 || got.SamplesShipped != 2 || got.Retransmissions != 0 {
		t.Errorf("lossless bill = %+v, want 1 message, %d bytes, 2 samples", got, len(data))
	}
}

func TestStateVersionBumpsOnAcceptedReports(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 3, 600, 61)
	nw, err := New(parts, Config{Seed: 67})
	if err != nil {
		t.Fatal(err)
	}
	if nw.StateVersion() != 0 {
		t.Fatalf("fresh network version = %d, want 0", nw.StateVersion())
	}
	if _, err := nw.EnsureRate(0.3); err != nil {
		t.Fatal(err)
	}
	v1 := nw.StateVersion()
	if v1 == 0 {
		t.Fatal("collection must bump the sample-state version")
	}
	// Re-ensuring an already-satisfied rate touches nothing.
	if _, err := nw.EnsureRate(0.3); err != nil {
		t.Fatal(err)
	}
	if nw.StateVersion() != v1 {
		t.Errorf("idle EnsureRate moved version %d -> %d", v1, nw.StateVersion())
	}
	// A recovered node re-reports, moving the version even at the same
	// (n, rate).
	if err := nw.SetDown(1, true); err != nil {
		t.Fatal(err)
	}
	if err := nw.Ingest(1, []float64{50, 51}); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetDown(1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.EnsureRate(0.3); err != nil {
		t.Fatal(err)
	}
	if nw.StateVersion() == v1 {
		t.Error("recovery refresh must move the sample-state version")
	}
}
