package iot

import (
	"fmt"
	"sort"
)

// CollectionReport describes what one collection round actually
// achieved. Partial reporting is the normal case over lossy deployments,
// not the error case: a round attempts every reachable node, accumulates
// per-node failures instead of aborting, and summarizes the resulting
// guarantee so the broker can decide whether to answer, degrade, or
// retry.
type CollectionReport struct {
	// Round is the network round clock value this report describes.
	Round uint64
	// Target is the rate the caller asked for; Effective is the rate the
	// round actually drove toward (raised to the historical maximum so
	// recovering nodes catch up).
	Target, Effective float64
	// Achieved is the network-wide guaranteed rate after the round — the
	// minimum rate any node's stored sample was collected at (0 while
	// any node has never reported).
	Achieved float64
	// Coverage is the fraction of records held by currently reachable
	// nodes after the round.
	Coverage float64
	// Version is the base station's sample-state version after the round.
	Version uint64
	// Refreshed lists nodes whose samples were (re)collected this round;
	// Satisfied lists nodes already at the effective rate with nothing
	// new to report; Skipped lists unreachable nodes (manually down or
	// breaker-exiled) that were not attempted.
	Refreshed, Satisfied, Skipped []int
	// CircuitOpen is the subset of Skipped exiled by the failure
	// circuit breaker rather than by SetDown.
	CircuitOpen []int
	// Failed maps each attempted-but-unreached node to its transport
	// error.
	Failed map[int]error
}

// Attempted returns how many nodes the round actually tried to collect.
func (r *CollectionReport) Attempted() int {
	return len(r.Refreshed) + len(r.Failed)
}

// Complete reports whether every node in the deployment is fresh at the
// effective rate: nothing failed, nothing was skipped.
func (r *CollectionReport) Complete() bool {
	return len(r.Failed) == 0 && len(r.Skipped) == 0
}

// FailedIDs returns the failed node ids in ascending order.
func (r *CollectionReport) FailedIDs() []int {
	ids := make([]int, 0, len(r.Failed))
	for id := range r.Failed {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Err aggregates the round's per-node failures into one error wrapping
// ErrPartialRound, or returns nil when no attempted node failed.
// Skipped (down) nodes are not failures: serving their stale samples is
// the availability/freshness trade the deployment opted into.
func (r *CollectionReport) Err() error {
	if len(r.Failed) == 0 {
		return nil
	}
	ids := r.FailedIDs()
	return fmt.Errorf("%w: %d of %d attempted nodes failed in round %d (node %d: %w)",
		ErrPartialRound, len(r.Failed), r.Attempted(), r.Round, ids[0], r.Failed[ids[0]])
}

// HeartbeatReport describes one liveness round: which nodes checked in,
// which missed their heartbeat (feeding the failure circuit breaker),
// and which were not expected to answer at all.
type HeartbeatReport struct {
	// Round is the network round clock value this report describes.
	Round uint64
	// Delivered lists nodes whose heartbeat arrived.
	Delivered []int
	// Skipped lists nodes that were down (manually or breaker-exiled)
	// and therefore not expected to heartbeat.
	Skipped []int
	// Missed maps nodes whose heartbeat was lost, corrupted past the
	// retry bound, or swallowed by a crash window to the delivery error.
	Missed map[int]error
}

// MissedIDs returns the missed node ids in ascending order.
func (r *HeartbeatReport) MissedIDs() []int {
	ids := make([]int, 0, len(r.Missed))
	for id := range r.Missed {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Err aggregates missed heartbeats into one error wrapping
// ErrPartialRound, or returns nil when every expected heartbeat arrived.
func (r *HeartbeatReport) Err() error {
	if len(r.Missed) == 0 {
		return nil
	}
	ids := r.MissedIDs()
	return fmt.Errorf("%w: %d heartbeats missed in round %d (node %d: %w)",
		ErrPartialRound, len(r.Missed), r.Round, ids[0], r.Missed[ids[0]])
}
