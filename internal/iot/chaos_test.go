package iot

import (
	"errors"
	"fmt"
	"testing"
)

// ingestAll loads a few fresh readings into every node so the next
// collection round has to attempt the whole deployment.
func ingestAll(t *testing.T, nw *Network, round int) {
	t.Helper()
	for id := 0; id < nw.NumNodes(); id++ {
		if err := nw.Ingest(id, []float64{float64(round), float64(round) + 0.5}); err != nil {
			t.Fatal(err)
		}
	}
}

func contains(ids []int, want int) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

// TestChaosScriptedScenario is the acceptance scenario: ≥25% per-node
// loss on a quarter of the nodes, two crash/recover windows, nonzero
// corruption. Collection rounds must keep completing with reports that
// show partial progress while the crashed node is out, and full
// recovery afterwards.
func TestChaosScriptedScenario(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 8, 4000, 31)
	faults := map[int]FaultProfile{
		0: {LossRate: 0.3, CorruptRate: 0.25},
		1: {LossRate: 0.25},
		2: {CrashWindows: []CrashWindow{{From: 2, Until: 4}, {From: 6, Until: 8}}},
	}
	nw, err := New(parts, Config{Seed: 33, MaxRetries: 8, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := nw.EnsureRate(0.2)
	if err != nil {
		t.Fatalf("round 1 (no faults active yet) should complete: %v", err)
	}
	if !rep.Complete() || len(rep.Refreshed) != 8 {
		t.Fatalf("round 1 should refresh all nodes: %+v", rep)
	}
	crashed := func(round uint64) bool {
		return (round >= 2 && round < 4) || (round >= 6 && round < 8)
	}
	for round := 2; round <= 9; round++ {
		ingestAll(t, nw, round)
		rep, err := nw.EnsureRate(0.2)
		if rep == nil {
			t.Fatalf("round %d: no report", round)
		}
		if rep.Round != uint64(round) {
			t.Fatalf("round clock %d, want %d", rep.Round, round)
		}
		if crashed(rep.Round) {
			if !errors.Is(err, ErrPartialRound) {
				t.Fatalf("round %d: crashed node should make the round partial, got err=%v", round, err)
			}
			if _, ok := rep.Failed[2]; !ok {
				t.Fatalf("round %d: node 2 should be in Failed, got %v", round, rep.FailedIDs())
			}
			// Partial progress: the other seven nodes were still refreshed.
			if len(rep.Refreshed) != 7 {
				t.Fatalf("round %d: want 7 refreshed, got %v", round, rep.Refreshed)
			}
			if rep.Coverage >= 1 {
				t.Fatalf("round %d: coverage should reflect the crashed node, got %v", round, rep.Coverage)
			}
			// The crashed node's stale sample keeps serving at its old rate.
			if rep.Achieved != 0.2 {
				t.Fatalf("round %d: achieved rate %v, want 0.2", round, rep.Achieved)
			}
		} else {
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if !contains(rep.Refreshed, 2) {
				t.Fatalf("round %d: recovered node 2 should be re-collected, got %v", round, rep.Refreshed)
			}
			if rep.Coverage != 1 {
				t.Fatalf("round %d: full coverage expected, got %v", round, rep.Coverage)
			}
		}
	}
	if got := nw.Rate(); got != 0.2 {
		t.Errorf("final rate %v, want 0.2", got)
	}
	cost := nw.Cost()
	if cost.CorruptedMessages == 0 {
		t.Error("corruption was injected but never detected")
	}
	if cost.Retransmissions == 0 {
		t.Error("lossy links should have forced retransmissions")
	}
}

// TestChaosMatrix sweeps loss × corruption × churn and checks every cell
// stays serviceable: each round accounts for every node, only partial-
// round errors surface, and the deployment holds its rate guarantee.
func TestChaosMatrix(t *testing.T) {
	t.Parallel()
	for _, loss := range []float64{0, 0.3} {
		for _, corrupt := range []float64{0, 0.3} {
			for _, churn := range []bool{false, true} {
				loss, corrupt, churn := loss, corrupt, churn
				name := fmt.Sprintf("loss=%v/corrupt=%v/churn=%v", loss, corrupt, churn)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					parts, _ := buildParts(t, 4, 1200, 41)
					prof := FaultProfile{LossRate: loss, CorruptRate: corrupt}
					if churn {
						prof.CrashWindows = []CrashWindow{{From: 2, Until: 3}}
					}
					nw, err := New(parts, Config{Seed: 43, MaxRetries: 10, Faults: map[int]FaultProfile{1: prof}})
					if err != nil {
						t.Fatal(err)
					}
					for round := 1; round <= 4; round++ {
						ingestAll(t, nw, round)
						rep, err := nw.EnsureRate(0.25)
						if err != nil && !errors.Is(err, ErrPartialRound) {
							t.Fatalf("round %d: non-partial error %v", round, err)
						}
						if rep == nil {
							t.Fatalf("round %d: no report", round)
						}
						accounted := rep.Attempted() + len(rep.Satisfied) + len(rep.Skipped)
						if accounted != 4 {
							t.Fatalf("round %d accounts for %d of 4 nodes: %+v", round, accounted, rep)
						}
					}
					if got := nw.Rate(); got != 0.25 {
						t.Errorf("final rate %v, want 0.25 (deployment did not converge)", got)
					}
				})
			}
		}
	}
}

// TestCorruptionBilledAndCounted: corrupted deliveries crossed the wire,
// so every attempt must be billed and counted even though the exchange
// ultimately fails (satellite: transmit's corruption path returned
// before billing).
func TestCorruptionBilledAndCounted(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 1, 300, 51)
	nw, err := New(parts, Config{Seed: 53, MaxRetries: 2, Faults: map[int]FaultProfile{
		0: {CorruptRate: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := nw.EnsureRate(0.5)
	if !errors.Is(err, ErrPartialRound) {
		t.Fatalf("always-corrupting link should fail the round, got %v", err)
	}
	if _, ok := rep.Failed[0]; !ok {
		t.Fatalf("node 0 should have failed: %+v", rep)
	}
	cost := nw.Cost()
	// MaxRetries=2 means 3 attempts, each delivered corrupted.
	if cost.CorruptedMessages != 3 {
		t.Errorf("CorruptedMessages = %d, want 3", cost.CorruptedMessages)
	}
	if cost.Retransmissions != 2 {
		t.Errorf("Retransmissions = %d, want 2", cost.Retransmissions)
	}
	if cost.Bytes == 0 {
		t.Error("corrupted attempts crossed the wire and must be billed")
	}
	if cost.Messages != 0 {
		t.Errorf("no message was ever delivered intact, yet Messages = %d", cost.Messages)
	}
}

// TestCircuitBreakerTripsAndReinstates scripts the breaker lifecycle:
// consecutive failures trip it, tripped nodes are skipped without
// wasting bytes, reinstatement is half-open with exponential backoff,
// and a real recovery clears the state.
func TestCircuitBreakerTripsAndReinstates(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 2, 600, 61)
	nw, err := New(parts, Config{
		Seed:             63,
		FailureThreshold: 2,
		BreakerBackoff:   2,
		Faults:           map[int]FaultProfile{1: {CrashWindows: []CrashWindow{{From: 1, Until: 6}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	round := func(wantRound uint64) *CollectionReport {
		t.Helper()
		rep, err := nw.EnsureRate(0.3)
		if err != nil && !errors.Is(err, ErrPartialRound) {
			t.Fatalf("round %d: %v", wantRound, err)
		}
		if rep.Round != wantRound {
			t.Fatalf("round clock %d, want %d", rep.Round, wantRound)
		}
		return rep
	}

	// Rounds 1-2: the crashed node fails twice; threshold 2 trips the
	// breaker at the end of round 2.
	for r := uint64(1); r <= 2; r++ {
		rep := round(r)
		if _, ok := rep.Failed[1]; !ok {
			t.Fatalf("round %d: node 1 should fail, got %+v", r, rep)
		}
	}
	if !nw.BreakerOpen(1) {
		t.Fatal("breaker should be open after 2 consecutive failures")
	}

	// Round 3: exiled — skipped, not attempted, no bytes wasted on it.
	bytesBefore := nw.Cost().Bytes
	rep := round(3)
	if !contains(rep.Skipped, 1) || !contains(rep.CircuitOpen, 1) {
		t.Fatalf("round 3: node 1 should be breaker-skipped: %+v", rep)
	}
	if len(rep.Failed) != 0 {
		t.Fatalf("round 3: nothing should be attempted and fail: %+v", rep)
	}
	if nw.Cost().Bytes != bytesBefore {
		t.Error("round 3 should not spend bytes on the exiled node")
	}

	// Round 4: backoff (2 rounds) expired — half-open retry, but the node
	// is still crashed: one failure re-trips immediately, backoff doubles.
	rep = round(4)
	if _, ok := rep.Failed[1]; !ok {
		t.Fatalf("round 4: half-open retry should fail, got %+v", rep)
	}
	if !nw.BreakerOpen(1) {
		t.Fatal("half-open failure must re-trip the breaker")
	}

	// Rounds 5-7: doubled backoff (4 rounds from round 4) keeps it exiled.
	for r := uint64(5); r <= 7; r++ {
		rep = round(r)
		if !contains(rep.Skipped, 1) {
			t.Fatalf("round %d: node 1 should still be exiled: %+v", r, rep)
		}
	}

	// Round 8: reinstated, crash window long over — recovery succeeds and
	// clears the breaker.
	rep = round(8)
	if !contains(rep.Refreshed, 1) {
		t.Fatalf("round 8: recovered node should be re-collected: %+v", rep)
	}
	if !rep.Complete() {
		t.Fatalf("round 8 should be complete: %+v", rep)
	}
	if nw.BreakerOpen(1) {
		t.Error("success must clear the breaker")
	}
	if got := nw.Rate(); got != 0.3 {
		t.Errorf("recovered deployment rate %v, want 0.3", got)
	}
	if got := nw.Coverage(); got != 1 {
		t.Errorf("recovered deployment coverage %v, want 1", got)
	}
}

// TestHeartbeatPartialRound: one silent node must not abort the round —
// the rest still check in and the report names the missing node
// (satellite: HeartbeatRound abort fix).
func TestHeartbeatPartialRound(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 4, 800, 71)
	nw, err := New(parts, Config{Seed: 73, MaxRetries: 2, Faults: map[int]FaultProfile{
		2: {LossRate: 1}, // hard fault: every attempt dropped
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetDown(3, true); err != nil {
		t.Fatal(err)
	}
	rep, err := nw.HeartbeatRound()
	if !errors.Is(err, ErrPartialRound) {
		t.Fatalf("missed heartbeat should make the round partial, got %v", err)
	}
	if got := rep.MissedIDs(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("MissedIDs = %v, want [2]", got)
	}
	if len(rep.Delivered) != 2 || !contains(rep.Delivered, 0) || !contains(rep.Delivered, 1) {
		t.Fatalf("nodes 0 and 1 should still heartbeat, got %v", rep.Delivered)
	}
	if len(rep.Skipped) != 1 || rep.Skipped[0] != 3 {
		t.Fatalf("down node 3 should be skipped, not missed: %+v", rep)
	}
}

// TestHeartbeatFeedsCircuitBreaker: repeated missed heartbeats exile a
// silent node between collections.
func TestHeartbeatFeedsCircuitBreaker(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 3, 600, 81)
	nw, err := New(parts, Config{
		Seed:             83,
		MaxRetries:       1,
		FailureThreshold: 2,
		Faults:           map[int]FaultProfile{1: {LossRate: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := nw.HeartbeatRound(); !errors.Is(err, ErrPartialRound) {
			t.Fatalf("heartbeat round %d: want partial error, got %v", i+1, err)
		}
	}
	if !nw.BreakerOpen(1) {
		t.Fatal("two missed heartbeats at threshold 2 should trip the breaker")
	}
	// The next collection round skips the exiled node instead of burning
	// retries on it.
	rep, err := nw.EnsureRate(0.2)
	if !errors.Is(err, ErrPartialRound) && err != nil {
		t.Fatal(err)
	}
	if !contains(rep.CircuitOpen, 1) {
		t.Fatalf("collection should skip the breaker-exiled node: %+v", rep)
	}
}

// TestCrashRecoveryConsistency is the recovery-semantics satellite: a
// node that crashes mid-collection, recovers, and is re-collected must
// leave Rate(), Coverage(), and the sample-state version consistent.
func TestCrashRecoveryConsistency(t *testing.T) {
	t.Parallel()
	parts, _ := buildParts(t, 4, 2000, 91)
	nw, err := New(parts, Config{Seed: 93, Faults: map[int]FaultProfile{
		3: {CrashWindows: []CrashWindow{{From: 2, Until: 4}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: clean collection.
	if _, err := nw.EnsureRate(0.4); err != nil {
		t.Fatal(err)
	}
	v1 := nw.StateVersion()
	if got := nw.Coverage(); got != 1 {
		t.Fatalf("coverage before crash %v, want 1", got)
	}

	// Rounds 2-3: node 3 senses new data but is crashed; collection is
	// partial and the base station's state must not move.
	if err := nw.Ingest(3, []float64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	for r := 2; r <= 3; r++ {
		rep, err := nw.EnsureRate(0.4)
		if !errors.Is(err, ErrPartialRound) {
			t.Fatalf("round %d: want partial error, got %v", r, err)
		}
		if _, ok := rep.Failed[3]; !ok {
			t.Fatalf("round %d: node 3 should fail: %+v", r, rep)
		}
		if rep.Achieved != 0.4 {
			t.Fatalf("round %d: stale sample keeps the 0.4 guarantee, got %v", r, rep.Achieved)
		}
		if rep.Coverage >= 1 {
			t.Fatalf("round %d: coverage should drop while crashed, got %v", r, rep.Coverage)
		}
	}
	if nw.StateVersion() != v1 {
		t.Fatalf("failed rounds must not move the sample-state version: %d -> %d", v1, nw.StateVersion())
	}
	if got := nw.Rate(); got != 0.4 {
		t.Fatalf("rate during outage %v, want 0.4 (stale guarantee)", got)
	}

	// Round 4: recovered — re-collection picks up the data sensed while
	// crashed, bumps the version, and restores full coverage.
	rep, err := nw.EnsureRate(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(rep.Refreshed, 3) {
		t.Fatalf("recovered node should be re-collected: %+v", rep)
	}
	if nw.StateVersion() <= v1 {
		t.Error("recovery re-collection must bump the sample-state version")
	}
	if got := nw.Rate(); got != 0.4 {
		t.Errorf("rate after recovery %v, want 0.4", got)
	}
	if got := nw.Coverage(); got != 1 {
		t.Errorf("coverage after recovery %v, want 1", got)
	}
	if got := nw.Base().TotalN(); got != nw.TotalN() {
		t.Errorf("base station sees %d records, network has %d", got, nw.TotalN())
	}
}

// TestFaultProfileValidation: malformed profiles are rejected at New.
func TestFaultProfileValidation(t *testing.T) {
	t.Parallel()
	cases := []FaultProfile{
		{LossRate: -0.1},
		{LossRate: 1.5},
		{CorruptRate: -1},
		{CorruptRate: 2},
		{CrashWindows: []CrashWindow{{From: 5, Until: 5}}},
		{CrashWindows: []CrashWindow{{From: 5, Until: 3}}},
	}
	for i, prof := range cases {
		if _, err := New([][]float64{{1, 2}}, Config{Faults: map[int]FaultProfile{0: prof}}); err == nil {
			t.Errorf("case %d: profile %+v should be rejected", i, prof)
		}
	}
	if _, err := New([][]float64{{1, 2}}, Config{FailureThreshold: -1}); err == nil {
		t.Error("negative failure threshold should be rejected")
	}
	if _, err := New([][]float64{{1, 2}}, Config{BreakerBackoff: -1}); err == nil {
		t.Error("negative breaker backoff should be rejected")
	}
}
