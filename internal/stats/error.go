package stats

import (
	"fmt"
	"math"
)

// RelativeError returns |estimate−truth| / max(|truth|, floor). The floor
// guards against division by zero for empty ranges; the paper's evaluation
// reports relative error against non-empty range counts, so callers
// typically pass floor = 1 (one record).
func RelativeError(estimate, truth, floor float64) float64 {
	denom := math.Abs(truth)
	if denom < floor {
		denom = floor
	}
	return math.Abs(estimate-truth) / denom
}

// AbsoluteError returns |estimate − truth|.
func AbsoluteError(estimate, truth float64) float64 {
	return math.Abs(estimate - truth)
}

// ErrorSummary aggregates the error of a batch of estimates against ground
// truth, in the form the paper's figures report (maximum relative error)
// plus the supporting moments.
type ErrorSummary struct {
	// MaxRel is the maximum relative error over the batch — the headline
	// metric in Figs 2, 3, 5 and 6.
	MaxRel float64
	// MeanRel is the mean relative error.
	MeanRel float64
	// MaxAbs is the maximum absolute error.
	MaxAbs float64
	// MeanAbs is the mean absolute error.
	MeanAbs float64
	// N is the number of (estimate, truth) pairs summarized.
	N int
}

// SummarizeErrors computes an ErrorSummary for paired estimates and truths.
// It returns an error when the slices differ in length or are empty.
func SummarizeErrors(estimates, truths []float64) (ErrorSummary, error) {
	if len(estimates) != len(truths) {
		return ErrorSummary{}, fmt.Errorf("stats: %d estimates vs %d truths", len(estimates), len(truths))
	}
	if len(estimates) == 0 {
		return ErrorSummary{}, fmt.Errorf("stats: empty error batch")
	}
	var s ErrorSummary
	s.N = len(estimates)
	var relSum, absSum float64
	for i, est := range estimates {
		rel := RelativeError(est, truths[i], 1)
		abs := AbsoluteError(est, truths[i])
		relSum += rel
		absSum += abs
		if rel > s.MaxRel {
			s.MaxRel = rel
		}
		if abs > s.MaxAbs {
			s.MaxAbs = abs
		}
	}
	s.MeanRel = relSum / float64(s.N)
	s.MeanAbs = absSum / float64(s.N)
	return s, nil
}

// String renders the summary for experiment tables.
func (s ErrorSummary) String() string {
	return fmt.Sprintf("maxRel=%.4f meanRel=%.4f maxAbs=%.1f meanAbs=%.1f n=%d",
		s.MaxRel, s.MeanRel, s.MaxAbs, s.MeanAbs, s.N)
}

// ChebyshevTail returns the Chebyshev upper bound on
// Pr[|X − E X| > t] ≤ Var(X)/t², clamped to [0, 1]. It returns 1 when
// t ≤ 0 (the bound is vacuous there).
func ChebyshevTail(variance, t float64) float64 {
	if t <= 0 {
		return 1
	}
	b := variance / (t * t)
	if b > 1 {
		return 1
	}
	if b < 0 {
		return 0
	}
	return b
}

// ChebyshevConfidence returns the Chebyshev lower bound on
// Pr[|X − E X| ≤ t] ≥ 1 − Var(X)/t² (clamped at 0). This is the bound
// Theorem 3.3 instantiates with t = αn and Var ≤ 8k/p².
func ChebyshevConfidence(variance, t float64) float64 {
	return 1 - ChebyshevTail(variance, t)
}
