// Package stats provides the shared numerical machinery used across the
// privrange modules: deterministic splittable random number generation,
// running moments, quantiles, relative-error metrics, and the Chebyshev
// bounds that underpin the paper's (α, δ) accuracy guarantees.
//
// Everything in this package is deterministic given a seed so that every
// experiment in EXPERIMENTS.md reproduces bit-for-bit.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic, splittable random source. Experiments hand each
// node / trial its own split so that changing the number of trials does not
// perturb the stream any single trial sees.
type RNG struct {
	rand *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{rand: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child RNG identified by id. Two children
// with distinct ids produce uncorrelated streams; the parent stream is not
// advanced.
func (r *RNG) Split(id int64) *RNG {
	// SplitMix64-style mixing of (seed, id) into a fresh seed. The parent's
	// underlying seed is not recoverable from *rand.Rand, so we mix the id
	// with one draw from a dedicated lane: instead, derive from id and one
	// parent draw would advance the parent. We therefore keep a stable
	// derivation: hash the id through splitmix and xor with a per-parent
	// constant drawn once at construction time via the first Uint64 of a
	// cloned source. To stay allocation-free and order-independent we mix
	// the id only; parents constructed with different seeds differ because
	// their children are created through Child below.
	return &RNG{rand: rand.New(rand.NewSource(int64(splitmix(uint64(id)))))}
}

// Child derives an independent RNG from this RNG's stream position and id.
// Unlike Split, Child incorporates the parent seed material, so two parents
// with different seeds yield different children for the same id.
func (r *RNG) Child(id int64) *RNG {
	base := r.rand.Uint64()
	return &RNG{rand: rand.New(rand.NewSource(int64(splitmix(base ^ splitmix(uint64(id))))))}
}

// NewStream derives a deterministic RNG for one stream of a family
// identified by (seed, stream). Distinct pairs yield uncorrelated
// streams. Unlike Child it consumes no parent state, so callers can
// construct streams concurrently and in any order — the broker's batch
// path hands query i the stream (batchSeed, i) and gets bit-identical
// noise regardless of scheduling.
func NewStream(seed, stream int64) *RNG {
	return &RNG{rand: rand.New(rand.NewSource(int64(splitmix(splitmix(uint64(seed)) ^ splitmix(uint64(stream))))))}
}

// Reseed re-keys this RNG in place to the deterministic stream
// (seed, stream) — the allocation-free form of NewStream for hot paths
// that walk many streams with one scratch RNG. After Reseed(s, i) the
// RNG emits exactly the sequence NewStream(s, i) would, so batch code
// can reuse one generator per batch instead of allocating one per
// query while keeping the released values bit-identical.
func (r *RNG) Reseed(seed, stream int64) {
	r.rand.Seed(int64(splitmix(splitmix(uint64(seed)) ^ splitmix(uint64(stream)))))
}

// splitmix is the SplitMix64 finalizer, a strong 64-bit mixing function.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.rand.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int { return r.rand.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (r *RNG) Int63() int64 { return r.rand.Int63() }

// NormFloat64 returns a standard normal variate.
func (r *RNG) NormFloat64() float64 { return r.rand.NormFloat64() }

// Bernoulli returns true with probability p. Values of p outside [0, 1]
// are clamped.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.rand.Float64() < p
}

// Exponential returns an exponential variate with the given mean.
func (r *RNG) Exponential(mean float64) float64 {
	return r.rand.ExpFloat64() * mean
}

// Laplace returns a Laplace variate with location 0 and the given scale,
// sampled by inverse CDF: if U ~ Uniform(-1/2, 1/2) then
// -scale·sgn(U)·ln(1-2|U|) ~ Lap(scale).
func (r *RNG) Laplace(scale float64) float64 {
	u := r.rand.Float64() - 0.5
	if u == 0 {
		return 0
	}
	sign := 1.0
	if u < 0 {
		sign = -1.0
	}
	return -scale * sign * math.Log(1-2*math.Abs(u))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.rand.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.rand.Shuffle(n, swap) }
