package stats

import "math"

// DefaultTolerance is the relative/absolute tolerance ApproxEqual uses:
// loose enough to absorb the rounding error budget arithmetic
// accumulates across composition, tight enough that no two distinct
// tariff prices or epsilon grid points collide.
const DefaultTolerance = 1e-9

// ApproxEqual reports whether two floats agree within
// DefaultTolerance, scaled by magnitude: |a−b| ≤ tol·(1+|a|+|b|).
//
// Privacy budgets (ε, ε′), accuracy parameters (α, δ) and wallet
// amounts are accumulated floating-point sums; exact == / != on them
// mis-gates spend decisions one ulp apart. The privlint budgetfloat
// analyzer steers all budget comparisons here.
func ApproxEqual(a, b float64) bool {
	return ApproxEqualTol(a, b, DefaultTolerance)
}

// ApproxEqualTol is ApproxEqual with an explicit tolerance.
func ApproxEqualTol(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { // fast path; also handles equal infinities
		return true
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}
