package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSStatistic returns the Kolmogorov–Smirnov statistic
// D_n = sup_x |F_n(x) − F(x)| between the empirical distribution of the
// samples and the analytic CDF. It returns an error for an empty sample.
func KSStatistic(samples []float64, cdf func(float64) float64) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("stats: KS over empty sample")
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		// The empirical CDF jumps from i/n to (i+1)/n at x; check both
		// sides of the step.
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d, nil
}

// KSTest reports whether the samples are consistent with the analytic
// CDF at significance level alpha ∈ (0, 1): it compares D_n against the
// asymptotic critical value c(α)/√n with c(α) = √(−ln(α/2)/2). It
// returns the statistic, the critical value, and whether the sample
// passes (fails to reject).
func KSTest(samples []float64, cdf func(float64) float64, alpha float64) (stat, critical float64, pass bool, err error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, 0, false, fmt.Errorf("stats: KS significance %v outside (0, 1)", alpha)
	}
	stat, err = KSStatistic(samples, cdf)
	if err != nil {
		return 0, 0, false, err
	}
	critical = math.Sqrt(-math.Log(alpha/2)/2) / math.Sqrt(float64(len(samples)))
	return stat, critical, stat <= critical, nil
}
