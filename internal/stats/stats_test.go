package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunningMatchesBatch(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		xs   []float64
	}{
		{name: "small ints", xs: []float64{1, 2, 3, 4, 5}},
		{name: "negatives", xs: []float64{-3, 0, 3}},
		{name: "single", xs: []float64{42}},
		{name: "constant", xs: []float64{7, 7, 7, 7}},
		{name: "large magnitude", xs: []float64{1e9, 1e9 + 1, 1e9 + 2}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var w Running
			for _, x := range tc.xs {
				w.Add(x)
			}
			if got, want := w.Mean(), Mean(tc.xs); math.Abs(got-want) > 1e-6 {
				t.Errorf("Mean = %v, want %v", got, want)
			}
			if got, want := w.Variance(), Variance(tc.xs); math.Abs(got-want) > 1e-6 {
				t.Errorf("Variance = %v, want %v", got, want)
			}
			if w.N() != int64(len(tc.xs)) {
				t.Errorf("N = %d, want %d", w.N(), len(tc.xs))
			}
		})
	}
}

func TestRunningMinMax(t *testing.T) {
	t.Parallel()
	var w Running
	for _, x := range []float64{3, -1, 7, 2} {
		w.Add(x)
	}
	if w.Min() != -1 {
		t.Errorf("Min = %v, want -1", w.Min())
	}
	if w.Max() != 7 {
		t.Errorf("Max = %v, want 7", w.Max())
	}
}

func TestRunningMergeEquivalentToSequential(t *testing.T) {
	t.Parallel()
	// Bound magnitudes so the sequential/merged comparison is not dominated
	// by float64 overflow on quick's extreme generated values.
	clamp := func(xs []float64) []float64 {
		out := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			out = append(out, math.Mod(x, 1e6))
		}
		return out
	}
	f := func(a, b []float64) bool {
		a, b = clamp(a), clamp(b)
		var left, right, merged, all Running
		for _, x := range a {
			left.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			right.Add(x)
			all.Add(x)
		}
		merged.Merge(&left)
		merged.Merge(&right)
		if merged.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		closeEnough := func(x, y float64) bool {
			return math.Abs(x-y) <= 1e-9*(1+math.Abs(x)+math.Abs(y))
		}
		return closeEnough(merged.Mean(), all.Mean()) &&
			closeEnough(merged.Variance(), all.Variance())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	t.Parallel()
	xs := []float64{9, 1, 3, 7, 5}
	cases := []struct {
		q    float64
		want float64
	}{
		{q: 0, want: 1},
		{q: 0.25, want: 3},
		{q: 0.5, want: 5},
		{q: 0.75, want: 7},
		{q: 1, want: 9},
	}
	for _, tc := range cases {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tc.q, err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	t.Parallel()
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile(nil) should fail")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("Quantile(q<0) should fail")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("Quantile(q>1) should fail")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	t.Parallel()
	xs := []float64{5, 1, 4}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 4 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestRelativeError(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name                   string
		estimate, truth, floor float64
		want                   float64
	}{
		{name: "exact", estimate: 100, truth: 100, floor: 1, want: 0},
		{name: "ten percent", estimate: 110, truth: 100, floor: 1, want: 0.1},
		{name: "zero truth uses floor", estimate: 3, truth: 0, floor: 1, want: 3},
		{name: "negative truth", estimate: -90, truth: -100, floor: 1, want: 0.1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got := RelativeError(tc.estimate, tc.truth, tc.floor)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("RelativeError = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSummarizeErrors(t *testing.T) {
	t.Parallel()
	s, err := SummarizeErrors([]float64{110, 95}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.MaxRel-0.10) > 1e-12 {
		t.Errorf("MaxRel = %v, want 0.10", s.MaxRel)
	}
	if math.Abs(s.MeanRel-0.075) > 1e-12 {
		t.Errorf("MeanRel = %v, want 0.075", s.MeanRel)
	}
	if s.MaxAbs != 10 || s.N != 2 {
		t.Errorf("MaxAbs=%v N=%v, want 10, 2", s.MaxAbs, s.N)
	}
}

func TestSummarizeErrorsRejectsBadInput(t *testing.T) {
	t.Parallel()
	if _, err := SummarizeErrors([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := SummarizeErrors(nil, nil); err == nil {
		t.Error("empty batch should fail")
	}
}

func TestChebyshevBounds(t *testing.T) {
	t.Parallel()
	if got := ChebyshevTail(4, 4); got != 0.25 {
		t.Errorf("ChebyshevTail(4,4) = %v, want 0.25", got)
	}
	if got := ChebyshevTail(100, 1); got != 1 {
		t.Errorf("tail should clamp to 1, got %v", got)
	}
	if got := ChebyshevTail(1, 0); got != 1 {
		t.Errorf("t=0 should be vacuous, got %v", got)
	}
	if got := ChebyshevConfidence(4, 4); got != 0.75 {
		t.Errorf("ChebyshevConfidence(4,4) = %v, want 0.75", got)
	}
}

func TestLaplaceSamplerMoments(t *testing.T) {
	t.Parallel()
	rng := NewRNG(7)
	const scale = 2.5
	var w Running
	for i := 0; i < 200000; i++ {
		w.Add(rng.Laplace(scale))
	}
	// Lap(b) has mean 0 and variance 2b².
	if math.Abs(w.Mean()) > 0.05 {
		t.Errorf("Laplace mean = %v, want ~0", w.Mean())
	}
	wantVar := 2 * scale * scale
	if math.Abs(w.Variance()-wantVar)/wantVar > 0.05 {
		t.Errorf("Laplace variance = %v, want ~%v", w.Variance(), wantVar)
	}
}

func TestLaplaceEmpiricalCDF(t *testing.T) {
	t.Parallel()
	rng := NewRNG(99)
	const scale = 1.0
	const n = 100000
	// Pr[|Lap(b)| <= t] = 1 - exp(-t/b).
	thresholds := []float64{0.5, 1, 2, 4}
	counts := make([]int, len(thresholds))
	for i := 0; i < n; i++ {
		x := math.Abs(rng.Laplace(scale))
		for j, t := range thresholds {
			if x <= t {
				counts[j]++
			}
		}
	}
	for j, th := range thresholds {
		got := float64(counts[j]) / n
		want := 1 - math.Exp(-th/scale)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Pr[|Lap| <= %v] = %v, want %v", th, got, want)
		}
	}
}

func TestBernoulli(t *testing.T) {
	t.Parallel()
	rng := NewRNG(3)
	if rng.Bernoulli(0) {
		t.Error("Bernoulli(0) must be false")
	}
	if !rng.Bernoulli(1) {
		t.Error("Bernoulli(1) must be true")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if rng.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	t.Parallel()
	a := NewRNG(11)
	b := NewRNG(11)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed should produce identical streams")
		}
	}
}

func TestRNGChildIndependence(t *testing.T) {
	t.Parallel()
	parent1 := NewRNG(1)
	parent2 := NewRNG(2)
	c1 := parent1.Child(5)
	c2 := parent2.Child(5)
	same := true
	for i := 0; i < 32; i++ {
		if c1.Float64() != c2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Error("children of different parents should differ even with the same id")
	}
}

func TestMaxAbs(t *testing.T) {
	t.Parallel()
	if got := MaxAbs([]float64{-5, 3, 4}); got != 5 {
		t.Errorf("MaxAbs = %v, want 5", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Errorf("MaxAbs(nil) = %v, want 0", got)
	}
}

func TestKSStatisticValidation(t *testing.T) {
	t.Parallel()
	if _, err := KSStatistic(nil, func(float64) float64 { return 0 }); err == nil {
		t.Error("empty sample should fail")
	}
	if _, _, _, err := KSTest([]float64{1}, func(float64) float64 { return 0.5 }, 0); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, _, _, err := KSTest([]float64{1}, func(float64) float64 { return 0.5 }, 1); err == nil {
		t.Error("alpha=1 should fail")
	}
}

func TestKSAcceptsCorrectDistribution(t *testing.T) {
	t.Parallel()
	rng := NewRNG(101)
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = rng.Float64() // uniform [0,1)
	}
	_, _, pass, err := KSTest(samples, func(x float64) float64 {
		switch {
		case x < 0:
			return 0
		case x > 1:
			return 1
		default:
			return x
		}
	}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Error("uniform samples should pass against the uniform CDF")
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	t.Parallel()
	rng := NewRNG(103)
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = rng.Float64() * 0.8 // squeezed: clearly not uniform [0,1)
	}
	_, _, pass, err := KSTest(samples, func(x float64) float64 {
		switch {
		case x < 0:
			return 0
		case x > 1:
			return 1
		default:
			return x
		}
	}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if pass {
		t.Error("squeezed samples should be rejected against the uniform CDF")
	}
}

func TestLaplaceSamplerPassesKS(t *testing.T) {
	t.Parallel()
	rng := NewRNG(105)
	const scale = 3.0
	samples := make([]float64, 50000)
	for i := range samples {
		samples[i] = rng.Laplace(scale)
	}
	cdf := func(x float64) float64 {
		if x < 0 {
			return 0.5 * math.Exp(x/scale)
		}
		return 1 - 0.5*math.Exp(-x/scale)
	}
	stat, critical, pass, err := KSTest(samples, cdf, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Errorf("Laplace sampler fails KS: D=%v critical=%v", stat, critical)
	}
}

func TestRunningString(t *testing.T) {
	t.Parallel()
	var w Running
	w.Add(1)
	w.Add(3)
	s := w.String()
	if !strings.Contains(s, "n=2") || !strings.Contains(s, "mean=2") {
		t.Errorf("String = %q", s)
	}
}

func TestExponentialMean(t *testing.T) {
	t.Parallel()
	rng := NewRNG(201)
	var w Running
	for i := 0; i < 100000; i++ {
		w.Add(rng.Exponential(4))
	}
	if math.Abs(w.Mean()-4)/4 > 0.02 {
		t.Errorf("exponential mean = %v, want ~4", w.Mean())
	}
}

func TestPermAndShuffle(t *testing.T) {
	t.Parallel()
	rng := NewRNG(203)
	perm := rng.Perm(10)
	seen := make([]bool, 10)
	for _, v := range perm {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", perm)
		}
		seen[v] = true
	}
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	sum := 0
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}
