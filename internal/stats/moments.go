package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates streaming first and second moments using Welford's
// algorithm, which stays numerically stable for long streams. The zero
// value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Running) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Running) N() int64 { return w.n }

// Mean returns the sample mean, or 0 when empty.
func (w *Running) Mean() float64 { return w.mean }

// Min returns the smallest observation, or 0 when empty.
func (w *Running) Min() float64 { return w.min }

// Max returns the largest observation, or 0 when empty.
func (w *Running) Max() float64 { return w.max }

// Variance returns the unbiased sample variance, or 0 for fewer than two
// observations.
func (w *Running) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// PopVariance returns the population (biased) variance, or 0 when empty.
func (w *Running) PopVariance() float64 {
	if w.n < 1 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Running) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Running) StdErr() float64 {
	if w.n < 1 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// Merge combines another accumulator into this one (parallel Welford).
func (w *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// String summarizes the accumulator for logs and experiment output.
func (w *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		w.n, w.Mean(), w.StdDev(), w.min, w.max)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or 0 for fewer than
// two values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It returns an error for an empty
// input or q outside [0, 1]. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// MaxAbs returns the largest absolute value in xs, or 0 for an empty slice.
func MaxAbs(xs []float64) float64 {
	best := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > best {
			best = a
		}
	}
	return best
}
