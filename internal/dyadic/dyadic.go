// Package dyadic implements the classical hierarchical-decomposition
// baseline for differentially-private range counting (the approach of
// the paper's reference [20] and the standard dyadic-interval technique
// of Dwork et al.): the value domain is split into a complete binary
// tree of intervals, every node's exact count is perturbed once, and any
// range query is answered by summing the O(log₂ B) noisy canonical
// nodes that tile it.
//
// The trade against the paper's sampling framework is structural:
//
//   - dyadic releases the whole tree for a single privacy budget ε and
//     then answers *unlimited* queries for free, but it needs the entire
//     raw dataset centralized at the broker (maximal communication) and
//     its per-query error grows with the domain resolution
//     (Θ(log³B)/ε² variance for a worst-case range);
//   - the paper's pipeline ships only ~√k/α samples and adapts noise to
//     each customer's (α, δ), but pays privacy budget per query sold.
//
// The ablation-baseline experiment quantifies the crossover.
package dyadic

import (
	"fmt"
	"math"

	"privrange/internal/dp"
	"privrange/internal/stats"
)

// Tree is a noisy dyadic-interval tree over [Lo, Hi).
type Tree struct {
	lo, hi float64
	levels int       // tree depth; 1<<levels leaves
	nodes  []float64 // noisy counts, heap layout: nodes[1] is the root
	eps    float64   // total privacy budget the release consumed
}

// MaxLevels bounds the tree depth (2^20 leaves ≈ 1M — far beyond any
// sensor-domain resolution).
const MaxLevels = 20

// Build constructs the tree from raw values with total budget epsilon.
// Records outside [lo, hi) are clipped to the nearest leaf, keeping
// per-record sensitivity at exactly one leaf per level. Each of the
// levels+1 tree layers partitions the data (parallel composition within
// a layer), so the per-layer budget is epsilon/(levels+1) under
// sequential composition across layers.
func Build(values []float64, lo, hi float64, levels int, epsilon float64, rng *stats.RNG) (*Tree, error) {
	if !(lo < hi) {
		return nil, fmt.Errorf("dyadic: empty domain [%v, %v)", lo, hi)
	}
	if levels < 1 || levels > MaxLevels {
		return nil, fmt.Errorf("dyadic: levels %d outside [1, %d]", levels, MaxLevels)
	}
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return nil, fmt.Errorf("dyadic: epsilon %v must be positive and finite", epsilon)
	}
	if rng == nil {
		return nil, fmt.Errorf("dyadic: nil rng")
	}
	t := &Tree{
		lo:     lo,
		hi:     hi,
		levels: levels,
		nodes:  make([]float64, 2<<levels), // heap for a complete tree
		eps:    epsilon,
	}
	// Exact leaf counts.
	leaves := 1 << levels
	firstLeaf := leaves // heap index of leaf 0
	width := (hi - lo) / float64(leaves)
	for _, v := range values {
		idx := int((v - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= leaves {
			idx = leaves - 1
		}
		t.nodes[firstLeaf+idx]++
	}
	// Exact internal counts, bottom-up.
	for i := firstLeaf - 1; i >= 1; i-- {
		t.nodes[i] = t.nodes[2*i] + t.nodes[2*i+1]
	}
	// Perturb every node: per-layer budget ε/(levels+1), sensitivity 1.
	mech, err := dp.NewMechanism(epsilon/float64(levels+1), 1)
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(t.nodes); i++ {
		t.nodes[i] = mech.Perturb(t.nodes[i], rng)
	}
	return t, nil
}

// Epsilon returns the total privacy budget the release consumed.
func (t *Tree) Epsilon() float64 { return t.eps }

// Leaves returns the domain resolution 2^levels.
func (t *Tree) Leaves() int { return 1 << t.levels }

// LeafWidth returns the value width of one leaf interval.
func (t *Tree) LeafWidth() float64 {
	return (t.hi - t.lo) / float64(t.Leaves())
}

// Count answers the range query [l, u] from the noisy tree. The query is
// snapped to leaf boundaries (l down, u up) so the answer covers at
// least the requested range; the snap error is bounded by the counts in
// two leaf-width fringes. It returns an error for an inverted range.
func (t *Tree) Count(l, u float64) (float64, error) {
	if l > u {
		return 0, fmt.Errorf("dyadic: range [%v, %v] has l > u", l, u)
	}
	leaves := t.Leaves()
	width := t.LeafWidth()
	loLeaf := int(math.Floor((l - t.lo) / width))
	hiLeaf := int(math.Floor((u - t.lo) / width))
	if hiLeaf < 0 || loLeaf >= leaves {
		return 0, nil // entirely outside the domain
	}
	if loLeaf < 0 {
		loLeaf = 0
	}
	if hiLeaf >= leaves {
		hiLeaf = leaves - 1
	}
	return t.sumRange(1, 0, leaves-1, loLeaf, hiLeaf), nil
}

// sumRange sums the canonical decomposition of leaf interval [qLo, qHi]
// over the subtree rooted at node (covering leaves [nLo, nHi]).
func (t *Tree) sumRange(node, nLo, nHi, qLo, qHi int) float64 {
	if qHi < nLo || qLo > nHi {
		return 0
	}
	if qLo <= nLo && nHi <= qHi {
		return t.nodes[node]
	}
	mid := (nLo + nHi) / 2
	return t.sumRange(2*node, nLo, mid, qLo, qHi) +
		t.sumRange(2*node+1, mid+1, nHi, qLo, qHi)
}

// QueryVarianceBound returns an upper bound on the noise variance of one
// Count: the canonical decomposition touches at most 2 nodes per level,
// each carrying Lap((levels+1)/ε) noise.
func (t *Tree) QueryVarianceBound() float64 {
	scale := float64(t.levels+1) / t.eps
	perNode := 2 * scale * scale // Var[Lap(b)] = 2b²
	return float64(2*(t.levels+1)) * perNode
}
