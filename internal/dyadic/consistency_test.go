package dyadic

import (
	"math"
	"testing"

	"privrange/internal/dataset"
	"privrange/internal/stats"
)

func TestConsistentIsExactlyConsistent(t *testing.T) {
	t.Parallel()
	values := make([]float64, 2000)
	rng := stats.NewRNG(1)
	for i := range values {
		values[i] = float64(rng.Intn(128))
	}
	tree, err := Build(values, 0, 128, 7, 0.5, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if tree.IsConsistent(1e-9) {
		t.Fatal("raw noisy tree should not be consistent (sanity)")
	}
	cons := tree.Consistent()
	if !cons.IsConsistent(1e-6) {
		t.Error("post-processed tree must be exactly consistent")
	}
	// The original must be untouched.
	if tree.IsConsistent(1e-9) {
		t.Error("Consistent must not mutate the receiver")
	}
	if cons.Epsilon() != tree.Epsilon() || cons.Leaves() != tree.Leaves() {
		t.Error("metadata must carry over")
	}
}

func TestConsistentPreservesExactTree(t *testing.T) {
	t.Parallel()
	// With negligible noise the tree is already (nearly) consistent;
	// post-processing must not distort it.
	values := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	tree, err := Build(values, 0, 8, 3, 1e9, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	cons := tree.Consistent()
	for _, q := range [][2]float64{{0, 7.999}, {2, 5.999}, {4, 4.5}} {
		a, err := tree.Count(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		b, err := cons.Count(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 0.01 {
			t.Errorf("query %v: raw %v vs consistent %v", q, a, b)
		}
	}
}

func TestConsistencyReducesQueryError(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.ParticulateMatter, dataset.GenerateConfig{Seed: 5, Records: 8000})
	if err != nil {
		t.Fatal(err)
	}
	const (
		eps    = 0.5
		levels = 8
		trials = 300
	)
	queries := [][2]float64{{30, 89.999}, {0, 149.999}, {60, 179.999}, {15, 44.999}}
	truths := make([]float64, len(queries))
	for i, q := range queries {
		c, err := series.RangeCount(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		truths[i] = float64(c)
	}
	root := stats.NewRNG(7)
	var raw, cons stats.Running
	for trial := 0; trial < trials; trial++ {
		tree, err := Build(series.Values, 0, 256, levels, eps, root.Child(int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		post := tree.Consistent()
		for i, q := range queries {
			a, err := tree.Count(q[0], q[1])
			if err != nil {
				t.Fatal(err)
			}
			b, err := post.Count(q[0], q[1])
			if err != nil {
				t.Fatal(err)
			}
			raw.Add(math.Abs(a - truths[i]))
			cons.Add(math.Abs(b - truths[i]))
		}
	}
	if cons.Mean() >= raw.Mean() {
		t.Errorf("constrained inference should reduce error: raw MAE %v, consistent MAE %v",
			raw.Mean(), cons.Mean())
	}
	// Unbiasedness is preserved (projection is linear).
	if improvement := 1 - cons.Mean()/raw.Mean(); improvement < 0.05 {
		t.Errorf("improvement %.1f%% implausibly small", improvement*100)
	}
}
