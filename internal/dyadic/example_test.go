package dyadic_test

import (
	"fmt"
	"log"

	"privrange/internal/dyadic"
	"privrange/internal/stats"
)

// Example builds a one-ε dyadic synopsis and answers several queries
// from the single release — the hierarchical-decomposition baseline the
// sampling pipeline is compared against.
func Example() {
	values := make([]float64, 0, 4096)
	rng := stats.NewRNG(1)
	for i := 0; i < 4096; i++ {
		values = append(values, float64(rng.Intn(256)))
	}
	tree, err := dyadic.Build(values, 0, 256, 8, 1.0, stats.NewRNG(2))
	if err != nil {
		log.Fatal(err)
	}
	cons := tree.Consistent()

	exact := func(l, u float64) float64 {
		c := 0.0
		for _, v := range values {
			if v >= l && v <= u {
				c++
			}
		}
		return c
	}
	// Unlimited queries, one budget; answers deterministic.
	got, err := cons.Count(64, 127.999)
	if err != nil {
		log.Fatal(err)
	}
	truth := exact(64, 127.999)
	fmt.Println("within noise bound:",
		(got-truth)*(got-truth) < 9*cons.QueryVarianceBound())
	fmt.Println("post-processing is consistent:", cons.IsConsistent(1e-6))
	fmt.Println("budget:", cons.Epsilon())
	// Output:
	// within noise bound: true
	// post-processing is consistent: true
	// budget: 1
}
