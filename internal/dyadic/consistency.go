package dyadic

// Constrained inference (in the spirit of Hay et al., VLDB 2010): the
// raw tree's noisy counts are mutually inconsistent — a parent rarely
// equals the sum of its children — yet the truth always is. Projecting
// the noisy tree onto the consistent subspace is free post-processing
// under differential privacy and strictly reduces query error.
//
// Two passes, derived from inverse-variance (BLUE) weighting of
// independent noise:
//
//  1. Bottom-up: each node's total is re-estimated by combining its own
//     noisy count (variance σ²) with the sum of its children's combined
//     estimates, weighted by inverse variance.
//  2. Top-down: the root keeps its combined estimate; each parent's
//     final value is split between its children proportionally to their
//     combined-estimate variances, so parent = left + right holds
//     exactly at every node.

// Consistent returns a post-processed copy of the tree whose counts are
// exactly hierarchically consistent and have (weakly) lower query error
// at every node. The receiver is unchanged.
func (t *Tree) Consistent() *Tree {
	out := &Tree{
		lo:     t.lo,
		hi:     t.hi,
		levels: t.levels,
		nodes:  make([]float64, len(t.nodes)),
		eps:    t.eps,
	}
	size := len(t.nodes)
	firstLeaf := 1 << t.levels

	// Pass 1 (bottom-up): combined estimates m and their variances v.
	// All nodes carry i.i.d. noise, so the common σ² factors out; use
	// σ² = 1 in relative units.
	m := make([]float64, size)
	v := make([]float64, size)
	for i := size - 1; i >= 1; i-- {
		if i >= firstLeaf {
			m[i] = t.nodes[i]
			v[i] = 1
			continue
		}
		sum := m[2*i] + m[2*i+1]
		sumVar := v[2*i] + v[2*i+1]
		// Inverse-variance combination of the node's own reading with
		// the child-sum estimate.
		w := (1 / sumVar) / (1/sumVar + 1)
		m[i] = w*sum + (1-w)*t.nodes[i]
		v[i] = 1 / (1/sumVar + 1)
	}

	// Pass 2 (top-down): enforce parent = left + right, distributing each
	// parent's discrepancy to the children by their variances.
	out.nodes[1] = m[1]
	for i := 1; i < firstLeaf; i++ {
		l, r := 2*i, 2*i+1
		gap := out.nodes[i] - (m[l] + m[r])
		share := v[l] / (v[l] + v[r])
		out.nodes[l] = m[l] + gap*share
		out.nodes[r] = m[r] + gap*(1-share)
	}
	return out
}

// IsConsistent reports whether every parent equals the sum of its
// children within tol.
func (t *Tree) IsConsistent(tol float64) bool {
	firstLeaf := 1 << t.levels
	for i := 1; i < firstLeaf; i++ {
		diff := t.nodes[i] - (t.nodes[2*i] + t.nodes[2*i+1])
		if diff < -tol || diff > tol {
			return false
		}
	}
	return true
}
