package dyadic

import (
	"math"
	"testing"
	"testing/quick"

	"privrange/internal/dataset"
	"privrange/internal/stats"
)

func TestBuildValidation(t *testing.T) {
	t.Parallel()
	rng := stats.NewRNG(1)
	values := []float64{1, 2, 3}
	cases := []struct {
		name   string
		lo, hi float64
		levels int
		eps    float64
		rngOK  bool
	}{
		{name: "empty domain", lo: 5, hi: 5, levels: 3, eps: 1, rngOK: true},
		{name: "inverted domain", lo: 5, hi: 1, levels: 3, eps: 1, rngOK: true},
		{name: "zero levels", lo: 0, hi: 10, levels: 0, eps: 1, rngOK: true},
		{name: "too many levels", lo: 0, hi: 10, levels: MaxLevels + 1, eps: 1, rngOK: true},
		{name: "zero epsilon", lo: 0, hi: 10, levels: 3, eps: 0, rngOK: true},
		{name: "nan epsilon", lo: 0, hi: 10, levels: 3, eps: math.NaN(), rngOK: true},
		{name: "nil rng", lo: 0, hi: 10, levels: 3, eps: 1, rngOK: false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			r := rng
			if !tc.rngOK {
				r = nil
			}
			if _, err := Build(values, tc.lo, tc.hi, tc.levels, tc.eps, r); err == nil {
				t.Error("want error")
			}
		})
	}
}

// exactTree builds with an enormous epsilon so noise is negligible,
// letting structural tests compare against exact counts.
func exactTree(t *testing.T, values []float64, lo, hi float64, levels int) *Tree {
	t.Helper()
	tree, err := Build(values, lo, hi, levels, 1e9, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestCountMatchesExactOnLeafAlignedRanges(t *testing.T) {
	t.Parallel()
	// Domain [0, 8) with 8 leaves of width 1; integer values land on
	// leaf boundaries exactly.
	values := []float64{0, 1, 1, 2, 3, 4, 5, 6, 7, 7, 7}
	tree := exactTree(t, values, 0, 8, 3)
	cases := []struct {
		l, u float64
		want float64
	}{
		{l: 0, u: 7.999, want: 11},
		{l: 1, u: 1.999, want: 2},
		{l: 7, u: 7.999, want: 3},
		{l: 2, u: 5.999, want: 4},
		{l: 0, u: 0.5, want: 1},
	}
	for _, tc := range cases {
		got, err := tree.Count(tc.l, tc.u)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 0.01 {
			t.Errorf("Count(%v, %v) = %v, want %v", tc.l, tc.u, got, tc.want)
		}
	}
	if _, err := tree.Count(5, 1); err == nil {
		t.Error("inverted range should fail")
	}
}

func TestCountOutsideDomain(t *testing.T) {
	t.Parallel()
	tree := exactTree(t, []float64{1, 2, 3}, 0, 8, 3)
	if got, err := tree.Count(100, 200); err != nil || got != 0 {
		t.Errorf("out-of-domain query = %v, %v; want 0", got, err)
	}
	if got, err := tree.Count(-50, -10); err != nil || got != 0 {
		t.Errorf("below-domain query = %v, %v; want 0", got, err)
	}
}

func TestClippingKeepsTotal(t *testing.T) {
	t.Parallel()
	// Values outside the domain clip to the edge leaves.
	values := []float64{-10, 3, 99}
	tree := exactTree(t, values, 0, 8, 3)
	got, err := tree.Count(0, 7.999)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3) > 0.01 {
		t.Errorf("total = %v, want 3 (clipped records retained)", got)
	}
}

func TestCountAgainstOracleProperty(t *testing.T) {
	t.Parallel()
	values := make([]float64, 3000)
	rng := stats.NewRNG(7)
	for i := range values {
		values[i] = float64(rng.Intn(256))
	}
	tree, err := Build(values, 0, 256, 8, 1e9, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	width := tree.LeafWidth()
	f := func(loLeafRaw, spanRaw uint16) bool {
		loLeaf := int(loLeafRaw) % 256
		hiLeaf := loLeaf + int(spanRaw)%(256-loLeaf)
		l := float64(loLeaf) * width
		u := float64(hiLeaf+1)*width - 1e-9
		exact := 0.0
		for _, v := range values {
			if v >= l && v <= u {
				exact++
			}
		}
		got, err := tree.Count(l, u)
		if err != nil {
			return false
		}
		return math.Abs(got-exact) < 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNoiseRespectsVarianceBound(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 9, Records: 8000})
	if err != nil {
		t.Fatal(err)
	}
	const (
		eps    = 1.0
		levels = 8
		trials = 400
	)
	exact := func(l, u float64) float64 {
		c, err := series.RangeCount(l, u)
		if err != nil {
			t.Fatal(err)
		}
		return float64(c)
	}
	root := stats.NewRNG(11)
	var errs stats.Running
	var bound float64
	for trial := 0; trial < trials; trial++ {
		tree, err := Build(series.Values, 0, 256, levels, eps, root.Child(int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		bound = tree.QueryVarianceBound()
		// Leaf-aligned query so snap error vanishes and only noise
		// remains.
		got, err := tree.Count(64, 127.999)
		if err != nil {
			t.Fatal(err)
		}
		errs.Add(got - exact(64, 127.999))
	}
	if se := errs.StdErr(); math.Abs(errs.Mean()) > 4*se {
		t.Errorf("dyadic count biased: mean error %v (4 SE %v)", errs.Mean(), 4*se)
	}
	if errs.Variance() > bound {
		t.Errorf("empirical variance %v above bound %v", errs.Variance(), bound)
	}
}

func TestUnlimitedQueriesSingleBudget(t *testing.T) {
	t.Parallel()
	// The structural advantage: one release, any number of queries, no
	// further budget. (Contrast: the sampling pipeline spends per query.)
	values := []float64{1, 2, 3, 4, 5}
	tree, err := Build(values, 0, 8, 3, 2.0, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Epsilon() != 2.0 {
		t.Errorf("Epsilon = %v", tree.Epsilon())
	}
	for i := 0; i < 100; i++ {
		if _, err := tree.Count(float64(i%8), float64(i%8)+0.5); err != nil {
			t.Fatal(err)
		}
	}
	// Same tree, same queries: deterministic answers (noise is baked in
	// at build time, not per query — that is what makes it ε-DP overall).
	a, err := tree.Count(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tree.Count(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated queries must return identical answers")
	}
}

func TestDeeperTreesCostMoreNoise(t *testing.T) {
	t.Parallel()
	shallow, err := Build(nil, 0, 256, 4, 1, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Build(nil, 0, 256, 12, 1, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if deep.QueryVarianceBound() <= shallow.QueryVarianceBound() {
		t.Errorf("deeper tree should have larger variance bound: %v vs %v",
			deep.QueryVarianceBound(), shallow.QueryVarianceBound())
	}
	if shallow.Leaves() != 16 || deep.Leaves() != 4096 {
		t.Errorf("leaves = %d, %d", shallow.Leaves(), deep.Leaves())
	}
}

// TestClosedEndpointOnBoundary is a regression test: a closed query
// [l, u] whose u lands exactly on a leaf boundary must include the
// records at u (the cover snaps outward, never inward).
func TestClosedEndpointOnBoundary(t *testing.T) {
	t.Parallel()
	// Leaf width 1 over [0, 8); hundreds of records exactly at value 4.
	values := make([]float64, 0, 300)
	for i := 0; i < 300; i++ {
		values = append(values, 4)
	}
	values = append(values, 1, 2, 3)
	tree := exactTree(t, values, 0, 8, 3)
	got, err := tree.Count(0, 4) // u = 4 is exactly a leaf boundary
	if err != nil {
		t.Fatal(err)
	}
	if got < 302 {
		t.Errorf("Count(0,4) = %v, must include the 300 records at value 4", got)
	}
}
