package market

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"privrange/internal/telemetry"
)

// Client is a TCP consumer of a market Server. In the default mode each
// Do performs one blocking request/response exchange (safe for
// concurrent use; exchanges serialize on the connection). With
// WithPipelining, concurrent Do calls issue immediately and responses
// are matched back by request id, so one connection carries many
// requests in flight — against an old server that echoes no ids the
// pipelined client falls back to first-in-first-out matching, which is
// exactly the order a one-at-a-time server answers in.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	reader  *bufio.Reader
	timeout time.Duration

	// Pipelined-mode state, all guarded by mu: the id sequence, the
	// per-request waiters, the FIFO of outstanding ids (for matching
	// id-less responses from old servers), and the sticky transport
	// error that fails every subsequent call once the connection dies.
	pipelined  bool
	seq        uint64
	pending    map[uint64]chan clientResult
	order      []uint64
	sticky     error
	readerOnce sync.Once
	readerWG   sync.WaitGroup

	// Trace origination (WithTracing): sampler decides which requests
	// carry a fresh trace context, spans receives the client's own
	// send→receive root span. Both nil by default (no tracing).
	sampler *telemetry.Sampler
	spans   *telemetry.SpanBuf
}

// clientResult is what a pipelined waiter receives: the matched
// response, or the transport error that killed the connection.
type clientResult struct {
	resp *Response
	err  error
}

// DialOption configures Dial.
type DialOption func(*Client)

// WithRequestTimeout bounds each Do exchange (send + receive) and the
// initial TCP connect. It mirrors the server's idle deadline: without
// it a stalled or dead server pins the caller forever. Zero or negative
// disables the deadline — callers own that risk. The default matches
// the server's defaultIdleTimeout.
func WithRequestTimeout(d time.Duration) DialOption {
	return func(c *Client) { c.timeout = d }
}

// WithPipelining switches the client to pipelined mode: concurrent Do
// calls write immediately and block only on their own response. The
// mode is fixed at dial time.
func WithPipelining() DialOption {
	return func(c *Client) { c.pipelined = true }
}

// WithTracing originates distributed traces from this client: every
// n-th Do (deterministic counter, no randomness) stamps a fresh
// sampled trace context onto the request's wire form, and the client's
// own send→receive span is emitted into buf as the trace root — so
// /traces on the server the buf belongs to shows only server-side
// time, while a client sharing a registry in-process (tests, privload)
// sees the full tree including network time. A server that predates
// the trace field ignores it. Requests that already carry a trace
// context are passed through untouched.
func WithTracing(sampleN int, buf *telemetry.SpanBuf) DialOption {
	return func(c *Client) {
		c.sampler = telemetry.NewSampler(sampleN)
		c.spans = buf
	}
}

// Dial connects to a market server.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	c := &Client{timeout: defaultIdleTimeout}
	for _, opt := range opts {
		opt(c)
	}
	dialTimeout := c.timeout
	if dialTimeout <= 0 {
		dialTimeout = 0 // no timeout: net.DialTimeout treats 0 as none
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("market: dial %s: %w", addr, err)
	}
	c.conn = conn
	c.reader = bufio.NewReader(conn)
	if c.pipelined {
		c.pending = make(map[uint64]chan clientResult)
	}
	return c, nil
}

// Do performs one request/response exchange. It is safe for concurrent
// use: in the default mode exchanges serialize on the single
// connection; in pipelined mode they overlap. The configured request
// timeout covers the whole exchange: a server that accepts the request
// but never answers yields a deadline error instead of a hang.
func (c *Client) Do(req Request) (*Response, error) {
	root, start := c.traceStart(&req)
	var resp *Response
	var err error
	if c.pipelined {
		resp, err = c.doPipelined(req)
	} else {
		resp, err = c.doSerial(req)
	}
	c.spans.EmitRootSince("client.request", root, start)
	return resp, err
}

// traceStart stamps a fresh sampled root context onto the request when
// this client originates traces and the sampler fires. Returns the
// root context and its start stamp (zero/0 when untraced, which makes
// the later EmitRootSince a no-op).
func (c *Client) traceStart(req *Request) (telemetry.SpanContext, int64) {
	if c.spans == nil || req.Trace != "" || !c.sampler.Sample() {
		return telemetry.SpanContext{}, 0
	}
	root := c.spans.NewRoot()
	req.Trace = root.String()
	return root, telemetry.StartStamp(root)
}

func (c *Client) doSerial(req Request) (*Response, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("market: marshal request: %w", err)
	}
	payload = append(payload, '\n')

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, fmt.Errorf("market: arm deadline: %w", err)
		}
	}
	if _, err := c.conn.Write(payload); err != nil {
		return nil, fmt.Errorf("market: send: %w", err)
	}
	line, err := c.reader.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("market: receive: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, fmt.Errorf("market: malformed response: %w", err)
	}
	return &resp, nil
}

// doPipelined issues the request with a fresh id and blocks only on its
// own response (or the per-call timeout, or connection death).
func (c *Client) doPipelined(req Request) (*Response, error) {
	c.readerOnce.Do(c.startReader)
	c.mu.Lock()
	if c.sticky != nil {
		err := c.sticky
		c.mu.Unlock()
		return nil, err
	}
	c.seq++
	id := c.seq
	req.ID = id
	payload, err := json.Marshal(req)
	if err != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("market: marshal request: %w", err)
	}
	payload = append(payload, '\n')
	ch := make(chan clientResult, 1)
	c.pending[id] = ch
	c.order = append(c.order, id)
	if c.timeout > 0 {
		if derr := c.conn.SetWriteDeadline(time.Now().Add(c.timeout)); derr != nil {
			delete(c.pending, id)
			c.mu.Unlock()
			return nil, fmt.Errorf("market: arm deadline: %w", derr)
		}
	}
	_, werr := c.conn.Write(payload)
	c.mu.Unlock()
	if werr != nil {
		// A failed write poisons the stream for every in-flight call,
		// not just this one: a partial frame desyncs the protocol.
		c.fail(fmt.Errorf("market: send: %w", werr))
		return nil, fmt.Errorf("market: send: %w", werr)
	}
	var timeoutC <-chan time.Time
	if c.timeout > 0 {
		timer := time.NewTimer(c.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-timeoutC:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("market: receive: request %d timed out after %v", id, c.timeout)
	}
}

// startReader launches the single response-demultiplexing goroutine.
// It exits when the connection dies (including via Close), failing all
// outstanding calls; Close joins it.
func (c *Client) startReader() {
	c.readerWG.Add(1)
	go func() {
		defer c.readerWG.Done()
		for {
			line, err := c.reader.ReadBytes('\n')
			if err != nil {
				c.fail(fmt.Errorf("market: receive: %w", err))
				return
			}
			var resp Response
			if err := json.Unmarshal(line, &resp); err != nil {
				// Framing is shot: no way to attribute this or any later
				// bytes. Fail everything rather than hang the waiters.
				c.fail(fmt.Errorf("market: malformed response: %w", err))
				return
			}
			c.dispatch(&resp)
		}
	}()
}

// dispatch routes one response to its waiter: by id when the server
// echoes one, else first-in-first-out (an old server answering in
// arrival order). Unknown and duplicate ids are dropped — the waiter
// they fail to reach times out rather than the whole client dying on a
// buggy peer.
func (c *Client) dispatch(resp *Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := resp.ID
	if id == 0 {
		for len(c.order) > 0 {
			head := c.order[0]
			c.order = c.order[1:]
			if ch, ok := c.pending[head]; ok {
				delete(c.pending, head)
				ch <- clientResult{resp: resp}
				return
			}
			// Stale entry (timed out, or already matched by id): keep
			// popping until a live waiter or an empty queue.
		}
		return
	}
	ch, ok := c.pending[id]
	if !ok {
		return
	}
	delete(c.pending, id)
	ch <- clientResult{resp: resp}
}

// fail records the first transport error and delivers it to every
// outstanding call; later Do calls fail fast with the same error.
func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sticky != nil {
		return
	}
	c.sticky = err
	for id, ch := range c.pending {
		ch <- clientResult{err: err}
		delete(c.pending, id)
	}
	c.order = c.order[:0]
}

// Close tears the connection down. In pipelined mode it also joins the
// reader goroutine, which fails any calls still in flight.
func (c *Client) Close() error {
	c.mu.Lock()
	err := c.conn.Close()
	c.mu.Unlock()
	c.readerWG.Wait()
	return err
}

// ErrRemote wraps a broker-side failure reported over the protocol.
var ErrRemote = errors.New("market: remote error")

// ErrOverloaded wraps an admission-control rejection: the server shed
// the request without processing it, and an identical retry after
// backoff may succeed. Test with errors.Is.
var ErrOverloaded = errors.New("market: server overloaded")

// expectOK converts a Response with Error set into a Go error.
func expectOK(resp *Response) error {
	if resp.Retryable {
		return fmt.Errorf("%w: %s", ErrOverloaded, resp.Error)
	}
	if resp.Error != "" {
		return fmt.Errorf("%w: %s", ErrRemote, resp.Error)
	}
	if !resp.OK {
		return fmt.Errorf("%w: response not ok", ErrRemote)
	}
	return nil
}

// Catalog fetches the dataset list.
func (c *Client) Catalog() ([]DatasetInfo, error) {
	resp, err := c.Do(Request{Op: "catalog"})
	if err != nil {
		return nil, err
	}
	if err := expectOK(resp); err != nil {
		return nil, err
	}
	return resp.Datasets, nil
}

// Quote prices an accuracy level remotely.
func (c *Client) Quote(dataset string, alpha, delta float64) (price, variance float64, err error) {
	resp, err := c.Do(Request{Op: "quote", Dataset: dataset, Alpha: alpha, Delta: delta})
	if err != nil {
		return 0, 0, err
	}
	if err := expectOK(resp); err != nil {
		return 0, 0, err
	}
	return resp.Price, resp.Variance, nil
}

// Buy purchases one answer remotely.
func (c *Client) Buy(req Request) (*Response, error) {
	req.Op = "buy"
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	if err := expectOK(resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Deposit credits the customer's prepaid account on the broker and
// returns the new balance. Fails when the broker runs in invoice mode.
func (c *Client) Deposit(customer string, amount float64) (float64, error) {
	resp, err := c.Do(Request{Op: "deposit", Customer: customer, Amount: amount})
	if err != nil {
		return 0, err
	}
	if err := expectOK(resp); err != nil {
		return 0, err
	}
	return resp.Balance, nil
}

// Balance fetches the customer's prepaid balance.
func (c *Client) Balance(customer string) (float64, error) {
	resp, err := c.Do(Request{Op: "balance", Customer: customer})
	if err != nil {
		return 0, err
	}
	if err := expectOK(resp); err != nil {
		return 0, err
	}
	return resp.Balance, nil
}

// Audit fetches the broker's averaging-pattern report.
func (c *Client) Audit() ([]AveragingSuspicion, error) {
	resp, err := c.Do(Request{Op: "audit"})
	if err != nil {
		return nil, err
	}
	if err := expectOK(resp); err != nil {
		return nil, err
	}
	return resp.Suspicions, nil
}
