package market

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"privrange/internal/dataset"
	"privrange/internal/pricing"
)

// crashTariff keeps workload prices in single digits so the scripted
// deposits fund the scripted sales.
func crashTariff() pricing.Function { return pricing.InverseVariance{C: 100} }

// The crash-point matrix is the durability subsystem's proof: a scripted
// trading workload is killed at EVERY instant the WAL can die — before a
// record is buffered, before/during/after the flush write, after the
// fsync but before the ack, and between compaction's snapshot and log
// truncate — including torn writes that leave a fraction of the buffer
// on disk. After each simulated kill, a fresh broker recovers from the
// directory and its books must match the oracle: the state implied by
// the operations the dead broker ACKNOWLEDGED, plus at most the one
// in-flight operation that was durable but unacknowledged. Money, ε and
// receipt ids all come out exactly once.

// crashOp is one scripted workload step.
type crashOp struct {
	kind     string // "deposit", "buy", "rejected-buy", "withheld-buy", "cap"
	customer string
	amount   float64 // deposit only
	dataset  string  // buy only
	factor   float64 // cap only: cap = factor × last observed ε′ on ozone
}

// crashWorkload exercises every journaled path: grants, sales on two
// datasets, a sale that is rejected after its debit (the refund path)
// because the "capped" dataset's privacy budget is exhausted from
// birth, and a sale answered but withheld by the per-customer cap (the
// spend-withheld path: the dataset accountant is charged even though
// no receipt ever commits). The cap op arms the per-customer cap at
// 2.5× one sale's ε′, so alice's third ozone purchase is withheld.
var crashWorkload = []crashOp{
	{kind: "deposit", customer: "alice", amount: 50},
	{kind: "deposit", customer: "bob", amount: 30},
	{kind: "buy", customer: "alice", dataset: "ozone"},
	{kind: "buy", customer: "bob", dataset: "ozone"},
	{kind: "rejected-buy", customer: "bob", dataset: "capped"},
	{kind: "deposit", customer: "alice", amount: 20},
	{kind: "buy", customer: "alice", dataset: "ozone"},
	{kind: "cap", factor: 2.5},
	{kind: "withheld-buy", customer: "alice", dataset: "ozone"},
}

// crashCompactBytes keeps the threshold small enough that the workload
// crosses it and compaction's crash point enters the matrix.
const crashCompactBytes = 600

func crashBuyReq(op crashOp) Request {
	return Request{
		Op: "buy", Dataset: op.dataset, Customer: op.customer,
		L: 0, U: 200, Alpha: 0.2, Delta: 0.5,
	}
}

// crashBroker builds the workload's broker over dir: prepaid, durable,
// two accountant-backed datasets — "ozone" is open, "capped" has a
// budget no sale can fit in, so buys on it always reject after the
// debit and exercise the journaled refund.
func crashBroker(t *testing.T, dir string) *Broker {
	t.Helper()
	b, err := NewBroker(crashTariff())
	if err != nil {
		t.Fatal(err)
	}
	b.AttachWallets(&Wallets{})
	if err := b.EnableDurability(dir, WithCompactionThreshold(crashCompactBytes)); err != nil {
		t.Fatal(err)
	}
	eng, n := durEngine(t, dataset.Ozone, 7, 0)
	if err := b.Register("ozone", eng, n, 4); err != nil {
		t.Fatal(err)
	}
	ceng, cn := durEngine(t, dataset.ParticulateMatter, 9, 1e-9)
	if err := b.Register("capped", ceng, cn, 4); err != nil {
		t.Fatal(err)
	}
	return b
}

// books is the oracle's model of the durable state.
type books struct {
	balances map[string]float64
	receipts []Receipt
	spent    map[string]float64
	queries  map[string]int
	// lastEps remembers the last released ε′ per dataset: the workload's
	// queries are identical and deterministic, so a withheld sale charges
	// exactly this much.
	lastEps map[string]float64
}

func newBooks() *books {
	return &books{
		balances: make(map[string]float64),
		spent:    make(map[string]float64),
		queries:  make(map[string]int),
		lastEps:  make(map[string]float64),
	}
}

// runCrashWorkload drives the workload until an operation dies on the
// injected crash. It returns the oracle (state implied by acknowledged
// operations) and the operation in flight at the kill (nil when the
// whole workload completed).
func runCrashWorkload(t *testing.T, b *Broker) (*books, *crashOp) {
	t.Helper()
	oracle := newBooks()
	for i := range crashWorkload {
		op := crashWorkload[i]
		switch op.kind {
		case "deposit":
			err := b.Deposit(op.customer, op.amount)
			if errors.Is(err, errWALCrashed) {
				return oracle, &op
			}
			if err != nil {
				t.Fatalf("op %d deposit: %v", i, err)
			}
			oracle.balances[op.customer] += op.amount
		case "buy":
			resp, err := b.Buy(crashBuyReq(op))
			if errors.Is(err, errWALCrashed) {
				return oracle, &op
			}
			if err != nil {
				t.Fatalf("op %d buy: %v", i, err)
			}
			oracle.balances[op.customer] -= resp.Price
			oracle.receipts = append(oracle.receipts, *resp.Receipt)
			oracle.spent[op.dataset] += resp.EpsilonPrime
			oracle.queries[op.dataset]++
			oracle.lastEps[op.dataset] = resp.EpsilonPrime
		case "cap":
			if err := b.SetCustomerPrivacyCap(op.factor * oracle.lastEps["ozone"]); err != nil {
				t.Fatalf("op %d cap: %v", i, err)
			}
		case "withheld-buy":
			_, err := b.Buy(crashBuyReq(op))
			if errors.Is(err, errWALCrashed) {
				return oracle, &op
			}
			if err == nil {
				t.Fatalf("op %d: buy past the per-customer cap released an answer", i)
			}
			// Acked as a rejection: the customer was debited and refunded,
			// but the dataset accountant WAS charged — the answer was
			// computed, so its ε is spent, and the spend-withheld record
			// makes that survive recovery.
			price, _, qerr := b.Quote(op.dataset, crashBuyReq(op).Accuracy())
			if qerr != nil {
				t.Fatalf("op %d quote: %v", i, qerr)
			}
			oracle.balances[op.customer] = oracle.balances[op.customer] - price + price
			oracle.spent[op.dataset] += oracle.lastEps[op.dataset]
			oracle.queries[op.dataset]++
		case "rejected-buy":
			_, err := b.Buy(crashBuyReq(op))
			if errors.Is(err, errWALCrashed) {
				return oracle, &op
			}
			if err == nil {
				t.Fatalf("op %d: buy on the budget-exhausted dataset succeeded", i)
			}
			// Acked as a rejection: the customer was debited and refunded.
			// Mirror the wallet's actual subtract-then-add so the oracle
			// stays bit-close to the recovered arithmetic.
			price, _, qerr := b.Quote(op.dataset, crashBuyReq(op).Accuracy())
			if qerr != nil {
				t.Fatalf("op %d quote: %v", i, qerr)
			}
			oracle.balances[op.customer] = oracle.balances[op.customer] - price + price
		}
	}
	return oracle, nil
}

// candidate is one cell of the crash matrix.
type candidate struct {
	index int           // which hook invocation dies
	point walCrashPoint // what kind of instant it is (labeling)
	keep  int           // torn-write length (crashSyncWrite only)
}

func pointName(p walCrashPoint) string {
	switch p {
	case crashAppend:
		return "append"
	case crashSyncStart:
		return "sync-start"
	case crashSyncWrite:
		return "sync-write"
	case crashSyncFsync:
		return "pre-fsync"
	case crashSyncDone:
		return "post-fsync-unacked"
	case crashCompact:
		return "compact-before-truncate"
	}
	return fmt.Sprintf("point-%d", int(p))
}

// closeEnough compares money/ε with a tolerance far below any real
// discrepancy (one missing debit ≈ 1e-1) but above float-reassociation
// noise from replayed refund pairs.
func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// TestCrashPointMatrix enumerates every crash instant the workload
// visits (plus torn-write variants) and proves exactly-once recovery
// at each one.
func TestCrashPointMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is the long way around; -short skips it")
	}
	// Counting pass: run the workload uncrashed and record every crash
	// point the hook would be offered, with the buffer size at each.
	type visit struct {
		point walCrashPoint
		n     int
	}
	var visits []visit
	{
		b := crashBroker(t, t.TempDir())
		b.durableStore().wal.hook = func(p walCrashPoint, n int) (int, bool) {
			visits = append(visits, visit{p, n})
			return 0, false
		}
		if _, pending := runCrashWorkload(t, b); pending != nil {
			t.Fatal("counting pass must not crash")
		}
		// No CloseDurability here: it would compact once more and
		// enumerate a crash point the killed runs can never reach.
	}
	if len(visits) < 30 {
		t.Fatalf("only %d crash candidates enumerated; the workload no longer covers the journal", len(visits))
	}
	var sawCompact bool
	var cands []candidate
	for i, v := range visits {
		cands = append(cands, candidate{index: i, point: v.point})
		if v.point == crashCompact {
			sawCompact = true
		}
		if v.point == crashSyncWrite && v.n > 1 {
			// Torn writes: a prefix of the buffer lands. One byte, half
			// the buffer, all but one byte.
			keeps := map[int]bool{1: true, v.n / 2: true, v.n - 1: true}
			for keep := range keeps {
				if keep > 0 && keep < v.n {
					cands = append(cands, candidate{index: i, point: v.point, keep: keep})
				}
			}
		}
	}
	if !sawCompact {
		t.Fatal("workload never compacted; lower crashCompactBytes")
	}
	t.Logf("crash matrix: %d visits, %d candidates (torn variants included)", len(visits), len(cands))

	for _, c := range cands {
		c := c
		name := fmt.Sprintf("%03d-%s", c.index, pointName(c.point))
		if c.keep > 0 {
			name = fmt.Sprintf("%s-torn-%d", name, c.keep)
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			b := crashBroker(t, dir)
			calls := 0
			b.durableStore().wal.hook = func(p walCrashPoint, n int) (int, bool) {
				calls++
				if calls-1 == c.index {
					return c.keep, true
				}
				return 0, false
			}
			oracle, pending := runCrashWorkload(t, b)
			if calls <= c.index {
				t.Fatalf("candidate %d never fired (only %d hook calls)", c.index, calls)
			}
			// pending == nil is legal here: the kill struck a post-ack
			// compaction, so every operation is in the oracle.
			// The process is now "dead": no CloseDurability, no compaction
			// — recovery starts from whatever bytes reached the directory.
			rb := crashBroker(t, dir)
			verifyRecovered(t, rb, oracle, pending)
		})
	}
}

// verifyRecovered checks the recovered broker's books against the
// oracle, allowing exactly one durable-but-unacknowledged operation:
// the one in flight at the kill.
func verifyRecovered(t *testing.T, rb *Broker, oracle *books, pending *crashOp) {
	t.Helper()
	got := stateOf(t, rb)

	// Receipts: the acknowledged ones must be there verbatim and in
	// order; at most one extra, and only if a buy was in flight.
	if len(got.Receipts) < len(oracle.receipts) || len(got.Receipts) > len(oracle.receipts)+1 {
		t.Fatalf("recovered %d receipts, oracle has %d (+1 in-flight allowed)", len(got.Receipts), len(oracle.receipts))
	}
	for i, want := range oracle.receipts {
		if got.Receipts[i] != want {
			t.Fatalf("receipt %d diverged:\n got %+v\nwant %+v", i, got.Receipts[i], want)
		}
	}
	expect := struct {
		balances map[string]float64
		spent    map[string]float64
		queries  map[string]int
	}{
		balances: map[string]float64{},
		spent:    map[string]float64{},
		queries:  map[string]int{},
	}
	for c, v := range oracle.balances {
		expect.balances[c] = v
	}
	for d, v := range oracle.spent {
		expect.spent[d] = v
	}
	for d, v := range oracle.queries {
		expect.queries[d] = v
	}
	var pendingDeposit *crashOp
	if len(got.Receipts) == len(oracle.receipts)+1 {
		extra := got.Receipts[len(oracle.receipts)]
		if pending == nil || pending.kind != "buy" {
			t.Fatalf("extra receipt %+v but no committing buy was in flight (pending %+v)", extra, pending)
		}
		if extra.Customer != pending.customer || extra.Dataset != pending.dataset {
			t.Fatalf("extra receipt %+v does not match the in-flight buy %+v", extra, pending)
		}
		if wantID := int64(len(oracle.receipts)) + 1; extra.ID != wantID {
			t.Fatalf("extra receipt id %d, want %d (ids stay gapless)", extra.ID, wantID)
		}
		expect.balances[extra.Customer] -= extra.Price
		expect.spent[extra.Dataset] += extra.EpsilonPrime
		expect.queries[extra.Dataset]++
	} else if pending != nil && pending.kind == "deposit" {
		// A deposit in flight at the kill may be durable yet unacked —
		// possibly for a customer the oracle has never seen (their very
		// first grant was the op that died).
		pendingDeposit = pending
		if _, ok := expect.balances[pending.customer]; !ok {
			expect.balances[pending.customer] = 0
		}
	}

	for c, want := range expect.balances {
		gotBal := got.Balances[c]
		if closeEnough(gotBal, want) {
			continue
		}
		if pendingDeposit != nil && c == pendingDeposit.customer && closeEnough(gotBal, want+pendingDeposit.amount) {
			continue
		}
		t.Fatalf("balance[%s] = %v, oracle %v (pending %+v)", c, gotBal, want, pending)
	}
	for c, gotBal := range got.Balances {
		if _, ok := expect.balances[c]; !ok && gotBal != 0 {
			t.Fatalf("recovered phantom balance %v for %q", gotBal, c)
		}
	}
	for _, ds := range []string{"ozone", "capped"} {
		s := got.Accountants[ds]
		if closeEnough(s.Spent, expect.spent[ds]) && s.Queries == expect.queries[ds] {
			continue
		}
		// A withheld sale in flight at the kill may have its
		// spend-withheld record durable but unacked: the charge applies
		// even though the sale never commits (conservative direction —
		// the live accountant was charged too).
		if pending != nil && pending.kind == "withheld-buy" && ds == pending.dataset &&
			closeEnough(s.Spent, expect.spent[ds]+oracle.lastEps[ds]) && s.Queries == expect.queries[ds]+1 {
			continue
		}
		t.Fatalf("accountant[%s] = {Spent: %v, Queries: %d}, oracle {%v, %d} (pending %+v)",
			ds, s.Spent, s.Queries, expect.spent[ds], expect.queries[ds], pending)
	}

	// The recovered broker must be open for business and keep the id
	// sequence gapless.
	if err := rb.Deposit("carol", 25); err != nil {
		t.Fatalf("recovered broker refused a deposit: %v", err)
	}
	resp, err := rb.Buy(Request{Op: "buy", Dataset: "ozone", Customer: "carol", L: 0, U: 200, Alpha: 0.2, Delta: 0.5})
	if err != nil {
		t.Fatalf("recovered broker refused a sale: %v", err)
	}
	if want := int64(len(got.Receipts)) + 1; resp.Receipt.ID != want {
		t.Fatalf("post-recovery receipt id %d, want %d (ids stay gapless)", resp.Receipt.ID, want)
	}
}
