package market

import (
	"sync"
	"testing"

	"privrange/internal/pricing"
)

// TestConcurrentBuys exercises the full buy path from many goroutines; run
// with -race to validate the engine-level serialization.
func TestConcurrentBuys(t *testing.T) {
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				req := Request{Dataset: "ozone", Customer: "c", L: 30, U: 90, Alpha: 0.1, Delta: 0.5}
				if _, err := broker.Buy(req); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
