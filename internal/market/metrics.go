package market

import (
	"privrange/internal/telemetry"
)

// Metrics is the marketplace's telemetry: protocol request counters by
// operation, sale outcomes and revenue, transport connection health
// (accept/decode failures included — previously dropped silently) and
// a ring of purchase traces. Only commerce-level aggregates cross into
// telemetry: prices, variances and counts are tariff outputs or public
// metadata, never the private values being sold. A nil *Metrics
// records nothing.
type Metrics struct {
	reqCatalog *telemetry.Counter
	reqQuote   *telemetry.Counter
	reqBuy     *telemetry.Counter
	reqDeposit *telemetry.Counter
	reqBalance *telemetry.Counter
	reqAudit   *telemetry.Counter
	reqUnknown *telemetry.Counter
	reqInvalid *telemetry.Counter

	purchases  *telemetry.Counter
	rejections *telemetry.Counter
	revenue    *telemetry.Gauge

	connsAccepted   *telemetry.Counter
	connsActive     *telemetry.Gauge
	acceptFailures  *telemetry.Counter
	decodeFailures  *telemetry.Counter
	oversizedFrames *telemetry.Counter
	bytesRead       *telemetry.Counter
	bytesWritten    *telemetry.Counter

	// Admission control and buy coalescing (the serving path).
	shedTotal       *telemetry.Counter
	inflight        *telemetry.Gauge
	coalesceBatches *telemetry.Counter
	coalesceFolded  *telemetry.Counter

	walAppends     *telemetry.Counter
	walBytes       *telemetry.Counter
	walFsyncs      *telemetry.Counter
	walCompactions *telemetry.Counter
	walRecoveries  *telemetry.Counter
	walReplayed    *telemetry.Counter
	walTruncated   *telemetry.Counter

	buyLatency *telemetry.Histogram
	tracer     *telemetry.Tracer
}

// NewMetrics registers the marketplace's metric catalog on r.
func NewMetrics(r *telemetry.Registry, labels ...telemetry.Label) *Metrics {
	op := func(tag string) []telemetry.Label {
		return append([]telemetry.Label{telemetry.L("op", tag)}, labels...)
	}
	const rHelp = "protocol requests handled, by operation"
	return &Metrics{
		reqCatalog: r.Counter("privrange_market_requests_total", rHelp, op("catalog")...),
		reqQuote:   r.Counter("privrange_market_requests_total", rHelp, op("quote")...),
		reqBuy:     r.Counter("privrange_market_requests_total", rHelp, op("buy")...),
		reqDeposit: r.Counter("privrange_market_requests_total", rHelp, op("deposit")...),
		reqBalance: r.Counter("privrange_market_requests_total", rHelp, op("balance")...),
		reqAudit:   r.Counter("privrange_market_requests_total", rHelp, op("audit")...),
		reqUnknown: r.Counter("privrange_market_requests_total", rHelp, op("unknown")...),
		reqInvalid: r.Counter("privrange_market_requests_total", rHelp, op("invalid")...),

		purchases:  r.Counter("privrange_market_purchases_total", "answers sold and recorded in the ledger", labels...),
		rejections: r.Counter("privrange_market_rejections_total", "buy requests refused (validation, funds, caps, engine failure)", labels...),
		revenue:    r.Gauge("privrange_market_revenue", "cumulative revenue from completed sales", labels...),

		connsAccepted:   r.Counter("privrange_market_connections_total", "TCP connections accepted", labels...),
		connsActive:     r.Gauge("privrange_market_connections_active", "TCP connections currently served", labels...),
		acceptFailures:  r.Counter("privrange_market_accept_failures_total", "listener Accept errors (listener still serving)", labels...),
		decodeFailures:  r.Counter("privrange_market_decode_failures_total", "malformed protocol frames (connection still serving)", labels...),
		oversizedFrames: r.Counter("privrange_market_oversized_frames_total", "protocol lines exceeding the frame limit (connection closed after a protocol error)", labels...),
		bytesRead:       r.Counter("privrange_market_bytes_read_total", "protocol bytes received", labels...),
		bytesWritten:    r.Counter("privrange_market_bytes_written_total", "protocol bytes sent", labels...),

		shedTotal:       r.Counter("privrange_market_shed_total", "requests refused by admission control with a retryable error", labels...),
		inflight:        r.Gauge("privrange_market_inflight_requests", "requests currently admitted and executing", labels...),
		coalesceBatches: r.Counter("privrange_market_coalesce_batches_total", "coalesced batch sales executed", labels...),
		coalesceFolded:  r.Counter("privrange_market_coalesce_folded_total", "single-query buys folded into coalesced batches", labels...),

		walAppends:     r.Counter("privrange_market_wal_appends_total", "mutation records journaled to the write-ahead log", labels...),
		walBytes:       r.Counter("privrange_market_wal_bytes_total", "bytes appended to the write-ahead log (framed)", labels...),
		walFsyncs:      r.Counter("privrange_market_wal_fsyncs_total", "group-commit fsyncs (one may cover many records)", labels...),
		walCompactions: r.Counter("privrange_market_wal_compactions_total", "log compactions into the snapshot", labels...),
		walRecoveries:  r.Counter("privrange_market_wal_recoveries_total", "recoveries performed at durability enablement", labels...),
		walReplayed:    r.Counter("privrange_market_wal_replayed_total", "records applied during recovery replay", labels...),
		walTruncated:   r.Counter("privrange_market_wal_truncated_bytes_total", "torn-tail bytes truncated during recovery", labels...),

		buyLatency: r.Histogram("privrange_market_buy_seconds", "end-to-end Buy latency (quote, debit, answer, record)", telemetry.LatencyBuckets, labels...),
		tracer:     r.Tracer(),
	}
}

// noteRequest counts one dispatched protocol request. The op string is
// one of the protocol's fixed operation names (already validated or
// about to be rejected), so the label set stays bounded.
func (m *Metrics) noteRequest(op string, valid bool) {
	if m == nil {
		return
	}
	if !valid {
		m.reqInvalid.Inc()
		return
	}
	switch op {
	case "catalog":
		m.reqCatalog.Inc()
	case "quote":
		m.reqQuote.Inc()
	case "buy":
		m.reqBuy.Inc()
	case "deposit":
		m.reqDeposit.Inc()
	case "balance":
		m.reqBalance.Inc()
	case "audit":
		m.reqAudit.Inc()
	default:
		m.reqUnknown.Inc()
	}
}

// begin starts a purchase trace when metrics are attached (see
// core.Metrics.begin for the inert-trace contract).
func (m *Metrics) begin(tr *telemetry.Trace, op string) {
	if m == nil {
		return
	}
	tr.Begin(op)
}

// finishBuy closes one Buy trace and records the sale outcome. price
// is the tariff output for a completed sale (ignored on rejection).
func (m *Metrics) finishBuy(tr *telemetry.Trace, sold bool, price float64) {
	if m == nil {
		return
	}
	if sold {
		tr.End("ok")
		m.purchases.Inc()
		m.revenue.Add(price)
	} else {
		tr.End("rejected")
		m.rejections.Inc()
	}
	m.buyLatency.Observe(tr.Total.Seconds())
	m.tracer.Record(tr)
}

// noteWALAppend counts one journaled record and its framed bytes. Only
// commerce bookkeeping crosses into these counters — record contents
// (customers, prices) never do.
func (m *Metrics) noteWALAppend(bytes int) {
	if m == nil {
		return
	}
	m.walAppends.Inc()
	m.walBytes.Add(uint64(bytes))
}

func (m *Metrics) noteWALFsync() {
	if m == nil {
		return
	}
	m.walFsyncs.Inc()
}

func (m *Metrics) noteWALCompaction() {
	if m == nil {
		return
	}
	m.walCompactions.Inc()
}

// noteWALRecovery records one completed recovery: how many records
// replay applied and how many torn-tail bytes were truncated.
func (m *Metrics) noteWALRecovery(replayed int, truncatedBytes int64) {
	if m == nil {
		return
	}
	m.walRecoveries.Inc()
	m.walReplayed.Add(uint64(replayed))
	if truncatedBytes > 0 {
		m.walTruncated.Add(uint64(truncatedBytes))
	}
}

// noteConnOpen / noteConnClose track the live connection gauge.
func (m *Metrics) noteConnOpen() {
	if m == nil {
		return
	}
	m.connsAccepted.Inc()
	m.connsActive.Add(1)
}

func (m *Metrics) noteConnClose() {
	if m == nil {
		return
	}
	m.connsActive.Add(-1)
}

func (m *Metrics) noteAcceptFailure() {
	if m == nil {
		return
	}
	m.acceptFailures.Inc()
}

func (m *Metrics) noteDecodeFailure() {
	if m == nil {
		return
	}
	m.decodeFailures.Inc()
}

// noteOversizedFrame counts a protocol line that blew the frame limit.
// The connection dies (the stream cannot be resynced), but it dies
// loudly: counted here and answered with a protocol error first.
func (m *Metrics) noteOversizedFrame() {
	if m == nil {
		return
	}
	m.oversizedFrames.Inc()
}

// noteShed counts one request refused by admission control.
func (m *Metrics) noteShed() {
	if m == nil {
		return
	}
	m.shedTotal.Inc()
}

// noteAdmit / noteFinish track the in-flight admitted-request gauge.
func (m *Metrics) noteAdmit() {
	if m == nil {
		return
	}
	m.inflight.Add(1)
}

func (m *Metrics) noteFinish() {
	if m == nil {
		return
	}
	m.inflight.Add(-1)
}

// noteCoalesce records one executed batch sale folding n buys.
func (m *Metrics) noteCoalesce(n int) {
	if m == nil {
		return
	}
	m.coalesceBatches.Inc()
	m.coalesceFolded.Add(uint64(n))
}

func (m *Metrics) noteRead(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.bytesRead.Add(uint64(n))
}

// countWriter mirrors written byte counts into the metrics on the way
// to the underlying connection.
type countWriter struct {
	w interface{ Write([]byte) (int, error) }
	m *Metrics
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if c.m != nil && n > 0 {
		c.m.bytesWritten.Add(uint64(n))
	}
	return n, err
}
