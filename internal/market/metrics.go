package market

import (
	"strconv"

	"privrange/internal/telemetry"
)

// Metrics is the marketplace's telemetry: protocol request counters by
// operation, sale outcomes and revenue, transport connection health
// (accept/decode failures included — previously dropped silently) and
// a ring of purchase traces. Only commerce-level aggregates cross into
// telemetry: prices, variances and counts are tariff outputs or public
// metadata, never the private values being sold. A nil *Metrics
// records nothing.
type Metrics struct {
	reqCatalog *telemetry.Counter
	reqQuote   *telemetry.Counter
	reqBuy     *telemetry.Counter
	reqDeposit *telemetry.Counter
	reqBalance *telemetry.Counter
	reqAudit   *telemetry.Counter
	reqUnknown *telemetry.Counter
	reqInvalid *telemetry.Counter

	purchases  *telemetry.Counter
	rejections *telemetry.Counter
	revenue    *telemetry.Gauge

	connsAccepted   *telemetry.Counter
	connsActive     *telemetry.Gauge
	acceptFailures  *telemetry.Counter
	decodeFailures  *telemetry.Counter
	oversizedFrames *telemetry.Counter
	bytesRead       *telemetry.Counter
	bytesWritten    *telemetry.Counter

	// Admission control and buy coalescing (the serving path).
	shedTotal       *telemetry.Counter
	inflight        *telemetry.Gauge
	coalesceBatches *telemetry.Counter
	coalesceFolded  *telemetry.Counter
	// Engine pressure: requests dispatched into the broker/engine and
	// not yet answered (what admission shedding should eventually key
	// off), and pipeline slots currently held across all connections
	// (how full the per-connection windows actually run).
	engineQueue       *telemetry.Gauge
	pipelineOccupancy *telemetry.Gauge

	walAppends     *telemetry.Counter
	walBytes       *telemetry.Counter
	walFsyncs      *telemetry.Counter
	walCompactions *telemetry.Counter
	walRecoveries  *telemetry.Counter
	walReplayed    *telemetry.Counter
	walTruncated   *telemetry.Counter

	buyLatency *telemetry.Histogram
	tracer     *telemetry.Tracer

	// Distributed tracing and SLOs. reg is retained so head-sampling
	// decisions see SetTraceSampling calls made after construction.
	reg    *telemetry.Registry
	spans  *telemetry.SpanBuf
	buySLO *telemetry.SLO
}

// NewMetrics registers the marketplace's metric catalog on r.
func NewMetrics(r *telemetry.Registry, labels ...telemetry.Label) *Metrics {
	op := func(tag string) []telemetry.Label {
		return append([]telemetry.Label{telemetry.L("op", tag)}, labels...)
	}
	const rHelp = "protocol requests handled, by operation"
	return &Metrics{
		reqCatalog: r.Counter("privrange_market_requests_total", rHelp, op("catalog")...),
		reqQuote:   r.Counter("privrange_market_requests_total", rHelp, op("quote")...),
		reqBuy:     r.Counter("privrange_market_requests_total", rHelp, op("buy")...),
		reqDeposit: r.Counter("privrange_market_requests_total", rHelp, op("deposit")...),
		reqBalance: r.Counter("privrange_market_requests_total", rHelp, op("balance")...),
		reqAudit:   r.Counter("privrange_market_requests_total", rHelp, op("audit")...),
		reqUnknown: r.Counter("privrange_market_requests_total", rHelp, op("unknown")...),
		reqInvalid: r.Counter("privrange_market_requests_total", rHelp, op("invalid")...),

		purchases:  r.Counter("privrange_market_purchases_total", "answers sold and recorded in the ledger", labels...),
		rejections: r.Counter("privrange_market_rejections_total", "buy requests refused (validation, funds, caps, engine failure)", labels...),
		revenue:    r.Gauge("privrange_market_revenue", "cumulative revenue from completed sales", labels...),

		connsAccepted:   r.Counter("privrange_market_connections_total", "TCP connections accepted", labels...),
		connsActive:     r.Gauge("privrange_market_connections_active", "TCP connections currently served", labels...),
		acceptFailures:  r.Counter("privrange_market_accept_failures_total", "listener Accept errors (listener still serving)", labels...),
		decodeFailures:  r.Counter("privrange_market_decode_failures_total", "malformed protocol frames (connection still serving)", labels...),
		oversizedFrames: r.Counter("privrange_market_oversized_frames_total", "protocol lines exceeding the frame limit (connection closed after a protocol error)", labels...),
		bytesRead:       r.Counter("privrange_market_bytes_read_total", "protocol bytes received", labels...),
		bytesWritten:    r.Counter("privrange_market_bytes_written_total", "protocol bytes sent", labels...),

		shedTotal:       r.Counter("privrange_market_shed_total", "requests refused by admission control with a retryable error", labels...),
		inflight:        r.Gauge("privrange_market_inflight_requests", "requests currently admitted and executing", labels...),
		coalesceBatches: r.Counter("privrange_market_coalesce_batches_total", "coalesced batch sales executed", labels...),
		coalesceFolded:  r.Counter("privrange_market_coalesce_folded_total", "single-query buys folded into coalesced batches", labels...),

		engineQueue:       r.Gauge("privrange_market_engine_queue_depth", "requests dispatched into the broker/engine and not yet answered", labels...),
		pipelineOccupancy: r.Gauge("privrange_market_pipeline_occupancy", "pipeline slots currently held across all connections", labels...),

		walAppends:     r.Counter("privrange_market_wal_appends_total", "mutation records journaled to the write-ahead log", labels...),
		walBytes:       r.Counter("privrange_market_wal_bytes_total", "bytes appended to the write-ahead log (framed)", labels...),
		walFsyncs:      r.Counter("privrange_market_wal_fsyncs_total", "group-commit fsyncs (one may cover many records)", labels...),
		walCompactions: r.Counter("privrange_market_wal_compactions_total", "log compactions into the snapshot", labels...),
		walRecoveries:  r.Counter("privrange_market_wal_recoveries_total", "recoveries performed at durability enablement", labels...),
		walReplayed:    r.Counter("privrange_market_wal_replayed_total", "records applied during recovery replay", labels...),
		walTruncated:   r.Counter("privrange_market_wal_truncated_bytes_total", "torn-tail bytes truncated during recovery", labels...),

		buyLatency: r.Histogram("privrange_market_buy_seconds", "end-to-end Buy latency (quote, debit, answer, record)", telemetry.LatencyBuckets, labels...),
		tracer:     r.Tracer(),

		reg:   r,
		spans: r.Spans(),
	}
}

// SetBuySLO attaches the objective every completed or rejected buy is
// scored against (wired by the facade during telemetry setup, before
// serving starts).
func (m *Metrics) SetBuySLO(s *telemetry.SLO) {
	if m == nil {
		return
	}
	m.buySLO = s
}

// noteRequest counts one dispatched protocol request. The op string is
// one of the protocol's fixed operation names (already validated or
// about to be rejected), so the label set stays bounded.
func (m *Metrics) noteRequest(op string, valid bool) {
	if m == nil {
		return
	}
	if !valid {
		m.reqInvalid.Inc()
		return
	}
	switch op {
	case "catalog":
		m.reqCatalog.Inc()
	case "quote":
		m.reqQuote.Inc()
	case "buy":
		m.reqBuy.Inc()
	case "deposit":
		m.reqDeposit.Inc()
	case "balance":
		m.reqBalance.Inc()
	case "audit":
		m.reqAudit.Inc()
	default:
		m.reqUnknown.Inc()
	}
}

// begin starts a purchase trace when metrics are attached (see
// core.Metrics.begin for the inert-trace contract).
func (m *Metrics) begin(tr *telemetry.Trace, op string) {
	if m == nil {
		return
	}
	tr.Begin(op)
}

// beginWire starts a purchase trace joined to the request's wire
// trace context. A request carrying a sampled context is always
// traced; one without (or with a malformed value) starts a fresh
// server-originated trace when the registry's head sampler fires.
// The sampling decision is a modular counter — no randomness, no
// clock — so it can never perturb the release path.
func (m *Metrics) beginWire(tr *telemetry.Trace, op, wireCtx string) {
	if m == nil {
		return
	}
	if sc, ok := telemetry.ParseSpanContext(wireCtx); ok && sc.Sampled {
		tr.BeginCtx(op, sc, m.spans)
		return
	}
	if m.reg.Sampler().Sample() {
		tr.BeginCtx(op, m.spans.NewTrace(), m.spans)
		return
	}
	tr.Begin(op)
}

// beginBatchSpan starts the trace covering one coalesced batch sale.
// When any folded sale is sampled, the batch runs as a span on its own
// trace (it belongs to no single sale) and links every sampled sale's
// handler span; otherwise it stays a plain latency trace.
func (m *Metrics) beginBatchSpan(tr *telemetry.Trace, traces []*telemetry.Trace, slots []int) {
	if m == nil {
		return
	}
	linked := false
	for _, i := range slots {
		if sc := traces[i].SpanCtx(); sc.Sampled {
			if !linked {
				tr.BeginCtx("market.batch_sale", m.spans.NewTrace(), m.spans)
				linked = true
			}
			tr.Link(sc)
		}
	}
	if !linked {
		tr.Begin("market.batch_sale")
	}
}

// finishBatchSpan closes one batch-sale trace. folded is how many buys
// the batch settled (an aggregate count — clean for span attributes).
func (m *Metrics) finishBatchSpan(tr *telemetry.Trace, folded int) {
	if m == nil {
		return
	}
	tr.Annotate("folded", strconv.Itoa(folded))
	tr.End("ok")
	m.tracer.Record(tr)
}

// finishBuy closes one Buy trace and records the sale outcome. price
// is the tariff output for a completed sale (ignored on rejection).
func (m *Metrics) finishBuy(tr *telemetry.Trace, sold bool, price float64) {
	if m == nil {
		return
	}
	if sold {
		tr.End("ok")
		m.purchases.Inc()
		m.revenue.Add(price)
	} else {
		tr.End("rejected")
		m.rejections.Inc()
	}
	m.buyLatency.Observe(tr.Total.Seconds())
	m.buySLO.Observe(tr.Total, sold)
	m.tracer.Record(tr)
}

// noteWALAppend counts one journaled record and its framed bytes. Only
// commerce bookkeeping crosses into these counters — record contents
// (customers, prices) never do.
func (m *Metrics) noteWALAppend(bytes int) {
	if m == nil {
		return
	}
	m.walAppends.Inc()
	m.walBytes.Add(uint64(bytes))
}

func (m *Metrics) noteWALFsync() {
	if m == nil {
		return
	}
	m.walFsyncs.Inc()
}

func (m *Metrics) noteWALCompaction() {
	if m == nil {
		return
	}
	m.walCompactions.Inc()
}

// noteWALRecovery records one completed recovery: how many records
// replay applied and how many torn-tail bytes were truncated.
func (m *Metrics) noteWALRecovery(replayed int, truncatedBytes int64) {
	if m == nil {
		return
	}
	m.walRecoveries.Inc()
	m.walReplayed.Add(uint64(replayed))
	if truncatedBytes > 0 {
		m.walTruncated.Add(uint64(truncatedBytes))
	}
}

// noteConnOpen / noteConnClose track the live connection gauge.
func (m *Metrics) noteConnOpen() {
	if m == nil {
		return
	}
	m.connsAccepted.Inc()
	m.connsActive.Add(1)
}

func (m *Metrics) noteConnClose() {
	if m == nil {
		return
	}
	m.connsActive.Add(-1)
}

func (m *Metrics) noteAcceptFailure() {
	if m == nil {
		return
	}
	m.acceptFailures.Inc()
}

func (m *Metrics) noteDecodeFailure() {
	if m == nil {
		return
	}
	m.decodeFailures.Inc()
}

// noteOversizedFrame counts a protocol line that blew the frame limit.
// The connection dies (the stream cannot be resynced), but it dies
// loudly: counted here and answered with a protocol error first.
func (m *Metrics) noteOversizedFrame() {
	if m == nil {
		return
	}
	m.oversizedFrames.Inc()
}

// noteShed counts one request refused by admission control.
func (m *Metrics) noteShed() {
	if m == nil {
		return
	}
	m.shedTotal.Inc()
}

// noteAdmit / noteFinish track the in-flight admitted-request gauge.
func (m *Metrics) noteAdmit() {
	if m == nil {
		return
	}
	m.inflight.Add(1)
}

func (m *Metrics) noteFinish() {
	if m == nil {
		return
	}
	m.inflight.Add(-1)
}

// noteEngineEnter / noteEngineExit track how many requests are
// currently dispatched into the broker/engine — the queue depth a
// later admission policy can key off (ROADMAP item 4 follow-up).
func (m *Metrics) noteEngineEnter() {
	if m == nil {
		return
	}
	m.engineQueue.Add(1)
}

func (m *Metrics) noteEngineExit() {
	if m == nil {
		return
	}
	m.engineQueue.Add(-1)
}

// noteSlotAcquire / noteSlotRelease track pipeline-window occupancy
// across all connections.
func (m *Metrics) noteSlotAcquire() {
	if m == nil {
		return
	}
	m.pipelineOccupancy.Add(1)
}

func (m *Metrics) noteSlotRelease() {
	if m == nil {
		return
	}
	m.pipelineOccupancy.Add(-1)
}

// noteCoalesce records one executed batch sale folding n buys.
func (m *Metrics) noteCoalesce(n int) {
	if m == nil {
		return
	}
	m.coalesceBatches.Inc()
	m.coalesceFolded.Add(uint64(n))
}

func (m *Metrics) noteRead(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.bytesRead.Add(uint64(n))
}

// countWriter mirrors written byte counts into the metrics on the way
// to the underlying connection.
type countWriter struct {
	w interface{ Write([]byte) (int, error) }
	m *Metrics
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if c.m != nil && n > 0 {
		c.m.bytesWritten.Add(uint64(n))
	}
	return n, err
}
