package market

import (
	"sync"
	"time"

	"privrange/internal/telemetry"
)

// defaultCoalesceWindow bounds how long a buy may wait for companions
// before its batch is sealed and executed.
const defaultCoalesceWindow = time.Millisecond

// defaultCoalesceBatch is the batch-size seal threshold: a batch that
// fills before its window elapses executes immediately.
const defaultCoalesceBatch = 64

// batchKey groups buys that can share one batch sale: the estimation
// kernel and the quote are per (dataset, accuracy), the customer is
// settled per sale inside the batch.
type batchKey struct {
	dataset      string
	alpha, delta float64
}

// pendingBuy is one enqueued buy waiting for its batch to settle.
type pendingBuy struct {
	req  Request
	tr   *telemetry.Trace
	done chan saleResult
}

// pendingBatch accumulates same-key buys until the window elapses or
// the batch fills.
type pendingBatch struct {
	key   batchKey
	buys  []*pendingBuy
	timer *time.Timer
}

// Coalescer folds concurrent single-query buys for the same dataset
// and accuracy into batch sales: each buy waits at most the window (or
// until the batch fills), then one sellBatch call settles the whole
// group through the shared estimation kernel. A single executor
// goroutine runs batches one at a time, so batch sales — and therefore
// receipt ids — are totally ordered: the serial oracle that replays
// buys in receipt order reproduces the books bit-for-bit.
type Coalescer struct {
	b        *Broker
	window   time.Duration
	maxBatch int

	mu      sync.Mutex
	batches map[batchKey]*pendingBatch
	closed  bool
	// sealWG counts batches detached from the map but not yet handed to
	// the executor, so Close can wait for every in-flight seal before
	// closing ready.
	sealWG sync.WaitGroup
	ready  chan []*pendingBuy
	execWG sync.WaitGroup
}

// CoalesceConfig tunes EnableCoalescing; zero values select defaults.
type CoalesceConfig struct {
	// Window is the longest a buy waits for companions (default 1ms).
	Window time.Duration
	// MaxBatch seals a batch early once this many buys joined
	// (default 64).
	MaxBatch int
}

// EnableCoalescing attaches a coalescer to the broker: protocol buys
// (Broker.Handle) are folded into batch sales from now on. Direct
// Broker.Buy calls keep the serial path. Returns the coalescer so the
// owner can Close it on shutdown; enabling twice replaces the previous
// coalescer (which should be closed by its owner).
func (b *Broker) EnableCoalescing(cfg CoalesceConfig) *Coalescer {
	if cfg.Window <= 0 {
		cfg.Window = defaultCoalesceWindow
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = defaultCoalesceBatch
	}
	c := &Coalescer{
		b:        b,
		window:   cfg.Window,
		maxBatch: cfg.MaxBatch,
		batches:  make(map[batchKey]*pendingBatch),
		ready:    make(chan []*pendingBuy),
	}
	c.execWG.Add(1)
	go c.run()
	b.coal.Store(c)
	return c
}

// Coalescer returns the attached coalescer (nil when disabled).
func (b *Broker) Coalescer() *Coalescer { return b.coal.Load() }

// buy enqueues one protocol buy and blocks until its batch settles.
// After Close it degrades to the serial path, so shutdown never loses
// a sale.
func (c *Coalescer) buy(req Request) saleResult {
	pb := &pendingBuy{
		req:  req,
		tr:   &telemetry.Trace{},
		done: make(chan saleResult, 1),
	}
	// The trace starts at enqueue: coalescing trades up to one window
	// of latency for throughput, and the buy histogram must show that
	// wait, not hide it. The wire trace context joins here too, so a
	// sampled buy's handler span covers the coalescing wait.
	c.b.tele.Load().beginWire(pb.tr, "market.buy", req.Trace)
	pb.tr.Annotate("dataset", req.Dataset)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		resp, price, err := c.b.buyTraced(req, pb.tr)
		return saleResult{resp: resp, price: price, err: err}
	}
	key := batchKey{dataset: req.Dataset, alpha: req.Alpha, delta: req.Delta}
	batch := c.batches[key]
	if batch == nil {
		batch = &pendingBatch{key: key}
		batch.timer = time.AfterFunc(c.window, func() { c.seal(batch) })
		c.batches[key] = batch
	}
	batch.buys = append(batch.buys, pb)
	full := len(batch.buys) >= c.maxBatch
	c.mu.Unlock()
	if full {
		c.seal(batch)
	}
	return <-pb.done
}

// seal detaches a batch from the accumulation map and hands it to the
// executor. The timer-fired and batch-full paths race benignly: the
// map-identity check lets exactly one of them win.
func (c *Coalescer) seal(batch *pendingBatch) {
	c.mu.Lock()
	if c.batches[batch.key] != batch {
		c.mu.Unlock()
		return // already sealed (or claimed by Close)
	}
	delete(c.batches, batch.key)
	batch.timer.Stop()
	c.sealWG.Add(1)
	c.mu.Unlock()
	// The send happens outside the lock: the executor may be busy and
	// enqueueing must not block timer goroutines against enqueues.
	c.ready <- batch.buys
	c.sealWG.Done()
}

// run is the single batch executor: one batch sale at a time, so batch
// commits are totally ordered.
func (c *Coalescer) run() {
	defer c.execWG.Done()
	for buys := range c.ready {
		c.execute(buys)
	}
}

func (c *Coalescer) execute(buys []*pendingBuy) {
	reqs := make([]Request, len(buys))
	traces := make([]*telemetry.Trace, len(buys))
	for i, pb := range buys {
		reqs[i] = pb.req
		traces[i] = pb.tr
	}
	results := c.b.sellBatch(reqs, traces)
	c.b.tele.Load().noteCoalesce(len(buys))
	for i, pb := range buys {
		pb.done <- results[i]
	}
}

// Close drains the coalescer: every accumulated batch executes, then
// the executor exits. Buys enqueued after Close fall back to the
// serial path. Safe to call twice.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	var leftovers []*pendingBatch
	for key, batch := range c.batches {
		batch.timer.Stop()
		delete(c.batches, key)
		c.sealWG.Add(1)
		leftovers = append(leftovers, batch)
	}
	c.mu.Unlock()
	for _, batch := range leftovers {
		c.ready <- batch.buys
		c.sealWG.Done()
	}
	// Timer-fired seals that already detached their batch must land
	// before ready closes.
	c.sealWG.Wait()
	close(c.ready)
	c.execWG.Wait()
}
