package market

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"privrange/internal/core"
	"privrange/internal/dp"
	"privrange/internal/estimator"
	"privrange/internal/pricing"
	"privrange/internal/telemetry"
)

// Broker sells private range-counting answers over one or more registered
// datasets, charging an arbitrage-avoiding tariff and recording every sale
// in the ledger. Broker is safe for concurrent use.
type Broker struct {
	mu       sync.Mutex
	tariff   pricing.Function
	ledger   *Ledger
	datasets map[string]*brokerDataset
	// wallets, when non-nil, switches the broker to prepaid mode: Buy
	// debits the customer before answering and refunds on failure.
	wallets *Wallets
	// customerCap bounds Σε′ per (customer, dataset); 0 means uncapped.
	customerCap float64
	// commitMu linearizes state capture against sales: every mutating
	// operation (a sale's debit→record span, a deposit) holds it shared,
	// and snapshotting (SaveState, WAL compaction) holds it exclusively —
	// so a captured snapshot can never see a debit whose receipt has not
	// landed yet (the torn-snapshot bug).
	commitMu sync.RWMutex
	// recordMu makes receipt-id assignment and the receipt's WAL append
	// one critical section. Concurrent sales hold commitMu only in
	// shared mode, so without this lock two sales could journal their
	// receipts out of id order and a torn tail could cut an id-prefix
	// instead of an id-suffix. Replay also tolerates out-of-order
	// receipts (logs written by older brokers), but keeping the log in
	// id order preserves the gapless-suffix truncation story.
	recordMu sync.Mutex
	// durable, when non-nil, write-ahead-logs every mutation before it
	// is acknowledged (see wal.go / recover.go). Guarded by mu.
	durable *durability
	// restored stashes per-dataset accountant state recovered from disk
	// until the dataset registers its engine. Guarded by mu.
	restored map[string]dp.State
	// tele holds the optional marketplace metrics (atomic so the ops
	// endpoint can attach them after the broker opened shop without
	// racing in-flight sales); nil means record nothing.
	tele atomic.Pointer[Metrics]
	// coal, when non-nil, folds protocol buys into batch sales (see
	// coalesce.go); nil keeps the serial path.
	coal atomic.Pointer[Coalescer]
}

// SetTelemetry attaches marketplace metrics (nil detaches). Safe to
// call concurrently with sales.
func (b *Broker) SetTelemetry(m *Metrics) { b.tele.Store(m) }

// Telemetry returns the attached metrics (nil when detached); the
// transport server shares them for connection accounting.
func (b *Broker) Telemetry() *Metrics { return b.tele.Load() }

func (b *Broker) walletStore() *Wallets {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.wallets
}

func (b *Broker) durableStore() *durability {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.durable
}

// journal appends one mutation record to the WAL. Without durability it
// is a no-op: the broker then runs with the historical in-memory-only
// semantics.
func (b *Broker) journal(r WALRecord) error {
	return b.journalCtx(r, telemetry.SpanContext{})
}

// journalCtx is journal under a distributed-trace context: a sampled
// sale's commit record shows up as a "wal.append" span.
func (b *Broker) journalCtx(r WALRecord, sc telemetry.SpanContext) error {
	d := b.durableStore()
	if d == nil {
		return nil
	}
	_, err := d.wal.AppendCtx(r, sc)
	return err
}

// journalSync makes everything journaled so far durable (group-commit
// fsync). Mutating operations call it exactly once, after their last
// record and before acknowledging the customer.
func (b *Broker) journalSync() error {
	return b.journalSyncCtx(telemetry.SpanContext{})
}

// journalSyncCtx is journalSync under a distributed-trace context: the
// group-commit fsync a sampled sale waited on shows up as a
// "wal.fsync" span (its duration may cover records of other sales —
// that is the group commit, faithfully attributed).
func (b *Broker) journalSyncCtx(sc telemetry.SpanContext) error {
	d := b.durableStore()
	if d == nil {
		return nil
	}
	return d.wal.SyncCtx(sc)
}

// nextSale issues a process-unique sale id linking one sale's WAL
// records. Zero means "no durability" and is never issued.
func (b *Broker) nextSale() uint64 {
	d := b.durableStore()
	if d == nil {
		return 0
	}
	return d.sales.Add(1)
}

type brokerDataset struct {
	engine *core.Engine
	model  pricing.VarianceModel
	n      int
	nodes  int
}

// NewBroker returns a broker using the given tariff. The tariff is
// checked for arbitrage-avoidance across a broad variance interval at
// construction time: a broker refuses to open shop with an exploitable
// price list.
func NewBroker(tariff pricing.Function) (*Broker, error) {
	if tariff == nil {
		return nil, fmt.Errorf("market: nil tariff")
	}
	if err := pricing.Check(tariff, 1e-3, 1e12, 4000); err != nil {
		return nil, fmt.Errorf("market: refusing exploitable tariff: %w", err)
	}
	return &Broker{
		tariff:   tariff,
		ledger:   &Ledger{},
		datasets: make(map[string]*brokerDataset),
	}, nil
}

// NewBrokerUnchecked skips the tariff audit. It exists only so the
// arbitrage experiments and examples can demonstrate a vulnerable broker;
// production callers use NewBroker.
func NewBrokerUnchecked(tariff pricing.Function) (*Broker, error) {
	if tariff == nil {
		return nil, fmt.Errorf("market: nil tariff")
	}
	return &Broker{
		tariff:   tariff,
		ledger:   &Ledger{},
		datasets: make(map[string]*brokerDataset),
	}, nil
}

// Register adds a dataset served by the given engine. n and nodes are the
// dataset's public metadata (|D| and k).
func (b *Broker) Register(name string, engine *core.Engine, n, nodes int) error {
	if name == "" {
		return fmt.Errorf("market: empty dataset name")
	}
	if engine == nil {
		return fmt.Errorf("market: nil engine for dataset %q", name)
	}
	if n < 1 || nodes < 1 {
		return fmt.Errorf("market: dataset %q needs positive n (%d) and nodes (%d)", name, n, nodes)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, exists := b.datasets[name]; exists {
		return fmt.Errorf("market: dataset %q already registered", name)
	}
	// Recovered ε bookkeeping lands on the dataset's accountant as it
	// (re)registers, so Σε′ survives the restart the ledger survived.
	if state, ok := b.restored[name]; ok {
		if a := engine.Accountant(); a != nil {
			if err := a.Restore(state); err != nil {
				return fmt.Errorf("market: dataset %q: %w", name, err)
			}
			delete(b.restored, name)
		}
	}
	b.datasets[name] = &brokerDataset{
		engine: engine,
		model:  pricing.ChebyshevModel{N: n},
		n:      n,
		nodes:  nodes,
	}
	return nil
}

func (b *Broker) dataset(name string) (*brokerDataset, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ds, ok := b.datasets[name]
	if !ok {
		return nil, fmt.Errorf("market: unknown dataset %q", name)
	}
	return ds, nil
}

// Catalog lists registered datasets in name order.
func (b *Broker) Catalog() []DatasetInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.datasets))
	for name := range b.datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]DatasetInfo, 0, len(names))
	for _, name := range names {
		ds := b.datasets[name]
		out = append(out, DatasetInfo{Name: name, N: ds.n, Nodes: ds.nodes})
	}
	return out
}

// Quote prices an accuracy level on a dataset without selling anything.
func (b *Broker) Quote(dataset string, acc estimator.Accuracy) (price, variance float64, err error) {
	ds, err := b.dataset(dataset)
	if err != nil {
		return 0, 0, err
	}
	variance, err = ds.model.Variance(acc)
	if err != nil {
		return 0, 0, err
	}
	price, err = b.tariff.Price(variance)
	if err != nil {
		return 0, 0, err
	}
	return price, variance, nil
}

// Buy answers Λ(α, δ) on the dataset, charges the customer, and records
// the receipt. The returned response carries the private value, the
// price paid and the effective privacy budget consumed.
func (b *Broker) Buy(req Request) (*Response, error) {
	var tr telemetry.Trace
	b.tele.Load().beginWire(&tr, "market.buy", req.Trace)
	tr.Annotate("dataset", req.Dataset)
	resp, _, err := b.buyTraced(req, &tr)
	return resp, err
}

// buyTraced runs the serial sale pipeline under a caller-owned trace
// (already begun) and closes it with the outcome. The coalescer's
// post-Close fallback uses it so a drained coalescer still records
// proper buy latencies.
func (b *Broker) buyTraced(req Request, tr *telemetry.Trace) (*Response, float64, error) {
	resp, price, err := b.buy(req, tr)
	b.tele.Load().finishBuy(tr, err == nil, price)
	b.maybeCompact()
	return resp, price, err
}

// buy is the sale pipeline behind Buy; the wrapper owns the stack-held
// trace and closes it with the sale outcome. The returned price is the
// tariff output actually charged (zero on rejection before pricing).
func (b *Broker) buy(req Request, tr *telemetry.Trace) (*Response, float64, error) {
	req.Op = "buy"
	if err := req.Validate(); err != nil {
		return nil, 0, err
	}
	ds, err := b.dataset(req.Dataset)
	if err != nil {
		return nil, 0, err
	}
	price, variance, err := b.Quote(req.Dataset, req.Accuracy())
	tr.Mark("price")
	if err != nil {
		return nil, 0, err
	}
	// The debit→record span holds the commit lock shared: concurrent
	// sales interleave freely, but a snapshot (SaveState, compaction)
	// waits for in-flight sales and so never captures a half-done one.
	b.commitMu.RLock()
	defer b.commitMu.RUnlock()
	sale := b.nextSale()
	wallets := b.walletStore()
	if wallets != nil {
		if err := wallets.debit(req.Customer, price); err != nil {
			return nil, 0, err
		}
		if err := b.journal(WALRecord{Op: opDebit, Sale: sale, Customer: req.Customer, Amount: price}); err != nil {
			wallets.refund(req.Customer, price)
			return nil, 0, err
		}
	}
	tr.Mark("debit")
	ans, err := ds.engine.AnswerCtx(req.Query(), req.Accuracy(), tr.SpanCtx())
	tr.Mark("answer")
	if err != nil {
		b.rollbackSale(wallets, sale, req.Customer, price)
		return nil, 0, err
	}
	// Per-customer privacy cap: the computed answer is withheld (not
	// released) when this sale would push the customer's cumulative Σε′
	// on the dataset past the cap. The dataset-wide accountant has
	// already been charged — conservative by design: a withheld answer
	// still consumed broker-side randomness — so the spend is journaled
	// even though the sale never commits.
	if cap := b.customerPrivacyCap(); cap > 0 {
		spent := b.ledger.PrivacySpentByCustomer(req.Customer, req.Dataset)
		if spent+ans.Plan.EpsilonPrime > cap {
			if err := b.withholdSale(wallets, sale, req, price, ans.Plan.EpsilonPrime); err != nil {
				return nil, 0, err
			}
			return nil, 0, fmt.Errorf("market: customer %q would exceed the per-customer privacy cap on %q (%.4f + %.4f > %.4f)",
				req.Customer, req.Dataset, spent, ans.Plan.EpsilonPrime, cap)
		}
	}
	// Receipt-id assignment and the receipt's WAL append must be one
	// critical section (see recordMu): journal the ε spend and the
	// receipt (the sale's commit record) under it, then group-commit —
	// the answer is not released until the whole sale is durable. On a
	// journaling failure the in-memory books keep the sale (they stay
	// internally balanced) but the customer gets an error and the WAL
	// refuses all further mutations — after restart, replay sees no
	// commit record and restores the customer's money.
	b.recordMu.Lock()
	receipt := b.ledger.Record(Receipt{
		Customer:     req.Customer,
		Dataset:      req.Dataset,
		L:            req.L,
		U:            req.U,
		Alpha:        req.Alpha,
		Delta:        req.Delta,
		Variance:     variance,
		Price:        price,
		EpsilonPrime: ans.Plan.EpsilonPrime,
		Coverage:     ans.Coverage,
	})
	spendErr := b.journal(WALRecord{Op: opSpend, Sale: sale, Dataset: req.Dataset, Epsilon: ans.Plan.EpsilonPrime})
	receiptErr := b.journalCtx(WALRecord{Op: opReceipt, Sale: sale, Receipt: &receipt}, tr.SpanCtx())
	b.recordMu.Unlock()
	tr.Mark("record")
	if spendErr != nil {
		return nil, 0, spendErr
	}
	if receiptErr != nil {
		return nil, 0, receiptErr
	}
	if err := b.journalSyncCtx(tr.SpanCtx()); err != nil {
		return nil, 0, err
	}
	tr.Mark("fsync")
	return &Response{
		OK:                true,
		Price:             price,
		Variance:          variance,
		Value:             ans.Value,
		Clamped:           ans.Clamped(),
		Receipt:           &receipt,
		EpsilonPrime:      ans.Plan.EpsilonPrime,
		Rate:              ans.Rate,
		Coverage:          ans.Coverage,
		CollectionVersion: ans.CollectionVersion,
	}, price, nil
}

// rollbackSale undoes a sale's debit after the answer failed or was
// withheld: the in-memory refund restores the balance through the same
// float operations the debit applied, and the journaled refund record
// resolves the sale on disk so replay applies the debit/refund pair
// (net zero) instead of leaving it dangling. The sync is best-effort —
// an unsynced refund just means replay treats the sale as in-flight
// and skips the debit entirely, which yields the same balance.
func (b *Broker) rollbackSale(wallets *Wallets, sale uint64, customer string, price float64) {
	if wallets == nil {
		return
	}
	wallets.refund(customer, price)
	if err := b.journal(WALRecord{Op: opRefund, Sale: sale, Customer: customer, Amount: price}); err != nil {
		return
	}
	b.journalSync() //nolint:errcheck — see above: replay is refund-equivalent either way
}

// withholdSale resolves a sale whose answer was computed but withheld
// by the per-customer cap. Unlike the answer-failure rollback, the
// dataset accountant HAS been charged here, so the ε spend is journaled
// as a spend-withheld record (applied unconditionally on replay) before
// the refund resolves the sale, and journaling failures surface to the
// caller instead of being best-effort: silently acking a rejection
// whose spend never became durable would let a restart refund budget
// the live accountant treats as spent.
func (b *Broker) withholdSale(wallets *Wallets, sale uint64, req Request, price, eps float64) error {
	if wallets != nil {
		wallets.refund(req.Customer, price)
	}
	if err := b.journal(WALRecord{Op: opSpendHeld, Sale: sale, Dataset: req.Dataset, Epsilon: eps}); err != nil {
		return err
	}
	if wallets != nil {
		if err := b.journal(WALRecord{Op: opRefund, Sale: sale, Customer: req.Customer, Amount: price}); err != nil {
			return err
		}
	}
	return b.journalSync()
}

// Deposit credits a prepaid customer account durably: the grant is
// journaled and fsynced before the balance moves, so a debit can never
// consume funds whose journaling later fails (the old credit-first
// order let a concurrent Buy spend an undurable grant, and the rollback
// then drove the balance negative). A crash after the fsync but before
// the credit is the usual durable-but-unacked gap: replay applies the
// grant. It fails in invoice mode (no wallets attached).
func (b *Broker) Deposit(customer string, amount float64) error {
	w := b.walletStore()
	if w == nil {
		return fmt.Errorf("market: broker runs in invoice mode (no wallets attached)")
	}
	if err := checkDeposit(customer, amount); err != nil {
		return err
	}
	b.commitMu.RLock()
	err := func() error {
		if err := b.journal(WALRecord{Op: opDeposit, Customer: customer, Amount: amount}); err != nil {
			return err
		}
		if err := b.journalSync(); err != nil {
			return err
		}
		return w.Deposit(customer, amount)
	}()
	b.commitMu.RUnlock()
	if err == nil {
		b.maybeCompact()
	}
	return err
}

// Ledger exposes the purchase ledger.
func (b *Broker) Ledger() *Ledger { return b.ledger }

// Tariff returns the broker's pricing function.
func (b *Broker) Tariff() pricing.Function { return b.tariff }

// Handle dispatches one protocol request; transport servers call it. It
// never returns an error: failures become Response.Error so they travel
// back to the remote client.
func (b *Broker) Handle(req Request) *Response {
	m := b.tele.Load()
	if err := req.Validate(); err != nil {
		m.noteRequest(req.Op, false)
		return &Response{Error: err.Error()}
	}
	m.noteRequest(req.Op, true)
	m.noteEngineEnter()
	defer m.noteEngineExit()
	switch req.Op {
	case "catalog":
		return &Response{OK: true, Datasets: b.Catalog()}
	case "quote":
		price, variance, err := b.Quote(req.Dataset, req.Accuracy())
		if err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true, Price: price, Variance: variance}
	case "buy":
		// With a coalescer attached, concurrent protocol buys fold into
		// batch sales; the settlement is bit-identical to serial Buy.
		if co := b.coal.Load(); co != nil {
			r := co.buy(req)
			if r.err != nil {
				return &Response{Error: r.err.Error()}
			}
			return r.resp
		}
		resp, err := b.Buy(req)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		return resp
	case "deposit":
		if err := b.Deposit(req.Customer, req.Amount); err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true, Balance: b.walletStore().Balance(req.Customer)}
	case "balance":
		w := b.walletStore()
		if w == nil {
			return &Response{Error: "market: broker runs in invoice mode (no wallets attached)"}
		}
		return &Response{OK: true, Balance: w.Balance(req.Customer)}
	case "audit":
		return &Response{OK: true, Suspicions: b.Audit()}
	default:
		return &Response{Error: fmt.Sprintf("market: unknown op %q", req.Op)}
	}
}
