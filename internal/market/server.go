package market

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Server exposes a Broker over TCP with a newline-delimited JSON
// protocol: one Request per line in, one Response per line out,
// arbitrarily many exchanges per connection.
//
// The serving path is pipelined: requests carrying a non-zero id are
// dispatched to handler goroutines while the reader keeps consuming
// frames, and a dedicated per-connection writer drains a bounded
// response queue, so one connection can have many sales in flight.
// Requests without an id (old clients) are answered strictly in
// arrival order, preserving the legacy one-at-a-time contract.
//
// Memory per connection is bounded: at most pipeline-depth handler
// goroutines (the reader blocks on a slot semaphore past that, turning
// excess pipelining into TCP backpressure), a response queue sized to
// the same depth, and one frame buffer. A module-wide admission gate
// caps requests in flight across all connections; excess requests are
// refused immediately with a retryable protocol error instead of
// queueing unboundedly.
type Server struct {
	broker   *Broker
	listener net.Listener
	idle     time.Duration
	// depth bounds requests in flight per connection (the pipeline
	// window). The reader stops consuming frames when the window is
	// full, so a client that outruns the broker is throttled by TCP
	// flow control, not by server memory.
	depth int
	// maxInFlight caps admitted requests across all connections; 0
	// disables the gate. inflight is the current count.
	maxInFlight int64
	inflight    atomic.Int64
	// eagerDeadline restores the historical re-arm-every-frame deadline
	// behaviour; only benchmarks set it (see BenchmarkServerDeadline).
	eagerDeadline bool
	// metrics counts connections, bytes and transport failures. Defaults
	// to the broker's attached metrics; WithTelemetry overrides. Nil
	// records nothing.
	metrics *Metrics

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// maxLineBytes bounds a single protocol line to keep hostile clients from
// exhausting memory.
const maxLineBytes = 1 << 20

// defaultIdleTimeout is how long a connection may sit silent (no request
// arriving, or a response not draining) before the server drops it. Dead
// and stalled clients must not pin handler goroutines forever.
const defaultIdleTimeout = 2 * time.Minute

// defaultPipelineDepth is the per-connection pipeline window: how many
// requests one connection may have in flight before the reader applies
// TCP backpressure.
const defaultPipelineDepth = 64

// defaultMaxInFlight is the module-wide admission cap on concurrently
// executing requests.
const defaultMaxInFlight = 1024

// ServerOption configures Serve.
type ServerOption func(*Server)

// WithIdleTimeout sets how long a connection may idle between requests
// (and how long a response write may stall) before the server closes it.
// Zero or negative disables the deadline entirely — callers own the risk
// of dead clients pinning handler goroutines.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.idle = d }
}

// WithTelemetry attaches transport metrics to the server (connection
// gauge, accept/decode failure counters, byte counters). When omitted
// the server shares whatever metrics the broker carries.
func WithTelemetry(m *Metrics) ServerOption {
	return func(s *Server) { s.metrics = m }
}

// WithPipelineDepth bounds how many pipelined requests one connection
// may have in flight (and how many responses it may have queued). Values
// below one fall back to the default.
func WithPipelineDepth(n int) ServerOption {
	return func(s *Server) {
		if n >= 1 {
			s.depth = n
		}
	}
}

// WithMaxInFlight caps admitted requests across all connections; excess
// requests are shed with a retryable protocol error. Zero or negative
// disables the admission gate.
func WithMaxInFlight(n int) ServerOption {
	return func(s *Server) {
		if n < 0 {
			n = 0
		}
		s.maxInFlight = int64(n)
	}
}

// withEagerDeadline re-arms the connection deadline on every frame, the
// pre-pipelining behaviour. Exists only so the deadline-churn benchmark
// can measure lazy vs eager re-arming on the same code path.
func withEagerDeadline() ServerOption {
	return func(s *Server) { s.eagerDeadline = true }
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") and begins accepting
// connections in the background. Close shuts it down.
func Serve(broker *Broker, addr string, opts ...ServerOption) (*Server, error) {
	if broker == nil {
		return nil, fmt.Errorf("market: nil broker")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("market: listen %s: %w", addr, err)
	}
	s := &Server{
		broker:      broker,
		listener:    ln,
		idle:        defaultIdleTimeout,
		depth:       defaultPipelineDepth,
		maxInFlight: defaultMaxInFlight,
		metrics:     broker.Telemetry(),
		conns:       make(map[net.Conn]struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return // listener closed: clean shutdown
			}
			// Transient accept failure (e.g. EMFILE, aborted handshake):
			// count it and keep serving instead of silently killing the
			// listener for every remaining client.
			s.metrics.noteAcceptFailure()
			continue
		}
		if !s.track(conn) {
			_ = conn.Close()
			return
		}
		s.metrics.noteConnOpen()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.metrics.noteConnClose()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
	_ = conn.Close()
}

// admit reserves one slot in the module-wide in-flight gate, or reports
// that the request must be shed. release undoes it.
func (s *Server) admit() bool {
	if s.maxInFlight <= 0 {
		return true
	}
	if s.inflight.Add(1) > s.maxInFlight {
		s.inflight.Add(-1)
		return false
	}
	s.metrics.noteAdmit()
	return true
}

func (s *Server) release() {
	if s.maxInFlight <= 0 {
		return
	}
	s.inflight.Add(-1)
	s.metrics.noteFinish()
}

// shedResponse is the explicit retryable rejection admission control
// answers with instead of queueing.
func shedResponse(id uint64) *Response {
	return &Response{
		ID:        id,
		Error:     "market: overloaded: too many requests in flight, retry after backoff",
		Retryable: true,
	}
}

// armDeadline pushes the connection's read/write deadline one idle
// period into the future. It re-arms lazily: a syscall per frame is
// measurable on the hot loop (see BenchmarkServerDeadline), and a
// deadline armed within the last quarter of the idle period is still
// at least 3·idle/4 away — close enough that re-arming buys nothing.
// lastArm is owned by the reader goroutine.
func (s *Server) armDeadline(conn net.Conn, lastArm *time.Time) error {
	if s.idle <= 0 {
		return nil
	}
	now := time.Now()
	if !s.eagerDeadline && !lastArm.IsZero() && now.Sub(*lastArm) < s.idle/4 {
		return nil
	}
	*lastArm = now
	return conn.SetDeadline(now.Add(s.idle))
}

// servedConn is the per-connection serving state: a bounded response
// queue drained by one writer goroutine, a slot semaphore bounding the
// pipeline window, and the join handles for both goroutine kinds.
type servedConn struct {
	s     *Server
	conn  net.Conn
	respQ chan *Response
	// slots is the pipeline window: the reader takes a slot before
	// dispatching a handler and the handler returns it after enqueueing
	// its response, so at most cap(slots) handlers exist per connection
	// and each can always enqueue without blocking (cap(respQ) ≥
	// cap(slots)).
	slots    chan struct{}
	handlers sync.WaitGroup
	writerWG sync.WaitGroup
}

func (s *Server) serveConn(conn net.Conn) {
	c := &servedConn{
		s:     s,
		conn:  conn,
		respQ: make(chan *Response, s.depth+8),
		slots: make(chan struct{}, s.depth),
	}
	c.writerWG.Add(1)
	go c.writeLoop()
	s.readLoop(c)
	// Reader is done: no new handlers will spawn. Wait for in-flight
	// handlers to enqueue their responses, then let the writer drain
	// what it can and exit.
	c.handlers.Wait()
	close(c.respQ)
	c.writerWG.Wait()
}

// readLoop consumes frames and dispatches them. Id-less requests are
// handled inline (strict arrival order, the legacy contract); id'd
// requests go through admission and run on handler goroutines.
func (s *Server) readLoop(c *servedConn) {
	scanner := bufio.NewScanner(c.conn)
	scanner.Buffer(make([]byte, 0, 4096), maxLineBytes)
	var lastArm time.Time
	if err := s.armDeadline(c.conn, &lastArm); err != nil {
		return
	}
	for scanner.Scan() {
		line := scanner.Bytes()
		s.metrics.noteRead(len(line) + 1)
		if len(line) == 0 {
			continue
		}
		// An active client keeps its deadline fresh; a silent one (or
		// one not draining responses) is cut off after an idle period.
		if err := s.armDeadline(c.conn, &lastArm); err != nil {
			return
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			// A malformed frame is the client's problem, not the
			// connection's: count it and answer with a protocol error.
			// No id can be attributed, so pipelined clients see id 0.
			s.metrics.noteDecodeFailure()
			c.respQ <- &Response{Error: fmt.Sprintf("market: malformed request: %v", err)}
			continue
		}
		if req.ID == 0 {
			// Legacy one-at-a-time request: handle inline so responses
			// leave in arrival order, exactly as before pipelining.
			if !s.admit() {
				s.metrics.noteShed()
				c.respQ <- shedResponse(0)
				continue
			}
			resp := s.broker.Handle(req)
			s.release()
			c.respQ <- resp
			continue
		}
		// Pipelined request: take a pipeline slot first (blocking here
		// throttles an over-eager client via TCP flow control), then
		// pass the module-wide admission gate.
		c.slots <- struct{}{}
		s.metrics.noteSlotAcquire()
		if !s.admit() {
			<-c.slots
			s.metrics.noteSlotRelease()
			s.metrics.noteShed()
			c.respQ <- shedResponse(req.ID)
			continue
		}
		c.handlers.Add(1)
		go func(req Request) {
			defer c.handlers.Done()
			resp := s.broker.Handle(req)
			resp.ID = req.ID
			c.respQ <- resp
			s.release()
			<-c.slots
			s.metrics.noteSlotRelease()
		}(req)
	}
	if errors.Is(scanner.Err(), bufio.ErrTooLong) {
		// The frame blew the line limit. The stream cannot be resynced
		// (we do not know where the oversized line ends), so the
		// connection must die — but loudly: count it and answer a
		// protocol error the client will see before the close.
		s.metrics.noteOversizedFrame()
		c.respQ <- &Response{Error: fmt.Sprintf("market: request exceeds the %d-byte frame limit", maxLineBytes)}
	}
}

// writeLoop drains the response queue into the connection, flushing
// only when the queue runs empty so back-to-back pipelined responses
// share flushes. After a write failure it closes the connection (the
// peer is gone or stalled past its deadline) and keeps draining so
// handlers never block on a dead writer.
func (c *servedConn) writeLoop() {
	defer c.writerWG.Done()
	writer := bufio.NewWriter(&countWriter{w: c.conn, m: c.s.metrics})
	enc := json.NewEncoder(writer)
	failed := false
	for resp := range c.respQ {
		if failed {
			continue
		}
		if err := enc.Encode(resp); err != nil {
			failed = true
		} else if len(c.respQ) == 0 {
			if err := writer.Flush(); err != nil {
				failed = true
			}
		}
		if failed {
			// Unblock the reader (blocked in Scan) and future writes.
			_ = c.conn.Close()
		}
	}
	if !failed {
		_ = writer.Flush()
	}
}

// Close stops accepting, closes live connections, and waits for handler
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}
