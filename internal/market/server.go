package market

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Server exposes a Broker over TCP with a newline-delimited JSON
// protocol: one Request per line in, one Response per line out,
// arbitrarily many exchanges per connection.
type Server struct {
	broker   *Broker
	listener net.Listener
	idle     time.Duration
	// metrics counts connections, bytes and transport failures. Defaults
	// to the broker's attached metrics; WithTelemetry overrides. Nil
	// records nothing.
	metrics *Metrics

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// maxLineBytes bounds a single protocol line to keep hostile clients from
// exhausting memory.
const maxLineBytes = 1 << 20

// defaultIdleTimeout is how long a connection may sit silent (no request
// arriving, or a response not draining) before the server drops it. Dead
// and stalled clients must not pin handler goroutines forever.
const defaultIdleTimeout = 2 * time.Minute

// ServerOption configures Serve.
type ServerOption func(*Server)

// WithIdleTimeout sets how long a connection may idle between requests
// (and how long a response write may stall) before the server closes it.
// Zero or negative disables the deadline entirely — callers own the risk
// of dead clients pinning handler goroutines.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.idle = d }
}

// WithTelemetry attaches transport metrics to the server (connection
// gauge, accept/decode failure counters, byte counters). When omitted
// the server shares whatever metrics the broker carries.
func WithTelemetry(m *Metrics) ServerOption {
	return func(s *Server) { s.metrics = m }
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") and begins accepting
// connections in the background. Close shuts it down.
func Serve(broker *Broker, addr string, opts ...ServerOption) (*Server, error) {
	if broker == nil {
		return nil, fmt.Errorf("market: nil broker")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("market: listen %s: %w", addr, err)
	}
	s := &Server{
		broker:   broker,
		listener: ln,
		idle:     defaultIdleTimeout,
		metrics:  broker.Telemetry(),
		conns:    make(map[net.Conn]struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return // listener closed: clean shutdown
			}
			// Transient accept failure (e.g. EMFILE, aborted handshake):
			// count it and keep serving instead of silently killing the
			// listener for every remaining client.
			s.metrics.noteAcceptFailure()
			continue
		}
		if !s.track(conn) {
			_ = conn.Close()
			return
		}
		s.metrics.noteConnOpen()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.metrics.noteConnClose()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
	_ = conn.Close()
}

// extendDeadline pushes the connection's read/write deadline one idle
// period into the future, or clears it when deadlines are disabled.
func (s *Server) extendDeadline(conn net.Conn) error {
	if s.idle <= 0 {
		return nil
	}
	return conn.SetDeadline(time.Now().Add(s.idle))
}

func (s *Server) serveConn(conn net.Conn) {
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 4096), maxLineBytes)
	writer := bufio.NewWriter(&countWriter{w: conn, m: s.metrics})
	enc := json.NewEncoder(writer)
	// The deadline is re-armed before every exchange, so an active client
	// can hold the connection indefinitely while a silent one (or one not
	// draining its responses) is cut off after a single idle period.
	if err := s.extendDeadline(conn); err != nil {
		return
	}
	for scanner.Scan() {
		line := scanner.Bytes()
		s.metrics.noteRead(len(line) + 1)
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp *Response
		if err := json.Unmarshal(line, &req); err != nil {
			// A malformed frame is the client's problem, not the
			// connection's: count it and answer with a protocol error.
			s.metrics.noteDecodeFailure()
			resp = &Response{Error: fmt.Sprintf("market: malformed request: %v", err)}
		} else {
			resp = s.broker.Handle(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := writer.Flush(); err != nil {
			return
		}
		if err := s.extendDeadline(conn); err != nil {
			return
		}
	}
}

// Close stops accepting, closes live connections, and waits for handler
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Client is a TCP consumer of a market Server.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	reader  *bufio.Reader
	timeout time.Duration
}

// DialOption configures Dial.
type DialOption func(*Client)

// WithRequestTimeout bounds each Do exchange (send + receive) and the
// initial TCP connect. It mirrors the server's idle deadline: without
// it a stalled or dead server pins the caller forever. Zero or negative
// disables the deadline — callers own that risk. The default matches
// the server's defaultIdleTimeout.
func WithRequestTimeout(d time.Duration) DialOption {
	return func(c *Client) { c.timeout = d }
}

// Dial connects to a market server.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	c := &Client{timeout: defaultIdleTimeout}
	for _, opt := range opts {
		opt(c)
	}
	dialTimeout := c.timeout
	if dialTimeout <= 0 {
		dialTimeout = 0 // no timeout: net.DialTimeout treats 0 as none
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("market: dial %s: %w", addr, err)
	}
	c.conn = conn
	c.reader = bufio.NewReader(conn)
	return c, nil
}

// Do performs one request/response exchange. It is safe for concurrent
// use (exchanges serialize on the single connection). The configured
// request timeout covers the whole exchange: a server that accepts the
// request but never answers yields a deadline error instead of a hang.
func (c *Client) Do(req Request) (*Response, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("market: marshal request: %w", err)
	}
	payload = append(payload, '\n')

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, fmt.Errorf("market: arm deadline: %w", err)
		}
	}
	if _, err := c.conn.Write(payload); err != nil {
		return nil, fmt.Errorf("market: send: %w", err)
	}
	line, err := c.reader.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("market: receive: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, fmt.Errorf("market: malformed response: %w", err)
	}
	return &resp, nil
}

// ErrRemote wraps a broker-side failure reported over the protocol.
var ErrRemote = errors.New("market: remote error")

// expectOK converts a Response with Error set into a Go error.
func expectOK(resp *Response) error {
	if resp.Error != "" {
		return fmt.Errorf("%w: %s", ErrRemote, resp.Error)
	}
	if !resp.OK {
		return fmt.Errorf("%w: response not ok", ErrRemote)
	}
	return nil
}

// Catalog fetches the dataset list.
func (c *Client) Catalog() ([]DatasetInfo, error) {
	resp, err := c.Do(Request{Op: "catalog"})
	if err != nil {
		return nil, err
	}
	if err := expectOK(resp); err != nil {
		return nil, err
	}
	return resp.Datasets, nil
}

// Quote prices an accuracy level remotely.
func (c *Client) Quote(dataset string, alpha, delta float64) (price, variance float64, err error) {
	resp, err := c.Do(Request{Op: "quote", Dataset: dataset, Alpha: alpha, Delta: delta})
	if err != nil {
		return 0, 0, err
	}
	if err := expectOK(resp); err != nil {
		return 0, 0, err
	}
	return resp.Price, resp.Variance, nil
}

// Buy purchases one answer remotely.
func (c *Client) Buy(req Request) (*Response, error) {
	req.Op = "buy"
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	if err := expectOK(resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Deposit credits the customer's prepaid account on the broker and
// returns the new balance. Fails when the broker runs in invoice mode.
func (c *Client) Deposit(customer string, amount float64) (float64, error) {
	resp, err := c.Do(Request{Op: "deposit", Customer: customer, Amount: amount})
	if err != nil {
		return 0, err
	}
	if err := expectOK(resp); err != nil {
		return 0, err
	}
	return resp.Balance, nil
}

// Balance fetches the customer's prepaid balance.
func (c *Client) Balance(customer string) (float64, error) {
	resp, err := c.Do(Request{Op: "balance", Customer: customer})
	if err != nil {
		return 0, err
	}
	if err := expectOK(resp); err != nil {
		return 0, err
	}
	return resp.Balance, nil
}

// Audit fetches the broker's averaging-pattern report.
func (c *Client) Audit() ([]AveragingSuspicion, error) {
	resp, err := c.Do(Request{Op: "audit"})
	if err != nil {
		return nil, err
	}
	if err := expectOK(resp); err != nil {
		return nil, err
	}
	return resp.Suspicions, nil
}

// Close tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
