package market

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"privrange/internal/core"
	"privrange/internal/dataset"
	"privrange/internal/dp"
	"privrange/internal/iot"
	"privrange/internal/pricing"
	"privrange/internal/telemetry"
)

// durEngine builds a small, fast, deterministic engine with a privacy
// accountant attached — durability tests care about the books, not the
// estimates, so the series stays tiny.
func durEngine(t *testing.T, p dataset.Pollutant, seed int64, budget float64) (*core.Engine, int) {
	t.Helper()
	series, err := dataset.GenerateSeries(p, dataset.GenerateConfig{Seed: seed, Records: 120})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := series.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := iot.New(parts, iot.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	acct, err := dp.NewAccountant(budget)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(nw, core.WithSeed(seed), core.WithAccountant(acct))
	if err != nil {
		t.Fatal(err)
	}
	return eng, series.Len()
}

// durBroker builds a prepaid broker with durability rooted at dir and
// one accountant-backed dataset, mirroring the production construction
// order: wallets → EnableDurability → Register.
func durBroker(t *testing.T, dir string, opts ...DurabilityOption) *Broker {
	t.Helper()
	// C=100 keeps prices in single digits for the tiny test series, so
	// modest deposits fund several sales.
	b, err := NewBroker(pricing.InverseVariance{C: 100})
	if err != nil {
		t.Fatal(err)
	}
	b.AttachWallets(&Wallets{})
	if err := b.EnableDurability(dir, opts...); err != nil {
		t.Fatal(err)
	}
	eng, n := durEngine(t, dataset.Ozone, 7, 0)
	if err := b.Register("ozone", eng, n, 4); err != nil {
		t.Fatal(err)
	}
	return b
}

func durBuy(t *testing.T, b *Broker, customer string) *Response {
	t.Helper()
	resp, err := b.Buy(Request{
		Op: "buy", Dataset: "ozone", Customer: customer,
		L: 0, U: 200, Alpha: 0.2, Delta: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// stateOf extracts the broker's full durable state through SaveState.
func stateOf(t *testing.T, b *Broker) *Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := b.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	return &snap
}

// TestDurableRoundTrip: trade, shut down cleanly, recover into a fresh
// broker — money, receipts and released ε come back bit-identical.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := durBroker(t, dir)
	if err := b.Deposit("alice", 50); err != nil {
		t.Fatal(err)
	}
	r1 := durBuy(t, b, "alice")
	r2 := durBuy(t, b, "alice")
	before := stateOf(t, b)
	if err := b.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	rb := durBroker(t, dir)
	after := stateOf(t, rb)
	if len(after.Receipts) != 2 || after.Receipts[0] != *r1.Receipt || after.Receipts[1] != *r2.Receipt {
		t.Fatalf("receipts did not survive: %+v", after.Receipts)
	}
	if got, want := after.Balances["alice"], before.Balances["alice"]; got != want {
		t.Fatalf("balance %v after recovery, want %v", got, want)
	}
	if got, want := after.Accountants["ozone"].Spent, r1.EpsilonPrime+r2.EpsilonPrime; got != want {
		t.Fatalf("recovered Σε′ %v, want %v", got, want)
	}
	if got := after.Accountants["ozone"].Queries; got != 2 {
		t.Fatalf("recovered query count %d, want 2", got)
	}
	if rb.Ledger().Purchases() != 2 {
		t.Fatalf("ledger has %d purchases, want 2", rb.Ledger().Purchases())
	}
}

// TestRecoverEmptyDir: enabling durability on a directory with no prior
// state is a clean start, and an empty (zero-length) WAL file recovers
// to the same.
func TestRecoverEmptyDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walFileName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	b := durBroker(t, dir)
	if n := b.Ledger().Purchases(); n != 0 {
		t.Fatalf("empty WAL recovered %d purchases", n)
	}
	if err := b.Deposit("a", 5); err != nil {
		t.Fatalf("broker not usable after empty recovery: %v", err)
	}
}

// walPath appends raw bytes to dir's log for corruption tests.
func appendWAL(t *testing.T, dir string, raw []byte) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(raw); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// frameRecord encodes one record the way the WAL does.
func frameRecord(t *testing.T, r WALRecord) []byte {
	t.Helper()
	payload, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return frame(payload)
}

// TestRecoverTrailingGarbage: a torn tail (the bytes a crash left
// half-written) is truncated at the last valid record and the preceding
// records replay normally.
func TestRecoverTrailingGarbage(t *testing.T) {
	dir := t.TempDir()
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 1, Op: opDeposit, Customer: "alice", Amount: 40}))
	appendWAL(t, dir, []byte{0x00, 0x00, 0x00, 0x10, 0xde, 0xad}) // header promises 16 bytes, dies after 2

	b := durBroker(t, dir)
	if got := b.walletStore().Balance("alice"); got != 40 {
		t.Fatalf("balance %v, want 40 (valid prefix applied, garbage dropped)", got)
	}
	// The tail must be physically gone: the next append lands where the
	// garbage was, and a second recovery still sees a clean log.
	if err := b.Deposit("alice", 2); err != nil {
		t.Fatal(err)
	}
	if err := b.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	rb := durBroker(t, dir)
	if got := rb.walletStore().Balance("alice"); got != 42 {
		t.Fatalf("balance %v after second recovery, want 42", got)
	}
}

// TestRecoverChecksumMismatchMidFile: a flipped byte in the middle of
// the log invalidates that record AND everything after it — a valid-
// looking frame past a corrupt one is not trusted (its provenance is
// unknowable once the sequence is broken).
func TestRecoverChecksumMismatchMidFile(t *testing.T) {
	dir := t.TempDir()
	first := frameRecord(t, WALRecord{Seq: 1, Op: opDeposit, Customer: "a", Amount: 10})
	second := frameRecord(t, WALRecord{Seq: 2, Op: opDeposit, Customer: "a", Amount: 20})
	third := frameRecord(t, WALRecord{Seq: 3, Op: opDeposit, Customer: "a", Amount: 30})
	second[walHeaderSize+2] ^= 0xff // corrupt the payload; CRC now mismatches
	appendWAL(t, dir, first)
	appendWAL(t, dir, second)
	appendWAL(t, dir, third)

	b := durBroker(t, dir)
	if got := b.walletStore().Balance("a"); got != 10 {
		t.Fatalf("balance %v, want 10 (only the prefix before the corruption)", got)
	}
}

// TestRecoverSnapshotPlusWAL: records at or below the snapshot's
// LastSeq are already folded in and must not double-apply — the state a
// crash between compaction's snapshot rename and log truncate leaves.
func TestRecoverSnapshotPlusWAL(t *testing.T) {
	dir := t.TempDir()
	snap := &Snapshot{
		Balances: map[string]float64{"a": 100},
		LastSeq:  2,
	}
	if err := writeSnapshotFile(dir, snap); err != nil {
		t.Fatal(err)
	}
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 1, Op: opDeposit, Customer: "a", Amount: 60}))
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 2, Op: opDeposit, Customer: "a", Amount: 40}))
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 3, Op: opDeposit, Customer: "a", Amount: 5}))

	b := durBroker(t, dir)
	if got := b.walletStore().Balance("a"); got != 105 {
		t.Fatalf("balance %v, want 105 (snapshot 100 + only seq 3)", got)
	}
}

// TestReplaySkipsDanglingSale: a debit and spend with no receipt is a
// sale that crashed before release — the customer keeps the money and
// the budget stays unspent. A refunded sale nets to zero.
func TestReplaySkipsDanglingSale(t *testing.T) {
	dir := t.TempDir()
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 1, Op: opDeposit, Customer: "a", Amount: 50}))
	// Sale 1: dangling (no commit record).
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 2, Op: opDebit, Sale: 1, Customer: "a", Amount: 7}))
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 3, Op: opSpend, Sale: 1, Dataset: "ozone", Epsilon: 0.5}))
	// Sale 2: explicitly refunded.
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 4, Op: opDebit, Sale: 2, Customer: "a", Amount: 9}))
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 5, Op: opRefund, Sale: 2, Customer: "a", Amount: 9}))

	b := durBroker(t, dir)
	if got := b.walletStore().Balance("a"); got != 50 {
		t.Fatalf("balance %v, want 50 (dangling debit skipped, refund netted)", got)
	}
	snap := stateOf(t, b)
	if s := snap.Accountants["ozone"]; s.Spent != 0 || s.Queries != 0 {
		t.Fatalf("uncommitted spend leaked into the accountant: %+v", s)
	}
	// A fresh sale must not adopt sale id 1 or 2 and thereby commit the
	// dangling debit on the NEXT replay.
	if err := b.Deposit("a", 50); err != nil {
		t.Fatal(err)
	}
	durBuy(t, b, "a")
	if err := b.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	rb := durBroker(t, dir)
	if rb.Ledger().Purchases() != 1 {
		t.Fatalf("purchases %d after second recovery, want 1", rb.Ledger().Purchases())
	}
}

// TestEnableDurabilityRefusals: durability must attach before the
// broker serves (restoring over live books forks the record), only
// once, and never drop recovered money on the floor.
func TestEnableDurabilityRefusals(t *testing.T) {
	t.Run("already served", func(t *testing.T) {
		b, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
		if _, err := b.Buy(Request{Op: "buy", Dataset: "ozone", Customer: "c", L: 0, U: 200, Alpha: 0.2, Delta: 0.5}); err != nil {
			t.Fatal(err)
		}
		if err := b.EnableDurability(t.TempDir()); err == nil {
			t.Fatal("enabling durability on a broker with recorded sales must fail")
		}
	})
	t.Run("twice", func(t *testing.T) {
		dir := t.TempDir()
		b := durBroker(t, dir)
		if err := b.EnableDurability(dir); err == nil {
			t.Fatal("second EnableDurability must fail")
		}
	})
	t.Run("balances without wallets", func(t *testing.T) {
		dir := t.TempDir()
		appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 1, Op: opDeposit, Customer: "a", Amount: 5}))
		b, err := NewBroker(pricing.InverseVariance{C: 1e9})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.EnableDurability(dir); err == nil {
			t.Fatal("recovered balances with no wallets attached must fail, not vanish")
		}
	})
	t.Run("restore-state refused when durable", func(t *testing.T) {
		b := durBroker(t, t.TempDir())
		var buf bytes.Buffer
		if err := b.SaveState(&buf); err != nil {
			t.Fatal(err)
		}
		if err := b.RestoreState(&buf); err == nil {
			t.Fatal("RestoreState into a durable broker must fail")
		}
	})
}

// TestGroupCommit: one sale journals three records (debit, spend,
// receipt) but pays exactly one fsync.
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	b := durBroker(t, dir)
	if err := b.Deposit("a", 50); err != nil {
		t.Fatal(err)
	}
	var appends, fsyncs int
	b.durableStore().wal.hook = func(p walCrashPoint, n int) (int, bool) {
		switch p {
		case crashAppend:
			appends++
		case crashSyncFsync:
			fsyncs++
		}
		return 0, false
	}
	durBuy(t, b, "a")
	if appends != 3 || fsyncs != 1 {
		t.Fatalf("one sale cost %d appends and %d fsyncs, want 3 and 1 (group commit)", appends, fsyncs)
	}
}

// TestCompaction: a tiny threshold forces the log to fold into the
// snapshot mid-run; the books still recover exactly.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	b := durBroker(t, dir, WithCompactionThreshold(64))
	m := NewMetrics(telemetry.NewRegistry())
	b.SetTelemetry(m)
	if err := b.Deposit("a", 100); err != nil {
		t.Fatal(err)
	}
	var receipts []Receipt
	for i := 0; i < 3; i++ {
		receipts = append(receipts, *durBuy(t, b, "a").Receipt)
	}
	if got := m.walCompactions.Value(); got == 0 {
		t.Fatal("no compaction ran despite the 64-byte threshold")
	}
	want := stateOf(t, b)
	if err := b.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	// After a clean close the log is empty: everything lives in the
	// snapshot.
	raw, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 0 {
		t.Fatalf("log holds %d bytes after clean close, want 0 (compacted)", len(raw))
	}
	rb := durBroker(t, dir, WithCompactionThreshold(64))
	got := stateOf(t, rb)
	if got.Balances["a"] != want.Balances["a"] {
		t.Fatalf("balance %v, want %v", got.Balances["a"], want.Balances["a"])
	}
	if len(got.Receipts) != len(receipts) {
		t.Fatalf("%d receipts, want %d", len(got.Receipts), len(receipts))
	}
	for i := range receipts {
		if got.Receipts[i] != receipts[i] {
			t.Fatalf("receipt %d diverged: %+v vs %+v", i, got.Receipts[i], receipts[i])
		}
	}
	if got.Accountants["ozone"] != want.Accountants["ozone"] {
		t.Fatalf("accountant %+v, want %+v", got.Accountants["ozone"], want.Accountants["ozone"])
	}
}

// TestDecodeWAL exercises the frame scanner's stop conditions directly.
func TestDecodeWAL(t *testing.T) {
	good := frameRecord(t, WALRecord{Seq: 1, Op: opDeposit, Customer: "a", Amount: 1})
	cases := []struct {
		name  string
		raw   []byte
		want  int
		valid int64
	}{
		{"empty", nil, 0, 0},
		{"one record", good, 1, int64(len(good))},
		{"short header", append(append([]byte{}, good...), 0x00, 0x01), 1, int64(len(good))},
		{"absurd length", append(append([]byte{}, good...), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0), 1, int64(len(good))},
		{"zero length", append(append([]byte{}, good...), 0, 0, 0, 0, 0, 0, 0, 0), 1, int64(len(good))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, valid := decodeWAL(tc.raw)
			if len(recs) != tc.want || valid != tc.valid {
				t.Fatalf("decodeWAL: %d records valid to %d, want %d to %d", len(recs), valid, tc.want, tc.valid)
			}
		})
	}
	t.Run("bad crc", func(t *testing.T) {
		bad := append([]byte{}, good...)
		binary.BigEndian.PutUint32(bad[4:8], crc32.ChecksumIEEE([]byte("nope")))
		recs, valid := decodeWAL(bad)
		if len(recs) != 0 || valid != 0 {
			t.Fatalf("corrupt checksum accepted: %d records", len(recs))
		}
	})
}

// TestReplayRejectsCorruptValues: replay refuses records whose money or
// ε fields are NaN/Inf/negative rather than folding poison into the
// books.
func TestReplayRejectsCorruptValues(t *testing.T) {
	cases := []WALRecord{
		{Seq: 1, Op: opDeposit, Customer: "a", Amount: math.NaN()},
		{Seq: 1, Op: opDeposit, Customer: "a", Amount: math.Inf(1)},
		{Seq: 1, Op: opDeposit, Customer: "a", Amount: -3},
		{Seq: 1, Op: opDeposit, Customer: "", Amount: 3},
		{Seq: 1, Op: opRefund, Sale: 1, Customer: "a", Amount: math.NaN()},
		{Seq: 1, Op: "warp", Customer: "a", Amount: 3},
		{Seq: 1, Op: opReceipt, Sale: 1},
	}
	for _, rec := range cases {
		if _, err := replay(&Snapshot{}, []WALRecord{rec}); err == nil {
			t.Errorf("replay accepted corrupt record %+v", rec)
		}
	}
	// A sequence regression (records out of order) is corruption too.
	_, err := replay(&Snapshot{}, []WALRecord{
		{Seq: 2, Op: opDeposit, Customer: "a", Amount: 1},
		{Seq: 1, Op: opDeposit, Customer: "a", Amount: 1},
	})
	if err == nil {
		t.Error("replay accepted a sequence regression")
	}
}

// walReceipt builds a minimal valid receipt for hand-crafted logs.
func walReceipt(id int64, customer string, price, eps float64) *Receipt {
	return &Receipt{ID: id, Customer: customer, Dataset: "ozone", U: 200, Alpha: 0.2, Delta: 0.5, Variance: 1, Price: price, EpsilonPrime: eps, Coverage: 1}
}

// TestReplayOutOfOrderReceipts: two concurrent sales can journal their
// receipts out of id order (id assignment and the WAL append were
// separate critical sections). Recovery must fold such a log in id
// order instead of rejecting it — the regression that permanently
// locked a broker out of its own valid state.
func TestReplayOutOfOrderReceipts(t *testing.T) {
	dir := t.TempDir()
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 1, Op: opDeposit, Customer: "a", Amount: 50}))
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 2, Op: opDebit, Sale: 1, Customer: "a", Amount: 5}))
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 3, Op: opDebit, Sale: 2, Customer: "a", Amount: 7}))
	// Sale 2 wins the journaling race: its receipt (id 2) lands first.
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 4, Op: opReceipt, Sale: 2, Receipt: walReceipt(2, "a", 7, 0.4)}))
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 5, Op: opSpend, Sale: 1, Dataset: "ozone", Epsilon: 0.3}))
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 6, Op: opReceipt, Sale: 1, Receipt: walReceipt(1, "a", 5, 0.3)}))
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 7, Op: opSpend, Sale: 2, Dataset: "ozone", Epsilon: 0.4}))

	b := durBroker(t, dir)
	if got := b.Ledger().Purchases(); got != 2 {
		t.Fatalf("recovered %d purchases, want 2", got)
	}
	recs := b.Ledger().Receipts()
	if recs[0].ID != 1 || recs[1].ID != 2 {
		t.Fatalf("recovered receipt order [%d %d], want [1 2]", recs[0].ID, recs[1].ID)
	}
	if got := b.walletStore().Balance("a"); got != 38 {
		t.Fatalf("balance %v, want 38", got)
	}
	snap := stateOf(t, b)
	if s := snap.Accountants["ozone"]; !closeEnough(s.Spent, 0.7) || s.Queries != 2 {
		t.Fatalf("accountant %+v, want {0.7, 2}", s)
	}
	// The id sequence continues past the replayed maximum.
	if err := b.Deposit("a", 50); err != nil {
		t.Fatal(err)
	}
	if resp := durBuy(t, b, "a"); resp.Receipt.ID != 3 {
		t.Fatalf("next receipt id %d, want 3", resp.Receipt.ID)
	}
}

// TestReplayReceiptGap: a torn tail in a concurrent log can lose a
// lower-id receipt while a higher-id one survives. The surviving sale
// must recover (its customer was possibly acked) and the lost sale's
// debit must dangle harmlessly.
func TestReplayReceiptGap(t *testing.T) {
	dir := t.TempDir()
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 1, Op: opDeposit, Customer: "a", Amount: 50}))
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 2, Op: opDebit, Sale: 1, Customer: "a", Amount: 5}))
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 3, Op: opDebit, Sale: 2, Customer: "a", Amount: 7}))
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 4, Op: opReceipt, Sale: 2, Receipt: walReceipt(2, "a", 7, 0.4)}))
	// Sale 1's receipt (id 1) was torn off the tail.

	b := durBroker(t, dir)
	if got := b.Ledger().Purchases(); got != 1 {
		t.Fatalf("recovered %d purchases, want 1", got)
	}
	if got := b.walletStore().Balance("a"); got != 43 {
		t.Fatalf("balance %v, want 43 (sale 2 committed, sale 1 dangling)", got)
	}
	if err := b.Deposit("a", 10); err != nil {
		t.Fatal(err)
	}
	if resp := durBuy(t, b, "a"); resp.Receipt.ID != 3 {
		t.Fatalf("next receipt id %d, want 3 (past the replayed maximum)", resp.Receipt.ID)
	}
}

// TestConcurrentDurableBuysRecover hammers the durable buy path from
// many goroutines, then recovers crash-style (no clean close, straight
// from the live WAL bytes). Before receipt-id assignment and the WAL
// append shared a critical section, two racing sales could journal
// receipts out of id order and recovery would refuse the valid log.
func TestConcurrentDurableBuysRecover(t *testing.T) {
	dir := t.TempDir()
	b := durBroker(t, dir)
	const customers, buysEach = 4, 3
	deposited := 0.0
	for c := 0; c < customers; c++ {
		if err := b.Deposit(fmt.Sprintf("c%d", c), 100); err != nil {
			t.Fatal(err)
		}
		deposited += 100
	}
	var wg sync.WaitGroup
	for c := 0; c < customers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < buysEach; i++ {
				if _, err := b.Buy(Request{
					Op: "buy", Dataset: "ozone", Customer: fmt.Sprintf("c%d", c),
					L: 0, U: 200, Alpha: 0.2, Delta: 0.5,
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	// No CloseDurability: recovery starts from whatever the group
	// commits made durable, the way a kill -9 leaves it.
	rb := durBroker(t, dir)
	if got, want := rb.Ledger().Purchases(), customers*buysEach; got != want {
		t.Fatalf("recovered %d purchases, want %d", got, want)
	}
	recs := rb.Ledger().Receipts()
	for i, r := range recs {
		if r.ID != int64(i)+1 {
			t.Fatalf("receipt %d has id %d, want %d (unique, gapless, id-ordered)", i, r.ID, i+1)
		}
	}
	// Money conservation: every coin is either still in a wallet or in
	// the ledger's revenue.
	total := rb.Ledger().Revenue()
	for _, c := range rb.walletStore().Customers() {
		total += rb.walletStore().Balance(c)
	}
	if !closeEnough(total, deposited) {
		t.Fatalf("recovered books hold %v, deposited %v", total, deposited)
	}
}

// TestReplayRejectsDuplicateReceiptIDs: order tolerance must not admit
// the same receipt id twice.
func TestReplayRejectsDuplicateReceiptIDs(t *testing.T) {
	_, err := replay(&Snapshot{}, []WALRecord{
		{Seq: 1, Op: opReceipt, Sale: 1, Receipt: walReceipt(1, "a", 5, 0.3)},
		{Seq: 2, Op: opReceipt, Sale: 2, Receipt: walReceipt(1, "b", 7, 0.4)},
	})
	if err == nil {
		t.Fatal("replay accepted a duplicate receipt id")
	}
}

// TestReplayAppliesWithheldSpend: a spend-withheld record applies even
// though its sale never commits — with a refund (the acked rejection)
// and without one (a crash mid-rollback, where the conservative charge
// still stands).
func TestReplayAppliesWithheldSpend(t *testing.T) {
	t.Run("refunded", func(t *testing.T) {
		dir := t.TempDir()
		appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 1, Op: opDeposit, Customer: "a", Amount: 50}))
		appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 2, Op: opDebit, Sale: 1, Customer: "a", Amount: 5}))
		appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 3, Op: opSpendHeld, Sale: 1, Dataset: "ozone", Epsilon: 0.3}))
		appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 4, Op: opRefund, Sale: 1, Customer: "a", Amount: 5}))

		b := durBroker(t, dir)
		if got := b.walletStore().Balance("a"); got != 50 {
			t.Fatalf("balance %v, want 50 (debit/refund nets to zero)", got)
		}
		snap := stateOf(t, b)
		if s := snap.Accountants["ozone"]; !closeEnough(s.Spent, 0.3) || s.Queries != 1 {
			t.Fatalf("withheld spend lost on replay: %+v, want {0.3, 1}", s)
		}
	})
	t.Run("dangling", func(t *testing.T) {
		dir := t.TempDir()
		appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 1, Op: opDeposit, Customer: "a", Amount: 50}))
		appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 2, Op: opDebit, Sale: 1, Customer: "a", Amount: 5}))
		appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 3, Op: opSpendHeld, Sale: 1, Dataset: "ozone", Epsilon: 0.3}))

		b := durBroker(t, dir)
		if got := b.walletStore().Balance("a"); got != 50 {
			t.Fatalf("balance %v, want 50 (unresolved debit skipped)", got)
		}
		snap := stateOf(t, b)
		if s := snap.Accountants["ozone"]; !closeEnough(s.Spent, 0.3) || s.Queries != 1 {
			t.Fatalf("withheld spend lost on replay: %+v, want {0.3, 1}", s)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		if _, err := replay(&Snapshot{}, []WALRecord{{Seq: 1, Op: opSpendHeld, Sale: 1, Dataset: "", Epsilon: 0.3}}); err == nil {
			t.Fatal("replay accepted a spend-withheld record with no dataset")
		}
	})
}

// TestWithheldSpendSurvivesRestart: the live accountant is charged for
// a sale the per-customer cap withholds; a restart must not refund that
// budget — recovered Σε′ must equal the live run's.
func TestWithheldSpendSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	b := durBroker(t, dir)
	if err := b.Deposit("alice", 50); err != nil {
		t.Fatal(err)
	}
	r1 := durBuy(t, b, "alice")
	// Cap at 1.5ε′: alice's second identical purchase is answered (and
	// charged) but withheld.
	if err := b.SetCustomerPrivacyCap(1.5 * r1.EpsilonPrime); err != nil {
		t.Fatal(err)
	}
	_, err := b.Buy(Request{Op: "buy", Dataset: "ozone", Customer: "alice", L: 0, U: 200, Alpha: 0.2, Delta: 0.5})
	if err == nil {
		t.Fatal("buy past the per-customer cap released an answer")
	}
	live := stateOf(t, b)
	if s := live.Accountants["ozone"]; !closeEnough(s.Spent, 2*r1.EpsilonPrime) || s.Queries != 2 {
		t.Fatalf("live accountant %+v, want the withheld charge included (%v, 2)", s, 2*r1.EpsilonPrime)
	}
	if err := b.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	rb := durBroker(t, dir)
	got := stateOf(t, rb)
	if s, want := got.Accountants["ozone"], live.Accountants["ozone"]; !closeEnough(s.Spent, want.Spent) || s.Queries != want.Queries {
		t.Fatalf("recovered accountant %+v, live %+v: restart refunded a withheld charge", s, want)
	}
	if gotBal, want := got.Balances["alice"], live.Balances["alice"]; !closeEnough(gotBal, want) {
		t.Fatalf("recovered balance %v, live %v", gotBal, want)
	}
	if rb.Ledger().Purchases() != 1 {
		t.Fatalf("recovered %d purchases, want 1 (the withheld sale must not commit)", rb.Ledger().Purchases())
	}
}

// TestDepositCreditAfterDurable: the balance must not move before the
// grant's fsync returns — the old credit-first order let a concurrent
// debit consume undurable funds, and the rollback then drove the
// balance negative.
func TestDepositCreditAfterDurable(t *testing.T) {
	dir := t.TempDir()
	b := durBroker(t, dir)
	var atFsync float64
	b.durableStore().wal.hook = func(p walCrashPoint, n int) (int, bool) {
		if p == crashSyncFsync {
			// Mid-deposit, pre-fsync: the credit must not be visible yet.
			atFsync = b.walletStore().Balance("a")
			return 0, true // and the fsync dies
		}
		return 0, false
	}
	if err := b.Deposit("a", 50); !errors.Is(err, errWALCrashed) {
		t.Fatalf("deposit over a dying WAL returned %v, want errWALCrashed", err)
	}
	if atFsync != 0 {
		t.Fatalf("balance was %v before the grant was durable, want 0", atFsync)
	}
	if got := b.walletStore().Balance("a"); got != 0 {
		t.Fatalf("failed deposit left balance %v, want 0", got)
	}
}

// TestDepositRejectsNonFinite: a NaN grant passes a plain `<= 0` check
// but would journal a record replay refuses; it must be rejected before
// anything is written.
func TestDepositRejectsNonFinite(t *testing.T) {
	b := durBroker(t, t.TempDir())
	for _, amount := range []float64{math.NaN(), math.Inf(1)} {
		if err := b.Deposit("a", amount); err == nil {
			t.Fatalf("deposit of %v accepted", amount)
		}
	}
	if err := b.CloseDurability(); err != nil {
		t.Fatal(err)
	}
}

// TestWALDeadAfterCrash: once the log dies, every further mutation is
// refused — the broker cannot silently diverge from its journal.
func TestWALDeadAfterCrash(t *testing.T) {
	dir := t.TempDir()
	b := durBroker(t, dir)
	if err := b.Deposit("a", 50); err != nil {
		t.Fatal(err)
	}
	b.durableStore().wal.hook = func(p walCrashPoint, n int) (int, bool) {
		return 0, p == crashSyncFsync
	}
	if err := b.Deposit("a", 5); !errors.Is(err, errWALCrashed) {
		t.Fatalf("deposit over a dying WAL returned %v, want errWALCrashed", err)
	}
	if _, err := b.Buy(Request{Op: "buy", Dataset: "ozone", Customer: "a", L: 0, U: 200, Alpha: 0.2, Delta: 0.5}); !errors.Is(err, errWALCrashed) {
		t.Fatalf("buy over a dead WAL returned %v, want errWALCrashed", err)
	}
	// In-memory balance matches what the customer was told: the failed
	// deposit rolled back.
	if got := b.walletStore().Balance("a"); got != 50 {
		t.Fatalf("balance %v after refused mutations, want 50", got)
	}
}
