package market

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"privrange/internal/core"
	"privrange/internal/dataset"
	"privrange/internal/dp"
	"privrange/internal/iot"
	"privrange/internal/pricing"
	"privrange/internal/telemetry"
)

// durEngine builds a small, fast, deterministic engine with a privacy
// accountant attached — durability tests care about the books, not the
// estimates, so the series stays tiny.
func durEngine(t *testing.T, p dataset.Pollutant, seed int64, budget float64) (*core.Engine, int) {
	t.Helper()
	series, err := dataset.GenerateSeries(p, dataset.GenerateConfig{Seed: seed, Records: 120})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := series.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := iot.New(parts, iot.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	acct, err := dp.NewAccountant(budget)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(nw, core.WithSeed(seed), core.WithAccountant(acct))
	if err != nil {
		t.Fatal(err)
	}
	return eng, series.Len()
}

// durBroker builds a prepaid broker with durability rooted at dir and
// one accountant-backed dataset, mirroring the production construction
// order: wallets → EnableDurability → Register.
func durBroker(t *testing.T, dir string, opts ...DurabilityOption) *Broker {
	t.Helper()
	// C=100 keeps prices in single digits for the tiny test series, so
	// modest deposits fund several sales.
	b, err := NewBroker(pricing.InverseVariance{C: 100})
	if err != nil {
		t.Fatal(err)
	}
	b.AttachWallets(&Wallets{})
	if err := b.EnableDurability(dir, opts...); err != nil {
		t.Fatal(err)
	}
	eng, n := durEngine(t, dataset.Ozone, 7, 0)
	if err := b.Register("ozone", eng, n, 4); err != nil {
		t.Fatal(err)
	}
	return b
}

func durBuy(t *testing.T, b *Broker, customer string) *Response {
	t.Helper()
	resp, err := b.Buy(Request{
		Op: "buy", Dataset: "ozone", Customer: customer,
		L: 0, U: 200, Alpha: 0.2, Delta: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// stateOf extracts the broker's full durable state through SaveState.
func stateOf(t *testing.T, b *Broker) *Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := b.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	return &snap
}

// TestDurableRoundTrip: trade, shut down cleanly, recover into a fresh
// broker — money, receipts and released ε come back bit-identical.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := durBroker(t, dir)
	if err := b.Deposit("alice", 50); err != nil {
		t.Fatal(err)
	}
	r1 := durBuy(t, b, "alice")
	r2 := durBuy(t, b, "alice")
	before := stateOf(t, b)
	if err := b.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	rb := durBroker(t, dir)
	after := stateOf(t, rb)
	if len(after.Receipts) != 2 || after.Receipts[0] != *r1.Receipt || after.Receipts[1] != *r2.Receipt {
		t.Fatalf("receipts did not survive: %+v", after.Receipts)
	}
	if got, want := after.Balances["alice"], before.Balances["alice"]; got != want {
		t.Fatalf("balance %v after recovery, want %v", got, want)
	}
	if got, want := after.Accountants["ozone"].Spent, r1.EpsilonPrime+r2.EpsilonPrime; got != want {
		t.Fatalf("recovered Σε′ %v, want %v", got, want)
	}
	if got := after.Accountants["ozone"].Queries; got != 2 {
		t.Fatalf("recovered query count %d, want 2", got)
	}
	if rb.Ledger().Purchases() != 2 {
		t.Fatalf("ledger has %d purchases, want 2", rb.Ledger().Purchases())
	}
}

// TestRecoverEmptyDir: enabling durability on a directory with no prior
// state is a clean start, and an empty (zero-length) WAL file recovers
// to the same.
func TestRecoverEmptyDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walFileName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	b := durBroker(t, dir)
	if n := b.Ledger().Purchases(); n != 0 {
		t.Fatalf("empty WAL recovered %d purchases", n)
	}
	if err := b.Deposit("a", 5); err != nil {
		t.Fatalf("broker not usable after empty recovery: %v", err)
	}
}

// walPath appends raw bytes to dir's log for corruption tests.
func appendWAL(t *testing.T, dir string, raw []byte) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(raw); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// frameRecord encodes one record the way the WAL does.
func frameRecord(t *testing.T, r WALRecord) []byte {
	t.Helper()
	payload, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return frame(payload)
}

// TestRecoverTrailingGarbage: a torn tail (the bytes a crash left
// half-written) is truncated at the last valid record and the preceding
// records replay normally.
func TestRecoverTrailingGarbage(t *testing.T) {
	dir := t.TempDir()
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 1, Op: opDeposit, Customer: "alice", Amount: 40}))
	appendWAL(t, dir, []byte{0x00, 0x00, 0x00, 0x10, 0xde, 0xad}) // header promises 16 bytes, dies after 2

	b := durBroker(t, dir)
	if got := b.walletStore().Balance("alice"); got != 40 {
		t.Fatalf("balance %v, want 40 (valid prefix applied, garbage dropped)", got)
	}
	// The tail must be physically gone: the next append lands where the
	// garbage was, and a second recovery still sees a clean log.
	if err := b.Deposit("alice", 2); err != nil {
		t.Fatal(err)
	}
	if err := b.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	rb := durBroker(t, dir)
	if got := rb.walletStore().Balance("alice"); got != 42 {
		t.Fatalf("balance %v after second recovery, want 42", got)
	}
}

// TestRecoverChecksumMismatchMidFile: a flipped byte in the middle of
// the log invalidates that record AND everything after it — a valid-
// looking frame past a corrupt one is not trusted (its provenance is
// unknowable once the sequence is broken).
func TestRecoverChecksumMismatchMidFile(t *testing.T) {
	dir := t.TempDir()
	first := frameRecord(t, WALRecord{Seq: 1, Op: opDeposit, Customer: "a", Amount: 10})
	second := frameRecord(t, WALRecord{Seq: 2, Op: opDeposit, Customer: "a", Amount: 20})
	third := frameRecord(t, WALRecord{Seq: 3, Op: opDeposit, Customer: "a", Amount: 30})
	second[walHeaderSize+2] ^= 0xff // corrupt the payload; CRC now mismatches
	appendWAL(t, dir, first)
	appendWAL(t, dir, second)
	appendWAL(t, dir, third)

	b := durBroker(t, dir)
	if got := b.walletStore().Balance("a"); got != 10 {
		t.Fatalf("balance %v, want 10 (only the prefix before the corruption)", got)
	}
}

// TestRecoverSnapshotPlusWAL: records at or below the snapshot's
// LastSeq are already folded in and must not double-apply — the state a
// crash between compaction's snapshot rename and log truncate leaves.
func TestRecoverSnapshotPlusWAL(t *testing.T) {
	dir := t.TempDir()
	snap := &Snapshot{
		Balances: map[string]float64{"a": 100},
		LastSeq:  2,
	}
	if err := writeSnapshotFile(dir, snap); err != nil {
		t.Fatal(err)
	}
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 1, Op: opDeposit, Customer: "a", Amount: 60}))
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 2, Op: opDeposit, Customer: "a", Amount: 40}))
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 3, Op: opDeposit, Customer: "a", Amount: 5}))

	b := durBroker(t, dir)
	if got := b.walletStore().Balance("a"); got != 105 {
		t.Fatalf("balance %v, want 105 (snapshot 100 + only seq 3)", got)
	}
}

// TestReplaySkipsDanglingSale: a debit and spend with no receipt is a
// sale that crashed before release — the customer keeps the money and
// the budget stays unspent. A refunded sale nets to zero.
func TestReplaySkipsDanglingSale(t *testing.T) {
	dir := t.TempDir()
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 1, Op: opDeposit, Customer: "a", Amount: 50}))
	// Sale 1: dangling (no commit record).
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 2, Op: opDebit, Sale: 1, Customer: "a", Amount: 7}))
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 3, Op: opSpend, Sale: 1, Dataset: "ozone", Epsilon: 0.5}))
	// Sale 2: explicitly refunded.
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 4, Op: opDebit, Sale: 2, Customer: "a", Amount: 9}))
	appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 5, Op: opRefund, Sale: 2, Customer: "a", Amount: 9}))

	b := durBroker(t, dir)
	if got := b.walletStore().Balance("a"); got != 50 {
		t.Fatalf("balance %v, want 50 (dangling debit skipped, refund netted)", got)
	}
	snap := stateOf(t, b)
	if s := snap.Accountants["ozone"]; s.Spent != 0 || s.Queries != 0 {
		t.Fatalf("uncommitted spend leaked into the accountant: %+v", s)
	}
	// A fresh sale must not adopt sale id 1 or 2 and thereby commit the
	// dangling debit on the NEXT replay.
	if err := b.Deposit("a", 50); err != nil {
		t.Fatal(err)
	}
	durBuy(t, b, "a")
	if err := b.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	rb := durBroker(t, dir)
	if rb.Ledger().Purchases() != 1 {
		t.Fatalf("purchases %d after second recovery, want 1", rb.Ledger().Purchases())
	}
}

// TestEnableDurabilityRefusals: durability must attach before the
// broker serves (restoring over live books forks the record), only
// once, and never drop recovered money on the floor.
func TestEnableDurabilityRefusals(t *testing.T) {
	t.Run("already served", func(t *testing.T) {
		b, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
		if _, err := b.Buy(Request{Op: "buy", Dataset: "ozone", Customer: "c", L: 0, U: 200, Alpha: 0.2, Delta: 0.5}); err != nil {
			t.Fatal(err)
		}
		if err := b.EnableDurability(t.TempDir()); err == nil {
			t.Fatal("enabling durability on a broker with recorded sales must fail")
		}
	})
	t.Run("twice", func(t *testing.T) {
		dir := t.TempDir()
		b := durBroker(t, dir)
		if err := b.EnableDurability(dir); err == nil {
			t.Fatal("second EnableDurability must fail")
		}
	})
	t.Run("balances without wallets", func(t *testing.T) {
		dir := t.TempDir()
		appendWAL(t, dir, frameRecord(t, WALRecord{Seq: 1, Op: opDeposit, Customer: "a", Amount: 5}))
		b, err := NewBroker(pricing.InverseVariance{C: 1e9})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.EnableDurability(dir); err == nil {
			t.Fatal("recovered balances with no wallets attached must fail, not vanish")
		}
	})
	t.Run("restore-state refused when durable", func(t *testing.T) {
		b := durBroker(t, t.TempDir())
		var buf bytes.Buffer
		if err := b.SaveState(&buf); err != nil {
			t.Fatal(err)
		}
		if err := b.RestoreState(&buf); err == nil {
			t.Fatal("RestoreState into a durable broker must fail")
		}
	})
}

// TestGroupCommit: one sale journals three records (debit, spend,
// receipt) but pays exactly one fsync.
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	b := durBroker(t, dir)
	if err := b.Deposit("a", 50); err != nil {
		t.Fatal(err)
	}
	var appends, fsyncs int
	b.durableStore().wal.hook = func(p walCrashPoint, n int) (int, bool) {
		switch p {
		case crashAppend:
			appends++
		case crashSyncFsync:
			fsyncs++
		}
		return 0, false
	}
	durBuy(t, b, "a")
	if appends != 3 || fsyncs != 1 {
		t.Fatalf("one sale cost %d appends and %d fsyncs, want 3 and 1 (group commit)", appends, fsyncs)
	}
}

// TestCompaction: a tiny threshold forces the log to fold into the
// snapshot mid-run; the books still recover exactly.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	b := durBroker(t, dir, WithCompactionThreshold(64))
	m := NewMetrics(telemetry.NewRegistry())
	b.SetTelemetry(m)
	if err := b.Deposit("a", 100); err != nil {
		t.Fatal(err)
	}
	var receipts []Receipt
	for i := 0; i < 3; i++ {
		receipts = append(receipts, *durBuy(t, b, "a").Receipt)
	}
	if got := m.walCompactions.Value(); got == 0 {
		t.Fatal("no compaction ran despite the 64-byte threshold")
	}
	want := stateOf(t, b)
	if err := b.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	// After a clean close the log is empty: everything lives in the
	// snapshot.
	raw, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 0 {
		t.Fatalf("log holds %d bytes after clean close, want 0 (compacted)", len(raw))
	}
	rb := durBroker(t, dir, WithCompactionThreshold(64))
	got := stateOf(t, rb)
	if got.Balances["a"] != want.Balances["a"] {
		t.Fatalf("balance %v, want %v", got.Balances["a"], want.Balances["a"])
	}
	if len(got.Receipts) != len(receipts) {
		t.Fatalf("%d receipts, want %d", len(got.Receipts), len(receipts))
	}
	for i := range receipts {
		if got.Receipts[i] != receipts[i] {
			t.Fatalf("receipt %d diverged: %+v vs %+v", i, got.Receipts[i], receipts[i])
		}
	}
	if got.Accountants["ozone"] != want.Accountants["ozone"] {
		t.Fatalf("accountant %+v, want %+v", got.Accountants["ozone"], want.Accountants["ozone"])
	}
}

// TestDecodeWAL exercises the frame scanner's stop conditions directly.
func TestDecodeWAL(t *testing.T) {
	good := frameRecord(t, WALRecord{Seq: 1, Op: opDeposit, Customer: "a", Amount: 1})
	cases := []struct {
		name  string
		raw   []byte
		want  int
		valid int64
	}{
		{"empty", nil, 0, 0},
		{"one record", good, 1, int64(len(good))},
		{"short header", append(append([]byte{}, good...), 0x00, 0x01), 1, int64(len(good))},
		{"absurd length", append(append([]byte{}, good...), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0), 1, int64(len(good))},
		{"zero length", append(append([]byte{}, good...), 0, 0, 0, 0, 0, 0, 0, 0), 1, int64(len(good))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, valid := decodeWAL(tc.raw)
			if len(recs) != tc.want || valid != tc.valid {
				t.Fatalf("decodeWAL: %d records valid to %d, want %d to %d", len(recs), valid, tc.want, tc.valid)
			}
		})
	}
	t.Run("bad crc", func(t *testing.T) {
		bad := append([]byte{}, good...)
		binary.BigEndian.PutUint32(bad[4:8], crc32.ChecksumIEEE([]byte("nope")))
		recs, valid := decodeWAL(bad)
		if len(recs) != 0 || valid != 0 {
			t.Fatalf("corrupt checksum accepted: %d records", len(recs))
		}
	})
}

// TestReplayRejectsCorruptValues: replay refuses records whose money or
// ε fields are NaN/Inf/negative rather than folding poison into the
// books.
func TestReplayRejectsCorruptValues(t *testing.T) {
	cases := []WALRecord{
		{Seq: 1, Op: opDeposit, Customer: "a", Amount: math.NaN()},
		{Seq: 1, Op: opDeposit, Customer: "a", Amount: math.Inf(1)},
		{Seq: 1, Op: opDeposit, Customer: "a", Amount: -3},
		{Seq: 1, Op: opDeposit, Customer: "", Amount: 3},
		{Seq: 1, Op: opRefund, Sale: 1, Customer: "a", Amount: math.NaN()},
		{Seq: 1, Op: "warp", Customer: "a", Amount: 3},
		{Seq: 1, Op: opReceipt, Sale: 1},
	}
	for _, rec := range cases {
		if _, err := replay(&Snapshot{}, []WALRecord{rec}); err == nil {
			t.Errorf("replay accepted corrupt record %+v", rec)
		}
	}
	// A sequence regression (records out of order) is corruption too.
	_, err := replay(&Snapshot{}, []WALRecord{
		{Seq: 2, Op: opDeposit, Customer: "a", Amount: 1},
		{Seq: 1, Op: opDeposit, Customer: "a", Amount: 1},
	})
	if err == nil {
		t.Error("replay accepted a sequence regression")
	}
}

// TestWALDeadAfterCrash: once the log dies, every further mutation is
// refused — the broker cannot silently diverge from its journal.
func TestWALDeadAfterCrash(t *testing.T) {
	dir := t.TempDir()
	b := durBroker(t, dir)
	if err := b.Deposit("a", 50); err != nil {
		t.Fatal(err)
	}
	b.durableStore().wal.hook = func(p walCrashPoint, n int) (int, bool) {
		return 0, p == crashSyncFsync
	}
	if err := b.Deposit("a", 5); !errors.Is(err, errWALCrashed) {
		t.Fatalf("deposit over a dying WAL returned %v, want errWALCrashed", err)
	}
	if _, err := b.Buy(Request{Op: "buy", Dataset: "ozone", Customer: "a", L: 0, U: 200, Alpha: 0.2, Delta: 0.5}); !errors.Is(err, errWALCrashed) {
		t.Fatalf("buy over a dead WAL returned %v, want errWALCrashed", err)
	}
	// In-memory balance matches what the customer was told: the failed
	// deposit rolled back.
	if got := b.walletStore().Balance("a"); got != 50 {
		t.Fatalf("balance %v after refused mutations, want 50", got)
	}
}
