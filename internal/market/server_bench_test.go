package market

import (
	"sync"
	"testing"
	"time"

	"privrange/internal/pricing"
)

// benchServer stands up a real broker + server + client pair for the
// transport benchmarks.
func benchServer(b *testing.B, srvOpts []ServerOption, dialOpts []DialOption) *Client {
	b.Helper()
	broker, _ := buildBroker(b, pricing.InverseVariance{C: 1e9})
	srv, err := Serve(broker, "127.0.0.1:0", srvOpts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	client, err := Dial(srv.Addr(), append([]DialOption{WithRequestTimeout(30 * time.Second)}, dialOpts...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() })
	return client
}

// BenchmarkServerSerialQuote is the baseline: one blocking exchange at
// a time on the legacy (id-less) client.
func BenchmarkServerSerialQuote(b *testing.B) {
	client := benchServer(b, nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := client.Quote("ozone", 0.05, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerPipelinedQuote keeps many requests in flight on one
// connection; the gap to the serial baseline is the pipelining win.
func BenchmarkServerPipelinedQuote(b *testing.B) {
	client := benchServer(b, nil, []DialOption{WithPipelining()})
	const window = 32
	sem := make(chan struct{}, window)
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if _, _, err := client.Quote("ozone", 0.05, 0.9); err != nil {
				b.Error(err)
			}
		}()
	}
	wg.Wait()
}

// The deadline pair measures satellite (b): re-arming the connection
// deadline on every frame (eager, the old behaviour) versus only when
// a quarter of the idle window has elapsed (lazy, the default). The
// workload is the cheapest op so the SetDeadline syscall shows up.
func BenchmarkServerDeadlineLazy(b *testing.B) {
	client := benchServer(b, nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Catalog(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerDeadlineEager(b *testing.B) {
	client := benchServer(b, []ServerOption{withEagerDeadline()}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Catalog(); err != nil {
			b.Fatal(err)
		}
	}
}
