package market

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"privrange/internal/core"
	"privrange/internal/dataset"
	"privrange/internal/dp"
	"privrange/internal/iot"
	"privrange/internal/pricing"
)

// oracleBroker builds a prepaid broker over an identically-seeded
// deployment every time it is called with the same seed: the coalesced
// run and its serial oracle must start from bit-identical worlds.
func oracleBroker(t *testing.T, seed int64) (*Broker, *dp.Accountant) {
	t.Helper()
	b, err := NewBroker(pricing.InverseVariance{C: 100})
	if err != nil {
		t.Fatal(err)
	}
	b.AttachWallets(&Wallets{})
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: seed, Records: dataset.CityPulseRecords})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := series.Partition(8)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := iot.New(parts, iot.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	acct, err := dp.NewAccountant(0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(nw, core.WithSeed(seed), core.WithAccountant(acct))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Register("ozone", eng, series.Len(), 8); err != nil {
		t.Fatal(err)
	}
	return b, acct
}

// TestSellBatchMatchesSerialOracle runs one deterministic batch sale
// and demands the books come out bit-for-bit identical to executing
// the same buys serially in slice order on a fresh same-seed broker:
// values, prices, ε′, receipt ids, wallet balances, accountant spend.
func TestSellBatchMatchesSerialOracle(t *testing.T) {
	t.Parallel()
	const seed = 97
	customers := []string{"alice", "bob", "alice", "carol", "bob", "alice"}
	reqs := make([]Request, len(customers))
	for i, cust := range customers {
		reqs[i] = Request{
			Op: "buy", Dataset: "ozone", Customer: cust,
			L: float64(10 * i), U: float64(100 + 20*i),
			Alpha: 0.05, Delta: 0.9,
		}
	}
	deposit := func(b *Broker) {
		for _, cust := range []string{"alice", "bob", "carol"} {
			if err := b.Deposit(cust, 1000); err != nil {
				t.Fatal(err)
			}
		}
	}

	batched, batchedAcct := oracleBroker(t, seed)
	deposit(batched)
	results := batched.sellBatch(append([]Request(nil), reqs...), nil)

	serial, serialAcct := oracleBroker(t, seed)
	deposit(serial)
	for i := range reqs {
		want, werr := serial.Buy(reqs[i])
		got := results[i]
		if (got.err == nil) != (werr == nil) {
			t.Fatalf("sale %d: err %v, oracle %v", i, got.err, werr)
		}
		if werr != nil {
			continue
		}
		if got.resp.Value != want.Value {
			t.Errorf("sale %d: value %v, oracle %v", i, got.resp.Value, want.Value)
		}
		if got.resp.Price != want.Price || got.resp.EpsilonPrime != want.EpsilonPrime {
			t.Errorf("sale %d: price/ε′ %v/%v, oracle %v/%v",
				i, got.resp.Price, got.resp.EpsilonPrime, want.Price, want.EpsilonPrime)
		}
		if *got.resp.Receipt != *want.Receipt {
			t.Errorf("sale %d: receipt %+v, oracle %+v", i, *got.resp.Receipt, *want.Receipt)
		}
	}
	if batchedAcct.Spent() != serialAcct.Spent() {
		t.Errorf("ε spend %v, oracle %v", batchedAcct.Spent(), serialAcct.Spent())
	}
	for _, cust := range []string{"alice", "bob", "carol"} {
		if gb, wb := batched.walletStore().Balance(cust), serial.walletStore().Balance(cust); gb != wb {
			t.Errorf("%s balance %v, oracle %v", cust, gb, wb)
		}
	}
}

// TestSellBatchMixedOutcomes proves per-sale failure isolation matches
// the serial path exactly: an invalid request, an unfunded customer and
// a capped customer each fail with the serial path's error while their
// batch-mates settle with the serial path's exact values and books.
func TestSellBatchMixedOutcomes(t *testing.T) {
	t.Parallel()
	const seed = 131
	// Probe ε′ on a throwaway same-seed broker so the cap can be sized
	// to admit exactly two of dave's sales.
	probe, _ := oracleBroker(t, seed)
	if err := probe.Deposit("p", 1000); err != nil {
		t.Fatal(err)
	}
	pr, err := probe.Buy(Request{Op: "buy", Dataset: "ozone", Customer: "p", L: 0, U: 100, Alpha: 0.05, Delta: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	cap := pr.EpsilonPrime * 2.5

	reqs := []Request{
		{Op: "buy", Dataset: "ozone", Customer: "dave", L: 0, U: 100, Alpha: 0.05, Delta: 0.9},
		{Op: "buy", Dataset: "ozone", Customer: "dave", L: 200, U: 90, Alpha: 0.05, Delta: 0.9}, // invalid: L > U
		{Op: "buy", Dataset: "ozone", Customer: "pauper", L: 0, U: 50, Alpha: 0.05, Delta: 0.9}, // unfunded
		{Op: "buy", Dataset: "ozone", Customer: "dave", L: 50, U: 150, Alpha: 0.05, Delta: 0.9},
		{Op: "buy", Dataset: "ozone", Customer: "dave", L: 10, U: 90, Alpha: 0.05, Delta: 0.9}, // 3rd sale: over cap
	}
	setup := func(b *Broker) {
		if err := b.SetCustomerPrivacyCap(cap); err != nil {
			t.Fatal(err)
		}
		if err := b.Deposit("dave", 1000); err != nil {
			t.Fatal(err)
		}
	}

	batched, batchedAcct := oracleBroker(t, seed)
	setup(batched)
	results := batched.sellBatch(append([]Request(nil), reqs...), nil)

	serial, serialAcct := oracleBroker(t, seed)
	setup(serial)
	for i := range reqs {
		want, werr := serial.Buy(reqs[i])
		got := results[i]
		if (got.err == nil) != (werr == nil) {
			t.Fatalf("sale %d: err %v, oracle %v", i, got.err, werr)
		}
		if werr != nil {
			if got.err.Error() != werr.Error() {
				t.Errorf("sale %d: err %q, oracle %q", i, got.err, werr)
			}
			continue
		}
		if got.resp.Value != want.Value || *got.resp.Receipt != *want.Receipt {
			t.Errorf("sale %d: %+v, oracle %+v", i, got.resp, want)
		}
	}
	if got, want := results[1].err, "L > U"; got == nil || !strings.Contains(got.Error(), want) {
		t.Errorf("sale 1: want validation error, got %v", got)
	}
	if got := results[2].err; got == nil || !strings.Contains(got.Error(), "needs") {
		t.Errorf("sale 2: want funds error, got %v", got)
	}
	if got := results[4].err; got == nil || !strings.Contains(got.Error(), "privacy cap") {
		t.Errorf("sale 4: want cap error, got %v", got)
	}
	// The withheld sale still charged the dataset accountant — exactly
	// like the serial path.
	if batchedAcct.Spent() != serialAcct.Spent() {
		t.Errorf("ε spend %v, oracle %v", batchedAcct.Spent(), serialAcct.Spent())
	}
	if gb, wb := batched.walletStore().Balance("dave"), serial.walletStore().Balance("dave"); gb != wb {
		t.Errorf("dave balance %v, oracle %v", gb, wb)
	}
}

// TestCoalescedConcurrentBuysMatchSerialOracle is the tentpole
// acceptance test: a concurrent protocol workload through the
// coalescer, then a serial replay of the same buys in receipt-id order
// on a fresh same-seed broker. The coalescer's single executor
// totally orders batch commits and each batch releases and records in
// slice order, so receipt order IS the linearization — the replay must
// reproduce every released value, receipt, balance and the accountant
// total bit-for-bit (one draw and one charge per query).
func TestCoalescedConcurrentBuysMatchSerialOracle(t *testing.T) {
	t.Parallel()
	const (
		seed    = 211
		workers = 8
		perW    = 6
	)
	customers := []string{"alice", "bob", "carol", "dave"}
	deposit := func(b *Broker) {
		for _, cust := range customers {
			if err := b.Deposit(cust, 10_000); err != nil {
				t.Fatal(err)
			}
		}
	}

	coalesced, coalescedAcct := oracleBroker(t, seed)
	deposit(coalesced)
	co := coalesced.EnableCoalescing(CoalesceConfig{Window: 2 * time.Millisecond, MaxBatch: 16})
	defer co.Close()

	type trade struct {
		req  Request
		resp *Response
	}
	trades := make([]trade, workers*perW)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perW; j++ {
				req := Request{
					Op: "buy", Dataset: "ozone",
					Customer: customers[(w+j)%len(customers)],
					L:        float64(5 * ((w*perW + j) % 13)),
					U:        float64(120 + 10*((w+j)%7)),
					Alpha:    0.05, Delta: 0.9,
				}
				resp := coalesced.Handle(req)
				if resp.Error != "" {
					t.Errorf("worker %d buy %d: %s", w, j, resp.Error)
					return
				}
				trades[w*perW+j] = trade{req: req, resp: resp}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Replay in receipt-id order: the commit order the coalesced run
	// actually linearized to.
	sort.Slice(trades, func(i, j int) bool {
		return trades[i].resp.Receipt.ID < trades[j].resp.Receipt.ID
	})
	serial, serialAcct := oracleBroker(t, seed)
	deposit(serial)
	for i, tr := range trades {
		if want, got := int64(i+1), tr.resp.Receipt.ID; want != got {
			t.Fatalf("receipt ids must be gapless: position %d has id %d", i, got)
		}
		oracle, err := serial.Buy(tr.req)
		if err != nil {
			t.Fatalf("oracle buy %d: %v", i, err)
		}
		if oracle.Value != tr.resp.Value {
			t.Errorf("receipt %d: value %v, oracle %v (must be bit-identical)", tr.resp.Receipt.ID, tr.resp.Value, oracle.Value)
		}
		if *oracle.Receipt != *tr.resp.Receipt {
			t.Errorf("receipt %d: %+v, oracle %+v", tr.resp.Receipt.ID, *tr.resp.Receipt, *oracle.Receipt)
		}
	}
	if coalescedAcct.Spent() != serialAcct.Spent() {
		t.Errorf("ε spend %v, oracle %v", coalescedAcct.Spent(), serialAcct.Spent())
	}
	for _, cust := range customers {
		if gb, wb := coalesced.walletStore().Balance(cust), serial.walletStore().Balance(cust); gb != wb {
			t.Errorf("%s balance %v, oracle %v", cust, gb, wb)
		}
	}
	// The workload must actually have coalesced (folded counter covers
	// every buy) — otherwise this test proves nothing about batching.
	// Metrics were nil here, so assert via the ledger instead: every
	// trade recorded exactly once.
	if got := len(coalesced.Ledger().Receipts()); got != len(trades) {
		t.Errorf("ledger has %d receipts, want %d (exactly once per buy)", got, len(trades))
	}
}

// TestCoalescerDurableRecovery: coalesced sales journal like serial
// ones — kill the broker after a concurrent coalesced workload and the
// recovered books carry every acked sale exactly once.
func TestCoalescerDurableRecovery(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	b := durBroker(t, dir)
	if err := b.Deposit("alice", 1000); err != nil {
		t.Fatal(err)
	}
	if err := b.Deposit("bob", 1000); err != nil {
		t.Fatal(err)
	}
	co := b.EnableCoalescing(CoalesceConfig{Window: time.Millisecond, MaxBatch: 8})
	var wg sync.WaitGroup
	var mu sync.Mutex
	acked := make(map[int64]Receipt)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cust := "alice"
			if w%2 == 1 {
				cust = "bob"
			}
			resp := b.Handle(Request{
				Op: "buy", Dataset: "ozone", Customer: cust,
				L: float64(10 * w), U: float64(200 + 10*w),
				Alpha: 0.2, Delta: 0.5,
			})
			if resp.Error != "" {
				t.Errorf("buy %d: %s", w, resp.Error)
				return
			}
			mu.Lock()
			acked[resp.Receipt.ID] = *resp.Receipt
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	co.Close()
	aliceBal := b.walletStore().Balance("alice")
	bobBal := b.walletStore().Balance("bob")
	if err := b.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	recovered := durBroker(t, dir)
	if got, want := recovered.walletStore().Balance("alice"), aliceBal; got != want {
		t.Errorf("alice recovered %v, want %v", got, want)
	}
	if got, want := recovered.walletStore().Balance("bob"), bobBal; got != want {
		t.Errorf("bob recovered %v, want %v", got, want)
	}
	rec := recovered.Ledger().Receipts()
	if len(rec) != len(acked) {
		t.Fatalf("recovered %d receipts, want %d", len(rec), len(acked))
	}
	for _, r := range rec {
		if want, ok := acked[r.ID]; !ok || want != r {
			t.Errorf("recovered receipt %+v does not match acked %+v", r, want)
		}
	}
}

// TestCoalescerCloseDrains: Close executes every accumulated batch, no
// buy is lost, and buys arriving after Close settle via the serial
// fallback.
func TestCoalescerCloseDrains(t *testing.T) {
	t.Parallel()
	b, _ := oracleBroker(t, 17)
	if err := b.Deposit("alice", 1000); err != nil {
		t.Fatal(err)
	}
	// A long window guarantees the batch is still accumulating when
	// Close runs: Close itself must flush it.
	co := b.EnableCoalescing(CoalesceConfig{Window: time.Minute, MaxBatch: 64})
	var wg sync.WaitGroup
	errs := make([]string, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := b.Handle(Request{
				Op: "buy", Dataset: "ozone", Customer: "alice",
				L: float64(i), U: float64(100 + i), Alpha: 0.1, Delta: 0.8,
			})
			errs[i] = resp.Error
		}(i)
	}
	// Give the buys time to enqueue into the accumulating batch, then
	// close underneath them.
	time.Sleep(50 * time.Millisecond)
	co.Close()
	wg.Wait()
	for i, e := range errs {
		if e != "" {
			t.Errorf("buy %d lost across Close: %s", i, e)
		}
	}
	// Post-Close buys degrade to the serial path instead of hanging.
	resp := b.Handle(Request{Op: "buy", Dataset: "ozone", Customer: "alice", L: 0, U: 50, Alpha: 0.1, Delta: 0.8})
	if resp.Error != "" {
		t.Errorf("post-Close buy: %s", resp.Error)
	}
	if got := len(b.Ledger().Receipts()); got != 5 {
		t.Errorf("ledger has %d receipts, want 5", got)
	}
	co.Close() // idempotent
}

// TestCoalesceKeysDoNotMix: buys at different accuracies land in
// different batches but still all settle correctly.
func TestCoalesceKeysDoNotMix(t *testing.T) {
	t.Parallel()
	b, _ := oracleBroker(t, 53)
	if err := b.Deposit("alice", 100_000); err != nil {
		t.Fatal(err)
	}
	co := b.EnableCoalescing(CoalesceConfig{Window: 2 * time.Millisecond, MaxBatch: 8})
	defer co.Close()
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			alpha := 0.05
			if i%2 == 1 {
				alpha = 0.1
			}
			resp := b.Handle(Request{
				Op: "buy", Dataset: "ozone", Customer: "alice",
				L: 0, U: float64(100 + i), Alpha: alpha, Delta: 0.9,
			})
			if resp.Error != "" {
				t.Errorf("buy %d: %s", i, resp.Error)
			} else if resp.Receipt.Alpha != alpha {
				t.Errorf("buy %d: receipt alpha %v, want %v (keys mixed)", i, resp.Receipt.Alpha, alpha)
			}
		}(i)
	}
	wg.Wait()
	if got := len(b.Ledger().Receipts()); got != 12 {
		t.Errorf("ledger has %d receipts, want 12", got)
	}
}
