package market

import (
	"fmt"
	"sort"
	"sync"
)

// Wallets manages prepaid customer accounts. When attached to a broker,
// every Buy debits the customer's balance and fails — before any private
// answer is computed — if funds are insufficient. Wallets is safe for
// concurrent use; its zero value is ready.
type Wallets struct {
	mu       sync.Mutex
	balances map[string]float64
}

// checkDeposit validates a grant before anything is journaled or
// credited: the broker's durable path runs it first so an invalid
// grant is rejected without writing a WAL record replay would refuse
// (a NaN amount passes a plain `<= 0` check but poisons the log).
func checkDeposit(customer string, amount float64) error {
	if customer == "" {
		return fmt.Errorf("market: deposit needs a customer id")
	}
	if !isFinite(amount) || amount <= 0 {
		return fmt.Errorf("market: deposit amount %v must be positive", amount)
	}
	return nil
}

// Deposit credits a customer's account. It returns an error for an empty
// customer id or a non-positive amount.
func (w *Wallets) Deposit(customer string, amount float64) error {
	if err := checkDeposit(customer, amount); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.balances == nil {
		w.balances = make(map[string]float64)
	}
	w.balances[customer] += amount
	return nil
}

// Balance returns a customer's current balance (0 for unknown
// customers).
func (w *Wallets) Balance(customer string) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.balances[customer]
}

// debit withdraws amount, failing without side effects when the balance
// is short.
func (w *Wallets) debit(customer string, amount float64) error {
	if amount < 0 {
		return fmt.Errorf("market: negative debit %v", amount)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	bal := w.balances[customer]
	if bal < amount {
		return fmt.Errorf("market: customer %q has %.4f, needs %.4f", customer, bal, amount)
	}
	w.balances[customer] = bal - amount
	return nil
}

// refund returns amount to the customer (used when an answer fails after
// the debit).
func (w *Wallets) refund(customer string, amount float64) {
	if amount <= 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.balances == nil {
		w.balances = make(map[string]float64)
	}
	w.balances[customer] += amount
}

// Customers lists account holders in name order.
func (w *Wallets) Customers() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.balances))
	for c := range w.balances {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// AttachWallets switches the broker to prepaid mode: subsequent Buy
// calls debit the wallet first and refund on failure. Passing nil
// returns the broker to invoice mode (no balance enforcement).
func (b *Broker) AttachWallets(w *Wallets) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.wallets = w
}
