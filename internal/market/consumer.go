package market

import (
	"fmt"
	"math"

	"privrange/internal/estimator"
)

// Market is the consumer-side view of a broker: Broker implements it
// directly (in-process) and RemoteMarket adapts a TCP Client to it, so
// every consumer strategy runs identically locally and over the wire.
type Market interface {
	Quote(dataset string, acc estimator.Accuracy) (price, variance float64, err error)
	Buy(req Request) (*Response, error)
}

var _ Market = (*Broker)(nil)

// RemoteMarket adapts a Client to the Market interface.
type RemoteMarket struct {
	Client *Client
}

var _ Market = RemoteMarket{}

// Quote implements Market.
func (m RemoteMarket) Quote(dataset string, acc estimator.Accuracy) (float64, float64, error) {
	return m.Client.Quote(dataset, acc.Alpha, acc.Delta)
}

// Buy implements Market.
func (m RemoteMarket) Buy(req Request) (*Response, error) {
	return m.Client.Buy(req)
}

// Purchase is the outcome of a consumer strategy.
type Purchase struct {
	// Value is the range-counting answer the consumer ends up with
	// (possibly an average of several bought answers).
	Value float64
	// Cost is the total amount paid.
	Cost float64
	// Receipts lists every underlying purchase.
	Receipts []Receipt
	// Arbitrage is true when the consumer assembled the answer from
	// cheaper purchases instead of buying the target directly.
	Arbitrage bool
	// DirectPrice is what the honest purchase would have cost.
	DirectPrice float64
}

// Savings returns DirectPrice − Cost (positive means the strategy beat
// the list price).
func (p Purchase) Savings() float64 { return p.DirectPrice - p.Cost }

// HonestConsumer buys exactly what it wants.
type HonestConsumer struct {
	Name   string
	Market Market
}

// Buy purchases Λ(α, δ) on [l, u] directly.
func (c HonestConsumer) Buy(dataset string, l, u float64, acc estimator.Accuracy) (Purchase, error) {
	if c.Market == nil {
		return Purchase{}, fmt.Errorf("market: consumer %q has no market", c.Name)
	}
	resp, err := c.Market.Buy(Request{
		Dataset:  dataset,
		Customer: c.Name,
		L:        l,
		U:        u,
		Alpha:    acc.Alpha,
		Delta:    acc.Delta,
	})
	if err != nil {
		return Purchase{}, err
	}
	p := Purchase{Value: resp.Value, Cost: resp.Price, DirectPrice: resp.Price}
	if resp.Receipt != nil {
		p.Receipts = append(p.Receipts, *resp.Receipt)
	}
	return p, nil
}

// ArbitrageConsumer is the adversary of Example 4.1: before buying, it
// quotes every strictly-worse menu item, works out how many copies it
// would need to average down to the target variance, and executes the
// cheapest plan — which is the direct purchase exactly when the tariff is
// arbitrage-avoiding.
type ArbitrageConsumer struct {
	Name   string
	Market Market
	// Menu is the accuracy grid the adversary considers buying from.
	Menu []estimator.Accuracy
	// MaxCopies bounds the number of purchases per strategy. Zero selects
	// 64.
	MaxCopies int
}

// Buy acquires an answer meeting the target accuracy as cheaply as the
// tariff permits.
func (c ArbitrageConsumer) Buy(dataset string, l, u float64, target estimator.Accuracy) (Purchase, error) {
	if c.Market == nil {
		return Purchase{}, fmt.Errorf("market: consumer %q has no market", c.Name)
	}
	if err := target.Validate(); err != nil {
		return Purchase{}, err
	}
	maxCopies := c.MaxCopies
	if maxCopies == 0 {
		maxCopies = 64
	}
	directPrice, targetVar, err := c.Market.Quote(dataset, target)
	if err != nil {
		return Purchase{}, err
	}

	type plan struct {
		item   estimator.Accuracy
		copies int
		cost   float64
	}
	best := plan{item: target, copies: 1, cost: directPrice}
	for _, item := range c.Menu {
		if item.Validate() != nil {
			continue
		}
		// Definition 2.3: only strictly worse items participate.
		if item.Alpha <= target.Alpha || item.Delta >= target.Delta {
			continue
		}
		price, variance, err := c.Market.Quote(dataset, item)
		if err != nil {
			return Purchase{}, err
		}
		copies := int(math.Ceil(variance / targetVar))
		if copies < 1 {
			copies = 1
		}
		if copies > maxCopies {
			continue
		}
		if cost := float64(copies) * price; cost < best.cost {
			best = plan{item: item, copies: copies, cost: cost}
		}
	}

	// Execute the winning plan.
	purchase := Purchase{
		DirectPrice: directPrice,
		Arbitrage:   best.copies > 1 || best.item != target,
	}
	sum := 0.0
	for i := 0; i < best.copies; i++ {
		resp, err := c.Market.Buy(Request{
			Dataset:  dataset,
			Customer: c.Name,
			L:        l,
			U:        u,
			Alpha:    best.item.Alpha,
			Delta:    best.item.Delta,
		})
		if err != nil {
			return Purchase{}, fmt.Errorf("market: arbitrage purchase %d/%d: %w", i+1, best.copies, err)
		}
		sum += resp.Value
		purchase.Cost += resp.Price
		if resp.Receipt != nil {
			purchase.Receipts = append(purchase.Receipts, *resp.Receipt)
		}
	}
	purchase.Value = sum / float64(best.copies)
	return purchase, nil
}
