package market

import (
	"encoding/json"
	"fmt"
	"io"

	"privrange/internal/dp"
)

// Snapshot is the broker's durable trading state: the ledger, the
// prepaid balances and each dataset's privacy-accountant bookkeeping.
// Sample state is deliberately excluded — on restart a broker
// re-collects from the (authoritative) IoT network, while money,
// receipts and released ε must survive. The same structure backs the
// shutdown-time SaveState file and the WAL compaction snapshot.
type Snapshot struct {
	Receipts []Receipt          `json:"receipts"`
	NextID   int64              `json:"next_id"`
	Balances map[string]float64 `json:"balances,omitempty"`
	// Accountants maps dataset name → recovered ε bookkeeping, applied
	// to each dataset's accountant as it registers.
	Accountants map[string]dp.State `json:"accountants,omitempty"`
	// LastSeq is the WAL sequence number this snapshot folds in; replay
	// skips records at or below it (compaction crash safety).
	LastSeq uint64 `json:"last_seq,omitempty"`
}

// snapshot extracts the ledger state.
func (l *Ledger) snapshot() ([]Receipt, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Receipt, len(l.receipts))
	copy(out, l.receipts)
	return out, l.nextID
}

// restore replaces the ledger state. Beyond the id discipline it
// rejects non-finite money and ε: NaN slips past every `< 0` guard and
// ±Inf poisons every revenue sum downstream.
func (l *Ledger) restore(receipts []Receipt, nextID int64) error {
	seen := make(map[int64]bool, len(receipts))
	for _, r := range receipts {
		if r.ID <= 0 || r.ID > nextID {
			return fmt.Errorf("market: receipt id %d outside [1, %d]", r.ID, nextID)
		}
		if seen[r.ID] {
			return fmt.Errorf("market: duplicate receipt id %d", r.ID)
		}
		seen[r.ID] = true
		if !isFinite(r.Price) || r.Price < 0 {
			return fmt.Errorf("market: receipt %d has invalid price %v", r.ID, r.Price)
		}
		if !isFinite(r.EpsilonPrime) || r.EpsilonPrime < 0 {
			return fmt.Errorf("market: receipt %d has invalid epsilon %v", r.ID, r.EpsilonPrime)
		}
		if !isFinite(r.Variance) || r.Variance < 0 {
			return fmt.Errorf("market: receipt %d has invalid variance %v", r.ID, r.Variance)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.receipts = make([]Receipt, len(receipts))
	copy(l.receipts, receipts)
	l.nextID = nextID
	return nil
}

// snapshotBalances copies the wallet state.
func (w *Wallets) snapshotBalances() map[string]float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]float64, len(w.balances))
	for c, b := range w.balances {
		out[c] = b
	}
	return out
}

// restoreBalances replaces the wallet state. Non-finite balances are
// rejected explicitly: `b < 0` is false for NaN, so a corrupted
// snapshot with a NaN (or +Inf) balance would otherwise restore
// "successfully" and then pass every later sufficient-funds check.
func (w *Wallets) restoreBalances(balances map[string]float64) error {
	for c, b := range balances {
		if c == "" {
			return fmt.Errorf("market: snapshot has an anonymous balance")
		}
		if !isFinite(b) || b < 0 {
			return fmt.Errorf("market: snapshot has invalid balance %v for %q", b, c)
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.balances = make(map[string]float64, len(balances))
	for c, b := range balances {
		w.balances[c] = b
	}
	return nil
}

// captureStateLocked assembles one consistent Snapshot of ledger,
// wallets and accountants. Callers hold commitMu exclusively: every
// mutating operation spans its whole debit→record sequence under the
// shared side of that lock, so the capture can never observe a sale's
// debit without its receipt (the torn-snapshot bug this replaces —
// the old SaveState took the two copies under separate locks and a
// concurrent Buy could land in between).
func (b *Broker) captureStateLocked() *Snapshot {
	receipts, nextID := b.ledger.snapshot()
	snap := &Snapshot{Receipts: receipts, NextID: nextID}
	if wallets := b.walletStore(); wallets != nil {
		snap.Balances = wallets.snapshotBalances()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for name, ds := range b.datasets {
		a := ds.engine.Accountant()
		if a == nil {
			continue
		}
		if snap.Accountants == nil {
			snap.Accountants = make(map[string]dp.State)
		}
		snap.Accountants[name] = a.Snapshot()
	}
	// Budget recovered for datasets that have not re-registered yet
	// must not be dropped on the floor by a save/restore cycle.
	for name, state := range b.restored {
		if snap.Accountants == nil {
			snap.Accountants = make(map[string]dp.State)
		}
		if _, ok := snap.Accountants[name]; !ok {
			snap.Accountants[name] = state
		}
	}
	return snap
}

// SaveState serializes the broker's trading state (ledger, wallets,
// accountants) as JSON at one consistent point: in-flight sales finish
// first, new ones wait for the copy. Call it on shutdown; RestoreState
// reloads it after restart.
func (b *Broker) SaveState(w io.Writer) error {
	b.commitMu.Lock()
	snap := b.captureStateLocked()
	b.commitMu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("market: save state: %w", err)
	}
	return nil
}

// RestoreState loads a snapshot produced by SaveState into a broker
// that has not served anything yet — restoring over live books would
// fork the record, so a broker with recorded sales refuses. Balances
// restore only when wallets are attached; a snapshot with balances
// loaded into an invoice-mode broker is rejected so money cannot
// silently vanish. Accountant state lands on each dataset's accountant
// as it registers (or immediately for already-registered datasets).
// Brokers running with EnableDurability recover from the WAL directory
// instead and refuse this path.
func (b *Broker) RestoreState(r io.Reader) error {
	var snap Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return fmt.Errorf("market: restore state: %w", err)
	}
	if err := validateSnapshotNumbers(&snap); err != nil {
		return err
	}
	b.commitMu.Lock()
	defer b.commitMu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.durable != nil {
		return fmt.Errorf("market: broker is durable; state restores from the WAL directory, not RestoreState")
	}
	if b.ledger.Purchases() > 0 {
		return fmt.Errorf("market: refusing to restore into a broker that already recorded %d sales", b.ledger.Purchases())
	}
	if len(snap.Balances) > 0 && b.wallets == nil {
		return fmt.Errorf("market: snapshot carries balances but broker has no wallets attached")
	}
	if err := b.ledger.restore(snap.Receipts, snap.NextID); err != nil {
		return err
	}
	if b.wallets != nil && snap.Balances != nil {
		if err := b.wallets.restoreBalances(snap.Balances); err != nil {
			return err
		}
	}
	if b.restored == nil && len(snap.Accountants) > 0 {
		b.restored = make(map[string]dp.State, len(snap.Accountants))
	}
	for name, state := range snap.Accountants {
		b.restored[name] = state
	}
	for name, ds := range b.datasets {
		state, ok := b.restored[name]
		a := ds.engine.Accountant()
		if !ok || a == nil {
			continue
		}
		if err := a.Restore(state); err != nil {
			return fmt.Errorf("market: dataset %q: %w", name, err)
		}
		delete(b.restored, name)
	}
	return nil
}
