package market

import (
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot is the broker's durable trading state: the ledger and the
// prepaid balances. Sample state is deliberately excluded — on restart a
// broker re-collects from the (authoritative) IoT network, while money
// and receipts must survive.
type Snapshot struct {
	Receipts []Receipt          `json:"receipts"`
	NextID   int64              `json:"next_id"`
	Balances map[string]float64 `json:"balances,omitempty"`
}

// snapshot extracts the ledger state.
func (l *Ledger) snapshot() ([]Receipt, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Receipt, len(l.receipts))
	copy(out, l.receipts)
	return out, l.nextID
}

// restore replaces the ledger state.
func (l *Ledger) restore(receipts []Receipt, nextID int64) error {
	seen := make(map[int64]bool, len(receipts))
	for _, r := range receipts {
		if r.ID <= 0 || r.ID > nextID {
			return fmt.Errorf("market: receipt id %d outside [1, %d]", r.ID, nextID)
		}
		if seen[r.ID] {
			return fmt.Errorf("market: duplicate receipt id %d", r.ID)
		}
		seen[r.ID] = true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.receipts = make([]Receipt, len(receipts))
	copy(l.receipts, receipts)
	l.nextID = nextID
	return nil
}

// snapshotBalances copies the wallet state.
func (w *Wallets) snapshotBalances() map[string]float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]float64, len(w.balances))
	for c, b := range w.balances {
		out[c] = b
	}
	return out
}

// restoreBalances replaces the wallet state.
func (w *Wallets) restoreBalances(balances map[string]float64) error {
	for c, b := range balances {
		if c == "" {
			return fmt.Errorf("market: snapshot has an anonymous balance")
		}
		if b < 0 {
			return fmt.Errorf("market: snapshot has negative balance %v for %q", b, c)
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.balances = make(map[string]float64, len(balances))
	for c, b := range balances {
		w.balances[c] = b
	}
	return nil
}

// SaveState serializes the broker's trading state (ledger + wallets) as
// JSON. Call it on shutdown; RestoreState reloads it after restart.
func (b *Broker) SaveState(w io.Writer) error {
	receipts, nextID := b.ledger.snapshot()
	snap := Snapshot{Receipts: receipts, NextID: nextID}
	if wallets := b.walletStore(); wallets != nil {
		snap.Balances = wallets.snapshotBalances()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("market: save state: %w", err)
	}
	return nil
}

// RestoreState loads a snapshot produced by SaveState. Balances restore
// only when wallets are attached; a snapshot with balances loaded into
// an invoice-mode broker is rejected so money cannot silently vanish.
func (b *Broker) RestoreState(r io.Reader) error {
	var snap Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return fmt.Errorf("market: restore state: %w", err)
	}
	wallets := b.walletStore()
	if len(snap.Balances) > 0 && wallets == nil {
		return fmt.Errorf("market: snapshot carries balances but broker has no wallets attached")
	}
	if err := b.ledger.restore(snap.Receipts, snap.NextID); err != nil {
		return err
	}
	if wallets != nil && snap.Balances != nil {
		if err := wallets.restoreBalances(snap.Balances); err != nil {
			return err
		}
	}
	return nil
}
