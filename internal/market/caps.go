package market

import (
	"fmt"
)

// SetCustomerPrivacyCap limits the cumulative effective privacy budget
// Σε′ any single customer may extract from any single dataset. Repeated
// purchases of the same data leak cumulatively (sequential composition),
// so a broker bounds its per-customer exposure the same way it bounds
// the dataset-wide budget. Zero removes the cap.
func (b *Broker) SetCustomerPrivacyCap(epsilon float64) error {
	if epsilon < 0 {
		return fmt.Errorf("market: negative privacy cap %v", epsilon)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.customerCap = epsilon
	return nil
}

func (b *Broker) customerPrivacyCap() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.customerCap
}

// PrivacySpentByCustomer returns one customer's cumulative Σε′ on one
// dataset.
func (l *Ledger) PrivacySpentByCustomer(customer, dataset string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := 0.0
	for _, r := range l.receipts {
		if r.Customer == customer && r.Dataset == dataset {
			total += r.EpsilonPrime
		}
	}
	return total
}
