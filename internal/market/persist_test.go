package market

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"privrange/internal/dataset"
	"privrange/internal/pricing"
)

func TestSaveRestoreRoundTrip(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	var w Wallets
	broker.AttachWallets(&w)
	if err := w.Deposit("alice", 1e6); err != nil {
		t.Fatal(err)
	}
	req := Request{Dataset: "ozone", Customer: "alice", L: 30, U: 90, Alpha: 0.1, Delta: 0.5}
	for i := 0; i < 3; i++ {
		if _, err := broker.Buy(req); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := broker.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh broker (same datasets, fresh engines) restores the books.
	fresh, err := NewBroker(pricing.InverseVariance{C: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	eng, series := buildEngine(t, dataset.Ozone, 10, 99)
	if err := fresh.Register("ozone", eng, series.Len(), 10); err != nil {
		t.Fatal(err)
	}
	var fw Wallets
	fresh.AttachWallets(&fw)
	if err := fresh.RestoreState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if fresh.Ledger().Purchases() != 3 {
		t.Errorf("restored purchases = %d, want 3", fresh.Ledger().Purchases())
	}
	if got, want := fresh.Ledger().Revenue(), broker.Ledger().Revenue(); math.Abs(got-want) > 1e-9 {
		t.Errorf("restored revenue = %v, want %v", got, want)
	}
	if got, want := fw.Balance("alice"), w.Balance("alice"); math.Abs(got-want) > 1e-9 {
		t.Errorf("restored balance = %v, want %v", got, want)
	}
	// New sales continue the id sequence without collisions.
	resp, err := fresh.Buy(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Receipt.ID != 4 {
		t.Errorf("next receipt id = %d, want 4", resp.Receipt.ID)
	}
}

func TestRestoreValidation(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	if err := broker.RestoreState(strings.NewReader("not json")); err == nil {
		t.Error("garbage snapshot should fail")
	}
	// Balances into invoice mode: rejected.
	if err := broker.RestoreState(strings.NewReader(
		`{"receipts":[],"next_id":0,"balances":{"alice":5}}`)); err == nil {
		t.Error("balances without wallets should fail")
	}
	// Corrupt receipt ids.
	if err := broker.RestoreState(strings.NewReader(
		`{"receipts":[{"id":0}],"next_id":1}`)); err == nil {
		t.Error("receipt id 0 should fail")
	}
	if err := broker.RestoreState(strings.NewReader(
		`{"receipts":[{"id":5}],"next_id":1}`)); err == nil {
		t.Error("id beyond next_id should fail")
	}
	if err := broker.RestoreState(strings.NewReader(
		`{"receipts":[{"id":1},{"id":1}],"next_id":2}`)); err == nil {
		t.Error("duplicate ids should fail")
	}
	var w Wallets
	broker.AttachWallets(&w)
	if err := broker.RestoreState(strings.NewReader(
		`{"receipts":[],"next_id":0,"balances":{"":5}}`)); err == nil {
		t.Error("anonymous balance should fail")
	}
	if err := broker.RestoreState(strings.NewReader(
		`{"receipts":[],"next_id":0,"balances":{"alice":-5}}`)); err == nil {
		t.Error("negative balance should fail")
	}
}

// TestRestoreRejectsNonFiniteNumbers: NaN slips past every `< 0` guard
// and ±Inf poisons every downstream sum, so a corrupted snapshot with
// non-finite money or ε must be refused, not restored "successfully".
func TestRestoreRejectsNonFiniteNumbers(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	var w Wallets
	broker.AttachWallets(&w)
	cases := []struct {
		name string
		json string
	}{
		{"negative price", `{"receipts":[{"id":1,"price":-1,"epsilon_prime":0.1,"variance":1}],"next_id":1}`},
		{"negative epsilon", `{"receipts":[{"id":1,"price":1,"epsilon_prime":-0.1,"variance":1}],"next_id":1}`},
		{"negative variance", `{"receipts":[{"id":1,"price":1,"epsilon_prime":0.1,"variance":-1}],"next_id":1}`},
		{"negative accountant spend", `{"receipts":[],"next_id":0,"accountants":{"ozone":{"spent":-0.5,"queries":1}}}`},
		{"negative accountant queries", `{"receipts":[],"next_id":0,"accountants":{"ozone":{"spent":0.5,"queries":-1}}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := broker.RestoreState(strings.NewReader(tc.json)); err == nil {
				t.Errorf("restore accepted corrupt snapshot %s", tc.json)
			}
		})
	}
	// NaN and ±Inf cannot ride in JSON, so they hit the restore layer
	// through in-process state (a live WAL replay, a buggy caller);
	// cover those entry points directly.
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		var fw Wallets
		if err := fw.restoreBalances(map[string]float64{"alice": bad}); err == nil {
			t.Errorf("restoreBalances accepted %v", bad)
		}
	}
	var l Ledger
	for _, bad := range []float64{math.NaN(), math.Inf(1), -1} {
		if err := l.restore([]Receipt{{ID: 1, Price: bad, EpsilonPrime: 0.1, Variance: 1}}, 1); err == nil {
			t.Errorf("ledger restore accepted price %v", bad)
		}
		if err := l.restore([]Receipt{{ID: 1, Price: 1, EpsilonPrime: bad, Variance: 1}}, 1); err == nil {
			t.Errorf("ledger restore accepted epsilon %v", bad)
		}
	}
}

// TestRestoreRefusesServedBroker: restoring a snapshot over a broker
// that already recorded sales would fork the books.
func TestRestoreRefusesServedBroker(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	req := Request{Dataset: "ozone", Customer: "alice", L: 30, U: 90, Alpha: 0.1, Delta: 0.5}
	if _, err := broker.Buy(req); err != nil {
		t.Fatal(err)
	}
	if err := broker.RestoreState(strings.NewReader(`{"receipts":[],"next_id":0}`)); err == nil {
		t.Fatal("restore into a broker with recorded sales must fail")
	}
}

// TestConcurrentSaveVsBuy is the torn-snapshot regression: SaveState
// used to copy the ledger and the wallets under separate locks, so a
// Buy landing between the two copies produced a snapshot where money
// had left a wallet but no receipt documented the sale. Every snapshot
// taken during a storm of concurrent sales must conserve money:
// deposits == remaining balances + receipted revenue.
func TestConcurrentSaveVsBuy(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	var w Wallets
	broker.AttachWallets(&w)
	req := Request{Dataset: "ozone", Customer: "alice", L: 30, U: 90, Alpha: 0.1, Delta: 0.5}
	price, _, err := broker.Quote("ozone", req.Accuracy())
	if err != nil {
		t.Fatal(err)
	}
	const buyers, buysEach = 4, 6
	// One spare sale's worth of cushion: repeated float subtraction can
	// leave the last buyer a hair short of an exactly-funded balance.
	deposited := price * (buyers*buysEach + 1)
	if err := w.Deposit("alice", deposited); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < buyers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < buysEach; i++ {
				if _, err := broker.Buy(req); err != nil {
					t.Errorf("buy: %v", err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		var buf bytes.Buffer
		if err := broker.SaveState(&buf); err != nil {
			t.Fatal(err)
		}
		var snap Snapshot
		if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
			t.Fatal(err)
		}
		var revenue float64
		for _, r := range snap.Receipts {
			revenue += r.Price
		}
		held := snap.Balances["alice"]
		if math.Abs(deposited-(held+revenue)) > 1e-6*deposited {
			t.Fatalf("torn snapshot: deposited %v but balances %v + revenue %v (%d receipts)",
				deposited, held, revenue, len(snap.Receipts))
		}
		select {
		case <-done:
			return
		default:
		}
	}
}

func TestCustomerPrivacyCap(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	req := Request{Dataset: "ozone", Customer: "alice", L: 30, U: 90, Alpha: 0.1, Delta: 0.5}
	// First purchase to learn the per-sale epsilon'.
	resp, err := broker.Buy(req)
	if err != nil {
		t.Fatal(err)
	}
	perSale := resp.EpsilonPrime
	if err := broker.SetCustomerPrivacyCap(-1); err == nil {
		t.Error("negative cap should fail")
	}
	// Cap allows roughly one more purchase.
	if err := broker.SetCustomerPrivacyCap(perSale * 2.5); err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Buy(req); err != nil {
		t.Fatalf("second purchase within cap should pass: %v", err)
	}
	if _, err := broker.Buy(req); err == nil || !strings.Contains(err.Error(), "privacy cap") {
		t.Fatalf("third purchase should hit the cap, got %v", err)
	}
	// Another customer is unaffected.
	other := req
	other.Customer = "bob"
	if _, err := broker.Buy(other); err != nil {
		t.Errorf("bob should be under his own cap: %v", err)
	}
	// Per-customer accounting matches.
	aliceEps := broker.Ledger().PrivacySpentByCustomer("alice", "ozone")
	if math.Abs(aliceEps-2*perSale) > 1e-9 {
		t.Errorf("alice privacy spend = %v, want %v", aliceEps, 2*perSale)
	}
	// Removing the cap reopens sales.
	if err := broker.SetCustomerPrivacyCap(0); err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Buy(req); err != nil {
		t.Errorf("uncapped purchase should pass: %v", err)
	}
}

func TestCapRefundsPrepaidCustomer(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	var w Wallets
	broker.AttachWallets(&w)
	req := Request{Dataset: "ozone", Customer: "alice", L: 30, U: 90, Alpha: 0.1, Delta: 0.5}
	price, _, err := broker.Quote("ozone", req.Accuracy())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Deposit("alice", price*5); err != nil {
		t.Fatal(err)
	}
	resp, err := broker.Buy(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := broker.SetCustomerPrivacyCap(resp.EpsilonPrime * 1.5); err != nil {
		t.Fatal(err)
	}
	balBefore := w.Balance("alice")
	if _, err := broker.Buy(req); err == nil {
		t.Fatal("cap should block")
	}
	if got := w.Balance("alice"); math.Abs(got-balBefore) > 1e-9 {
		t.Errorf("blocked sale must refund: balance %v, want %v", got, balBefore)
	}
}
