package market

import (
	"math"
	"testing"

	"privrange/internal/dataset"
	"privrange/internal/estimator"
	"privrange/internal/pricing"
)

func TestSuspectedAveragingGrouping(t *testing.T) {
	t.Parallel()
	var l Ledger
	// mallory repeats one purchase 4 times; alice buys varied queries.
	for i := 0; i < 4; i++ {
		l.Record(Receipt{Customer: "mallory", Dataset: "ozone", L: 10, U: 20, Alpha: 0.5, Delta: 0.2, Price: 3})
	}
	l.Record(Receipt{Customer: "alice", Dataset: "ozone", L: 10, U: 20, Alpha: 0.1, Delta: 0.9, Price: 50})
	l.Record(Receipt{Customer: "alice", Dataset: "ozone", L: 30, U: 40, Alpha: 0.1, Delta: 0.9, Price: 50})
	// bob repeats only twice: below the threshold of 3.
	l.Record(Receipt{Customer: "bob", Dataset: "ozone", L: 10, U: 20, Alpha: 0.5, Delta: 0.2, Price: 3})
	l.Record(Receipt{Customer: "bob", Dataset: "ozone", L: 10, U: 20, Alpha: 0.5, Delta: 0.2, Price: 3})

	sus := l.SuspectedAveraging(3)
	if len(sus) != 1 {
		t.Fatalf("suspicions = %+v, want exactly mallory", sus)
	}
	got := sus[0]
	if got.Customer != "mallory" || got.Count != 4 || math.Abs(got.TotalPaid-12) > 1e-12 {
		t.Errorf("suspicion = %+v", got)
	}

	// At threshold 2 bob shows up as well, ordered by count descending.
	sus = l.SuspectedAveraging(2)
	if len(sus) != 2 || sus[0].Customer != "mallory" || sus[1].Customer != "bob" {
		t.Errorf("threshold-2 suspicions = %+v", sus)
	}
	// minRepeats below 2 is clamped: a single purchase is never flagged.
	if got := l.SuspectedAveraging(0); len(got) != 2 {
		t.Errorf("clamped threshold suspicions = %+v", got)
	}
}

func TestAuditCatchesRealAttack(t *testing.T) {
	t.Parallel()
	broker, err := NewBrokerUnchecked(pricing.UnsafeSteep{C: 1e16})
	if err != nil {
		t.Fatal(err)
	}
	eng, series := buildEngine(t, dataset.Ozone, 8, 71)
	if err := broker.Register("ozone", eng, series.Len(), 8); err != nil {
		t.Fatal(err)
	}
	mallory := ArbitrageConsumer{Name: "mallory", Market: broker, Menu: pricing.DefaultMenu()}
	if _, err := mallory.Buy("ozone", 30, 90, estimator.Accuracy{Alpha: 0.05, Delta: 0.8}); err != nil {
		t.Fatal(err)
	}
	alice := HonestConsumer{Name: "alice", Market: broker}
	if _, err := alice.Buy("ozone", 30, 90, estimator.Accuracy{Alpha: 0.05, Delta: 0.8}); err != nil {
		t.Fatal(err)
	}
	sus := broker.Audit()
	if len(sus) != 1 {
		t.Fatalf("audit = %+v, want exactly one pattern", sus)
	}
	if sus[0].Customer != "mallory" || sus[0].Count < 3 {
		t.Errorf("audit should flag mallory's multi-buy: %+v", sus[0])
	}
}

func TestAuditCleanLedger(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	if sus := broker.Audit(); len(sus) != 0 {
		t.Errorf("empty ledger should audit clean, got %+v", sus)
	}
}
