package market

import (
	"errors"
	"net"
	"testing"
	"time"

	"privrange/internal/pricing"
	"privrange/internal/telemetry"
)

// TestClientRequestTimeoutUnsticksFromStalledServer pins the DialOption
// contract: a server that accepts the connection and then goes silent
// must produce a deadline error from Do, not a goroutine pinned on a
// read forever.
func TestClientRequestTimeoutUnsticksFromStalledServer(t *testing.T) {
	t.Parallel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Accept and hold: read the request so the client's write succeeds,
	// then never answer — the worst case a dead broker presents.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1024)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()

	client, err := Dial(ln.Addr().String(), WithRequestTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	start := time.Now()
	_, err = client.Do(Request{Op: "catalog"})
	if err == nil {
		t.Fatal("Do against a stalled server must fail")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want a deadline (timeout) error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("Do unblocked after %v, want ~150ms", elapsed)
	}
}

// TestClientDefaultTimeoutMirrorsServerIdle documents the default: a
// Dial with no options arms the same 2-minute bound the server applies
// to silent clients, so neither side can pin the other indefinitely.
func TestClientDefaultTimeoutMirrorsServerIdle(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	srv, err := Serve(broker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.timeout != defaultIdleTimeout {
		t.Errorf("default client timeout = %v, want server idle default %v", client.timeout, defaultIdleTimeout)
	}
	// Zero disables, mirroring WithIdleTimeout(0) on the server side.
	bare, err := Dial(srv.Addr(), WithRequestTimeout(0))
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if bare.timeout != 0 {
		t.Errorf("WithRequestTimeout(0) should disable the deadline, got %v", bare.timeout)
	}
}

// TestServerSurvivesMalformedFrame feeds the server a garbage line and
// checks three things: the decode-failure counter increments, the
// offending connection gets a protocol error back (not a hangup), and
// the server keeps answering well-formed requests afterwards.
func TestServerSurvivesMalformedFrame(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	srv, err := Serve(broker, "127.0.0.1:0", WithTelemetry(m))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("{this is not json\n")); err != nil {
		t.Fatal(err)
	}
	// The server must respond with a protocol-level error frame rather
	// than dropping the connection.
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("server dropped the connection on a malformed frame: %v", err)
	}
	if n == 0 {
		t.Fatal("empty error response")
	}
	if got := m.decodeFailures.Value(); got != 1 {
		t.Fatalf("decode failures = %d, want 1", got)
	}

	// The same listener still serves valid clients.
	client, err := Dial(srv.Addr(), WithRequestTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Catalog(); err != nil {
		t.Fatalf("catalog after malformed frame: %v", err)
	}
	if got := m.decodeFailures.Value(); got != 1 {
		t.Errorf("valid traffic moved the decode-failure counter: %d", got)
	}
	if m.bytesRead.Value() == 0 || m.bytesWritten.Value() == 0 {
		t.Error("byte counters should have recorded the exchanges")
	}
}
