package market

import (
	"net"
	"testing"
	"time"

	"privrange/internal/pricing"
)

func TestServerIdleTimeoutDropsSilentClient(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	srv, err := Serve(broker, "127.0.0.1:0", WithIdleTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Send nothing: the server must drop the connection after the idle
	// period instead of pinning a handler goroutine forever. The read
	// unblocks with EOF/reset when the server closes its side; the 5s
	// client-side deadline only guards the test against hanging.
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	if err == nil {
		t.Fatal("expected the server to close the idle connection")
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never dropped the idle connection")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("idle drop took %v, want ~100ms", elapsed)
	}
}

func TestServerIdleTimeoutSparesActiveClient(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	srv, err := Serve(broker, "127.0.0.1:0", WithIdleTimeout(400*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Each exchange re-arms the deadline, so a client that keeps talking
	// (well within the idle period per request) is never cut off even
	// once total connection age exceeds the timeout.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if _, err := client.Catalog(); err != nil {
			t.Fatalf("active client dropped: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func TestServerIdleTimeoutDisabled(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	// Zero disables deadlines: a silent connection stays open.
	srv, err := Serve(broker, "127.0.0.1:0", WithIdleTimeout(0))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("nothing was written; read should time out client-side")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("connection should still be open (client-side timeout), got %v", err)
	}
}
