package market

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"privrange/internal/dp"
)

// Recovery rebuilds the trading books from dir after a crash or clean
// shutdown: load the last compacted Snapshot, replay every WAL record
// it has not folded in, and resolve in-flight sales. The replay
// invariants, proved by the crash-point matrix in crashpoint_test.go:
//
//   - A sale's receipt record is its commit point. Debits and ε spends
//     of a sale whose receipt never became durable are NOT applied — the
//     crash struck between debit and release, the customer got nothing,
//     so the money stays theirs and the budget stays unspent.
//   - A debit/refund pair (a sale that failed after charging) nets to
//     zero through the same two float operations the live run performed,
//     keeping balances bit-identical to an uncrashed run.
//   - A spend-withheld record (a sale answered but withheld by the
//     per-customer cap) applies unconditionally: the live accountant was
//     charged even though no receipt ever commits the sale, and replay
//     must not refund budget the live run treats as spent.
//   - Receipts may arrive out of id order (concurrent sales in logs
//     written before id assignment and the receipt append shared a
//     critical section); replay enforces uniqueness and folds them in
//     id order rather than rejecting the log.
//   - Deposits are standalone and always apply.
//   - Records with Seq ≤ Snapshot.LastSeq are skipped: a crash between
//     compaction's snapshot rename and the log truncate must not
//     double-apply what the snapshot already holds.
//
// Money, ε and receipt ids all come out exactly-once: an acknowledged
// operation is always durable (the broker syncs before acking), and an
// unacknowledged one either fully applies (its commit record made it to
// disk) or leaves no trace.

// durability is the broker's attachment to a WAL directory.
type durability struct {
	dir string
	wal *WAL
	// sales numbers sales so a sale's debit, spend and receipt records
	// can be linked during replay. Seeded past the highest sale id
	// still unresolved in the recovered log, so a fresh sale can never
	// adopt (and accidentally commit) a crashed sale's debit.
	sales atomic.Uint64
	// compactBytes triggers a compaction once the log grows past it.
	compactBytes int64
}

// DurabilityOption tunes EnableDurability.
type DurabilityOption func(*durability)

// WithCompactionThreshold sets how many logged bytes accumulate before
// the WAL is folded into the snapshot (default 4 MiB). Tests use tiny
// thresholds to exercise compaction; zero or negative disables
// automatic compaction.
func WithCompactionThreshold(bytes int64) DurabilityOption {
	return func(d *durability) { d.compactBytes = bytes }
}

// WithDurability is a convenience for the common construction order:
// it enables durable accounting on a freshly built broker, recovering
// any prior state found in dir. Attach wallets first when running
// prepaid — recovered balances need somewhere to land.
func WithDurability(b *Broker, dir string, opts ...DurabilityOption) error {
	return b.EnableDurability(dir, opts...)
}

// readSnapshotFile loads dir's compacted snapshot, or returns an empty
// snapshot when none exists yet.
func readSnapshotFile(dir string) (*Snapshot, error) {
	raw, err := os.ReadFile(filepath.Join(dir, snapshotFileName))
	if os.IsNotExist(err) {
		return &Snapshot{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("market: read snapshot: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("market: decode snapshot: %w", err)
	}
	return &snap, nil
}

// writeSnapshotFile atomically replaces dir's snapshot: write to a
// temp file, fsync it, rename over the target, fsync the directory so
// the rename itself is durable. A crash at any point leaves either the
// old snapshot or the new one, never a torn mix.
func writeSnapshotFile(dir string, snap *Snapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("market: encode snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(dir, snapshotFileName+".tmp*")
	if err != nil {
		return fmt.Errorf("market: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("market: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("market: fsync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("market: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, snapshotFileName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("market: rename snapshot: %w", err)
	}
	// The directory fsync is what makes the rename itself durable; a
	// failure here must fail the compaction (the caller then leaves the
	// WAL intact), not silently report a snapshot that power loss could
	// revert.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("market: open dir for snapshot fsync: %w", err)
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return fmt.Errorf("market: fsync snapshot dir: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("market: close snapshot dir: %w", closeErr)
	}
	return nil
}

// replayed is the outcome of folding a WAL over a snapshot.
type replayed struct {
	receipts    []Receipt
	nextID      int64
	balances    map[string]float64
	accountants map[string]dp.State
	lastSeq     uint64
	maxSale     uint64
	applied     int
	truncated   int64
}

// replay folds the records (already truncated to the valid prefix)
// over the snapshot's state using the commit-record semantics above.
func replay(snap *Snapshot, records []WALRecord) (*replayed, error) {
	if err := validateSnapshotNumbers(snap); err != nil {
		return nil, err
	}
	out := &replayed{
		receipts:    append([]Receipt(nil), snap.Receipts...),
		nextID:      snap.NextID,
		balances:    make(map[string]float64, len(snap.Balances)),
		accountants: make(map[string]dp.State, len(snap.Accountants)),
		lastSeq:     snap.LastSeq,
	}
	for c, b := range snap.Balances {
		out.balances[c] = b
	}
	for d, s := range snap.Accountants {
		out.accountants[d] = s
	}
	// Pass 1: find each sale's outcome — committed (receipt durable) or
	// refunded (the live run rolled the debit back itself).
	committed := make(map[uint64]bool)
	refunded := make(map[uint64]bool)
	// Receipts journaled by concurrent sales can appear out of id order
	// in older logs (id assignment and the WAL append used to be
	// separate critical sections), so they are collected, checked for
	// uniqueness, and sorted by id at the end instead of being required
	// to arrive monotonically.
	var walReceipts []Receipt
	seenIDs := make(map[int64]bool)
	lastSeq := snap.LastSeq
	for _, r := range records {
		if r.Seq <= snap.LastSeq {
			continue // folded into the snapshot already
		}
		if r.Seq <= lastSeq {
			return nil, fmt.Errorf("market: wal sequence regressed: %d after %d", r.Seq, lastSeq)
		}
		lastSeq = r.Seq
		if r.Sale > out.maxSale {
			out.maxSale = r.Sale
		}
		switch r.Op {
		case opReceipt:
			if r.Sale != 0 {
				committed[r.Sale] = true
			}
		case opRefund:
			if r.Sale != 0 {
				refunded[r.Sale] = true
			}
		}
	}
	out.lastSeq = lastSeq
	// Pass 2: apply in sequence order.
	for _, r := range records {
		if r.Seq <= snap.LastSeq {
			continue
		}
		switch r.Op {
		case opDeposit:
			if r.Customer == "" || !isFinite(r.Amount) || r.Amount <= 0 {
				return nil, fmt.Errorf("market: wal record %d: invalid deposit %v for %q", r.Seq, r.Amount, r.Customer)
			}
			out.balances[r.Customer] += r.Amount
			out.applied++
		case opDebit:
			if !saleResolved(r.Sale, committed, refunded) {
				continue // in-flight at the crash: the customer keeps the money
			}
			if r.Customer == "" || !isFinite(r.Amount) || r.Amount < 0 {
				return nil, fmt.Errorf("market: wal record %d: invalid debit %v for %q", r.Seq, r.Amount, r.Customer)
			}
			out.balances[r.Customer] -= r.Amount
			out.applied++
		case opRefund:
			if r.Customer == "" || !isFinite(r.Amount) || r.Amount < 0 {
				return nil, fmt.Errorf("market: wal record %d: invalid refund %v for %q", r.Seq, r.Amount, r.Customer)
			}
			out.balances[r.Customer] += r.Amount
			out.applied++
		case opSpend:
			if !committed[r.Sale] {
				continue // never released, so no exposure to account
			}
			if err := applySpend(out, r); err != nil {
				return nil, err
			}
		case opSpendHeld:
			// A withheld sale's charge: the live accountant was debited
			// even though the answer was never released, so the spend
			// applies regardless of the sale's commit/refund fate.
			if err := applySpend(out, r); err != nil {
				return nil, err
			}
		case opReceipt:
			if r.Receipt == nil {
				return nil, fmt.Errorf("market: wal record %d: receipt op without a receipt", r.Seq)
			}
			rec := *r.Receipt
			if rec.ID <= snap.NextID {
				return nil, fmt.Errorf("market: wal record %d: receipt id %d not past the snapshot's %d", r.Seq, rec.ID, snap.NextID)
			}
			if seenIDs[rec.ID] {
				return nil, fmt.Errorf("market: wal record %d: duplicate receipt id %d", r.Seq, rec.ID)
			}
			if !isFinite(rec.Price) || !isFinite(rec.EpsilonPrime) || !isFinite(rec.Variance) {
				return nil, fmt.Errorf("market: wal record %d: receipt %d has non-finite price/ε/variance", r.Seq, rec.ID)
			}
			seenIDs[rec.ID] = true
			walReceipts = append(walReceipts, rec)
			if rec.ID > out.nextID {
				out.nextID = rec.ID
			}
			out.applied++
		default:
			return nil, fmt.Errorf("market: wal record %d: unknown op %q", r.Seq, r.Op)
		}
	}
	// Fold the replayed receipts in ledger (id) order; a torn tail in a
	// concurrent log can leave a gap, which Ledger.restore accepts.
	sort.Slice(walReceipts, func(i, j int) bool { return walReceipts[i].ID < walReceipts[j].ID })
	out.receipts = append(out.receipts, walReceipts...)
	for c, b := range out.balances {
		if !isFinite(b) || b < 0 {
			return nil, fmt.Errorf("market: replay left balance %v for %q", b, c)
		}
	}
	return out, nil
}

// applySpend validates and folds one ε-spend record (committed sale or
// withheld answer) into the replayed accountant state.
func applySpend(out *replayed, r WALRecord) error {
	if r.Dataset == "" || !isFinite(r.Epsilon) || r.Epsilon < 0 {
		return fmt.Errorf("market: wal record %d: invalid spend %v on %q", r.Seq, r.Epsilon, r.Dataset)
	}
	s := out.accountants[r.Dataset]
	s.Spent += r.Epsilon
	s.Queries++
	out.accountants[r.Dataset] = s
	out.applied++
	return nil
}

// saleResolved reports whether a sale's fate is on disk: committed or
// explicitly refunded. Unresolved debits are in-flight crashes and are
// not applied.
func saleResolved(sale uint64, committed, refunded map[uint64]bool) bool {
	return sale != 0 && (committed[sale] || refunded[sale])
}

// EnableDurability turns on write-ahead logging rooted at dir,
// recovering any state a previous incarnation left there. It must run
// before the broker serves anything — restoring over live books would
// fork the record — and after AttachWallets when balances are expected.
// Datasets registered before or after this call both get their
// recovered Σε′: already-registered accountants are restored now,
// later ones at Register time.
func (b *Broker) EnableDurability(dir string, opts ...DurabilityOption) error {
	if dir == "" {
		return fmt.Errorf("market: durability needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("market: durability dir: %w", err)
	}
	snap, err := readSnapshotFile(dir)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("market: read wal: %w", err)
	}
	records, validLen := decodeWAL(raw)
	rep, err := replay(snap, records)
	if err != nil {
		return err
	}
	rep.truncated = int64(len(raw)) - validLen

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.durable != nil {
		return fmt.Errorf("market: durability already enabled")
	}
	if b.ledger.Purchases() > 0 {
		return fmt.Errorf("market: refusing to enable durability on a broker that already recorded %d sales", b.ledger.Purchases())
	}
	if len(rep.balances) > 0 && b.wallets == nil {
		return fmt.Errorf("market: recovered state carries balances but broker has no wallets attached")
	}
	if err := b.ledger.restore(rep.receipts, rep.nextID); err != nil {
		return err
	}
	if b.wallets != nil {
		if err := b.wallets.restoreBalances(rep.balances); err != nil {
			return err
		}
	}
	d := &durability{
		dir:          dir,
		compactBytes: 4 << 20,
	}
	d.sales.Store(rep.maxSale)
	for _, opt := range opts {
		opt(d)
	}
	if b.restored == nil {
		b.restored = make(map[string]dp.State, len(rep.accountants))
	}
	for name, state := range rep.accountants {
		b.restored[name] = state
	}
	// Accountants registered before durability was enabled restore now.
	for name, ds := range b.datasets {
		state, ok := b.restored[name]
		a := ds.engine.Accountant()
		if !ok || a == nil {
			continue
		}
		if err := a.Restore(state); err != nil {
			return fmt.Errorf("market: dataset %q: %w", name, err)
		}
		delete(b.restored, name)
	}
	wal, err := openWAL(dir, validLen, rep.lastSeq)
	if err != nil {
		return err
	}
	wal.tele = func() *Metrics { return b.tele.Load() }
	d.wal = wal
	b.durable = d
	if m := b.tele.Load(); m != nil {
		m.noteWALRecovery(rep.applied, rep.truncated)
	}
	return nil
}

// CloseDurability compacts the log into the snapshot and closes the
// WAL. Call on clean shutdown; the next boot then recovers from the
// snapshot alone. Safe to call once; the broker refuses further
// mutations afterwards.
func (b *Broker) CloseDurability() error {
	d := b.durableStore()
	if d == nil {
		return nil
	}
	compactErr := b.Compact()
	if err := d.wal.Close(); err != nil {
		return err
	}
	return compactErr
}

// Compact folds the current books into the on-disk snapshot and
// truncates the WAL. It runs automatically as the log grows; exposed
// for tests and operational tooling. No-op without durability.
func (b *Broker) Compact() error {
	d := b.durableStore()
	if d == nil {
		return nil
	}
	// The exclusive commit lock waits out in-flight sales, so the books
	// and the log agree; Sync drains anything the last sale buffered.
	b.commitMu.Lock()
	defer b.commitMu.Unlock()
	if err := d.wal.Sync(); err != nil {
		return err
	}
	snap := b.captureStateLocked()
	snap.LastSeq = d.wal.lastSeq()
	if err := writeSnapshotFile(d.dir, snap); err != nil {
		return err
	}
	if err := d.wal.reset(); err != nil {
		return err
	}
	if m := b.tele.Load(); m != nil {
		m.noteWALCompaction()
	}
	return nil
}

// maybeCompact triggers a compaction when the log outgrew the
// threshold. Called after an operation releases the shared commit
// lock; a failed compaction poisons nothing — the log keeps growing
// and the next operation retries.
func (b *Broker) maybeCompact() {
	d := b.durableStore()
	if d == nil || d.compactBytes <= 0 {
		return
	}
	if d.wal.loggedBytes() < d.compactBytes {
		return
	}
	b.Compact() //nolint:errcheck — next op retries; the WAL remains authoritative
}

// validateSnapshotNumbers rejects snapshots whose money or ε fields
// are corrupt: NaN or ±Inf would restore "successfully" under a plain
// `< 0` check and then poison every later comparison.
func validateSnapshotNumbers(snap *Snapshot) error {
	for d, s := range snap.Accountants {
		if !isFinite(s.Spent) || s.Spent < 0 || s.Queries < 0 {
			return fmt.Errorf("market: snapshot accountant for %q has invalid state (spent=%v queries=%d)", d, s.Spent, s.Queries)
		}
	}
	return nil
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
