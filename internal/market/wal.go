package market

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"privrange/internal/telemetry"
)

// The write-ahead log makes the trading books crash-consistent: every
// state mutation — wallet deposit, sale debit, refund, ε spend, receipt
// append — is journaled as a checksummed record and group-commit-fsynced
// to disk *before* the operation is acknowledged to the customer. On
// restart, recovery replays the log over the last compacted Snapshot and
// reconstructs exactly-once money, ε and receipt state (see recover.go).
//
// On-disk framing, per record:
//
//	[4 bytes big-endian payload length][4 bytes IEEE CRC32 of payload][payload]
//
// The payload is the JSON encoding of WALRecord. A torn final frame
// (short header, short payload, or checksum mismatch) marks the point
// the process died mid-write; recovery truncates the log at the last
// valid record. Records are strictly sequenced: Seq increases by one
// per append, and the compacted Snapshot remembers the last sequence it
// folded in so a crash between compaction and log truncation cannot
// double-apply a record.

// WAL operation codes. Deposit is the prepaid grant; debit/refund/spend/
// receipt together journal one sale, linked by the Sale id, with the
// receipt acting as the sale's commit record. Spend-withheld journals
// the ε charge of a sale whose answer was computed but withheld (the
// per-customer cap): the dataset accountant was charged even though no
// receipt will ever commit the sale, so replay applies it
// unconditionally — otherwise a restart would silently refund budget
// the live accountant treats as spent.
const (
	opDeposit   = "deposit"
	opDebit     = "debit"
	opRefund    = "refund"
	opSpend     = "spend"
	opSpendHeld = "spend-withheld"
	opReceipt   = "receipt"
)

// WALRecord is one journaled state mutation.
type WALRecord struct {
	// Seq is the record's strictly increasing sequence number, assigned
	// by Append.
	Seq uint64 `json:"seq"`
	// Op is one of the op* codes.
	Op string `json:"op"`
	// Sale links the records of one sale (debit → spend → receipt, or
	// debit → refund). Zero for standalone mutations (deposits).
	Sale uint64 `json:"sale,omitempty"`
	// Customer and Amount carry money mutations (deposit, debit, refund).
	Customer string  `json:"customer,omitempty"`
	Amount   float64 `json:"amount,omitempty"`
	// Dataset and Epsilon carry privacy-budget mutations (spend).
	Dataset string  `json:"dataset,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`
	// Receipt carries the completed receipt (receipt op) — the sale's
	// commit record.
	Receipt *Receipt `json:"receipt,omitempty"`
}

// errWALCrashed reports that the log was killed by an injected crash
// point (tests) or a write failure: the broker's durable state can no
// longer advance, so every subsequent mutation is refused.
var errWALCrashed = errors.New("market: write-ahead log is dead (crash or I/O failure); broker is read-only until restarted")

// walCrashPoint names the instants the fault-injection hook may kill
// the log at, covering every boundary a real crash can hit.
type walCrashPoint int

const (
	// crashAppend dies before the record reaches the in-memory buffer:
	// the mutation is applied in memory but never becomes durable.
	crashAppend walCrashPoint = iota
	// crashSyncStart dies before any buffered byte is written.
	crashSyncStart
	// crashSyncWrite dies mid-write: only `keep` bytes of the buffer
	// land in the file — the torn-record case.
	crashSyncWrite
	// crashSyncFsync dies after the write but before fsync.
	crashSyncFsync
	// crashSyncDone dies after fsync but before the operation is
	// acknowledged: durable yet unacked, the classic commit/ack gap.
	crashSyncDone
	// crashCompact dies after the compacted snapshot is durable but
	// before the log is truncated: recovery must not double-apply the
	// records the snapshot already folded in.
	crashCompact
)

const (
	walFileName      = "wal.log"
	snapshotFileName = "snapshot.json"
	walHeaderSize    = 8
	// maxWALRecordSize bounds a frame's declared payload length so a
	// corrupted header cannot drive a giant allocation during replay.
	maxWALRecordSize = 16 << 20
)

// WAL is an append-only, checksummed, group-commit-fsynced journal of
// trading-state mutations. Appends buffer in memory; Sync flushes the
// buffer and fsyncs once for every waiter that queued behind the same
// flush — concurrent sales pay one fsync, not one each. WAL is safe
// for concurrent use.
type WAL struct {
	mu  sync.Mutex // guards buf, seq, err and file writes
	f   *os.File
	buf []byte
	// seq is the last assigned sequence number; synced is the last
	// sequence whose bytes are durably on disk; logged counts bytes
	// appended since the last compaction (the compaction trigger).
	seq    uint64
	synced uint64
	logged int64
	err    error

	// syncMu serializes flushes; waiters queue here and find their
	// records already durable when a neighbour's flush covered them.
	syncMu sync.Mutex

	// hook, when non-nil, is consulted at every crash point with the
	// relevant byte count; returning die=true kills the log as if the
	// process died at that instant (keep selects the torn-write length
	// at crashSyncWrite). Tests only.
	hook func(p walCrashPoint, n int) (keep int, die bool)

	// tele fetches the marketplace metrics at call time so late
	// telemetry attachment (the ops endpoint is opt-in) is observed.
	// Nil-safe like every Metrics helper.
	tele func() *Metrics
}

// openWAL opens (creating if absent) dir's log file, truncates any
// invalid tail at truncateAt, and positions appends after lastSeq.
func openWAL(dir string, truncateAt int64, lastSeq uint64) (*WAL, error) {
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("market: open wal: %w", err)
	}
	if err := f.Truncate(truncateAt); err != nil {
		f.Close()
		return nil, fmt.Errorf("market: truncate wal tail: %w", err)
	}
	if _, err := f.Seek(truncateAt, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("market: seek wal: %w", err)
	}
	return &WAL{f: f, seq: lastSeq, synced: lastSeq}, nil
}

// frame encodes one record with its length+checksum header.
func frame(payload []byte) []byte {
	out := make([]byte, walHeaderSize+len(payload))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[walHeaderSize:], payload)
	return out
}

// AppendCtx is Append under a distributed-trace context: a sampled
// caller's append shows up as a "wal.append" span. StartStamp returns 0
// for unsampled contexts, so the untraced path never reads the clock.
func (w *WAL) AppendCtx(r WALRecord, sc telemetry.SpanContext) (uint64, error) {
	start := telemetry.StartStamp(sc)
	seq, err := w.Append(r)
	if start != 0 {
		if m := w.metrics(); m != nil {
			m.spans.EmitSince("wal.append", sc, start)
		}
	}
	return seq, err
}

// SyncCtx is Sync under a distributed-trace context: the group-commit
// flush a sampled caller waited on shows up as a "wal.fsync" span (the
// flush may cover neighbours' records — that wait is real latency and
// is attributed to the sale that paid it).
func (w *WAL) SyncCtx(sc telemetry.SpanContext) error {
	start := telemetry.StartStamp(sc)
	err := w.Sync()
	if start != 0 {
		if m := w.metrics(); m != nil {
			m.spans.EmitSince("wal.fsync", sc, start)
		}
	}
	return err
}

// Append assigns the record a sequence number and buffers its frame.
// The record is NOT durable until a Sync covering it returns; callers
// must not acknowledge the mutation before then.
func (w *WAL) Append(r WALRecord) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.hook != nil {
		if _, die := w.hook(crashAppend, 0); die {
			w.err = errWALCrashed
			return 0, w.err
		}
	}
	w.seq++
	r.Seq = w.seq
	payload, err := json.Marshal(r)
	if err != nil {
		w.err = fmt.Errorf("market: wal encode: %w", err)
		return 0, w.err
	}
	w.buf = append(w.buf, frame(payload)...)
	w.logged += int64(walHeaderSize + len(payload))
	if m := w.metrics(); m != nil {
		m.noteWALAppend(walHeaderSize + len(payload))
	}
	return w.seq, nil
}

// loggedBytes returns the bytes appended since the last compaction.
func (w *WAL) loggedBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.logged
}

// lastSeq returns the most recently assigned sequence number.
func (w *WAL) lastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Sync makes every record appended so far durable. Group commit: the
// first caller in flushes everything buffered (covering later
// appenders' records too); callers whose records were flushed by a
// neighbour return without touching the disk.
func (w *WAL) Sync() error {
	w.mu.Lock()
	target, err := w.seq, w.err
	w.mu.Unlock()
	if err != nil {
		return err
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced >= target {
		return nil // a neighbouring flush already covered us
	}
	w.mu.Lock()
	buf, flushTo := w.buf, w.seq
	w.buf = nil
	if w.err != nil {
		w.mu.Unlock()
		return w.err
	}
	w.mu.Unlock()
	if err := w.flush(buf); err != nil {
		w.mu.Lock()
		w.err = err
		w.mu.Unlock()
		return err
	}
	w.synced = flushTo
	return nil
}

// flush writes buf and fsyncs, visiting the injected crash points on
// the way. Callers hold syncMu.
func (w *WAL) flush(buf []byte) error {
	if w.hook != nil {
		if _, die := w.hook(crashSyncStart, len(buf)); die {
			return errWALCrashed
		}
		if keep, die := w.hook(crashSyncWrite, len(buf)); die {
			if keep > len(buf) {
				keep = len(buf)
			}
			w.f.Write(buf[:keep]) // torn write, then death
			return errWALCrashed
		}
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("market: wal write: %w", err)
	}
	if w.hook != nil {
		if _, die := w.hook(crashSyncFsync, len(buf)); die {
			return errWALCrashed
		}
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("market: wal fsync: %w", err)
	}
	if m := w.metrics(); m != nil {
		m.noteWALFsync()
	}
	if w.hook != nil {
		if _, die := w.hook(crashSyncDone, len(buf)); die {
			return errWALCrashed
		}
	}
	return nil
}

// reset truncates the log after a compaction folded everything up to
// the current sequence into the snapshot. The broker holds its commit
// lock exclusively during compaction, so no appends race the truncate.
func (w *WAL) reset() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if len(w.buf) != 0 {
		return fmt.Errorf("market: wal reset with %d unsynced bytes", len(w.buf))
	}
	if w.hook != nil {
		if _, die := w.hook(crashCompact, 0); die {
			w.err = errWALCrashed
			return w.err
		}
	}
	if err := w.f.Truncate(0); err != nil {
		w.err = fmt.Errorf("market: wal truncate: %w", err)
		return w.err
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		w.err = fmt.Errorf("market: wal seek: %w", err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("market: wal fsync after truncate: %w", err)
		return w.err
	}
	w.synced = w.seq
	w.logged = 0
	return nil
}

// Close flushes and closes the log file.
func (w *WAL) Close() error {
	syncErr := w.Sync()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return syncErr
	}
	closeErr := w.f.Close()
	w.f = nil
	if w.err == nil {
		w.err = errors.New("market: wal closed")
	}
	if syncErr != nil && !errors.Is(syncErr, errWALCrashed) {
		return syncErr
	}
	return closeErr
}

func (w *WAL) metrics() *Metrics {
	if w.tele == nil {
		return nil
	}
	return w.tele()
}

// decodeWAL scans raw frames and returns every valid record plus the
// byte offset of the last valid frame's end. Scanning stops at the
// first invalid frame — short header, absurd length, short payload or
// checksum mismatch — which is the torn tail a crash leaves behind;
// everything after it (even if it happens to look framed) is dropped,
// the truncate-at-last-valid-record semantics recovery relies on.
func decodeWAL(raw []byte) (records []WALRecord, validLen int64) {
	off := 0
	for {
		if off+walHeaderSize > len(raw) {
			return records, int64(off)
		}
		n := int(binary.BigEndian.Uint32(raw[off : off+4]))
		sum := binary.BigEndian.Uint32(raw[off+4 : off+8])
		if n <= 0 || n > maxWALRecordSize || off+walHeaderSize+n > len(raw) {
			return records, int64(off)
		}
		payload := raw[off+walHeaderSize : off+walHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return records, int64(off)
		}
		var r WALRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			return records, int64(off)
		}
		records = append(records, r)
		off += walHeaderSize + n
	}
}
