package market

import (
	"fmt"

	"privrange/internal/estimator"
	"privrange/internal/telemetry"
)

// saleResult is one buy's settlement from a coalesced batch: the
// response a serial Buy would have returned, or the error it would
// have failed with.
type saleResult struct {
	resp  *Response
	price float64
	err   error
}

// sellBatch settles many single-query buys against one dataset at one
// accuracy level as a single batch sale. The outcome is bit-for-bit
// indistinguishable from executing the same buys serially in slice
// order: each sale gets its own sale id, debit, WAL records, receipt
// (ids assigned in slice order), cap check against the ledger as of
// its predecessors, and exactly one noise draw and one accountant
// charge via core.AnswerBatchSerial — only the estimation kernel is
// shared and the group-commit fsync covers the whole batch instead of
// one sale.
//
// traces, when non-nil, carries one per-buy trace begun by the caller
// (the coalescer starts them at enqueue so queue wait is part of the
// recorded latency); sellBatch closes every trace via finishBuy.
func (b *Broker) sellBatch(reqs []Request, traces []*telemetry.Trace) []saleResult {
	m := b.tele.Load()
	out := make([]saleResult, len(reqs))
	if traces == nil {
		traces = make([]*telemetry.Trace, len(reqs))
	}
	for i := range traces {
		if traces[i] == nil {
			traces[i] = &telemetry.Trace{}
			m.begin(traces[i], "market.buy")
		}
	}
	b.sellBatchInner(reqs, traces, out)
	for i := range out {
		m.finishBuy(traces[i], out[i].err == nil, out[i].price)
	}
	b.maybeCompact()
	return out
}

func (b *Broker) sellBatchInner(reqs []Request, traces []*telemetry.Trace, out []saleResult) {
	// Validation and pricing, per sale in order. The batch shares one
	// dataset and accuracy (the coalescer keys on them), so the quote
	// is computed once — the tariff is deterministic, every serial sale
	// would have priced identically.
	alive := make([]bool, len(reqs))
	anyAlive := false
	for i := range reqs {
		reqs[i].Op = "buy"
		if err := reqs[i].Validate(); err != nil {
			out[i].err = err
			continue
		}
		alive[i] = true
		anyAlive = true
	}
	if !anyAlive {
		return
	}
	first := -1
	for i := range reqs {
		if alive[i] {
			first = i
			break
		}
	}
	ds, err := b.dataset(reqs[first].Dataset)
	if err != nil {
		failAlive(out, alive, err)
		return
	}
	price, variance, err := b.Quote(reqs[first].Dataset, reqs[first].Accuracy())
	for i := range reqs {
		if alive[i] {
			traces[i].Mark("price")
		}
	}
	if err != nil {
		failAlive(out, alive, err)
		return
	}
	// The debit→record span holds the commit lock shared, like every
	// serial sale: a snapshot (SaveState, compaction) waits for the
	// whole batch and never captures a half-settled sale.
	b.commitMu.RLock()
	defer b.commitMu.RUnlock()
	wallets := b.walletStore()
	sales := make([]uint64, len(reqs))
	for i := range reqs {
		if !alive[i] {
			continue
		}
		sales[i] = b.nextSale()
		if wallets != nil {
			if derr := wallets.debit(reqs[i].Customer, price); derr != nil {
				out[i].err = derr
				alive[i] = false
				continue
			}
			if jerr := b.journal(WALRecord{Op: opDebit, Sale: sales[i], Customer: reqs[i].Customer, Amount: price}); jerr != nil {
				wallets.refund(reqs[i].Customer, price)
				out[i].err = jerr
				alive[i] = false
				continue
			}
		}
		traces[i].Mark("debit")
	}
	queries, slots := aliveQueries(reqs, alive)
	if len(queries) == 0 {
		return
	}
	// The batch's engine and commit work belongs to no single sale, so
	// it runs as its own span (own trace) linking every sampled folded
	// sale's handler span; the engine parents its phase spans on it.
	m := b.tele.Load()
	var batchTr telemetry.Trace
	m.beginBatchSpan(&batchTr, traces, slots)
	defer m.finishBatchSpan(&batchTr, len(slots))
	batchTr.Annotate("dataset", reqs[first].Dataset)
	answers, err := ds.engine.AnswerBatchSerialCtx(queries, reqs[first].Accuracy(), batchTr.SpanCtx())
	batchTr.Mark("answer")
	if err != nil {
		// Whole-call misuse cannot happen (the batch is non-empty and
		// validated), but a future engine error must still settle every
		// debited sale.
		for _, i := range slots {
			b.rollbackSale(wallets, sales[i], reqs[i].Customer, price)
			out[i].err = err
		}
		return
	}
	for bi, i := range slots {
		traces[i].Mark("answer")
		if aerr := answers[bi].Err; aerr != nil {
			b.rollbackSale(wallets, sales[i], reqs[i].Customer, price)
			out[i].err = aerr
			alive[i] = false
		}
	}
	// Commit, per sale in slice order: the cap check must see the
	// receipts of same-customer predecessors in this batch exactly as a
	// later serial sale would see its forerunners in the ledger, so cap
	// check and record interleave per sale instead of running as
	// separate phases.
	synced := make([]int, 0, len(slots))
	for bi, i := range slots {
		if !alive[i] {
			continue
		}
		ans := answers[bi].Answer
		if cap := b.customerPrivacyCap(); cap > 0 {
			spent := b.ledger.PrivacySpentByCustomer(reqs[i].Customer, reqs[i].Dataset)
			if spent+ans.Plan.EpsilonPrime > cap {
				if werr := b.withholdSale(wallets, sales[i], reqs[i], price, ans.Plan.EpsilonPrime); werr != nil {
					out[i].err = werr
					continue
				}
				out[i].err = fmt.Errorf("market: customer %q would exceed the per-customer privacy cap on %q (%.4f + %.4f > %.4f)",
					reqs[i].Customer, reqs[i].Dataset, spent, ans.Plan.EpsilonPrime, cap)
				continue
			}
		}
		b.recordMu.Lock()
		receipt := b.ledger.Record(Receipt{
			Customer:     reqs[i].Customer,
			Dataset:      reqs[i].Dataset,
			L:            reqs[i].L,
			U:            reqs[i].U,
			Alpha:        reqs[i].Alpha,
			Delta:        reqs[i].Delta,
			Variance:     variance,
			Price:        price,
			EpsilonPrime: ans.Plan.EpsilonPrime,
			Coverage:     ans.Coverage,
		})
		spendErr := b.journal(WALRecord{Op: opSpend, Sale: sales[i], Dataset: reqs[i].Dataset, Epsilon: ans.Plan.EpsilonPrime})
		receiptErr := b.journal(WALRecord{Op: opReceipt, Sale: sales[i], Receipt: &receipt})
		b.recordMu.Unlock()
		traces[i].Mark("record")
		if spendErr != nil {
			out[i].err = spendErr
			continue
		}
		if receiptErr != nil {
			out[i].err = receiptErr
			continue
		}
		out[i] = saleResult{
			resp: &Response{
				OK:                true,
				Price:             price,
				Variance:          variance,
				Value:             ans.Value,
				Clamped:           ans.Clamped(),
				Receipt:           &receipt,
				EpsilonPrime:      ans.Plan.EpsilonPrime,
				Rate:              ans.Rate,
				Coverage:          ans.Coverage,
				CollectionVersion: ans.CollectionVersion,
			},
			price: price,
		}
		synced = append(synced, i)
	}
	batchTr.Mark("record")
	if len(synced) == 0 {
		return
	}
	// One group-commit fsync makes every sale in the batch durable
	// before any is acknowledged. The journaled records are identical
	// to the serial path's; only the fsync count differs, and an fsync
	// is not a record — replay cannot tell the difference.
	if serr := b.journalSyncCtx(batchTr.SpanCtx()); serr != nil {
		for _, i := range synced {
			out[i] = saleResult{err: serr}
		}
	}
	batchTr.Mark("fsync")
}

// failAlive fails every still-alive sale with one shared error.
func failAlive(out []saleResult, alive []bool, err error) {
	for i := range out {
		if alive[i] {
			out[i].err = err
		}
	}
}

// aliveQueries extracts the queries of still-alive sales plus the slot
// mapping from batch position back to request index.
func aliveQueries(reqs []Request, alive []bool) ([]estimator.Query, []int) {
	var queries []estimator.Query
	var slots []int
	for i := range reqs {
		if alive[i] {
			queries = append(queries, reqs[i].Query())
			slots = append(slots, i)
		}
	}
	return queries, slots
}
