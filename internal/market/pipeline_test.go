package market

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"privrange/internal/pricing"
	"privrange/internal/telemetry"
)

// fakeServer listens on loopback, accepts exactly one connection and
// hands it to fn on a background goroutine. It lets the tests script
// hostile or legacy peer behaviour — reordered responses, bogus ids,
// mid-flight hangups — that the real server never produces.
func fakeServer(t *testing.T, fn func(conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fn(conn)
	}()
	t.Cleanup(func() {
		ln.Close()
		<-done
	})
	return ln.Addr().String()
}

// readRequest decodes one protocol line. Returns an error instead of
// failing the test because it runs on the fake server's goroutine.
func readRequest(r *bufio.Reader) (Request, error) {
	var req Request
	line, err := r.ReadBytes('\n')
	if err != nil {
		return req, err
	}
	return req, json.Unmarshal(line, &req)
}

func writeResponse(conn net.Conn, resp Response) error {
	blob, err := json.Marshal(resp)
	if err != nil {
		return err
	}
	_, err = conn.Write(append(blob, '\n'))
	return err
}

// TestPipelinedOutOfOrderResponses proves responses are matched by id,
// not arrival order: the server answers the second request first, and
// each caller still receives its own answer.
func TestPipelinedOutOfOrderResponses(t *testing.T) {
	t.Parallel()
	both := make(chan struct{})
	addr := fakeServer(t, func(conn net.Conn) {
		r := bufio.NewReader(conn)
		first, err1 := readRequest(r)
		second, err2 := readRequest(r)
		close(both)
		if err1 != nil || err2 != nil {
			t.Errorf("fake server reads: %v, %v", err1, err2)
			return
		}
		// Reverse order: the later request is answered first. Echo the
		// request's Amount in Balance so the caller can verify it got
		// its own response, not just any response.
		for _, req := range []Request{second, first} {
			if err := writeResponse(conn, Response{ID: req.ID, OK: true, Balance: req.Amount}); err != nil {
				t.Errorf("fake server write: %v", err)
				return
			}
		}
	})

	client, err := Dial(addr, WithPipelining(), WithRequestTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var wg sync.WaitGroup
	for _, amount := range []float64{11, 22} {
		wg.Add(1)
		go func(amount float64) {
			defer wg.Done()
			resp, err := client.Do(Request{Op: "balance", Customer: "x", Amount: amount})
			if err != nil {
				t.Errorf("Do(%v): %v", amount, err)
				return
			}
			if resp.Balance != amount {
				t.Errorf("Do(%v) got response for %v: id matching failed", amount, resp.Balance)
			}
		}(amount)
		// Stagger the sends so the server reliably sees them as two
		// requests in a known arrival order before reversing.
		time.Sleep(20 * time.Millisecond)
	}
	<-both
	wg.Wait()
}

// TestPipelinedDropsUnknownAndDuplicateIDs: a buggy peer sending ids
// the client never issued, or the same id twice, must not crash the
// client, mis-deliver a response, or poison later calls.
func TestPipelinedDropsUnknownAndDuplicateIDs(t *testing.T) {
	t.Parallel()
	addr := fakeServer(t, func(conn net.Conn) {
		r := bufio.NewReader(conn)
		req, err := readRequest(r)
		if err != nil {
			t.Errorf("fake server read: %v", err)
			return
		}
		// Garbage before the real answer, and a duplicate after it.
		for _, resp := range []Response{
			{ID: 9999, OK: true, Balance: -1},
			{ID: req.ID, OK: true, Balance: req.Amount},
			{ID: req.ID, OK: true, Balance: -2},
		} {
			if err := writeResponse(conn, resp); err != nil {
				t.Errorf("fake server write: %v", err)
				return
			}
		}
		// The client must still be functional for a second exchange.
		req2, err := readRequest(r)
		if err != nil {
			t.Errorf("fake server second read: %v", err)
			return
		}
		if err := writeResponse(conn, Response{ID: req2.ID, OK: true, Balance: req2.Amount}); err != nil {
			t.Errorf("fake server second write: %v", err)
		}
	})

	client, err := Dial(addr, WithPipelining(), WithRequestTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resp, err := client.Do(Request{Op: "balance", Customer: "x", Amount: 7})
	if err != nil {
		t.Fatalf("first Do: %v", err)
	}
	if resp.Balance != 7 {
		t.Fatalf("first Do routed wrong response: balance %v", resp.Balance)
	}
	resp, err = client.Do(Request{Op: "balance", Customer: "x", Amount: 8})
	if err != nil {
		t.Fatalf("second Do after id garbage: %v", err)
	}
	if resp.Balance != 8 {
		t.Fatalf("second Do routed wrong response: balance %v", resp.Balance)
	}
}

// TestPipelinedConnectionDeathFailsInFlight: when the peer hangs up
// with requests outstanding, every blocked Do must fail promptly (no
// waiting out the full timeout, no hang) and later calls fail fast.
func TestPipelinedConnectionDeathFailsInFlight(t *testing.T) {
	t.Parallel()
	const inFlight = 8
	received := make(chan struct{})
	addr := fakeServer(t, func(conn net.Conn) {
		r := bufio.NewReader(conn)
		for i := 0; i < inFlight; i++ {
			if _, err := readRequest(r); err != nil {
				t.Errorf("fake server read %d: %v", i, err)
				return
			}
		}
		close(received)
		// Hang up with every request unanswered.
	})

	client, err := Dial(addr, WithPipelining(), WithRequestTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := client.Do(Request{Op: "catalog"})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	<-received
	for err := range errs {
		if err == nil {
			t.Error("in-flight request survived connection death")
		}
	}
	// The 30s request timeout must NOT be the thing that unblocked the
	// callers: connection death fails them directly.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("in-flight calls took %v to fail; want prompt failure on hangup", elapsed)
	}
	if _, err := client.Do(Request{Op: "catalog"}); err == nil {
		t.Error("Do after connection death should fail fast with the sticky error")
	}
}

// TestPipelinedClientAgainstLegacyServer: an old server echoes no ids
// and answers strictly in arrival order; the pipelined client must fall
// back to FIFO matching and still route every response correctly.
func TestPipelinedClientAgainstLegacyServer(t *testing.T) {
	t.Parallel()
	const calls = 16
	addr := fakeServer(t, func(conn net.Conn) {
		r := bufio.NewReader(conn)
		for i := 0; i < calls; i++ {
			req, err := readRequest(r)
			if err != nil {
				t.Errorf("fake legacy server read %d: %v", i, err)
				return
			}
			// No ID in the response, answers in arrival order — exactly
			// how the pre-pipelining server behaved.
			if err := writeResponse(conn, Response{OK: true, Balance: req.Amount}); err != nil {
				t.Errorf("fake legacy server write %d: %v", i, err)
				return
			}
		}
	})

	client, err := Dial(addr, WithPipelining(), WithRequestTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(amount float64) {
			defer wg.Done()
			resp, err := client.Do(Request{Op: "balance", Customer: "x", Amount: amount})
			if err != nil {
				t.Errorf("Do(%v): %v", amount, err)
				return
			}
			if resp.Balance != amount {
				t.Errorf("FIFO fallback mis-routed: sent %v, got %v", amount, resp.Balance)
			}
		}(float64(i + 1))
	}
	wg.Wait()
}

// TestMixedPipelinedAndLegacyClients drives both client modes against
// one real server concurrently — the interop matrix under the race
// detector: id-bearing and id-less requests interleave on the broker.
func TestMixedPipelinedAndLegacyClients(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	srv, err := Serve(broker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const perClient = 20
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		opts := []DialOption{WithRequestTimeout(10 * time.Second)}
		if i%2 == 0 {
			opts = append(opts, WithPipelining())
		}
		client, err := Dial(srv.Addr(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			var inner sync.WaitGroup
			for j := 0; j < perClient; j++ {
				inner.Add(1)
				go func(j int) {
					defer inner.Done()
					if j%2 == 0 {
						if _, err := c.Catalog(); err != nil {
							t.Errorf("catalog: %v", err)
						}
						return
					}
					if _, _, err := c.Quote("ozone", 0.05, 0.9); err != nil {
						t.Errorf("quote: %v", err)
					}
				}(j)
			}
			inner.Wait()
		}(client)
	}
	wg.Wait()
}

// TestAdmissionControlSheds: with the in-flight gate clamped to one,
// a pipelined blast must see some requests refused with the retryable
// overload error — and the ones that are admitted still succeed.
func TestAdmissionControlSheds(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	srv, err := Serve(broker, "127.0.0.1:0", WithMaxInFlight(1), WithTelemetry(m))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr(), WithPipelining(), WithRequestTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Buys are the slowest op (quote, debit, DP release, record), so
	// concurrent calls reliably overlap inside the gate. Retry the blast
	// a few times rather than trusting one round's scheduling.
	var ok, shed int
	for round := 0; round < 5 && (shed == 0 || ok == 0); round++ {
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := client.Buy(Request{Dataset: "ozone", Customer: "carol", L: 0, U: 100, Alpha: 0.05, Delta: 0.9})
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					ok++
				case errors.Is(err, ErrOverloaded):
					shed++
				default:
					t.Errorf("buy failed with a non-overload error: %v", err)
				}
			}()
		}
		wg.Wait()
	}
	if shed == 0 {
		t.Fatal("no request was shed despite a max-in-flight of 1 under a concurrent blast")
	}
	if ok == 0 {
		t.Fatal("every request was shed: admitted requests should still succeed")
	}
	if got := m.shedTotal.Value(); got != uint64(shed) {
		t.Errorf("shed metric %d, client observed %d overload errors", got, shed)
	}
	if infl := m.inflight.Value(); infl != 0 {
		t.Errorf("inflight gauge %v after drain, want 0", infl)
	}
}

// TestShedDisabled: WithMaxInFlight(0) turns the gate off — the same
// blast that sheds above must fully succeed.
func TestShedDisabled(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	srv, err := Serve(broker, "127.0.0.1:0", WithMaxInFlight(0))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), WithPipelining(), WithRequestTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := client.Quote("ozone", 0.05, 0.9); err != nil {
				t.Errorf("quote with admission disabled: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestOversizedFrameGetsProtocolError: a line over the frame limit kills
// the connection (the stream cannot resync), but the client must first
// receive an explicit protocol error — and the metric must count it.
func TestOversizedFrameGetsProtocolError(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	srv, err := Serve(broker, "127.0.0.1:0", WithTelemetry(m))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}

	// Push past the 1 MiB frame limit without a newline. Written from a
	// goroutine: once the server stops consuming, the tail of the write
	// may block on TCP flow control until the server closes its side.
	go func() {
		junk := make([]byte, 64<<10)
		for i := range junk {
			junk[i] = 'a'
		}
		for written := 0; written < maxLineBytes+len(junk); written += len(junk) {
			if _, err := conn.Write(junk); err != nil {
				return // server already closed: expected
			}
		}
	}()

	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("no protocol error before close: %v", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatalf("malformed oversize error response: %v", err)
	}
	if !strings.Contains(resp.Error, "frame limit") {
		t.Errorf("error %q should name the frame limit", resp.Error)
	}
	if resp.Retryable {
		t.Error("an oversized frame is a protocol violation, not a retryable overload")
	}
	if got := m.oversizedFrames.Value(); got != 1 {
		t.Errorf("oversized frame metric %d, want 1", got)
	}
}

// TestPipelinedManyInFlight floods one connection far past the pipeline
// window; the window throttles via TCP backpressure and every request
// still completes exactly once.
func TestPipelinedManyInFlight(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	srv, err := Serve(broker, "127.0.0.1:0", WithPipelineDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), WithPipelining(), WithRequestTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const calls = 200
	var wg sync.WaitGroup
	var okCount sync.Map
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := client.Catalog(); err != nil {
				t.Errorf("catalog %d: %v", i, err)
				return
			}
			okCount.Store(i, true)
		}(i)
	}
	wg.Wait()
	n := 0
	okCount.Range(func(_, _ any) bool { n++; return true })
	if n != calls {
		t.Errorf("%d of %d pipelined calls completed", n, calls)
	}
}
