package market

import (
	"sort"
)

// AveragingSuspicion reports one suspicious purchase pattern: a customer
// buying the *same* query at the *same* (cheap) accuracy many times —
// the observable footprint of the Example 4.1 averaging attack. Against
// an audited tariff the attack cannot profit, but a broker still wants
// to see who is probing for one (for instance before loosening prices,
// or because repeated identical sales of the same range leak more
// cumulative privacy budget than varied workloads).
type AveragingSuspicion struct {
	Customer string
	Dataset  string
	L, U     float64
	Alpha    float64
	Delta    float64
	// Count is the number of identical purchases.
	Count int
	// TotalPaid is the group's combined spend.
	TotalPaid float64
}

// purchaseKey identifies an exactly repeated purchase.
type purchaseKey struct {
	customer string
	dataset  string
	l, u     float64
	alpha    float64
	delta    float64
}

// SuspectedAveraging scans the ledger for customers who bought the same
// (dataset, range, accuracy) at least minRepeats times. minRepeats
// values below 2 are raised to 2 (a single purchase is never a
// pattern). Results are sorted by descending Count, then customer name
// for determinism.
func (l *Ledger) SuspectedAveraging(minRepeats int) []AveragingSuspicion {
	if minRepeats < 2 {
		minRepeats = 2
	}
	l.mu.Lock()
	groups := make(map[purchaseKey]*AveragingSuspicion)
	for _, r := range l.receipts {
		key := purchaseKey{
			customer: r.Customer,
			dataset:  r.Dataset,
			l:        r.L,
			u:        r.U,
			alpha:    r.Alpha,
			delta:    r.Delta,
		}
		g, ok := groups[key]
		if !ok {
			g = &AveragingSuspicion{
				Customer: r.Customer,
				Dataset:  r.Dataset,
				L:        r.L,
				U:        r.U,
				Alpha:    r.Alpha,
				Delta:    r.Delta,
			}
			groups[key] = g
		}
		g.Count++
		g.TotalPaid += r.Price
	}
	l.mu.Unlock()

	var out []AveragingSuspicion
	for _, g := range groups {
		if g.Count >= minRepeats {
			out = append(out, *g)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Customer != out[j].Customer {
			return out[i].Customer < out[j].Customer
		}
		return out[i].Dataset < out[j].Dataset
	})
	return out
}

// Audit runs the broker's standard ledger review: averaging patterns of
// three or more identical purchases.
func (b *Broker) Audit() []AveragingSuspicion {
	return b.ledger.SuspectedAveraging(3)
}
