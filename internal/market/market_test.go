package market

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"privrange/internal/core"
	"privrange/internal/dataset"
	"privrange/internal/estimator"
	"privrange/internal/iot"
	"privrange/internal/pricing"
)

func buildEngine(t testing.TB, p dataset.Pollutant, k int, seed int64) (*core.Engine, *dataset.Series) {
	t.Helper()
	series, err := dataset.GenerateSeries(p, dataset.GenerateConfig{Seed: seed, Records: dataset.CityPulseRecords})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := series.Partition(k)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := iot.New(parts, iot.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(nw, core.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return eng, series
}

func buildBroker(t testing.TB, tariff pricing.Function) (*Broker, *dataset.Series) {
	t.Helper()
	broker, err := NewBroker(tariff)
	if err != nil {
		t.Fatal(err)
	}
	eng, series := buildEngine(t, dataset.Ozone, 10, 42)
	if err := broker.Register("ozone", eng, series.Len(), 10); err != nil {
		t.Fatal(err)
	}
	return broker, series
}

func TestNewBrokerRefusesExploitableTariff(t *testing.T) {
	t.Parallel()
	if _, err := NewBroker(pricing.UnsafeSteep{C: 100}); err == nil {
		t.Error("broker should refuse a tariff with arbitrage")
	}
	if _, err := NewBroker(nil); err == nil {
		t.Error("nil tariff should fail")
	}
	if _, err := NewBrokerUnchecked(pricing.UnsafeSteep{C: 100}); err != nil {
		t.Error("unchecked constructor should allow it for experiments")
	}
}

func TestRegisterValidation(t *testing.T) {
	t.Parallel()
	broker, err := NewBroker(pricing.InverseVariance{C: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	eng, series := buildEngine(t, dataset.Ozone, 4, 1)
	if err := broker.Register("", eng, series.Len(), 4); err == nil {
		t.Error("empty name should fail")
	}
	if err := broker.Register("x", nil, 10, 1); err == nil {
		t.Error("nil engine should fail")
	}
	if err := broker.Register("x", eng, 0, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if err := broker.Register("x", eng, series.Len(), 4); err != nil {
		t.Fatal(err)
	}
	if err := broker.Register("x", eng, series.Len(), 4); err == nil {
		t.Error("duplicate registration should fail")
	}
}

func TestQuoteAndCatalog(t *testing.T) {
	t.Parallel()
	broker, series := buildBroker(t, pricing.BaseFeePlusInverse{Base: 1, C: 1e9})
	price, variance, err := broker.Quote("ozone", estimator.Accuracy{Alpha: 0.1, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	wantVar := math.Pow(0.1*float64(series.Len()), 2) * 0.5
	if math.Abs(variance-wantVar) > 1e-6 {
		t.Errorf("variance = %v, want %v", variance, wantVar)
	}
	if wantPrice := 1 + 1e9/wantVar; math.Abs(price-wantPrice) > 1e-9 {
		t.Errorf("price = %v, want %v", price, wantPrice)
	}
	if _, _, err := broker.Quote("nope", estimator.Accuracy{Alpha: 0.1, Delta: 0.5}); err == nil {
		t.Error("unknown dataset should fail")
	}
	cat := broker.Catalog()
	if len(cat) != 1 || cat[0].Name != "ozone" || cat[0].N != series.Len() || cat[0].Nodes != 10 {
		t.Errorf("catalog = %+v", cat)
	}
}

func TestBuyRecordsLedgerAndMeetsAccuracy(t *testing.T) {
	t.Parallel()
	broker, series := buildBroker(t, pricing.InverseVariance{C: 1e9})
	req := Request{
		Dataset:  "ozone",
		Customer: "alice",
		L:        40,
		U:        100,
		Alpha:    0.08,
		Delta:    0.6,
	}
	resp, err := broker.Buy(req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Receipt == nil {
		t.Fatalf("bad response: %+v", resp)
	}
	truth, err := series.RangeCount(40, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp.Value-float64(truth)) > 3*0.08*float64(series.Len()) {
		t.Errorf("value %v wildly off truth %d", resp.Value, truth)
	}
	if resp.EpsilonPrime <= 0 {
		t.Error("missing privacy metadata")
	}
	ledger := broker.Ledger()
	if ledger.Purchases() != 1 {
		t.Fatalf("ledger purchases = %d", ledger.Purchases())
	}
	if got := ledger.SpentBy("alice"); math.Abs(got-resp.Price) > 1e-12 {
		t.Errorf("alice spent %v, want %v", got, resp.Price)
	}
	if got := ledger.Revenue(); math.Abs(got-resp.Price) > 1e-12 {
		t.Errorf("revenue %v, want %v", got, resp.Price)
	}
	rec, err := ledger.Get(resp.Receipt.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Customer != "alice" || rec.Dataset != "ozone" {
		t.Errorf("receipt = %+v", rec)
	}
	if _, err := ledger.Get(999); err == nil {
		t.Error("missing receipt should fail")
	}
}

func TestBuyValidation(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	cases := []struct {
		name string
		req  Request
	}{
		{name: "missing dataset", req: Request{Customer: "a", L: 0, U: 1, Alpha: 0.1, Delta: 0.5}},
		{name: "missing customer", req: Request{Dataset: "ozone", L: 0, U: 1, Alpha: 0.1, Delta: 0.5}},
		{name: "bad accuracy", req: Request{Dataset: "ozone", Customer: "a", L: 0, U: 1, Alpha: 0, Delta: 0.5}},
		{name: "bad range", req: Request{Dataset: "ozone", Customer: "a", L: 5, U: 1, Alpha: 0.1, Delta: 0.5}},
		{name: "unknown dataset", req: Request{Dataset: "zzz", Customer: "a", L: 0, U: 1, Alpha: 0.1, Delta: 0.5}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if _, err := broker.Buy(tc.req); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestHandleNeverErrors(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	resp := broker.Handle(Request{Op: "nonsense"})
	if resp.Error == "" {
		t.Error("unknown op should report an error string")
	}
	resp = broker.Handle(Request{Op: "quote", Dataset: "ozone", Alpha: 0.1, Delta: 0.5})
	if resp.Error != "" || !resp.OK {
		t.Errorf("quote via handle failed: %+v", resp)
	}
	resp = broker.Handle(Request{Op: "catalog"})
	if len(resp.Datasets) != 1 {
		t.Errorf("catalog via handle: %+v", resp)
	}
}

func TestServerEndToEnd(t *testing.T) {
	t.Parallel()
	broker, series := buildBroker(t, pricing.InverseVariance{C: 1e9})
	srv, err := Serve(broker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	cat, err := client.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 1 || cat[0].Name != "ozone" {
		t.Fatalf("catalog = %+v", cat)
	}

	price, variance, err := client.Quote("ozone", 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if price <= 0 || variance <= 0 {
		t.Errorf("quote = %v, %v", price, variance)
	}

	resp, err := client.Buy(Request{
		Dataset: "ozone", Customer: "bob", L: 30, U: 90, Alpha: 0.1, Delta: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := series.RangeCount(30, 90)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp.Value-float64(truth)) > 3*0.1*float64(series.Len()) {
		t.Errorf("remote value %v wildly off truth %d", resp.Value, truth)
	}
	if broker.Ledger().Purchases() != 1 {
		t.Error("remote buy should hit the ledger")
	}
}

func TestServerRemoteErrorPropagates(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	srv, err := Serve(broker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, _, err = client.Quote("missing-dataset", 0.1, 0.5)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	if !strings.Contains(err.Error(), "missing-dataset") {
		t.Errorf("remote error should carry the broker message, got %v", err)
	}
}

func TestServerMalformedRequest(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	srv, err := Serve(broker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Raw garbage line straight down the socket.
	if _, err := client.conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	line, err := client.reader.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(line), "malformed") {
		t.Errorf("want malformed-request error, got %s", line)
	}
	// Connection must still work afterwards.
	if _, err := client.Catalog(); err != nil {
		t.Errorf("connection should survive a bad line: %v", err)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	srv, err := Serve(broker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for j := 0; j < 5; j++ {
				if _, _, err := client.Quote("ozone", 0.1, 0.5); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestHonestConsumer(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	alice := HonestConsumer{Name: "alice", Market: broker}
	p, err := alice.Buy("ozone", 30, 90, estimator.Accuracy{Alpha: 0.1, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if p.Arbitrage {
		t.Error("honest purchase should not be arbitrage")
	}
	if p.Cost != p.DirectPrice || len(p.Receipts) != 1 {
		t.Errorf("purchase = %+v", p)
	}
	if (HonestConsumer{Name: "x"}).Market != nil {
		t.Fatal("sanity")
	}
	if _, err := (HonestConsumer{Name: "x"}).Buy("ozone", 0, 1, estimator.Accuracy{Alpha: 0.1, Delta: 0.5}); err == nil {
		t.Error("no market should fail")
	}
}

func TestArbitrageConsumerBeatsUnsafeTariff(t *testing.T) {
	t.Parallel()
	broker, err := NewBrokerUnchecked(pricing.UnsafeSteep{C: 1e16})
	if err != nil {
		t.Fatal(err)
	}
	eng, series := buildEngine(t, dataset.Ozone, 10, 7)
	if err := broker.Register("ozone", eng, series.Len(), 10); err != nil {
		t.Fatal(err)
	}
	mallory := ArbitrageConsumer{Name: "mallory", Market: broker, Menu: pricing.DefaultMenu()}
	target := estimator.Accuracy{Alpha: 0.05, Delta: 0.8}
	p, err := mallory.Buy("ozone", 30, 90, target)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Arbitrage {
		t.Fatal("adversary should find arbitrage on the unsafe tariff")
	}
	if p.Savings() <= 0 {
		t.Errorf("attack should save money: cost %v vs direct %v", p.Cost, p.DirectPrice)
	}
	if len(p.Receipts) < 2 {
		t.Errorf("attack should involve multiple purchases, got %d", len(p.Receipts))
	}
	// The broker's ledger shows the multi-buy.
	if broker.Ledger().Purchases() != len(p.Receipts) {
		t.Error("ledger should record every attack purchase")
	}
}

func TestArbitrageConsumerCannotBeatSafeTariff(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.BaseFeePlusInverse{Base: 2, C: 1e9})
	mallory := ArbitrageConsumer{Name: "mallory", Market: broker, Menu: pricing.DefaultMenu()}
	for _, target := range []estimator.Accuracy{
		{Alpha: 0.05, Delta: 0.8},
		{Alpha: 0.1, Delta: 0.6},
	} {
		p, err := mallory.Buy("ozone", 30, 90, target)
		if err != nil {
			t.Fatal(err)
		}
		if p.Arbitrage {
			t.Errorf("safe tariff should not be beaten; strategy saved %v at %+v", p.Savings(), target)
		}
		if p.Cost > p.DirectPrice+1e-9 {
			t.Errorf("adversary should never overpay: %v > %v", p.Cost, p.DirectPrice)
		}
	}
}

func TestArbitrageConsumerOverTCP(t *testing.T) {
	t.Parallel()
	broker, err := NewBrokerUnchecked(pricing.UnsafeSteep{C: 1e16})
	if err != nil {
		t.Fatal(err)
	}
	eng, series := buildEngine(t, dataset.NitrogenDioxide, 8, 9)
	if err := broker.Register("no2", eng, series.Len(), 8); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(broker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	mallory := ArbitrageConsumer{
		Name:   "mallory",
		Market: RemoteMarket{Client: client},
		Menu:   pricing.DefaultMenu(),
	}
	p, err := mallory.Buy("no2", 30, 90, estimator.Accuracy{Alpha: 0.05, Delta: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Arbitrage || p.Savings() <= 0 {
		t.Errorf("remote attack should succeed on unsafe tariff: %+v", p)
	}
}

func TestRequestValidate(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		req  Request
		ok   bool
	}{
		{name: "catalog", req: Request{Op: "catalog"}, ok: true},
		{name: "quote ok", req: Request{Op: "quote", Dataset: "d", Alpha: 0.1, Delta: 0.5}, ok: true},
		{name: "quote no dataset", req: Request{Op: "quote", Alpha: 0.1, Delta: 0.5}, ok: false},
		{name: "buy ok", req: Request{Op: "buy", Dataset: "d", Customer: "c", L: 0, U: 1, Alpha: 0.1, Delta: 0.5}, ok: true},
		{name: "buy bad op", req: Request{Op: "sell"}, ok: false},
	}
	for _, tc := range cases {
		if err := tc.req.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestHandleNeverPanicsProperty: arbitrary requests through the protocol
// dispatcher must always yield a non-nil response, never a panic.
func TestHandleNeverPanicsProperty(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	ops := []string{"catalog", "quote", "buy", "deposit", "balance", "audit", "bogus", ""}
	f := func(opIdx uint8, dataset, customer string, l, u, alpha, delta, amount float64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		req := Request{
			Op:       ops[int(opIdx)%len(ops)],
			Dataset:  dataset,
			Customer: customer,
			L:        l,
			U:        u,
			Alpha:    alpha,
			Delta:    delta,
			Amount:   amount,
		}
		resp := broker.Handle(req)
		return resp != nil && (resp.OK || resp.Error != "")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
