// Package market implements the trading layer of the paper's system
// model: a data broker that sells ε′-differentially-private
// (α, δ)-range-counting answers under an arbitrage-avoiding tariff, a
// purchase ledger, a TCP+JSON query protocol, and consumer strategies —
// including the averaging adversary of Example 4.1, run against real
// purchases rather than on paper.
package market

import (
	"fmt"

	"privrange/internal/estimator"
)

// Request is a consumer's message to the broker.
type Request struct {
	// ID tags the request for pipelining: a client that sets a non-zero
	// id may have many requests in flight on one connection, and the
	// server echoes the id on the matching Response (possibly out of
	// order). Zero (or absent — the field is omitted on the wire) selects
	// the legacy one-at-a-time protocol: the server answers id-less
	// requests strictly in arrival order, so old peers interoperate
	// unchanged in both directions.
	ID uint64 `json:"id,omitempty"`
	// Trace carries an optional distributed-trace context in
	// telemetry.SpanContext wire form ("16-hex-trace-16-hex-span-flags").
	// A server that understands it parents its handler span on the
	// client's span and (when the sampled flag is set) records the
	// request into its span buffer; a server that predates it ignores
	// the unknown field, and an absent or malformed value simply means
	// "untraced" — legacy peers interoperate unchanged in both
	// directions, exactly like ID. Tracing never changes an answer.
	Trace string `json:"trace,omitempty"`
	// Op selects the operation: "quote", "buy", "catalog", "deposit",
	// "balance" or "audit".
	Op string `json:"op"`
	// Dataset names the series to query (e.g. "ozone"). Required for
	// quote and buy.
	Dataset string `json:"dataset,omitempty"`
	// Customer identifies the buyer for the ledger.
	Customer string `json:"customer,omitempty"`
	// L and U are the range bounds (buy only).
	L float64 `json:"l,omitempty"`
	U float64 `json:"u,omitempty"`
	// Alpha and Delta specify the accuracy Λ(α, δ).
	Alpha float64 `json:"alpha,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	// Amount is the deposit value (deposit only).
	Amount float64 `json:"amount,omitempty"`
}

// Accuracy converts the request's accuracy fields.
func (r Request) Accuracy() estimator.Accuracy {
	return estimator.Accuracy{Alpha: r.Alpha, Delta: r.Delta}
}

// Query converts the request's range fields.
func (r Request) Query() estimator.Query {
	return estimator.Query{L: r.L, U: r.U}
}

// Response is the broker's reply. Exactly one of Error or the payload
// fields is meaningful.
type Response struct {
	// ID echoes the request id in pipelined mode (zero for legacy
	// requests and for frames the server could not attribute, e.g. a
	// malformed line).
	ID uint64 `json:"id,omitempty"`

	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Retryable marks a load-shed rejection: the request was refused by
	// admission control without being processed, and an identical retry
	// after backoff may succeed. Never set on semantic failures
	// (validation, funds, caps), which retrying cannot fix.
	Retryable bool `json:"retryable,omitempty"`

	// Quote and buy payload.
	Price    float64 `json:"price,omitempty"`
	Variance float64 `json:"variance,omitempty"`

	// Buy payload. Value is the raw unbiased release (may be negative);
	// Clamped is truncated to [0, n] for display.
	Value        float64  `json:"value,omitempty"`
	Clamped      float64  `json:"clamped,omitempty"`
	Receipt      *Receipt `json:"receipt,omitempty"`
	EpsilonPrime float64  `json:"epsilon_prime,omitempty"`
	// Degradation provenance: the sampling rate the answer was computed
	// at, the fraction of records held by reachable nodes when it was
	// released (1 = full coverage), and the sample-state version —
	// everything a consumer needs to judge what they actually bought
	// from a partially-degraded deployment.
	Rate              float64 `json:"rate,omitempty"`
	Coverage          float64 `json:"coverage,omitempty"`
	CollectionVersion uint64  `json:"collection_version,omitempty"`

	// Catalog payload.
	Datasets []DatasetInfo `json:"datasets,omitempty"`

	// Deposit/balance payload.
	Balance float64 `json:"balance,omitempty"`

	// Audit payload.
	Suspicions []AveragingSuspicion `json:"suspicions,omitempty"`
}

// DatasetInfo describes one purchasable dataset.
type DatasetInfo struct {
	Name  string `json:"name"`
	N     int    `json:"n"`
	Nodes int    `json:"nodes"`
}

// Receipt documents one completed purchase; the ledger stores them and
// consumers keep them as proof of payment.
type Receipt struct {
	ID       int64   `json:"id"`
	Customer string  `json:"customer"`
	Dataset  string  `json:"dataset"`
	L        float64 `json:"l"`
	U        float64 `json:"u"`
	Alpha    float64 `json:"alpha"`
	Delta    float64 `json:"delta"`
	Variance float64 `json:"variance"`
	Price    float64 `json:"price"`
	// EpsilonPrime is the effective privacy budget the sale released —
	// the broker's per-sale privacy bookkeeping.
	EpsilonPrime float64 `json:"epsilon_prime"`
	// Coverage records the reachable-data fraction the sale was computed
	// at, so a purchase made from a degraded deployment is documented as
	// such on the proof of payment.
	Coverage float64 `json:"coverage"`
}

// Validate checks the request's structural invariants per operation.
func (r Request) Validate() error {
	switch r.Op {
	case "catalog", "audit":
		return nil
	case "deposit":
		if r.Customer == "" {
			return fmt.Errorf("market: deposit needs a customer id")
		}
		if r.Amount <= 0 {
			return fmt.Errorf("market: deposit amount %v must be positive", r.Amount)
		}
		return nil
	case "balance":
		if r.Customer == "" {
			return fmt.Errorf("market: balance needs a customer id")
		}
		return nil
	case "quote":
		if r.Dataset == "" {
			return fmt.Errorf("market: quote needs a dataset")
		}
		return r.Accuracy().Validate()
	case "buy":
		if r.Dataset == "" {
			return fmt.Errorf("market: buy needs a dataset")
		}
		if r.Customer == "" {
			return fmt.Errorf("market: buy needs a customer id")
		}
		if err := r.Accuracy().Validate(); err != nil {
			return err
		}
		return r.Query().Validate()
	default:
		return fmt.Errorf("market: unknown op %q", r.Op)
	}
}
