package market

import (
	"math"
	"strings"
	"sync"
	"testing"

	"privrange/internal/dataset"
	"privrange/internal/estimator"
	"privrange/internal/pricing"
)

func TestWalletsBasics(t *testing.T) {
	t.Parallel()
	var w Wallets
	if err := w.Deposit("", 10); err == nil {
		t.Error("empty customer should fail")
	}
	if err := w.Deposit("alice", 0); err == nil {
		t.Error("zero deposit should fail")
	}
	if err := w.Deposit("alice", 100); err != nil {
		t.Fatal(err)
	}
	if got := w.Balance("alice"); got != 100 {
		t.Errorf("balance = %v", got)
	}
	if got := w.Balance("nobody"); got != 0 {
		t.Errorf("unknown balance = %v", got)
	}
	if err := w.debit("alice", 30); err != nil {
		t.Fatal(err)
	}
	if err := w.debit("alice", 100); err == nil {
		t.Error("overdraft should fail")
	}
	if got := w.Balance("alice"); got != 70 {
		t.Errorf("failed debit must not change balance: %v", got)
	}
	if err := w.debit("alice", -1); err == nil {
		t.Error("negative debit should fail")
	}
	w.refund("alice", 30)
	if got := w.Balance("alice"); got != 100 {
		t.Errorf("refund balance = %v", got)
	}
	if err := w.Deposit("bob", 5); err != nil {
		t.Fatal(err)
	}
	cs := w.Customers()
	if len(cs) != 2 || cs[0] != "alice" || cs[1] != "bob" {
		t.Errorf("customers = %v", cs)
	}
}

func TestWalletsConcurrent(t *testing.T) {
	t.Parallel()
	var w Wallets
	if err := w.Deposit("alice", 1000); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = w.debit("alice", 1)
			}
		}()
	}
	wg.Wait()
	if got := w.Balance("alice"); got != 200 {
		t.Errorf("balance = %v, want 200", got)
	}
}

func TestPrepaidBrokerEnforcesBalance(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	var w Wallets
	broker.AttachWallets(&w)

	req := Request{Dataset: "ozone", Customer: "alice", L: 30, U: 90, Alpha: 0.1, Delta: 0.5}
	if _, err := broker.Buy(req); err == nil || !strings.Contains(err.Error(), "needs") {
		t.Fatalf("empty wallet should block the buy, got %v", err)
	}
	if broker.Ledger().Purchases() != 0 {
		t.Error("blocked buy must not hit the ledger")
	}

	price, _, err := broker.Quote("ozone", req.Accuracy())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Deposit("alice", price*2.5); err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Buy(req); err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Buy(req); err != nil {
		t.Fatal(err)
	}
	// Third buy: balance is down to 0.5·price.
	if _, err := broker.Buy(req); err == nil {
		t.Error("exhausted wallet should block")
	}
	if got := w.Balance("alice"); math.Abs(got-price*0.5) > 1e-9 {
		t.Errorf("balance = %v, want %v", got, price*0.5)
	}
	if broker.Ledger().Purchases() != 2 {
		t.Errorf("ledger purchases = %d, want 2", broker.Ledger().Purchases())
	}
}

func TestPrepaidBrokerRefundsOnAnswerFailure(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	var w Wallets
	broker.AttachWallets(&w)
	// An unachievable accuracy makes the engine fail *after* the debit.
	req := Request{Dataset: "ozone", Customer: "alice", L: 30, U: 90, Alpha: 0.0005, Delta: 0.999}
	price, _, err := broker.Quote("ozone", req.Accuracy())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Deposit("alice", price*2); err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Buy(req); err == nil {
		t.Fatal("impossible accuracy should fail")
	}
	if got := w.Balance("alice"); math.Abs(got-price*2) > 1e-9 {
		t.Errorf("failed answer should refund: balance %v, want %v", got, price*2)
	}
	// Detaching wallets returns to invoice mode.
	broker.AttachWallets(nil)
	ok := Request{Dataset: "ozone", Customer: "alice", L: 30, U: 90, Alpha: 0.1, Delta: 0.5}
	if _, err := broker.Buy(ok); err != nil {
		t.Errorf("invoice mode should not need a balance: %v", err)
	}
}

func TestWalletProtocolOverTCP(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	var w Wallets
	broker.AttachWallets(&w)
	srv, err := Serve(broker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	price, _, err := client.Quote("ozone", 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Buying before depositing fails.
	req := Request{Dataset: "ozone", Customer: "carol", L: 30, U: 90, Alpha: 0.1, Delta: 0.5}
	if _, err := client.Buy(req); err == nil {
		t.Fatal("empty remote wallet should block the buy")
	}
	bal, err := client.Deposit("carol", price*1.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bal-price*1.5) > 1e-9 {
		t.Errorf("deposit balance = %v", bal)
	}
	if _, err := client.Buy(req); err != nil {
		t.Fatal(err)
	}
	bal, err = client.Balance("carol")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bal-price*0.5) > 1e-9 {
		t.Errorf("post-buy balance = %v, want %v", bal, price*0.5)
	}
	// Bad deposits fail remotely.
	if _, err := client.Deposit("carol", -5); err == nil {
		t.Error("negative remote deposit should fail")
	}
	if _, err := client.Deposit("", 5); err == nil {
		t.Error("anonymous remote deposit should fail")
	}
}

func TestWalletOpsInInvoiceMode(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	resp := broker.Handle(Request{Op: "deposit", Customer: "x", Amount: 5})
	if resp.Error == "" || !strings.Contains(resp.Error, "invoice mode") {
		t.Errorf("deposit in invoice mode should fail, got %+v", resp)
	}
	resp = broker.Handle(Request{Op: "balance", Customer: "x"})
	if resp.Error == "" {
		t.Error("balance in invoice mode should fail")
	}
}

func TestAuditOverTCP(t *testing.T) {
	t.Parallel()
	broker, err := NewBrokerUnchecked(pricing.UnsafeSteep{C: 1e16})
	if err != nil {
		t.Fatal(err)
	}
	eng, series := buildEngine(t, dataset.Ozone, 8, 73)
	if err := broker.Register("ozone", eng, series.Len(), 8); err != nil {
		t.Fatal(err)
	}
	mallory := ArbitrageConsumer{Name: "mallory", Market: broker, Menu: pricing.DefaultMenu()}
	if _, err := mallory.Buy("ozone", 30, 90, estimator.Accuracy{Alpha: 0.05, Delta: 0.8}); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(broker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	sus, err := client.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if len(sus) != 1 || sus[0].Customer != "mallory" {
		t.Errorf("remote audit = %+v", sus)
	}
}

func TestLedgerPrivacySpent(t *testing.T) {
	t.Parallel()
	broker, _ := buildBroker(t, pricing.InverseVariance{C: 1e9})
	req := Request{Dataset: "ozone", Customer: "alice", L: 30, U: 90, Alpha: 0.1, Delta: 0.5}
	var want float64
	for i := 0; i < 3; i++ {
		resp, err := broker.Buy(req)
		if err != nil {
			t.Fatal(err)
		}
		want += resp.EpsilonPrime
	}
	if got := broker.Ledger().PrivacySpent("ozone"); math.Abs(got-want) > 1e-12 {
		t.Errorf("PrivacySpent = %v, want %v", got, want)
	}
	if got := broker.Ledger().PrivacySpent("other"); got != 0 {
		t.Errorf("unknown dataset should have zero privacy spend, got %v", got)
	}
}
