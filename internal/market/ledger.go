package market

import (
	"fmt"
	"sync"
)

// Ledger records completed purchases. It is safe for concurrent use; its
// zero value is ready.
type Ledger struct {
	mu       sync.Mutex
	receipts []Receipt
	nextID   int64
}

// Record assigns the receipt an id, stores it, and returns the completed
// receipt.
func (l *Ledger) Record(r Receipt) Receipt {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	r.ID = l.nextID
	l.receipts = append(l.receipts, r)
	return r
}

// Revenue returns the broker's total take.
func (l *Ledger) Revenue() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := 0.0
	for _, r := range l.receipts {
		total += r.Price
	}
	return total
}

// SpentBy returns one customer's total spend.
func (l *Ledger) SpentBy(customer string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := 0.0
	for _, r := range l.receipts {
		if r.Customer == customer {
			total += r.Price
		}
	}
	return total
}

// Purchases returns the number of recorded receipts.
func (l *Ledger) Purchases() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.receipts)
}

// Receipts returns a copy of all receipts in purchase order.
func (l *Ledger) Receipts() []Receipt {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Receipt, len(l.receipts))
	copy(out, l.receipts)
	return out
}

// PrivacySpent returns the cumulative effective privacy budget Σε′ the
// ledger records as released for one dataset — the broker's view of how
// exposed that dataset is across all sales.
func (l *Ledger) PrivacySpent(dataset string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := 0.0
	for _, r := range l.receipts {
		if r.Dataset == dataset {
			total += r.EpsilonPrime
		}
	}
	return total
}

// Get returns the receipt with the given id.
func (l *Ledger) Get(id int64) (Receipt, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range l.receipts {
		if r.ID == id {
			return r, nil
		}
	}
	return Receipt{}, fmt.Errorf("market: no receipt %d", id)
}
