package histogram_test

import (
	"fmt"
	"log"
	"sort"

	"privrange/internal/dataset"
	"privrange/internal/histogram"
	"privrange/internal/sampling"
	"privrange/internal/stats"
)

// Example releases an ε-DP AQI band histogram from rank-annotated
// samples: all bands for one ε thanks to parallel composition.
func Example() {
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 1, Records: 8000})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := series.Partition(8)
	if err != nil {
		log.Fatal(err)
	}
	const p = 0.3
	root := stats.NewRNG(2)
	sets := make([]*sampling.SampleSet, len(parts))
	for i, part := range parts {
		cp := make([]float64, len(part))
		copy(cp, part)
		sort.Float64s(cp)
		sets[i], err = sampling.Draw(cp, p, root.Child(int64(i)))
		if err != nil {
			log.Fatal(err)
		}
	}
	b := histogram.Builder{P: p}
	h, err := b.Private(sets, []float64{0, 50, 100, 300}, 1.0, stats.NewRNG(3))
	if err != nil {
		log.Fatal(err)
	}
	if err := h.Normalize(float64(series.Len())); err != nil {
		log.Fatal(err)
	}
	eff, err := b.EffectiveEpsilon(1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bands:", h.Buckets())
	fmt.Println("sums to n:", int(h.Total()+0.5) == series.Len())
	fmt.Println("amplified budget below 1:", eff < 1.0)
	// Output:
	// bands: 3
	// sums to n: true
	// amplified budget below 1: true
}
